#include "tectorwise/primitives.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "runtime/types.h"
#include "tectorwise/primitives_simd.h"

// Scalar primitive semantics plus the SIMD == scalar property (paper §5):
// every AVX-512 kernel must be bit-identical to its scalar counterpart on
// random inputs across the whole selectivity range, odd sizes included.

namespace vcq::tectorwise {
namespace {

struct SelCase {
  size_t n;
  int selectivity_pct;
};

class SimdSelEquivalence : public ::testing::TestWithParam<SelCase> {};

std::vector<int32_t> RandomI32(size_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int32_t> dist(0, 99);
  std::vector<int32_t> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

std::vector<int64_t> RandomI64(size_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int64_t> dist(0, 99);
  std::vector<int64_t> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

TEST_P(SimdSelEquivalence, DenseI32AllOps) {
  if (!simd::Available()) GTEST_SKIP() << "no AVX-512";
  const auto [n, sel_pct] = GetParam();
  const auto col = RandomI32(n, 42);
  const int32_t konst = sel_pct;  // values uniform in [0,100)
  std::vector<pos_t> scalar(n), vec(n);

  struct Variant {
    size_t (*scalar_fn)(size_t, const int32_t*, int32_t, pos_t*);
    size_t (*simd_fn)(size_t, const int32_t*, int32_t, pos_t*);
  };
  const Variant variants[] = {
      {&SelDense<int32_t, CmpLess>, &simd::SelLessI32Dense},
      {&SelDense<int32_t, CmpLessEq>, &simd::SelLessEqI32Dense},
      {&SelDense<int32_t, CmpGreater>, &simd::SelGreaterI32Dense},
      {&SelDense<int32_t, CmpGreaterEq>, &simd::SelGreaterEqI32Dense},
      {&SelDense<int32_t, CmpEq>, &simd::SelEqI32Dense},
  };
  for (const Variant& v : variants) {
    const size_t ns = v.scalar_fn(n, col.data(), konst, scalar.data());
    const size_t nv = v.simd_fn(n, col.data(), konst, vec.data());
    ASSERT_EQ(ns, nv);
    for (size_t i = 0; i < ns; ++i) ASSERT_EQ(scalar[i], vec[i]) << i;
  }
}

TEST_P(SimdSelEquivalence, DenseI64AllOps) {
  if (!simd::Available()) GTEST_SKIP() << "no AVX-512";
  const auto [n, sel_pct] = GetParam();
  const auto col = RandomI64(n, 43);
  const int64_t konst = sel_pct;
  std::vector<pos_t> scalar(n), vec(n);

  struct Variant {
    size_t (*scalar_fn)(size_t, const int64_t*, int64_t, pos_t*);
    size_t (*simd_fn)(size_t, const int64_t*, int64_t, pos_t*);
  };
  const Variant variants[] = {
      {&SelDense<int64_t, CmpLess>, &simd::SelLessI64Dense},
      {&SelDense<int64_t, CmpLessEq>, &simd::SelLessEqI64Dense},
      {&SelDense<int64_t, CmpGreater>, &simd::SelGreaterI64Dense},
      {&SelDense<int64_t, CmpGreaterEq>, &simd::SelGreaterEqI64Dense},
      {&SelDense<int64_t, CmpEq>, &simd::SelEqI64Dense},
  };
  for (const Variant& v : variants) {
    const size_t ns = v.scalar_fn(n, col.data(), konst, scalar.data());
    const size_t nv = v.simd_fn(n, col.data(), konst, vec.data());
    ASSERT_EQ(ns, nv);
    for (size_t i = 0; i < ns; ++i) ASSERT_EQ(scalar[i], vec[i]) << i;
  }
}

TEST_P(SimdSelEquivalence, SparseI32) {
  if (!simd::Available()) GTEST_SKIP() << "no AVX-512";
  const auto [n, sel_pct] = GetParam();
  const auto col = RandomI32(n, 44);
  // Build an input selection vector from an independent predicate.
  std::vector<pos_t> sel;
  for (size_t p = 0; p < n; ++p)
    if (p % 3 != 0) sel.push_back(static_cast<pos_t>(p));
  const int32_t konst = sel_pct;
  std::vector<pos_t> scalar(n), vec(n);
  const size_t ns = SelSparse<int32_t, CmpLess>(sel.size(), sel.data(),
                                                col.data(), konst,
                                                scalar.data());
  const size_t nv = simd::SelLessI32Sparse(sel.size(), sel.data(), col.data(),
                                           konst, vec.data());
  ASSERT_EQ(ns, nv);
  for (size_t i = 0; i < ns; ++i) ASSERT_EQ(scalar[i], vec[i]) << i;
}

TEST_P(SimdSelEquivalence, BetweenDenseAndSparse) {
  if (!simd::Available()) GTEST_SKIP() << "no AVX-512";
  const auto [n, sel_pct] = GetParam();
  const auto col32 = RandomI32(n, 45);
  const auto col64 = RandomI64(n, 46);
  const int32_t lo = 10, hi = 10 + sel_pct;
  std::vector<pos_t> scalar(n), vec(n);

  size_t ns = SelBetweenDense<int32_t>(n, col32.data(), lo, hi, scalar.data());
  size_t nv = simd::SelBetweenI32Dense(n, col32.data(), lo, hi, vec.data());
  ASSERT_EQ(ns, nv);
  for (size_t i = 0; i < ns; ++i) ASSERT_EQ(scalar[i], vec[i]);

  ns = SelBetweenDense<int64_t>(n, col64.data(), lo, hi, scalar.data());
  nv = simd::SelBetweenI64Dense(n, col64.data(), lo, hi, vec.data());
  ASSERT_EQ(ns, nv);
  for (size_t i = 0; i < ns; ++i) ASSERT_EQ(scalar[i], vec[i]);

  std::vector<pos_t> sel;
  for (size_t p = 0; p < n; p += 2) sel.push_back(static_cast<pos_t>(p));
  ns = SelBetweenSparse<int32_t>(sel.size(), sel.data(), col32.data(), lo, hi,
                                 scalar.data());
  nv = simd::SelBetweenI32Sparse(sel.size(), sel.data(), col32.data(), lo, hi,
                                 vec.data());
  ASSERT_EQ(ns, nv);
  for (size_t i = 0; i < ns; ++i) ASSERT_EQ(scalar[i], vec[i]);

  ns = SelBetweenSparse<int64_t>(sel.size(), sel.data(), col64.data(), lo, hi,
                                 scalar.data());
  nv = simd::SelBetweenI64Sparse(sel.size(), sel.data(), col64.data(), lo, hi,
                                 vec.data());
  ASSERT_EQ(ns, nv);
  for (size_t i = 0; i < ns; ++i) ASSERT_EQ(scalar[i], vec[i]);
}

TEST_P(SimdSelEquivalence, HashCompactMatchesScalar) {
  if (!simd::Available()) GTEST_SKIP() << "no AVX-512";
  const auto [n, sel_pct] = GetParam();
  (void)sel_pct;
  const auto col32 = RandomI32(n, 47);
  const auto col64 = RandomI64(n, 48);
  std::vector<uint64_t> hs(n), hv(n);
  std::vector<pos_t> ps(n), pv(n);

  HashCompact<int32_t>(n, nullptr, col32.data(), hs.data(), ps.data());
  simd::HashI32Compact(n, nullptr, col32.data(), hv.data(), pv.data());
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hs[i], hv[i]) << i;
    ASSERT_EQ(ps[i], pv[i]) << i;
  }

  HashCompact<int64_t>(n, nullptr, col64.data(), hs.data(), ps.data());
  simd::HashI64Compact(n, nullptr, col64.data(), hv.data(), pv.data());
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(hs[i], hv[i]) << i;

  // Sparse variant + rehash.
  std::vector<pos_t> sel;
  for (size_t p = 1; p < n; p += 2) sel.push_back(static_cast<pos_t>(p));
  HashCompact<int32_t>(sel.size(), sel.data(), col32.data(), hs.data(),
                       ps.data());
  simd::HashI32Compact(sel.size(), sel.data(), col32.data(), hv.data(),
                       pv.data());
  for (size_t i = 0; i < sel.size(); ++i) {
    ASSERT_EQ(hs[i], hv[i]) << i;
    ASSERT_EQ(ps[i], pv[i]) << i;
  }
  RehashCompact<int32_t>(sel.size(), ps.data(), col32.data(), hs.data());
  simd::RehashI32Compact(sel.size(), pv.data(), col32.data(), hv.data());
  for (size_t i = 0; i < sel.size(); ++i) ASSERT_EQ(hs[i], hv[i]) << i;
}

INSTANTIATE_TEST_SUITE_P(
    Selectivities, SimdSelEquivalence,
    ::testing::Values(SelCase{0, 50}, SelCase{1, 50}, SelCase{15, 50},
                      SelCase{16, 50}, SelCase{17, 50}, SelCase{1000, 0},
                      SelCase{1000, 1}, SelCase{1000, 25}, SelCase{1000, 50},
                      SelCase{1000, 75}, SelCase{1000, 100},
                      SelCase{8192, 40}, SelCase{8191, 99}));

TEST(ScalarPrimitives, SelDenseBasics) {
  const std::vector<int32_t> col = {5, 1, 9, 3, 7};
  std::vector<pos_t> out(5);
  EXPECT_EQ((SelDense<int32_t, CmpLess>(5, col.data(), 5, out.data())), 2u);
  EXPECT_EQ(out[0], 1u);
  EXPECT_EQ(out[1], 3u);
  EXPECT_EQ((SelDense<int32_t, CmpEq>(5, col.data(), 9, out.data())), 1u);
  EXPECT_EQ(out[0], 2u);
}

TEST(ScalarPrimitives, SelSparsePreservesPositions) {
  const std::vector<int32_t> col = {5, 1, 9, 3, 7};
  const std::vector<pos_t> sel = {0, 2, 4};
  std::vector<pos_t> out(5);
  const size_t n =
      SelSparse<int32_t, CmpGreater>(3, sel.data(), col.data(), 5,
                                     out.data());
  ASSERT_EQ(n, 2u);
  EXPECT_EQ(out[0], 2u);
  EXPECT_EQ(out[1], 4u);
}

TEST(ScalarPrimitives, MapAlignedWrites) {
  const std::vector<int64_t> a = {1, 2, 3, 4};
  const std::vector<int64_t> b = {10, 20, 30, 40};
  std::vector<int64_t> out(4, -1);
  const std::vector<pos_t> sel = {1, 3};
  MapMul<int64_t>(2, sel.data(), a.data(), b.data(), out.data());
  EXPECT_EQ(out[0], -1);  // untouched
  EXPECT_EQ(out[1], 40);
  EXPECT_EQ(out[2], -1);
  EXPECT_EQ(out[3], 160);
  MapRSubConst<int64_t>(2, sel.data(), 100, a.data(), out.data());
  EXPECT_EQ(out[1], 98);
  EXPECT_EQ(out[3], 96);
}

TEST(ScalarPrimitives, GatherScatter) {
  const std::vector<int64_t> col = {10, 20, 30, 40};
  const std::vector<pos_t> pos = {3, 0, 2};
  std::vector<int64_t> out(3);
  GatherPos<int64_t>(3, pos.data(), col.data(), out.data());
  EXPECT_EQ(out[0], 40);
  EXPECT_EQ(out[1], 10);
  EXPECT_EQ(out[2], 30);

  // Scatter into a fake entry array and gather back.
  constexpr size_t kStride = 32;
  alignas(8) std::byte entries[3 * kStride];
  ScatterToEntries<int64_t>(3, pos.data(), col.data(), entries, kStride, 16);
  Hashmap::EntryHeader* hdrs[3];
  for (int i = 0; i < 3; ++i)
    hdrs[i] = reinterpret_cast<Hashmap::EntryHeader*>(entries + i * kStride);
  std::vector<int64_t> back(3);
  GatherEntry<int64_t>(3, hdrs, 16, back.data());
  EXPECT_EQ(back[0], 40);
  EXPECT_EQ(back[1], 10);
  EXPECT_EQ(back[2], 30);
}

TEST(ScalarPrimitives, MapYearMatchesCalendar) {
  std::vector<int32_t> dates = {runtime::DateFromString("1992-06-01"),
                                runtime::DateFromString("1998-12-31")};
  std::vector<int32_t> out(2);
  MapYear(2, nullptr, dates.data(), out.data());
  EXPECT_EQ(out[0], 1992);
  EXPECT_EQ(out[1], 1998);
}

TEST(ScalarPrimitives, AggSumAndCount) {
  struct G {
    Hashmap::EntryHeader h;
    int64_t sum;
    int64_t count;
  } g1{}, g2{};
  std::byte* groups[4] = {
      reinterpret_cast<std::byte*>(&g1), reinterpret_cast<std::byte*>(&g2),
      reinterpret_cast<std::byte*>(&g1), reinterpret_cast<std::byte*>(&g1)};
  const std::vector<pos_t> pos = {0, 1, 2, 3};
  const std::vector<int64_t> col = {5, 7, 11, 13};
  AggSum(4, groups, offsetof(G, sum), pos.data(), col.data());
  AggCount(4, groups, offsetof(G, count));
  EXPECT_EQ(g1.sum, 5 + 11 + 13);
  EXPECT_EQ(g2.sum, 7);
  EXPECT_EQ(g1.count, 3);
  EXPECT_EQ(g2.count, 1);
}

}  // namespace
}  // namespace vcq::tectorwise
