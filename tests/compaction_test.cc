#include "tectorwise/compaction.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "api/vcq.h"
#include "datagen/ssb.h"
#include "datagen/tpch.h"
#include "runtime/relation.h"
#include "tectorwise/operators.h"
#include "tectorwise/primitives.h"
#include "tectorwise/primitives_simd.h"
#include "tectorwise/steps.h"

// Batch compaction: scalar <-> AVX-512 compress-store parity, the adaptive
// policy's threshold boundaries at the Select compaction point, and
// end-to-end result equality of all three policies on the full TPC-H / SSB
// workload (the byte-identical-results contract of the compaction PR).

namespace vcq::tectorwise {
namespace {

using runtime::Database;
using runtime::QueryOptions;
using runtime::QueryResult;
using runtime::Relation;

// ---------------------------------------------------------------------------
// Primitive parity: CompactI32/I64 == CompactCopy on random selections
// ---------------------------------------------------------------------------

std::vector<pos_t> RandomSel(size_t n, double density, uint32_t seed) {
  std::mt19937 rng(seed);
  std::bernoulli_distribution pick(density);
  std::vector<pos_t> sel;
  for (size_t p = 0; p < n; ++p)
    if (pick(rng)) sel.push_back(static_cast<pos_t>(p));
  return sel;
}

class CompactParity : public ::testing::TestWithParam<double> {};

TEST_P(CompactParity, I32MatchesScalar) {
  const double density = GetParam();
  std::mt19937 rng(7);
  for (const size_t n : {size_t{0}, size_t{1}, size_t{15}, size_t{16},
                         size_t{17}, size_t{1000}, size_t{4096}}) {
    std::vector<int32_t> col(n);
    for (auto& x : col) x = static_cast<int32_t>(rng());
    const auto sel = RandomSel(n, density, 11 + static_cast<uint32_t>(n));
    std::vector<int32_t> scalar(sel.size() + 1, -1), vec(sel.size() + 1, -1);
    CompactCopy<int32_t>(sel.size(), sel.data(), col.data(), scalar.data());
    simd::CompactI32(sel.size(), sel.data(), col.data(), vec.data());
    for (size_t i = 0; i < sel.size(); ++i) ASSERT_EQ(scalar[i], vec[i]) << i;
  }
}

TEST_P(CompactParity, I64MatchesScalar) {
  const double density = GetParam();
  std::mt19937_64 rng(9);
  for (const size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{8},
                         size_t{9}, size_t{1000}, size_t{4096}}) {
    std::vector<int64_t> col(n);
    for (auto& x : col) x = static_cast<int64_t>(rng());
    const auto sel = RandomSel(n, density, 13 + static_cast<uint32_t>(n));
    std::vector<int64_t> scalar(sel.size() + 1, -1), vec(sel.size() + 1, -1);
    CompactCopy<int64_t>(sel.size(), sel.data(), col.data(), scalar.data());
    simd::CompactI64(sel.size(), sel.data(), col.data(), vec.data());
    for (size_t i = 0; i < sel.size(); ++i) ASSERT_EQ(scalar[i], vec[i]) << i;
  }
}

TEST_P(CompactParity, NullSelIsContiguousCopy) {
  const size_t n = 100;
  std::vector<int32_t> col32(n);
  std::vector<int64_t> col64(n);
  for (size_t i = 0; i < n; ++i) {
    col32[i] = static_cast<int32_t>(i);
    col64[i] = static_cast<int64_t>(i) * 3;
  }
  std::vector<int32_t> out32(n);
  std::vector<int64_t> out64(n);
  simd::CompactI32(n, nullptr, col32.data(), out32.data());
  simd::CompactI64(n, nullptr, col64.data(), out64.data());
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out32[i], col32[i]);
    ASSERT_EQ(out64[i], col64[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, CompactParity,
                         ::testing::Values(0.0, 0.01, 0.1, 0.5, 0.9, 1.0));

TEST(CompactBytesTest, OddWidthRows) {
  constexpr size_t kWidth = 5;
  const size_t n = 64;
  std::vector<std::byte> col(n * kWidth);
  for (size_t i = 0; i < col.size(); ++i) col[i] = std::byte(i & 0xff);
  const std::vector<pos_t> sel = {0, 3, 7, 63};
  std::vector<std::byte> out(sel.size() * kWidth);
  CompactBytes(sel.size(), sel.data(), col.data(), kWidth, out.data());
  for (size_t k = 0; k < sel.size(); ++k) {
    for (size_t b = 0; b < kWidth; ++b)
      ASSERT_EQ(out[k * kWidth + b], col[sel[k] * kWidth + b]);
  }
}

// ---------------------------------------------------------------------------
// Select compaction point: adaptive threshold boundaries
// ---------------------------------------------------------------------------

// Relation where value a[i] = i % period, so a < cutoff passes exactly
// `cutoff` tuples per `period` and survivors are predictable per batch.
Relation MakePeriodic(size_t n, int32_t period) {
  Relation rel;
  auto a = rel.AddColumn<int32_t>("a", n);
  auto b = rel.AddColumn<int64_t>("b", n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = static_cast<int32_t>(i % static_cast<size_t>(period));
    b[i] = static_cast<int64_t>(i);
  }
  return rel;
}

struct DrainResult {
  std::vector<int64_t> values;  // b-column values in emission order
  size_t batches = 0;
  size_t dense_batches = 0;  // emitted without a selection vector
  size_t max_count = 0;
};

DrainResult DrainSelect(const Relation& rel, const ExecContext& ctx,
                        int32_t cutoff) {
  Scan::Shared shared(rel.tuple_count(), 1u << 30 /* one morsel */);
  auto scan = std::make_unique<Scan>(&shared, &rel, ctx.vector_size);
  Slot* a = scan->AddColumn<int32_t>("a");
  Slot* b = scan->AddColumn<int64_t>("b");
  auto select = std::make_unique<Select>(std::move(scan), ctx);
  select->AddStep(MakeSelCmp<int32_t>(ctx, a, CmpOp::kLess, cutoff));
  CompactColumn<int64_t>(ctx, select->compactor(), b);

  DrainResult r;
  size_t n;
  while ((n = select->Next()) != kEndOfStream) {
    const pos_t* sel = select->sel();
    const int64_t* col = Get<int64_t>(b);
    ++r.batches;
    r.dense_batches += (sel == nullptr) ? 1 : 0;
    r.max_count = std::max(r.max_count, n);
    for (size_t k = 0; k < n; ++k)
      r.values.push_back(col[sel ? sel[k] : static_cast<pos_t>(k)]);
  }
  return r;
}

std::vector<int64_t> ReferenceValues(size_t n, int32_t period,
                                     int32_t cutoff) {
  std::vector<int64_t> out;
  for (size_t i = 0; i < n; ++i) {
    if (static_cast<int32_t>(i % static_cast<size_t>(period)) < cutoff)
      out.push_back(static_cast<int64_t>(i));
  }
  return out;
}

ExecContext AdaptiveCtx(size_t vector_size = 1024) {
  ExecContext ctx;
  ctx.vector_size = vector_size;
  ctx.compaction = CompactionPolicy::kAdaptive;
  ctx.compaction_threshold = 0.25;
  return ctx;
}

TEST(SelectCompactionTest, SparseBatchesAreMergedDense) {
  // ~1.6% density: 16 survivors per 1024-tuple batch; 64 batches fold into
  // one full dense vector.
  const Relation rel = MakePeriodic(64 * 1024, 64);
  const ExecContext ctx = AdaptiveCtx();
  const DrainResult r = DrainSelect(rel, ctx, 1);
  EXPECT_EQ(r.values, ReferenceValues(64 * 1024, 64, 1));
  EXPECT_EQ(r.dense_batches, r.batches);
  EXPECT_EQ(r.batches, 1u);  // 1024 survivors == exactly one full vector
  EXPECT_EQ(r.max_count, 1024u);
}

TEST(SelectCompactionTest, SingleSurvivorCompacts) {
  // One survivor in the whole input: the remainder flush at end-of-stream
  // must emit it as a dense one-tuple batch.
  Relation rel;
  auto a = rel.AddColumn<int32_t>("a", 5000);
  auto b = rel.AddColumn<int64_t>("b", 5000);
  for (size_t i = 0; i < 5000; ++i) {
    a[i] = (i == 3333) ? 0 : 1;
    b[i] = static_cast<int64_t>(i);
  }
  const ExecContext ctx = AdaptiveCtx();
  const DrainResult r = DrainSelect(rel, ctx, 1);
  ASSERT_EQ(r.values.size(), 1u);
  EXPECT_EQ(r.values[0], 3333);
  EXPECT_EQ(r.dense_batches, 1u);
}

TEST(SelectCompactionTest, EmptyResultYieldsEndOfStream) {
  const Relation rel = MakePeriodic(4096, 64);
  const ExecContext ctx = AdaptiveCtx();
  const DrainResult r = DrainSelect(rel, ctx, 0);  // nothing passes
  EXPECT_TRUE(r.values.empty());
  EXPECT_EQ(r.batches, 0u);
}

TEST(SelectCompactionTest, DenseBatchesPassThroughUntouched) {
  // Everything passes: density 1.0 >= threshold, so kAdaptive must leave
  // batches alone (selection vector still present, no merged vectors).
  const Relation rel = MakePeriodic(8192, 64);
  const ExecContext ctx = AdaptiveCtx();
  const DrainResult r = DrainSelect(rel, ctx, 64);
  EXPECT_EQ(r.values, ReferenceValues(8192, 64, 64));
  EXPECT_EQ(r.dense_batches, 0u);
  EXPECT_EQ(r.batches, 8u);
}

TEST(SelectCompactionTest, ThresholdBoundaryIsStrict) {
  // threshold 0.25 at vector_size 1024 puts the boundary at 256 survivors:
  // 256 per batch (density == threshold) passes through, 255 compacts.
  const ExecContext ctx = AdaptiveCtx();
  {
    const Relation rel = MakePeriodic(8192, 4);  // 256 survivors per batch
    const DrainResult r = DrainSelect(rel, ctx, 1);
    EXPECT_EQ(r.values, ReferenceValues(8192, 4, 1));
    EXPECT_EQ(r.dense_batches, 0u);
  }
  {
    // 128 survivors per batch: below threshold, all batches compact.
    const Relation rel = MakePeriodic(8192, 8);
    const DrainResult r = DrainSelect(rel, ctx, 1);
    EXPECT_EQ(r.values, ReferenceValues(8192, 8, 1));
    EXPECT_EQ(r.dense_batches, r.batches);
  }
}

TEST(SelectCompactionTest, AlwaysPolicyMatchesReference) {
  const Relation rel = MakePeriodic(10007, 16);
  ExecContext ctx = AdaptiveCtx(255);  // odd vector size, partial flushes
  ctx.compaction = CompactionPolicy::kAlways;
  const DrainResult r = DrainSelect(rel, ctx, 5);
  EXPECT_EQ(r.values, ReferenceValues(10007, 16, 5));
  EXPECT_EQ(r.dense_batches, r.batches);
  EXPECT_LE(r.max_count, 255u);
}

// ---------------------------------------------------------------------------
// End-to-end: all three policies produce byte-identical query results
// ---------------------------------------------------------------------------

const Database& TpchDb() {
  static const Database* db = new Database(datagen::GenerateTpch(0.03));
  return *db;
}

const Database& SsbDb() {
  static const Database* db = new Database(datagen::GenerateSsb(0.05));
  return *db;
}

QueryOptions PolicyOptions(runtime::CompactionMode mode, size_t vector_size,
                           bool simd) {
  QueryOptions opt;
  opt.threads = 2;
  opt.vector_size = vector_size;
  opt.simd = simd;
  opt.compaction = mode;
  return opt;
}

TEST(CompactionEquivalenceTest, Q3AcrossPoliciesAndVectorSizes) {
  for (const size_t vector_size : {size_t{64}, size_t{1024}, size_t{4096}}) {
    const QueryResult expected =
        RunQuery(TpchDb(), Engine::kTectorwise, Query::kQ3,
                 PolicyOptions(runtime::CompactionMode::kNever, vector_size,
                               false));
    for (const auto mode : {runtime::CompactionMode::kAlways,
                            runtime::CompactionMode::kAdaptive}) {
      for (const bool simd : {false, true}) {
        const QueryResult got =
            RunQuery(TpchDb(), Engine::kTectorwise, Query::kQ3,
                     PolicyOptions(mode, vector_size, simd));
        EXPECT_EQ(expected.ToString(), got.ToString())
            << "vector_size=" << vector_size << " mode="
            << static_cast<int>(mode) << " simd=" << simd;
      }
    }
  }
}

TEST(CompactionEquivalenceTest, AllQueriesAcrossPolicies) {
  auto check = [](const Database& db, Query query) {
    const QueryResult expected =
        RunQuery(db, Engine::kTectorwise, query,
                 PolicyOptions(runtime::CompactionMode::kNever, 1024, false));
    for (const auto mode : {runtime::CompactionMode::kAlways,
                            runtime::CompactionMode::kAdaptive}) {
      const QueryResult got = RunQuery(db, Engine::kTectorwise, query,
                                       PolicyOptions(mode, 1024, false));
      EXPECT_EQ(expected.ToString(), got.ToString())
          << QueryName(query) << " mode=" << static_cast<int>(mode);
    }
  };
  for (const Query query : TpchQueries()) check(TpchDb(), query);
  for (const Query query : SsbQueries()) check(SsbDb(), query);
}

}  // namespace
}  // namespace vcq::tectorwise
