#include "runtime/resource_governor.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "api/query_catalog.h"
#include "api/session.h"
#include "api/vcq.h"
#include "datagen/tpch.h"
#include "runtime/mem_pool.h"
#include "runtime/scheduler.h"
#include "runtime/worker_pool.h"

// The resource-governor contract (PR 6 acceptance):
//  - a query whose build side exceeds QueryOptions::memory_budget returns
//    kResourceExhausted with ZERO rows, no partial output, no process
//    abort;
//  - after the failure, MemPool::live_bytes() and the process governor's
//    in_use() are back at their pre-query baselines (nothing leaked, and
//    nothing was double-released);
//  - concurrent in-budget queries on the same pool are byte-identical to
//    their serial results while the over-budget one fails;
//  - the process-wide ResourceGovernor budget trips queries even when each
//    is within its own per-query budget;
//  - memory-aware admission (Scheduler::Admit with estimated bytes)
//    rejects-or-queues instead of overcommitting;
//  - ExecuteWithRetry retries transient kResourceExhausted/kRejected and
//    gives up after max_attempts.

namespace vcq {
namespace {

using runtime::CancelToken;
using runtime::Database;
using runtime::ExecStatus;
using runtime::MemPool;
using runtime::QueryLedger;
using runtime::QueryOptions;
using runtime::QueryResult;
using runtime::ResourceGovernor;
using runtime::Scheduler;

const Database& TpchDb() {
  static const Database* db = new Database(datagen::GenerateTpch(0.01));
  return *db;
}

// ---------------------------------------------------------------------------
// Ledger / governor unit behavior
// ---------------------------------------------------------------------------

TEST(QueryLedgerTest, TripsTokenOnPerQueryBudget) {
  const CancelToken token;
  QueryLedger ledger(1 << 20, &token);
  ledger.Charge(512 << 10);
  EXPECT_FALSE(token.Interrupted());
  ledger.Charge(768 << 10);  // crosses 1 MiB
  EXPECT_TRUE(token.Interrupted());
  EXPECT_EQ(token.status(), ExecStatus::kResourceExhausted);
  EXPECT_EQ(ledger.peak(), (512u << 10) + (768u << 10));
  ledger.Uncharge(ledger.in_use());
}

TEST(QueryLedgerTest, TripsTokenOnProcessGovernorBudget) {
  ResourceGovernor governor;
  governor.SetBudget(1 << 20);
  const CancelToken a_token;
  const CancelToken b_token;
  // Two ledgers, each unlimited per-query: only the shared governor can
  // trip them.
  QueryLedger a(0, &a_token, &governor);
  QueryLedger b(0, &b_token, &governor);
  a.Charge(768 << 10);
  EXPECT_FALSE(a_token.Interrupted());
  b.Charge(768 << 10);  // collectively over the process budget
  EXPECT_TRUE(b_token.Interrupted());
  EXPECT_EQ(b_token.status(), ExecStatus::kResourceExhausted);
  a.Uncharge(768 << 10);
  b.Uncharge(768 << 10);
  EXPECT_EQ(governor.in_use(), 0u);
}

TEST(QueryLedgerTest, DestructorReturnsResidueToGovernor) {
  ResourceGovernor governor;
  {
    QueryLedger ledger(0, nullptr, &governor);
    ledger.Charge(3 << 20);
    EXPECT_EQ(governor.in_use(), size_t{3} << 20);
    // No Uncharge: simulate a pool whose unwind skipped it.
  }
  EXPECT_EQ(governor.in_use(), 0u);
}

TEST(MemPoolLedgerTest, ChargesOnGrowUnchargesOnReleaseIdempotently) {
  ResourceGovernor governor;
  const CancelToken token;
  QueryLedger ledger(0, &token, &governor);
  MemPool pool(1 << 16);
  // Grow BEFORE Bind: those bytes must never be uncharged from the ledger.
  pool.Allocate(100);
  const size_t unbound = pool.owned_bytes();
  EXPECT_GT(unbound, 0u);
  EXPECT_EQ(ledger.in_use(), 0u);

  pool.Bind(&ledger, nullptr, "pool.grow");
  pool.Allocate(1 << 17);  // forces a bound grow
  const size_t bound = ledger.in_use();
  EXPECT_GT(bound, 0u);
  EXPECT_EQ(governor.in_use(), bound);

  pool.Release();
  EXPECT_EQ(ledger.in_use(), 0u);
  EXPECT_EQ(governor.in_use(), 0u);
  EXPECT_EQ(pool.owned_bytes(), 0u);
  pool.Release();  // idempotent: must not underflow anything
  EXPECT_EQ(ledger.in_use(), 0u);
  EXPECT_EQ(governor.in_use(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end: over-budget queries fail clean, in-budget neighbors don't
// ---------------------------------------------------------------------------

TEST(GovernorEndToEndTest, OverBudgetJoinBuildFailsWithZeroRowsAndNoLeak) {
  const Database& db = TpchDb();
  Session session(db);
  for (Engine e : {Engine::kTyper, Engine::kTectorwise}) {
    for (size_t threads : {size_t{1}, size_t{8}}) {
      QueryOptions opt;
      opt.threads = threads;
      opt.memory_budget = 64 << 10;  // far below Q3's build side
      PreparedQuery q3 = session.Prepare(e, Query::kQ3, opt);
      const size_t live_before = MemPool::live_bytes();
      const size_t gov_before = ResourceGovernor::Global().in_use();
      const QueryResult result = q3.Execute();
      EXPECT_EQ(result.status, ExecStatus::kResourceExhausted)
          << EngineName(e) << " threads=" << threads;
      EXPECT_EQ(result.rows.size(), 0u);
      EXPECT_EQ(MemPool::live_bytes(), live_before)
          << "build memory leaked (or double-released) after the trip";
      EXPECT_EQ(ResourceGovernor::Global().in_use(), gov_before);
    }
  }
}

TEST(GovernorEndToEndTest, InBudgetQueriesUnaffectedByOverBudgetNeighbor) {
  const Database& db = TpchDb();
  Session session(db);
  QueryOptions ok_opt;
  ok_opt.threads = 2;
  PreparedQuery q6 = session.Prepare(Engine::kTyper, Query::kQ6, ok_opt);
  PreparedQuery q1 = session.Prepare(Engine::kTectorwise, Query::kQ1, ok_opt);
  const QueryResult q6_expected = q6.Execute();
  const QueryResult q1_expected = q1.Execute();
  ASSERT_TRUE(q6_expected.ok());
  ASSERT_TRUE(q1_expected.ok());

  QueryOptions bad_opt;
  bad_opt.threads = 2;
  bad_opt.memory_budget = 64 << 10;
  PreparedQuery q3 = session.Prepare(Engine::kTyper, Query::kQ3, bad_opt);

  for (int round = 0; round < 3; ++round) {
    ExecutionHandle bad = q3.ExecuteAsync();
    ExecutionHandle a = q6.ExecuteAsync();
    ExecutionHandle b = q1.ExecuteAsync();
    EXPECT_EQ(bad.Wait().status, ExecStatus::kResourceExhausted);
    EXPECT_EQ(a.Wait(), q6_expected) << "round " << round;
    EXPECT_EQ(b.Wait(), q1_expected) << "round " << round;
  }
}

TEST(GovernorEndToEndTest, RerunAfterTripIsByteIdentical) {
  // A failed run must leave no residue that changes a later unbudgeted run.
  const Database& db = TpchDb();
  Session session(db);
  QueryOptions opt;
  opt.threads = 4;
  PreparedQuery good = session.Prepare(Engine::kTectorwise, Query::kQ3, opt);
  const QueryResult expected = good.Execute();
  ASSERT_TRUE(expected.ok());

  QueryOptions bad_opt = opt;
  bad_opt.memory_budget = 64 << 10;
  PreparedQuery bad = session.Prepare(Engine::kTectorwise, Query::kQ3,
                                      bad_opt);
  EXPECT_EQ(bad.Execute().status, ExecStatus::kResourceExhausted);
  EXPECT_EQ(good.Execute(), expected);
}

// ---------------------------------------------------------------------------
// Memory-aware admission
// ---------------------------------------------------------------------------

TEST(MemoryAdmissionTest, EstimateBeyondBudgetIsRejectedImmediately) {
  Scheduler sched(2);
  sched.SetMemoryBudget(1 << 20);
  const CancelToken token;
  Scheduler::Admission a = sched.Admit(&token, 2 << 20);
  EXPECT_FALSE(a.ok());
  EXPECT_EQ(a.status(), ExecStatus::kResourceExhausted);
  EXPECT_EQ(sched.memory_inflight(), 0u);
}

TEST(MemoryAdmissionTest, AdmissionsQueueUntilBytesRelease) {
  Scheduler sched(2);
  sched.SetMemoryBudget(1 << 20);
  sched.SetAdmissionLimit(0, 4);  // allow waiters to queue for bytes
  const CancelToken token;
  Scheduler::Admission first = sched.Admit(&token, 768 << 10);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(sched.memory_inflight(), size_t{768} << 10);

  // The second admission cannot fit until the first releases; give it a
  // deadline so the test cannot hang if release never unblocks it.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    first.Release();
  });
  const CancelToken waiter(CancelToken::Clock::now() +
                           std::chrono::seconds(10));
  Scheduler::Admission second = sched.Admit(&waiter, 768 << 10);
  releaser.join();
  EXPECT_TRUE(second.ok());
  EXPECT_EQ(sched.memory_inflight(), size_t{768} << 10);
  second.Release();
  EXPECT_EQ(sched.memory_inflight(), 0u);
}

TEST(MemoryAdmissionTest, SessionExecutionRejectsWhenEstimateCannotFit) {
  // A dedicated pool so the budget does not affect other tests' queries on
  // the global scheduler.
  const Database& db = TpchDb();
  runtime::WorkerPool pool(2);
  pool.scheduler().SetMemoryBudget(1 << 20);  // Q3's estimate is far bigger
  Session session(db, pool);
  QueryOptions opt;
  opt.threads = 2;
  PreparedQuery q3 = session.Prepare(Engine::kTyper, Query::kQ3, opt);
  EXPECT_EQ(q3.Execute().status, ExecStatus::kResourceExhausted);
  // Q6 builds nothing (estimate 0) and still fits.
  PreparedQuery q6 = session.Prepare(Engine::kTyper, Query::kQ6, opt);
  EXPECT_TRUE(q6.Execute().ok());
  EXPECT_GT(EstimatedBuildBytes(db, Query::kQ3),
            pool.scheduler().memory_budget());
}

// ---------------------------------------------------------------------------
// ExecuteWithRetry
// ---------------------------------------------------------------------------

TEST(RetryTest, GivesUpAfterMaxAttemptsOnPersistentExhaustion) {
  const Database& db = TpchDb();
  Session session(db);
  QueryOptions opt;
  opt.threads = 2;
  opt.memory_budget = 64 << 10;  // every attempt trips
  PreparedQuery q3 = session.Prepare(Engine::kTyper, Query::kQ3, opt);
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = std::chrono::milliseconds(1);
  policy.max_backoff = std::chrono::milliseconds(4);
  const QueryResult result = q3.ExecuteWithRetry(policy);
  EXPECT_EQ(result.status, ExecStatus::kResourceExhausted);
}

TEST(RetryTest, SucceedsOnceContentionDrains) {
  // Admission-rejection shape: a scheduler with a tiny in-flight cap and a
  // long-running occupant. The retry loop's backoff outlives the occupant,
  // so a later attempt is admitted and succeeds.
  const Database& db = TpchDb();
  runtime::WorkerPool pool(2);
  pool.scheduler().SetAdmissionLimit(1, 0);  // 1 in flight, no queue
  Session session(db, pool);
  QueryOptions opt;
  opt.threads = 1;
  PreparedQuery q6 = session.Prepare(Engine::kTyper, Query::kQ6, opt);

  const CancelToken occupant_token;
  Scheduler::Admission occupant =
      pool.scheduler().Admit(&occupant_token);
  ASSERT_TRUE(occupant.ok());
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    occupant.Release();
  });

  // Immediate execute is rejected while the slot is held.
  EXPECT_EQ(q6.Execute().status, ExecStatus::kRejected);

  RetryPolicy policy;
  policy.max_attempts = 20;
  policy.initial_backoff = std::chrono::milliseconds(10);
  policy.max_backoff = std::chrono::milliseconds(20);
  const QueryResult result = q6.ExecuteWithRetry(policy);
  releaser.join();
  EXPECT_TRUE(result.ok()) << runtime::StatusName(result.status);
}

TEST(RetryTest, NonTransientStatusIsNotRetried) {
  const Database& db = TpchDb();
  Session session(db);
  QueryOptions opt;
  opt.threads = 1;
  PreparedQuery q6 = session.Prepare(Engine::kTyper, Query::kQ6, opt);
  // A successful run returns immediately with the rows.
  RetryPolicy policy;
  policy.max_attempts = 5;
  const QueryResult result = q6.ExecuteWithRetry(policy);
  EXPECT_TRUE(result.ok());
  EXPECT_GT(result.rows.size(), 0u);
}

}  // namespace
}  // namespace vcq
