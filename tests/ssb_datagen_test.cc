#include "datagen/ssb.h"

#include <gtest/gtest.h>

#include <set>

#include "runtime/types.h"

namespace vcq::datagen {
namespace {

using runtime::Char;
using runtime::Database;

class SsbDatagenTest : public ::testing::Test {
 protected:
  static const Database& Db() {
    static const Database* db = new Database(GenerateSsb(0.02));
    return *db;
  }
};

TEST_F(SsbDatagenTest, Cardinalities) {
  const auto card = SsbCardinalities::For(0.02);
  EXPECT_EQ(card.customers, 600);
  EXPECT_EQ(card.suppliers, 40);
  EXPECT_EQ(card.dates, 2557);  // 1992-01-01 .. 1998-12-31, two leap years
  EXPECT_EQ(Db()["customer"].tuple_count(), 600u);
  EXPECT_EQ(Db()["supplier"].tuple_count(), 40u);
  EXPECT_EQ(Db()["date"].tuple_count(), 2557u);
  const size_t lo = Db()["lineorder"].tuple_count();
  EXPECT_GT(lo, card.orders * 3u);
  EXPECT_LT(lo, card.orders * 5u);
}

TEST_F(SsbDatagenTest, DateDimensionContinuous) {
  const auto& date = Db()["date"];
  const auto key = date.Col<int32_t>("d_datekey");
  const auto year = date.Col<int32_t>("d_year");
  for (size_t i = 1; i < date.tuple_count(); ++i)
    ASSERT_EQ(key[i], key[i - 1] + 1);
  EXPECT_EQ(year[0], 1992);
  EXPECT_EQ(year[date.tuple_count() - 1], 1998);
}

TEST_F(SsbDatagenTest, RegionsConsistentWithNations) {
  const auto& cust = Db()["customer"];
  const auto nation = cust.Col<Char<15>>("c_nation");
  const auto region = cust.Col<Char<12>>("c_region");
  std::set<std::pair<std::string, std::string>> pairs;
  for (size_t i = 0; i < cust.tuple_count(); ++i)
    pairs.insert({std::string(nation[i].View()),
                  std::string(region[i].View())});
  // Each nation maps to exactly one region.
  std::set<std::string> nations;
  for (const auto& [n, r] : pairs) {
    EXPECT_TRUE(nations.insert(n).second) << n << " in two regions";
  }
  // CHINA must be in ASIA (used by Q3.1 expectations).
  EXPECT_TRUE(pairs.count({"CHINA", "ASIA"}));
  EXPECT_TRUE(pairs.count({"UNITED STATES", "AMERICA"}));
}

TEST_F(SsbDatagenTest, PartHierarchy) {
  const auto& part = Db()["part"];
  const auto mfgr = part.Col<Char<6>>("p_mfgr");
  const auto category = part.Col<Char<7>>("p_category");
  const auto brand = part.Col<Char<9>>("p_brand1");
  for (size_t i = 0; i < part.tuple_count(); ++i) {
    // category extends mfgr, brand extends category.
    ASSERT_EQ(std::string(category[i].View()).substr(0, 6),
              std::string(mfgr[i].View()));
    ASSERT_EQ(std::string(brand[i].View()).substr(0, 7),
              std::string(category[i].View()));
  }
}

TEST_F(SsbDatagenTest, LineorderForeignKeysInRange) {
  const auto card = SsbCardinalities::For(0.02);
  const auto& lo = Db()["lineorder"];
  const auto ck = lo.Col<int32_t>("lo_custkey");
  const auto sk = lo.Col<int32_t>("lo_suppkey");
  const auto pk = lo.Col<int32_t>("lo_partkey");
  const auto rev = lo.Col<int64_t>("lo_revenue");
  const auto price = lo.Col<int64_t>("lo_extendedprice");
  const auto disc = lo.Col<int64_t>("lo_discount");
  for (size_t i = 0; i < lo.tuple_count(); ++i) {
    ASSERT_GE(ck[i], 1);
    ASSERT_LE(ck[i], card.customers);
    ASSERT_GE(sk[i], 1);
    ASSERT_LE(sk[i], card.suppliers);
    ASSERT_GE(pk[i], 1);
    ASSERT_LE(pk[i], card.parts);
    ASSERT_EQ(rev[i], price[i] * (100 - disc[i]) / 100);
  }
}

TEST_F(SsbDatagenTest, DeterministicAcrossThreadCounts) {
  const Database a = GenerateSsb(0.01, 1);
  const Database b = GenerateSsb(0.01, 8);
  const auto ra = a["lineorder"].Col<int64_t>("lo_revenue");
  const auto rb = b["lineorder"].Col<int64_t>("lo_revenue");
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) ASSERT_EQ(ra[i], rb[i]) << i;
}

}  // namespace
}  // namespace vcq::datagen
