#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/query_catalog.h"
#include "api/session.h"
#include "datagen/ssb.h"
#include "datagen/tpch.h"
#include "runtime/options.h"
#include "runtime/params.h"
#include "runtime/query_result.h"
#include "sql/catalog.h"
#include "sql/fuzz.h"
#include "sql/reference_queries.h"
#include "sql/sql.h"

// The SQL front door's strongest guarantee: for every query of the studied
// workload, the hand-written SQL text (sql/reference_queries.h) prepared
// through Session::PrepareSql yields BYTE-IDENTICAL results to the
// catalog's hand-built plans — on Tectorwise at 1 and 8 threads and on the
// Volcano interpreter, under the spec-default parameter bindings. On top
// of that, a seeded random-query sweep (sql/fuzz.h) differentially tests
// the two lowerings against each other far outside the nine fixed shapes.

namespace vcq {
namespace {

using runtime::Database;
using runtime::QueryOptions;
using runtime::QueryParams;
using runtime::QueryResult;

const Database& TpchDb() {
  static const Database* db = new Database(datagen::GenerateTpch(0.01));
  return *db;
}

const Database& SsbDb() {
  static const Database* db = new Database(datagen::GenerateSsb(0.02));
  return *db;
}

const Database& DbFor(Workload w) {
  return w == Workload::kTpch ? TpchDb() : SsbDb();
}

/// Binds the catalog's spec defaults onto a SQL-prepared query (which has
/// no defaults of its own — the texts reuse the catalog's $names).
void BindDefaults(PreparedQuery& q, const QueryInfo& info) {
  for (const ParamSpec& spec : info.params) {
    if (spec.type == runtime::ParamType::kInt) {
      q.Set(spec.name, spec.default_int);
    } else {
      q.Set(spec.name, spec.default_string);
    }
  }
}

class SqlWorkloadTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SqlWorkloadTest, SqlMatchesCatalogPlanOnAllEngines) {
  const char* name = GetParam();
  const QueryInfo* info = FindQuery(name);
  ASSERT_NE(info, nullptr) << name;
  const char* text = sql::SqlTextFor(name);
  ASSERT_NE(text, nullptr) << name;

  Session session(DbFor(info->workload));
  // The ground truth: the catalog's hand-built Tectorwise plan with its
  // spec-default bindings.
  const QueryResult reference =
      session.Prepare(Engine::kTectorwise, info->query).Execute();
  ASSERT_TRUE(reference.ok()) << name;
  ASSERT_FALSE(reference.rows.empty()) << name << ": empty reference";

  for (const size_t threads : {size_t{1}, size_t{8}}) {
    QueryOptions opt;
    opt.threads = threads;
    PreparedQuery q =
        session.PrepareSql(text, Engine::kTectorwise, opt);
    BindDefaults(q, *info);
    const QueryResult got = q.Execute();
    EXPECT_EQ(got, reference)
        << name << " (tectorwise, " << threads << " threads)\n"
        << text;
  }
  PreparedQuery v = session.PrepareSql(text, Engine::kVolcano);
  BindDefaults(v, *info);
  EXPECT_EQ(v.Execute(), reference) << name << " (volcano)\n" << text;
}

INSTANTIATE_TEST_SUITE_P(AllNine, SqlWorkloadTest,
                         ::testing::Values("Q1", "Q6", "Q3", "Q9", "Q18",
                                           "SSB-Q1.1", "SSB-Q2.1",
                                           "SSB-Q3.1", "SSB-Q4.1"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-' || c == '.') c = '_';
                           return n;
                         });

/// Seeds come from a fixed base so failures reproduce; override the sweep
/// size with VCQ_SQL_FUZZ_N (the CI smoke uses the sql_fuzz example
/// instead, which exposes --seed/--n).
size_t FuzzCount(size_t fallback) {
  const char* env = std::getenv("VCQ_SQL_FUZZ_N");
  if (env == nullptr) return fallback;
  return static_cast<size_t>(std::strtoull(env, nullptr, 10));
}

void FuzzSweep(const Database& db, uint64_t seed_base, size_t count) {
  auto catalog = sql::MakeCatalog(db);
  size_t compiled = 0;
  for (uint64_t seed = seed_base; seed < seed_base + count; ++seed) {
    const std::string text = sql::GenerateFuzzQuery(*catalog, seed);
    sql::CompileResult c = sql::Compile(catalog, text);
    ASSERT_TRUE(c.ok()) << "seed " << seed << " failed to compile:\n"
                        << text << "\n"
                        << (c.error ? c.error->Format() : "");
    ++compiled;
    QueryOptions opt;
    opt.threads = (seed % 2 == 0) ? 1 : 4;
    const QueryResult tw = c.query->LowerTectorwise().Run(opt, {});
    QueryOptions vopt;
    vopt.threads = 1;
    const QueryResult volcano = c.query->RunVolcano(vopt, {});
    ASSERT_EQ(tw, volcano) << "seed " << seed << " diverged:\n" << text;
  }
  // Every seed must yield a usable query — the generator has no reject
  // path, so a drop here means it left the supported subset.
  EXPECT_EQ(compiled, count);
}

TEST(SqlFuzzDifferentialTest, TpchSeededSweep) {
  FuzzSweep(TpchDb(), /*seed_base=*/1000, FuzzCount(200));
}

TEST(SqlFuzzDifferentialTest, SsbSeededSweep) {
  FuzzSweep(SsbDb(), /*seed_base=*/5000, FuzzCount(200) / 2);
}

}  // namespace
}  // namespace vcq
