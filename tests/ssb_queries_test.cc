#include <gtest/gtest.h>

#include "api/vcq.h"
#include "datagen/ssb.h"
#include "runtime/types.h"

// SSB: Typer and Tectorwise are independent implementations and must agree;
// Q1.1 is additionally checked against a plain reference scan.

namespace vcq {
namespace {

using runtime::Database;
using runtime::QueryOptions;
using runtime::QueryResult;
using runtime::ResultBuilder;

const Database& TestDb() {
  static const Database* db = new Database(datagen::GenerateSsb(0.05));
  return *db;
}

QueryResult ReferenceQ11(const Database& db) {
  const auto& lo = db["lineorder"];
  const auto& date = db["date"];
  const auto d_datekey = date.Col<int32_t>("d_datekey");
  const auto d_year = date.Col<int32_t>("d_year");
  std::unordered_map<int32_t, int32_t> year_of;
  for (size_t i = 0; i < date.tuple_count(); ++i)
    year_of[d_datekey[i]] = d_year[i];
  const auto orderdate = lo.Col<int32_t>("lo_orderdate");
  const auto discount = lo.Col<int64_t>("lo_discount");
  const auto quantity = lo.Col<int64_t>("lo_quantity");
  const auto extprice = lo.Col<int64_t>("lo_extendedprice");
  int64_t total = 0;
  for (size_t i = 0; i < lo.tuple_count(); ++i) {
    if (discount[i] < 1 || discount[i] > 3 || quantity[i] >= 25) continue;
    const auto it = year_of.find(orderdate[i]);
    if (it == year_of.end() || it->second != 1993) continue;
    total += extprice[i] * discount[i];
  }
  ResultBuilder rb({"revenue"});
  rb.BeginRow().Numeric(total, 4);
  return rb.Finish();
}

struct SsbConfig {
  size_t threads;
  size_t vector_size;
  bool simd;
};

class SsbCrossEngineTest
    : public ::testing::TestWithParam<std::tuple<Query, SsbConfig>> {};

TEST_P(SsbCrossEngineTest, TyperAndTectorwiseAgree) {
  const auto [query, config] = GetParam();
  QueryOptions base;
  base.threads = 1;
  const QueryResult expected = RunQuery(TestDb(), Engine::kTyper, query, base);

  QueryOptions opt;
  opt.threads = config.threads;
  opt.vector_size = config.vector_size;
  opt.simd = config.simd;
  const QueryResult tw = RunQuery(TestDb(), Engine::kTectorwise, query, opt);
  EXPECT_EQ(tw, expected) << QueryName(query) << "\nexpected:\n"
                          << expected.ToString(12) << "\ngot:\n"
                          << tw.ToString(12);
  const QueryResult typer_mt = RunQuery(TestDb(), Engine::kTyper, query, opt);
  EXPECT_EQ(typer_mt, expected) << QueryName(query) << " typer multithread";
}

INSTANTIATE_TEST_SUITE_P(
    AllSsb, SsbCrossEngineTest,
    ::testing::Combine(::testing::Values(Query::kSsbQ11, Query::kSsbQ21,
                                         Query::kSsbQ31, Query::kSsbQ41),
                       ::testing::Values(SsbConfig{1, 1024, false},
                                         SsbConfig{1, 1024, true},
                                         SsbConfig{4, 257, false},
                                         SsbConfig{6, 1024, true})),
    [](const auto& info) {
      std::string name = QueryName(std::get<0>(info.param));
      for (char& c : name)
        if (c == '-' || c == '.') c = '_';
      const SsbConfig& c = std::get<1>(info.param);
      return name + "_t" + std::to_string(c.threads) + "_v" +
             std::to_string(c.vector_size) + (c.simd ? "_simd" : "");
    });

TEST(SsbReferenceTest, Q11BothEngines) {
  const QueryResult expected = ReferenceQ11(TestDb());
  EXPECT_EQ(RunQuery(TestDb(), Engine::kTyper, Query::kSsbQ11, {}), expected);
  EXPECT_EQ(RunQuery(TestDb(), Engine::kTectorwise, Query::kSsbQ11, {}),
            expected);
}

TEST(SsbShapeTest, Q21GroupsByYearAndBrand) {
  const QueryResult r =
      RunQuery(TestDb(), Engine::kTyper, Query::kSsbQ21, {});
  EXPECT_GT(r.rows.size(), 0u);
  // 7 years x 40 brands upper bound.
  EXPECT_LE(r.rows.size(), 280u);
}

TEST(SsbShapeTest, Q31NationPairsWithinAsia) {
  const QueryResult r =
      RunQuery(TestDb(), Engine::kTyper, Query::kSsbQ31, {});
  // 5 Asian nations squared x 6 years upper bound.
  EXPECT_LE(r.rows.size(), 5u * 5u * 6u);
  EXPECT_GT(r.rows.size(), 0u);
}

}  // namespace
}  // namespace vcq
