#include "tectorwise/operators.h"

#include <gtest/gtest.h>

#include <numeric>

#include "tectorwise/steps.h"

// Tectorwise Scan/Select/Map/FixedAggregation over synthetic relations,
// parameterized over vector sizes down to 1 (the Volcano degenerate case of
// Fig. 5) and up past typical morsel boundaries.

namespace vcq::tectorwise {
namespace {

using runtime::Relation;

Relation MakeNumbers(size_t n) {
  Relation rel;
  auto a = rel.AddColumn<int32_t>("a", n);
  auto b = rel.AddColumn<int64_t>("b", n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = static_cast<int32_t>(i % 100);
    b[i] = static_cast<int64_t>(i);
  }
  return rel;
}

class VectorSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(VectorSizeTest, ScanCoversAllTuples) {
  const size_t vecsize = GetParam();
  Relation rel = MakeNumbers(10007);
  Scan::Shared shared(rel.tuple_count(), 4096);
  Scan scan(&shared, &rel, vecsize);
  Slot* b = scan.AddColumn<int64_t>("b");
  int64_t sum = 0;
  size_t total = 0;
  size_t n;
  while ((n = scan.Next()) != kEndOfStream) {
    ASSERT_LE(n, vecsize);
    const int64_t* col = Get<int64_t>(b);
    for (size_t i = 0; i < n; ++i) sum += col[i];
    total += n;
  }
  EXPECT_EQ(total, 10007u);
  EXPECT_EQ(sum, int64_t{10007} * 10006 / 2);
}

TEST_P(VectorSizeTest, SelectChainMatchesReference) {
  const size_t vecsize = GetParam();
  Relation rel = MakeNumbers(10007);
  ExecContext ctx;
  ctx.vector_size = vecsize;
  Scan::Shared shared(rel.tuple_count(), 4096);
  auto scan = std::make_unique<Scan>(&shared, &rel, vecsize);
  Slot* a = scan->AddColumn<int32_t>("a");
  Slot* b = scan->AddColumn<int64_t>("b");
  auto select = std::make_unique<Select>(std::move(scan), vecsize);
  select->AddStep(MakeSelCmp<int32_t>(ctx, a, CmpOp::kLess, 50));
  select->AddStep(MakeSelCmp<int64_t>(ctx, b, CmpOp::kGreaterEq, 1000));

  size_t count = 0;
  size_t n;
  while ((n = select->Next()) != kEndOfStream) count += n;

  size_t expected = 0;
  for (size_t i = 0; i < 10007; ++i)
    if (static_cast<int32_t>(i % 100) < 50 && i >= 1000) ++expected;
  EXPECT_EQ(count, expected);
}

TEST_P(VectorSizeTest, MapAndFixedAggregation) {
  const size_t vecsize = GetParam();
  Relation rel = MakeNumbers(5000);
  ExecContext ctx;
  ctx.vector_size = vecsize;
  Scan::Shared shared(rel.tuple_count(), 4096);
  auto scan = std::make_unique<Scan>(&shared, &rel, vecsize);
  Slot* a = scan->AddColumn<int32_t>("a");
  Slot* b = scan->AddColumn<int64_t>("b");
  auto select = std::make_unique<Select>(std::move(scan), vecsize);
  select->AddStep(MakeSelCmp<int32_t>(ctx, a, CmpOp::kLess, 10));
  auto map = std::make_unique<Map>(std::move(select), vecsize);
  Slot* doubled = map->AddOutput<int64_t>();
  map->AddStep(
      MakeMapAddConst<int64_t>(0, b, map->OutputData<int64_t>(doubled)));
  Slot* squared = map->AddOutput<int64_t>();
  map->AddStep(
      MakeMapMul<int64_t>(b, b, map->OutputData<int64_t>(squared)));
  FixedAggregation agg(std::move(map));
  Slot* sum_b = agg.AddSumI64(doubled);
  Slot* sum_sq = agg.AddSumI64(squared);

  size_t n;
  size_t rows = 0;
  while ((n = agg.Next()) != kEndOfStream) rows += n;
  EXPECT_EQ(rows, 1u);

  int64_t expect_b = 0, expect_sq = 0;
  for (int64_t i = 0; i < 5000; ++i) {
    if (i % 100 < 10) {
      expect_b += i;
      expect_sq += i * i;
    }
  }
  EXPECT_EQ(*Get<int64_t>(sum_b), expect_b);
  EXPECT_EQ(*Get<int64_t>(sum_sq), expect_sq);
}

INSTANTIATE_TEST_SUITE_P(Sizes, VectorSizeTest,
                         ::testing::Values(1, 2, 16, 255, 1024, 4093, 65536));

TEST(SelectTest, AllFilteredYieldsEndOfStream) {
  Relation rel = MakeNumbers(1000);
  ExecContext ctx;
  Scan::Shared shared(rel.tuple_count(), 4096);
  auto scan = std::make_unique<Scan>(&shared, &rel, 1024);
  Slot* a = scan->AddColumn<int32_t>("a");
  Select select(std::move(scan), 1024);
  select.AddStep(MakeSelCmp<int32_t>(ctx, a, CmpOp::kLess, -1));
  EXPECT_EQ(select.Next(), kEndOfStream);
  EXPECT_EQ(select.Next(), kEndOfStream);  // stable after end
}

TEST(SelectTest, EmptyRelation) {
  Relation rel = MakeNumbers(0);
  // Zero-tuple relations still have columns; add them explicitly.
  Relation rel2;
  rel2.AddColumn<int32_t>("a", 0);
  Scan::Shared shared(0, 4096);
  Scan scan(&shared, &rel2, 1024);
  scan.AddColumn<int32_t>("a");
  EXPECT_EQ(scan.Next(), kEndOfStream);
}

TEST(ScanTest, ParallelWorkersPartitionMorsels) {
  Relation rel = MakeNumbers(100000);
  Scan::Shared shared(rel.tuple_count(), 1024);
  std::atomic<int64_t> sum{0};
  runtime::WorkerPool::Global().Run(8, [&](size_t) {
    Scan scan(&shared, &rel, 512);
    Slot* b = scan.AddColumn<int64_t>("b");
    int64_t local = 0;
    size_t n;
    while ((n = scan.Next()) != kEndOfStream) {
      const int64_t* col = Get<int64_t>(b);
      for (size_t i = 0; i < n; ++i) local += col[i];
    }
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), int64_t{100000} * 99999 / 2);
}

}  // namespace
}  // namespace vcq::tectorwise
