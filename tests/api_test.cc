#include "api/vcq.h"

#include <gtest/gtest.h>

#include "benchutil/bench.h"
#include "common/env_util.h"
#include "datagen/tpch.h"

namespace vcq {
namespace {

using runtime::Database;
using runtime::QueryOptions;

const Database& TestDb() {
  static const Database* db = new Database(datagen::GenerateTpch(0.01));
  return *db;
}

TEST(ApiTest, NamesAreStable) {
  EXPECT_STREQ(EngineName(Engine::kTyper), "Typer");
  EXPECT_STREQ(EngineName(Engine::kTectorwise), "Tectorwise");
  EXPECT_STREQ(EngineName(Engine::kVolcano), "Volcano");
  EXPECT_STREQ(QueryName(Query::kQ1), "Q1");
  EXPECT_STREQ(QueryName(Query::kSsbQ41), "SSB-Q4.1");
}

TEST(ApiTest, QueryListsPartitionTheWorkload) {
  EXPECT_EQ(TpchQueries().size(), 5u);
  EXPECT_EQ(SsbQueries().size(), 4u);
  for (Query q : TpchQueries()) EXPECT_FALSE(IsSsbQuery(q));
  for (Query q : SsbQueries()) EXPECT_TRUE(IsSsbQuery(q));
}

TEST(ApiTest, VolcanoDoesNotSupportSsb) {
  EXPECT_TRUE(EngineSupports(Engine::kVolcano, Query::kQ1));
  EXPECT_FALSE(EngineSupports(Engine::kVolcano, Query::kSsbQ11));
  EXPECT_TRUE(EngineSupports(Engine::kTyper, Query::kSsbQ11));
  EXPECT_TRUE(EngineSupports(Engine::kTectorwise, Query::kSsbQ11));
}

TEST(ApiTest, AdaptiveQ1MatchesStandardPlans) {
  // The §8.4 ordered-aggregation variant must be result-identical.
  const auto expected = RunQuery(TestDb(), Engine::kTyper, Query::kQ1, {});
  for (size_t threads : {size_t{1}, size_t{4}}) {
    for (size_t vecsize : {size_t{16}, size_t{1024}}) {
      QueryOptions opt;
      opt.threads = threads;
      opt.vector_size = vecsize;
      opt.adaptive = true;
      EXPECT_EQ(RunQuery(TestDb(), Engine::kTectorwise, Query::kQ1, opt),
                expected)
          << "threads=" << threads << " vecsize=" << vecsize;
    }
  }
}

TEST(ApiTest, RofQ9MatchesStandardPlans) {
  // The §9.1 relaxed-operator-fusion variant must be result-identical.
  const auto expected = RunQuery(TestDb(), Engine::kTyper, Query::kQ9, {});
  for (size_t threads : {size_t{1}, size_t{4}}) {
    QueryOptions opt;
    opt.threads = threads;
    opt.rof = true;
    EXPECT_EQ(RunQuery(TestDb(), Engine::kTyper, Query::kQ9, opt), expected)
        << "threads=" << threads;
  }
}

TEST(BenchUtilTest, TuplesScannedMatchesCardinalities) {
  const Database& db = TestDb();
  EXPECT_EQ(benchutil::TuplesScanned(db, Query::kQ1),
            db["lineitem"].tuple_count());
  EXPECT_EQ(benchutil::TuplesScanned(db, Query::kQ3),
            db["customer"].tuple_count() + db["orders"].tuple_count() +
                db["lineitem"].tuple_count());
  EXPECT_EQ(benchutil::TuplesScanned(db, Query::kQ9),
            db["part"].tuple_count() + db["supplier"].tuple_count() +
                db["partsupp"].tuple_count() + db["orders"].tuple_count() +
                db["lineitem"].tuple_count());
}

TEST(BenchUtilTest, MeasureReportsMedianAndRuns) {
  int calls = 0;
  const auto m = benchutil::Measure([&] { ++calls; }, 5);
  EXPECT_EQ(calls, 6);  // 5 timed reps + 1 counter run
  EXPECT_GE(m.ms, 0.0);
}

TEST(BenchUtilTest, Formatting) {
  EXPECT_EQ(benchutil::Fmt(1.23456, 2), "1.23");
  EXPECT_EQ(benchutil::FmtCounter(
                std::numeric_limits<double>::quiet_NaN()),
            "n/a");
  EXPECT_EQ(benchutil::FmtCounter(2.5, 1), "2.5");
}

TEST(EnvUtilTest, ParsesAndDefaults) {
  setenv("VCQ_TEST_INT", "42", 1);
  setenv("VCQ_TEST_DOUBLE", "2.5", 1);
  setenv("VCQ_TEST_BAD", "xyz", 1);
  EXPECT_EQ(EnvInt("VCQ_TEST_INT", 7), 42);
  EXPECT_EQ(EnvDouble("VCQ_TEST_DOUBLE", 7.0), 2.5);
  EXPECT_EQ(EnvInt("VCQ_TEST_BAD", 7), 7);
  EXPECT_EQ(EnvInt("VCQ_TEST_UNSET_____", 7), 7);
  EXPECT_FALSE(EnvFlag("VCQ_TEST_UNSET_____"));
  setenv("VCQ_TEST_FLAG", "1", 1);
  EXPECT_TRUE(EnvFlag("VCQ_TEST_FLAG"));
  setenv("VCQ_TEST_FLAG", "0", 1);
  EXPECT_FALSE(EnvFlag("VCQ_TEST_FLAG"));
}

}  // namespace
}  // namespace vcq
