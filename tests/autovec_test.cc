#include "tectorwise/autovec.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "common/cpu_info.h"
#include "runtime/hash.h"
#include "tectorwise/primitives.h"

// The Fig. 10 study's two builds of the same kernels must be semantically
// identical to each other and to the engine's own primitives — otherwise
// the instruction/time comparison compares different programs.

namespace vcq::tectorwise {
namespace {

class AutovecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!CpuInfo::HasAvx512())
      GTEST_SKIP() << "autovec_on TU requires AVX-512 at runtime";
    std::mt19937_64 rng(3);
    col32_.resize(kN);
    col64_.resize(kN);
    b64_.resize(kN);
    for (size_t i = 0; i < kN; ++i) {
      col32_[i] = static_cast<int32_t>(rng() % 1000);
      col64_[i] = static_cast<int64_t>(rng() % 1000);
      b64_[i] = static_cast<int64_t>(rng() % 100);
      if (i % 3 == 0) sel_.push_back(static_cast<pos_t>(i));
    }
  }

  static constexpr size_t kN = 10007;
  std::vector<int32_t> col32_;
  std::vector<int64_t> col64_, b64_;
  std::vector<pos_t> sel_;
};

TEST_F(AutovecTest, SelectionsAgree) {
  std::vector<pos_t> off(kN), on(kN), engine(kN);
  const size_t n_off = autovec_off::SelBetweenI32Dense(kN, col32_.data(), 100,
                                                       500, off.data());
  const size_t n_on = autovec_on::SelBetweenI32Dense(kN, col32_.data(), 100,
                                                     500, on.data());
  const size_t n_engine =
      SelBetweenDense<int32_t>(kN, col32_.data(), 100, 500, engine.data());
  ASSERT_EQ(n_off, n_on);
  ASSERT_EQ(n_off, n_engine);
  for (size_t i = 0; i < n_off; ++i) {
    ASSERT_EQ(off[i], on[i]);
    ASSERT_EQ(off[i], engine[i]);
  }

  const size_t s_off = autovec_off::SelLessI64Sparse(
      sel_.size(), sel_.data(), b64_.data(), 40, off.data());
  const size_t s_on = autovec_on::SelLessI64Sparse(
      sel_.size(), sel_.data(), b64_.data(), 40, on.data());
  ASSERT_EQ(s_off, s_on);
  for (size_t i = 0; i < s_off; ++i) ASSERT_EQ(off[i], on[i]);
}

TEST_F(AutovecTest, HashingAgreesWithRuntimeHash) {
  std::vector<uint64_t> off(kN), on(kN);
  autovec_off::HashI64Dense(kN, col64_.data(), off.data());
  autovec_on::HashI64Dense(kN, col64_.data(), on.data());
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(off[i], on[i]) << i;
    ASSERT_EQ(off[i],
              runtime::HashMurmur2(static_cast<uint64_t>(col64_[i])));
  }
}

TEST_F(AutovecTest, ArithmeticAgrees) {
  std::vector<int64_t> off(kN), on(kN);
  autovec_off::MapMulI64(kN, col64_.data(), b64_.data(), off.data());
  autovec_on::MapMulI64(kN, col64_.data(), b64_.data(), on.data());
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(off[i], on[i]);
  EXPECT_EQ(autovec_off::SumI64(kN, col64_.data()),
            autovec_on::SumI64(kN, col64_.data()));
}

}  // namespace
}  // namespace vcq::tectorwise
