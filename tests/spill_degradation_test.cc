#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "api/session.h"
#include "api/vcq.h"
#include "datagen/ssb.h"
#include "datagen/tpch.h"
#include "runtime/fault_injector.h"
#include "runtime/mem_pool.h"
#include "runtime/resource_governor.h"
#include "runtime/spill.h"

// PR 8 acceptance: degrade, don't die.
//
//  - Spill byte-identity: an execution whose memory budget is far below
//    its in-memory peak completes BY SPILLING — staging join builds and
//    group tables to temp files — and its result is byte-identical to the
//    unconstrained run, both engines, serial and parallel. The same budget
//    without spill fails with kResourceExhausted (the PR 6 behavior this
//    PR upgrades).
//  - Nothing leaks, ever: after a successful spilled run AND after a
//    mid-spill injected fault, MemPool::live_bytes(), the process
//    governor, and the spill directory are all back at their pre-run
//    baselines (every temp file unlinked).
//  - The degradation ladder: ExecuteWithDegradation retries
//    kResourceExhausted one rung down at a time (spill -> fewer threads ->
//    minimal vectors), stamps the surviving rung into the result, and
//    ExplainDegradation records the descent.
//  - ExecuteWithRetry honors RetryPolicy::total_timeout as an overall
//    wall-clock bound across attempts and backoff sleeps.

namespace vcq {
namespace {

namespace fs = std::filesystem;

using runtime::Database;
using runtime::ExecStatus;
using runtime::FaultAction;
using runtime::FaultInjector;
using runtime::FaultSpec;
using runtime::MemPool;
using runtime::QueryOptions;
using runtime::QueryResult;
using runtime::ResourceGovernor;
using runtime::SpillManager;

const Database& TpchDb() {
  static const Database* db = new Database(datagen::GenerateTpch(0.01));
  return *db;
}

const Database& SsbDb() {
  static const Database* db = new Database(datagen::GenerateSsb(0.01));
  return *db;
}

/// Redirects spill files into a private directory (VCQ_SPILL_DIR is
/// re-read per execution) so the tests can assert it returns to empty —
/// zero leftover spill files — after every run.
const std::string& SpillDir() {
  static const std::string* dir = [] {
    auto* d = new std::string(fs::temp_directory_path() /
                              ("vcq-spill-test-" + std::to_string(getpid())));
    fs::create_directories(*d);
    ::setenv("VCQ_SPILL_DIR", d->c_str(), 1);
    return d;
  }();
  return *dir;
}

size_t SpillDirEntries() {
  size_t n = 0;
  for ([[maybe_unused]] const auto& e : fs::directory_iterator(SpillDir()))
    ++n;
  return n;
}

struct Workload {
  const Database* db;
  Query query;
};

/// The in-memory reference plus its measured peak (threads=1 for exact,
/// deterministic accounting).
QueryResult Reference(Session& session, Engine engine, Query query,
                      size_t* peak) {
  QueryOptions opt;
  opt.threads = 1;
  PreparedQuery q = session.Prepare(engine, query, opt);
  QueryResult expected = q.Execute();
  *peak = q.measured_peak_bytes();
  return expected;
}

TEST(SpillTest, OverBudgetCompletesByteIdenticalWhereFailOnlyDied) {
  SpillDir();
  const Workload workloads[] = {
      {&TpchDb(), Query::kQ3},
      {&TpchDb(), Query::kQ9},
      {&SsbDb(), Query::kSsbQ41},
  };
  for (const Workload& wl : workloads) {
    Session session(*wl.db);
    for (Engine engine : {Engine::kTyper, Engine::kTectorwise}) {
      SCOPED_TRACE(std::string(QueryName(wl.query)) + " " +
                   EngineName(engine));
      size_t peak = 0;
      const QueryResult expected =
          Reference(session, engine, wl.query, &peak);
      ASSERT_TRUE(expected.ok());
      ASSERT_GT(peak, 0u);
      const size_t budget = std::max<size_t>(1, peak / 4);

      for (size_t threads : {size_t{1}, size_t{8}}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        // The PR 6 baseline: same budget, no spill -> the budget trip is
        // fatal. (Serial runs trip deterministically; parallel ones race
        // the trip against completion, so only the serial case asserts.)
        QueryOptions fail_opt;
        fail_opt.threads = threads;
        fail_opt.memory_budget = budget;
        PreparedQuery fail_only = session.Prepare(engine, wl.query, fail_opt);
        if (threads == 1) {
          EXPECT_EQ(fail_only.Execute().status,
                    ExecStatus::kResourceExhausted);
        }

        // Spill-enabled: completes, byte-identical, actually hit disk —
        // and every baseline (run-local memory, process governor, spill
        // directory) is restored afterwards.
        const size_t live_before = MemPool::live_bytes();
        const size_t gov_before = ResourceGovernor::Global().in_use();
        const size_t dir_before = SpillDirEntries();
        QueryOptions spill_opt = fail_opt;
        spill_opt.spill = true;
        PreparedQuery spilled = session.Prepare(engine, wl.query, spill_opt);
        const QueryResult got = spilled.Execute();
        EXPECT_EQ(got, expected);
        if (threads == 1) {
          // Serial pressure is deterministic: the quarter-budget run MUST
          // have spilled. (Parallel spill volume races the allocators.)
          EXPECT_GT(got.spilled_bytes, 0u);
        }
        EXPECT_EQ(MemPool::live_bytes(), live_before);
        EXPECT_EQ(ResourceGovernor::Global().in_use(), gov_before);
        EXPECT_EQ(SpillDirEntries(), dir_before)
            << "leftover spill files in " << SpillDir();
      }
    }
  }
}

TEST(SpillTest, MidSpillFaultRestoresEveryBaseline) {
  SpillDir();
  Session session(TpchDb());
  for (Engine engine : {Engine::kTyper, Engine::kTectorwise}) {
    SCOPED_TRACE(EngineName(engine));
    size_t peak = 0;
    const QueryResult expected =
        Reference(session, engine, Query::kQ9, &peak);
    ASSERT_TRUE(expected.ok());

    for (const char* point : {"spill.open", "spill.write", "spill.read"}) {
      SCOPED_TRACE(point);
      FaultInjector armed;
      armed.Arm(point, FaultSpec{FaultAction::kThrowBadAlloc, 1});
      QueryOptions opt;
      opt.threads = 1;
      opt.memory_budget = std::max<size_t>(1, peak / 4);
      opt.spill = true;
      opt.fault = &armed;
      PreparedQuery q = session.Prepare(engine, Query::kQ9, opt);

      const size_t live_before = MemPool::live_bytes();
      const size_t gov_before = ResourceGovernor::Global().in_use();
      const size_t dir_before = SpillDirEntries();
      const QueryResult got = q.Execute();
      EXPECT_EQ(armed.FiredCount(), 1u);
      EXPECT_EQ(got.status, ExecStatus::kResourceExhausted);
      EXPECT_TRUE(got.rows.empty());
      EXPECT_EQ(MemPool::live_bytes(), live_before);
      EXPECT_EQ(ResourceGovernor::Global().in_use(), gov_before);
      EXPECT_EQ(SpillDirEntries(), dir_before)
          << "mid-spill failure left temp files in " << SpillDir();
    }
  }
}

TEST(SpillTest, SpillLimitBoundsDiskUse) {
  SpillDir();
  Session session(TpchDb());
  size_t peak = 0;
  const QueryResult expected =
      Reference(session, Engine::kTyper, Query::kQ9, &peak);
  ASSERT_TRUE(expected.ok());

  // A spill-enabled run whose spill LIMIT is tiny fails like a memory trip
  // (disk is a resource too) — and still cleans up.
  QueryOptions opt;
  opt.threads = 1;
  opt.memory_budget = std::max<size_t>(1, peak / 4);
  opt.spill = true;
  opt.spill_limit = 1024;  // far below what the run needs to stage
  PreparedQuery q = session.Prepare(Engine::kTyper, Query::kQ9, opt);
  const size_t dir_before = SpillDirEntries();
  const QueryResult got = q.Execute();
  EXPECT_EQ(got.status, ExecStatus::kResourceExhausted);
  EXPECT_EQ(SpillDirEntries(), dir_before);
}

TEST(DegradationTest, LadderSurvivesOnSpillRung) {
  SpillDir();
  const Workload workloads[] = {
      {&TpchDb(), Query::kQ9},
      {&SsbDb(), Query::kSsbQ41},
  };
  for (const Workload& wl : workloads) {
    Session session(*wl.db);
    for (Engine engine : {Engine::kTyper, Engine::kTectorwise}) {
      SCOPED_TRACE(std::string(QueryName(wl.query)) + " " +
                   EngineName(engine));
      size_t peak = 0;
      const QueryResult expected =
          Reference(session, engine, wl.query, &peak);
      ASSERT_TRUE(expected.ok());

      // Prepared WITHOUT spill, budget far under peak: Execute() fails,
      // the ladder's rung 1 turns spill on and survives.
      QueryOptions opt;
      opt.threads = 1;
      opt.memory_budget = std::max<size_t>(1, peak / 4);
      PreparedQuery q = session.Prepare(engine, wl.query, opt);
      ASSERT_EQ(q.Execute().status, ExecStatus::kResourceExhausted);

      const QueryResult got = q.ExecuteWithDegradation();
      EXPECT_EQ(got, expected);
      EXPECT_EQ(got.degraded_rung, 1);
      EXPECT_GT(got.spilled_bytes, 0u);

      // The descent is on the record.
      const std::string explain = q.ExplainDegradation();
      EXPECT_NE(explain.find("rung 0 (as prepared): runs=1 ok=0"),
                std::string::npos)
          << explain;
      EXPECT_NE(explain.find("rung 1 (spill): runs=1 ok=1"),
                std::string::npos)
          << explain;
    }
  }
}

TEST(DegradationTest, UndegradedRunStaysOnRungZero) {
  Session session(TpchDb());
  QueryOptions opt;
  opt.threads = 1;
  PreparedQuery q = session.Prepare(Engine::kTyper, Query::kQ3, opt);
  const QueryResult direct = q.Execute();
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct.degraded_rung, 0);

  const QueryResult got = q.ExecuteWithDegradation();
  EXPECT_EQ(got, direct);
  EXPECT_EQ(got.degraded_rung, 0);
  EXPECT_EQ(got.spilled_bytes, 0u);
}

TEST(DegradationTest, ExhaustedLadderReturnsMostDegradedFailure) {
  SpillDir();
  Session session(TpchDb());
  size_t peak = 0;
  const QueryResult expected =
      Reference(session, Engine::kTyper, Query::kQ9, &peak);
  ASSERT_TRUE(expected.ok());

  // Budget under peak AND a tiny spill limit: every rung fails (spilling
  // trips the disk bound, thread/vector reductions cannot shrink the
  // resident build below a quarter of peak). The ladder runs dry and
  // reports the most degraded attempt.
  QueryOptions opt;
  opt.threads = 8;
  opt.memory_budget = std::max<size_t>(1, peak / 8);
  opt.spill_limit = 1024;
  PreparedQuery q = session.Prepare(Engine::kTyper, Query::kQ9, opt);
  const QueryResult got = q.ExecuteWithDegradation();
  EXPECT_EQ(got.status, ExecStatus::kResourceExhausted);
  EXPECT_EQ(got.degraded_rung, 3);
  EXPECT_TRUE(got.rows.empty());
}

TEST(DegradationTest, DisabledRungsAreSkipped) {
  SpillDir();
  Session session(TpchDb());
  size_t peak = 0;
  const QueryResult expected =
      Reference(session, Engine::kTyper, Query::kQ9, &peak);
  ASSERT_TRUE(expected.ok());

  QueryOptions opt;
  opt.threads = 1;
  opt.memory_budget = std::max<size_t>(1, peak / 4);
  PreparedQuery q = session.Prepare(Engine::kTyper, Query::kQ9, opt);

  // Spill disallowed, single-threaded prepare: only rung 3 remains after
  // rung 0, and without spill it cannot shrink the build below budget —
  // the failure surfaces from rung 3, never having touched disk.
  DegradationPolicy no_spill;
  no_spill.allow_spill = false;
  const QueryResult got = q.ExecuteWithDegradation(no_spill);
  EXPECT_EQ(got.status, ExecStatus::kResourceExhausted);
  EXPECT_EQ(got.degraded_rung, 3);
  EXPECT_EQ(got.spilled_bytes, 0u);
}

TEST(RetryTest, TotalTimeoutBoundsAttemptsAndSleeps) {
  Session session(TpchDb());
  size_t peak = 0;
  const QueryResult expected =
      Reference(session, Engine::kTyper, Query::kQ3, &peak);
  ASSERT_TRUE(expected.ok());

  // Always-failing configuration (budget trip, no spill): an unbounded
  // policy would sleep ~50 ms between each of 50 attempts. The 300 ms
  // total budget must cut that off and still return the FINAL attempt's
  // transient status, not some synthetic timeout.
  QueryOptions opt;
  opt.threads = 1;
  opt.memory_budget = std::max<size_t>(1, peak / 8);
  PreparedQuery q = session.Prepare(Engine::kTyper, Query::kQ3, opt);

  // Calibrate one failing attempt on this box/build (sanitizer builds on
  // the shared core can take hundreds of ms per attempt) so the ceiling
  // scales with attempt cost instead of assuming a wall-clock speed.
  const auto c0 = std::chrono::steady_clock::now();
  ASSERT_EQ(q.Execute().status, ExecStatus::kResourceExhausted);
  const auto attempt_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - c0)
          .count();

  RetryPolicy policy;
  policy.max_attempts = 50;
  policy.initial_backoff = std::chrono::milliseconds(50);
  policy.max_backoff = std::chrono::milliseconds(50);
  policy.total_timeout = std::chrono::milliseconds(300);
  const auto start = std::chrono::steady_clock::now();
  const QueryResult got = q.ExecuteWithRetry(policy);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  // The final attempt's own result comes back: its budget trip — or, if
  // the wall-clock budget lands mid-attempt, the deadline trip. Never a
  // success, never kCancelled.
  EXPECT_TRUE(got.status == ExecStatus::kResourceExhausted ||
              got.status == ExecStatus::kDeadlineExceeded)
      << "status=" << static_cast<int>(got.status);
  // Budget + a handful of attempt tails, far below the ~2.5 s of sleep
  // alone (49 x 50 ms) an unbounded schedule would add on top of 50
  // attempts' work.
  EXPECT_LT(elapsed.count(), 300 + 6 * std::max<int64_t>(attempt_ms, 50) + 500);
}

TEST(RetryTest, UnboundedPolicyStillReturnsFirstSuccess) {
  Session session(TpchDb());
  QueryOptions opt;
  opt.threads = 1;
  PreparedQuery q = session.Prepare(Engine::kTyper, Query::kQ3, opt);
  const QueryResult expected = q.Execute();
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(q.ExecuteWithRetry(), expected);
}

}  // namespace
}  // namespace vcq
