#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <string>
#include <vector>

#include "api/vcq.h"
#include "datagen/ssb.h"
#include "datagen/tpch.h"

// The join build/probe memory path (ISSUE 3), audited end to end:
//
//  * Probe-output accumulation under multi-threaded collectors (ROADMAP
//    open item): batch compaction makes HashJoin accumulate hits across
//    probe batches, which changes the batch boundaries every collector
//    sees; with several workers the collector interleaving changes too.
//    The matrix pins byte-identity at threads {1, 8} x vector sizes
//    {64, 1024} across all nine queries.
//
//  * Build-mode x prefetch equivalence: {CAS, partitioned} builds and
//    {staged, unstaged} probes must be unobservable in results for both
//    engines at threads {1, 4} — the acceptance matrix of the
//    partition-parallel build + ROF generalization.

namespace vcq {
namespace {

using runtime::BuildMode;
using runtime::CompactionMode;
using runtime::Database;
using runtime::QueryOptions;
using runtime::QueryResult;

const Database& TpchDb() {
  static const Database* db = new Database(datagen::GenerateTpch(0.02));
  return *db;
}

const Database& SsbDb() {
  static const Database* db = new Database(datagen::GenerateSsb(0.02));
  return *db;
}

const Database& DbFor(Query q) { return IsSsbQuery(q) ? SsbDb() : TpchDb(); }

std::vector<Query> AllQueries() {
  std::vector<Query> all = TpchQueries();
  for (Query q : SsbQueries()) all.push_back(q);
  return all;
}

/// Single-threaded Typer with the seed's CAS protocol: the anchor every
/// configuration must reproduce byte-identically.
const QueryResult& Expected(Query q) {
  static std::map<Query, QueryResult>* cache =
      new std::map<Query, QueryResult>();
  auto it = cache->find(q);
  if (it == cache->end()) {
    QueryOptions opt;
    opt.threads = 1;
    opt.build_mode = BuildMode::kCas;
    it = cache->emplace(q, RunQuery(DbFor(q), Engine::kTyper, q, opt)).first;
  }
  return it->second;
}

class JoinPathTest : public ::testing::TestWithParam<Query> {};

TEST_P(JoinPathTest, ProbeAccumulationMultiThreadedCollectors) {
  const Query q = GetParam();
  for (const size_t threads : {size_t{1}, size_t{8}}) {
    for (const size_t vecsize : {size_t{64}, size_t{1024}}) {
      for (const CompactionMode policy :
           {CompactionMode::kAlways, CompactionMode::kAdaptive}) {
        QueryOptions opt;
        opt.threads = threads;
        opt.vector_size = vecsize;
        opt.compaction = policy;
        EXPECT_EQ(RunQuery(DbFor(q), Engine::kTectorwise, q, opt),
                  Expected(q))
            << "threads=" << threads << " vecsize=" << vecsize
            << " policy=" << static_cast<int>(policy);
      }
    }
  }
}

TEST_P(JoinPathTest, BuildModeAndPrefetchAreResultInvariant) {
  const Query q = GetParam();
  for (const Engine engine : {Engine::kTyper, Engine::kTectorwise}) {
    for (const BuildMode mode : {BuildMode::kCas, BuildMode::kPartitioned}) {
      for (const bool rof : {false, true}) {
        for (const size_t threads : {size_t{1}, size_t{4}}) {
          // simd additionally routes staged probes through the AVX-512
          // JoinCandidatesStaged variant (no-op where unsupported).
          for (const bool simd : {false, true}) {
            if (simd && engine != Engine::kTectorwise) continue;
            QueryOptions opt;
            opt.threads = threads;
            opt.build_mode = mode;
            opt.rof = rof;
            opt.simd = simd;
            EXPECT_EQ(RunQuery(DbFor(q), engine, q, opt), Expected(q))
                << EngineName(engine) << " mode="
                << (mode == BuildMode::kCas ? "cas" : "partitioned")
                << " rof=" << rof << " threads=" << threads
                << " simd=" << simd;
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, JoinPathTest,
                         ::testing::ValuesIn(AllQueries()),
                         [](const ::testing::TestParamInfo<Query>& info) {
                           std::string name;
                           for (const char c : std::string(
                                    QueryName(info.param))) {
                             if (std::isalnum(static_cast<unsigned char>(c)))
                               name += c;
                           }
                           return name;
                         });

}  // namespace
}  // namespace vcq
