#include "volcano/volcano.h"

#include <gtest/gtest.h>

#include <map>

namespace vcq::volcano {
namespace {

std::unique_ptr<ScanOp> CountingScan(size_t n) {
  auto scan = std::make_unique<ScanOp>(n);
  scan->AddAccessor([](size_t i) { return static_cast<int64_t>(i); });
  return scan;
}

TEST(VolcanoScanTest, ProducesEveryTupleOnce) {
  auto scan = CountingScan(100);
  scan->Open();
  Row row;
  int64_t expected = 0;
  while (scan->Next(&row)) {
    ASSERT_EQ(row[0], expected);
    ++expected;
  }
  EXPECT_EQ(expected, 100);
}

TEST(VolcanoSelectTest, FiltersByPredicate) {
  auto select = std::make_unique<SelectOp>(
      CountingScan(100), [](const Row& r) { return r[0] % 7 == 0; });
  select->Open();
  Row row;
  int count = 0;
  while (select->Next(&row)) {
    ASSERT_EQ(row[0] % 7, 0);
    ++count;
  }
  EXPECT_EQ(count, 15);  // 0, 7, ..., 98
}

TEST(VolcanoProjectTest, AppendsComputedSlots) {
  auto project = std::make_unique<ProjectOp>(CountingScan(10));
  const size_t s_sq = project->AddExpr([](const Row& r) { return r[0] * r[0]; });
  project->Open();
  Row row;
  while (project->Next(&row)) ASSERT_EQ(row[s_sq], row[0] * row[0]);
}

TEST(VolcanoJoinTest, MatchesReferenceIncludingDuplicates) {
  // Build has duplicate keys: each probe row must match all of them.
  auto build = std::make_unique<ScanOp>(6);
  build->AddAccessor([](size_t i) { return static_cast<int64_t>(i % 3); });
  build->AddAccessor([](size_t i) { return static_cast<int64_t>(i * 10); });
  auto probe = CountingScan(9);
  auto project = std::make_unique<ProjectOp>(std::move(probe));
  const size_t s_key =
      project->AddExpr([](const Row& r) { return r[0] % 3; });
  auto join = std::make_unique<HashJoinOp>(std::move(build),
                                           std::move(project), 0, s_key,
                                           std::vector<size_t>{1});
  join->Open();
  Row row;
  std::map<int64_t, int> matches_per_probe;
  int total = 0;
  while (join->Next(&row)) {
    matches_per_probe[row[0]]++;
    ++total;
  }
  EXPECT_EQ(total, 18);  // every probe row matches 2 build rows
  for (const auto& [probe_id, count] : matches_per_probe)
    EXPECT_EQ(count, 2) << probe_id;
}

TEST(VolcanoJoinTest, NoMatches) {
  auto build = std::make_unique<ScanOp>(3);
  build->AddAccessor([](size_t i) { return static_cast<int64_t>(i + 100); });
  auto join = std::make_unique<HashJoinOp>(
      std::move(build), CountingScan(10), 0, 0, std::vector<size_t>{});
  join->Open();
  Row row;
  EXPECT_FALSE(join->Next(&row));
}

TEST(VolcanoGroupByTest, SumsAndCounts) {
  auto scan = std::make_unique<ScanOp>(100);
  scan->AddAccessor([](size_t i) { return static_cast<int64_t>(i % 4); });
  scan->AddAccessor([](size_t i) { return static_cast<int64_t>(i); });
  auto group = std::make_unique<GroupByOp>(std::move(scan),
                                           std::vector<size_t>{0});
  group->AddAgg(1);
  group->AddAgg(SIZE_MAX);
  group->Open();
  Row row;
  std::map<int64_t, std::pair<int64_t, int64_t>> got;
  while (group->Next(&row)) got[row[0]] = {row[1], row[2]};
  ASSERT_EQ(got.size(), 4u);
  for (int64_t k = 0; k < 4; ++k) {
    int64_t sum = 0, count = 0;
    for (int64_t i = k; i < 100; i += 4) {
      sum += i;
      ++count;
    }
    EXPECT_EQ(got[k].first, sum);
    EXPECT_EQ(got[k].second, count);
  }
}

TEST(VolcanoGroupByTest, EmptyInput) {
  auto group = std::make_unique<GroupByOp>(CountingScan(0),
                                           std::vector<size_t>{0});
  group->AddAgg(SIZE_MAX);
  group->Open();
  Row row;
  EXPECT_FALSE(group->Next(&row));
}

}  // namespace
}  // namespace vcq::volcano
