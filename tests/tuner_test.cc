#include "runtime/tuner.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "api/session.h"
#include "api/vcq.h"
#include "datagen/tpch.h"
#include "runtime/options.h"

// Self-tuning acceptance (PR 7): the bandit's arm sequence is a pure
// function of the seed during exploration, it converges to the known-best
// arm on a rigged reward, every arm it can draw produces byte-identical
// query results on both engines, and kOff/kFrozen-without-history behave
// exactly as today's static configuration.

namespace vcq {
namespace {

using runtime::KnobChoices;
using runtime::KnobKind;
using runtime::kQueryKnob;
using runtime::NodeTelemetry;
using runtime::QueryOptions;
using runtime::QueryResult;
using runtime::Tuner;
using runtime::TuningMode;

const runtime::Database& TpchDb() {
  static const runtime::Database* db =
      new runtime::Database(datagen::GenerateTpch(0.01));
  return *db;
}

// A small knob set shaped like a real query's: one query-level knob and
// two per-node knobs with different arm counts.
void RegisterTestKnobs(Tuner& tuner) {
  tuner.RegisterKnob("vector_size", kQueryKnob, KnobKind::kVectorSize,
                     {256, 512, 1024, 2048}, 2);
  tuner.RegisterKnob("select.compaction", 1, KnobKind::kCompaction,
                     {0, 1, 16, 64, 256}, 2);
  tuner.RegisterKnob("join.build_mode", 3, KnobKind::kBuildMode, {0, 1}, 0);
}

// The full choice vector of one Resolve, flattened for comparison.
std::vector<int64_t> Draw(Tuner& tuner, TuningMode mode) {
  KnobChoices choices;
  tuner.Resolve(mode, &choices);
  std::vector<int64_t> values;
  for (const auto& c : choices.all()) values.push_back(c.value);
  return values;
}

TEST(TunerTest, SameSeedSameArmSequence) {
  Tuner a(42), b(42);
  RegisterTestKnobs(a);
  RegisterTestKnobs(b);
  // Exploration choices are cost-independent, so even with only one tuner
  // observing costs the sequences must stay identical through the whole
  // exploration phase.
  NodeTelemetry telemetry;
  for (int i = 0; i < 22; ++i) {  // explore_total = 2*(4+5+2) = 22
    KnobChoices ca, cb;
    a.Resolve(TuningMode::kLearn, &ca);
    b.Resolve(TuningMode::kLearn, &cb);
    ASSERT_EQ(ca.all().size(), cb.all().size());
    for (size_t k = 0; k < ca.all().size(); ++k) {
      EXPECT_EQ(ca.all()[k].value, cb.all()[k].value) << "exec " << i;
    }
    a.Observe(ca, telemetry, 1000 + 37 * i, 10);  // costs must not matter
  }
  EXPECT_TRUE(a.Converged());
  // Convergence tracks observed rewards, not draws: b drew the same arms
  // but never observed a cost, so it is still exploring.
  EXPECT_FALSE(b.Converged());
}

TEST(TunerTest, DifferentSeedDifferentExplorationOrder) {
  Tuner a(42), b(43);
  RegisterTestKnobs(a);
  RegisterTestKnobs(b);
  bool diverged = false;
  for (int i = 0; i < 22 && !diverged; ++i) {
    if (Draw(a, TuningMode::kLearn) != Draw(b, TuningMode::kLearn)) {
      diverged = true;
    }
  }
  EXPECT_TRUE(diverged);
}

TEST(TunerTest, SeedResolutionPrecedence) {
  // Explicit request wins over everything.
  ::setenv("VCQ_TUNER_SEED", "99", 1);
  EXPECT_EQ(Tuner::ResolveSeed(7), 7u);
  // Zero request falls back to the environment.
  EXPECT_EQ(Tuner::ResolveSeed(0), 99u);
  // No request, no env: the fixed default — still deterministic.
  ::unsetenv("VCQ_TUNER_SEED");
  EXPECT_EQ(Tuner::ResolveSeed(0), 0x5eedf00dcafeull);
}

TEST(TunerTest, ConvergesToRiggedBestArm) {
  Tuner tuner(7);
  const size_t knob = tuner.RegisterKnob(
      "rigged", kQueryKnob, KnobKind::kRofBlock, {128, 256, 512, 1024}, 0);
  NodeTelemetry telemetry;
  // Rig the reward: arm 512 costs 10ns/t, everything else 100ns/t. After
  // exploration the UCB bonus (0.25 * sqrt(...)) is far smaller than the
  // 10x gap, so every post-exploration draw must pick 512.
  for (int i = 0; i < 40; ++i) {
    KnobChoices choices;
    tuner.Resolve(TuningMode::kLearn, &choices);
    const int64_t value = choices.Get(kQueryKnob, KnobKind::kRofBlock);
    ASSERT_NE(value, KnobChoices::kUnset);
    const uint64_t ns = value == 512 ? 10 * 100 : 100 * 100;
    tuner.Observe(choices, telemetry, ns, 100);
    if (i >= 8) {  // explore_total = 4 arms * 2 reps
      EXPECT_EQ(value, 512) << "post-exploration draw " << i;
    }
  }
  EXPECT_TRUE(tuner.Converged());
  EXPECT_EQ(tuner.ArmsOf(knob)[tuner.BestArm(knob)].value, 512);
  // Frozen resolution sticks to the learned best without advancing.
  tuner.Freeze();
  for (int i = 0; i < 3; ++i) {
    KnobChoices choices;
    tuner.Resolve(TuningMode::kLearn, &choices);
    EXPECT_EQ(choices.Get(kQueryKnob, KnobKind::kRofBlock), 512);
  }
}

TEST(TunerTest, PerNodeSpanBeatsQueryCost) {
  // A knob at a node with recorded telemetry is charged its own span, not
  // the query's: rig node 5's span so arm 1 wins there even though the
  // query-level cost would say otherwise.
  Tuner tuner(11);
  const size_t knob = tuner.RegisterKnob("node5.build", 5,
                                         KnobKind::kBuildMode, {0, 1}, 0);
  for (int i = 0; i < 8; ++i) {
    KnobChoices choices;
    tuner.Resolve(TuningMode::kLearn, &choices);
    const int64_t value = choices.Get(5, KnobKind::kBuildMode);
    NodeTelemetry telemetry;
    telemetry.RecordSpan(5, value == 1 ? 100 : 1000, 10);
    // Query-level cost is rigged the other way and must be ignored.
    tuner.Observe(choices, telemetry, value == 1 ? 100000 : 10, 1);
  }
  EXPECT_EQ(tuner.ArmsOf(knob)[tuner.BestArm(knob)].value, 1);
}

TEST(TunerTest, UntrainedBestArmIsDefault) {
  Tuner tuner(3);
  RegisterTestKnobs(tuner);
  // No Observe yet: kFrozen-style resolution must reproduce the statics.
  KnobChoices choices;
  tuner.Resolve(TuningMode::kFrozen, &choices);
  EXPECT_EQ(choices.Get(kQueryKnob, KnobKind::kVectorSize), 1024);
  EXPECT_EQ(choices.Get(1, KnobKind::kCompaction), 16);
  EXPECT_EQ(choices.Get(3, KnobKind::kBuildMode), 0);
  EXPECT_FALSE(tuner.Converged());
}

// --- session-level behavior --------------------------------------------------

TEST(TunerSessionTest, OffModeIsUntunedAndExplainSaysSo) {
  Session session(TpchDb());
  QueryOptions opt;
  opt.threads = 1;
  PreparedQuery q = session.Prepare(Engine::kTectorwise, Query::kQ3, opt);
  EXPECT_EQ(q.ExplainTuning(), "tuning: off\n");
  EXPECT_TRUE(q.TuningConverged());
  EXPECT_TRUE(q.Execute().ok());
}

TEST(TunerSessionTest, FrozenWithoutHistoryMatchesStatics) {
  Session session(TpchDb());
  for (Engine engine : {Engine::kTyper, Engine::kTectorwise}) {
    QueryOptions off;
    off.threads = 1;
    const QueryResult expected =
        session.Prepare(engine, Query::kQ3, off).Execute();
    ASSERT_TRUE(expected.ok());

    QueryOptions frozen = off;
    frozen.tuning = TuningMode::kFrozen;
    PreparedQuery q = session.Prepare(engine, Query::kQ3, frozen);
    EXPECT_EQ(q.Execute(), expected) << EngineName(engine);
    // An untrained frozen tuner reports default arms, not garbage.
    EXPECT_NE(q.ExplainTuning().find("tuner: seed="), std::string::npos);
  }
}

TEST(TunerSessionTest, ByteIdenticalAcrossArmsEnginesThreads) {
  // The core safety claim: arms change performance, never results. Drive a
  // learning tuner through its whole exploration phase — which by
  // construction visits every arm of every knob — and require every
  // execution byte-identical to the untuned reference.
  Session session(TpchDb());
  for (Engine engine : {Engine::kTyper, Engine::kTectorwise}) {
    for (size_t threads : {size_t{1}, size_t{8}}) {
      QueryOptions off;
      off.threads = threads;
      const QueryResult expected =
          session.Prepare(engine, Query::kQ3, off).Execute();
      ASSERT_TRUE(expected.ok());

      QueryOptions learn = off;
      learn.tuning = TuningMode::kLearn;
      learn.tuner_seed = 0xabcdef;
      PreparedQuery q = session.Prepare(engine, Query::kQ3, learn);
      int execs = 0;
      while (!q.TuningConverged() && execs < 128) {
        EXPECT_EQ(q.Execute(), expected)
            << EngineName(engine) << " threads=" << threads
            << " exec=" << execs << "\n"
            << q.ExplainTuning();
        ++execs;
      }
      EXPECT_TRUE(q.TuningConverged())
          << "exploration did not finish in " << execs << " executions\n"
          << q.ExplainTuning();
      // And a few post-convergence (UCB-chosen) executions.
      for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(q.Execute(), expected) << EngineName(engine);
      }
    }
  }
}

TEST(TunerSessionTest, LearnedQueryFreezesAndExplains) {
  Session session(TpchDb());
  QueryOptions learn;
  learn.threads = 1;
  learn.tuning = TuningMode::kLearn;
  learn.tuner_seed = 5;
  PreparedQuery q = session.Prepare(Engine::kTectorwise, Query::kQ3, learn);
  int execs = 0;
  while (!q.TuningConverged() && execs < 128) {
    ASSERT_TRUE(q.Execute().ok());
    ++execs;
  }
  ASSERT_TRUE(q.TuningConverged());

  const std::string explain = q.ExplainTuning();
  EXPECT_NE(explain.find("tuner: seed=5"), std::string::npos) << explain;
  EXPECT_NE(explain.find("vector_size"), std::string::npos) << explain;
  EXPECT_NE(explain.find("compaction"), std::string::npos) << explain;

  q.FreezeTuning();
  EXPECT_NE(q.ExplainTuning().find("[frozen]"), std::string::npos);
  // Frozen executions still work and stop advancing the schedule.
  const std::string before = q.ExplainTuning();
  EXPECT_TRUE(q.Execute().ok());
  EXPECT_EQ(q.ExplainTuning(), before);
}

TEST(TunerSessionTest, MeasuredPeakReplacesEstimateAfterFirstRun) {
  Session session(TpchDb());
  QueryOptions opt;
  opt.threads = 1;
  PreparedQuery q = session.Prepare(Engine::kTectorwise, Query::kQ3, opt);
  EXPECT_EQ(q.measured_peak_bytes(), 0u);
  ASSERT_TRUE(q.Execute().ok());
  const size_t peak = q.measured_peak_bytes();
  EXPECT_GT(peak, 0u);
  // Stable across re-executions of the same bindings.
  ASSERT_TRUE(q.Execute().ok());
  EXPECT_EQ(q.measured_peak_bytes(), peak);
}

}  // namespace
}  // namespace vcq
