#include "runtime/relation.h"

#include <gtest/gtest.h>

#include "runtime/query_result.h"

namespace vcq::runtime {
namespace {

TEST(RelationTest, AddAndReadColumns) {
  Relation rel;
  auto ints = rel.AddColumn<int32_t>("a", 100);
  auto longs = rel.AddColumn<int64_t>("b", 100);
  for (int i = 0; i < 100; ++i) {
    ints[i] = i;
    longs[i] = i * 10;
  }
  EXPECT_EQ(rel.tuple_count(), 100u);
  EXPECT_EQ(rel.column_count(), 2u);
  const auto a = rel.Col<int32_t>("a");
  const auto b = rel.Col<int64_t>("b");
  EXPECT_EQ(a[42], 42);
  EXPECT_EQ(b[42], 420);
}

TEST(RelationTest, CharColumns) {
  Relation rel;
  auto col = rel.AddColumn<Char<10>>("seg", 3);
  col[0] = Char<10>::From("BUILDING");
  EXPECT_EQ(rel.Col<Char<10>>("seg")[0].View(), "BUILDING");
}

TEST(RelationTest, ColumnBuffersAreCacheAligned) {
  Relation rel;
  auto col = rel.AddColumn<int64_t>("x", 7);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(col.data()) % 64, 0u);
}

TEST(RelationTest, HasColumn) {
  Relation rel;
  rel.AddColumn<int32_t>("a", 1);
  EXPECT_TRUE(rel.HasColumn("a"));
  EXPECT_FALSE(rel.HasColumn("b"));
}

TEST(RelationTest, ByteSizeSums) {
  Relation rel;
  rel.AddColumn<int32_t>("a", 100);
  rel.AddColumn<int64_t>("b", 100);
  EXPECT_EQ(rel.byte_size(), 100 * (4 + 8));
}

TEST(RelationDeathTest, TypeMismatchAborts) {
  Relation rel;
  rel.AddColumn<int32_t>("a", 10);
  EXPECT_DEATH(rel.Col<int64_t>("a"), "column type mismatch");
}

TEST(RelationDeathTest, UnknownColumnAborts) {
  Relation rel;
  rel.AddColumn<int32_t>("a", 10);
  EXPECT_DEATH(rel.Col<int32_t>("zzz"), "zzz");
}

TEST(RelationDeathTest, CardinalityMismatchAborts) {
  Relation rel;
  rel.AddColumn<int32_t>("a", 10);
  EXPECT_DEATH(rel.AddColumn<int32_t>("b", 11), "cardinality");
}

TEST(DatabaseTest, AddAndLookup) {
  Database db;
  db.Add("t").AddColumn<int32_t>("a", 5);
  EXPECT_TRUE(db.Has("t"));
  EXPECT_FALSE(db.Has("u"));
  EXPECT_EQ(db["t"].tuple_count(), 5u);
}

TEST(QueryResultTest, BuilderAndFormatting) {
  ResultBuilder rb({"k", "v"});
  rb.BeginRow().Int(1).Numeric(12345, 2);
  rb.BeginRow().Int(2).Numeric(-5, 2);
  QueryResult r = rb.Finish();
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][1], "123.45");
  EXPECT_EQ(r.rows[1][1], "-0.05");
  const std::string s = r.ToString();
  EXPECT_NE(s.find("123.45"), std::string::npos);
}

TEST(QueryResultTest, SortAndEquality) {
  ResultBuilder rb1({"a"});
  rb1.BeginRow().Int(2);
  rb1.BeginRow().Int(1);
  QueryResult r1 = rb1.Finish();

  ResultBuilder rb2({"a"});
  rb2.BeginRow().Int(1);
  rb2.BeginRow().Int(2);
  QueryResult r2 = rb2.Finish();

  EXPECT_FALSE(r1 == r2);
  r1.SortRows();
  r2.SortRows();
  EXPECT_TRUE(r1 == r2);
}

TEST(QueryResultTest, DateFormatting) {
  ResultBuilder rb({"d"});
  rb.BeginRow().Date(DateFromString("1995-03-15"));
  EXPECT_EQ(rb.Finish().rows[0][0], "1995-03-15");
}

TEST(QueryResultTest, ToStringLimit) {
  ResultBuilder rb({"a"});
  for (int i = 0; i < 100; ++i) rb.BeginRow().Int(i);
  const std::string s = rb.Finish().ToString(3);
  EXPECT_NE(s.find("97 more rows"), std::string::npos);
}

}  // namespace
}  // namespace vcq::runtime
