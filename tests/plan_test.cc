#include "tectorwise/plan.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "api/vcq.h"
#include "datagen/ssb.h"
#include "datagen/tpch.h"
#include "runtime/relation.h"
#include "tectorwise/queries.h"

// The declarative plan-builder layer: slot-usage-derived compaction
// registration (unit tests on synthetic plans + a cross-check that the
// derived sets cover the hand-written CompactColumn lists PR 1 shipped for
// every studied query), misuse detection, and result equality of every
// builder-described query across all compaction policies and thread
// counts.

namespace vcq::tectorwise {
namespace {

using runtime::Char;
using runtime::Database;
using runtime::QueryOptions;
using runtime::QueryResult;
using runtime::Relation;

Relation MakeFact(size_t n) {
  Relation rel;
  auto a = rel.AddColumn<int32_t>("a", n);
  auto b = rel.AddColumn<int64_t>("b", n);
  auto c = rel.AddColumn<int64_t>("c", n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = static_cast<int32_t>(i % 100);
    b[i] = static_cast<int64_t>(i);
    c[i] = static_cast<int64_t>(i) * 7;
  }
  return rel;
}

std::vector<Plan::NodeInfo> SelectInfos(const Plan& plan) {
  std::vector<Plan::NodeInfo> selects;
  for (const Plan::NodeInfo& info : plan.Describe()) {
    if (info.kind == NodeKind::kSelect) selects.push_back(info);
  }
  return selects;
}

std::set<std::string> AsSet(const std::vector<std::string>& names) {
  return {names.begin(), names.end()};
}

// ---------------------------------------------------------------------------
// Slot-usage derivation on synthetic plans
// ---------------------------------------------------------------------------

TEST(PlanDerivationTest, FilterOnlyColumnIsNotRegistered) {
  const Relation fact = MakeFact(1000);
  PlanBuilder pb("t");
  auto& scan = pb.Scan(fact, "fact");
  const ColumnRef a = scan.Col<int32_t>("a");
  const ColumnRef b = scan.Col<int64_t>("b");
  scan.Col<int64_t>("c");  // declared but never consumed anywhere
  auto& sel = pb.Select(scan);
  sel.Cmp<int32_t>(a, CmpOp::kLess, 10);
  auto& agg = pb.FixedAgg(sel);
  const ColumnRef total = agg.Sum(b, "total");
  const Plan plan = pb.Build(agg, {total});

  const auto selects = SelectInfos(plan);
  ASSERT_EQ(selects.size(), 1u);
  // `a` is consumed only by the Select itself, `c` by nobody: only `b`
  // (read above the Select by the aggregation) needs densification.
  EXPECT_EQ(AsSet(selects[0].compacts), (std::set<std::string>{"b"}));
}

TEST(PlanDerivationTest, FilterColumnConsumedAboveIsRegistered) {
  const Relation fact = MakeFact(1000);
  PlanBuilder pb("t");
  auto& scan = pb.Scan(fact, "fact");
  const ColumnRef a = scan.Col<int32_t>("a");
  const ColumnRef b = scan.Col<int64_t>("b");
  auto& sel = pb.Select(scan);
  sel.Cmp<int32_t>(a, CmpOp::kLess, 10);
  auto& group = pb.HashGroup(sel);
  const ColumnRef g_a = group.Key<int32_t>(a);  // filter column reused above
  const ColumnRef g_b = group.Sum(b);
  const Plan plan = pb.Build(group, {g_a, g_b});

  const auto selects = SelectInfos(plan);
  ASSERT_EQ(selects.size(), 1u);
  EXPECT_EQ(AsSet(selects[0].compacts), (std::set<std::string>{"a", "b"}));
}

TEST(PlanDerivationTest, MapOutputsAboveSelectAreNotRegistered) {
  const Relation fact = MakeFact(1000);
  PlanBuilder pb("t");
  auto& scan = pb.Scan(fact, "fact");
  const ColumnRef a = scan.Col<int32_t>("a");
  const ColumnRef b = scan.Col<int64_t>("b");
  const ColumnRef c = scan.Col<int64_t>("c");
  auto& sel = pb.Select(scan);
  sel.Cmp<int32_t>(a, CmpOp::kLess, 10);
  auto& map = pb.Map(sel);
  const ColumnRef prod = map.Mul<int64_t>(b, c, "prod");
  auto& agg = pb.FixedAgg(map);
  const ColumnRef total = agg.Sum(prod, "total");
  const Plan plan = pb.Build(agg, {total});

  const auto selects = SelectInfos(plan);
  ASSERT_EQ(selects.size(), 1u);
  // The Map inputs b and c live below the Select and must be registered;
  // its output `prod` is recomputed above the Select and must not be.
  EXPECT_EQ(AsSet(selects[0].compacts), (std::set<std::string>{"b", "c"}));
}

TEST(PlanDerivationTest, SelectAboveGroupRegistersGroupOutputs) {
  const Relation fact = MakeFact(1000);
  PlanBuilder pb("t");
  auto& scan = pb.Scan(fact, "fact");
  const ColumnRef a = scan.Col<int32_t>("a");
  const ColumnRef b = scan.Col<int64_t>("b");
  auto& group = pb.HashGroup(scan);
  const ColumnRef g_a = group.Key<int32_t>(a);
  const ColumnRef g_b = group.Sum(b);
  auto& having = pb.Select(group);
  having.Cmp<int64_t>(g_b, CmpOp::kGreater, 100);
  auto& map = pb.Map(having);
  map.Year(g_a, "y");  // consumes the group key above the having-Select
  auto& agg = pb.FixedAgg(map);
  const ColumnRef total = agg.Sum(g_b, "total");
  const Plan plan = pb.Build(agg, {total});

  const auto selects = SelectInfos(plan);
  ASSERT_EQ(selects.size(), 1u);
  // Scan columns a/b are consumed below the having-Select (by the group),
  // not above it; the group *outputs* are what flows upward. Note sum(b)
  // is registered even though it is also the filter column.
  EXPECT_EQ(AsSet(selects[0].compacts),
            (std::set<std::string>{"a", "sum(b)"}));
}

TEST(PlanDerivationTest, JoinRegistersKeysAndPayloadsOnBothSides) {
  const Relation fact = MakeFact(1000);
  Relation dim;
  {
    auto k = dim.AddColumn<int32_t>("k", 100);
    auto flag = dim.AddColumn<int32_t>("flag", 100);
    auto pay = dim.AddColumn<int64_t>("pay", 100);
    for (size_t i = 0; i < 100; ++i) {
      k[i] = static_cast<int32_t>(i);
      flag[i] = static_cast<int32_t>(i % 2);
      pay[i] = static_cast<int64_t>(i);
    }
  }
  PlanBuilder pb("t");
  auto& dscan = pb.Scan(dim, "dim");
  const ColumnRef k = dscan.Col<int32_t>("k");
  const ColumnRef flag = dscan.Col<int32_t>("flag");
  const ColumnRef pay = dscan.Col<int64_t>("pay");
  auto& dsel = pb.Select(dscan);
  dsel.Cmp<int32_t>(flag, CmpOp::kEq, 1);

  auto& fscan = pb.Scan(fact, "fact");
  const ColumnRef a = fscan.Col<int32_t>("a");
  const ColumnRef b = fscan.Col<int64_t>("b");
  const ColumnRef c = fscan.Col<int64_t>("c");
  auto& fsel = pb.Select(fscan);
  fsel.Cmp<int64_t>(c, CmpOp::kLess, 5000);

  auto& join = pb.HashJoin(dsel, fsel);
  join.Key<int32_t>(a, k);
  const ColumnRef j_pay = join.Build<int64_t>(pay);
  const ColumnRef j_b = join.Probe<int64_t>(b);

  auto& agg = pb.FixedAgg(join);
  const ColumnRef s1 = agg.Sum(j_pay, "s1");
  const ColumnRef s2 = agg.Sum(j_b, "s2");
  const Plan plan = pb.Build(agg, {s1, s2});

  const auto selects = SelectInfos(plan);
  ASSERT_EQ(selects.size(), 2u);
  // Build-side Select: the join consumes key k and payload pay above it;
  // the filter column flag does not flow further.
  EXPECT_EQ(AsSet(selects[0].compacts), (std::set<std::string>{"k", "pay"}));
  // Probe-side Select: probe key a and probe output b; filter column c is
  // not read above the Select.
  EXPECT_EQ(AsSet(selects[1].compacts), (std::set<std::string>{"a", "b"}));
}

TEST(PlanDerivationTest, MisuseAcrossRematerializingOperatorIsRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Relation fact = MakeFact(1000);
  Relation dim;
  {
    auto k = dim.AddColumn<int32_t>("k", 100);
    for (size_t i = 0; i < 100; ++i) k[i] = static_cast<int32_t>(i);
  }
  EXPECT_DEATH(
      {
        PlanBuilder pb("t");
        auto& dscan = pb.Scan(dim, "dim");
        const ColumnRef k = dscan.Col<int32_t>("k");
        auto& fscan = pb.Scan(fact, "fact");
        const ColumnRef a = fscan.Col<int32_t>("a");
        const ColumnRef b = fscan.Col<int64_t>("b");
        auto& join = pb.HashJoin(dscan, fscan);
        join.Key<int32_t>(a, k);
        auto& agg = pb.FixedAgg(join);
        // `b` was never re-emitted through the join: reading it above the
        // join would silently misalign positions. Build() must reject it.
        const ColumnRef total = agg.Sum(b, "total");
        pb.Build(agg, {total});
      },
      "rematerializing");
}

// ---------------------------------------------------------------------------
// Builder-described execution matches a scalar reference on all policies
// ---------------------------------------------------------------------------

TEST(PlanExecutionTest, JoinGroupPipelineMatchesReferenceAcrossPolicies) {
  const Relation fact = MakeFact(50'000);
  Relation dim;
  constexpr size_t kDim = 100;
  {
    auto k = dim.AddColumn<int32_t>("k", kDim);
    auto flag = dim.AddColumn<int32_t>("flag", kDim);
    for (size_t i = 0; i < kDim; ++i) {
      k[i] = static_cast<int32_t>(i);
      flag[i] = static_cast<int32_t>(i % 7 == 0);
    }
  }
  // Reference: sum(b) grouped by a over rows with a < 8 (sparse ~8%
  // survivors, exercising the compaction points) joined to flagged dims.
  std::map<int32_t, int64_t> want;
  {
    const auto a = fact.Col<int32_t>("a");
    const auto b = fact.Col<int64_t>("b");
    const auto flag = dim.Col<int32_t>("flag");
    for (size_t i = 0; i < fact.tuple_count(); ++i) {
      if (a[i] < 8 && flag[a[i]] == 1) want[a[i]] += b[i];
    }
  }

  for (const auto mode :
       {runtime::CompactionMode::kNever, runtime::CompactionMode::kAlways,
        runtime::CompactionMode::kAdaptive}) {
    for (const size_t threads : {size_t{1}, size_t{3}}) {
      PlanBuilder pb("t");
      auto& dscan = pb.Scan(dim, "dim");
      const ColumnRef k = dscan.Col<int32_t>("k");
      const ColumnRef flag = dscan.Col<int32_t>("flag");
      auto& dsel = pb.Select(dscan);
      dsel.Cmp<int32_t>(flag, CmpOp::kEq, 1);

      auto& fscan = pb.Scan(fact, "fact");
      const ColumnRef a = fscan.Col<int32_t>("a");
      const ColumnRef b = fscan.Col<int64_t>("b");
      auto& fsel = pb.Select(fscan);
      fsel.Cmp<int32_t>(a, CmpOp::kLess, 8);

      auto& join = pb.HashJoin(dsel, fsel);
      join.Key<int32_t>(a, k);
      const ColumnRef j_a = join.Probe<int32_t>(a);
      const ColumnRef j_b = join.Probe<int64_t>(b);

      auto& group = pb.HashGroup(join);
      const ColumnRef g_a = group.Key<int32_t>(j_a);
      const ColumnRef g_b = group.Sum(j_b);
      const Plan plan = pb.Build(group, {g_a, g_b});

      QueryOptions opt;
      opt.threads = threads;
      opt.compaction = mode;
      opt.compaction_threshold = 0.25;

      std::map<int32_t, int64_t> got;
      plan.Run(opt, [&](const Plan::Batch& batch) {
        for (size_t i = 0; i < batch.size(); ++i) {
          got[batch.Column<int32_t>(g_a)[i]] +=
              batch.Column<int64_t>(g_b)[i];
        }
      });
      EXPECT_EQ(got, want) << "mode=" << static_cast<int>(mode)
                           << " threads=" << threads;
    }
  }
}

TEST(PlanExecutionTest, DensePartitionOutputMergesGroupEmission) {
  // 512 groups spread over HashGroup's 64 hash partitions: per-partition
  // emission produces ~64 tiny batches, partition-emission compaction must
  // fold them into ceil(512 / 1024) = 1 full dense vector (same rows).
  const size_t n = 100'000;
  Relation fact;
  {
    auto a = fact.AddColumn<int32_t>("a", n);
    auto b = fact.AddColumn<int64_t>("b", n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<int32_t>(i % 512);
      b[i] = static_cast<int64_t>(i);
    }
  }
  auto run = [&](bool dense) {
    PlanBuilder pb("t");
    auto& scan = pb.Scan(fact, "fact");
    const ColumnRef a = scan.Col<int32_t>("a");
    const ColumnRef b = scan.Col<int64_t>("b");
    auto& group = pb.HashGroup(scan);
    const ColumnRef g_a = group.Key<int32_t>(a);
    const ColumnRef g_b = group.Sum(b);
    group.DensePartitionOutput(dense);
    const Plan plan = pb.Build(group, {g_a, g_b});
    std::map<int32_t, int64_t> got;
    size_t batches = 0;
    plan.Run(QueryOptions{}, [&](const Plan::Batch& batch) {
      ++batches;
      for (size_t i = 0; i < batch.size(); ++i) {
        got[batch.Column<int32_t>(g_a)[i]] += batch.Column<int64_t>(g_b)[i];
      }
    });
    return std::pair<std::map<int32_t, int64_t>, size_t>{got, batches};
  };
  const auto [sparse_rows, sparse_batches] = run(false);
  const auto [dense_rows, dense_batches] = run(true);
  EXPECT_EQ(sparse_rows, dense_rows);
  EXPECT_EQ(dense_batches, 1u);
  EXPECT_GT(sparse_batches, 32u);  // one batch per non-empty partition
}

// ---------------------------------------------------------------------------
// Derived registrations cover the hand lists PR 1 shipped per query
// ---------------------------------------------------------------------------

const Database& TpchDb() {
  static const Database* db = new Database(datagen::GenerateTpch(0.02));
  return *db;
}

const Database& SsbDb() {
  static const Database* db = new Database(datagen::GenerateSsb(0.03));
  return *db;
}

// Expected registration sets, one per Select in plan order — transcribed
// from the CompactColumn<T> calls PR 1 listed by hand in queries_*.cc.
const std::map<std::string, std::vector<std::set<std::string>>>&
HandLists() {
  static const auto* lists =
      new std::map<std::string, std::vector<std::set<std::string>>>{
          {"Q1",
           {{"l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice",
             "l_discount", "l_tax"}}},
          {"Q1-adaptive",
           {{"l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice",
             "l_discount", "l_tax"}}},
          {"Q6", {{"l_extendedprice", "l_discount"}}},
          {"Q3",
           {{"c_custkey"},
            {"o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"},
            {"l_orderkey", "l_extendedprice", "l_discount"}}},
          {"Q9", {{"p_partkey"}}},
          {"Q18", {{"l_orderkey", "sum(l_quantity)"}}},
          {"SSB-Q1.1",
           {{"d_datekey"},
            {"lo_orderdate", "lo_discount", "lo_extendedprice"}}},
          {"SSB-Q2.1", {{"p_partkey", "p_brand1"}, {"s_suppkey"}}},
          {"SSB-Q3.1",
           {{"c_custkey", "c_nation"},
            {"s_suppkey", "s_nation"},
            {"d_datekey", "d_year"}}},
          {"SSB-Q4.1",
           {{"c_custkey", "c_nation"}, {"s_suppkey"}, {"p_partkey"}}},
      };
  return *lists;
}

TEST(PlanRegistrationTest, DerivedSetsMatchHandListsForAllQueries) {
  for (const auto& [query, expected] : HandLists()) {
    const bool ssb = query.rfind("SSB", 0) == 0;
    const Plan plan = PlanFor(ssb ? SsbDb() : TpchDb(), query);
    std::vector<std::set<std::string>> derived;
    for (const Plan::NodeInfo& info : plan.Describe()) {
      if (info.kind == NodeKind::kSelect) derived.push_back(AsSet(info.compacts));
    }
    EXPECT_EQ(derived, expected) << query;
  }
}

TEST(PlanRegistrationTest, BuildModeNodePropertyAnnotatedAndHonored) {
  // A per-node build-mode override shows up in EXPLAIN and the plan stays
  // result-identical to the run-wide default.
  const Relation dim = MakeFact(100);
  const Relation fact = MakeFact(4000);
  auto make = [&](bool override_mode) {
    PlanBuilder pb("bm");
    auto& dscan = pb.Scan(dim, "dim");
    const ColumnRef dk = dscan.Col<int32_t>("a");
    const ColumnRef dv = dscan.Col<int64_t>("b");
    auto& fscan = pb.Scan(fact, "fact");
    const ColumnRef fk = fscan.Col<int32_t>("a");
    auto& join = pb.HashJoin(dscan, fscan);
    join.Key<int32_t>(fk, dk);
    if (override_mode) join.SetBuildMode(runtime::BuildMode::kCas);
    const ColumnRef jv = join.Build<int64_t>(dv);
    auto& agg = pb.FixedAgg(join);
    const ColumnRef total = agg.Sum(jv, "total");
    return std::make_pair(pb.Build(agg, {total}), total);
  };
  auto [overridden, o_total] = make(true);
  EXPECT_NE(overridden.ToString().find("build mode: cas"), std::string::npos);
  auto [plain, p_total] = make(false);
  EXPECT_EQ(plain.ToString().find("build mode:"), std::string::npos);

  QueryOptions opt;
  opt.threads = 4;
  int64_t got_o = 0, got_p = 0;
  overridden.Run(opt, [&](const Plan::Batch& b) {
    got_o += b.Column<int64_t>(o_total)[0];
  });
  plain.Run(opt, [&](const Plan::Batch& b) {
    got_p += b.Column<int64_t>(p_total)[0];
  });
  EXPECT_EQ(got_o, got_p);
}

TEST(PlanRegistrationTest, ToStringListsNodesAndRegistrations) {
  const std::string dump = PlanFor(TpchDb(), "Q3").ToString();
  EXPECT_NE(dump.find("plan Q3"), std::string::npos);
  EXPECT_NE(dump.find("hash-join"), std::string::npos);
  EXPECT_NE(dump.find("compacts: c_custkey"), std::string::npos);
  EXPECT_NE(dump.find("result: "), std::string::npos);
}

// ---------------------------------------------------------------------------
// All nine queries: byte-identical results across policies x threads
// ---------------------------------------------------------------------------

QueryOptions MatrixOptions(runtime::CompactionMode mode, size_t threads) {
  QueryOptions opt;
  opt.threads = threads;
  opt.compaction = mode;
  return opt;
}

TEST(PlanEquivalenceTest, AllQueriesAcrossPoliciesAndThreads) {
  auto check = [](const Database& db, Query query) {
    const QueryResult baseline =
        RunQuery(db, Engine::kTectorwise, query,
                 MatrixOptions(runtime::CompactionMode::kNever, 1));
    for (const auto mode :
         {runtime::CompactionMode::kNever, runtime::CompactionMode::kAlways,
          runtime::CompactionMode::kAdaptive}) {
      for (const size_t threads : {size_t{1}, size_t{4}}) {
        const QueryResult got = RunQuery(db, Engine::kTectorwise, query,
                                         MatrixOptions(mode, threads));
        EXPECT_EQ(baseline.ToString(), got.ToString())
            << QueryName(query) << " mode=" << static_cast<int>(mode)
            << " threads=" << threads;
      }
    }
  };
  for (const Query query : TpchQueries()) check(TpchDb(), query);
  for (const Query query : SsbQueries()) check(SsbDb(), query);
}

TEST(PlanEquivalenceTest, AdaptiveQ1MatchesHashQ1AcrossPolicies) {
  const QueryResult baseline =
      RunQuery(TpchDb(), Engine::kTectorwise, Query::kQ1,
               MatrixOptions(runtime::CompactionMode::kNever, 1));
  for (const auto mode :
       {runtime::CompactionMode::kNever, runtime::CompactionMode::kAlways,
        runtime::CompactionMode::kAdaptive}) {
    for (const size_t threads : {size_t{1}, size_t{4}}) {
      QueryOptions opt = MatrixOptions(mode, threads);
      opt.adaptive = true;
      const QueryResult got =
          RunQuery(TpchDb(), Engine::kTectorwise, Query::kQ1, opt);
      EXPECT_EQ(baseline.ToString(), got.ToString())
          << "mode=" << static_cast<int>(mode) << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace vcq::tectorwise
