#include "runtime/types.h"

#include <gtest/gtest.h>

namespace vcq::runtime {
namespace {

TEST(DateTest, RoundTripKnownDates) {
  EXPECT_EQ(DateFromString("1970-01-01"), 0);
  EXPECT_EQ(DateFromString("1970-01-02"), 1);
  EXPECT_EQ(DateToString(0), "1970-01-01");
  for (const char* s : {"1992-01-01", "1995-06-17", "1998-09-02",
                        "1996-02-29", "2000-12-31", "1969-07-20"}) {
    EXPECT_EQ(DateToString(DateFromString(s)), s);
  }
}

TEST(DateTest, OrderingMatchesCalendar) {
  EXPECT_LT(DateFromString("1994-12-31"), DateFromString("1995-01-01"));
  EXPECT_LT(DateFromString("1995-01-01"), DateFromString("1995-01-02"));
  EXPECT_GT(DateFromString("1998-08-02"), DateFromString("1992-01-01"));
}

TEST(DateTest, LeapYearHandling) {
  const int32_t feb28 = DateFromString("1996-02-28");
  EXPECT_EQ(DateToString(feb28 + 1), "1996-02-29");
  EXPECT_EQ(DateToString(feb28 + 2), "1996-03-01");
  const int32_t feb28_1995 = DateFromString("1995-02-28");
  EXPECT_EQ(DateToString(feb28_1995 + 1), "1995-03-01");
}

TEST(DateTest, YearOf) {
  EXPECT_EQ(YearOf(DateFromString("1992-01-01")), 1992);
  EXPECT_EQ(YearOf(DateFromString("1992-12-31")), 1992);
  EXPECT_EQ(YearOf(DateFromString("1993-01-01")), 1993);
}

TEST(DateTest, RoundTripSweep) {
  // Every day across the whole TPC-H window.
  const int32_t start = DateFromString("1992-01-01");
  const int32_t end = DateFromString("1999-01-01");
  int32_t previous_year = 1991;
  for (int32_t d = start; d < end; ++d) {
    const Civil c = CivilFromDays(d);
    EXPECT_EQ(DaysFromCivil(c.year, c.month, c.day), d);
    EXPECT_GE(c.year, previous_year);
    previous_year = c.year;
  }
}

TEST(NumericTest, Formatting) {
  EXPECT_EQ(NumericToString(12345, 2), "123.45");
  EXPECT_EQ(NumericToString(5, 2), "0.05");
  EXPECT_EQ(NumericToString(-12345, 2), "-123.45");
  EXPECT_EQ(NumericToString(0, 2), "0.00");
  EXPECT_EQ(NumericToString(7, 0), "7");
  EXPECT_EQ(NumericToString(1, 6), "0.000001");
}

TEST(NumericTest, AvgHalfUpRounding) {
  // 10 / 4 = 2.5 -> "2.50" at out scale 2 from in scale 0.
  EXPECT_EQ(NumericAvgToString(10, 4, 0, 2), "2.50");
  // 1 / 3 = 0.333...
  EXPECT_EQ(NumericAvgToString(1, 3, 0, 2), "0.33");
  // 2 / 3 = 0.666... -> 0.67
  EXPECT_EQ(NumericAvgToString(2, 3, 0, 2), "0.67");
  // Same scale in and out.
  EXPECT_EQ(NumericAvgToString(500, 2, 2, 2), "2.50");
}

TEST(CharTest, PaddingAndEquality) {
  const auto a = Char<10>::From("BUILDING");
  const auto b = Char<10>::From("BUILDING");
  const auto c = Char<10>::From("MACHINERY");
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.View(), "BUILDING");
  EXPECT_EQ(a.View().size(), 8u);
}

TEST(CharTest, Ordering) {
  EXPECT_LT(Char<10>::From("AUTOMOBILE"), Char<10>::From("BUILDING"));
  EXPECT_LT(Char<10>::From("A"), Char<10>::From("AB"));
}

TEST(VarcharTest, ContainsSubstring) {
  const auto v = Varchar<55>::From("forest green metallic snow peru");
  EXPECT_TRUE(v.Contains("green"));
  EXPECT_TRUE(v.Contains("forest"));
  EXPECT_TRUE(v.Contains("peru"));
  EXPECT_FALSE(v.Contains("lavender"));
  EXPECT_FALSE(v.Contains("greenx"));
  EXPECT_EQ(v.View().size(), 31u);
}

TEST(VarcharTest, EqualityRespectsLength) {
  EXPECT_EQ(Varchar<55>::From("abc"), Varchar<55>::From("abc"));
  EXPECT_FALSE(Varchar<55>::From("abc") == Varchar<55>::From("abcd"));
}

}  // namespace
}  // namespace vcq::runtime
