#include "runtime/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "api/query_catalog.h"
#include "api/session.h"
#include "api/vcq.h"
#include "datagen/ssb.h"
#include "datagen/tpch.h"
#include "runtime/metrics.h"
#include "runtime/params.h"
#include "sql/sql.h"
#include "tectorwise/plan.h"
#include "tectorwise/queries.h"

// The observability contract (runtime/trace.h, runtime/metrics.h):
//  - every trace's per-lane span set is laminar (any two spans on one
//    lane are disjoint or properly nested) even under concurrent traced
//    executions on both engines — the single-writer-per-lane recording
//    discipline holds;
//  - EXPLAIN ANALYZE numbers are real: the root operator's recorded rows
//    equal the result cardinality, and all nine catalog queries render
//    measured rows / ns-per-tuple on both engines;
//  - tracing never changes answers (byte-identity kOff vs kSpans) and
//    kOff leaves no trace behind and costs ≤2% on a Q6 microbench;
//  - the metrics registry is race-free (hammered under TSan in CI) and
//    its log2 histogram brackets percentiles within one bucket.

namespace vcq {
namespace {

using runtime::Database;
using runtime::QueryOptions;
using runtime::QueryParams;
using runtime::QueryResult;
using runtime::QueryTrace;
using runtime::TraceLevel;
using runtime::TraceSpan;

const Database& TpchDb() {
  static const Database* db = new Database(datagen::GenerateTpch(0.01));
  return *db;
}

const Database& SsbDb() {
  static const Database* db = new Database(datagen::GenerateSsb(0.02));
  return *db;
}

const Database& DbFor(Query q) { return IsSsbQuery(q) ? SsbDb() : TpchDb(); }

std::vector<Query> AllQueries() {
  std::vector<Query> all = TpchQueries();
  for (Query q : SsbQueries()) all.push_back(q);
  return all;
}

// A span set is well-formed when, per lane, any two spans are disjoint
// or properly nested (a laminar family): sort by (start asc, end desc)
// and check each span sits inside the innermost still-open ancestor.
void ExpectLaminarPerLane(const QueryTrace& trace, const std::string& ctx) {
  std::map<uint32_t, std::vector<TraceSpan>> by_lane;
  for (const TraceSpan& s : trace.Spans()) {
    EXPECT_LE(s.start_ns, s.end_ns) << ctx << " span " << s.name;
    EXPECT_NE(s.cat, nullptr) << ctx;
    by_lane[s.lane].push_back(s);
  }
  for (auto& [lane, spans] : by_lane) {
    std::sort(spans.begin(), spans.end(),
              [](const TraceSpan& a, const TraceSpan& b) {
                if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                return a.end_ns > b.end_ns;
              });
    std::vector<const TraceSpan*> open;
    for (const TraceSpan& s : spans) {
      while (!open.empty() && open.back()->end_ns <= s.start_ns)
        open.pop_back();
      if (!open.empty()) {
        EXPECT_LE(s.end_ns, open.back()->end_ns)
            << ctx << " lane " << lane << ": span '" << s.name
            << "' overlaps '" << open.back()->name
            << "' without nesting inside it";
      }
      open.push_back(&s);
    }
  }
}

bool HasSpanNamed(const QueryTrace& trace, const std::string& name) {
  for (const TraceSpan& s : trace.Spans()) {
    if (s.name == name) return true;
  }
  return false;
}

TEST(TraceTest, SpanTreeWellFormedUnderConcurrentTracedExecutions) {
  // 8 concurrent traced executions per (engine, threads) cell; each
  // execution owns its trace, so laminarity per lane must survive the
  // worker pool interleaving executions arbitrarily.
  for (Engine e : {Engine::kTyper, Engine::kTectorwise}) {
    for (size_t threads : {size_t{1}, size_t{8}}) {
      Session session(TpchDb());
      QueryOptions opt;
      opt.threads = threads;
      opt.trace = TraceLevel::kSpans;
      std::vector<QueryResult> results(8);
      std::vector<std::thread> workers;
      for (int i = 0; i < 8; ++i) {
        workers.emplace_back([&, i] {
          PreparedQuery q =
              session.Prepare(e, i % 2 == 0 ? Query::kQ6 : Query::kQ3, opt);
          results[i] = q.Execute();
        });
      }
      for (std::thread& w : workers) w.join();
      for (int i = 0; i < 8; ++i) {
        const std::string ctx = std::string(EngineName(e)) + " threads=" +
                                std::to_string(threads) + " exec#" +
                                std::to_string(i);
        ASSERT_TRUE(results[i].ok()) << ctx;
        ASSERT_NE(results[i].trace, nullptr) << ctx;
        EXPECT_GT(results[i].trace->span_count(), 0u) << ctx;
        // The session wraps admission in a span on every traced run.
        EXPECT_TRUE(HasSpanNamed(*results[i].trace, "admission.wait")) << ctx;
        ExpectLaminarPerLane(*results[i].trace, ctx);
      }
    }
  }
}

TEST(TraceTest, RootOperatorRowsMatchResultCardinality) {
  // EXPLAIN ANALYZE's per-node rows are real measurements: the root's
  // recorded output must equal the result's cardinality exactly.
  const std::pair<const char*, Query> cases[] = {
      {"Q1", Query::kQ1}, {"Q6", Query::kQ6}, {"Q3", Query::kQ3}};
  for (const auto& [name, q] : cases) {
    const tectorwise::Prepared prepared =
        tectorwise::Prepare(TpchDb(), name, {});
    QueryTrace trace;
    QueryOptions opt;
    opt.trace = TraceLevel::kSpans;
    opt.trace_sink = &trace;
    opt.telemetry = &trace.node_telemetry();
    const QueryResult result = prepared.Run(opt, DefaultParams(q));
    ASSERT_TRUE(result.ok()) << name;
    const auto root = trace.OperatorAt(prepared.plan().root());
    if (q == Query::kQ3) {
      // Q3's top-10 is applied by the result collector, after the root
      // operator — the root must have produced at least the kept rows.
      EXPECT_GE(root.rows, result.rows.size()) << name;
    } else {
      EXPECT_EQ(root.rows, result.rows.size()) << name;
    }
    EXPECT_GT(root.batches, 0u) << name;
  }
}

TEST(TraceTest, ExplainAnalyzeRendersAllQueriesOnBothEngines) {
  // Acceptance bar: per-node measured rows and ns/tuple for all nine
  // catalog queries on both engines.
  for (Query q : AllQueries()) {
    Session session(DbFor(q));
    for (Engine e : {Engine::kTyper, Engine::kTectorwise}) {
      if (!EngineSupports(e, q)) continue;
      QueryOptions opt;
      opt.trace = TraceLevel::kSpans;
      const std::string text = session.Prepare(e, q, opt).ExplainAnalyze();
      const std::string ctx =
          std::string(QueryName(q)) + " on " + EngineName(e) + ":\n" + text;
      EXPECT_NE(text.find("EXPLAIN ANALYZE"), std::string::npos) << ctx;
      EXPECT_NE(text.find("status=ok"), std::string::npos) << ctx;
      EXPECT_NE(text.find("rows="), std::string::npos) << ctx;
      EXPECT_NE(text.find("ns/tuple"), std::string::npos) << ctx;
    }
  }
}

TEST(TraceTest, SqlPrepareStagesLandInTheExecutionTrace) {
  // PrepareSql records parse/bind/optimize/lower spans into the handle's
  // prepare trace; every traced execution prepends them (Append), so the
  // full compile-to-result timeline lives in one trace.
  Session session(TpchDb());
  QueryOptions opt;
  opt.trace = TraceLevel::kSpans;
  PreparedQuery q = session.PrepareSql(
      "SELECT count(*) FROM lineitem WHERE l_quantity < 10",
      Engine::kTectorwise, opt);
  const QueryResult result = q.Execute();
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result.trace, nullptr);
  for (const char* stage :
       {"sql.parse", "sql.bind", "sql.optimize", "sql.lower"}) {
    EXPECT_TRUE(HasSpanNamed(*result.trace, stage)) << stage;
  }
}

TEST(TraceTest, ResultsAreByteIdenticalWithTracingOnAndOff) {
  // operator== compares names/rows/status and deliberately excludes
  // wall_ns and trace — a traced run must equal its untraced reference.
  for (Query q : AllQueries()) {
    const Database& db = DbFor(q);
    Session session(db);
    for (Engine e : {Engine::kTyper, Engine::kTectorwise}) {
      if (!EngineSupports(e, q)) continue;
      QueryOptions off;
      off.threads = 4;
      const QueryResult reference = RunQuery(db, e, q, off);
      QueryOptions traced = off;
      traced.trace = TraceLevel::kSpans;
      const QueryResult observed = session.Prepare(e, q, traced).Execute();
      EXPECT_EQ(observed, reference) << QueryName(q) << " on "
                                     << EngineName(e);
      EXPECT_NE(observed.trace, nullptr);
      EXPECT_GT(observed.wall_ns, 0u);
    }
  }
}

TEST(TraceTest, OffLeavesNoTraceBehind) {
  Session session(TpchDb());
  const QueryResult result =
      session.Prepare(Engine::kTectorwise, Query::kQ6, {}).Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.trace, nullptr);   // level kOff: nothing allocated
  EXPECT_GT(result.wall_ns, 0u);      // wall time is stamped regardless

  // A sink that no traced execution wrote to stays empty.
  QueryTrace untouched;
  EXPECT_EQ(untouched.span_count(), 0u);
  EXPECT_EQ(untouched.Spans().size(), 0u);
}

TEST(TraceTest, DisabledTracingOverheadOnQ6IsWithinTwoPercent) {
  // Both arms run the identical engine path with TraceLevel::kOff and a
  // null sink — the instrumentation must degenerate to null checks. Min
  // of N on each arm (alternating to decorrelate from machine noise),
  // with a small absolute slack for sub-millisecond jitter.
  const tectorwise::Prepared prepared =
      tectorwise::Prepare(TpchDb(), "Q6", {});
  const QueryOptions baseline;  // defaults: kOff, no sink
  QueryOptions disabled;
  disabled.trace = TraceLevel::kOff;
  disabled.trace_sink = nullptr;
  const QueryParams params = DefaultParams(Query::kQ6);
  auto time_ns = [&](const QueryOptions& opt) {
    const uint64_t start = QueryTrace::NowNs();
    prepared.Run(opt, params);
    return QueryTrace::NowNs() - start;
  };
  time_ns(baseline);  // warm-up (first touch of lazy state)
  uint64_t base_min = UINT64_MAX;
  uint64_t disabled_min = UINT64_MAX;
  for (int rep = 0; rep < 9; ++rep) {
    base_min = std::min(base_min, time_ns(baseline));
    disabled_min = std::min(disabled_min, time_ns(disabled));
  }
  const double limit =
      static_cast<double>(base_min) * 1.02 + 500'000.0;  // +0.5ms slack
  EXPECT_LE(static_cast<double>(disabled_min), limit)
      << "disabled-tracing run took " << disabled_min << "ns vs baseline "
      << base_min << "ns";
}

TEST(TraceTest, ChromeJsonHasTheTraceEventShape) {
  // CI validates the export with python -m json.tool; here we pin the
  // chrome://tracing envelope and the complete-event phase marker.
  Session session(TpchDb());
  QueryOptions opt;
  opt.trace = TraceLevel::kSpans;
  opt.threads = 4;
  const QueryResult result =
      session.Prepare(Engine::kTectorwise, Query::kQ9, opt).Execute();
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result.trace, nullptr);
  const std::string json = result.trace->ToChromeJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(json.substr(json.size() - 2), "]}");
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("admission.wait"), std::string::npos);
}

// ---------------------------------------------------------------------------
// metrics registry
// ---------------------------------------------------------------------------

TEST(MetricsTest, HistogramBucketBoundsAndPercentiles) {
  using metrics::Histogram;
  // Bucket 0 holds {0, 1}; bucket i>=1 holds [2^i, 2^(i+1)).
  EXPECT_EQ(Histogram::BucketLo(0), 0u);
  EXPECT_EQ(Histogram::BucketHi(1), 4u);
  EXPECT_EQ(Histogram::BucketLo(6), 64u);
  EXPECT_EQ(Histogram::BucketHi(6), 128u);

  Histogram h;
  EXPECT_EQ(h.Percentile(0.5), 0u);  // empty -> 0

  // 900 fast observations (value 10, bucket [8,16)) and 100 slow ones
  // (value 10'000, bucket [8192,16384)): p50 must land in the fast
  // bucket, p99 in the slow one — within one log2 bucket by design.
  for (int i = 0; i < 900; ++i) h.Observe(10);
  for (int i = 0; i < 100; ++i) h.Observe(10'000);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), 900u * 10 + 100u * 10'000);
  const uint64_t p50 = h.Percentile(0.5);
  EXPECT_GE(p50, 8u);
  EXPECT_LT(p50, 16u);
  const uint64_t p99 = h.Percentile(0.99);
  EXPECT_GE(p99, 8192u);
  EXPECT_LT(p99, 16384u);

  // Degenerate single-value distribution: every percentile in-bucket.
  Histogram single;
  for (int i = 0; i < 32; ++i) single.Observe(100);
  // In-bucket interpolation may return the exclusive upper bound as
  // q -> 1, so the contract is [lo, hi] inclusive.
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_GE(single.Percentile(q), 64u) << q;
    EXPECT_LE(single.Percentile(q), 128u) << q;
  }
}

TEST(MetricsTest, SnapshotIsRaceFreeUnderConcurrentUpdates) {
  // Hammer one counter/gauge/histogram from 8 threads while snapshotting
  // concurrently — TSan (CI) proves the lock-free claim; the final
  // counter value proves no update was lost.
  auto& reg = metrics::Registry::Global();
  auto& counter = reg.GetCounter("vcq.test.hammer_total");
  auto& gauge = reg.GetGauge("vcq.test.hammer_gauge");
  auto& histogram = reg.GetHistogram("vcq.test.hammer_us");
  const uint64_t before = counter.value();
  constexpr int kThreads = 8;
  constexpr int kOps = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        counter.Add();
        gauge.Set(i);
        histogram.Observe(static_cast<uint64_t>(t * kOps + i));
      }
    });
  }
  for (int i = 0; i < 20; ++i) {
    const std::string json = metrics::RenderJson();
    EXPECT_NE(json.find("vcq.test.hammer_total"), std::string::npos);
    const std::string prom = metrics::RenderPrometheus();
    EXPECT_NE(prom.find("vcq_test_hammer_total"), std::string::npos);
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(counter.value(), before + kThreads * kOps);
}

TEST(MetricsTest, QueryExecutionFeedsTheRegistry) {
  auto& reg = metrics::Registry::Global();
  const uint64_t queries_before =
      reg.GetCounter("vcq.session.queries_total").value();
  auto& latency = reg.GetHistogram("vcq.query.latency_us");
  const uint64_t observed_before = latency.count();

  Session session(TpchDb());
  ASSERT_TRUE(
      session.Prepare(Engine::kTectorwise, Query::kQ6, {}).Execute().ok());

  EXPECT_EQ(reg.GetCounter("vcq.session.queries_total").value(),
            queries_before + 1);
  EXPECT_EQ(latency.count(), observed_before + 1);

  // The session-level snapshot surface renders the same registry.
  const std::string snapshot = Session::MetricsSnapshot();
  EXPECT_NE(snapshot.find("vcq.session.queries_total"), std::string::npos);
  EXPECT_NE(snapshot.find("vcq.query.latency_us"), std::string::npos);
}

}  // namespace
}  // namespace vcq
