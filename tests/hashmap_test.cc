#include "runtime/hashmap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "runtime/hash.h"
#include "runtime/mem_pool.h"
#include "runtime/options.h"
#include "runtime/worker_pool.h"
#include "typer/join_table.h"

namespace vcq::runtime {
namespace {

struct TestEntry {
  Hashmap::EntryHeader header;
  int64_t key;
  int64_t value;
};

TestEntry* MakeEntry(MemPool& pool, int64_t key, int64_t value) {
  auto* e = pool.Create<TestEntry>();
  e->header.next = nullptr;
  e->header.hash = HashMurmur2(static_cast<uint64_t>(key));
  e->key = key;
  e->value = value;
  return e;
}

const TestEntry* Find(const Hashmap& ht, int64_t key) {
  const uint64_t h = HashMurmur2(static_cast<uint64_t>(key));
  for (auto* e = ht.FindChainTagged(h); e != nullptr; e = e->next) {
    const auto* te = reinterpret_cast<const TestEntry*>(e);
    if (e->hash == h && te->key == key) return te;
  }
  return nullptr;
}

TEST(HashmapTest, InsertFindRoundTrip) {
  Hashmap ht;
  ht.SetSize(1000);
  MemPool pool;
  for (int64_t k = 0; k < 1000; ++k)
    ht.InsertUnlocked(&MakeEntry(pool, k, k * 10)->header);
  for (int64_t k = 0; k < 1000; ++k) {
    const TestEntry* e = Find(ht, k);
    ASSERT_NE(e, nullptr) << "key " << k;
    EXPECT_EQ(e->value, k * 10);
  }
  EXPECT_EQ(Find(ht, 5000), nullptr);
}

TEST(HashmapTest, TagNeverProducesFalseNegatives) {
  // The Bloom tag may let non-members through (false positives are fine)
  // but must never hide an inserted key.
  Hashmap ht;
  ht.SetSize(64);  // tiny: long chains, heavily shared buckets
  MemPool pool;
  for (int64_t k = 0; k < 4096; ++k)
    ht.InsertUnlocked(&MakeEntry(pool, k, k)->header);
  for (int64_t k = 0; k < 4096; ++k)
    ASSERT_NE(Find(ht, k), nullptr) << "key " << k;
}

TEST(HashmapTest, TagFiltersMostMisses) {
  Hashmap ht;
  ht.SetSize(1 << 14);
  MemPool pool;
  for (int64_t k = 0; k < 1000; ++k)
    ht.InsertUnlocked(&MakeEntry(pool, k, k)->header);
  // With load factor << 1 and 16 tag bits, most absent keys must be
  // rejected without chain traversal.
  int filtered = 0;
  constexpr int kProbes = 10000;
  for (int64_t k = 1000000; k < 1000000 + kProbes; ++k) {
    if (ht.FindChainTagged(HashMurmur2(static_cast<uint64_t>(k))) == nullptr)
      ++filtered;
  }
  EXPECT_GT(filtered, kProbes * 9 / 10);
}

TEST(HashmapTest, DuplicateKeysChainTogether) {
  Hashmap ht;
  ht.SetSize(100);
  MemPool pool;
  for (int64_t v = 0; v < 5; ++v)
    ht.InsertUnlocked(&MakeEntry(pool, 7, v)->header);
  const uint64_t h = HashMurmur2(7);
  int matches = 0;
  for (auto* e = ht.FindChainTagged(h); e != nullptr; e = e->next) {
    if (e->hash == h && reinterpret_cast<TestEntry*>(e)->key == 7) ++matches;
  }
  EXPECT_EQ(matches, 5);
}

TEST(HashmapTest, ConcurrentInsertIsLossless) {
  constexpr int kThreads = 8;
  constexpr int64_t kPerThread = 20000;
  Hashmap ht;
  ht.SetSize(kThreads * kPerThread);
  std::vector<MemPool> pools(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int64_t i = 0; i < kPerThread; ++i) {
        const int64_t key = t * kPerThread + i;
        ht.Insert(&MakeEntry(pools[t], key, key)->header);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int64_t key = 0; key < kThreads * kPerThread; ++key)
    ASSERT_NE(Find(ht, key), nullptr) << "lost key " << key;
}

TEST(HashmapTest, ClearEmptiesTable) {
  Hashmap ht;
  ht.SetSize(100);
  MemPool pool;
  ht.InsertUnlocked(&MakeEntry(pool, 1, 1)->header);
  ASSERT_NE(Find(ht, 1), nullptr);
  ht.Clear();
  EXPECT_EQ(Find(ht, 1), nullptr);
}

TEST(HashmapTest, CapacityIsPowerOfTwoAndAmple) {
  Hashmap ht;
  ht.SetSize(1000);
  EXPECT_GE(ht.capacity(), 2000u);
  EXPECT_EQ(ht.capacity() & (ht.capacity() - 1), 0u);
}

// --- JoinBuild: CAS vs partitioned build equivalence ------------------------

/// Materializes `total` entries (keys 0..total-1, every 7th key duplicated)
/// into per-worker chunk lists carved from `pool`.
std::vector<EntryChunkList> MakeChunkLists(MemPool& pool, size_t total,
                                           size_t workers) {
  constexpr size_t kRows = 64;  // small chunks: exercise chunk boundaries
  std::vector<EntryChunkList> lists(workers);
  for (size_t w = 0; w < workers; ++w) {
    const size_t begin = w * total / workers;
    const size_t end = (w + 1) * total / workers;
    for (size_t at = begin; at < end; at += kRows) {
      const size_t rows = std::min(kRows, end - at);
      auto* block = static_cast<TestEntry*>(
          pool.Allocate(rows * sizeof(TestEntry)));
      for (size_t k = 0; k < rows; ++k) {
        const size_t i = at + k;
        const int64_t key =
            static_cast<int64_t>(i % 7 == 0 ? i / 7 : i);  // some duplicates
        block[k].header.next = nullptr;
        block[k].header.hash = HashMurmur2(static_cast<uint64_t>(key));
        block[k].key = key;
        block[k].value = static_cast<int64_t>(i);
      }
      lists[w].Add(reinterpret_cast<std::byte*>(block), rows);
    }
  }
  return lists;
}

/// Per-bucket multiset of (hash, key, value) plus the tag bits — everything
/// a probe can observe, independent of chain order and entry placement.
std::map<size_t, std::vector<std::tuple<uint64_t, int64_t, int64_t>>>
BucketContents(const Hashmap& ht) {
  std::map<size_t, std::vector<std::tuple<uint64_t, int64_t, int64_t>>> out;
  for (size_t b = 0; b < ht.capacity(); ++b) {
    for (auto* e = Hashmap::Ptr(ht.buckets()[b].load()); e != nullptr;
         e = e->next) {
      const auto* te = reinterpret_cast<const TestEntry*>(e);
      out[b].emplace_back(e->hash, te->key, te->value);
    }
    if (out.count(b)) std::sort(out[b].begin(), out[b].end());
  }
  return out;
}

std::vector<uintptr_t> BucketTags(const Hashmap& ht) {
  std::vector<uintptr_t> tags(ht.capacity());
  for (size_t b = 0; b < ht.capacity(); ++b)
    tags[b] = ht.buckets()[b].load() & ~Hashmap::kPtrMask;
  return tags;
}

class JoinBuildTest : public ::testing::TestWithParam<size_t> {};

TEST_P(JoinBuildTest, PartitionedMatchesCasChains) {
  const size_t threads = GetParam();
  constexpr size_t kTotal = 5000;
  MemPool pool;
  const auto lists = MakeChunkLists(pool, kTotal, threads);

  Hashmap cas_ht;
  JoinBuild cas_build(&cas_ht, threads);
  Hashmap part_ht;
  JoinBuild part_build(&part_ht, threads);
  // Partitioned first: it only reads the source rows, while the CAS build
  // relinks them in place.
  WorkerPool::Global().Run(threads, [&](size_t wid) {
    part_build.Run(BuildMode::kPartitioned, lists[wid], sizeof(TestEntry));
  });
  WorkerPool::Global().Run(threads, [&](size_t wid) {
    cas_build.Run(BuildMode::kCas, lists[wid], sizeof(TestEntry));
  });

  ASSERT_EQ(cas_ht.capacity(), part_ht.capacity());
  EXPECT_EQ(cas_build.entry_count(), kTotal);
  EXPECT_EQ(part_build.entry_count(), kTotal);
  EXPECT_EQ(BucketContents(cas_ht), BucketContents(part_ht));
  EXPECT_EQ(BucketTags(cas_ht), BucketTags(part_ht));
}

TEST_P(JoinBuildTest, PartitionedChainsAreContiguousArenaRuns) {
  const size_t threads = GetParam();
  constexpr size_t kTotal = 3000;
  MemPool pool;
  const auto lists = MakeChunkLists(pool, kTotal, threads);
  Hashmap ht;
  JoinBuild build(&ht, threads);
  WorkerPool::Global().Run(threads, [&](size_t wid) {
    build.Run(BuildMode::kPartitioned, lists[wid], sizeof(TestEntry));
  });
  // Every chain must be a sequential run of arena rows — the contiguity
  // the partitioned build exists to provide.
  const std::byte* arena = build.arena();
  ASSERT_NE(arena, nullptr);
  size_t seen = 0;
  for (size_t b = 0; b < ht.capacity(); ++b) {
    for (auto* e = Hashmap::Ptr(ht.buckets()[b].load()); e != nullptr;
         e = e->next) {
      ++seen;
      const auto* p = reinterpret_cast<const std::byte*>(e);
      ASSERT_GE(p, arena);
      ASSERT_LT(p, arena + kTotal * sizeof(TestEntry));
      if (e->next != nullptr) {
        EXPECT_EQ(reinterpret_cast<const std::byte*>(e->next),
                  p + sizeof(TestEntry));
      }
    }
  }
  EXPECT_EQ(seen, kTotal);
}

TEST_P(JoinBuildTest, EmptyBuildSide) {
  const size_t threads = GetParam();
  for (const BuildMode mode : {BuildMode::kCas, BuildMode::kPartitioned}) {
    Hashmap ht;
    JoinBuild build(&ht, threads);
    WorkerPool::Global().Run(threads, [&](size_t) {
      build.Run(mode, EntryChunkList{}, sizeof(TestEntry));
    });
    EXPECT_EQ(build.entry_count(), 0u);
    EXPECT_EQ(ht.FindChainTagged(HashMurmur2(7)), nullptr);
  }
}

// 7 exercises non-power-of-two bucket-range splits against the power-of-two
// capacity.
INSTANTIATE_TEST_SUITE_P(Threads, JoinBuildTest,
                         ::testing::Values(size_t{1}, size_t{4}, size_t{7}));

// --- materialize-chunk release after partitioned builds ---------------------

TEST(JoinBuildChunkReleaseTest, PartitionedBuildReleasesMaterializeChunks) {
  // ROADMAP item: the partitioned build relinks every entry into the
  // contiguous arena, so keeping the per-worker MemPool chunks alive
  // doubles transient build-side memory. Assert via the process-wide
  // byte-size counter that the engines free them — and that the CAS mode,
  // whose chains live in those chunks, keeps them.
  constexpr size_t kEntries = 200000;
  constexpr size_t kThreads = 4;
  const auto produce = [](size_t wid, auto emit) {
    for (size_t i = wid; i < kEntries; i += kThreads) {
      TestEntry e;
      e.header.next = nullptr;
      e.header.hash = HashMurmur2(static_cast<uint64_t>(i));
      e.key = static_cast<int64_t>(i);
      e.value = static_cast<int64_t>(i) * 3;
      emit(e);
    }
  };

  QueryOptions opt;
  opt.threads = kThreads;
  opt.build_mode = BuildMode::kPartitioned;
  const size_t before = MemPool::live_bytes();
  typer::JoinTable<TestEntry> partitioned(opt);
  partitioned.Build(produce);
  EXPECT_EQ(MemPool::live_bytes(), before)
      << "partitioned build must release its materialize-phase chunks";
  // The entries moved to the arena and stay probeable.
  EXPECT_EQ(partitioned.size(), kEntries);
  for (int64_t key : {int64_t{0}, int64_t{12345}, int64_t{199999}}) {
    const TestEntry* e = partitioned.Lookup(
        HashMurmur2(static_cast<uint64_t>(key)),
        [&](const TestEntry& t) { return t.key == key; });
    ASSERT_NE(e, nullptr) << "key " << key;
    EXPECT_EQ(e->value, key * 3);
  }

  opt.build_mode = BuildMode::kCas;
  typer::JoinTable<TestEntry> cas(opt);
  cas.Build(produce);
  EXPECT_GE(MemPool::live_bytes() - before, kEntries * sizeof(TestEntry))
      << "CAS chains live in the materialize chunks; they must survive";
  const TestEntry* e = cas.Lookup(
      HashMurmur2(uint64_t{77}), [](const TestEntry& t) { return t.key == 77; });
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->value, 77 * 3);
}

TEST(MemPoolTest, AllocationsAlignedAndDistinct) {
  MemPool pool(1024);
  void* a = pool.Allocate(10);
  void* b = pool.Allocate(10);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);
}

TEST(MemPoolTest, LargeAllocationExceedingChunk) {
  MemPool pool(1024);
  void* big = pool.Allocate(1 << 20);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xCD, 1 << 20);  // must be writable end to end
}

TEST(MemPoolTest, ReleaseIsIdempotent) {
  // The failure-containment invariant: Release() is called from both the
  // normal drain path and the unwind backstop, so calling it any number of
  // times must release the pool's bytes exactly once — live_bytes() lands
  // on the baseline and stays there, never underflowing.
  const size_t baseline = MemPool::live_bytes();
  MemPool pool(1024);
  pool.Allocate(4096);
  EXPECT_GT(pool.owned_bytes(), 0u);
  EXPECT_GT(MemPool::live_bytes(), baseline);
  pool.Release();
  EXPECT_EQ(pool.owned_bytes(), 0u);
  EXPECT_EQ(MemPool::live_bytes(), baseline);
  pool.Release();  // second (unwind-path) release: a no-op
  pool.Release();
  EXPECT_EQ(pool.owned_bytes(), 0u);
  EXPECT_EQ(MemPool::live_bytes(), baseline);
  // The pool is still usable after a release cycle.
  void* p = pool.Allocate(16);
  EXPECT_NE(p, nullptr);
  pool.Release();
  EXPECT_EQ(MemPool::live_bytes(), baseline);
}

TEST(MemPoolTest, ManySmallAllocationsDoNotOverlap) {
  MemPool pool(4096);
  std::vector<int64_t*> ptrs;
  for (int i = 0; i < 10000; ++i) {
    auto* p = static_cast<int64_t*>(pool.Allocate(sizeof(int64_t)));
    *p = i;
    ptrs.push_back(p);
  }
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(*ptrs[i], i);
}

}  // namespace
}  // namespace vcq::runtime
