#include "runtime/hashmap.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <unordered_map>
#include <vector>

#include "runtime/hash.h"
#include "runtime/mem_pool.h"

namespace vcq::runtime {
namespace {

struct TestEntry {
  Hashmap::EntryHeader header;
  int64_t key;
  int64_t value;
};

TestEntry* MakeEntry(MemPool& pool, int64_t key, int64_t value) {
  auto* e = pool.Create<TestEntry>();
  e->header.next = nullptr;
  e->header.hash = HashMurmur2(static_cast<uint64_t>(key));
  e->key = key;
  e->value = value;
  return e;
}

const TestEntry* Find(const Hashmap& ht, int64_t key) {
  const uint64_t h = HashMurmur2(static_cast<uint64_t>(key));
  for (auto* e = ht.FindChainTagged(h); e != nullptr; e = e->next) {
    const auto* te = reinterpret_cast<const TestEntry*>(e);
    if (e->hash == h && te->key == key) return te;
  }
  return nullptr;
}

TEST(HashmapTest, InsertFindRoundTrip) {
  Hashmap ht;
  ht.SetSize(1000);
  MemPool pool;
  for (int64_t k = 0; k < 1000; ++k)
    ht.InsertUnlocked(&MakeEntry(pool, k, k * 10)->header);
  for (int64_t k = 0; k < 1000; ++k) {
    const TestEntry* e = Find(ht, k);
    ASSERT_NE(e, nullptr) << "key " << k;
    EXPECT_EQ(e->value, k * 10);
  }
  EXPECT_EQ(Find(ht, 5000), nullptr);
}

TEST(HashmapTest, TagNeverProducesFalseNegatives) {
  // The Bloom tag may let non-members through (false positives are fine)
  // but must never hide an inserted key.
  Hashmap ht;
  ht.SetSize(64);  // tiny: long chains, heavily shared buckets
  MemPool pool;
  for (int64_t k = 0; k < 4096; ++k)
    ht.InsertUnlocked(&MakeEntry(pool, k, k)->header);
  for (int64_t k = 0; k < 4096; ++k)
    ASSERT_NE(Find(ht, k), nullptr) << "key " << k;
}

TEST(HashmapTest, TagFiltersMostMisses) {
  Hashmap ht;
  ht.SetSize(1 << 14);
  MemPool pool;
  for (int64_t k = 0; k < 1000; ++k)
    ht.InsertUnlocked(&MakeEntry(pool, k, k)->header);
  // With load factor << 1 and 16 tag bits, most absent keys must be
  // rejected without chain traversal.
  int filtered = 0;
  constexpr int kProbes = 10000;
  for (int64_t k = 1000000; k < 1000000 + kProbes; ++k) {
    if (ht.FindChainTagged(HashMurmur2(static_cast<uint64_t>(k))) == nullptr)
      ++filtered;
  }
  EXPECT_GT(filtered, kProbes * 9 / 10);
}

TEST(HashmapTest, DuplicateKeysChainTogether) {
  Hashmap ht;
  ht.SetSize(100);
  MemPool pool;
  for (int64_t v = 0; v < 5; ++v)
    ht.InsertUnlocked(&MakeEntry(pool, 7, v)->header);
  const uint64_t h = HashMurmur2(7);
  int matches = 0;
  for (auto* e = ht.FindChainTagged(h); e != nullptr; e = e->next) {
    if (e->hash == h && reinterpret_cast<TestEntry*>(e)->key == 7) ++matches;
  }
  EXPECT_EQ(matches, 5);
}

TEST(HashmapTest, ConcurrentInsertIsLossless) {
  constexpr int kThreads = 8;
  constexpr int64_t kPerThread = 20000;
  Hashmap ht;
  ht.SetSize(kThreads * kPerThread);
  std::vector<MemPool> pools(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int64_t i = 0; i < kPerThread; ++i) {
        const int64_t key = t * kPerThread + i;
        ht.Insert(&MakeEntry(pools[t], key, key)->header);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int64_t key = 0; key < kThreads * kPerThread; ++key)
    ASSERT_NE(Find(ht, key), nullptr) << "lost key " << key;
}

TEST(HashmapTest, ClearEmptiesTable) {
  Hashmap ht;
  ht.SetSize(100);
  MemPool pool;
  ht.InsertUnlocked(&MakeEntry(pool, 1, 1)->header);
  ASSERT_NE(Find(ht, 1), nullptr);
  ht.Clear();
  EXPECT_EQ(Find(ht, 1), nullptr);
}

TEST(HashmapTest, CapacityIsPowerOfTwoAndAmple) {
  Hashmap ht;
  ht.SetSize(1000);
  EXPECT_GE(ht.capacity(), 2000u);
  EXPECT_EQ(ht.capacity() & (ht.capacity() - 1), 0u);
}

TEST(MemPoolTest, AllocationsAlignedAndDistinct) {
  MemPool pool(1024);
  void* a = pool.Allocate(10);
  void* b = pool.Allocate(10);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);
}

TEST(MemPoolTest, LargeAllocationExceedingChunk) {
  MemPool pool(1024);
  void* big = pool.Allocate(1 << 20);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xCD, 1 << 20);  // must be writable end to end
}

TEST(MemPoolTest, ManySmallAllocationsDoNotOverlap) {
  MemPool pool(4096);
  std::vector<int64_t*> ptrs;
  for (int i = 0; i < 10000; ++i) {
    auto* p = static_cast<int64_t*>(pool.Allocate(sizeof(int64_t)));
    *p = i;
    ptrs.push_back(p);
  }
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(*ptrs[i], i);
}

}  // namespace
}  // namespace vcq::runtime
