#include "tectorwise/hash_join.h"

#include <gtest/gtest.h>

#include <map>

#include "runtime/worker_pool.h"
#include "tectorwise/steps.h"

namespace vcq::tectorwise {
namespace {

using runtime::Relation;

struct JoinConfig {
  size_t vector_size;
  size_t threads;
  bool simd;
};

class HashJoinTest : public ::testing::TestWithParam<JoinConfig> {};

// build(key, payload) x probe(fk) with a known match pattern.
TEST_P(HashJoinTest, SingleKeyJoinMatchesReference) {
  const auto [vecsize, threads, use_simd] = GetParam();
  constexpr size_t kBuild = 1000;
  constexpr size_t kProbe = 20000;
  Relation build;
  {
    auto key = build.AddColumn<int32_t>("key", kBuild);
    auto val = build.AddColumn<int64_t>("val", kBuild);
    for (size_t i = 0; i < kBuild; ++i) {
      key[i] = static_cast<int32_t>(i * 2);  // even keys only
      val[i] = static_cast<int64_t>(i) * 100;
    }
  }
  Relation probe;
  {
    auto fk = probe.AddColumn<int32_t>("fk", kProbe);
    auto w = probe.AddColumn<int64_t>("w", kProbe);
    for (size_t i = 0; i < kProbe; ++i) {
      fk[i] = static_cast<int32_t>(i % 3000);  // 1/2 hit rate on evens
      w[i] = static_cast<int64_t>(i);
    }
  }

  ExecContext ctx;
  ctx.vector_size = vecsize;
  ctx.use_simd = use_simd;
  Scan::Shared sb(kBuild, 257);
  Scan::Shared sp(kProbe, 509);
  HashJoin::Shared js(threads);

  std::atomic<int64_t> sum_val{0}, sum_w{0}, matches{0};
  std::vector<std::unique_ptr<Operator>> roots(threads);
  runtime::WorkerPool::Global().Run(threads, [&](size_t wid) {
    auto bscan = std::make_unique<Scan>(&sb, &build, vecsize);
    Slot* key = bscan->AddColumn<int32_t>("key");
    Slot* val = bscan->AddColumn<int64_t>("val");
    auto pscan = std::make_unique<Scan>(&sp, &probe, vecsize);
    Slot* fk = pscan->AddColumn<int32_t>("fk");
    Slot* w = pscan->AddColumn<int64_t>("w");

    auto hj = std::make_unique<HashJoin>(&js, std::move(bscan),
                                         std::move(pscan), ctx);
    const size_t f_key = hj->AddBuildField<int32_t>(key);
    const size_t f_val = hj->AddBuildField<int64_t>(val);
    hj->SetBuildHash(MakeHash<int32_t>(ctx, key));
    hj->SetProbeHash(MakeHash<int32_t>(ctx, fk));
    hj->AddKeyCompare<int32_t>(fk, f_key);
    Slot* o_val = hj->AddBuildOutput<int64_t>(f_val);
    Slot* o_w = hj->AddProbeOutput<int64_t>(w);

    int64_t lv = 0, lw = 0, lm = 0;
    size_t n;
    while ((n = hj->Next()) != kEndOfStream) {
      for (size_t i = 0; i < n; ++i) {
        lv += Get<int64_t>(o_val)[i];
        lw += Get<int64_t>(o_w)[i];
      }
      lm += static_cast<int64_t>(n);
    }
    sum_val += lv;
    sum_w += lw;
    matches += lm;
    roots[wid] = std::move(hj);
  });

  // Reference.
  std::map<int32_t, int64_t> ref;
  for (size_t i = 0; i < kBuild; ++i)
    ref[static_cast<int32_t>(i * 2)] = static_cast<int64_t>(i) * 100;
  int64_t ev = 0, ew = 0, em = 0;
  for (size_t i = 0; i < kProbe; ++i) {
    const auto it = ref.find(static_cast<int32_t>(i % 3000));
    if (it == ref.end()) continue;
    ev += it->second;
    ew += static_cast<int64_t>(i);
    ++em;
  }
  EXPECT_EQ(matches.load(), em);
  EXPECT_EQ(sum_val.load(), ev);
  EXPECT_EQ(sum_w.load(), ew);
}

TEST_P(HashJoinTest, CompositeKeyJoin) {
  const auto [vecsize, threads, use_simd] = GetParam();
  constexpr size_t kBuild = 500;
  constexpr size_t kProbe = 10000;
  Relation build;
  {
    auto k1 = build.AddColumn<int32_t>("k1", kBuild);
    auto k2 = build.AddColumn<int32_t>("k2", kBuild);
    auto val = build.AddColumn<int64_t>("val", kBuild);
    for (size_t i = 0; i < kBuild; ++i) {
      k1[i] = static_cast<int32_t>(i % 50);
      k2[i] = static_cast<int32_t>(i / 50);
      val[i] = static_cast<int64_t>(i);
    }
  }
  Relation probe;
  {
    auto k1 = probe.AddColumn<int32_t>("k1", kProbe);
    auto k2 = probe.AddColumn<int32_t>("k2", kProbe);
    for (size_t i = 0; i < kProbe; ++i) {
      k1[i] = static_cast<int32_t>(i % 60);     // some miss on k1
      k2[i] = static_cast<int32_t>((i / 7) % 15);  // some miss on k2
    }
  }

  ExecContext ctx;
  ctx.vector_size = vecsize;
  ctx.use_simd = use_simd;
  Scan::Shared sb(kBuild, 128);
  Scan::Shared sp(kProbe, 1024);
  HashJoin::Shared js(threads);
  std::atomic<int64_t> sum{0}, matches{0};
  std::vector<std::unique_ptr<Operator>> roots(threads);

  runtime::WorkerPool::Global().Run(threads, [&](size_t wid) {
    auto bscan = std::make_unique<Scan>(&sb, &build, vecsize);
    Slot* bk1 = bscan->AddColumn<int32_t>("k1");
    Slot* bk2 = bscan->AddColumn<int32_t>("k2");
    Slot* val = bscan->AddColumn<int64_t>("val");
    auto pscan = std::make_unique<Scan>(&sp, &probe, vecsize);
    Slot* pk1 = pscan->AddColumn<int32_t>("k1");
    Slot* pk2 = pscan->AddColumn<int32_t>("k2");

    auto hj = std::make_unique<HashJoin>(&js, std::move(bscan),
                                         std::move(pscan), ctx);
    const size_t f_k1 = hj->AddBuildField<int32_t>(bk1);
    const size_t f_k2 = hj->AddBuildField<int32_t>(bk2);
    const size_t f_val = hj->AddBuildField<int64_t>(val);
    hj->SetBuildHash(MakeHash<int32_t>(ctx, bk1));
    hj->AddBuildRehash(MakeRehash<int32_t>(ctx, bk2));
    hj->SetProbeHash(MakeHash<int32_t>(ctx, pk1));
    hj->AddProbeRehash(MakeRehash<int32_t>(ctx, pk2));
    hj->AddKeyCompare<int32_t>(pk1, f_k1);
    hj->AddKeyCompare<int32_t>(pk2, f_k2);
    Slot* o_val = hj->AddBuildOutput<int64_t>(f_val);

    int64_t lv = 0, lm = 0;
    size_t n;
    while ((n = hj->Next()) != kEndOfStream) {
      for (size_t i = 0; i < n; ++i) lv += Get<int64_t>(o_val)[i];
      lm += static_cast<int64_t>(n);
    }
    sum += lv;
    matches += lm;
    roots[wid] = std::move(hj);
  });

  std::map<std::pair<int32_t, int32_t>, int64_t> ref;
  for (size_t i = 0; i < kBuild; ++i)
    ref[{static_cast<int32_t>(i % 50), static_cast<int32_t>(i / 50)}] =
        static_cast<int64_t>(i);
  int64_t ev = 0, em = 0;
  for (size_t i = 0; i < kProbe; ++i) {
    const auto it = ref.find({static_cast<int32_t>(i % 60),
                              static_cast<int32_t>((i / 7) % 15)});
    if (it == ref.end()) continue;
    ev += it->second;
    ++em;
  }
  EXPECT_EQ(matches.load(), em);
  EXPECT_EQ(sum.load(), ev);
}

TEST_P(HashJoinTest, EmptyBuildSideYieldsNoMatches) {
  const auto [vecsize, threads, use_simd] = GetParam();
  Relation build;
  build.AddColumn<int32_t>("key", 0);
  Relation probe;
  {
    auto fk = probe.AddColumn<int32_t>("fk", 1000);
    for (size_t i = 0; i < 1000; ++i) fk[i] = static_cast<int32_t>(i);
  }
  ExecContext ctx;
  ctx.vector_size = vecsize;
  ctx.use_simd = use_simd;
  Scan::Shared sb(0, 128);
  Scan::Shared sp(1000, 128);
  HashJoin::Shared js(threads);
  std::atomic<int64_t> matches{0};
  std::vector<std::unique_ptr<Operator>> roots(threads);
  runtime::WorkerPool::Global().Run(threads, [&](size_t wid) {
    auto bscan = std::make_unique<Scan>(&sb, &build, vecsize);
    Slot* key = bscan->AddColumn<int32_t>("key");
    auto pscan = std::make_unique<Scan>(&sp, &probe, vecsize);
    Slot* fk = pscan->AddColumn<int32_t>("fk");
    auto hj = std::make_unique<HashJoin>(&js, std::move(bscan),
                                         std::move(pscan), ctx);
    const size_t f_key = hj->AddBuildField<int32_t>(key);
    hj->SetBuildHash(MakeHash<int32_t>(ctx, key));
    hj->SetProbeHash(MakeHash<int32_t>(ctx, fk));
    hj->AddKeyCompare<int32_t>(fk, f_key);
    size_t n;
    while ((n = hj->Next()) != kEndOfStream) matches += n;
    roots[wid] = std::move(hj);
  });
  EXPECT_EQ(matches.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, HashJoinTest,
    ::testing::Values(JoinConfig{1024, 1, false}, JoinConfig{1024, 1, true},
                      JoinConfig{16, 1, false}, JoinConfig{1024, 4, false},
                      JoinConfig{1024, 4, true}, JoinConfig{333, 2, false}));

}  // namespace
}  // namespace vcq::tectorwise
