#include "tectorwise/hash_group.h"

#include <gtest/gtest.h>

#include <map>

#include "runtime/worker_pool.h"
#include "tectorwise/steps.h"

namespace vcq::tectorwise {
namespace {

using runtime::Char;
using runtime::Relation;

struct GroupConfig {
  size_t vector_size;
  size_t threads;
  size_t cardinality;  // distinct groups
};

class HashGroupTest : public ::testing::TestWithParam<GroupConfig> {};

TEST_P(HashGroupTest, SumAndCountMatchReference) {
  const auto [vecsize, threads, cardinality] = GetParam();
  constexpr size_t kRows = 50000;
  Relation rel;
  {
    auto key = rel.AddColumn<int32_t>("key", kRows);
    auto val = rel.AddColumn<int64_t>("val", kRows);
    for (size_t i = 0; i < kRows; ++i) {
      key[i] = static_cast<int32_t>((i * 7919) % cardinality);
      val[i] = static_cast<int64_t>(i % 1000);
    }
  }

  ExecContext ctx;
  ctx.vector_size = vecsize;
  Scan::Shared ss(kRows, 2048);
  HashGroup::Shared gs(threads);
  std::map<int32_t, std::pair<int64_t, int64_t>> got;  // key -> (sum, count)
  std::mutex mu;
  std::vector<std::unique_ptr<Operator>> roots(threads);

  runtime::WorkerPool::Global().Run(threads, [&](size_t wid) {
    auto scan = std::make_unique<Scan>(&ss, &rel, vecsize);
    Slot* key = scan->AddColumn<int32_t>("key");
    Slot* val = scan->AddColumn<int64_t>("val");
    auto group = std::make_unique<HashGroup>(&gs, wid, threads,
                                             std::move(scan), ctx);
    const size_t k_key = group->AddKey<int32_t>(key);
    const size_t a_sum = group->AddSumAgg(val);
    const size_t a_cnt = group->AddCountAgg();
    Slot* o_key = group->AddOutput<int32_t>(k_key);
    Slot* o_sum = group->AddOutput<int64_t>(a_sum);
    Slot* o_cnt = group->AddOutput<int64_t>(a_cnt);
    size_t n;
    while ((n = group->Next()) != kEndOfStream) {
      std::lock_guard<std::mutex> lock(mu);
      for (size_t i = 0; i < n; ++i) {
        const int32_t k = Get<int32_t>(o_key)[i];
        ASSERT_EQ(got.count(k), 0u) << "duplicate group " << k;
        got[k] = {Get<int64_t>(o_sum)[i], Get<int64_t>(o_cnt)[i]};
      }
    }
    roots[wid] = std::move(group);
  });

  std::map<int32_t, std::pair<int64_t, int64_t>> ref;
  for (size_t i = 0; i < kRows; ++i) {
    auto& [sum, count] = ref[static_cast<int32_t>((i * 7919) % cardinality)];
    sum += static_cast<int64_t>(i % 1000);
    count += 1;
  }
  EXPECT_EQ(got, ref);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, HashGroupTest,
    ::testing::Values(GroupConfig{1024, 1, 4}, GroupConfig{1024, 1, 10000},
                      GroupConfig{16, 1, 997}, GroupConfig{1024, 4, 4},
                      GroupConfig{1024, 4, 10000}, GroupConfig{511, 3, 997},
                      GroupConfig{1024, 8, 40000}));

TEST(HashGroupCompositeTest, CompositeKeysWithChars) {
  constexpr size_t kRows = 10000;
  Relation rel;
  {
    auto tag = rel.AddColumn<Char<9>>("tag", kRows);
    auto year = rel.AddColumn<int32_t>("year", kRows);
    auto val = rel.AddColumn<int64_t>("val", kRows);
    const char* tags[] = {"MFGR#1201", "MFGR#1202", "MFGR#1310"};
    for (size_t i = 0; i < kRows; ++i) {
      tag[i] = Char<9>::From(tags[i % 3]);
      year[i] = static_cast<int32_t>(1992 + (i % 7));
      val[i] = static_cast<int64_t>(i);
    }
  }
  ExecContext ctx;
  const size_t threads = 4;
  Scan::Shared ss(kRows, 512);
  HashGroup::Shared gs(threads);
  std::map<std::pair<std::string, int32_t>, int64_t> got;
  std::mutex mu;
  std::vector<std::unique_ptr<Operator>> roots(threads);
  runtime::WorkerPool::Global().Run(threads, [&](size_t wid) {
    auto scan = std::make_unique<Scan>(&ss, &rel, ctx.vector_size);
    Slot* tag = scan->AddColumn<Char<9>>("tag");
    Slot* year = scan->AddColumn<int32_t>("year");
    Slot* val = scan->AddColumn<int64_t>("val");
    auto group = std::make_unique<HashGroup>(&gs, wid, threads,
                                             std::move(scan), ctx);
    const size_t k_tag = group->AddKey<Char<9>>(tag);
    const size_t k_year = group->AddKey<int32_t>(year);
    const size_t a_sum = group->AddSumAgg(val);
    Slot* o_tag = group->AddOutput<Char<9>>(k_tag);
    Slot* o_year = group->AddOutput<int32_t>(k_year);
    Slot* o_sum = group->AddOutput<int64_t>(a_sum);
    size_t n;
    while ((n = group->Next()) != kEndOfStream) {
      std::lock_guard<std::mutex> lock(mu);
      for (size_t i = 0; i < n; ++i) {
        got[{std::string(Get<Char<9>>(o_tag)[i].View()),
             Get<int32_t>(o_year)[i]}] = Get<int64_t>(o_sum)[i];
      }
    }
    roots[wid] = std::move(group);
  });

  std::map<std::pair<std::string, int32_t>, int64_t> ref;
  const char* tags[] = {"MFGR#1201", "MFGR#1202", "MFGR#1310"};
  for (size_t i = 0; i < kRows; ++i)
    ref[{tags[i % 3], static_cast<int32_t>(1992 + (i % 7))}] +=
        static_cast<int64_t>(i);
  EXPECT_EQ(got, ref);
  EXPECT_EQ(got.size(), 21u);
}

TEST(HashGroupEdgeTest, EmptyInputProducesNoGroups) {
  Relation rel;
  rel.AddColumn<int32_t>("key", 0);
  rel.AddColumn<int64_t>("val", 0);
  ExecContext ctx;
  Scan::Shared ss(0, 512);
  HashGroup::Shared gs(1);
  auto scan = std::make_unique<Scan>(&ss, &rel, ctx.vector_size);
  Slot* key = scan->AddColumn<int32_t>("key");
  Slot* val = scan->AddColumn<int64_t>("val");
  HashGroup group(&gs, 0, 1, std::move(scan), ctx);
  group.AddKey<int32_t>(key);
  group.AddSumAgg(val);
  EXPECT_EQ(group.Next(), kEndOfStream);
}

}  // namespace
}  // namespace vcq::tectorwise
