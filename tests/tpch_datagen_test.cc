#include "datagen/tpch.h"

#include <gtest/gtest.h>

#include <set>

#include "runtime/types.h"

namespace vcq::datagen {
namespace {

using runtime::Char;
using runtime::Database;
using runtime::DateFromString;
using runtime::Varchar;

class TpchDatagenTest : public ::testing::Test {
 protected:
  static const Database& Db() {
    static const Database* db = new Database(GenerateTpch(0.01));
    return *db;
  }
};

TEST_F(TpchDatagenTest, Cardinalities) {
  const auto card = TpchCardinalities::For(0.01);
  EXPECT_EQ(card.customers, 1500);
  EXPECT_EQ(card.orders, 15000);
  EXPECT_EQ(card.parts, 2000);
  EXPECT_EQ(card.suppliers, 100);
  EXPECT_EQ(Db()["orders"].tuple_count(), 15000u);
  EXPECT_EQ(Db()["customer"].tuple_count(), 1500u);
  EXPECT_EQ(Db()["part"].tuple_count(), 2000u);
  EXPECT_EQ(Db()["partsupp"].tuple_count(), 8000u);
  EXPECT_EQ(Db()["supplier"].tuple_count(), 100u);
  EXPECT_EQ(Db()["nation"].tuple_count(), 25u);
  EXPECT_EQ(Db()["region"].tuple_count(), 5u);
  // 1..7 lineitems per order, expectation 4x orders.
  const size_t li = Db()["lineitem"].tuple_count();
  EXPECT_GT(li, 15000u * 3);
  EXPECT_LT(li, 15000u * 5);
}

TEST_F(TpchDatagenTest, LineitemValueRanges) {
  const auto& li = Db()["lineitem"];
  const auto qty = li.Col<int64_t>("l_quantity");
  const auto disc = li.Col<int64_t>("l_discount");
  const auto tax = li.Col<int64_t>("l_tax");
  const auto price = li.Col<int64_t>("l_extendedprice");
  for (size_t i = 0; i < li.tuple_count(); ++i) {
    ASSERT_GE(qty[i], 100);    // 1.00
    ASSERT_LE(qty[i], 5000);   // 50.00
    ASSERT_EQ(qty[i] % 100, 0);
    ASSERT_GE(disc[i], 0);
    ASSERT_LE(disc[i], 10);
    ASSERT_GE(tax[i], 0);
    ASSERT_LE(tax[i], 8);
    ASSERT_GT(price[i], 0);
  }
}

TEST_F(TpchDatagenTest, DateWindowsFollowSpec) {
  const auto& li = Db()["lineitem"];
  const auto& ord = Db()["orders"];
  const auto odate = ord.Col<int32_t>("o_orderdate");
  for (size_t i = 0; i < ord.tuple_count(); ++i) {
    ASSERT_GE(odate[i], TpchDates::Start());
    ASSERT_LE(odate[i], TpchDates::OrdersEnd());
  }
  const auto ship = li.Col<int32_t>("l_shipdate");
  const auto commit = li.Col<int32_t>("l_commitdate");
  const auto receipt = li.Col<int32_t>("l_receiptdate");
  const auto okey = li.Col<int32_t>("l_orderkey");
  for (size_t i = 0; i < li.tuple_count(); ++i) {
    const int32_t od = odate[okey[i] - 1];
    ASSERT_GE(ship[i], od + 1);
    ASSERT_LE(ship[i], od + 121);
    ASSERT_GE(commit[i], od + 30);
    ASSERT_LE(commit[i], od + 90);
    ASSERT_GE(receipt[i], ship[i] + 1);
    ASSERT_LE(receipt[i], ship[i] + 30);
  }
}

TEST_F(TpchDatagenTest, ReturnFlagAndLineStatusRules) {
  const auto& li = Db()["lineitem"];
  const auto ship = li.Col<int32_t>("l_shipdate");
  const auto receipt = li.Col<int32_t>("l_receiptdate");
  const auto rf = li.Col<Char<1>>("l_returnflag");
  const auto ls = li.Col<Char<1>>("l_linestatus");
  const int32_t current = TpchDates::Current();
  for (size_t i = 0; i < li.tuple_count(); ++i) {
    if (receipt[i] <= current) {
      ASSERT_TRUE(rf[i].data[0] == 'R' || rf[i].data[0] == 'A');
    } else {
      ASSERT_EQ(rf[i].data[0], 'N');
    }
    ASSERT_EQ(ls[i].data[0], ship[i] > current ? 'O' : 'F');
  }
}

TEST_F(TpchDatagenTest, PartSuppKeysFollowSpecFormula) {
  const auto& ps = Db()["partsupp"];
  const auto partkey = ps.Col<int32_t>("ps_partkey");
  const auto suppkey = ps.Col<int32_t>("ps_suppkey");
  const auto card = TpchCardinalities::For(0.01);
  for (size_t i = 0; i < ps.tuple_count(); ++i) {
    const int64_t p = partkey[i];
    const int64_t s = static_cast<int64_t>(i) % 4;
    ASSERT_EQ(suppkey[i], PartSuppSupplier(p, s, card.suppliers));
    ASSERT_GE(suppkey[i], 1);
    ASSERT_LE(suppkey[i], card.suppliers);
  }
  // Each part has 4 distinct suppliers.
  for (size_t p = 0; p < 50; ++p) {
    std::set<int32_t> supps;
    for (size_t s = 0; s < 4; ++s) supps.insert(suppkey[p * 4 + s]);
    ASSERT_EQ(supps.size(), 4u) << "part " << p + 1;
  }
}

TEST_F(TpchDatagenTest, LineitemSupplierConsistentWithPartsupp) {
  // Every (l_partkey, l_suppkey) combination must exist in partsupp —
  // otherwise Q9's composite-key join silently drops tuples.
  const auto& li = Db()["lineitem"];
  const auto lp = li.Col<int32_t>("l_partkey");
  const auto lsup = li.Col<int32_t>("l_suppkey");
  const auto card = TpchCardinalities::For(0.01);
  for (size_t i = 0; i < li.tuple_count(); ++i) {
    bool found = false;
    for (int64_t s = 0; s < 4; ++s) {
      if (PartSuppSupplier(lp[i], s, card.suppliers) == lsup[i]) {
        found = true;
        break;
      }
    }
    ASSERT_TRUE(found) << "lineitem " << i;
  }
}

TEST_F(TpchDatagenTest, MktSegmentsAreValidAndAllPresent) {
  const auto& cust = Db()["customer"];
  const auto seg = cust.Col<Char<10>>("c_mktsegment");
  std::set<std::string> seen;
  for (size_t i = 0; i < cust.tuple_count(); ++i)
    seen.insert(std::string(seg[i].View()));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_TRUE(seen.count("BUILDING"));
}

TEST_F(TpchDatagenTest, GreenPartsSelectivityNearSpec) {
  // 'green' is one of 92 words, 5 words per name: P ~ 1 - (91/92)^5 ~ 5.3%.
  const auto& part = Db()["part"];
  const auto name = part.Col<Varchar<55>>("p_name");
  size_t green = 0;
  for (size_t i = 0; i < part.tuple_count(); ++i)
    green += name[i].Contains("green") ? 1 : 0;
  const double fraction =
      static_cast<double>(green) / static_cast<double>(part.tuple_count());
  EXPECT_GT(fraction, 0.02);
  EXPECT_LT(fraction, 0.10);
}

TEST_F(TpchDatagenTest, DeterministicAcrossThreadCounts) {
  // Morsel-parallel generation must not depend on the thread count.
  const Database a = GenerateTpch(0.005, 1);
  const Database b = GenerateTpch(0.005, 8);
  const auto pa = a["lineitem"].Col<int64_t>("l_extendedprice");
  const auto pb = b["lineitem"].Col<int64_t>("l_extendedprice");
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) ASSERT_EQ(pa[i], pb[i]) << i;
  const auto sa = a["lineitem"].Col<int32_t>("l_shipdate");
  const auto sb = b["lineitem"].Col<int32_t>("l_shipdate");
  for (size_t i = 0; i < sa.size(); ++i) ASSERT_EQ(sa[i], sb[i]) << i;
}

TEST_F(TpchDatagenTest, TotalPriceMatchesLineitems) {
  const auto& ord = Db()["orders"];
  const auto& li = Db()["lineitem"];
  const auto total = ord.Col<int64_t>("o_totalprice");
  const auto okey = li.Col<int32_t>("l_orderkey");
  const auto price = li.Col<int64_t>("l_extendedprice");
  const auto disc = li.Col<int64_t>("l_discount");
  const auto tax = li.Col<int64_t>("l_tax");
  std::vector<int64_t> sum(ord.tuple_count(), 0);
  for (size_t i = 0; i < li.tuple_count(); ++i)
    sum[okey[i] - 1] += price[i] * (100 + tax[i]) * (100 - disc[i]);
  for (size_t o = 0; o < ord.tuple_count(); ++o)
    ASSERT_EQ(total[o], (sum[o] + 5000) / 10000) << "order " << o + 1;
}

TEST(TpchScaling, CardinalitiesScaleLinearly) {
  const auto c1 = TpchCardinalities::For(1.0);
  EXPECT_EQ(c1.customers, 150000);
  EXPECT_EQ(c1.orders, 1500000);
  EXPECT_EQ(c1.parts, 200000);
  EXPECT_EQ(c1.suppliers, 10000);
  const auto c2 = TpchCardinalities::For(2.0);
  EXPECT_EQ(c2.orders, 3000000);
}

TEST(TpchScaling, PartRetailPriceFormula) {
  EXPECT_EQ(PartRetailPrice(1), 90000 + 0 + 100);
  // Range sanity across keys.
  for (int64_t k = 1; k < 10000; k += 7) {
    const int64_t p = PartRetailPrice(k);
    EXPECT_GE(p, 90000);
    EXPECT_LT(p, 90000 + 20001 + 100 * 1000);
  }
}

}  // namespace
}  // namespace vcq::datagen
