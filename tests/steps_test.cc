#include "tectorwise/steps.h"

#include <gtest/gtest.h>

#include <random>

#include "runtime/types.h"

// Step-factory coverage: every CmpOp x type x (scalar|SIMD) x (dense|sparse)
// combination must agree with a straightforward reference filter, including
// the factory paths no built-in query exercises.

namespace vcq::tectorwise {
namespace {

using runtime::Char;
using runtime::Varchar;

struct StepCase {
  CmpOp op;
  bool simd;
};

class SelCmpStepTest : public ::testing::TestWithParam<StepCase> {};

template <typename T>
bool RefCmp(CmpOp op, T v, T k) {
  switch (op) {
    case CmpOp::kLess: return v < k;
    case CmpOp::kLessEq: return v <= k;
    case CmpOp::kGreater: return v > k;
    case CmpOp::kGreaterEq: return v >= k;
    case CmpOp::kEq: return v == k;
  }
  return false;
}

TEST_P(SelCmpStepTest, I32AndI64DenseAndSparse) {
  const auto [op, use_simd] = GetParam();
  if (use_simd && !simd::Available()) GTEST_SKIP();
  ExecContext ctx;
  ctx.use_simd = use_simd;
  constexpr size_t kN = 3001;
  std::mt19937 rng(5);
  std::vector<int32_t> c32(kN);
  std::vector<int64_t> c64(kN);
  for (size_t i = 0; i < kN; ++i) {
    c32[i] = static_cast<int32_t>(rng() % 100);
    c64[i] = static_cast<int64_t>(rng() % 100);
  }
  Slot s32{c32.data()}, s64{c64.data()};
  const SelStep step32 = MakeSelCmp<int32_t>(ctx, &s32, op, 50);
  const SelStep step64 = MakeSelCmp<int64_t>(ctx, &s64, op, 50);

  std::vector<pos_t> out(kN);
  // Dense.
  size_t n = step32(kN, nullptr, out.data());
  size_t ref = 0;
  for (size_t p = 0; p < kN; ++p) {
    if (RefCmp<int32_t>(op, c32[p], 50)) {
      ASSERT_EQ(out[ref], p);
      ++ref;
    }
  }
  EXPECT_EQ(n, ref);

  n = step64(kN, nullptr, out.data());
  ref = 0;
  for (size_t p = 0; p < kN; ++p) {
    if (RefCmp<int64_t>(op, c64[p], 50)) {
      ASSERT_EQ(out[ref], p);
      ++ref;
    }
  }
  EXPECT_EQ(n, ref);

  // Sparse: every other position.
  std::vector<pos_t> sel;
  for (size_t p = 0; p < kN; p += 2) sel.push_back(static_cast<pos_t>(p));
  n = step32(sel.size(), sel.data(), out.data());
  ref = 0;
  for (const pos_t p : sel) {
    if (RefCmp<int32_t>(op, c32[p], 50)) {
      ASSERT_EQ(out[ref], p);
      ++ref;
    }
  }
  EXPECT_EQ(n, ref);

  n = step64(sel.size(), sel.data(), out.data());
  ref = 0;
  for (const pos_t p : sel) {
    if (RefCmp<int64_t>(op, c64[p], 50)) {
      ASSERT_EQ(out[ref], p);
      ++ref;
    }
  }
  EXPECT_EQ(n, ref);
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, SelCmpStepTest,
    ::testing::Values(StepCase{CmpOp::kLess, false},
                      StepCase{CmpOp::kLessEq, false},
                      StepCase{CmpOp::kGreater, false},
                      StepCase{CmpOp::kGreaterEq, false},
                      StepCase{CmpOp::kEq, false},
                      StepCase{CmpOp::kLess, true},
                      StepCase{CmpOp::kLessEq, true},
                      StepCase{CmpOp::kGreater, true},
                      StepCase{CmpOp::kGreaterEq, true},
                      StepCase{CmpOp::kEq, true}));

TEST(SelStepTest, EqOr2SparseAndDense) {
  std::vector<Char<6>> col = {Char<6>::From("MFGR#1"), Char<6>::From("MFGR#2"),
                              Char<6>::From("MFGR#3"), Char<6>::From("MFGR#1"),
                              Char<6>::From("MFGR#5")};
  Slot slot{col.data()};
  const SelStep step = MakeSelEqOr2<Char<6>>(&slot, Char<6>::From("MFGR#1"),
                                             Char<6>::From("MFGR#2"));
  std::vector<pos_t> out(5);
  EXPECT_EQ(step(5, nullptr, out.data()), 3u);
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[1], 1u);
  EXPECT_EQ(out[2], 3u);

  const std::vector<pos_t> sel = {1, 2, 4};
  EXPECT_EQ(step(3, sel.data(), out.data()), 1u);
  EXPECT_EQ(out[0], 1u);
}

TEST(SelStepTest, ContainsSparseAndDense) {
  std::vector<Varchar<55>> col = {
      Varchar<55>::From("misty green snow"), Varchar<55>::From("royal blue"),
      Varchar<55>::From("greenish tint"), Varchar<55>::From("dark red")};
  Slot slot{col.data()};
  const SelStep step = MakeSelContains<Varchar<55>>(&slot, "green");
  std::vector<pos_t> out(4);
  EXPECT_EQ(step(4, nullptr, out.data()), 2u);
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[1], 2u);

  const std::vector<pos_t> sel = {1, 2, 3};
  EXPECT_EQ(step(3, sel.data(), out.data()), 1u);
  EXPECT_EQ(out[0], 2u);
}

TEST(SelStepTest, BetweenSimdAndScalarAgreeViaFactory) {
  if (!simd::Available()) GTEST_SKIP();
  constexpr size_t kN = 2000;
  std::vector<int32_t> col(kN);
  std::mt19937 rng(9);
  for (auto& v : col) v = static_cast<int32_t>(rng() % 100);
  Slot slot{col.data()};
  ExecContext scalar, vec;
  vec.use_simd = true;
  const SelStep s = MakeSelBetween<int32_t>(scalar, &slot, 20, 60);
  const SelStep v = MakeSelBetween<int32_t>(vec, &slot, 20, 60);
  std::vector<pos_t> so(kN), vo(kN);
  const size_t ns = s(kN, nullptr, so.data());
  const size_t nv = v(kN, nullptr, vo.data());
  ASSERT_EQ(ns, nv);
  for (size_t i = 0; i < ns; ++i) ASSERT_EQ(so[i], vo[i]);
}

TEST(MapStepTest, DivConstAndYear) {
  std::vector<int64_t> a = {1000, 2500, -300};
  std::vector<int64_t> out(3);
  Slot slot{a.data()};
  const MapStep div = MakeMapDivConst<int64_t>(&slot, 100, out.data());
  div(3, nullptr);
  EXPECT_EQ(out[0], 10);
  EXPECT_EQ(out[1], 25);
  EXPECT_EQ(out[2], -3);

  std::vector<int32_t> dates = {runtime::DateFromString("1994-07-04"),
                                runtime::DateFromString("1997-01-01")};
  std::vector<int32_t> years(2);
  Slot dslot{dates.data()};
  const MapStep year = MakeMapYear(&dslot, years.data());
  year(2, nullptr);
  EXPECT_EQ(years[0], 1994);
  EXPECT_EQ(years[1], 1997);
}

TEST(HashStepTest, CompositeRehashMatchesManualCombine) {
  constexpr size_t kN = 257;
  std::vector<int32_t> k1(kN), k2(kN);
  for (size_t i = 0; i < kN; ++i) {
    k1[i] = static_cast<int32_t>(i % 50);
    k2[i] = static_cast<int32_t>(i % 7);
  }
  Slot s1{k1.data()}, s2{k2.data()};
  ExecContext ctx;
  const HashStep hash = MakeHash<int32_t>(ctx, &s1);
  const RehashStep rehash = MakeRehash<int32_t>(ctx, &s2);
  std::vector<uint64_t> hashes(kN);
  std::vector<pos_t> pos(kN);
  hash(kN, nullptr, hashes.data(), pos.data());
  rehash(kN, pos.data(), hashes.data());
  for (size_t i = 0; i < kN; ++i) {
    const uint64_t expected = runtime::HashCombine(
        HashValue<int32_t>(k1[i]), HashValue<int32_t>(k2[i]));
    ASSERT_EQ(hashes[i], expected) << i;
  }
}

}  // namespace
}  // namespace vcq::tectorwise
