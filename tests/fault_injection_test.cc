#include "runtime/fault_injector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "api/query_catalog.h"
#include "api/session.h"
#include "api/vcq.h"
#include "datagen/ssb.h"
#include "datagen/tpch.h"
#include "runtime/mem_pool.h"
#include "runtime/resource_governor.h"

// The fault-injection sweep (PR 6 acceptance): for every registered fault
// point, both engines, serial and parallel, inject a failure at the first,
// last, and a seed-chosen in-between hit of the point and prove the query
// drains clean — failed status, zero rows, MemPool::live_bytes() and the
// process governor back at their pre-run baselines, and a clean rerun on
// the same session byte-identical to the reference. Sweep workloads: Q3
// (two joins into a group-by — crosses every engine-side point), Q9
// (four builds, composite keys — the deepest join stack in the catalog),
// and SSB Q4.1 (four dimension builds on the denormalized schema). The
// session-side "session.tuner" point only exists on tuned executions and
// is swept separately below with TuningMode::kLearn.
//
// Determinism contract: at threads=1 hit counts are exact, so the armed
// ordinal always fires and the assertions are unconditional. At threads=8
// some points' hit counts depend on morsel claiming order, so a
// last-ordinal arm may not be reached; those assertions key off
// FiredCount() — fired means failed-clean, not-fired means byte-identical.

namespace vcq {
namespace {

using runtime::Database;
using runtime::ExecStatus;
using runtime::FaultAction;
using runtime::FaultInjector;
using runtime::FaultSpec;
using runtime::MemPool;
using runtime::QueryOptions;
using runtime::QueryResult;
using runtime::ResourceGovernor;

const Database& TpchDb() {
  static const Database* db = new Database(datagen::GenerateTpch(0.01));
  return *db;
}

const Database& SsbDb() {
  static const Database* db = new Database(datagen::GenerateSsb(0.01));
  return *db;
}

constexpr ExecStatus ExpectedStatus(FaultAction action) {
  return action == FaultAction::kCancel ? ExecStatus::kCancelled
                                        : ExecStatus::kResourceExhausted;
}

// One armed execution plus the full drain-clean assertion set. `base`
// carries everything but threads/fault (e.g. a tuning mode for the
// session.tuner sweep).
void RunArmed(Session& session, Engine engine, Query query, size_t threads,
              const char* point, FaultSpec spec, const QueryResult& expected,
              PreparedQuery& clean, QueryOptions base = {}) {
  FaultInjector armed;
  armed.Arm(point, spec);
  QueryOptions opt = base;
  opt.threads = threads;
  opt.fault = &armed;
  PreparedQuery q = session.Prepare(engine, query, opt);

  const size_t live_before = MemPool::live_bytes();
  const size_t gov_before = ResourceGovernor::Global().in_use();
  const QueryResult got = q.Execute();

  if (threads == 1) {
    // Serial hit counts are exact: the armed ordinal always fires.
    EXPECT_EQ(armed.FiredCount(), 1u);
  }
  if (armed.FiredCount() > 0) {
    EXPECT_EQ(got.status, ExpectedStatus(spec.action));
    EXPECT_TRUE(got.rows.empty())
        << "partial rows surfaced from a failed query";
  } else {
    // The ordinal was beyond this run's hit count (parallel jitter): the
    // query must be untouched by the armed-but-silent injector.
    EXPECT_EQ(got, expected);
  }
  EXPECT_EQ(MemPool::live_bytes(), live_before)
      << "run-local memory leaked (or double-released) through the unwind";
  EXPECT_EQ(ResourceGovernor::Global().in_use(), gov_before);

  // Nothing sticky: the same session immediately runs the query clean.
  EXPECT_EQ(clean.Execute(), expected);
}

TEST(FaultSweepTest, EveryPointBothEnginesFirstLastRandomHitDrainsClean) {
  // Seed-driven ordinal chooser: the whole sweep replays identically.
  FaultInjector rng(0x5eed5eed);
  std::set<std::string> crossed;

  struct Workload {
    const Database* db;
    Query query;
  };
  const Workload workloads[] = {
      {&TpchDb(), Query::kQ3},
      {&TpchDb(), Query::kQ9},
      {&SsbDb(), Query::kSsbQ41},
  };

  for (const Workload& wl : workloads) {
    Session session(*wl.db);
    for (Engine engine : {Engine::kTyper, Engine::kTectorwise}) {
      QueryOptions clean_opt;
      clean_opt.threads = 1;
      PreparedQuery clean = session.Prepare(engine, wl.query, clean_opt);
      const QueryResult expected = clean.Execute();
      ASSERT_TRUE(expected.ok())
          << EngineName(engine) << " " << QueryName(wl.query);
      ASSERT_GT(expected.rows.size(), 0u);

      for (size_t threads : {size_t{1}, size_t{8}}) {
        // Dry-run with a counting (unarmed) injector to learn how often
        // each point is crossed at this thread count.
        FaultInjector counter;
        QueryOptions opt;
        opt.threads = threads;
        opt.fault = &counter;
        PreparedQuery probe = session.Prepare(engine, wl.query, opt);
        ASSERT_EQ(probe.Execute(), expected)
            << EngineName(engine) << " " << QueryName(wl.query)
            << " threads=" << threads;

        for (const char* point : FaultInjector::KnownPoints()) {
          const uint64_t hits = counter.HitCount(point);
          if (hits == 0) continue;  // not on this engine's path
          crossed.insert(point);
          const uint64_t ordinals[] = {1, hits, rng.RandOrdinal(hits)};
          for (uint64_t ordinal : ordinals) {
            SCOPED_TRACE(std::string(QueryName(wl.query)) + " " +
                         EngineName(engine) + " threads=" +
                         std::to_string(threads) + " point=" + point +
                         " hit=" + std::to_string(ordinal) + "/" +
                         std::to_string(hits));
            RunArmed(session, engine, wl.query, threads, point,
                     FaultSpec{FaultAction::kThrowBadAlloc, ordinal},
                     expected, clean);
          }
        }
      }
    }
  }

  // The bandit arm draw only exists on tuned executions: sweep it with a
  // learning tuner. The point is crossed exactly once per execution on the
  // coordinating thread, so ordinal 1 is exact at any thread count — and
  // the clean reruns double as byte-identity checks for arms the learning
  // tuner happens to draw.
  for (Engine engine : {Engine::kTyper, Engine::kTectorwise}) {
    Session session(TpchDb());
    QueryOptions tuned;
    tuned.threads = 1;
    tuned.tuning = runtime::TuningMode::kLearn;
    tuned.tuner_seed = 7;
    PreparedQuery clean = session.Prepare(engine, Query::kQ3, tuned);
    const QueryResult expected = clean.Execute();
    ASSERT_TRUE(expected.ok()) << EngineName(engine);

    for (size_t threads : {size_t{1}, size_t{8}}) {
      FaultInjector counter;
      QueryOptions opt = tuned;
      opt.threads = threads;
      opt.fault = &counter;
      PreparedQuery probe = session.Prepare(engine, Query::kQ3, opt);
      ASSERT_EQ(probe.Execute(), expected)
          << EngineName(engine) << " threads=" << threads;
      ASSERT_EQ(counter.HitCount("session.tuner"), 1u);
      crossed.insert("session.tuner");

      SCOPED_TRACE(std::string("tuned ") + EngineName(engine) +
                   " threads=" + std::to_string(threads));
      RunArmed(session, engine, Query::kQ3, threads, "session.tuner",
               FaultSpec{FaultAction::kThrowBadAlloc, 1}, expected, clean,
               tuned);
    }
  }

  // The spill-path points only exist on spill-enabled executions under
  // memory pressure: sweep them with an over-budget spill run (budget =
  // quarter of the measured in-memory peak, QueryOptions::spill on). The
  // write/read/open points fail like any other site — drain clean,
  // kResourceExhausted, baselines restored, partial spill files unlinked.
  // spill.unlink is different by design: it fires inside the cleanup path
  // (the SpillFile destructor absorbs it — cleanup is fault-TOLERANT), so
  // the armed run must SUCCEED byte-identically, not fail.
  {
    const Workload spill_workloads[] = {
        {&TpchDb(), Query::kQ3},
        {&TpchDb(), Query::kQ9},
    };
    for (const Workload& wl : spill_workloads) {
      Session session(*wl.db);
      for (Engine engine : {Engine::kTyper, Engine::kTectorwise}) {
        QueryOptions clean_opt;
        clean_opt.threads = 1;
        PreparedQuery clean = session.Prepare(engine, wl.query, clean_opt);
        const QueryResult expected = clean.Execute();
        ASSERT_TRUE(expected.ok())
            << EngineName(engine) << " " << QueryName(wl.query);
        const size_t peak = clean.measured_peak_bytes();
        ASSERT_GT(peak, 0u);

        QueryOptions base;
        base.memory_budget = std::max<size_t>(1, peak / 4);
        base.spill = true;

        for (size_t threads : {size_t{1}, size_t{8}}) {
          FaultInjector counter;
          QueryOptions opt = base;
          opt.threads = threads;
          opt.fault = &counter;
          PreparedQuery probe = session.Prepare(engine, wl.query, opt);
          ASSERT_EQ(probe.Execute(), expected)
              << EngineName(engine) << " " << QueryName(wl.query)
              << " threads=" << threads;
          if (threads == 1) {
            // Serial pressure is deterministic: the over-budget run MUST
            // have spilled, or the sub-sweep is sweeping nothing.
            ASSERT_GT(counter.HitCount("spill.write"), 0u)
                << EngineName(engine) << " " << QueryName(wl.query);
          }

          for (const char* point :
               {"spill.open", "spill.write", "spill.read"}) {
            const uint64_t hits = counter.HitCount(point);
            if (hits == 0) continue;
            crossed.insert(point);
            const uint64_t ordinals[] = {1, hits, rng.RandOrdinal(hits)};
            for (uint64_t ordinal : ordinals) {
              SCOPED_TRACE(std::string(QueryName(wl.query)) + " spill " +
                           EngineName(engine) + " threads=" +
                           std::to_string(threads) + " point=" + point +
                           " hit=" + std::to_string(ordinal) + "/" +
                           std::to_string(hits));
              RunArmed(session, engine, wl.query, threads, point,
                       FaultSpec{FaultAction::kThrowBadAlloc, ordinal},
                       expected, clean, base);
            }
          }

          if (counter.HitCount("spill.unlink") > 0) {
            crossed.insert("spill.unlink");
            SCOPED_TRACE(std::string(QueryName(wl.query)) +
                         " spill.unlink " + EngineName(engine) +
                         " threads=" + std::to_string(threads));
            FaultInjector armed;
            armed.Arm("spill.unlink",
                      FaultSpec{FaultAction::kThrowBadAlloc, 1});
            QueryOptions opt2 = base;
            opt2.threads = threads;
            opt2.fault = &armed;
            PreparedQuery q = session.Prepare(engine, wl.query, opt2);
            const size_t live_before = MemPool::live_bytes();
            const size_t gov_before = ResourceGovernor::Global().in_use();
            const QueryResult got = q.Execute();
            if (threads == 1) EXPECT_GE(armed.FiredCount(), 1u);
            if (armed.FiredCount() > 0) {
              // The absorbed cleanup fault must not leak into the result.
              EXPECT_EQ(got, expected);
            }
            EXPECT_EQ(MemPool::live_bytes(), live_before);
            EXPECT_EQ(ResourceGovernor::Global().in_use(), gov_before);
          }
        }
      }
    }
  }

  // Registry honesty: every listed point was actually crossed by at least
  // one workload/engine — a renamed or dropped site fails here instead of
  // silently shrinking the sweep.
  for (const char* point : FaultInjector::KnownPoints()) {
    EXPECT_TRUE(crossed.count(point) > 0)
        << "registered point never crossed by the sweep workload: " << point;
  }
}

TEST(FaultSweepTest, InjectedCancelSurfacesAsCancelled) {
  // kCancel models a user cancel landing at exactly the site: distinct
  // status from the allocation-failure path, same drain-clean guarantees.
  const Database& db = TpchDb();
  Session session(db);
  for (Engine engine : {Engine::kTyper, Engine::kTectorwise}) {
    QueryOptions clean_opt;
    clean_opt.threads = 1;
    PreparedQuery clean = session.Prepare(engine, Query::kQ3, clean_opt);
    const QueryResult expected = clean.Execute();
    ASSERT_TRUE(expected.ok());
    for (size_t threads : {size_t{1}, size_t{8}}) {
      SCOPED_TRACE(std::string(EngineName(engine)) + " threads=" +
                   std::to_string(threads));
      RunArmed(session, engine, Query::kQ3, threads, "join_build.size",
               FaultSpec{FaultAction::kCancel, 1}, expected, clean);
    }
  }
}

TEST(FaultSweepTest, InjectedDelayIsHarmless) {
  // A latency fault must change nothing but wall time: the slowed run is
  // byte-identical to the reference. Repeat-fire on the scan poll stretches
  // the whole scan phase, exercising barrier timeouts under skew.
  const Database& db = TpchDb();
  Session session(db);
  for (Engine engine : {Engine::kTyper, Engine::kTectorwise}) {
    QueryOptions clean_opt;
    clean_opt.threads = 1;
    PreparedQuery clean = session.Prepare(engine, Query::kQ3, clean_opt);
    const QueryResult expected = clean.Execute();
    ASSERT_TRUE(expected.ok());

    FaultInjector armed;
    armed.Arm("scan.morsel",
              FaultSpec{FaultAction::kDelay, 1, /*repeat=*/true,
                        /*delay_us=*/100});
    QueryOptions opt;
    opt.threads = 4;
    opt.fault = &armed;
    PreparedQuery slow = session.Prepare(engine, Query::kQ3, opt);
    const QueryResult got = slow.Execute();
    EXPECT_GT(armed.FiredCount(), 0u);
    EXPECT_EQ(got, expected) << EngineName(engine);
  }
}

TEST(FaultSweepTest, SameSeedSameOrdinals) {
  // The harness's own determinism: two injectors with one seed choose the
  // same ordinal sequence, so a failing sweep seed replays exactly.
  FaultInjector a(42);
  FaultInjector b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.RandOrdinal(1000), b.RandOrdinal(1000));
  }
  FaultInjector c(43);
  bool diverged = false;
  FaultInjector a2(42);
  for (int i = 0; i < 100; ++i) {
    if (a2.RandOrdinal(1000) != c.RandOrdinal(1000)) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

}  // namespace
}  // namespace vcq
