#include "runtime/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "api/session.h"
#include "api/vcq.h"
#include "datagen/tpch.h"
#include "runtime/barrier.h"
#include "runtime/cancel.h"
#include "runtime/mem_pool.h"
#include "runtime/worker_pool.h"

// The scheduler contract:
//  - gang admission: a parallel region's slots are handed out
//    all-or-nothing on a FIXED worker set, so in-region barriers are safe
//    and the worker thread count never exceeds the configured capacity no
//    matter how many queries are in flight;
//  - weighted fair queueing: backlogged streams receive region dispatches
//    in weight proportion, ties broken by the shortest remaining-work
//    hint; kFifo restores arrival order;
//  - admission control: in-flight executions beyond the limit wait in a
//    bounded queue, anything beyond that is rejected immediately;
//  - cancellation/deadlines: both engines stop at morsel boundaries, free
//    every pool slot and all run-local MemPool bytes, and never corrupt a
//    concurrently running query.

namespace vcq {
namespace {

using runtime::Barrier;
using runtime::CancelToken;
using runtime::Database;
using runtime::ExecStatus;
using runtime::QueryOptions;
using runtime::QueryResult;
using runtime::RegionInfo;
using runtime::Scheduler;
using runtime::SchedPolicy;

// ---------------------------------------------------------------------------
// Gang scheduling on a fixed worker set
// ---------------------------------------------------------------------------

TEST(SchedulerTest, GangRegionWithBarrierCompletesOnExactCapacity) {
  // A 5-wide region (4 pool slots + the caller) with an internal barrier
  // needs all five workers live at once; gang admission guarantees it even
  // when the capacity is exactly the slot count.
  Scheduler sched(4);
  Barrier barrier(5);
  std::atomic<int> after{0};
  sched.Run(5, [&](size_t) {
    barrier.Wait();
    after.fetch_add(1);
  });
  EXPECT_EQ(after.load(), 5);
  EXPECT_LE(sched.worker_threads(), 4u);
}

TEST(SchedulerTest, WorkerThreadsStayBoundedUnderConcurrentRegions) {
  // Six clients keep submitting 3-wide barrier regions to a 2-slot
  // scheduler: the old pool grew its thread set to peak demand (12+);
  // the gang scheduler must serialize regions instead and never spawn a
  // third worker.
  Scheduler sched(2);
  std::atomic<int> regions_done{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 6; ++c) {
    clients.emplace_back([&] {
      for (int round = 0; round < 5; ++round) {
        Barrier barrier(3);
        std::atomic<int> mine{0};
        sched.Run(3, [&](size_t) {
          barrier.Wait();
          mine.fetch_add(1);
        });
        EXPECT_EQ(mine.load(), 3);
        regions_done.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(regions_done.load(), 30);
  EXPECT_LE(sched.worker_threads(), 2u);
}

TEST(SchedulerTest, IndependentRegionsOverlapWhenCapacityAllows) {
  // Two 2-wide regions rendezvous across regions: both must be dispatched
  // concurrently (2 slots on a 2-slot scheduler) or neither finishes.
  Scheduler sched(2);
  Barrier rendezvous(4);
  std::thread a([&] { sched.Run(2, [&](size_t) { rendezvous.Wait(); }); });
  std::thread b([&] { sched.Run(2, [&](size_t) { rendezvous.Wait(); }); });
  a.join();
  b.join();
  SUCCEED();
}

TEST(SchedulerTest, SingleThreadRunsInlineWithoutWorkers) {
  Scheduler sched(2);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  sched.Run(1, [&](size_t) { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, caller);
  EXPECT_EQ(sched.worker_threads(), 0u);
}

TEST(SchedulerDeathTest, RegionWiderThanCapacityIsRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Scheduler sched(2);
  EXPECT_DEATH(sched.Run(4, [](size_t) {}), "gang capacity");
}

// ---------------------------------------------------------------------------
// Fairness
// ---------------------------------------------------------------------------

/// Builds a backlog of 2-wide regions on a capacity-1 scheduler while a
/// blocker region holds the only worker, then releases the blocker and
/// records the order in which the worker executes the queued regions'
/// slots — the dispatch order, serialized by the single worker.
class DispatchOrderHarness {
 public:
  explicit DispatchOrderHarness(Scheduler& sched) : sched_(sched) {
    blocker_ = std::thread([&] {
      sched_.Run(2, [&](size_t) {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return released_; });
      });
    });
    // Both blocker participants (caller + the worker) are now parked; the
    // worker is busy, so everything enqueued next just queues.
    while (sched_.regions_dispatched(0) < 1) std::this_thread::yield();
  }

  /// Enqueues one region on `stream` from its own client thread.
  void Enqueue(uint64_t stream, char tag, size_t work) {
    clients_.emplace_back([this, stream, tag, work] {
      sched_.Run(2,
                 [&](size_t wid) {
                   if (wid == 1) {  // the single worker = dispatch order
                     std::lock_guard<std::mutex> lock(order_mu_);
                     order_.push_back(tag);
                   }
                 },
                 RegionInfo{stream, work});
    });
  }

  /// Waits until `count` regions are queued, releases the blocker, joins
  /// everything, and returns the recorded dispatch order.
  std::vector<char> Release(size_t count) {
    while (sched_.queued_regions() < count) std::this_thread::yield();
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
    }
    cv_.notify_all();
    blocker_.join();
    for (auto& t : clients_) t.join();
    std::lock_guard<std::mutex> lock(order_mu_);
    return order_;
  }

 private:
  Scheduler& sched_;
  std::thread blocker_;
  std::vector<std::thread> clients_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool released_ = false;
  std::mutex order_mu_;
  std::vector<char> order_;
};

TEST(SchedulerTest, WeightedStreamsDispatchInWeightProportion) {
  Scheduler sched(1);
  const uint64_t heavy = sched.CreateStream(3.0);
  const uint64_t light = sched.CreateStream(1.0);
  DispatchOrderHarness harness(sched);
  for (int i = 0; i < 6; ++i) harness.Enqueue(heavy, 'A', 10);
  for (int i = 0; i < 6; ++i) harness.Enqueue(light, 'B', 10);
  const std::vector<char> order = harness.Release(12);

  ASSERT_EQ(order.size(), 12u);
  // Weighted fair queueing at weights 3:1 with both streams backlogged:
  // the first eight dispatches serve the heavy stream six times.
  int heavy_first8 = 0;
  for (int i = 0; i < 8; ++i) heavy_first8 += order[i] == 'A';
  EXPECT_EQ(heavy_first8, 6) << std::string(order.begin(), order.end());
  EXPECT_EQ(sched.regions_dispatched(heavy), 6u);
  EXPECT_EQ(sched.regions_dispatched(light), 6u);
}

TEST(SchedulerTest, ShortestRemainingRegionBreaksTies) {
  // Equal-weight, equal-pass streams: the region with the smaller
  // remaining-work hint goes first even though it arrived second.
  Scheduler sched(1);
  const uint64_t s1 = sched.CreateStream();
  const uint64_t s2 = sched.CreateStream();
  DispatchOrderHarness harness(sched);
  harness.Enqueue(s1, 'L', 100000);  // long region, queued first
  while (sched.queued_regions() < 1) std::this_thread::yield();
  harness.Enqueue(s2, 'S', 10);  // short region, queued second
  const std::vector<char> order = harness.Release(2);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 'S');
  EXPECT_EQ(order[1], 'L');
}

TEST(SchedulerTest, FifoPolicyRestoresArrivalOrder) {
  Scheduler sched(1);
  sched.SetPolicy(SchedPolicy::kFifo);
  const uint64_t s1 = sched.CreateStream();
  const uint64_t s2 = sched.CreateStream();
  DispatchOrderHarness harness(sched);
  harness.Enqueue(s1, 'L', 100000);
  while (sched.queued_regions() < 1) std::this_thread::yield();
  harness.Enqueue(s2, 'S', 10);
  const std::vector<char> order = harness.Release(2);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 'L');  // arrival order, work hint ignored
  EXPECT_EQ(order[1], 'S');
}

TEST(SchedulerTest, DestroyedStreamFallsBackToDefault) {
  Scheduler sched(2);
  const uint64_t stream = sched.CreateStream(2.0);
  sched.DestroyStream(stream);
  std::atomic<int> ran{0};
  sched.Run(2, [&](size_t) { ran.fetch_add(1); }, RegionInfo{stream, 0});
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(sched.StreamWeight(stream), 1.0);  // default-stream weight
}

TEST(SchedulerTest, StreamWeightIntrospection) {
  Scheduler sched(2);
  const uint64_t stream = sched.CreateStream(2.5);
  EXPECT_EQ(sched.StreamWeight(stream), 2.5);
  sched.SetStreamWeight(stream, 0.5);
  EXPECT_EQ(sched.StreamWeight(stream), 0.5);
  sched.DestroyStream(stream);
}

TEST(SchedulerTest, SubmittedCoordinatorsMayRunParallelRegions) {
  Scheduler sched(2);
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  std::atomic<int> inner{0};
  constexpr int kTasks = 5;
  for (int t = 0; t < kTasks; ++t) {
    sched.Submit([&] {
      // A detached coordinator driving its own gang region — the shape of
      // PreparedQuery::ExecuteAsync. Coordinators do not occupy gang
      // workers, so this cannot starve the regions it waits for.
      sched.Run(3, [&](size_t) { inner.fetch_add(1); });
      std::lock_guard<std::mutex> lock(mu);
      ++done;
      cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done == kTasks; });
  EXPECT_EQ(inner.load(), kTasks * 3);
  EXPECT_LE(sched.worker_threads(), 2u);
}

TEST(SchedulerTest, RapidSubmitsRunOnConcurrentCoordinators) {
  // Two back-to-back Submits while a coordinator is parked idle: the
  // second task must get its own coordinator, not queue serially behind
  // the first (which here blocks until the second runs).
  Scheduler sched(1);
  {
    // Park one idle coordinator.
    std::mutex mu;
    std::condition_variable cv;
    bool warm = false;
    sched.Submit([&] {
      std::lock_guard<std::mutex> lock(mu);
      warm = true;
      cv.notify_all();
    });
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return warm; });
  }
  std::mutex mu;
  std::condition_variable cv;
  bool second_ran = false;
  std::atomic<bool> first_done{false};
  sched.Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    // Would deadlock on a single shared coordinator; bounded so a
    // regression fails instead of hanging.
    cv.wait_for(lock, std::chrono::seconds(60), [&] { return second_ran; });
    first_done.store(second_ran);
  });
  sched.Submit([&] {
    std::lock_guard<std::mutex> lock(mu);
    second_ran = true;
    cv.notify_all();
  });
  const auto deadline = CancelToken::Clock::now() + std::chrono::seconds(90);
  while (!first_done.load() && CancelToken::Clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(first_done.load());
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST(SchedulerTest, AdmissionRejectsBeyondLimitAndQueue) {
  Scheduler sched(1);
  sched.SetAdmissionLimit(1, 0);  // one in flight, no wait queue
  Scheduler::Admission first = sched.Admit(nullptr);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(sched.inflight(), 1u);

  Scheduler::Admission second = sched.Admit(nullptr);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status(), ExecStatus::kRejected);

  first.Release();
  Scheduler::Admission third = sched.Admit(nullptr);
  EXPECT_TRUE(third.ok());
}

TEST(SchedulerTest, AdmissionQueueAdmitsInTurnAndBoundsWaiters) {
  Scheduler sched(1);
  sched.SetAdmissionLimit(1, 1);  // one in flight, one waiter
  Scheduler::Admission first = sched.Admit(nullptr);
  ASSERT_TRUE(first.ok());

  std::atomic<bool> queued_ok{false};
  std::thread waiter([&] {
    Scheduler::Admission queued = sched.Admit(nullptr);
    queued_ok.store(queued.ok());
  });
  while (sched.admission_waiting() < 1) std::this_thread::yield();

  // The wait queue is full: a third caller gets backpressure immediately.
  Scheduler::Admission third = sched.Admit(nullptr);
  EXPECT_FALSE(third.ok());
  EXPECT_EQ(third.status(), ExecStatus::kRejected);

  first.Release();  // hands the slot to the queued waiter
  waiter.join();
  EXPECT_TRUE(queued_ok.load());
}

TEST(SchedulerTest, AdmissionWaitHonorsCancelAndDeadline) {
  Scheduler sched(1);
  sched.SetAdmissionLimit(1, 4);
  Scheduler::Admission holder = sched.Admit(nullptr);
  ASSERT_TRUE(holder.ok());

  CancelToken cancelled;
  cancelled.Cancel();
  Scheduler::Admission c = sched.Admit(&cancelled);
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.status(), ExecStatus::kCancelled);

  CancelToken expired(CancelToken::Clock::now() -
                      std::chrono::milliseconds(1));
  Scheduler::Admission d = sched.Admit(&expired);
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.status(), ExecStatus::kDeadlineExceeded);
}

TEST(SchedulerTest, StreamQuotaBoundsInflightPerTenant) {
  Scheduler sched(1);
  sched.SetAdmissionLimit(8, 8);
  sched.SetStreamQuota(7, 1, 0);  // tenant 7: one execution at a time

  Scheduler::Admission a = sched.Admit(nullptr, 0, 7);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(sched.stream_inflight(7), 1u);

  // Over its quota the tenant WAITS (kDeadlineExceeded when the token
  // expires), it is not bounced with kRejected — quota pressure is its own
  // backpressure, not global overload.
  CancelToken deadline(CancelToken::Clock::now() +
                       std::chrono::milliseconds(20));
  Scheduler::Admission b = sched.Admit(&deadline, 0, 7);
  EXPECT_FALSE(b.ok());
  EXPECT_EQ(b.status(), ExecStatus::kDeadlineExceeded);

  // Other tenants are untouched by 7's quota.
  Scheduler::Admission c = sched.Admit(nullptr, 0, 9);
  EXPECT_TRUE(c.ok());

  a.Release();
  Scheduler::Admission d = sched.Admit(nullptr, 0, 7);
  EXPECT_TRUE(d.ok());
}

TEST(SchedulerTest, StreamByteQuotaWaitsWhenFullFailsFastWhenNeverFits) {
  Scheduler sched(1);
  sched.SetAdmissionLimit(8, 8);
  sched.SetStreamQuota(7, 0, 1000);

  // Could never fit the tenant's byte quota: immediate kResourceExhausted
  // (same reasoning as the global memory budget's never-fits rejection).
  Scheduler::Admission big = sched.Admit(nullptr, 2000, 7);
  EXPECT_FALSE(big.ok());
  EXPECT_EQ(big.status(), ExecStatus::kResourceExhausted);

  Scheduler::Admission a = sched.Admit(nullptr, 800, 7);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(sched.stream_inflight_bytes(7), 800u);

  CancelToken deadline(CancelToken::Clock::now() +
                       std::chrono::milliseconds(20));
  Scheduler::Admission b = sched.Admit(&deadline, 800, 7);
  EXPECT_EQ(b.status(), ExecStatus::kDeadlineExceeded);

  a.Release();
  Scheduler::Admission c = sched.Admit(nullptr, 800, 7);
  EXPECT_TRUE(c.ok());
  c.Release();
  EXPECT_EQ(sched.stream_inflight_bytes(7), 0u);
}

TEST(SchedulerTest, BrownoutShedsHeaviestStreamWhileLightOnesQueue) {
  Scheduler sched(1);
  sched.SetAdmissionLimit(1, 4);
  sched.SetBrownout(0.25);  // pressure at >= 1 of 4 queue slots occupied
  EXPECT_EQ(sched.shed_count(), 0u);

  // Tenant 7 holds the only slot with the largest in-flight footprint.
  Scheduler::Admission heavy = sched.Admit(nullptr, 1000, 7);
  ASSERT_TRUE(heavy.ok());

  // A light tenant queues up, putting the admission queue at the brown-out
  // threshold.
  std::atomic<bool> waiter_ok{false};
  std::thread waiter([&] {
    Scheduler::Admission w = sched.Admit(nullptr, 0, 9);
    waiter_ok.store(w.ok());
  });
  while (sched.admission_waiting() < 1) std::this_thread::yield();

  // Under pressure, NEW arrivals from the heaviest tenant are shed...
  Scheduler::Admission shed = sched.Admit(nullptr, 0, 7);
  EXPECT_FALSE(shed.ok());
  EXPECT_EQ(shed.status(), ExecStatus::kRejected);
  EXPECT_EQ(sched.shed_count(), 1u);

  // ...while another light tenant still gets to wait its turn (it times
  // out here only because the slot is never freed while it waits).
  CancelToken deadline(CancelToken::Clock::now() +
                       std::chrono::milliseconds(20));
  Scheduler::Admission light = sched.Admit(&deadline, 0, 10);
  EXPECT_EQ(light.status(), ExecStatus::kDeadlineExceeded);

  heavy.Release();  // pressure relieved: the queued light tenant admits
  waiter.join();
  EXPECT_TRUE(waiter_ok.load());

  // With nothing in flight and the queue drained, brown-out no longer
  // triggers even for former heavyweights.
  Scheduler::Admission calm = sched.Admit(nullptr, 0, 7);
  EXPECT_TRUE(calm.ok());
  EXPECT_EQ(sched.shed_count(), 1u);
}

// ---------------------------------------------------------------------------
// CancelToken semantics
// ---------------------------------------------------------------------------

TEST(CancelTokenTest, FlagDeadlineAndStatusPrecedence) {
  CancelToken plain;
  EXPECT_FALSE(plain.Interrupted());
  EXPECT_EQ(plain.status(), ExecStatus::kOk);
  plain.Cancel();
  EXPECT_TRUE(plain.Interrupted());        // sticky
  EXPECT_TRUE(plain.Interrupted());
  EXPECT_EQ(plain.status(), ExecStatus::kCancelled);

  CancelToken expired(CancelToken::Clock::now() -
                      std::chrono::milliseconds(1));
  EXPECT_TRUE(expired.Interrupted());
  EXPECT_EQ(expired.status(), ExecStatus::kDeadlineExceeded);
  expired.Cancel();  // an explicit cancel wins over the expired deadline
  EXPECT_EQ(expired.status(), ExecStatus::kCancelled);

  CancelToken future(CancelToken::Clock::now() + std::chrono::hours(1));
  EXPECT_FALSE(future.Interrupted());
  EXPECT_EQ(future.status(), ExecStatus::kOk);
}

// ---------------------------------------------------------------------------
// Whole-query coverage: bounded threads, cancellation, deadlines,
// admission through the Session API
// ---------------------------------------------------------------------------

const Database& TestDb() {
  static const Database* db = new Database(datagen::GenerateTpch(0.05));
  return *db;
}

TEST(SchedulerQueryTest, EightConcurrentQueriesOnFourThreadSchedulerStayBoundedAndCorrect) {
  // The acceptance shape: 8 concurrent prepared queries on a 4-thread
  // scheduler — worker threads never exceed the bound, results stay
  // byte-identical to the serial reference.
  runtime::WorkerPool pool(4);
  Session session(TestDb(), pool);
  QueryOptions opt;
  opt.threads = 4;

  struct Cell {
    PreparedQuery prepared;
    QueryResult expected;
  };
  std::vector<Cell> cells;
  for (Query q : {Query::kQ1, Query::kQ6, Query::kQ3, Query::kQ18}) {
    for (Engine e : {Engine::kTyper, Engine::kTectorwise}) {
      PreparedQuery p = session.Prepare(e, q, opt);
      QueryResult expected = RunQuery(TestDb(), e, q, QueryOptions{});
      cells.push_back(Cell{std::move(p), std::move(expected)});
    }
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (size_t t = 0; t < cells.size(); ++t) {
    clients.emplace_back([&, t] {
      for (int round = 0; round < 2; ++round) {
        const QueryResult got = cells[t].prepared.Execute();
        if (!got.ok() || !(got == cells[t].expected)) failures.fetch_add(1);
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_LE(pool.spawned_threads(), 4u);
  EXPECT_LE(pool.scheduler().thread_count(), 4u);
}

TEST(SchedulerQueryTest, PrepareClampsThreadsToSchedulerCapacity) {
  runtime::WorkerPool pool(2);
  Session session(TestDb(), pool);
  // The caller acts as worker 0, so a 2-slot scheduler admits regions up
  // to 3 wide; anything wider is clamped at Prepare time.
  PreparedQuery wide =
      session.Prepare(Engine::kTyper, Query::kQ6, {.threads = 16});
  EXPECT_EQ(wide.options().threads, 3u);
  // scheduler_threads caps below the pool capacity.
  PreparedQuery capped = session.Prepare(
      Engine::kTyper, Query::kQ6, {.threads = 16, .scheduler_threads = 1});
  EXPECT_EQ(capped.options().threads, 1u);
  EXPECT_TRUE(wide.Execute().ok());
}

TEST(SchedulerQueryTest, CancelMidQueryFreesSlotsAndMemPoolBytes) {
  runtime::WorkerPool pool(2);
  Session session(TestDb(), pool);
  PreparedQuery q9 =
      session.Prepare(Engine::kTyper, Query::kQ9, {.threads = 2});
  const size_t baseline = runtime::MemPool::live_bytes();

  ExecutionHandle handle = q9.ExecuteAsync();
  // Wait until the query is observably mid-run (its join builds hold
  // MemPool chunks), then cancel. If the query wins the race and
  // finishes first, the status is kOk — both outcomes are asserted.
  const auto deadline =
      CancelToken::Clock::now() + std::chrono::seconds(30);
  while (runtime::MemPool::live_bytes() == baseline && !handle.Done() &&
         CancelToken::Clock::now() < deadline) {
    std::this_thread::yield();
  }
  handle.Cancel();
  const QueryResult result = handle.Wait();
  if (result.status == ExecStatus::kCancelled) {
    EXPECT_TRUE(result.rows.empty());
  } else {
    EXPECT_EQ(result.status, ExecStatus::kOk);
  }
  // Mid-query cancel released every run-local MemPool byte...
  EXPECT_EQ(runtime::MemPool::live_bytes(), baseline);
  // ...and every pool slot: the same pool immediately runs a full query.
  PreparedQuery q6 =
      session.Prepare(Engine::kTyper, Query::kQ6, {.threads = 2});
  const QueryResult after = q6.Execute();
  EXPECT_TRUE(after.ok());
  EXPECT_EQ(after, RunQuery(TestDb(), Engine::kTyper, Query::kQ6, {}));
}

TEST(SchedulerQueryTest, ExpiredDeadlineReturnsDistinctStatus) {
  Session session(TestDb());
  PreparedQuery q9 = session.Prepare(Engine::kTyper, Query::kQ9);
  // Already-expired deadline: trips before any work starts.
  const QueryResult pre =
      q9.Execute(CancelToken::Clock::now() - std::chrono::milliseconds(1));
  EXPECT_EQ(pre.status, ExecStatus::kDeadlineExceeded);
  EXPECT_TRUE(pre.rows.empty());
  // A deadline far too short for Q9: trips at a morsel boundary mid-run.
  const QueryResult mid = q9.Execute(std::chrono::milliseconds(1));
  EXPECT_EQ(mid.status, ExecStatus::kDeadlineExceeded);
  EXPECT_TRUE(mid.rows.empty());
  // Distinct from an explicit cancel, and a clean run still works.
  EXPECT_NE(ExecStatus::kDeadlineExceeded, ExecStatus::kCancelled);
  EXPECT_TRUE(q9.Execute().ok());
}

TEST(SchedulerQueryTest, CancelledQueryNeverCorruptsConcurrentOne) {
  runtime::WorkerPool pool(4);
  Session victim_session(TestDb(), pool);
  Session cancel_session(TestDb(), pool);
  PreparedQuery q6 =
      victim_session.Prepare(Engine::kTectorwise, Query::kQ6, {.threads = 2});
  PreparedQuery q9 =
      cancel_session.Prepare(Engine::kTyper, Query::kQ9, {.threads = 2});
  const QueryResult expected_q6 = q6.Execute();
  ASSERT_TRUE(expected_q6.ok());

  for (int round = 0; round < 5; ++round) {
    ExecutionHandle doomed = q9.ExecuteAsync();
    doomed.Cancel();
    const QueryResult got = q6.Execute();
    EXPECT_TRUE(got.ok());
    EXPECT_EQ(got, expected_q6) << "round " << round;
    const QueryResult cancelled = doomed.Wait();
    EXPECT_TRUE(cancelled.status == ExecStatus::kCancelled ||
                cancelled.status == ExecStatus::kOk);
  }
  // The cancelled handle's query still runs clean afterwards.
  const QueryResult q9_clean = q9.Execute();
  EXPECT_TRUE(q9_clean.ok());
  EXPECT_EQ(q9_clean, RunQuery(TestDb(), Engine::kTyper, Query::kQ9, {}));
}

TEST(SchedulerQueryTest, VolcanoHonorsCancellation) {
  // The interpreter is part of the cancellation matrix too: its scans poll
  // the token every ScanOp::kCancelPollRows tuples, so Cancel() and
  // deadlines take effect mid-query, not just between queries.
  Session session(TestDb());
  PreparedQuery q9 = session.Prepare(Engine::kVolcano, Query::kQ9);
  const QueryResult expected = q9.Execute();
  ASSERT_TRUE(expected.ok());

  // A pre-tripped token stops the run before it starts.
  ExecutionHandle doomed = q9.ExecuteAsync();
  doomed.Cancel();
  const QueryResult cancelled = doomed.Wait();
  if (cancelled.status == ExecStatus::kCancelled) {
    EXPECT_TRUE(cancelled.rows.empty());
  } else {
    EXPECT_EQ(cancelled.status, ExecStatus::kOk);
  }
  // The same prepared handle still runs clean and byte-identical.
  EXPECT_EQ(q9.Execute(), expected);
}

TEST(SchedulerQueryTest, VolcanoHonorsDeadlines) {
  Session session(TestDb());
  PreparedQuery q9 = session.Prepare(Engine::kVolcano, Query::kQ9);
  // Already expired: trips before any work.
  const QueryResult pre =
      q9.Execute(CancelToken::Clock::now() - std::chrono::milliseconds(1));
  EXPECT_EQ(pre.status, ExecStatus::kDeadlineExceeded);
  EXPECT_TRUE(pre.rows.empty());
  // Far too short for tuple-at-a-time Q9: trips at a scan poll mid-run.
  const QueryResult mid = q9.Execute(std::chrono::milliseconds(1));
  EXPECT_EQ(mid.status, ExecStatus::kDeadlineExceeded);
  EXPECT_TRUE(mid.rows.empty());
  EXPECT_TRUE(q9.Execute().ok());
}

TEST(SchedulerQueryTest, OverAdmissionReturnsBackpressureNotUnboundedQueueing) {
  runtime::WorkerPool pool(2);
  pool.scheduler().SetAdmissionLimit(1, 0);
  Session session(TestDb(), pool);
  PreparedQuery q6 =
      session.Prepare(Engine::kTyper, Query::kQ6, {.threads = 2});

  {
    // Hold the only admission slot: the next Execute is rejected, not
    // queued.
    Scheduler::Admission held = pool.scheduler().Admit(nullptr);
    ASSERT_TRUE(held.ok());
    const QueryResult rejected = q6.Execute();
    EXPECT_EQ(rejected.status, ExecStatus::kRejected);
    EXPECT_TRUE(rejected.rows.empty());
  }
  // Slot released: execution proceeds and stays correct.
  const QueryResult ok = q6.Execute();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok, RunQuery(TestDb(), Engine::kTyper, Query::kQ6, {}));
}

TEST(SchedulerQueryTest, SessionWeightsPlumbToSchedulerStreams) {
  runtime::WorkerPool pool(2);
  Session a(TestDb(), pool);
  Session b(TestDb(), pool);
  EXPECT_NE(a.stream(), b.stream());
  EXPECT_EQ(a.weight(), 1.0);
  a.SetWeight(3.0);
  EXPECT_EQ(a.weight(), 3.0);
  EXPECT_EQ(pool.scheduler().StreamWeight(a.stream()), 3.0);
  EXPECT_EQ(b.weight(), 1.0);
  // Weighted sessions still execute correctly.
  PreparedQuery q6 = a.Prepare(Engine::kTyper, Query::kQ6, {.threads = 2});
  EXPECT_EQ(q6.options().sched_stream, a.stream());
  EXPECT_TRUE(q6.Execute().ok());
}

TEST(SchedulerQueryTest, SessionQuotaThrottlesItsOwnQueriesOnly) {
  runtime::WorkerPool pool(2);
  pool.scheduler().SetAdmissionLimit(8, 8);
  Session throttled(TestDb(), pool);
  Session other(TestDb(), pool);
  throttled.SetQuota(1, 0);  // one in-flight execution for this tenant

  PreparedQuery q6 =
      throttled.Prepare(Engine::kTyper, Query::kQ6, {.threads = 1});
  {
    // Occupy the session's single quota slot: its next execution waits for
    // the quota (deadline, not rejection), while the OTHER session's
    // queries are unaffected.
    Scheduler::Admission held =
        pool.scheduler().Admit(nullptr, 0, throttled.stream());
    ASSERT_TRUE(held.ok());
    const QueryResult stalled = q6.Execute(std::chrono::milliseconds(30));
    EXPECT_EQ(stalled.status, ExecStatus::kDeadlineExceeded);

    PreparedQuery free_q =
        other.Prepare(Engine::kTyper, Query::kQ6, {.threads = 1});
    EXPECT_TRUE(free_q.Execute().ok());
  }
  // Quota slot freed: the throttled session proceeds, correctly.
  const QueryResult ok = q6.Execute();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok, RunQuery(TestDb(), Engine::kTyper, Query::kQ6, {}));
}

}  // namespace
}  // namespace vcq
