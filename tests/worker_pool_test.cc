#include "runtime/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <vector>

#include "runtime/barrier.h"

namespace vcq::runtime {
namespace {

TEST(MorselQueueTest, CoversRangeExactlyOnce) {
  constexpr size_t kTotal = 100001;  // deliberately not a grain multiple
  MorselQueue q(kTotal, 1000);
  std::vector<int> seen(kTotal, 0);
  size_t b, e;
  while (q.Next(b, e)) {
    ASSERT_LE(e, kTotal);
    ASSERT_LT(b, e);
    for (size_t i = b; i < e; ++i) seen[i]++;
  }
  for (size_t i = 0; i < kTotal; ++i) ASSERT_EQ(seen[i], 1) << i;
}

TEST(MorselQueueTest, ConcurrentConsumersPartitionWork) {
  constexpr size_t kTotal = 1 << 20;
  MorselQueue q(kTotal, 4096);
  std::atomic<size_t> covered{0};
  WorkerPool::Global().Run(8, [&](size_t) {
    size_t b, e;
    size_t local = 0;
    while (q.Next(b, e)) local += e - b;
    covered.fetch_add(local);
  });
  EXPECT_EQ(covered.load(), kTotal);
}

TEST(MorselQueueTest, EmptyInput) {
  MorselQueue q(0, 100);
  size_t b, e;
  EXPECT_FALSE(q.Next(b, e));
}

TEST(MorselQueueTest, ResetAllowsReuse) {
  MorselQueue q(10, 100);
  size_t b, e;
  EXPECT_TRUE(q.Next(b, e));
  EXPECT_FALSE(q.Next(b, e));
  q.Reset();
  EXPECT_TRUE(q.Next(b, e));
}

TEST(WorkerPoolTest, AllWorkerIdsDistinctAndDense) {
  for (size_t n : {1u, 2u, 7u, 16u}) {
    std::vector<std::atomic<int>> hits(n);
    WorkerPool::Global().Run(n, [&](size_t wid) {
      ASSERT_LT(wid, n);
      hits[wid]++;
    });
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(WorkerPoolTest, RepeatedRunsReuseThreads) {
  std::atomic<int> total{0};
  for (int round = 0; round < 100; ++round)
    WorkerPool::Global().Run(4, [&](size_t) { total++; });
  EXPECT_EQ(total.load(), 400);
}

TEST(WorkerPoolTest, SingleThreadRunsInline) {
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  WorkerPool::Global().Run(1, [&](size_t) { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, caller);
}

TEST(WorkerPoolTest, SubmittedTasksRunAndMayUseParallelRegions) {
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  std::atomic<int> inner{0};
  constexpr int kTasks = 5;
  for (int t = 0; t < kTasks; ++t) {
    WorkerPool::Global().Submit([&] {
      // A detached task coordinating its own parallel region — the shape
      // of PreparedQuery::ExecuteAsync.
      WorkerPool::Global().Run(3, [&](size_t) { inner.fetch_add(1); });
      std::lock_guard<std::mutex> lock(mu);
      ++done;
      cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done == kTasks; });
  EXPECT_EQ(inner.load(), kTasks * 3);
}

TEST(BarrierTest, OnLastRunsExactlyOnce) {
  constexpr size_t kThreads = 8;
  Barrier barrier(kThreads);
  std::atomic<int> last_calls{0};
  std::atomic<int> after{0};
  WorkerPool::Global().Run(kThreads, [&](size_t) {
    for (int round = 0; round < 50; ++round) {
      barrier.Wait([&] { last_calls++; });
      after++;
    }
  });
  EXPECT_EQ(last_calls.load(), 50);
  EXPECT_EQ(after.load(), 50 * static_cast<int>(kThreads));
}

TEST(BarrierTest, OrdersPhases) {
  // No thread may observe phase-2 state before every thread finished
  // phase 1 — the hash-join build/probe ordering guarantee.
  constexpr size_t kThreads = 6;
  Barrier barrier(kThreads);
  std::atomic<int> phase1_done{0};
  std::atomic<bool> violation{false};
  WorkerPool::Global().Run(kThreads, [&](size_t) {
    phase1_done++;
    barrier.Wait();
    if (phase1_done.load() != kThreads) violation = true;
  });
  EXPECT_FALSE(violation.load());
}

}  // namespace
}  // namespace vcq::runtime
