#include "sql/sql.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "api/session.h"
#include "datagen/tpch.h"
#include "runtime/params.h"
#include "runtime/query_result.h"
#include "sql/catalog.h"
#include "sql/fuzz.h"
#include "sql/reference_queries.h"

// The SQL front door's own contract (the cross-engine byte-identity of the
// nine workload queries lives in sql_differential_test.cc):
//  - malformed SQL fails at COMPILE time with a 1-based line:column
//    position, and Session::PrepareSql turns that into a loud prepare-time
//    death — an Execute can never see a compile error;
//  - the binder's semantic guards (unknown names, type mixing, unsupported
//    shapes) all carry positions;
//  - compiled feature queries (expressions, BETWEEN/IN/LIKE, EXTRACT,
//    GROUP BY/HAVING, AVG, parameters) agree byte-for-byte between the
//    Tectorwise lowering and the Volcano interpreter;
//  - the optimizer's pushdown + join ordering strictly reduce plan cost on
//    join queries with an adversarial FROM order;
//  - EXPLAIN exposes all four stages.

namespace vcq {
namespace {

using runtime::Database;
using runtime::QueryOptions;
using runtime::QueryParams;
using runtime::QueryResult;

const Database& TpchDb() {
  static const Database* db = new Database(datagen::GenerateTpch(0.01));
  return *db;
}

std::shared_ptr<const sql::Catalog> TpchCatalog() {
  static const std::shared_ptr<const sql::Catalog>* cat =
      new std::shared_ptr<const sql::Catalog>(sql::MakeCatalog(TpchDb()));
  return *cat;
}

sql::CompileResult CompileTpch(std::string_view text,
                               const sql::OptimizerOptions& opt = {}) {
  return sql::Compile(TpchCatalog(), text, opt);
}

/// Compiles `text` and runs it on both backends, asserting byte identity;
/// returns the Tectorwise result for further checks.
QueryResult BothEngines(std::string_view text, const QueryParams& params = {},
                        size_t threads = 1) {
  sql::CompileResult c = CompileTpch(text);
  EXPECT_TRUE(c.ok()) << (c.error ? c.error->Format() : "") << "\n" << text;
  if (!c.ok()) return QueryResult::Failed(runtime::ExecStatus::kInternalError);
  QueryOptions opt;
  opt.threads = threads;
  const QueryResult tw = c.query->LowerTectorwise().Run(opt, params);
  QueryOptions vopt;
  vopt.threads = 1;
  const QueryResult volcano = c.query->RunVolcano(vopt, params);
  EXPECT_EQ(tw, volcano) << text << "\n-- tectorwise --\n"
                         << tw.ToString(10) << "-- volcano --\n"
                         << volcano.ToString(10);
  return tw;
}

// ---------------------------------------------------------------------------
// Compile errors: positioned, at compile time only
// ---------------------------------------------------------------------------

struct ErrorCase {
  const char* sql;
  const char* message_part;  // substring of the diagnostic
};

TEST(SqlCompileErrorTest, PositionedDiagnostics) {
  const ErrorCase cases[] = {
      {"SELEC n_name FROM nation", "expected select"},
      {"SELECT n_name FROM no_such_table", "unknown table"},
      {"SELECT no_such_col FROM nation", "unknown column"},
      {"SELECT n_name FROM nation WHERE n_name < 3", "string"},
      {"SELECT n_name FROM nation WHERE n_nationkey = 'x'", "cannot compare"},
      {"SELECT n_name FROM nation, region", "not connected"},
      {"SELECT n_name FROM nation, nation", "duplicate table"},
      {"SELECT SUM(n_nationkey) FROM nation HAVING SUM(n_nationkey) > 1",
       "HAVING requires GROUP BY"},
      {"SELECT n_name FROM nation ORDER BY n_regionkey",
       "not in the select list"},
      {"SELECT n_name, COUNT(*) FROM nation", "requires GROUP BY"},
      {"SELECT n_name FROM nation WHERE n_regionkey IN (1, 2, 3)",
       "more than two"},
      {"SELECT n_name FROM nation WHERE n_regionkey IN (1, $p)",
       "all constants or all parameters"},
      {"SELECT n_name FROM nation WHERE n_name = "
       "'an impossibly long literal that cannot fit a char(25) column'",
       "wider than column"},
      {"SELECT n_regionkey FROM nation GROUP BY n_regionkey, n_regionkey",
       "duplicate group key"},
      {"SELECT SUM(1) FROM nation", "must reference a table column"},
      {"SELECT AVG(n_name) FROM nation", "numeric argument"},
      {"SELECT n_name FROM nation WHERE n_name LIKE 'a_b'", "LIKE"},
      {"SELECT n_name FROM nation LIMIT", "LIMIT"},
  };
  for (const ErrorCase& c : cases) {
    sql::CompileResult r = CompileTpch(c.sql);
    ASSERT_FALSE(r.ok()) << c.sql;
    EXPECT_NE(r.error->message.find(c.message_part), std::string::npos)
        << c.sql << " -> " << r.error->Format();
    EXPECT_GE(r.error->line, 1u) << c.sql;
    EXPECT_GE(r.error->col, 1u) << c.sql;
  }
}

TEST(SqlCompileErrorTest, PositionPointsAtOffendingToken) {
  // Line 2, the unknown column after the two leading spaces.
  sql::CompileResult r = CompileTpch("SELECT n_name FROM nation\nWHERE  nope = 1");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error->line, 2u);
  EXPECT_EQ(r.error->col, 8u);
  EXPECT_NE(r.error->Format().find("2:8"), std::string::npos);
}

TEST(SqlSessionDeathTest, PrepareSqlDiesOnMalformedSql) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Session session(TpchDb());
  EXPECT_DEATH(session.PrepareSql("SELECT FROM nowhere"), "SQL error at");
  EXPECT_DEATH(session.PrepareSql("SELECT COUNT(*) FROM nation",
                                  Engine::kTyper),
               "Typer");
  EXPECT_DEATH(session.ExplainSql("SELECT nope FROM nation"), "SQL error at");
}

TEST(SqlSessionDeathTest, SqlHandleGuards) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Session session(TpchDb());
  PreparedQuery q = session.PrepareSql(
      "SELECT COUNT(*) AS n FROM nation WHERE n_nationkey < $k");
  EXPECT_DEATH(q.query(), "no catalog Query id");
  EXPECT_DEATH(q.Set("unknown", int64_t{1}), "unknown parameter");
  EXPECT_DEATH(q.Set("k", "not an int"), "integer");
}

// ---------------------------------------------------------------------------
// Correctness on small relations (hand-computable references)
// ---------------------------------------------------------------------------

TEST(SqlCorrectnessTest, CountAndSumAgainstStorage) {
  const auto& nation = TpchDb()["nation"];
  const auto keys = nation.Col<int32_t>("n_nationkey");
  int64_t sum = 0;
  for (size_t i = 0; i < nation.tuple_count(); ++i) sum += keys[i];
  const QueryResult r = BothEngines(
      "SELECT COUNT(*) AS n, SUM(n_nationkey) AS s FROM nation");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], std::to_string(nation.tuple_count()));
  EXPECT_EQ(r.rows[0][1], std::to_string(sum));
}

TEST(SqlCorrectnessTest, GroupByWithOrderAndLimit) {
  const QueryResult r = BothEngines(
      "SELECT n_regionkey, COUNT(*) AS members FROM nation "
      "GROUP BY n_regionkey ORDER BY n_regionkey LIMIT 3");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0], "0");
  EXPECT_EQ(r.rows[1][0], "1");
  EXPECT_EQ(r.rows[2][0], "2");
  ASSERT_EQ(r.column_names,
            (std::vector<std::string>{"n_regionkey", "members"}));
}

TEST(SqlCorrectnessTest, JoinProjection) {
  // Every nation paired with its region name; row count must equal the
  // nation table's cardinality.
  const QueryResult r = BothEngines(
      "SELECT n_name, r_name FROM nation, region "
      "WHERE n_regionkey = r_regionkey");
  EXPECT_EQ(r.rows.size(), TpchDb()["nation"].tuple_count());
}

// ---------------------------------------------------------------------------
// Feature queries: Tectorwise == Volcano (1 and 4 threads)
// ---------------------------------------------------------------------------

TEST(SqlDifferentialFeatureTest, FeatureQueriesAgreeAcrossEngines) {
  const char* queries[] = {
      // Expressions + multi-aggregate + AVG.
      "SELECT l_returnflag, SUM(l_extendedprice * (1.00 - l_discount)) AS v,"
      " AVG(l_quantity) AS aq, MIN(l_discount) AS lo, MAX(l_tax) AS hi,"
      " COUNT(*) AS n FROM lineitem GROUP BY l_returnflag"
      " ORDER BY l_returnflag",
      // BETWEEN + date comparison + ungrouped aggregates.
      "SELECT SUM(l_extendedprice) AS s, COUNT(*) AS n FROM lineitem"
      " WHERE l_discount BETWEEN 0.04 AND 0.06"
      " AND l_shipdate < DATE '1996-01-01'",
      // LIKE prefix (range rewrite) and substring (Contains).
      "SELECT COUNT(*) AS n FROM part WHERE p_name LIKE 'a%'",
      "SELECT COUNT(*) AS n FROM part WHERE p_name LIKE '%green%'",
      // IN on strings, OR-pair on numerics.
      "SELECT COUNT(*) AS n FROM nation WHERE n_name IN ('FRANCE','KENYA')",
      "SELECT COUNT(*) AS n FROM nation"
      " WHERE n_regionkey = 1 OR n_regionkey = 3",
      // EXTRACT(YEAR) as group key and output.
      "SELECT EXTRACT(YEAR FROM o_orderdate) AS y, COUNT(*) AS n"
      " FROM orders GROUP BY EXTRACT(YEAR FROM o_orderdate) ORDER BY y",
      // HAVING above a join.
      "SELECT o_orderkey, SUM(l_quantity) AS q FROM orders, lineitem"
      " WHERE o_orderkey = l_orderkey GROUP BY o_orderkey"
      " HAVING SUM(l_quantity) > 200.00 ORDER BY q DESC, o_orderkey LIMIT 5",
      // MIN/MAX over dates.
      "SELECT MIN(l_shipdate) AS lo, MAX(l_shipdate) AS hi FROM lineitem",
      // Arithmetic between columns of different scales.
      "SELECT SUM(l_extendedprice - l_quantity) AS d FROM lineitem"
      " WHERE l_linenumber = 1",
  };
  for (const char* q : queries) {
    BothEngines(q, {}, 1);
    BothEngines(q, {}, 4);
  }
}

TEST(SqlParamTest, ParametersMatchInlinedLiterals) {
  const char* with_params =
      "SELECT COUNT(*) AS n, SUM(l_extendedprice) AS s FROM lineitem"
      " WHERE l_shipdate >= $lo AND l_shipdate < $hi"
      " AND l_discount BETWEEN $dlo AND $dhi AND l_returnflag = $flag";
  const char* inlined =
      "SELECT COUNT(*) AS n, SUM(l_extendedprice) AS s FROM lineitem"
      " WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE "
      "'1995-01-01' AND l_discount BETWEEN 0.05 AND 0.07"
      " AND l_returnflag = 'R'";
  QueryParams params;
  params.SetDate("lo", "1994-01-01");
  params.SetDate("hi", "1995-01-01");
  params.SetInt("dlo", 5);
  params.SetInt("dhi", 7);
  params.SetString("flag", "R");
  const QueryResult a = BothEngines(with_params, params);
  const QueryResult b = BothEngines(inlined);
  EXPECT_EQ(a.rows, b.rows);
}

TEST(SqlParamTest, SessionBindingRoundTrip) {
  Session session(TpchDb());
  PreparedQuery q = session.PrepareSql(
      "SELECT COUNT(*) AS n FROM nation WHERE n_nationkey < $k");
  EXPECT_TRUE(q.is_sql());
  EXPECT_EQ(q.info().name, "SQL");
  ASSERT_EQ(q.info().params.size(), 1u);
  EXPECT_EQ(q.info().params[0].name, "k");
  q.Set("k", int64_t{5});
  const QueryResult r5 = q.Execute();
  ASSERT_TRUE(r5.ok());
  ASSERT_EQ(r5.rows.size(), 1u);
  EXPECT_EQ(r5.rows[0][0], "5");
  q.Set("k", int64_t{10});
  EXPECT_EQ(q.Execute().rows[0][0], "10");
  // Volcano engine through the same Session surface, same bindings.
  PreparedQuery v = session.PrepareSql(
      "SELECT COUNT(*) AS n FROM nation WHERE n_nationkey < $k",
      Engine::kVolcano);
  v.Set("k", int64_t{10});
  EXPECT_EQ(v.Execute(), q.Execute());
}

TEST(SqlParamTest, ParameterizedLikeUsesRawSubstring) {
  QueryParams params;
  params.SetString("needle", "green");
  const QueryResult a = BothEngines(
      "SELECT COUNT(*) AS n FROM part WHERE p_name LIKE $needle", params);
  const QueryResult b =
      BothEngines("SELECT COUNT(*) AS n FROM part WHERE p_name LIKE "
                  "'%green%'");
  EXPECT_EQ(a.rows, b.rows);
}

// ---------------------------------------------------------------------------
// EXPLAIN and optimizer behavior
// ---------------------------------------------------------------------------

TEST(SqlExplainTest, AllFourStagesPresent) {
  Session session(TpchDb());
  const std::string out = session.ExplainSql(
      "SELECT n_name, COUNT(*) AS n FROM nation, region "
      "WHERE n_regionkey = r_regionkey AND r_name = 'ASIA' "
      "GROUP BY n_name");
  EXPECT_NE(out.find("-- ast --"), std::string::npos);
  EXPECT_NE(out.find("-- logical --"), std::string::npos);
  EXPECT_NE(out.find("-- optimized --"), std::string::npos);
  EXPECT_NE(out.find("-- physical (tectorwise) --"), std::string::npos);
}

TEST(SqlOptimizerTest, JoinOrderingAndPushdownReduceCost) {
  // Adversarial FROM order: the fact table first, the selective dimension
  // filter last. The full optimizer must beat the FROM-order baseline.
  const char* q3ish =
      "SELECT o_orderkey, SUM(l_extendedprice) AS v"
      " FROM lineitem, orders, customer"
      " WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey"
      " AND c_mktsegment = 'BUILDING' AND o_orderdate < DATE '1995-03-15'"
      " GROUP BY o_orderkey";
  sql::OptimizerOptions off;
  off.pushdown = false;
  off.join_order = false;
  sql::CompileResult baseline = CompileTpch(q3ish, off);
  sql::CompileResult full = CompileTpch(q3ish);
  ASSERT_TRUE(baseline.ok() && full.ok());
  EXPECT_LT(full.query->cost(), baseline.query->cost());

  // The measured interpreter confirms the estimate: fewer tuples flow
  // through the joins under the optimized order.
  QueryOptions opt;
  opt.threads = 1;
  sql::VolcanoStats base_stats;
  sql::VolcanoStats full_stats;
  const QueryResult a = baseline.query->RunVolcano(opt, {}, &base_stats);
  const QueryResult b = full.query->RunVolcano(opt, {}, &full_stats);
  EXPECT_EQ(a, b);  // plans differ, results must not
  EXPECT_LT(full_stats.intermediate_tuples, base_stats.intermediate_tuples);
}

TEST(SqlOptimizerTest, OptimizerConfigsAgreeOnResults) {
  const char* q =
      "SELECT n_name, COUNT(*) AS n FROM nation, supplier"
      " WHERE s_nationkey = n_nationkey AND s_suppkey < 50.00 + 50.00"
      " GROUP BY n_name ORDER BY n_name";
  QueryResult reference;
  bool first = true;
  for (const bool fold : {false, true}) {
    for (const bool pushdown : {false, true}) {
      for (const bool join_order : {false, true}) {
        sql::OptimizerOptions o;
        o.fold_constants = fold;
        o.pushdown = pushdown;
        o.join_order = join_order;
        sql::CompileResult c = CompileTpch(q, o);
        ASSERT_TRUE(c.ok());
        QueryOptions opt;
        opt.threads = 2;
        const QueryResult tw = c.query->LowerTectorwise().Run(opt, {});
        const QueryResult volcano = c.query->RunVolcano(opt, {});
        EXPECT_EQ(tw, volcano);
        if (first) {
          reference = tw;
          first = false;
        } else {
          EXPECT_EQ(tw, reference);
        }
      }
    }
  }
}

TEST(SqlFuzzTest, SmokeSeedsAgreeAcrossEngines) {
  // A handful of seeds inline (the 200-query sweep runs in
  // sql_differential_test.cc and the sql_fuzz example).
  auto catalog = TpchCatalog();
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const std::string text = sql::GenerateFuzzQuery(*catalog, seed);
    sql::CompileResult c = sql::Compile(catalog, text);
    ASSERT_TRUE(c.ok()) << "seed " << seed << ":\n"
                        << text << "\n"
                        << (c.error ? c.error->Format() : "");
    QueryOptions opt;
    opt.threads = 2;
    const QueryResult tw = c.query->LowerTectorwise().Run(opt, {});
    const QueryResult volcano = c.query->RunVolcano(opt, {});
    EXPECT_EQ(tw, volcano) << "seed " << seed << ":\n"
                           << text << "\n-- tectorwise --\n"
                           << tw.ToString(10) << "-- volcano --\n"
                           << volcano.ToString(10);
  }
}

TEST(SqlReferenceTest, AllNineTextsCompile) {
  for (const char* name :
       {"Q1", "Q6", "Q3", "Q9", "Q18", "SSB-Q1.1", "SSB-Q2.1", "SSB-Q3.1",
        "SSB-Q4.1"}) {
    const char* text = sql::SqlTextFor(name);
    ASSERT_NE(text, nullptr) << name;
  }
  EXPECT_EQ(sql::SqlTextFor("Q99"), nullptr);
}

}  // namespace
}  // namespace vcq
