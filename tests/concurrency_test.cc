#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "api/vcq.h"
#include "datagen/tpch.h"
#include "runtime/barrier.h"
#include "runtime/worker_pool.h"

// Concurrent top-level queries: a downstream user issues RunQuery (or
// PreparedQuery::Execute, see session_test.cc) from several application
// threads at once. The shared worker pool runs the parallel regions
// concurrently — queries interleave at morsel granularity instead of
// queueing whole queries behind each other — and every concurrently-issued
// query must still produce the exact result.

namespace vcq {
namespace {

using runtime::Database;
using runtime::QueryOptions;
using runtime::QueryResult;

const Database& TestDb() {
  static const Database* db = new Database(datagen::GenerateTpch(0.02));
  return *db;
}

TEST(ConcurrencyTest, ParallelRunQueryCallsAreCorrect) {
  const QueryResult expected_q6 =
      RunQuery(TestDb(), Engine::kTyper, Query::kQ6, {});
  const QueryResult expected_q3 =
      RunQuery(TestDb(), Engine::kTyper, Query::kQ3, {});

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 6; ++t) {
    clients.emplace_back([&, t] {
      QueryOptions opt;
      opt.threads = 3;
      for (int round = 0; round < 4; ++round) {
        const Engine e =
            (t % 2 == 0) ? Engine::kTyper : Engine::kTectorwise;
        const Query q = (round % 2 == 0) ? Query::kQ6 : Query::kQ3;
        const QueryResult got = RunQuery(TestDb(), e, q, opt);
        const QueryResult& expected =
            (round % 2 == 0) ? expected_q6 : expected_q3;
        if (!(got == expected)) failures.fetch_add(1);
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrencyTest, ConcurrentPoolRunsExecuteEveryWorkerExactlyOnce) {
  constexpr int kClients = 4;
  constexpr int kRounds = 10;
  constexpr int kWidth = 4;
  std::atomic<int> total{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        std::atomic<int> mine{0};
        runtime::WorkerPool::Global().Run(kWidth, [&](size_t) {
          mine.fetch_add(1);
          total.fetch_add(1);
        });
        // Run is a barrier for its own region: all of this job's workers
        // finished before it returned, regardless of other in-flight jobs.
        EXPECT_EQ(mine.load(), kWidth);
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(total.load(), kClients * kRounds * kWidth);
}

TEST(ConcurrencyTest, IndependentRunsOverlapOnThePool) {
  // Two parallel regions submitted from different threads must be able to
  // be in flight simultaneously — region A's workers block on a barrier
  // that only releases once region B has started. Under the old
  // one-region-at-a-time pool this deadlocks; the concurrent pool grows
  // its thread set to cover both.
  runtime::Barrier rendezvous(2 * 2);  // both regions, 2 workers each
  std::thread a([&] {
    runtime::WorkerPool::Global().Run(2, [&](size_t) { rendezvous.Wait(); });
  });
  std::thread b([&] {
    runtime::WorkerPool::Global().Run(2, [&](size_t) { rendezvous.Wait(); });
  });
  a.join();
  b.join();
  SUCCEED();  // reaching here proves the regions overlapped
}

}  // namespace
}  // namespace vcq
