#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "api/vcq.h"
#include "datagen/tpch.h"
#include "runtime/worker_pool.h"

// Concurrent top-level queries: a downstream user will issue RunQuery from
// several application threads at once. The worker pool serializes parallel
// regions, so every concurrently-issued query must still produce the exact
// result.

namespace vcq {
namespace {

using runtime::Database;
using runtime::QueryOptions;
using runtime::QueryResult;

const Database& TestDb() {
  static const Database* db = new Database(datagen::GenerateTpch(0.02));
  return *db;
}

TEST(ConcurrencyTest, ParallelRunQueryCallsAreCorrect) {
  const QueryResult expected_q6 =
      RunQuery(TestDb(), Engine::kTyper, Query::kQ6, {});
  const QueryResult expected_q3 =
      RunQuery(TestDb(), Engine::kTyper, Query::kQ3, {});

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 6; ++t) {
    clients.emplace_back([&, t] {
      QueryOptions opt;
      opt.threads = 3;
      for (int round = 0; round < 4; ++round) {
        const Engine e =
            (t % 2 == 0) ? Engine::kTyper : Engine::kTectorwise;
        const Query q = (round % 2 == 0) ? Query::kQ6 : Query::kQ3;
        const QueryResult got = RunQuery(TestDb(), e, q, opt);
        const QueryResult& expected =
            (round % 2 == 0) ? expected_q6 : expected_q3;
        if (!(got == expected)) failures.fetch_add(1);
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrencyTest, ConcurrentPoolRunsSerializeCleanly) {
  std::atomic<int> concurrent{0};
  std::atomic<int> max_concurrent{0};
  std::atomic<int> total{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      for (int round = 0; round < 10; ++round) {
        runtime::WorkerPool::Global().Run(4, [&](size_t) {
          const int now = concurrent.fetch_add(1) + 1;
          int seen = max_concurrent.load();
          while (seen < now &&
                 !max_concurrent.compare_exchange_weak(seen, now)) {
          }
          total.fetch_add(1);
          concurrent.fetch_sub(1);
        });
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(total.load(), 4 * 10 * 4);
  // One region at a time: never more than one job's workers active.
  EXPECT_LE(max_concurrent.load(), 4);
}

}  // namespace
}  // namespace vcq
