#include "runtime/throttled_source.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <numeric>
#include <vector>

namespace vcq::runtime {
namespace {

std::string TempPath(const char* tag) {
  return std::string("/tmp/vcq_throttle_test_") + tag + "_" +
         std::to_string(getpid());
}

TEST(ThrottledSourceTest, ReplaysAllBytes) {
  std::vector<char> data(8 << 20);
  std::iota(data.begin(), data.end(), 0);
  ThrottledSource src(TempPath("all"), 0);  // unthrottled
  src.Spill(data.data(), data.size());
  EXPECT_EQ(src.file_bytes(), data.size());
  src.StartReplay();
  src.WaitForBytes(data.size());
  EXPECT_EQ(src.Join(), data.size());
}

TEST(ThrottledSourceTest, WatermarkGatesConsumers) {
  std::vector<char> data(16 << 20, 'x');
  ThrottledSource src(TempPath("gate"), 64 << 20);  // 64 MB/s
  src.Spill(data.data(), data.size());
  src.StartReplay();
  const auto start = std::chrono::steady_clock::now();
  src.WaitForBytes(data.size());  // 16 MB at 64 MB/s -> ~250 ms
  const double s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  src.Join();
  EXPECT_GT(s, 0.15);  // definitely not instantaneous
  EXPECT_LT(s, 2.0);   // and not stuck
}

TEST(ThrottledSourceTest, BandwidthCapApproximatelyHonored) {
  std::vector<char> data(32 << 20, 'y');
  constexpr uint64_t kBandwidth = 128 << 20;  // 128 MB/s -> ~250 ms
  ThrottledSource src(TempPath("bw"), kBandwidth);
  src.Spill(data.data(), data.size());
  const auto start = std::chrono::steady_clock::now();
  src.StartReplay();
  src.Join();
  const double s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  const double effective = static_cast<double>(data.size()) / s;
  // Within 2x either way: token bucket plus I/O jitter.
  EXPECT_LT(effective, kBandwidth * 1.5);
  EXPECT_GT(effective, kBandwidth / 4.0);
}

TEST(ThrottledSourceTest, MultipleSpillsAccumulate) {
  std::vector<char> chunk(1 << 20, 'z');
  ThrottledSource src(TempPath("multi"), 0);
  for (int i = 0; i < 5; ++i) src.Spill(chunk.data(), chunk.size());
  EXPECT_EQ(src.file_bytes(), 5u << 20);
  src.StartReplay();
  EXPECT_EQ(src.Join(), 5u << 20);
}

}  // namespace
}  // namespace vcq::runtime
