#include "runtime/hash.h"

#include <gtest/gtest.h>

#include <cstring>
#include <unordered_set>

namespace vcq::runtime {
namespace {

TEST(HashTest, MurmurDeterministic) {
  EXPECT_EQ(HashMurmur2(42), HashMurmur2(42));
  EXPECT_NE(HashMurmur2(42), HashMurmur2(43));
}

TEST(HashTest, CrcDeterministic) {
  EXPECT_EQ(HashCrc32(42), HashCrc32(42));
  EXPECT_NE(HashCrc32(42), HashCrc32(43));
}

TEST(HashTest, FewCollisionsOnSequentialKeys) {
  // Sequential keys (the common TPC-H key pattern) must spread well.
  constexpr int kN = 100000;
  std::unordered_set<uint64_t> murmur, crc;
  for (int i = 1; i <= kN; ++i) {
    murmur.insert(HashMurmur2(static_cast<uint64_t>(i)));
    crc.insert(HashCrc32(static_cast<uint64_t>(i)));
  }
  EXPECT_EQ(murmur.size(), static_cast<size_t>(kN));
  EXPECT_GE(crc.size(), static_cast<size_t>(kN) - 2);
}

TEST(HashTest, HighBitsUsableForTags) {
  // The Bloom tag uses the top 4 bits; sequential keys must populate many
  // distinct tag values, otherwise the filter degenerates.
  std::unordered_set<int> murmur_tags, crc_tags;
  for (int i = 1; i <= 1000; ++i) {
    murmur_tags.insert(
        static_cast<int>(HashMurmur2(static_cast<uint64_t>(i)) >> 60));
    crc_tags.insert(
        static_cast<int>(HashCrc32(static_cast<uint64_t>(i)) >> 60));
  }
  EXPECT_EQ(murmur_tags.size(), 16u);
  EXPECT_EQ(crc_tags.size(), 16u);
}

TEST(HashTest, BytesMatchesLengths) {
  const char data[] = "abcdefghijklmnopqrstuvwxyz";
  std::unordered_set<uint64_t> hashes;
  for (size_t len = 0; len <= 26; ++len)
    hashes.insert(HashBytes(data, len));
  EXPECT_EQ(hashes.size(), 27u);  // every prefix hashes differently
}

TEST(HashTest, BytesIgnoresTrailingGarbage) {
  char a[16], b[16];
  std::memset(a, 0xAA, sizeof(a));
  std::memset(b, 0x55, sizeof(b));
  std::memcpy(a, "hello", 5);
  std::memcpy(b, "hello", 5);
  EXPECT_EQ(HashBytes(a, 5), HashBytes(b, 5));
}

TEST(HashTest, CombineOrderSensitive) {
  const uint64_t h1 = HashMurmur2(1), h2 = HashMurmur2(2);
  EXPECT_NE(HashCombine(h1, h2), HashCombine(h2, h1));
}

}  // namespace
}  // namespace vcq::runtime
