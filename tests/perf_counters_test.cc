#include "runtime/perf_counters.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

// The perf wrapper must degrade gracefully: in restricted containers no
// counters open at all; anywhere else, whatever opened must report sane
// deltas. Either way, nothing crashes and NaN marks the unavailable slots.

namespace vcq::runtime {
namespace {

TEST(PerfCountersTest, ConstructsAndStopsWithoutCrashing) {
  PerfCounters counters;
  counters.Start();
  volatile int64_t sink = 0;
  for (int i = 0; i < 1000000; ++i) sink = sink + i;
  const PerfCounters::Values v = counters.Stop();
  (void)sink;
  if (!counters.available()) {
    GTEST_SKIP() << "perf events unavailable (expected in containers)";
  }
  EXPECT_GT(v.instructions, 1000000.0);  // at least one per loop iteration
  EXPECT_GT(v.cycles, 0.0);
  EXPECT_GT(v.ipc(), 0.1);
  EXPECT_LT(v.ipc(), 8.0);
}

TEST(PerfCountersTest, UnopenedSlotsReadNaN) {
  PerfCounters counters;
  counters.Start();
  const PerfCounters::Values v = counters.Stop();
  if (counters.available()) {
    // Opened counters report finite numbers.
    EXPECT_TRUE(std::isfinite(v.cycles));
  } else {
    EXPECT_TRUE(std::isnan(v.cycles));
    EXPECT_TRUE(std::isnan(v.instructions));
  }
}

TEST(PerfCountersTest, RestartableAcrossMeasurements) {
  PerfCounters counters;
  if (!counters.available()) GTEST_SKIP();
  std::vector<double> instr;
  for (int round = 0; round < 3; ++round) {
    counters.Start();
    volatile int64_t sink = 0;
    for (int i = 0; i < 500000; ++i) sink = sink + i;
    (void)sink;
    instr.push_back(counters.Stop().instructions);
  }
  // Same work each round: within 3x of each other (noise tolerance).
  const double lo = *std::min_element(instr.begin(), instr.end());
  const double hi = *std::max_element(instr.begin(), instr.end());
  EXPECT_LT(hi, lo * 3);
}

}  // namespace
}  // namespace vcq::runtime
