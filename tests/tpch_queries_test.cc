#include <gtest/gtest.h>

#include <map>

#include "api/vcq.h"
#include "datagen/tpch.h"
#include "runtime/types.h"

// Cross-engine equivalence: Typer, Tectorwise (scalar and SIMD, several
// vector sizes, several thread counts) and Volcano are three structurally
// independent implementations; they must all produce the identical
// normalized result for every studied query. Q1/Q6 are additionally checked
// against simple std::map references computed here.

namespace vcq {
namespace {

using runtime::Char;
using runtime::Database;
using runtime::DateFromString;
using runtime::QueryOptions;
using runtime::QueryResult;
using runtime::ResultBuilder;

const Database& TestDb() {
  static const Database* db = new Database(datagen::GenerateTpch(0.03));
  return *db;
}

QueryResult ReferenceQ6(const Database& db) {
  const auto& li = db["lineitem"];
  const auto shipdate = li.Col<int32_t>("l_shipdate");
  const auto discount = li.Col<int64_t>("l_discount");
  const auto quantity = li.Col<int64_t>("l_quantity");
  const auto extprice = li.Col<int64_t>("l_extendedprice");
  const int32_t lo = DateFromString("1994-01-01");
  const int32_t hi = DateFromString("1995-01-01") - 1;
  int64_t total = 0;
  for (size_t i = 0; i < li.tuple_count(); ++i) {
    if (shipdate[i] >= lo && shipdate[i] <= hi && discount[i] >= 5 &&
        discount[i] <= 7 && quantity[i] < 2400) {
      total += extprice[i] * discount[i];
    }
  }
  ResultBuilder rb({"revenue"});
  rb.BeginRow().Numeric(total, 4);
  return rb.Finish();
}

QueryResult ReferenceQ1(const Database& db) {
  const auto& li = db["lineitem"];
  const auto shipdate = li.Col<int32_t>("l_shipdate");
  const auto rf = li.Col<Char<1>>("l_returnflag");
  const auto ls = li.Col<Char<1>>("l_linestatus");
  const auto qty = li.Col<int64_t>("l_quantity");
  const auto extprice = li.Col<int64_t>("l_extendedprice");
  const auto discount = li.Col<int64_t>("l_discount");
  const auto tax = li.Col<int64_t>("l_tax");
  const int32_t cutoff = DateFromString("1998-09-02");
  struct Agg {
    int64_t qty = 0, base = 0, disc_price = 0, charge = 0, disc = 0,
            count = 0;
  };
  std::map<std::pair<char, char>, Agg> groups;
  for (size_t i = 0; i < li.tuple_count(); ++i) {
    if (shipdate[i] > cutoff) continue;
    Agg& a = groups[{rf[i].data[0], ls[i].data[0]}];
    const int64_t dp = extprice[i] * (100 - discount[i]);
    a.qty += qty[i];
    a.base += extprice[i];
    a.disc_price += dp;
    a.charge += dp * (100 + tax[i]);
    a.disc += discount[i];
    a.count += 1;
  }
  ResultBuilder rb({"l_returnflag", "l_linestatus", "sum_qty",
                    "sum_base_price", "sum_disc_price", "sum_charge",
                    "avg_qty", "avg_price", "avg_disc", "count_order"});
  for (const auto& [key, a] : groups) {
    rb.BeginRow()
        .Str(std::string_view(&key.first, 1))
        .Str(std::string_view(&key.second, 1))
        .Numeric(a.qty, 2)
        .Numeric(a.base, 2)
        .Numeric(a.disc_price, 4)
        .Numeric(a.charge, 6)
        .Avg(a.qty, a.count, 2, 2)
        .Avg(a.base, a.count, 2, 2)
        .Avg(a.disc, a.count, 2, 2)
        .Int(a.count);
  }
  return rb.Finish();
}

struct EngineConfig {
  Engine engine;
  size_t threads;
  size_t vector_size;
  bool simd;

  std::string Label() const {
    return std::string(EngineName(engine)) + "_t" + std::to_string(threads) +
           "_v" + std::to_string(vector_size) + (simd ? "_simd" : "");
  }
};

class CrossEngineTest
    : public ::testing::TestWithParam<std::tuple<Query, EngineConfig>> {};

TEST_P(CrossEngineTest, MatchesTyperSingleThread) {
  const auto [query, config] = GetParam();
  if (!EngineSupports(config.engine, query)) GTEST_SKIP();
  QueryOptions base;
  base.threads = 1;
  const QueryResult expected =
      RunQuery(TestDb(), Engine::kTyper, query, base);

  QueryOptions opt;
  opt.threads = config.threads;
  opt.vector_size = config.vector_size;
  opt.simd = config.simd;
  const QueryResult got = RunQuery(TestDb(), config.engine, query, opt);
  EXPECT_EQ(got, expected)
      << config.Label() << " on " << QueryName(query) << "\nexpected:\n"
      << expected.ToString(12) << "\ngot:\n"
      << got.ToString(12);
}

INSTANTIATE_TEST_SUITE_P(
    AllQueries, CrossEngineTest,
    ::testing::Combine(
        ::testing::Values(Query::kQ1, Query::kQ6, Query::kQ3, Query::kQ9,
                          Query::kQ18),
        ::testing::Values(
            EngineConfig{Engine::kTectorwise, 1, 1024, false},
            EngineConfig{Engine::kTectorwise, 1, 1024, true},
            EngineConfig{Engine::kTectorwise, 1, 16, false},
            EngineConfig{Engine::kTectorwise, 1, 4093, false},
            EngineConfig{Engine::kTectorwise, 4, 1024, false},
            EngineConfig{Engine::kTectorwise, 4, 1024, true},
            EngineConfig{Engine::kTectorwise, 7, 255, false},
            EngineConfig{Engine::kTyper, 4, 1024, false},
            EngineConfig{Engine::kTyper, 7, 1024, false},
            EngineConfig{Engine::kVolcano, 1, 1024, false})),
    [](const auto& info) {
      return std::string(QueryName(std::get<0>(info.param))) + "_" +
             std::get<1>(info.param).Label();
    });

TEST(ReferenceTest, Q6AllEngines) {
  const QueryResult expected = ReferenceQ6(TestDb());
  for (Engine e :
       {Engine::kTyper, Engine::kTectorwise, Engine::kVolcano}) {
    EXPECT_EQ(RunQuery(TestDb(), e, Query::kQ6, {}), expected)
        << EngineName(e);
  }
}

TEST(ReferenceTest, Q1AllEngines) {
  const QueryResult expected = ReferenceQ1(TestDb());
  for (Engine e :
       {Engine::kTyper, Engine::kTectorwise, Engine::kVolcano}) {
    EXPECT_EQ(RunQuery(TestDb(), e, Query::kQ1, {}), expected)
        << EngineName(e);
  }
}

TEST(ResultShapeTest, Q1HasFourGroups) {
  const QueryResult r = RunQuery(TestDb(), Engine::kTyper, Query::kQ1, {});
  EXPECT_EQ(r.rows.size(), 4u);  // A/F, N/F, N/O, R/F
}

TEST(ResultShapeTest, Q3TopTen) {
  const QueryResult r = RunQuery(TestDb(), Engine::kTyper, Query::kQ3, {});
  EXPECT_LE(r.rows.size(), 10u);
  EXPECT_GT(r.rows.size(), 0u);
  // Revenue (column 1) is non-increasing.
  for (size_t i = 1; i < r.rows.size(); ++i)
    EXPECT_GE(std::stod(r.rows[i - 1][1]), std::stod(r.rows[i][1]));
}

TEST(ResultShapeTest, Q9CoversNationsAndYears) {
  const QueryResult r = RunQuery(TestDb(), Engine::kTyper, Query::kQ9, {});
  // 25 nations x 7 order years, most populated even at small SF.
  EXPECT_GT(r.rows.size(), 100u);
  EXPECT_LE(r.rows.size(), 25u * 7u);
}

TEST(ResultShapeTest, Q18RespectsHavingAndLimit) {
  const QueryResult r = RunQuery(TestDb(), Engine::kTyper, Query::kQ18, {});
  EXPECT_LE(r.rows.size(), 100u);
  for (const auto& row : r.rows)
    EXPECT_GT(std::stod(row[5]), 300.0);  // sum_qty > 300
}

TEST(StabilityTest, RepeatedRunsIdentical) {
  QueryOptions opt;
  opt.threads = 8;
  const QueryResult first =
      RunQuery(TestDb(), Engine::kTectorwise, Query::kQ3, opt);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(RunQuery(TestDb(), Engine::kTectorwise, Query::kQ3, opt),
              first)
        << "run " << i;
  }
}

TEST(ScaleInvariantsTest, Q6RevenueGrowsWithScale) {
  const Database small = datagen::GenerateTpch(0.01);
  const Database large = datagen::GenerateTpch(0.02);
  const auto rev = [](const Database& db) {
    return std::stod(RunQuery(db, Engine::kTyper, Query::kQ6, {}).rows[0][0]);
  };
  EXPECT_GT(rev(large), rev(small) * 1.5);
}

}  // namespace
}  // namespace vcq
