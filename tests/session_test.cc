#include "api/session.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "api/query_catalog.h"
#include "api/vcq.h"
#include "datagen/ssb.h"
#include "datagen/tpch.h"
#include "runtime/params.h"
#include "runtime/types.h"
#include "tectorwise/plan.h"
#include "tectorwise/queries.h"

// The Session API contract:
//  - prepared re-execution identity: Execute() x3 on one PreparedQuery is
//    byte-identical to the one-shot RunQuery for every query, engine,
//    compaction policy, and thread count;
//  - concurrent mixed-query execution on shared sessions matches the
//    serial reference (run under TSan in CI);
//  - parameter binding: explicit spec-default bindings reproduce the
//    defaults, non-default bindings agree across engines, and rebinding a
//    warm handle works without re-preparing.

namespace vcq {
namespace {

using runtime::CompactionMode;
using runtime::Database;
using runtime::QueryOptions;
using runtime::QueryParams;
using runtime::QueryResult;

const Database& TpchDb() {
  static const Database* db = new Database(datagen::GenerateTpch(0.01));
  return *db;
}

const Database& SsbDb() {
  static const Database* db = new Database(datagen::GenerateSsb(0.02));
  return *db;
}

const Database& DbFor(Query q) { return IsSsbQuery(q) ? SsbDb() : TpchDb(); }

std::vector<Query> AllQueries() {
  std::vector<Query> all = TpchQueries();
  for (Query q : SsbQueries()) all.push_back(q);
  return all;
}

TEST(SessionTest, PreparedReExecutionMatchesOneShotRunQuery) {
  for (Query q : AllQueries()) {
    const Database& db = DbFor(q);
    Session session(db);
    for (Engine e : {Engine::kTyper, Engine::kTectorwise}) {
      for (CompactionMode policy :
           {CompactionMode::kNever, CompactionMode::kAdaptive}) {
        // Compaction is a Tectorwise knob; skip the redundant Typer cell.
        if (e == Engine::kTyper && policy != CompactionMode::kNever) continue;
        for (size_t threads : {size_t{1}, size_t{8}}) {
          QueryOptions opt;
          opt.threads = threads;
          opt.compaction = policy;
          const QueryResult expected = RunQuery(db, e, q, opt);
          PreparedQuery prepared = session.Prepare(e, q, opt);
          for (int rep = 0; rep < 3; ++rep) {
            EXPECT_EQ(prepared.Execute(), expected)
                << QueryName(q) << " on " << EngineName(e)
                << " threads=" << threads << " rep=" << rep;
          }
        }
      }
    }
  }
}

TEST(SessionTest, FourConcurrentPreparedQueriesOnOneSession) {
  // The acceptance shape: four prepared queries in flight at once on one
  // shared Session, repeatedly, byte-identical to their serial results.
  Session session(TpchDb());
  QueryOptions opt;
  opt.threads = 4;
  opt.compaction = CompactionMode::kAdaptive;
  std::vector<PreparedQuery> prepared;
  prepared.push_back(session.Prepare(Engine::kTyper, Query::kQ6, opt));
  prepared.push_back(session.Prepare(Engine::kTectorwise, Query::kQ3, opt));
  prepared.push_back(session.Prepare(Engine::kTyper, Query::kQ18, opt));
  prepared.push_back(session.Prepare(Engine::kTectorwise, Query::kQ1, opt));

  std::vector<QueryResult> expected;
  for (const PreparedQuery& p : prepared) expected.push_back(p.Execute());

  for (int round = 0; round < 3; ++round) {
    std::vector<ExecutionHandle> inflight;
    for (const PreparedQuery& p : prepared)
      inflight.push_back(p.ExecuteAsync());
    for (size_t i = 0; i < inflight.size(); ++i) {
      EXPECT_EQ(inflight[i].Wait(), expected[i]) << "handle " << i;
    }
  }
}

TEST(SessionTest, ConcurrentMixedWorkloadMatchesSerialReference) {
  // All 9 queries x both engines across two sessions sharing the global
  // pool, driven from several client threads at once.
  Session tpch(TpchDb());
  Session ssb(SsbDb());
  QueryOptions opt;
  opt.threads = 2;
  struct Cell {
    PreparedQuery prepared;
    QueryResult expected;
  };
  std::vector<Cell> cells;
  for (Query q : AllQueries()) {
    for (Engine e : {Engine::kTyper, Engine::kTectorwise}) {
      Session& session = IsSsbQuery(q) ? ssb : tpch;
      PreparedQuery p = session.Prepare(e, q, opt);
      QueryResult expected = p.Execute();
      cells.push_back(Cell{std::move(p), std::move(expected)});
    }
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (size_t i = t; i < cells.size(); i += 2) {  // overlapping ranges
        const Cell& cell = cells[i % cells.size()];
        if (!(cell.prepared.Execute() == cell.expected)) failures.fetch_add(1);
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(SessionTest, ExplicitDefaultBindingsReproduceSpecConstants) {
  Session session(TpchDb());
  PreparedQuery q6 =
      session.Prepare(Engine::kTectorwise, Query::kQ6, QueryOptions{});
  const QueryResult by_default = q6.Execute();
  q6.Set("shipdate_lo", "1994-01-01")
      .Set("shipdate_hi", "1994-12-31")
      .Set("discount_lo", int64_t{5})
      .Set("discount_hi", int64_t{7})
      .Set("quantity_max", int64_t{2400});
  EXPECT_EQ(q6.Execute(), by_default);
  EXPECT_EQ(by_default, RunQuery(TpchDb(), Engine::kTectorwise, Query::kQ6,
                                 QueryOptions{}));
}

/// Non-default bindings for every query — each valid for the generated
/// data's vocabulary, each changing at least one predicate.
QueryParams NonDefaultBindings(Query q) {
  QueryParams p;
  switch (q) {
    case Query::kQ1: p.SetDate("shipdate", "1995-06-30"); break;
    case Query::kQ6:
      p.SetDate("shipdate_lo", "1995-01-01")
          .SetDate("shipdate_hi", "1995-12-31")
          .SetInt("discount_lo", 4)
          .SetInt("discount_hi", 6)
          .SetInt("quantity_max", 3000);
      break;
    case Query::kQ3:
      p.SetString("segment", "MACHINERY").SetDate("date", "1995-06-01");
      break;
    case Query::kQ9: p.SetString("color", "red"); break;
    case Query::kQ18: p.SetInt("quantity_min", 25000); break;
    case Query::kSsbQ11:
      p.SetInt("year", 1994)
          .SetInt("discount_lo", 2)
          .SetInt("discount_hi", 4)
          .SetInt("quantity_max", 30);
      break;
    case Query::kSsbQ21:
      p.SetString("category", "MFGR#13").SetString("region", "ASIA");
      break;
    case Query::kSsbQ31:
      p.SetString("region", "AMERICA").SetInt("year_lo", 1993).SetInt(
          "year_hi", 1996);
      break;
    case Query::kSsbQ41:
      p.SetString("region", "ASIA")
          .SetString("mfgr_a", "MFGR#2")
          .SetString("mfgr_b", "MFGR#3");
      break;
  }
  return p;
}

TEST(SessionTest, NonDefaultBindingsAgreeAcrossEngines) {
  for (Query q : AllQueries()) {
    const Database& db = DbFor(q);
    Session session(db);
    QueryOptions opt;
    opt.threads = 2;
    const QueryParams bindings = NonDefaultBindings(q);

    PreparedQuery typer = session.Prepare(Engine::kTyper, q, opt);
    PreparedQuery tw = session.Prepare(Engine::kTectorwise, q, opt);
    const QueryResult typer_result = typer.Execute(bindings);
    const QueryResult tw_result = tw.Execute(bindings);
    EXPECT_EQ(typer_result, tw_result) << QueryName(q);

    // Rebinding a warm handle: Set() then Execute() equals the explicit
    // overload, and ResetParams() restores the spec defaults — all without
    // re-preparing the plan.
    const QueryResult default_result = tw.Execute();
    for (const ParamSpec& spec : tw.info().params) {
      switch (spec.type) {
        case runtime::ParamType::kInt:
          tw.Set(spec.name, bindings.Int(spec.name));
          break;
        case runtime::ParamType::kDate:
          tw.Set(spec.name,
                 runtime::DateToString(bindings.Date(spec.name)));
          break;
        case runtime::ParamType::kString:
          tw.Set(spec.name, bindings.Str(spec.name));
          break;
      }
    }
    EXPECT_EQ(tw.Execute(), tw_result) << QueryName(q);
    tw.ResetParams();
    EXPECT_EQ(tw.Execute(), default_result) << QueryName(q);
  }
}

TEST(SessionTest, PartialExplicitBindingsLayerOverDefaults) {
  Session session(TpchDb());
  PreparedQuery q6 = session.Prepare(Engine::kTyper, Query::kQ6);
  // Only the discount band changes; dates/quantity stay at spec defaults.
  QueryParams partial;
  partial.SetInt("discount_lo", 6).SetInt("discount_hi", 7);
  const QueryResult via_overload = q6.Execute(partial);
  q6.Set("discount_lo", int64_t{6});
  const QueryResult via_set = q6.Execute();
  EXPECT_EQ(via_overload, via_set);
}

TEST(SessionTest, CatalogDeclaresEveryParameterTheEnginesRead) {
  // DefaultParams must fully cover each engine's parameter reads: running
  // with exactly the catalog defaults (what RunQuery does) must succeed
  // for every query and engine, including Volcano's TPC-H half.
  for (Query q : AllQueries()) {
    const Database& db = DbFor(q);
    for (Engine e : {Engine::kTyper, Engine::kTectorwise, Engine::kVolcano}) {
      if (!EngineSupports(e, q)) continue;
      EXPECT_FALSE(RunQuery(db, e, q, QueryOptions{}).rows.empty())
          << QueryName(q) << " on " << EngineName(e);
    }
  }
}

TEST(SessionTest, EveryCatalogPlanPassesTheParamCrossCheck) {
  // Prepare runs ValidatePlanParams on every Tectorwise plan: the shipped
  // catalog and query files must agree (this is the prepare-time guard
  // against query/catalog drift).
  for (Query q : AllQueries()) {
    const tectorwise::Plan plan =
        tectorwise::PlanFor(DbFor(q), QueryName(q));
    EXPECT_FALSE(plan.param_uses().empty()) << QueryName(q);
    ValidatePlanParams(plan, CatalogEntry(q));  // must not check-fail
  }
}

TEST(SessionDeathTest, PlanParamDriftFailsAtPrepareTime) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Database& db = TpchDb();

  // A plan reading a parameter the catalog never declared.
  const auto undeclared = [&db] {
    tectorwise::PlanBuilder pb("drift-name");
    auto& scan = pb.Scan(db["lineitem"], "lineitem");
    const auto qty = scan.Col<int64_t>("l_quantity");
    auto& sel = pb.Select(scan);
    sel.CmpParam<int64_t>(qty, tectorwise::CmpOp::kLess, "bogus_param");
    auto& agg = pb.FixedAgg(sel);
    const auto total = agg.Sum(qty, "total");
    return pb.Build(agg, {total});
  };
  EXPECT_DEATH(ValidatePlanParams(undeclared(), CatalogEntry(Query::kQ6)),
               "does not declare");

  // A plan reading a declared kString parameter numerically (Q3 declares
  // "segment" as kString) — the garbage-producing drift the cross-check
  // exists for.
  const auto mismatched = [&db] {
    tectorwise::PlanBuilder pb("drift-type");
    auto& scan = pb.Scan(db["lineitem"], "lineitem");
    const auto qty = scan.Col<int64_t>("l_quantity");
    auto& sel = pb.Select(scan);
    sel.CmpParam<int64_t>(qty, tectorwise::CmpOp::kLess, "segment");
    auto& agg = pb.FixedAgg(sel);
    const auto total = agg.Sum(qty, "total");
    return pb.Build(agg, {total});
  };
  EXPECT_DEATH(ValidatePlanParams(mismatched(), CatalogEntry(Query::kQ3)),
               "disagrees with the catalog");
}

TEST(SessionDeathTest, MisuseIsRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Session session(TpchDb());
  PreparedQuery q6 = session.Prepare(Engine::kTyper, Query::kQ6);
  EXPECT_DEATH(q6.Set("no_such_param", int64_t{1}), "unknown parameter");
  EXPECT_DEATH(q6.Set("shipdate_lo", int64_t{3}), "not an integer");
  EXPECT_DEATH(q6.Set("discount_lo", "0.04"), "is an integer");
  // The explicit-bindings overload applies the same misspelling guard —
  // a typo must not silently fall back to the default binding.
  QueryParams misspelled;
  misspelled.SetInt("disc_lo", 4);
  EXPECT_DEATH(q6.Execute(misspelled), "unknown parameter");

  // Volcano honors explicit bindings (it used to insist on the catalog
  // defaults); a re-bound run must agree with Tectorwise under the same
  // binding.
  PreparedQuery volcano = session.Prepare(Engine::kVolcano, Query::kQ6);
  volcano.Set("discount_lo", int64_t{4});
  PreparedQuery tw = session.Prepare(Engine::kTectorwise, Query::kQ6);
  tw.Set("discount_lo", int64_t{4});
  EXPECT_EQ(volcano.Execute(), tw.Execute());
  EXPECT_DEATH(session.Prepare(Engine::kVolcano, Query::kSsbQ11),
               "does not implement");
}

}  // namespace
}  // namespace vcq
