#include "benchutil/bench.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>

#include "api/query_catalog.h"
#include "common/env_util.h"
#include "runtime/hashmap.h"
#include "tectorwise/compaction.h"

namespace vcq::benchutil {

namespace {

double Now() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

double Measurement::CyclesPerTuple() const {
  return counters.cycles / static_cast<double>(tuples);
}

double Measurement::InstructionsPerTuple() const {
  return counters.instructions / static_cast<double>(tuples);
}

Measurement Measure(const std::function<void()>& fn, int reps) {
  Measurement m;
  std::vector<double> times;
  times.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    const double start = Now();
    fn();
    times.push_back(Now() - start);
  }
  std::sort(times.begin(), times.end());
  m.ms = times[times.size() / 2];
  auto& telemetry = tectorwise::CompactionTelemetry::Global();
  telemetry.Reset();
  auto& build_telemetry = runtime::JoinBuildTelemetry::Global();
  build_telemetry.Reset();
  runtime::PerfCounters counters;
  counters.Start();
  const double instr_start = Now();
  fn();
  const double instr_ms = Now() - instr_start;
  m.counters = counters.Stop();
  const auto density = telemetry.Take();
  m.avg_density = density.AvgDensity();
  m.compactions = static_cast<double>(density.compactions);
  m.build_ms = static_cast<double>(build_telemetry.total_ns()) / 1e6;
  m.probe_ms = std::max(0.0, instr_ms - m.build_ms);
  return m;
}

size_t TuplesScanned(const runtime::Database& db, Query query) {
  return ScannedTuples(db, query);
}

Measurement MeasureQuery(const runtime::Database& db, Engine engine,
                         Query query, const runtime::QueryOptions& opt,
                         int reps) {
  Measurement m =
      Measure([&] { RunQuery(db, engine, query, opt); }, reps);
  m.tuples = TuplesScanned(db, query);
  return m;
}

void PrintHeader(const std::string& title, const std::string& paper_setup,
                 const std::string& this_setup) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper setup: %s\n", paper_setup.c_str());
  std::printf("this run:    %s\n", this_setup.c_str());
  std::printf("==============================================================="
              "=================\n");
}

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {}

void Table::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::Print() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c)
      std::printf("%s%-*s", c ? "  " : "", static_cast<int>(widths[c]),
                  cells[c].c_str());
    std::printf("\n");
  };
  emit(columns_);
  size_t total = columns_.size() >= 1 ? 2 * (columns_.size() - 1) : 0;
  for (size_t w : widths) total += w;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) emit(row);
}

std::string Fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string FmtCounter(double v, int decimals) {
  if (std::isnan(v)) return "n/a";
  return Fmt(v, decimals);
}

double EnvSf(double default_sf) {
  if (Quick()) default_sf = std::min(default_sf, 0.05);
  return EnvDouble("VCQ_SF", default_sf);
}

int EnvReps(int default_reps) {
  if (Quick()) default_reps = 1;
  return static_cast<int>(EnvInt("VCQ_REPS", default_reps));
}

size_t EnvThreads(size_t default_threads) {
  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  const size_t v = static_cast<size_t>(
      EnvInt("VCQ_THREADS", static_cast<int64_t>(
                                default_threads ? default_threads : hw)));
  return std::max<size_t>(1, v);
}

bool Quick() { return EnvFlag("VCQ_QUICK"); }

}  // namespace vcq::benchutil
