#include "benchutil/bench.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <thread>

#include "api/query_catalog.h"
#include "common/env_util.h"
#include "runtime/hashmap.h"
#include "tectorwise/compaction.h"

namespace vcq::benchutil {

namespace {

double Now() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

double Measurement::CyclesPerTuple() const {
  return counters.cycles / static_cast<double>(tuples);
}

double Measurement::InstructionsPerTuple() const {
  return counters.instructions / static_cast<double>(tuples);
}

/// Median timing over `reps` runs; the Measurement still lacks the
/// instrumented-run telemetry when this returns.
Measurement MeasureTimes(const std::function<void()>& fn, int reps) {
  Measurement m;
  std::vector<double> times;
  times.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    const double start = Now();
    fn();
    times.push_back(Now() - start);
  }
  std::sort(times.begin(), times.end());
  m.ms = times[times.size() / 2];
  return m;
}

Measurement Measure(const std::function<void()>& fn, int reps) {
  Measurement m = MeasureTimes(fn, reps);
  auto& telemetry = tectorwise::CompactionTelemetry::Global();
  telemetry.Reset();
  auto& build_telemetry = runtime::JoinBuildTelemetry::Global();
  build_telemetry.Reset();
  runtime::PerfCounters counters;
  counters.Start();
  const double instr_start = Now();
  fn();
  const double instr_ms = Now() - instr_start;
  m.counters = counters.Stop();
  const auto density = telemetry.Take();
  m.avg_density = density.AvgDensity();
  m.compactions = static_cast<double>(density.compactions);
  m.build_ms = static_cast<double>(build_telemetry.total_ns()) / 1e6;
  m.probe_ms = std::max(0.0, instr_ms - m.build_ms);
  return m;
}

Measurement MeasureTraced(
    const std::function<void()>& fn,
    const std::function<std::shared_ptr<const runtime::QueryTrace>()>&
        traced_fn,
    size_t vector_size, int reps) {
  Measurement m = MeasureTimes(fn, reps);
  runtime::PerfCounters counters;
  counters.Start();
  const double instr_start = Now();
  const std::shared_ptr<const runtime::QueryTrace> trace = traced_fn();
  const double instr_ms = Now() - instr_start;
  m.counters = counters.Stop();
  if (trace == nullptr) {
    m.avg_density = std::numeric_limits<double>::quiet_NaN();
    m.probe_ms = instr_ms;
    return m;
  }
  // Build span: the per-site join-build wall spans the build protocol
  // recorded into the trace's NodeTelemetry — per-run state, so two
  // benches (or a concurrent server) can no longer cross-contaminate the
  // global counters the legacy path drains.
  uint64_t build_ns = 0;
  for (uint32_t site = 0; site < runtime::NodeTelemetry::kMaxSites; ++site)
    build_ns += trace->node_telemetry().SpanNs(site);
  m.build_ms = static_cast<double>(build_ns) / 1e6;
  m.probe_ms = std::max(0.0, instr_ms - m.build_ms);
  // Density: output rows per batch slot across every traced operator
  // (Tectorwise's TracedOperator aggregates; none recorded = NaN, e.g.
  // Typer's fused pipelines have no vector operators to measure).
  uint64_t rows = 0;
  uint64_t batches = 0;
  for (uint32_t site = 0; site < runtime::QueryTrace::kMaxSites; ++site) {
    const auto stats = trace->OperatorAt(site);
    rows += stats.rows;
    batches += stats.batches;
  }
  m.compactions = static_cast<double>(batches);
  m.avg_density =
      batches != 0 && vector_size != 0
          ? static_cast<double>(rows) /
                (static_cast<double>(batches) * static_cast<double>(vector_size))
          : std::numeric_limits<double>::quiet_NaN();
  return m;
}

size_t TuplesScanned(const runtime::Database& db, Query query) {
  return ScannedTuples(db, query);
}

Measurement MeasureQuery(const runtime::Database& db, Engine engine,
                         Query query, const runtime::QueryOptions& opt,
                         int reps) {
  // Timed reps run exactly as configured; the instrumented rep re-runs
  // with tracing on and mines the trace the session stamps into the
  // result, so the reported split/density come from the unified
  // recording path, not from process-global counters.
  Measurement m = MeasureTraced(
      [&] { RunQuery(db, engine, query, opt); },
      [&] {
        runtime::QueryOptions traced = opt;
        traced.trace = runtime::TraceLevel::kSpans;
        return RunQuery(db, engine, query, traced).trace;
      },
      opt.vector_size, reps);
  m.tuples = TuplesScanned(db, query);
  return m;
}

void PrintHeader(const std::string& title, const std::string& paper_setup,
                 const std::string& this_setup) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper setup: %s\n", paper_setup.c_str());
  std::printf("this run:    %s\n", this_setup.c_str());
  std::printf("==============================================================="
              "=================\n");
}

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {}

void Table::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::Print() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c)
      std::printf("%s%-*s", c ? "  " : "", static_cast<int>(widths[c]),
                  cells[c].c_str());
    std::printf("\n");
  };
  emit(columns_);
  size_t total = columns_.size() >= 1 ? 2 * (columns_.size() - 1) : 0;
  for (size_t w : widths) total += w;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) emit(row);
}

std::string Fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string FmtCounter(double v, int decimals) {
  if (std::isnan(v)) return "n/a";
  return Fmt(v, decimals);
}

double EnvSf(double default_sf) {
  if (Quick()) default_sf = std::min(default_sf, 0.05);
  return EnvDouble("VCQ_SF", default_sf);
}

int EnvReps(int default_reps) {
  if (Quick()) default_reps = 1;
  return static_cast<int>(EnvInt("VCQ_REPS", default_reps));
}

size_t EnvThreads(size_t default_threads) {
  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  const size_t v = static_cast<size_t>(
      EnvInt("VCQ_THREADS", static_cast<int64_t>(
                                default_threads ? default_threads : hw)));
  return std::max<size_t>(1, v);
}

bool Quick() { return EnvFlag("VCQ_QUICK"); }

}  // namespace vcq::benchutil
