#ifndef VCQ_BENCHUTIL_BENCH_H_
#define VCQ_BENCHUTIL_BENCH_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "api/vcq.h"
#include "runtime/perf_counters.h"

// Measurement harness shared by all bench binaries (one binary per paper
// table/figure; see DESIGN.md §3). Configuration via environment:
//   VCQ_SF       scale factor            (default per bench)
//   VCQ_REPS     repetitions per cell    (median reported)
//   VCQ_THREADS  max worker threads
//   VCQ_QUICK=1  CI-sized run
// Counter columns print "n/a" when the kernel denies perf events.

namespace vcq::benchutil {

struct Measurement {
  double ms = 0;                        // median wall time
  runtime::PerfCounters::Values counters;  // from the median-adjacent run
  size_t tuples = 0;                    // normalization base (paper §3.4)

  // Batch-density telemetry from the instrumented run (Tectorwise
  // compaction points; see tectorwise/compaction.h). avg_density is NaN
  // when the run never crossed a compaction point; compactions counts the
  // dense batches the compactors emitted. These ride along in every bench
  // table so BENCH_*.json trajectories can track density regressions next
  // to runtime.
  double avg_density = 0;
  double compactions = 0;

  // Build/probe phase split from the instrumented run: build_ms sums the
  // join-build insert-protocol wall spans recorded by
  // runtime::JoinBuildTelemetry (one span per hash table, sizing barrier to
  // final barrier — spans of distinct builds never overlap, so nested
  // build-side joins are not double-counted, and materialize-phase skew is
  // excluded); probe_ms is the rest of that run — for queries without hash
  // joins build_ms is 0 and probe_ms is simply the whole run.
  double build_ms = 0;
  double probe_ms = 0;

  double CyclesPerTuple() const;
  double InstructionsPerTuple() const;
};

/// Runs `fn` reps times, returns the median time plus counters captured on
/// one additional instrumented run.
Measurement Measure(const std::function<void()>& fn, int reps);

/// Measures one query end to end. `tuples` normalization = sum of scanned
/// table cardinalities for that query (paper §3.4).
Measurement MeasureQuery(const runtime::Database& db, Engine engine,
                         Query query, const runtime::QueryOptions& opt,
                         int reps);

/// Sum of base-table cardinalities scanned by `query` (paper §3.4
/// normalization).
size_t TuplesScanned(const runtime::Database& db, Query query);

/// Prints the standard bench banner: what paper artifact this reproduces,
/// the paper's setup, and this run's setup.
void PrintHeader(const std::string& title, const std::string& paper_setup,
                 const std::string& this_setup);

/// Minimal fixed-width table printer for paper-style output.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);
  void AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats helpers.
std::string Fmt(double v, int decimals = 1);
std::string FmtCounter(double v, int decimals = 1);  // "n/a" for NaN

double EnvSf(double default_sf);
int EnvReps(int default_reps);
size_t EnvThreads(size_t default_threads);
bool Quick();

}  // namespace vcq::benchutil

#endif  // VCQ_BENCHUTIL_BENCH_H_
