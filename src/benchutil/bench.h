#ifndef VCQ_BENCHUTIL_BENCH_H_
#define VCQ_BENCHUTIL_BENCH_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/vcq.h"
#include "runtime/perf_counters.h"
#include "runtime/trace.h"

// Measurement harness shared by all bench binaries (one binary per paper
// table/figure; see DESIGN.md §3). Configuration via environment:
//   VCQ_SF       scale factor            (default per bench)
//   VCQ_REPS     repetitions per cell    (median reported)
//   VCQ_THREADS  max worker threads
//   VCQ_QUICK=1  CI-sized run
// Counter columns print "n/a" when the kernel denies perf events.

namespace vcq::benchutil {

struct Measurement {
  double ms = 0;                        // median wall time
  runtime::PerfCounters::Values counters;  // from the median-adjacent run
  size_t tuples = 0;                    // normalization base (paper §3.4)

  // Batch-density telemetry from the instrumented run. On the unified
  // trace path (MeasureTraced/MeasureQuery) avg_density is output rows per
  // batch slot across every traced Tectorwise operator — the same
  // per-site aggregates EXPLAIN ANALYZE prints — and compactions counts
  // the non-empty batches those operators emitted; NaN/0 when the run
  // recorded no operator spans (Typer's fused pipelines). The legacy
  // Measure(fn) path still reads the global CompactionTelemetry
  // (compaction points only; see tectorwise/compaction.h).
  double avg_density = 0;
  double compactions = 0;

  // Build/probe phase split from the instrumented run: build_ms sums the
  // per-site join-build insert-protocol wall spans (one span per hash
  // table, sizing barrier to final barrier — spans of distinct builds
  // never overlap, so nested build-side joins are not double-counted, and
  // materialize-phase skew is excluded); probe_ms is the rest of that run
  // — for queries without hash joins build_ms is 0 and probe_ms is simply
  // the whole run. On the unified path these come from the instrumented
  // run's QueryTrace NodeTelemetry (the same recording the tuner's reward
  // and ExplainAnalyze read); the legacy path drains the process-global
  // JoinBuildTelemetry.
  double build_ms = 0;
  double probe_ms = 0;

  double CyclesPerTuple() const;
  double InstructionsPerTuple() const;
};

/// Runs `fn` reps times, returns the median time plus counters captured on
/// one additional instrumented run (legacy global-counter telemetry — for
/// closures that cannot thread a trace sink through).
Measurement Measure(const std::function<void()>& fn, int reps);

/// The unified observability path (runtime/trace.h): timing reps run `fn`
/// untouched; the one instrumented run invokes `traced_fn`, which executes
/// traced and returns the run's QueryTrace (QueryResult::trace for session
/// paths, a caller-owned sink for direct engine calls) — build_ms/
/// probe_ms/density are derived from its spans, so benches and production
/// (EXPLAIN ANALYZE, the tuner) report from one recording path. A null
/// trace (failed run) leaves the telemetry columns at their zero/NaN
/// defaults. `vector_size` is the density denominator per batch.
Measurement MeasureTraced(
    const std::function<void()>& fn,
    const std::function<std::shared_ptr<const runtime::QueryTrace>()>&
        traced_fn,
    size_t vector_size, int reps);

/// Measures one query end to end. `tuples` normalization = sum of scanned
/// table cardinalities for that query (paper §3.4).
Measurement MeasureQuery(const runtime::Database& db, Engine engine,
                         Query query, const runtime::QueryOptions& opt,
                         int reps);

/// Sum of base-table cardinalities scanned by `query` (paper §3.4
/// normalization).
size_t TuplesScanned(const runtime::Database& db, Query query);

/// Prints the standard bench banner: what paper artifact this reproduces,
/// the paper's setup, and this run's setup.
void PrintHeader(const std::string& title, const std::string& paper_setup,
                 const std::string& this_setup);

/// Minimal fixed-width table printer for paper-style output.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);
  void AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats helpers.
std::string Fmt(double v, int decimals = 1);
std::string FmtCounter(double v, int decimals = 1);  // "n/a" for NaN

double EnvSf(double default_sf);
int EnvReps(int default_reps);
size_t EnvThreads(size_t default_threads);
bool Quick();

}  // namespace vcq::benchutil

#endif  // VCQ_BENCHUTIL_BENCH_H_
