#ifndef VCQ_SQL_AST_H_
#define VCQ_SQL_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

// Abstract syntax for the supported SQL subset (see the grammar comment in
// parser.h). The AST is deliberately loose — one Expr node kind carries
// every operator — because the binder (binder.h) is where typing, column
// resolution, and feature gating happen; the parser only records shape and
// source positions. Positions are 1-based (line, column) and survive into
// every later diagnostic.

namespace vcq::sql::ast {

struct Pos {
  size_t line = 1;
  size_t col = 1;
};

enum class BinOp : uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,
  kAnd,
  kOr
};

enum class AggFn : uint8_t { kSum, kMin, kMax, kCount, kAvg };

const char* BinOpName(BinOp op);
const char* AggFnName(AggFn fn);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind : uint8_t {
    kIntLit,     // int_val at `scale` (decimal literals pre-scaled: 1.00=100)
    kStrLit,     // str
    kDateLit,    // int_val = day number; str keeps the ISO spelling
    kParam,      // str = name without the '$'
    kColumn,     // str = column, table = optional qualifier
    kBinary,     // op, args = {lhs, rhs}
    kNeg,        // args = {operand}
    kBetween,    // args = {value, lo, hi}
    kIn,         // args = {value, list...}
    kLike,       // args = {value}; str = pattern
    kAgg,        // agg, args = {arg} (empty for COUNT(*))
    kYear        // EXTRACT(YEAR FROM x), args = {x}
  };

  Kind kind;
  Pos pos;
  int64_t int_val = 0;
  int scale = 0;
  std::string str;
  std::string table;
  BinOp op = BinOp::kAdd;
  AggFn agg = AggFn::kSum;
  std::vector<ExprPtr> args;
};

struct SelectItem {
  ExprPtr expr;
  std::string alias;  // empty = unnamed
};

struct TableRef {
  std::string name;
  Pos pos;
};

struct OrderItem {
  ExprPtr expr;
  bool desc = false;
};

struct Select {
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;  // JOIN ... ON conditions are folded in as conjuncts
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  // -1 = none
};

/// Indented dump of the tree (the EXPLAIN "ast" stage).
std::string ToString(const Select& select);
std::string ToString(const Expr& expr);

}  // namespace vcq::sql::ast

#endif  // VCQ_SQL_AST_H_
