#include "sql/sql.h"

#include <functional>
#include <string>
#include <utility>

#include "runtime/trace.h"
#include "sql/ast.h"
#include "sql/binder.h"
#include "sql/logical.h"
#include "sql/parser.h"

namespace vcq::sql {

uint64_t CompiledQuery::ScannedTuples() const {
  uint64_t total = 0;
  const std::function<void(const JoinTree&)> walk = [&](const JoinTree& t) {
    if (t.IsLeaf()) {
      total += plan_.query.Table(static_cast<uint32_t>(t.table)).tuple_count;
      return;
    }
    walk(*t.build);
    walk(*t.probe);
  };
  walk(*plan_.root);
  return total;
}

std::string CompiledQuery::ExplainPhysical() const {
  return std::move(LowerTectorwise()).TakePlan().ToString();
}

namespace {

/// Records one compile-stage span; stages failing mid-way still record
/// (the scope closes on the exception path), so a trace shows where
/// compilation stopped.
struct StageSpan : runtime::TraceScope {
  StageSpan(runtime::QueryTrace* trace, const char* name)
      : runtime::TraceScope(trace, "sql", name) {}
};

}  // namespace

CompileResult Compile(std::shared_ptr<const Catalog> catalog,
                      std::string_view text, const OptimizerOptions& options,
                      runtime::QueryTrace* trace) {
  CompileResult result;
  try {
    std::optional<ast::Select> select;
    {
      StageSpan span(trace, "sql.parse");
      select.emplace(Parse(text));
    }
    std::string ast_dump = ToString(*select);
    std::optional<BoundQuery> bound;
    {
      StageSpan span(trace, "sql.bind");
      bound.emplace(Bind(*catalog, *select));
    }
    std::string logical_dump = ToString(*bound);
    std::optional<PhysicalPlan> plan;
    {
      StageSpan span(trace, "sql.optimize");
      plan.emplace(Optimize(std::move(*bound), options));
    }
    result.query = std::make_shared<CompiledQuery>(
        std::move(catalog), std::string(text), std::move(*plan),
        std::move(ast_dump), std::move(logical_dump));
  } catch (const internal::SqlException& e) {
    result.error = e.error;
  }
  return result;
}

CompileResult Compile(const runtime::Database& db, std::string_view text,
                      const OptimizerOptions& options) {
  return Compile(MakeCatalog(db), text, options);
}

std::string Explain(const CompiledQuery& query) {
  std::string out;
  out += "-- ast --\n" + query.ExplainAst();
  out += "-- logical --\n" + query.ExplainLogical();
  out += "-- optimized --\n" + query.ExplainOptimized();
  out += "-- physical (tectorwise) --\n" + query.ExplainPhysical();
  return out;
}

}  // namespace vcq::sql
