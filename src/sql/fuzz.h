#ifndef VCQ_SQL_FUZZ_H_
#define VCQ_SQL_FUZZ_H_

#include <cstdint>
#include <string>

#include "sql/catalog.h"

// Seeded random SQL generator for the differential harness: every
// generated query compiles against the given catalog and lowers onto both
// backends (Tectorwise and Volcano), so the harness can assert
// byte-identical results instead of filtering out rejects. Queries stay
// inside the supported subset by construction — join sets are random
// connected subtrees of the workload's foreign-key graph, predicates draw
// literals from the catalog's min/max statistics (numerics) or from actual
// stored rows (strings), and multiplication is kept out of generated
// expressions so fixed-point sums cannot overflow.

namespace vcq::sql {

/// Deterministic: the same (catalog schema, seed) yields the same text.
std::string GenerateFuzzQuery(const Catalog& catalog, uint64_t seed);

}  // namespace vcq::sql

#endif  // VCQ_SQL_FUZZ_H_
