#ifndef VCQ_SQL_LEXER_H_
#define VCQ_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "sql/ast.h"

// Hand-written lexer for the SQL subset. Identifiers are lowercased (the
// subset is case-insensitive; keywords are recognized by the parser from
// the lowercased spelling). Literals:
//   123        integer              (kInt, value)
//   1.07       fixed-point decimal  (kDecimal, value=107 scale=2)
//   'text'     string, '' escapes a quote
//   $name      named parameter
// Errors (unterminated string, stray character, decimal overflow) throw
// internal::SqlException with the offending position.

namespace vcq::sql {

enum class Tok : uint8_t {
  kEnd,
  kIdent,
  kInt,
  kDecimal,
  kString,
  kParam,
  kLParen,
  kRParen,
  kComma,
  kDot,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;     // ident (lowercased) / string value / param name
  int64_t value = 0;    // kInt, kDecimal (pre-scaled)
  int scale = 0;        // kDecimal
  ast::Pos pos;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  /// Produces the next token; kEnd forever once exhausted.
  Token Next();

 private:
  char Peek(size_t ahead = 0) const;
  void Advance();
  ast::Pos Here() const { return {line_, col_}; }

  std::string_view text_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t col_ = 1;
};

}  // namespace vcq::sql

#endif  // VCQ_SQL_LEXER_H_
