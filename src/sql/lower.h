#ifndef VCQ_SQL_LOWER_H_
#define VCQ_SQL_LOWER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/options.h"
#include "runtime/params.h"
#include "runtime/query_result.h"
#include "sql/optimizer.h"
#include "tectorwise/queries.h"

// The two backends of the SQL front door. Both consume the same
// PhysicalPlan (optimizer.h) and funnel their rows through the shared
// result writer (result.h), which is what makes their outputs
// byte-identical:
//
//   LowerTectorwise  walks the join tree once and emits a
//                    tectorwise::PlanBuilder DAG (scan → map → select
//                    chains at each site, hash joins with explicit
//                    Build/Probe carries, hash group-by or fixed
//                    aggregation on top). Returns a normal
//                    tectorwise::Prepared, so Session treats SQL plans
//                    exactly like catalog plans (tuning knobs included).
//
//   RunVolcano       interprets the same tree with the tuple-at-a-time
//                    operators (volcano/volcano.h) per execution.
//                    Volcano rows are untyped int64 slots, so string
//                    columns ride as per-column dictionary codes (built
//                    on first use; code order = string order, so joins
//                    and group-bys on codes are exact) and string
//                    predicates are evaluated against the typed column
//                    at the scan into boolean pseudo-slots. Single
//                    threaded by design — it is the differential oracle,
//                    not a contender.
//
// RunVolcano optionally reports per-join output counts, which the
// optimizer ablation bench uses as its ground-truth "intermediate
// tuples" metric.

namespace vcq::sql {

struct VolcanoJoinStat {
  std::string label;  // "buildtables⋈probetables"
  uint64_t tuples = 0;
};

struct VolcanoStats {
  std::vector<VolcanoJoinStat> joins;
  /// Σ join output tuples — what predicate pushdown and join ordering
  /// are trying to shrink.
  uint64_t intermediate_tuples = 0;
};

/// Builds the Tectorwise plan for `plan`. Check-fails on physical-plan
/// shapes the binder cannot produce; all user errors were rejected at
/// compile time.
tectorwise::Prepared LowerTectorwise(const PhysicalPlan& plan);

/// Interprets `plan` with the Volcano operators. Parameters are resolved
/// up front into the operator closures; `stats`, when non-null, receives
/// per-join output counts.
runtime::QueryResult RunVolcano(const PhysicalPlan& plan,
                                const runtime::QueryOptions& opt,
                                const runtime::QueryParams& params,
                                VolcanoStats* stats = nullptr);

}  // namespace vcq::sql

#endif  // VCQ_SQL_LOWER_H_
