#include "sql/result.h"

#include <algorithm>

#include "common/check.h"

namespace vcq::sql {
namespace {

RenderCol::Kind KindFor(const SqlType& t) {
  switch (t.kind) {
    case TypeKind::kString:
      return RenderCol::Kind::kStr;
    case TypeKind::kDate:
      return RenderCol::Kind::kDate;
    case TypeKind::kNumeric:
      return t.scale == 0 ? RenderCol::Kind::kInt : RenderCol::Kind::kNumeric;
  }
  return RenderCol::Kind::kInt;
}

/// Three-way comparison of one rendered column.
int Compare(const RenderCol& col, const SqlRow& a, const SqlRow& b) {
  if (col.kind == RenderCol::Kind::kStr) {
    const std::string& x = a[col.slot].str;
    const std::string& y = b[col.slot].str;
    if (x < y) return -1;
    if (y < x) return 1;
    return 0;
  }
  if (col.kind == RenderCol::Kind::kAvg) {
    // sum_a/count_a vs sum_b/count_b without division: cross-multiply in
    // 128 bits (counts are non-negative).
    const __int128 lhs = static_cast<__int128>(a[col.slot].num) *
                         b[col.count_slot].num;
    const __int128 rhs = static_cast<__int128>(b[col.slot].num) *
                         a[col.count_slot].num;
    if (lhs < rhs) return -1;
    if (rhs < lhs) return 1;
    // Fall through to the raw pair so distinct (sum, count) with equal
    // ratio still order deterministically.
    if (a[col.slot].num != b[col.slot].num)
      return a[col.slot].num < b[col.slot].num ? -1 : 1;
    if (a[col.count_slot].num != b[col.count_slot].num)
      return a[col.count_slot].num < b[col.count_slot].num ? -1 : 1;
    return 0;
  }
  if (a[col.slot].num != b[col.slot].num)
    return a[col.slot].num < b[col.slot].num ? -1 : 1;
  return 0;
}

}  // namespace

ResultSpec SpecFor(const BoundQuery& q) {
  ResultSpec spec;
  const uint32_t agg_base = static_cast<uint32_t>(q.values.size());
  for (const Output& o : q.outputs) {
    RenderCol col;
    col.name = o.name;
    switch (o.src) {
      case Output::Src::kValue:
        col.slot = o.index;
        col.kind = KindFor(o.type);
        col.scale = o.type.scale;
        break;
      case Output::Src::kAgg:
        col.slot = agg_base + o.index;
        col.kind = KindFor(o.type);
        col.scale = o.type.scale;
        break;
      case Output::Src::kAvg:
        col.slot = agg_base + o.index;
        col.count_slot = agg_base + o.count_index;
        col.kind = RenderCol::Kind::kAvg;
        col.scale = q.aggs[o.index].type.scale;  // input (sum) scale
        col.out_scale = std::max(2, col.scale);
        break;
    }
    spec.columns.push_back(std::move(col));
  }
  spec.order = q.order_by;
  spec.limit = q.limit;
  return spec;
}

runtime::QueryResult Render(const ResultSpec& spec,
                            std::vector<SqlRow> rows) {
  // One deterministic total order: the ORDER BY keys, then every visible
  // column left to right — so ties (and LIMIT cutoffs) never depend on the
  // producing engine or its thread schedule.
  auto less = [&spec](const SqlRow& a, const SqlRow& b) {
    for (const auto& [idx, desc] : spec.order) {
      const int c = Compare(spec.columns[idx], a, b);
      if (c != 0) return desc ? c > 0 : c < 0;
    }
    for (const RenderCol& col : spec.columns) {
      const int c = Compare(col, a, b);
      if (c != 0) return c < 0;
    }
    return false;
  };
  std::sort(rows.begin(), rows.end(), less);
  if (rows.size() > spec.limit) rows.resize(spec.limit);

  std::vector<std::string> names;
  names.reserve(spec.columns.size());
  for (const RenderCol& col : spec.columns) names.push_back(col.name);
  runtime::ResultBuilder rb(names);
  for (const SqlRow& row : rows) {
    rb.BeginRow();
    for (const RenderCol& col : spec.columns) {
      switch (col.kind) {
        case RenderCol::Kind::kInt:
          rb.Int(row[col.slot].num);
          break;
        case RenderCol::Kind::kNumeric:
          rb.Numeric(row[col.slot].num, col.scale);
          break;
        case RenderCol::Kind::kDate:
          rb.Date(static_cast<int32_t>(row[col.slot].num));
          break;
        case RenderCol::Kind::kStr:
          rb.Str(row[col.slot].str);
          break;
        case RenderCol::Kind::kAvg:
          // AVG over zero rows renders as zero (this library has no NULL);
          // only the ungrouped-aggregate path can produce count == 0.
          if (row[col.count_slot].num == 0)
            rb.Numeric(0, col.out_scale);
          else
            rb.Avg(row[col.slot].num, row[col.count_slot].num, col.scale,
                   col.out_scale);
          break;
      }
    }
  }
  return rb.Finish();
}

}  // namespace vcq::sql
