#include "sql/catalog.h"

#include <algorithm>
#include <set>
#include <string>

#include "common/check.h"
#include "runtime/types.h"

namespace vcq::sql {
namespace {

// Column-name → semantics annotations for the datagen schemas. Scale-2
// money columns and day-number date columns, per the TPC-H / SSB generators
// (datagen/tpch.cc, datagen/ssb.cc). Everything else integer is a plain
// scale-0 numeric (keys, quantities in SSB, years, ...).
const std::set<std::string_view>& Scale2Columns() {
  static const auto* cols = new std::set<std::string_view>{
      "l_quantity",      "l_extendedprice", "l_discount",   "l_tax",
      "o_totalprice",    "ps_supplycost",   "c_acctbal",    "p_retailprice",
      "lo_extendedprice", "lo_discount",    "lo_revenue",   "lo_supplycost"};
  return *cols;
}

const std::set<std::string_view>& DateColumns() {
  static const auto* cols = new std::set<std::string_view>{
      "l_shipdate", "l_commitdate", "l_receiptdate", "o_orderdate"};
  return *cols;
}

SqlType TypeFor(std::string_view name, runtime::TypeTag tag) {
  if (tag == runtime::TypeTag::kChar || tag == runtime::TypeTag::kVarchar)
    return SqlType{TypeKind::kString, 0};
  if (DateColumns().count(name)) return SqlType{TypeKind::kDate, 0};
  const int scale = Scale2Columns().count(name) ? 2 : 0;
  return SqlType{TypeKind::kNumeric, scale};
}

template <typename T>
ColumnStats ScanStats(std::span<const T> data) {
  ColumnStats s;
  if (data.empty()) return s;
  T lo = data[0];
  T hi = data[0];
  for (const T v : data) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  s.min = static_cast<int64_t>(lo);
  s.max = static_cast<int64_t>(hi);
  s.valid = true;
  return s;
}

}  // namespace

std::string TypeName(const SqlType& t) {
  switch (t.kind) {
    case TypeKind::kDate:
      return "date";
    case TypeKind::kString:
      return "string";
    case TypeKind::kNumeric:
      if (t.scale == 0) return "numeric";
      return "numeric(" + std::to_string(t.scale) + ")";
  }
  return "?";
}

const ColumnDef* TableDef::Find(std::string_view column) const {
  const size_t i = IndexOf(column);
  return i == SIZE_MAX ? nullptr : &columns[i];
}

size_t TableDef::IndexOf(std::string_view column) const {
  for (size_t i = 0; i < columns.size(); ++i)
    if (columns[i].name == column) return i;
  return SIZE_MAX;
}

Catalog::Catalog(const runtime::Database& db) : db_(&db) {
  for (const std::string& name : db.RelationNames()) {
    const runtime::Relation& rel = db[name];
    TableDef table;
    table.name = name;
    table.tuple_count = rel.tuple_count();
    for (const std::string& col : rel.ColumnNames()) {
      const runtime::Relation::ColumnMeta meta = rel.Meta(col);
      ColumnDef def;
      def.name = col;
      def.tag = meta.tag;
      def.elem_size = meta.elem_size;
      def.type = TypeFor(col, meta.tag);
      if (meta.tag == runtime::TypeTag::kInt32)
        def.stats = ScanStats(rel.Col<int32_t>(col));
      else if (meta.tag == runtime::TypeTag::kInt64)
        def.stats = ScanStats(rel.Col<int64_t>(col));
      table.columns.push_back(std::move(def));
    }
    tables_.push_back(std::move(table));
  }
}

const TableDef* Catalog::Find(std::string_view table) const {
  for (const TableDef& t : tables_)
    if (t.name == table) return &t;
  return nullptr;
}

std::shared_ptr<const Catalog> MakeCatalog(const runtime::Database& db) {
  return std::make_shared<const Catalog>(db);
}

std::string SampleString(const Catalog& catalog, const TableDef& table,
                         const ColumnDef& col, size_t row) {
  VCQ_CHECK_MSG(col.type.kind == TypeKind::kString, col.name.c_str());
  const runtime::Relation& rel = catalog.db()[table.name];
  VCQ_CHECK(row < rel.tuple_count());
  using runtime::Char;
  using runtime::Varchar;
  switch (col.elem_size) {
    case 1:
      return std::string(rel.Col<Char<1>>(col.name)[row].View());
    case 6:
      return std::string(rel.Col<Char<6>>(col.name)[row].View());
    case 7:
      return std::string(rel.Col<Char<7>>(col.name)[row].View());
    case 9:
      return std::string(rel.Col<Char<9>>(col.name)[row].View());
    case 10:
      return std::string(rel.Col<Char<10>>(col.name)[row].View());
    case 12:
      return std::string(rel.Col<Char<12>>(col.name)[row].View());
    case 15:
      return std::string(rel.Col<Char<15>>(col.name)[row].View());
    case 25:
      return std::string(rel.Col<Char<25>>(col.name)[row].View());
    case sizeof(Varchar<55>): {
      const Varchar<55>& v = rel.Col<Varchar<55>>(col.name)[row];
      return std::string(v.View());
    }
    default:
      VCQ_CHECK_MSG(false, "unsupported string width");
  }
  return {};
}

}  // namespace vcq::sql
