#ifndef VCQ_SQL_REFERENCE_QUERIES_H_
#define VCQ_SQL_REFERENCE_QUERIES_H_

#include <string_view>

// Hand-written SQL for every query in the studied workload
// (api/query_catalog.h), phrased so that Session::PrepareSql produces
// byte-identical results to the catalog's hand-built plans: same column
// aliases (the result headers), same $parameter names (the catalog's
// ParamSpecs bind directly), same fixed-point scales, same ORDER BY. The
// SQL differential test (tests/sql_differential_test.cc) holds this file
// to that contract on both engines.

namespace vcq::sql {

/// The SQL text for the catalog query named `name` ("Q1", "SSB-Q4.1", ...);
/// nullptr when the name is unknown.
const char* SqlTextFor(std::string_view name);

}  // namespace vcq::sql

#endif  // VCQ_SQL_REFERENCE_QUERIES_H_
