#include "sql/parser.h"

#include <cctype>
#include <utility>

#include "runtime/types.h"
#include "sql/error.h"
#include "sql/lexer.h"

namespace vcq::sql {
namespace {

using ast::Expr;
using ast::ExprPtr;

[[noreturn]] void FailAt(ast::Pos pos, std::string message) {
  internal::Fail(pos.line, pos.col, std::move(message));
}

ExprPtr MakeExpr(Expr::Kind kind, ast::Pos pos) {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->pos = pos;
  return e;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : lexer_(text) {
    cur_ = lexer_.Next();
  }

  ast::Select ParseQuery() {
    ExpectKeyword("select");
    ast::Select q;
    q.items.push_back(ParseSelectItem());
    while (Accept(Tok::kComma)) q.items.push_back(ParseSelectItem());
    ExpectKeyword("from");
    q.from.push_back(ParseTableRef());
    std::vector<ExprPtr> join_conds;
    while (true) {
      if (Accept(Tok::kComma)) {
        q.from.push_back(ParseTableRef());
      } else if (AcceptKeyword("inner") || PeekKeyword("join")) {
        ExpectKeyword("join");
        q.from.push_back(ParseTableRef());
        ExpectKeyword("on");
        join_conds.push_back(ParseOr());
      } else {
        break;
      }
    }
    if (AcceptKeyword("where")) q.where = ParseOr();
    // Fold JOIN..ON conditions into the WHERE conjunction.
    for (ExprPtr& cond : join_conds) {
      if (!q.where) {
        q.where = std::move(cond);
      } else {
        ExprPtr conj = MakeExpr(Expr::Kind::kBinary, cond->pos);
        conj->op = ast::BinOp::kAnd;
        conj->args.push_back(std::move(q.where));
        conj->args.push_back(std::move(cond));
        q.where = std::move(conj);
      }
    }
    if (AcceptKeyword("group")) {
      ExpectKeyword("by");
      q.group_by.push_back(ParseAdd());
      while (Accept(Tok::kComma)) q.group_by.push_back(ParseAdd());
    }
    if (AcceptKeyword("having")) q.having = ParseOr();
    if (AcceptKeyword("order")) {
      ExpectKeyword("by");
      do {
        ast::OrderItem item;
        item.expr = ParseAdd();
        if (AcceptKeyword("desc"))
          item.desc = true;
        else
          AcceptKeyword("asc");
        q.order_by.push_back(std::move(item));
      } while (Accept(Tok::kComma));
    }
    if (AcceptKeyword("limit")) {
      if (cur_.kind != Tok::kInt)
        FailAt(cur_.pos, "expected integer after LIMIT");
      q.limit = cur_.value;
      Bump();
    }
    if (cur_.kind != Tok::kEnd)
      FailAt(cur_.pos, "unexpected trailing input: '" + Spelling() + "'");
    return q;
  }

 private:
  void Bump() { cur_ = lexer_.Next(); }

  std::string Spelling() const {
    switch (cur_.kind) {
      case Tok::kEnd:
        return "<end>";
      case Tok::kIdent:
      case Tok::kString:
        return cur_.text;
      case Tok::kParam:
        return "$" + cur_.text;
      case Tok::kInt:
      case Tok::kDecimal:
        return std::to_string(cur_.value);
      case Tok::kLParen:
        return "(";
      case Tok::kRParen:
        return ")";
      case Tok::kComma:
        return ",";
      case Tok::kDot:
        return ".";
      case Tok::kPlus:
        return "+";
      case Tok::kMinus:
        return "-";
      case Tok::kStar:
        return "*";
      case Tok::kSlash:
        return "/";
      case Tok::kLt:
        return "<";
      case Tok::kLe:
        return "<=";
      case Tok::kGt:
        return ">";
      case Tok::kGe:
        return ">=";
      case Tok::kEq:
        return "=";
      case Tok::kNe:
        return "<>";
    }
    return "?";
  }

  bool Accept(Tok kind) {
    if (cur_.kind != kind) return false;
    Bump();
    return true;
  }

  void Expect(Tok kind, const char* what) {
    if (cur_.kind != kind)
      FailAt(cur_.pos,
             std::string("expected ") + what + ", got '" + Spelling() + "'");
    Bump();
  }

  bool PeekKeyword(std::string_view kw) const {
    return cur_.kind == Tok::kIdent && cur_.text == kw;
  }

  bool AcceptKeyword(std::string_view kw) {
    if (!PeekKeyword(kw)) return false;
    Bump();
    return true;
  }

  void ExpectKeyword(std::string_view kw) {
    if (!AcceptKeyword(kw))
      FailAt(cur_.pos, "expected " + std::string(kw) + ", got '" + Spelling() +
                           "'");
  }

  ast::SelectItem ParseSelectItem() {
    ast::SelectItem item;
    item.expr = ParseAdd();
    if (AcceptKeyword("as")) {
      if (cur_.kind != Tok::kIdent)
        FailAt(cur_.pos, "expected alias after AS");
      item.alias = cur_.text;
      Bump();
    } else if (cur_.kind == Tok::kIdent && !IsClauseKeyword(cur_.text)) {
      item.alias = cur_.text;
      Bump();
    }
    return item;
  }

  static bool IsClauseKeyword(std::string_view s) {
    return s == "from" || s == "where" || s == "group" || s == "having" ||
           s == "order" || s == "limit" || s == "on" || s == "join" ||
           s == "inner" || s == "and" || s == "or" || s == "as" ||
           s == "asc" || s == "desc" || s == "between" || s == "in" ||
           s == "like" || s == "by";
  }

  ast::TableRef ParseTableRef() {
    if (cur_.kind != Tok::kIdent) FailAt(cur_.pos, "expected table name");
    ast::TableRef t{cur_.text, cur_.pos};
    Bump();
    return t;
  }

  ExprPtr ParseOr() {
    ExprPtr lhs = ParseAnd();
    while (PeekKeyword("or")) {
      const ast::Pos pos = cur_.pos;
      Bump();
      ExprPtr node = MakeExpr(Expr::Kind::kBinary, pos);
      node->op = ast::BinOp::kOr;
      node->args.push_back(std::move(lhs));
      node->args.push_back(ParseAnd());
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr ParseAnd() {
    ExprPtr lhs = ParseCmp();
    while (PeekKeyword("and")) {
      const ast::Pos pos = cur_.pos;
      Bump();
      ExprPtr node = MakeExpr(Expr::Kind::kBinary, pos);
      node->op = ast::BinOp::kAnd;
      node->args.push_back(std::move(lhs));
      node->args.push_back(ParseCmp());
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr ParseCmp() {
    ExprPtr lhs = ParseAdd();
    const ast::Pos pos = cur_.pos;
    ast::BinOp op;
    switch (cur_.kind) {
      case Tok::kLt:
        op = ast::BinOp::kLt;
        break;
      case Tok::kLe:
        op = ast::BinOp::kLe;
        break;
      case Tok::kGt:
        op = ast::BinOp::kGt;
        break;
      case Tok::kGe:
        op = ast::BinOp::kGe;
        break;
      case Tok::kEq:
        op = ast::BinOp::kEq;
        break;
      case Tok::kNe:
        op = ast::BinOp::kNe;
        break;
      default: {
        if (PeekKeyword("between")) {
          Bump();
          ExprPtr node = MakeExpr(Expr::Kind::kBetween, pos);
          node->args.push_back(std::move(lhs));
          node->args.push_back(ParseAdd());
          ExpectKeyword("and");
          node->args.push_back(ParseAdd());
          return node;
        }
        if (PeekKeyword("in")) {
          Bump();
          ExprPtr node = MakeExpr(Expr::Kind::kIn, pos);
          node->args.push_back(std::move(lhs));
          Expect(Tok::kLParen, "'('");
          node->args.push_back(ParseAdd());
          while (Accept(Tok::kComma)) node->args.push_back(ParseAdd());
          Expect(Tok::kRParen, "')'");
          return node;
        }
        if (PeekKeyword("like")) {
          Bump();
          ExprPtr node = MakeExpr(Expr::Kind::kLike, pos);
          if (cur_.kind == Tok::kString) {
            node->str = cur_.text;
            Bump();
            node->args.push_back(std::move(lhs));
            return node;
          }
          if (cur_.kind == Tok::kParam) {
            // LIKE $param: the binding is a raw substring needle (the
            // engines' Contains primitive — no wildcard interpretation).
            ExprPtr pat = MakeExpr(Expr::Kind::kParam, cur_.pos);
            pat->str = cur_.text;
            Bump();
            node->args.push_back(std::move(lhs));
            node->args.push_back(std::move(pat));
            return node;
          }
          FailAt(cur_.pos, "LIKE pattern must be a string literal or $param");
        }
        return lhs;
      }
    }
    Bump();
    ExprPtr node = MakeExpr(Expr::Kind::kBinary, pos);
    node->op = op;
    node->args.push_back(std::move(lhs));
    node->args.push_back(ParseAdd());
    return node;
  }

  ExprPtr ParseAdd() {
    ExprPtr lhs = ParseMul();
    while (cur_.kind == Tok::kPlus || cur_.kind == Tok::kMinus) {
      const ast::Pos pos = cur_.pos;
      const ast::BinOp op =
          cur_.kind == Tok::kPlus ? ast::BinOp::kAdd : ast::BinOp::kSub;
      Bump();
      ExprPtr node = MakeExpr(Expr::Kind::kBinary, pos);
      node->op = op;
      node->args.push_back(std::move(lhs));
      node->args.push_back(ParseMul());
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr ParseMul() {
    ExprPtr lhs = ParseUnary();
    while (cur_.kind == Tok::kStar || cur_.kind == Tok::kSlash) {
      const ast::Pos pos = cur_.pos;
      const ast::BinOp op =
          cur_.kind == Tok::kStar ? ast::BinOp::kMul : ast::BinOp::kDiv;
      Bump();
      ExprPtr node = MakeExpr(Expr::Kind::kBinary, pos);
      node->op = op;
      node->args.push_back(std::move(lhs));
      node->args.push_back(ParseUnary());
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr ParseUnary() {
    if (cur_.kind == Tok::kMinus) {
      const ast::Pos pos = cur_.pos;
      Bump();
      ExprPtr node = MakeExpr(Expr::Kind::kNeg, pos);
      node->args.push_back(ParseUnary());
      return node;
    }
    return ParsePrimary();
  }

  ExprPtr ParsePrimary() {
    const ast::Pos pos = cur_.pos;
    switch (cur_.kind) {
      case Tok::kInt: {
        ExprPtr e = MakeExpr(Expr::Kind::kIntLit, pos);
        e->int_val = cur_.value;
        Bump();
        return e;
      }
      case Tok::kDecimal: {
        ExprPtr e = MakeExpr(Expr::Kind::kIntLit, pos);
        e->int_val = cur_.value;
        e->scale = cur_.scale;
        Bump();
        return e;
      }
      case Tok::kString: {
        ExprPtr e = MakeExpr(Expr::Kind::kStrLit, pos);
        e->str = cur_.text;
        Bump();
        return e;
      }
      case Tok::kParam: {
        ExprPtr e = MakeExpr(Expr::Kind::kParam, pos);
        e->str = cur_.text;
        Bump();
        return e;
      }
      case Tok::kLParen: {
        Bump();
        ExprPtr e = ParseOr();
        Expect(Tok::kRParen, "')'");
        return e;
      }
      case Tok::kIdent:
        return ParseIdentExpr();
      default:
        FailAt(pos, "expected expression, got '" + Spelling() + "'");
    }
  }

  ExprPtr ParseIdentExpr() {
    const ast::Pos pos = cur_.pos;
    const std::string name = cur_.text;

    // Aggregates.
    ast::AggFn agg;
    bool is_agg = true;
    if (name == "sum")
      agg = ast::AggFn::kSum;
    else if (name == "min")
      agg = ast::AggFn::kMin;
    else if (name == "max")
      agg = ast::AggFn::kMax;
    else if (name == "avg")
      agg = ast::AggFn::kAvg;
    else if (name == "count")
      agg = ast::AggFn::kCount;
    else
      is_agg = false;
    if (is_agg) {
      Bump();
      Expect(Tok::kLParen, "'(' after aggregate");
      ExprPtr e = MakeExpr(Expr::Kind::kAgg, pos);
      e->agg = agg;
      if (agg == ast::AggFn::kCount && Accept(Tok::kStar)) {
        // COUNT(*) — no argument.
      } else {
        e->args.push_back(ParseAdd());
      }
      Expect(Tok::kRParen, "')'");
      return e;
    }

    if (name == "extract") {
      Bump();
      Expect(Tok::kLParen, "'(' after EXTRACT");
      ExpectKeyword("year");
      ExpectKeyword("from");
      ExprPtr e = MakeExpr(Expr::Kind::kYear, pos);
      e->args.push_back(ParseAdd());
      Expect(Tok::kRParen, "')'");
      return e;
    }

    if (name == "date" && Peek2IsString()) {
      Bump();
      ExprPtr e = MakeExpr(Expr::Kind::kDateLit, pos);
      e->str = cur_.text;
      const int32_t days = ParseDateOrFail(cur_.text, cur_.pos);
      e->int_val = days;
      Bump();
      return e;
    }

    // Column reference, optionally qualified.
    Bump();
    ExprPtr e = MakeExpr(Expr::Kind::kColumn, pos);
    if (Accept(Tok::kDot)) {
      if (cur_.kind != Tok::kIdent)
        FailAt(cur_.pos, "expected column name after '.'");
      e->table = name;
      e->str = cur_.text;
      Bump();
    } else {
      e->str = name;
    }
    return e;
  }

  // DATE 'lit' needs one token of lookahead ("date" is also a valid table
  // name in SSB); the lexer is a cheap value (view + offsets), so peek on a
  // copy.
  bool Peek2IsString() const {
    Lexer copy = lexer_;
    return copy.Next().kind == Tok::kString;
  }

  static int32_t ParseDateOrFail(const std::string& iso, ast::Pos pos) {
    // YYYY-MM-DD, strictly.
    const auto bad = [&]() -> int32_t {
      FailAt(pos, "invalid date literal '" + iso + "' (want YYYY-MM-DD)");
    };
    if (iso.size() != 10 || iso[4] != '-' || iso[7] != '-') return bad();
    for (size_t i : {0u, 1u, 2u, 3u, 5u, 6u, 8u, 9u})
      if (!std::isdigit(static_cast<unsigned char>(iso[i]))) return bad();
    return runtime::DateFromString(iso);
  }

  Lexer lexer_;
  Token cur_;
};

}  // namespace

ast::Select Parse(std::string_view text) {
  Parser parser(text);
  return parser.ParseQuery();
}

}  // namespace vcq::sql
