#ifndef VCQ_SQL_RESULT_H_
#define VCQ_SQL_RESULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/query_result.h"
#include "sql/logical.h"

// Shared result materialization for both SQL lowerings. Byte-identical
// results across engines come from funneling every execution through one
// writer: each engine produces untyped rows of SqlValue over the logical
// slot layout (values first, then aggregates — see logical.h), and Render
// applies one deterministic total order (ORDER BY keys, then every visible
// column left to right as tiebreak), one LIMIT, and one ResultBuilder
// rendering per column kind. Engines never touch ResultBuilder themselves.

namespace vcq::sql {

struct SqlValue {
  int64_t num = 0;
  std::string str;
  bool is_str = false;

  static SqlValue Num(int64_t v) { return SqlValue{v, {}, false}; }
  static SqlValue Str(std::string s) {
    return SqlValue{0, std::move(s), true};
  }
};

using SqlRow = std::vector<SqlValue>;

struct RenderCol {
  enum class Kind : uint8_t { kInt, kNumeric, kDate, kStr, kAvg };
  std::string name;
  Kind kind = Kind::kInt;
  int scale = 0;            // kNumeric: render scale; kAvg: input scale
  int out_scale = 2;        // kAvg: quotient scale (max(2, input scale))
  uint32_t slot = 0;        // row slot (kAvg: the SUM slot)
  uint32_t count_slot = 0;  // kAvg: the COUNT slot
};

struct ResultSpec {
  std::vector<RenderCol> columns;
  std::vector<std::pair<uint32_t, bool>> order;  // (column index, desc)
  uint64_t limit = UINT64_MAX;
};

/// Derives the spec (column kinds, slots, order, limit) from a bound query.
ResultSpec SpecFor(const BoundQuery& q);

/// Sorts, limits, and renders rows into the engine-independent result.
runtime::QueryResult Render(const ResultSpec& spec, std::vector<SqlRow> rows);

}  // namespace vcq::sql

#endif  // VCQ_SQL_RESULT_H_
