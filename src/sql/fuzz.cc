#include "sql/fuzz.h"

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "common/check.h"

namespace vcq::sql {
namespace {

/// One foreign-key edge of the workload graph: joining `a` to `b` is
/// equality on `cond` (composite keys are pre-joined conjunctions).
struct FkEdge {
  const char* a;
  const char* b;
  const char* cond;
};

constexpr FkEdge kTpchEdges[] = {
    {"lineitem", "orders", "l_orderkey = o_orderkey"},
    {"orders", "customer", "o_custkey = c_custkey"},
    {"lineitem", "partsupp",
     "l_partkey = ps_partkey AND l_suppkey = ps_suppkey"},
    {"partsupp", "part", "ps_partkey = p_partkey"},
    {"partsupp", "supplier", "ps_suppkey = s_suppkey"},
    {"supplier", "nation", "s_nationkey = n_nationkey"},
    {"customer", "nation", "c_nationkey = n_nationkey"},
    {"nation", "region", "n_regionkey = r_regionkey"},
};

constexpr FkEdge kSsbEdges[] = {
    {"lineorder", "date", "lo_orderdate = d_datekey"},
    {"lineorder", "customer", "lo_custkey = c_custkey"},
    {"lineorder", "supplier", "lo_suppkey = s_suppkey"},
    {"lineorder", "part", "lo_partkey = p_partkey"},
};

class Generator {
 public:
  Generator(const Catalog& catalog, uint64_t seed)
      : catalog_(catalog), rng_(seed) {
    const bool ssb = catalog.Find("lineorder") != nullptr;
    edges_ = ssb ? kSsbEdges : kTpchEdges;
    edge_count_ = ssb ? std::size(kSsbEdges) : std::size(kTpchEdges);
  }

  std::string Run() {
    PickTables();
    CollectColumns();
    const bool grouped = Chance(55);
    const bool projection = !grouped && Chance(35) && !columns_.empty();
    std::string select;
    std::string tail;
    if (projection) {
      select = ProjectionList();
    } else {
      if (grouped) PickGroupKeys();
      select = AggregateList();
      if (!group_keys_.empty()) {
        tail += "GROUP BY ";
        for (size_t i = 0; i < group_keys_.size(); ++i) {
          if (i) tail += ", ";
          tail += group_keys_[i]->name;
        }
        tail += "\n";
      }
    }
    std::string sql = "SELECT " + select + "\nFROM ";
    for (size_t i = 0; i < tables_.size(); ++i) {
      if (i) sql += ", ";
      sql += tables_[i]->name;
    }
    sql += "\n";
    std::vector<std::string> preds = join_conds_;
    const size_t npred = Uniform(0, 3);
    for (size_t i = 0; i < npred; ++i) {
      std::string p = RandomPredicate();
      if (!p.empty()) preds.push_back(std::move(p));
    }
    if (!preds.empty()) {
      sql += "WHERE ";
      for (size_t i = 0; i < preds.size(); ++i) {
        if (i) sql += "\n  AND ";
        sql += preds[i];
      }
      sql += "\n";
    }
    sql += tail;
    if (Chance(50) && output_count_ > 0) {
      sql += "ORDER BY ";
      const size_t nord = Uniform(1, std::min<size_t>(2, output_count_));
      size_t first = Uniform(1, output_count_);
      for (size_t i = 0; i < nord; ++i) {
        if (i) sql += ", ";
        sql += std::to_string((first + i - 1) % output_count_ + 1);
        if (Chance(40)) sql += " DESC";
      }
      sql += "\n";
    }
    if (Chance(30)) sql += "LIMIT " + std::to_string(Uniform(1, 50)) + "\n";
    return sql;
  }

 private:
  bool Chance(int percent) { return static_cast<int>(Uniform(1, 100)) <=
                                    percent; }

  size_t Uniform(size_t lo, size_t hi) {
    return std::uniform_int_distribution<size_t>(lo, hi)(rng_);
  }

  int64_t Uniform64(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(rng_);
  }

  /// Grows a random connected subtree of the FK graph (1-3 tables), so the
  /// binder's no-cross-product rule always holds and the join set is
  /// acyclic.
  void PickTables() {
    std::vector<const char*> names;
    for (const TableDef& t : catalog_.tables()) names.push_back(t.name.c_str());
    const char* start = names[Uniform(0, names.size() - 1)];
    std::vector<std::string> chosen{start};
    const size_t want = Uniform(1, 3);
    while (chosen.size() < want) {
      std::vector<const FkEdge*> frontier;
      for (size_t e = 0; e < edge_count_; ++e) {
        const FkEdge& edge = edges_[e];
        const bool has_a = Has(chosen, edge.a);
        const bool has_b = Has(chosen, edge.b);
        if (has_a != has_b) frontier.push_back(&edge);
      }
      if (frontier.empty()) break;
      const FkEdge* pick = frontier[Uniform(0, frontier.size() - 1)];
      chosen.push_back(Has(chosen, pick->a) ? pick->b : pick->a);
      join_conds_.push_back(pick->cond);
    }
    for (const std::string& name : chosen) {
      const TableDef* def = catalog_.Find(name);
      VCQ_CHECK_MSG(def != nullptr, "fuzz table missing from catalog");
      tables_.push_back(def);
    }
  }

  static bool Has(const std::vector<std::string>& v, const char* s) {
    return std::find(v.begin(), v.end(), s) != v.end();
  }

  void CollectColumns() {
    for (const TableDef* t : tables_) {
      for (const ColumnDef& c : t->columns) {
        columns_.push_back(&c);
        owner_.push_back(t);
        if (c.type.kind == TypeKind::kNumeric) numerics_.push_back(&c);
      }
    }
  }

  /// Renders a fixed-point literal at the column's scale ("0.05", "-3.20").
  static std::string LitText(int64_t v, int scale) {
    if (v < 0) return "-" + LitText(-v, scale);
    if (scale == 0) return std::to_string(v);
    std::string digits = std::to_string(v);
    const size_t need = static_cast<size_t>(scale) + 1;
    if (digits.size() < need)
      digits.insert(0, need - digits.size(), '0');
    digits.insert(digits.size() - static_cast<size_t>(scale), ".");
    return digits;
  }

  std::string RandomPredicate() {
    const ColumnDef* col = columns_[Uniform(0, columns_.size() - 1)];
    const TableDef* owner = owner_[ColumnIndex(col)];
    if (col->type.kind == TypeKind::kString) {
      if (owner->tuple_count == 0) return {};
      const std::string a = SampleString(
          catalog_, *owner, *col, Uniform(0, owner->tuple_count - 1));
      if (Chance(30)) {
        const std::string b = SampleString(
            catalog_, *owner, *col, Uniform(0, owner->tuple_count - 1));
        return col->name + " IN ('" + a + "', '" + b + "')";
      }
      return col->name + " = '" + a + "'";
    }
    if (col->type.kind == TypeKind::kDate || !col->stats.valid) return {};
    const int64_t lo = col->stats.min;
    const int64_t hi = col->stats.max;
    if (Chance(30)) {
      int64_t a = Uniform64(lo, hi);
      int64_t b = Uniform64(lo, hi);
      if (a > b) std::swap(a, b);
      return col->name + " BETWEEN " + LitText(a, col->type.scale) + " AND " +
             LitText(b, col->type.scale);
    }
    static constexpr const char* kOps[] = {"<", "<=", ">", ">=", "="};
    // Equality only for low-cardinality domains, so it is not always empty.
    const size_t op = hi - lo < 100 ? Uniform(0, 4) : Uniform(0, 3);
    return col->name + " " + kOps[op] + " " +
           LitText(Uniform64(lo, hi), col->type.scale);
  }

  size_t ColumnIndex(const ColumnDef* col) const {
    for (size_t i = 0; i < columns_.size(); ++i)
      if (columns_[i] == col) return i;
    return 0;
  }

  void PickGroupKeys() {
    const size_t want = Uniform(1, 2);
    for (size_t tries = 0; group_keys_.size() < want && tries < 8; ++tries) {
      const ColumnDef* col = columns_[Uniform(0, columns_.size() - 1)];
      if (std::find(group_keys_.begin(), group_keys_.end(), col) !=
          group_keys_.end())
        continue;
      group_keys_.push_back(col);
    }
  }

  /// A numeric scalar usable as an aggregate argument: a plain column or
  /// an additive two-column expression (multiplication excluded — summing
  /// scale-4 products over a fuzz-chosen join can overflow int64).
  std::string NumericScalar() {
    const ColumnDef* a = numerics_[Uniform(0, numerics_.size() - 1)];
    if (Chance(30) && numerics_.size() > 1) {
      const ColumnDef* b = numerics_[Uniform(0, numerics_.size() - 1)];
      return a->name + (Chance(50) ? " + " : " - ") + b->name;
    }
    return a->name;
  }

  std::string AggregateList() {
    std::string out;
    size_t n = 0;
    for (const ColumnDef* key : group_keys_) {
      if (n++) out += ", ";
      out += key->name;
    }
    const size_t naggs = Uniform(1, 3);
    for (size_t i = 0; i < naggs; ++i) {
      if (n++) out += ", ";
      const size_t kind = numerics_.empty() ? 0 : Uniform(0, 4);
      switch (kind) {
        case 0: out += "COUNT(*)"; break;
        case 1: out += "SUM(" + NumericScalar() + ")"; break;
        case 2: out += "MIN(" + NumericScalar() + ")"; break;
        case 3: out += "MAX(" + NumericScalar() + ")"; break;
        default: out += "AVG(" + NumericScalar() + ")"; break;
      }
      out += " AS a" + std::to_string(i);
    }
    output_count_ = n;
    return out;
  }

  std::string ProjectionList() {
    const size_t n = Uniform(1, std::min<size_t>(4, columns_.size()));
    std::string out;
    for (size_t i = 0; i < n; ++i) {
      if (i) out += ", ";
      out += columns_[Uniform(0, columns_.size() - 1)]->name;
    }
    output_count_ = n;
    return out;
  }

  const Catalog& catalog_;
  std::mt19937_64 rng_;
  const FkEdge* edges_;
  size_t edge_count_;
  std::vector<const TableDef*> tables_;
  std::vector<std::string> join_conds_;
  std::vector<const ColumnDef*> columns_;
  std::vector<const TableDef*> owner_;
  std::vector<const ColumnDef*> numerics_;
  std::vector<const ColumnDef*> group_keys_;
  size_t output_count_ = 0;
};

}  // namespace

std::string GenerateFuzzQuery(const Catalog& catalog, uint64_t seed) {
  return Generator(catalog, seed).Run();
}

}  // namespace vcq::sql
