#ifndef VCQ_SQL_LOGICAL_H_
#define VCQ_SQL_LOGICAL_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/params.h"
#include "sql/ast.h"
#include "sql/catalog.h"

// The typed logical plan: what the binder produces from a parsed AST, what
// the optimizer rearranges, and what both lowerings (lower.h) consume. The
// shape is intentionally normalized rather than general:
//
//   * WHERE is a conjunction of Predicates; each predicate is "scalar
//     expression CMP constant-or-param" (BETWEEN is split in the binder,
//     col-vs-col within one table becomes (a-b) CMP 0), an EqOr2
//     two-constant IN, or a substring Contains.
//   * Cross-table equalities become JoinEdges; the join tree itself is the
//     optimizer's output (optimizer.h), not part of BoundQuery.
//   * Group keys / projection outputs / aggregate arguments are Scalar
//     trees over {column, constant, +, -, *, year}.
//
// Every scalar carries its SqlType; the binder has already unified scales,
// so lowering never rescales.

namespace vcq::sql {

/// (table, column) — indexes into BoundQuery::tables and
/// TableDef::columns respectively.
struct ColumnId {
  uint32_t table = 0;
  uint32_t col = 0;

  friend bool operator==(const ColumnId& a, const ColumnId& b) {
    return a.table == b.table && a.col == b.col;
  }
};

enum class ScalarOp : uint8_t { kColumn, kConst, kAdd, kSub, kMul, kYear };

struct Scalar {
  ScalarOp op = ScalarOp::kConst;
  SqlType type;
  ast::Pos pos;
  ColumnId col;       // kColumn
  int64_t value = 0;  // kConst, at type.scale
  std::vector<Scalar> args;

  bool IsColumn() const { return op == ScalarOp::kColumn; }
  bool IsConst() const { return op == ScalarOp::kConst; }
  /// Bitmask of referenced BoundQuery::tables indices.
  uint32_t TableMask() const;
};

bool ScalarEqual(const Scalar& a, const Scalar& b);

/// Engine-independent comparison operator (mapped onto
/// tectorwise::CmpOp / closure predicates by the lowerings).
enum class CmpOp : uint8_t { kLt, kLe, kGt, kGe, kEq };

const char* CmpOpName(CmpOp op);

/// Right-hand side of a predicate: a typed constant or a named parameter.
/// Numeric/date constants are raw fixed-point values at the lhs scale.
struct Operand {
  bool is_param = false;
  std::string param;  // name, when is_param
  int64_t num = 0;    // numeric/date constant
  std::string str;    // string constant
};

enum class PredKind : uint8_t {
  kCmp,      // lhs CMP rhs[0]
  kEqOr2,    // lhs == rhs[0] || lhs == rhs[1]  (IN of two values)
  kContains  // substring match, string column only
};

struct Predicate {
  PredKind kind = PredKind::kCmp;
  CmpOp cmp = CmpOp::kEq;
  Scalar lhs;                // plain column for string predicates
  std::vector<Operand> rhs;  // 1 for kCmp/kContains, 2 for kEqOr2
  bool is_string = false;
  ast::Pos pos;

  uint32_t TableMask() const { return lhs.TableMask(); }
};

/// Equi-join between two tables: one or two key-column pairs (both sides
/// share each pair's physical integer type).
struct JoinEdge {
  std::vector<std::array<ColumnId, 2>> keys;  // {left col, right col}
  uint32_t mask = 0;                          // the two tables' bits
};

struct Aggregate {
  ast::AggFn fn = ast::AggFn::kCount;  // kAvg never appears here: the
                                       // binder lowers AVG to SUM + a
                                       // shared hidden COUNT
  bool has_arg = false;                // false for COUNT(*)
  Scalar arg;
  SqlType type;  // result type (sum/min/max keep the arg type)
};

/// One result column. Slot layout convention shared by both lowerings and
/// the result writer: slots [0, values) hold the value/group-key scalars,
/// slots [values, values+aggs) the aggregates, in declaration order.
struct Output {
  enum class Src : uint8_t { kValue, kAgg, kAvg };
  std::string name;
  Src src = Src::kValue;
  uint32_t index = 0;        // into values (kValue) or aggs (kAgg/kAvg sum)
  uint32_t count_index = 0;  // kAvg: the companion COUNT aggregate
  SqlType type;
};

/// HAVING conjunct: aggregate CMP constant-or-param (the aggregate is by
/// index into BoundQuery::aggs; hidden aggregates are appended as needed).
struct HavingPred {
  uint32_t agg = 0;
  CmpOp cmp = CmpOp::kEq;
  Operand rhs;
  ast::Pos pos;
};

struct ParamDecl {
  std::string name;
  runtime::ParamType type;
};

struct BoundQuery {
  const Catalog* catalog = nullptr;
  std::vector<uint32_t> tables;  // indexes into catalog->tables()
  std::vector<Predicate> filters;
  std::vector<JoinEdge> joins;  // one edge per joined table pair
  /// Group keys when `grouped`, otherwise the projection expressions.
  std::vector<Scalar> values;
  bool grouped = false;
  std::vector<Aggregate> aggs;  // non-empty = aggregate query
  std::vector<Output> outputs;
  std::vector<HavingPred> having;
  std::vector<std::pair<uint32_t, bool>> order_by;  // (output idx, desc)
  uint64_t limit = UINT64_MAX;
  std::vector<ParamDecl> params;

  const TableDef& Table(uint32_t t) const {
    return catalog->tables()[tables[t]];
  }
  const ColumnDef& Column(ColumnId id) const {
    return Table(id.table).columns[id.col];
  }
};

/// Pretty-printer for the logical plan (EXPLAIN "logical" stage).
std::string ToString(const BoundQuery& q);
std::string ToString(const BoundQuery& q, const Scalar& s);

}  // namespace vcq::sql

#endif  // VCQ_SQL_LOGICAL_H_
