#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "runtime/cancel.h"
#include "runtime/types.h"
#include "sql/lower.h"
#include "sql/result.h"
#include "volcano/volcano.h"

// Volcano lowering: interprets the optimizer's join tree with the
// tuple-at-a-time operators. Built fresh per execution (parameters are
// resolved into the closures up front). Rows are int64 slots, so:
//
//   * string VALUE columns (group keys, projections) ride as per-column
//     dictionary codes — the dictionary is sorted, so code order equals
//     string order and equality joins/groupings on codes are exact; the
//     drain loop decodes for rendering.
//   * string PREDICATES are evaluated against the typed column at the
//     scan into 0/1 pseudo-slots, carried like any other slot to
//     wherever the optimizer placed the filter (above the last join when
//     pushdown is off).
//
// Each join is wrapped in a counting adapter; RunVolcano reports the
// per-join output cardinalities as the ablation bench's ground-truth
// "intermediate tuples" metric.

namespace vcq::sql {
namespace {

using runtime::Char;
using runtime::QueryOptions;
using runtime::QueryParams;
using runtime::QueryResult;
using runtime::TypeTag;
using runtime::Varchar;
using volcano::GroupByOp;
using volcano::HashJoinOp;
using volcano::Operator;
using volcano::ProjectOp;
using volcano::Row;
using volcano::ScanOp;
using volcano::SelectOp;

/// Needed-set keys: column keys are (table << 32 | col); string-predicate
/// pseudo-slots are (kPredBit | filter index). Disjoint since table
/// indexes are at most 15.
constexpr uint64_t kPredBit = 1ull << 63;

uint64_t CKey(ColumnId id) {
  return (static_cast<uint64_t>(id.table) << 32) | id.col;
}

int64_t PackKeys(int64_t hi, int64_t lo) {
  return static_cast<int64_t>((static_cast<uint64_t>(hi) << 32) |
                              static_cast<uint32_t>(lo));
}

bool CmpApply(CmpOp op, int64_t a, int64_t b) {
  switch (op) {
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kGe:
      return a >= b;
    case CmpOp::kEq:
      return a == b;
  }
  return false;
}

template <typename F>
decltype(auto) WithPhys(const ColumnDef& col, F&& f) {
  switch (col.tag) {
    case TypeTag::kInt32:
      return f(static_cast<int32_t*>(nullptr));
    case TypeTag::kInt64:
      return f(static_cast<int64_t*>(nullptr));
    case TypeTag::kVarchar:
      VCQ_CHECK(col.elem_size == sizeof(Varchar<55>));
      return f(static_cast<Varchar<55>*>(nullptr));
    case TypeTag::kChar:
      switch (col.elem_size) {
        case 1:
          return f(static_cast<Char<1>*>(nullptr));
        case 6:
          return f(static_cast<Char<6>*>(nullptr));
        case 7:
          return f(static_cast<Char<7>*>(nullptr));
        case 9:
          return f(static_cast<Char<9>*>(nullptr));
        case 10:
          return f(static_cast<Char<10>*>(nullptr));
        case 12:
          return f(static_cast<Char<12>*>(nullptr));
        case 15:
          return f(static_cast<Char<15>*>(nullptr));
        case 25:
          return f(static_cast<Char<25>*>(nullptr));
        default:
          break;
      }
      break;
  }
  VCQ_CHECK_MSG(false, "unsupported physical column type");
  std::abort();
}

/// Join-output counter for VolcanoStats.
class CountingOp : public Operator {
 public:
  CountingOp(std::unique_ptr<Operator> child, std::shared_ptr<uint64_t> n)
      : child_(std::move(child)), n_(std::move(n)) {}

  void Open() override { child_->Open(); }
  bool Next(Row* out) override {
    if (!child_->Next(out)) return false;
    ++*n_;
    return true;
  }
  size_t Width() const override { return child_->Width(); }

 private:
  std::unique_ptr<Operator> child_;
  std::shared_ptr<uint64_t> n_;
};

/// Ordered dictionary over one string column.
struct Dict {
  std::vector<std::string> values;                // code → string
  std::shared_ptr<std::vector<int32_t>> codes;    // row → code
};

struct VEnv {
  std::unique_ptr<Operator> op;
  std::unordered_map<uint64_t, size_t> slots;

  size_t Slot(uint64_t key) const {
    const auto it = slots.find(key);
    VCQ_CHECK_MSG(it != slots.end(), "internal: slot not carried");
    return it->second;
  }
  size_t Slot(ColumnId id) const { return Slot(CKey(id)); }
};

using RowFn = std::function<int64_t(const Row&)>;

class Lowerer {
 public:
  Lowerer(const PhysicalPlan& plan, const QueryOptions& opt,
          const QueryParams& params)
      : p_(plan), q_(plan.query), opt_(opt), params_(params) {}

  QueryResult Run(VolcanoStats* stats) {
    std::set<uint64_t> needed;
    for (const Scalar& v : q_.values) Collect(v, &needed);
    for (const Aggregate& a : q_.aggs)
      if (a.has_arg) Collect(a.arg, &needed);
    VEnv env = Lower(*p_.root, std::move(needed));

    const ResultSpec spec = SpecFor(q_);
    std::vector<SqlRow> rows;
    if (q_.aggs.empty())
      Project(std::move(env), &rows);
    else if (q_.grouped)
      Group(std::move(env), &rows);
    else
      Fold(std::move(env), &rows);

    if (stats != nullptr) {
      stats->joins.clear();
      stats->intermediate_tuples = 0;
      for (const auto& [label, n] : join_counts_) {
        stats->joins.push_back({label, *n});
        stats->intermediate_tuples += *n;
      }
    }
    if (runtime::Interrupted(opt_.cancel))
      return QueryResult::Failed(opt_.cancel->status());
    return Render(spec, std::move(rows));
  }

 private:
  void Collect(const Scalar& s, std::set<uint64_t>* out) {
    if (s.IsColumn()) out->insert(CKey(s.col));
    for (const Scalar& a : s.args) Collect(a, out);
  }

  int64_t NumOperand(const Operand& o) const {
    return o.is_param ? params_.Int(o.param) : o.num;
  }
  std::string StrOperand(const Operand& o) const {
    return o.is_param ? params_.Str(o.param) : o.str;
  }

  uint32_t TableOf(uint64_t key) const {
    if (key & kPredBit)
      return q_.filters[static_cast<uint32_t>(key)].lhs.col.table;
    return static_cast<uint32_t>(key >> 32);
  }

  const Dict& DictFor(ColumnId id) {
    const auto [it, inserted] = dicts_.try_emplace(CKey(id));
    Dict& d = it->second;
    if (!inserted) return d;
    const ColumnDef& c = q_.Column(id);
    const runtime::Relation& rel = q_.catalog->db()[q_.Table(id.table).name];
    WithPhys(c, [&](auto* tp) {
      using T = std::remove_pointer_t<decltype(tp)>;
      if constexpr (std::is_arithmetic_v<T>) {
        VCQ_CHECK_MSG(false, "dictionary over a numeric column");
      } else {
        const auto span = rel.Col<T>(c.name);
        std::vector<std::string> vals;
        vals.reserve(span.size());
        for (const T& v : span) vals.emplace_back(v.View());
        d.values = vals;
        std::sort(d.values.begin(), d.values.end());
        d.values.erase(std::unique(d.values.begin(), d.values.end()),
                       d.values.end());
        d.codes = std::make_shared<std::vector<int32_t>>();
        d.codes->reserve(vals.size());
        for (const std::string& s : vals)
          d.codes->push_back(static_cast<int32_t>(
              std::lower_bound(d.values.begin(), d.values.end(), s) -
              d.values.begin()));
      }
    });
    return d;
  }

  /// Typed per-row evaluator for a string predicate, bound to the scan.
  std::function<bool(size_t)> StringPred(const Predicate& p) {
    const ColumnDef& c = q_.Column(p.lhs.col);
    const runtime::Relation& rel =
        q_.catalog->db()[q_.Table(p.lhs.col.table).name];
    return WithPhys(c, [&](auto* tp) -> std::function<bool(size_t)> {
      using T = std::remove_pointer_t<decltype(tp)>;
      if constexpr (std::is_arithmetic_v<T>) {
        VCQ_CHECK_MSG(false, "string predicate on a numeric column");
        return {};
      } else {
        const auto span = rel.Col<T>(c.name);
        switch (p.kind) {
          case PredKind::kContains:
            if constexpr (std::is_same_v<T, Varchar<55>>) {
              const std::string needle = StrOperand(p.rhs[0]);
              return [span, needle](size_t i) {
                return span[i].Contains(needle);
              };
            } else {
              VCQ_CHECK_MSG(false, "substring match on non-varchar column");
              return {};
            }
          case PredKind::kEqOr2: {
            const T a = T::From(StrOperand(p.rhs[0]));
            const T b = T::From(StrOperand(p.rhs[1]));
            return [span, a, b](size_t i) {
              return span[i] == a || span[i] == b;
            };
          }
          case PredKind::kCmp: {
            const T v = T::From(StrOperand(p.rhs[0]));
            const CmpOp op = p.cmp;
            return [span, v, op](size_t i) {
              switch (op) {
                case CmpOp::kLt:
                  return span[i] < v;
                case CmpOp::kLe:
                  return span[i] <= v;
                case CmpOp::kGt:
                  return span[i] > v;
                case CmpOp::kGe:
                  return span[i] >= v;
                case CmpOp::kEq:
                  return span[i] == v;
              }
              return false;
            };
          }
        }
        return {};
      }
    });
  }

  RowFn Eval(const Scalar& s, const VEnv& env) const {
    switch (s.op) {
      case ScalarOp::kColumn: {
        const size_t slot = env.Slot(s.col);
        return [slot](const Row& r) { return r[slot]; };
      }
      case ScalarOp::kConst: {
        const int64_t v = s.value;
        return [v](const Row&) { return v; };
      }
      case ScalarOp::kYear: {
        const RowFn a = Eval(s.args[0], env);
        return [a](const Row& r) {
          return runtime::YearOf(static_cast<int32_t>(a(r)));
        };
      }
      case ScalarOp::kAdd: {
        const RowFn a = Eval(s.args[0], env);
        const RowFn b = Eval(s.args[1], env);
        return [a, b](const Row& r) { return a(r) + b(r); };
      }
      case ScalarOp::kSub: {
        const RowFn a = Eval(s.args[0], env);
        const RowFn b = Eval(s.args[1], env);
        return [a, b](const Row& r) { return a(r) - b(r); };
      }
      case ScalarOp::kMul: {
        const RowFn a = Eval(s.args[0], env);
        const RowFn b = Eval(s.args[1], env);
        return [a, b](const Row& r) { return a(r) * b(r); };
      }
    }
    VCQ_CHECK_MSG(false, "unhandled scalar op");
    std::abort();
  }

  void ApplyFilters(const JoinTree& t, VEnv* env) {
    if (t.filters.empty()) return;
    std::vector<std::function<bool(const Row&)>> preds;
    for (const uint32_t f : t.filters) {
      const Predicate& p = q_.filters[f];
      if (p.is_string) {
        const size_t slot = env->Slot(kPredBit | f);
        preds.push_back([slot](const Row& r) { return r[slot] != 0; });
        continue;
      }
      const RowFn lhs = Eval(p.lhs, *env);
      switch (p.kind) {
        case PredKind::kEqOr2: {
          const int64_t a = NumOperand(p.rhs[0]);
          const int64_t b = NumOperand(p.rhs[1]);
          preds.push_back([lhs, a, b](const Row& r) {
            const int64_t v = lhs(r);
            return v == a || v == b;
          });
          break;
        }
        case PredKind::kCmp: {
          const int64_t v = NumOperand(p.rhs[0]);
          const CmpOp op = p.cmp;
          preds.push_back(
              [lhs, v, op](const Row& r) { return CmpApply(op, lhs(r), v); });
          break;
        }
        case PredKind::kContains:
          VCQ_CHECK_MSG(false, "substring predicate on a numeric column");
      }
    }
    env->op = std::make_unique<SelectOp>(
        std::move(env->op), [preds](const Row& r) {
          for (const auto& p : preds)
            if (!p(r)) return false;
          return true;
        });
  }

  VEnv Lower(const JoinTree& t, std::set<uint64_t> needed) {
    for (const uint32_t f : t.filters) {
      const Predicate& p = q_.filters[f];
      if (p.is_string)
        needed.insert(kPredBit | f);
      else
        Collect(p.lhs, &needed);
    }
    return t.IsLeaf() ? Leaf(t, needed) : Join(t, needed);
  }

  VEnv Leaf(const JoinTree& t, const std::set<uint64_t>& needed) {
    const auto table = static_cast<uint32_t>(t.table);
    const TableDef& def = q_.Table(table);
    const runtime::Relation& rel = q_.catalog->db()[def.name];
    auto scan = std::make_unique<ScanOp>(def.tuple_count, opt_.cancel);
    VEnv env;
    for (const uint64_t key : needed) {
      if (TableOf(key) != table) continue;
      if (key & kPredBit) {
        const auto fn = StringPred(q_.filters[static_cast<uint32_t>(key)]);
        env.slots[key] =
            scan->AddAccessor([fn](size_t i) { return fn(i) ? 1 : 0; });
        continue;
      }
      const ColumnId id{static_cast<uint32_t>(key >> 32),
                        static_cast<uint32_t>(key)};
      const ColumnDef& c = q_.Column(id);
      env.slots[key] = WithPhys(c, [&](auto* tp) -> size_t {
        using T = std::remove_pointer_t<decltype(tp)>;
        if constexpr (std::is_arithmetic_v<T>) {
          const auto span = rel.Col<T>(c.name);
          return scan->AddAccessor(
              [span](size_t i) { return static_cast<int64_t>(span[i]); });
        } else {
          const auto codes = DictFor(id).codes;
          return scan->AddAccessor(
              [codes](size_t i) { return (*codes)[i]; });
        }
      });
    }
    env.op = std::move(scan);
    ApplyFilters(t, &env);
    return env;
  }

  std::string MaskNames(uint32_t mask) const {
    std::string out;
    for (uint32_t i = 0; i < q_.tables.size(); ++i) {
      if (((mask >> i) & 1) == 0) continue;
      if (!out.empty()) out += ",";
      out += q_.Table(i).name;
    }
    return out;
  }

  VEnv Join(const JoinTree& t, const std::set<uint64_t>& needed) {
    std::set<uint64_t> bneed;
    std::set<uint64_t> pneed;
    for (const uint64_t key : needed)
      ((t.build->mask >> TableOf(key)) & 1 ? bneed : pneed).insert(key);
    // keys[i] = {build column, probe column} (optimizer orientation).
    for (const auto& k : t.keys) {
      bneed.insert(CKey(k[0]));
      pneed.insert(CKey(k[1]));
    }
    VEnv b = Lower(*t.build, std::move(bneed));
    VEnv p = Lower(*t.probe, std::move(pneed));

    size_t bkey;
    size_t pkey;
    if (t.keys.size() == 1) {
      bkey = b.Slot(t.keys[0][0]);
      pkey = p.Slot(t.keys[0][1]);
    } else {
      // Composite (two int32 pairs, binder-enforced): pack both sides.
      VCQ_CHECK(t.keys.size() == 2);
      auto bproj = std::make_unique<ProjectOp>(std::move(b.op));
      const size_t b0 = b.Slot(t.keys[0][0]);
      const size_t b1 = b.Slot(t.keys[1][0]);
      bkey = bproj->AddExpr(
          [b0, b1](const Row& r) { return PackKeys(r[b0], r[b1]); });
      b.op = std::move(bproj);
      auto pproj = std::make_unique<ProjectOp>(std::move(p.op));
      const size_t p0 = p.Slot(t.keys[0][1]);
      const size_t p1 = p.Slot(t.keys[1][1]);
      pkey = pproj->AddExpr(
          [p0, p1](const Row& r) { return PackKeys(r[p0], r[p1]); });
      p.op = std::move(pproj);
    }

    std::vector<size_t> payload;
    std::vector<uint64_t> payload_keys;
    for (const uint64_t key : needed) {
      if (((t.build->mask >> TableOf(key)) & 1) == 0) continue;
      payload_keys.push_back(key);
      payload.push_back(b.Slot(key));
    }
    const size_t probe_width = p.op->Width();

    VEnv env;
    for (const uint64_t key : needed)
      if (((t.build->mask >> TableOf(key)) & 1) == 0)
        env.slots[key] = p.Slot(key);
    for (size_t i = 0; i < payload_keys.size(); ++i)
      env.slots[payload_keys[i]] = probe_width + i;

    auto join = std::make_unique<HashJoinOp>(std::move(b.op), std::move(p.op),
                                             bkey, pkey, std::move(payload));
    auto n = std::make_shared<uint64_t>(0);
    join_counts_.emplace_back(
        MaskNames(t.build->mask) + " x " + MaskNames(t.probe->mask), n);
    env.op = std::make_unique<CountingOp>(std::move(join), std::move(n));
    ApplyFilters(t, &env);
    return env;
  }

  /// Per-output-slot decoder used by the drain loops.
  std::function<SqlValue(const Row&, size_t)> Decoder(const Scalar& v,
                                                     const VEnv& env) {
    if (v.IsColumn() && v.type.kind == TypeKind::kString) {
      const Dict* d = &DictFor(v.col);
      return [d](const Row& r, size_t slot) {
        return SqlValue::Str(d->values[static_cast<size_t>(r[slot])]);
      };
    }
    return [](const Row& r, size_t slot) { return SqlValue::Num(r[slot]); };
  }

  void Project(VEnv env, std::vector<SqlRow>* rows) {
    std::vector<RowFn> fns;
    std::vector<std::function<SqlValue(int64_t)>> decode;
    for (const Scalar& v : q_.values) {
      fns.push_back(Eval(v, env));
      if (v.IsColumn() && v.type.kind == TypeKind::kString) {
        const Dict* d = &DictFor(v.col);
        decode.emplace_back([d](int64_t code) {
          return SqlValue::Str(d->values[static_cast<size_t>(code)]);
        });
      } else {
        decode.emplace_back(
            [](int64_t x) { return SqlValue::Num(x); });
      }
    }
    env.op->Open();
    Row row;
    while (env.op->Next(&row)) {
      SqlRow out;
      out.reserve(fns.size());
      for (size_t i = 0; i < fns.size(); ++i)
        out.push_back(decode[i](fns[i](row)));
      rows->push_back(std::move(out));
    }
  }

  void Group(VEnv env, std::vector<SqlRow>* rows) {
    std::unique_ptr<Operator> op = std::move(env.op);
    ProjectOp* proj = nullptr;
    auto ensure_proj = [&]() -> ProjectOp& {
      if (proj == nullptr) {
        auto p = std::make_unique<ProjectOp>(std::move(op));
        proj = p.get();
        op = std::move(p);
      }
      return *proj;
    };
    std::vector<size_t> key_slots;
    for (const Scalar& v : q_.values) {
      if (v.IsColumn()) {
        key_slots.push_back(env.Slot(v.col));
        continue;
      }
      const RowFn fn = Eval(v, env);
      key_slots.push_back(ensure_proj().AddExpr(fn));
    }
    std::vector<size_t> arg_slots(q_.aggs.size(), SIZE_MAX);
    for (size_t i = 0; i < q_.aggs.size(); ++i) {
      const Aggregate& a = q_.aggs[i];
      if (!a.has_arg) continue;
      if (a.arg.IsColumn()) {
        arg_slots[i] = env.Slot(a.arg.col);
      } else {
        const RowFn fn = Eval(a.arg, env);
        arg_slots[i] = ensure_proj().AddExpr(fn);
      }
    }
    auto group = std::make_unique<GroupByOp>(std::move(op), key_slots);
    for (size_t i = 0; i < q_.aggs.size(); ++i) {
      switch (q_.aggs[i].fn) {
        case ast::AggFn::kSum:
          group->AddAggOp(GroupByOp::AggOp::kSum, arg_slots[i]);
          break;
        case ast::AggFn::kCount:
          group->AddAggOp(GroupByOp::AggOp::kCount);
          break;
        case ast::AggFn::kMin:
          group->AddAggOp(GroupByOp::AggOp::kMin, arg_slots[i]);
          break;
        case ast::AggFn::kMax:
          group->AddAggOp(GroupByOp::AggOp::kMax, arg_slots[i]);
          break;
        case ast::AggFn::kAvg:
          VCQ_CHECK_MSG(false, "AVG is lowered to SUM/COUNT by the binder");
      }
    }

    std::vector<std::function<SqlValue(const Row&, size_t)>> decode;
    for (const Scalar& v : q_.values) decode.push_back(Decoder(v, env));

    const size_t nkeys = q_.values.size();
    group->Open();
    Row row;
    while (group->Next(&row)) {
      bool pass = true;
      for (const HavingPred& h : q_.having) {
        if (!CmpApply(h.cmp, row[nkeys + h.agg], NumOperand(h.rhs))) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      SqlRow out;
      out.reserve(nkeys + q_.aggs.size());
      for (size_t i = 0; i < nkeys; ++i)
        out.push_back(decode[i](row, i));
      for (size_t j = 0; j < q_.aggs.size(); ++j)
        out.push_back(SqlValue::Num(row[nkeys + j]));
      rows->push_back(std::move(out));
    }
  }

  void Fold(VEnv env, std::vector<SqlRow>* rows) {
    std::vector<RowFn> fns(q_.aggs.size());
    std::vector<int64_t> acc(q_.aggs.size());
    for (size_t i = 0; i < q_.aggs.size(); ++i) {
      const Aggregate& a = q_.aggs[i];
      if (a.has_arg) fns[i] = Eval(a.arg, env);
      acc[i] = a.fn == ast::AggFn::kMin   ? INT64_MAX
               : a.fn == ast::AggFn::kMax ? INT64_MIN
                                          : 0;
    }
    env.op->Open();
    Row row;
    while (env.op->Next(&row)) {
      for (size_t i = 0; i < q_.aggs.size(); ++i) {
        switch (q_.aggs[i].fn) {
          case ast::AggFn::kSum:
            acc[i] += fns[i](row);
            break;
          case ast::AggFn::kCount:
            ++acc[i];
            break;
          case ast::AggFn::kMin:
            acc[i] = std::min(acc[i], fns[i](row));
            break;
          case ast::AggFn::kMax:
            acc[i] = std::max(acc[i], fns[i](row));
            break;
          case ast::AggFn::kAvg:
            VCQ_CHECK_MSG(false, "AVG is lowered to SUM/COUNT by the binder");
        }
      }
    }
    SqlRow out;
    out.reserve(acc.size());
    for (const int64_t v : acc) out.push_back(SqlValue::Num(v));
    rows->push_back(std::move(out));
  }

  const PhysicalPlan& p_;
  const BoundQuery& q_;
  const QueryOptions& opt_;
  const QueryParams& params_;
  std::unordered_map<uint64_t, Dict> dicts_;
  std::vector<std::pair<std::string, std::shared_ptr<uint64_t>>> join_counts_;
};

}  // namespace

QueryResult RunVolcano(const PhysicalPlan& plan, const QueryOptions& opt,
                       const QueryParams& params, VolcanoStats* stats) {
  return Lowerer(plan, opt, params).Run(stats);
}

}  // namespace vcq::sql
