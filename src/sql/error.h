#ifndef VCQ_SQL_ERROR_H_
#define VCQ_SQL_ERROR_H_

#include <cstddef>
#include <string>

// User-facing SQL compilation errors. Unlike the rest of the library, which
// treats bad input as a programming error (VCQ_CHECK aborts), SQL text comes
// from outside the program: lexing, parsing, binding, and optimization
// report malformed queries as positioned status values so shells, tests, and
// fuzzers can observe them. Internally the compiler pipeline throws
// internal::SqlException; sql::Compile is the only catch site and converts
// it into CompileResult::error. Nothing escapes the sql:: boundary.

namespace vcq::sql {

/// One compile-time diagnostic, anchored at a 1-based source position.
struct SqlError {
  size_t line = 1;
  size_t col = 1;
  std::string message;

  /// "SQL error at <line>:<col>: <message>" — the stable rendering the
  /// shell, tests, and PrepareSql's abort message all use.
  std::string Format() const;
};

namespace internal {

/// Carrier for SqlError inside the compiler; never leaves sql::Compile.
struct SqlException {
  SqlError error;
};

/// Throws SqlException at the given position.
[[noreturn]] void Fail(size_t line, size_t col, std::string message);

}  // namespace internal
}  // namespace vcq::sql

#endif  // VCQ_SQL_ERROR_H_
