#ifndef VCQ_SQL_OPTIMIZER_H_
#define VCQ_SQL_OPTIMIZER_H_

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "sql/logical.h"

// The optimizer: turns a BoundQuery's table set + join edges into a
// concrete binary join tree and places the filter conjuncts. Three
// independently switchable rewrites (bench/ablation_sql_optimizer.cc
// measures each):
//
//   fold_constants  evaluate constant subtrees of every scalar.
//   pushdown        place each filter at the lowest subtree covering its
//                   tables (single-table filters at the scan); off = all
//                   filters above the last join.
//   join_order      greedy smallest-intermediate ordering (GOO): repeatedly
//                   join the connected pair with the smallest estimated
//                   output, smaller side as hash-table build. Off =
//                   left-deep in FROM order (skipping to the next connected
//                   table), accumulated side as build.
//
// Cardinality model: per-column min/max stats from the catalog give
// ndv ≈ clamp(max-min+1, 1, |T|); equality selects 1/ndv, ranges select
// their fraction of [min, max], parameters a fixed 0.3; a join output is
// |A|·|B| / Π max(ndv_build, ndv_probe) over its key pairs. Crude, but
// monotone enough to order the catalog-shaped plans correctly.

namespace vcq::sql {

struct OptimizerOptions {
  bool fold_constants = true;
  bool pushdown = true;
  bool join_order = true;
};

/// Binary join tree node. Leaves name a table (index into
/// BoundQuery::tables); inner nodes join build × probe on `keys`
/// ({build column, probe column} pairs). `filters` are indexes into
/// BoundQuery::filters applied at this node — after the scan for leaves,
/// after the probe for joins.
struct JoinTree {
  int table = -1;
  std::unique_ptr<JoinTree> build;
  std::unique_ptr<JoinTree> probe;
  std::vector<std::array<ColumnId, 2>> keys;
  std::vector<uint32_t> filters;
  double est_rows = 0;  // after this node's filters
  uint32_t mask = 0;    // bit per BoundQuery::tables index

  bool IsLeaf() const { return table >= 0; }
};

struct PhysicalPlan {
  BoundQuery query;
  OptimizerOptions options;
  std::unique_ptr<JoinTree> root;
  /// Σ estimated join-output rows — the optimizer's plan cost (reported by
  /// EXPLAIN and the ablation bench; intermediate materialization is what
  /// the rewrites are trying to shrink).
  double cost = 0;
};

PhysicalPlan Optimize(BoundQuery query, const OptimizerOptions& options);

/// EXPLAIN "optimized" stage: the join tree with estimates and filter
/// placement.
std::string ToString(const PhysicalPlan& plan);

}  // namespace vcq::sql

#endif  // VCQ_SQL_OPTIMIZER_H_
