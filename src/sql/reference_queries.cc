#include "sql/reference_queries.h"

namespace vcq::sql {
namespace {

// TPC-H Q1: scan-dominated multi-aggregate grouping. Decimal literals
// carry scale 2 so the fused (1.00 - l_discount) / (1.00 + l_tax) terms
// reproduce the engines' fixed-point arithmetic exactly (scales 4 and 6).
constexpr const char* kQ1 = R"(
SELECT l_returnflag, l_linestatus,
       SUM(l_quantity) AS sum_qty,
       SUM(l_extendedprice) AS sum_base_price,
       SUM(l_extendedprice * (1.00 - l_discount)) AS sum_disc_price,
       SUM(l_extendedprice * (1.00 - l_discount) * (1.00 + l_tax))
           AS sum_charge,
       AVG(l_quantity) AS avg_qty,
       AVG(l_extendedprice) AS avg_price,
       AVG(l_discount) AS avg_disc,
       COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= $shipdate
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus
)";

// TPC-H Q6: pure selection + one ungrouped aggregate.
constexpr const char* kQ6 = R"(
SELECT SUM(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate BETWEEN $shipdate_lo AND $shipdate_hi
  AND l_discount BETWEEN $discount_lo AND $discount_hi
  AND l_quantity < $quantity_max
)";

// TPC-H Q3: two joins, grouped revenue, top-10.
constexpr const char* kQ3 = R"(
SELECT l_orderkey,
       SUM(l_extendedprice * (1.00 - l_discount)) AS revenue,
       o_orderdate, o_shippriority
FROM customer, orders, lineitem
WHERE c_mktsegment = $segment
  AND c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate < $date
  AND l_shipdate > $date
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate, l_orderkey
LIMIT 10
)";

// TPC-H Q9: five joins (one composite key), substring filter, grouping on
// a string column and an extracted year. LIKE $color is the raw-substring
// (Contains) form the catalog plan uses.
constexpr const char* kQ9 = R"(
SELECT n_name AS nation,
       EXTRACT(YEAR FROM o_orderdate) AS o_year,
       SUM(l_extendedprice * (1.00 - l_discount)
           - ps_supplycost * l_quantity) AS sum_profit
FROM part, supplier, lineitem, partsupp, orders, nation
WHERE s_suppkey = l_suppkey
  AND ps_suppkey = l_suppkey
  AND ps_partkey = l_partkey
  AND p_partkey = l_partkey
  AND o_orderkey = l_orderkey
  AND s_nationkey = n_nationkey
  AND p_name LIKE $color
GROUP BY n_name, EXTRACT(YEAR FROM o_orderdate)
ORDER BY nation, o_year DESC
)";

// TPC-H Q18: the flat formulation — grouping on the functionally-dependent
// order/customer keys replaces the spec's IN-subquery; HAVING applies the
// large-quantity threshold. Results are identical to the catalog plan's
// pre-aggregated form.
constexpr const char* kQ18 = R"(
SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice,
       SUM(l_quantity) AS sum_qty
FROM customer, orders, lineitem
WHERE c_custkey = o_custkey
  AND o_orderkey = l_orderkey
GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
HAVING SUM(l_quantity) > $quantity_min
ORDER BY o_totalprice DESC, o_orderdate, o_orderkey
LIMIT 100
)";

// SSB Q1.1: one dimension join + ungrouped aggregate.
constexpr const char* kSsbQ11 = R"(
SELECT SUM(lo_extendedprice * lo_discount) AS revenue
FROM lineorder, date
WHERE lo_orderdate = d_datekey
  AND d_year = $year
  AND lo_discount BETWEEN $discount_lo AND $discount_hi
  AND lo_quantity < $quantity_max
)";

// SSB Q2.1.
constexpr const char* kSsbQ21 = R"(
SELECT d_year, p_brand1, SUM(lo_revenue) AS revenue
FROM lineorder, date, part, supplier
WHERE lo_orderdate = d_datekey
  AND lo_partkey = p_partkey
  AND lo_suppkey = s_suppkey
  AND p_category = $category
  AND s_region = $region
GROUP BY d_year, p_brand1
ORDER BY d_year, p_brand1
)";

// SSB Q3.1: the same $region binding filters both dimensions.
constexpr const char* kSsbQ31 = R"(
SELECT c_nation, s_nation, d_year, SUM(lo_revenue) AS revenue
FROM lineorder, customer, supplier, date
WHERE lo_custkey = c_custkey
  AND lo_suppkey = s_suppkey
  AND lo_orderdate = d_datekey
  AND c_region = $region
  AND s_region = $region
  AND d_year BETWEEN $year_lo AND $year_hi
GROUP BY c_nation, s_nation, d_year
ORDER BY d_year, revenue DESC
)";

// SSB Q4.1: four dimension joins plus a two-value IN.
constexpr const char* kSsbQ41 = R"(
SELECT d_year, c_nation, SUM(lo_revenue - lo_supplycost) AS profit
FROM lineorder, customer, supplier, part, date
WHERE lo_custkey = c_custkey
  AND lo_suppkey = s_suppkey
  AND lo_partkey = p_partkey
  AND lo_orderdate = d_datekey
  AND c_region = $region
  AND s_region = $region
  AND p_mfgr IN ($mfgr_a, $mfgr_b)
GROUP BY d_year, c_nation
ORDER BY d_year, c_nation
)";

}  // namespace

const char* SqlTextFor(std::string_view name) {
  if (name == "Q1") return kQ1;
  if (name == "Q6") return kQ6;
  if (name == "Q3") return kQ3;
  if (name == "Q9") return kQ9;
  if (name == "Q18") return kQ18;
  if (name == "SSB-Q1.1") return kSsbQ11;
  if (name == "SSB-Q2.1") return kSsbQ21;
  if (name == "SSB-Q3.1") return kSsbQ31;
  if (name == "SSB-Q4.1") return kSsbQ41;
  return nullptr;
}

}  // namespace vcq::sql
