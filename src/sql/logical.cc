#include "sql/logical.h"

#include "runtime/types.h"

namespace vcq::sql {
namespace {

std::string OperandToString(const Operand& o, const SqlType& lhs_type) {
  if (o.is_param) return "$" + o.param;
  if (lhs_type.kind == TypeKind::kString) return "'" + o.str + "'";
  if (lhs_type.kind == TypeKind::kDate)
    return "date '" + runtime::DateToString(static_cast<int32_t>(o.num)) + "'";
  if (lhs_type.scale == 0) return std::to_string(o.num);
  return runtime::NumericToString(o.num, lhs_type.scale);
}

}  // namespace

uint32_t Scalar::TableMask() const {
  if (op == ScalarOp::kColumn) return 1u << col.table;
  uint32_t m = 0;
  for (const Scalar& a : args) m |= a.TableMask();
  return m;
}

bool ScalarEqual(const Scalar& a, const Scalar& b) {
  if (a.op != b.op || a.args.size() != b.args.size()) return false;
  if (a.op == ScalarOp::kColumn && !(a.col == b.col)) return false;
  if (a.op == ScalarOp::kConst &&
      (a.value != b.value || !(a.type == b.type)))
    return false;
  for (size_t i = 0; i < a.args.size(); ++i)
    if (!ScalarEqual(a.args[i], b.args[i])) return false;
  return true;
}

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
    case CmpOp::kEq:
      return "=";
  }
  return "?";
}

std::string ToString(const BoundQuery& q, const Scalar& s) {
  switch (s.op) {
    case ScalarOp::kColumn: {
      const ColumnDef& c = q.Column(s.col);
      return q.Table(s.col.table).name + "." + c.name;
    }
    case ScalarOp::kConst:
      if (s.type.kind == TypeKind::kDate)
        return "date '" +
               runtime::DateToString(static_cast<int32_t>(s.value)) + "'";
      if (s.type.scale == 0) return std::to_string(s.value);
      return runtime::NumericToString(s.value, s.type.scale);
    case ScalarOp::kAdd:
      return "(" + ToString(q, s.args[0]) + " + " + ToString(q, s.args[1]) +
             ")";
    case ScalarOp::kSub:
      return "(" + ToString(q, s.args[0]) + " - " + ToString(q, s.args[1]) +
             ")";
    case ScalarOp::kMul:
      return "(" + ToString(q, s.args[0]) + " * " + ToString(q, s.args[1]) +
             ")";
    case ScalarOp::kYear:
      return "year(" + ToString(q, s.args[0]) + ")";
  }
  return "?";
}

std::string ToString(const BoundQuery& q) {
  std::string out;
  out += "tables:";
  for (uint32_t t = 0; t < q.tables.size(); ++t)
    out += " " + q.Table(t).name;
  out += "\n";
  for (const Predicate& p : q.filters) {
    out += "filter: " + ToString(q, p.lhs);
    switch (p.kind) {
      case PredKind::kCmp:
        out += std::string(" ") + CmpOpName(p.cmp) + " " +
               OperandToString(p.rhs[0], p.lhs.type);
        break;
      case PredKind::kEqOr2:
        out += " in (" + OperandToString(p.rhs[0], p.lhs.type) + ", " +
               OperandToString(p.rhs[1], p.lhs.type) + ")";
        break;
      case PredKind::kContains:
        out += " contains " + OperandToString(p.rhs[0], p.lhs.type);
        break;
    }
    out += "\n";
  }
  for (const JoinEdge& e : q.joins) {
    out += "join:";
    for (const auto& k : e.keys)
      out += " " + ToString(q, Scalar{.op = ScalarOp::kColumn, .col = k[0]}) +
             " = " + ToString(q, Scalar{.op = ScalarOp::kColumn, .col = k[1]});
    out += "\n";
  }
  if (!q.values.empty()) {
    out += q.grouped ? "group by:" : "project:";
    for (const Scalar& v : q.values) out += " " + ToString(q, v);
    out += "\n";
  }
  for (const Aggregate& a : q.aggs) {
    out += std::string("agg: ") + ast::AggFnName(a.fn);
    out += a.has_arg ? "(" + ToString(q, a.arg) + ")" : "(*)";
    out += "\n";
  }
  for (const HavingPred& h : q.having) {
    const Aggregate& a = q.aggs[h.agg];
    out += std::string("having: ") + ast::AggFnName(a.fn) +
           (a.has_arg ? "(" + ToString(q, a.arg) + ")" : "(*)") + " " +
           CmpOpName(h.cmp) + " " + OperandToString(h.rhs, a.type);
    out += "\n";
  }
  out += "output:";
  for (const Output& o : q.outputs) out += " " + o.name;
  out += "\n";
  if (!q.order_by.empty()) {
    out += "order by:";
    for (const auto& [idx, desc] : q.order_by)
      out += " " + q.outputs[idx].name + (desc ? " desc" : "");
    out += "\n";
  }
  if (q.limit != UINT64_MAX)
    out += "limit: " + std::to_string(q.limit) + "\n";
  return out;
}

}  // namespace vcq::sql
