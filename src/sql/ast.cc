#include "sql/ast.h"

#include <string>

#include "runtime/types.h"

namespace vcq::sql::ast {
namespace {

void Dump(const Expr& e, int indent, std::string* out);

void Line(int indent, std::string_view text, std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append(text);
  out->push_back('\n');
}

std::string NumLit(int64_t value, int scale) {
  if (scale == 0) return std::to_string(value);
  return runtime::NumericToString(value, scale);
}

void Dump(const Expr& e, int indent, std::string* out) {
  switch (e.kind) {
    case Expr::Kind::kIntLit:
      Line(indent, "lit " + NumLit(e.int_val, e.scale), out);
      return;
    case Expr::Kind::kStrLit:
      Line(indent, "lit '" + e.str + "'", out);
      return;
    case Expr::Kind::kDateLit:
      Line(indent, "date '" + e.str + "'", out);
      return;
    case Expr::Kind::kParam:
      Line(indent, "param $" + e.str, out);
      return;
    case Expr::Kind::kColumn:
      Line(indent,
           e.table.empty() ? "col " + e.str : "col " + e.table + "." + e.str,
           out);
      return;
    case Expr::Kind::kBinary:
      Line(indent, std::string(BinOpName(e.op)), out);
      break;
    case Expr::Kind::kNeg:
      Line(indent, "neg", out);
      break;
    case Expr::Kind::kBetween:
      Line(indent, "between", out);
      break;
    case Expr::Kind::kIn:
      Line(indent, "in", out);
      break;
    case Expr::Kind::kLike:
      Line(indent,
           e.args.size() == 2 ? "like (param substring)"
                              : "like '" + e.str + "'",
           out);
      break;
    case Expr::Kind::kAgg:
      Line(indent,
           e.args.empty() ? std::string(AggFnName(e.agg)) + "(*)"
                          : std::string(AggFnName(e.agg)),
           out);
      break;
    case Expr::Kind::kYear:
      Line(indent, "year", out);
      break;
  }
  for (const ExprPtr& a : e.args) Dump(*a, indent + 1, out);
}

}  // namespace

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "/";
    case BinOp::kLt:
      return "<";
    case BinOp::kLe:
      return "<=";
    case BinOp::kGt:
      return ">";
    case BinOp::kGe:
      return ">=";
    case BinOp::kEq:
      return "=";
    case BinOp::kNe:
      return "<>";
    case BinOp::kAnd:
      return "and";
    case BinOp::kOr:
      return "or";
  }
  return "?";
}

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kSum:
      return "sum";
    case AggFn::kMin:
      return "min";
    case AggFn::kMax:
      return "max";
    case AggFn::kCount:
      return "count";
    case AggFn::kAvg:
      return "avg";
  }
  return "?";
}

std::string ToString(const Expr& expr) {
  std::string out;
  Dump(expr, 0, &out);
  return out;
}

std::string ToString(const Select& select) {
  std::string out;
  Line(0, "select", &out);
  for (const SelectItem& item : select.items) {
    Line(1, item.alias.empty() ? "item" : "item as " + item.alias, &out);
    Dump(*item.expr, 2, &out);
  }
  std::string from = "from";
  for (const TableRef& t : select.from) from += " " + t.name;
  Line(1, from, &out);
  if (select.where) {
    Line(1, "where", &out);
    Dump(*select.where, 2, &out);
  }
  if (!select.group_by.empty()) {
    Line(1, "group by", &out);
    for (const ExprPtr& g : select.group_by) Dump(*g, 2, &out);
  }
  if (select.having) {
    Line(1, "having", &out);
    Dump(*select.having, 2, &out);
  }
  if (!select.order_by.empty()) {
    Line(1, "order by", &out);
    for (const OrderItem& o : select.order_by) {
      Line(2, o.desc ? "desc" : "asc", &out);
      Dump(*o.expr, 3, &out);
    }
  }
  if (select.limit >= 0) Line(1, "limit " + std::to_string(select.limit), &out);
  return out;
}

}  // namespace vcq::sql::ast
