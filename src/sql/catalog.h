#ifndef VCQ_SQL_CATALOG_H_
#define VCQ_SQL_CATALOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/relation.h"

// The SQL catalog: name resolution plus the semantic layer the storage
// engine does not record. runtime::Relation knows only physical types
// (int32/int64/Char<N>/Varchar<N>); SQL needs to know that l_discount is a
// scale-2 fixed-point numeric and l_shipdate a day number, because those
// decide literal scaling, comparison legality, and result rendering (the
// fixed-point model of runtime/types.h). The catalog annotates the datagen
// schemas by column name — the one place in the library where column-name
// conventions carry meaning — and scans per-column min/max statistics once
// at construction for the optimizer's cardinality model.

namespace vcq::sql {

enum class TypeKind : uint8_t {
  kNumeric,  // int32/int64 fixed-point at `scale` decimal digits
  kDate,     // int32 day number (see runtime DaysFromCivil)
  kString    // Char<N> or Varchar<N>
};

/// Semantic column type. Two numerics of different scale are compatible
/// after rescaling; dates compare only with dates; strings only with
/// string literals/params.
struct SqlType {
  TypeKind kind = TypeKind::kNumeric;
  int scale = 0;  // meaningful for kNumeric only

  friend bool operator==(const SqlType& a, const SqlType& b) {
    return a.kind == b.kind && a.scale == b.scale;
  }
};

/// Human-readable type name ("numeric(2)", "date", "string").
std::string TypeName(const SqlType& t);

/// Min/max over an integer column, scanned once at catalog build. The
/// optimizer derives distinct-count estimates as max-min+1 clamped to the
/// table cardinality; `valid` is false for string columns.
struct ColumnStats {
  int64_t min = 0;
  int64_t max = 0;
  bool valid = false;
};

struct ColumnDef {
  std::string name;
  SqlType type;
  runtime::TypeTag tag;  // physical type, with elem_size disambiguating
  size_t elem_size;      // Char<N>/Varchar<N> widths
  ColumnStats stats;
};

struct TableDef {
  std::string name;
  size_t tuple_count = 0;
  std::vector<ColumnDef> columns;

  const ColumnDef* Find(std::string_view column) const;
  /// Index into `columns`, or SIZE_MAX.
  size_t IndexOf(std::string_view column) const;
};

/// Bound schema + statistics over one runtime::Database. Construction
/// scans every integer column once for min/max; share one catalog across
/// compilations of the same database (MakeCatalog returns a shared_ptr and
/// CompiledQuery keeps it alive).
class Catalog {
 public:
  explicit Catalog(const runtime::Database& db);

  const TableDef* Find(std::string_view table) const;
  const std::vector<TableDef>& tables() const { return tables_; }
  const runtime::Database& db() const { return *db_; }

 private:
  const runtime::Database* db_;
  std::vector<TableDef> tables_;
};

std::shared_ptr<const Catalog> MakeCatalog(const runtime::Database& db);

/// Reads row `row` of an arbitrary column as a string (string columns) —
/// used by the differential fuzzer to sample in-domain string constants.
std::string SampleString(const Catalog& catalog, const TableDef& table,
                         const ColumnDef& col, size_t row);

}  // namespace vcq::sql

#endif  // VCQ_SQL_CATALOG_H_
