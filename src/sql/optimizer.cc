#include "sql/optimizer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/check.h"

namespace vcq::sql {
namespace {

void FoldScalar(Scalar* s) {
  for (Scalar& a : s->args) FoldScalar(&a);
  if (s->op != ScalarOp::kAdd && s->op != ScalarOp::kSub &&
      s->op != ScalarOp::kMul)
    return;
  if (!s->args[0].IsConst() || !s->args[1].IsConst()) return;
  const int64_t a = s->args[0].value;
  const int64_t b = s->args[1].value;
  int64_t v = 0;
  switch (s->op) {
    case ScalarOp::kAdd:
      v = a + b;
      break;
    case ScalarOp::kSub:
      v = a - b;
      break;
    case ScalarOp::kMul:
      v = a * b;
      break;
    default:
      return;
  }
  s->op = ScalarOp::kConst;
  s->value = v;
  s->args.clear();
}

class Optimizer {
 public:
  Optimizer(BoundQuery query, const OptimizerOptions& options)
      : plan_{std::move(query), options, nullptr, 0} {}

  PhysicalPlan Run() {
    BoundQuery& q = plan_.query;
    if (plan_.options.fold_constants) {
      for (Predicate& p : q.filters) FoldScalar(&p.lhs);
      for (Scalar& v : q.values) FoldScalar(&v);
      for (Aggregate& a : q.aggs)
        if (a.has_arg) FoldScalar(&a.arg);
    }
    placed_.assign(q.filters.size(), false);

    std::vector<std::unique_ptr<JoinTree>> items;
    for (uint32_t t = 0; t < q.tables.size(); ++t)
      items.push_back(MakeLeaf(t));

    if (plan_.options.join_order) {
      Greedy(&items);
    } else {
      FromOrder(&items);
    }
    VCQ_CHECK(items.size() == 1);
    plan_.root = std::move(items[0]);

    // Anything unplaced (all filters, when pushdown is off) lands above the
    // last join.
    for (uint32_t f = 0; f < q.filters.size(); ++f) {
      if (placed_[f]) continue;
      plan_.root->filters.push_back(f);
      plan_.root->est_rows *= Selectivity(q.filters[f]);
      placed_[f] = true;
    }
    return std::move(plan_);
  }

 private:
  const BoundQuery& q() const { return plan_.query; }

  double Ndv(ColumnId id) const {
    const ColumnDef& c = plan_.query.Column(id);
    const double rows =
        std::max<double>(1, plan_.query.Table(id.table).tuple_count);
    if (!c.stats.valid) return std::max(1.0, rows * 0.1);
    const double width =
        static_cast<double>(c.stats.max) - static_cast<double>(c.stats.min) +
        1;
    return std::clamp(width, 1.0, rows);
  }

  double Selectivity(const Predicate& p) const {
    // Parameters are unknown at plan time.
    const bool param =
        std::any_of(p.rhs.begin(), p.rhs.end(),
                    [](const Operand& o) { return o.is_param; });
    if (p.kind == PredKind::kContains) return 0.05;
    if (p.is_string) {
      if (p.kind == PredKind::kEqOr2) return 0.2;
      return p.cmp == CmpOp::kEq ? 0.1 : 0.3;
    }
    const bool plain = p.lhs.IsColumn();
    const ColumnStats* stats =
        plain ? &plan_.query.Column(p.lhs.col).stats : nullptr;
    if (param || stats == nullptr || !stats->valid) {
      if (p.kind == PredKind::kEqOr2) return 0.2;
      return p.cmp == CmpOp::kEq ? 0.1 : 0.3;
    }
    const double lo = static_cast<double>(stats->min);
    const double hi = static_cast<double>(stats->max);
    const double width = hi - lo + 1;
    const double v = static_cast<double>(p.rhs[0].num);
    const double ndv = Ndv(p.lhs.col);
    double sel;
    switch (p.kind) {
      case PredKind::kEqOr2:
        sel = 2.0 / ndv;
        break;
      case PredKind::kCmp:
        switch (p.cmp) {
          case CmpOp::kEq:
            sel = 1.0 / ndv;
            break;
          case CmpOp::kLt:
            sel = (v - lo) / width;
            break;
          case CmpOp::kLe:
            sel = (v - lo + 1) / width;
            break;
          case CmpOp::kGt:
            sel = (hi - v) / width;
            break;
          case CmpOp::kGe:
            sel = (hi - v + 1) / width;
            break;
        }
        break;
      default:
        sel = 0.3;
        break;
    }
    return std::clamp(sel, 0.0, 1.0);
  }

  std::unique_ptr<JoinTree> MakeLeaf(uint32_t t) {
    auto leaf = std::make_unique<JoinTree>();
    leaf->table = static_cast<int>(t);
    leaf->mask = 1u << t;
    leaf->est_rows =
        std::max<double>(1, plan_.query.Table(t).tuple_count);
    if (plan_.options.pushdown) {
      for (uint32_t f = 0; f < q().filters.size(); ++f) {
        if (q().filters[f].TableMask() == leaf->mask) {
          leaf->filters.push_back(f);
          leaf->est_rows *= Selectivity(q().filters[f]);
          placed_[f] = true;
        }
      }
    }
    return leaf;
  }

  /// Joins two subtrees: smaller side becomes the hash-table build (unless
  /// `keep_sides`, the join_order=off mode, which keeps `a` as build).
  std::unique_ptr<JoinTree> Merge(std::unique_ptr<JoinTree> a,
                                  std::unique_ptr<JoinTree> b,
                                  bool keep_sides) {
    double est = a->est_rows * b->est_rows;
    std::vector<std::array<ColumnId, 2>> keys;  // {a col, b col}
    for (const JoinEdge& e : q().joins) {
      if ((e.mask & a->mask) == 0 || (e.mask & b->mask) == 0) continue;
      if ((e.mask & ~(a->mask | b->mask)) != 0) continue;
      for (auto key : e.keys) {
        if ((1u << key[0].table) & b->mask) std::swap(key[0], key[1]);
        est /= std::max(Ndv(key[0]), Ndv(key[1]));
        keys.push_back(key);
      }
    }
    VCQ_CHECK_MSG(!keys.empty(), "merging unconnected subtrees");
    auto node = std::make_unique<JoinTree>();
    node->mask = a->mask | b->mask;
    if (!keep_sides && b->est_rows < a->est_rows) {
      for (auto& key : keys) std::swap(key[0], key[1]);
      std::swap(a, b);
    }
    node->keys = std::move(keys);
    node->build = std::move(a);
    node->probe = std::move(b);
    node->est_rows = std::max(est, 1.0);
    plan_.cost += node->est_rows;
    if (plan_.options.pushdown) {
      for (uint32_t f = 0; f < q().filters.size(); ++f) {
        if (placed_[f]) continue;
        const uint32_t m = q().filters[f].TableMask();
        if ((m & ~node->mask) == 0) {
          node->filters.push_back(f);
          node->est_rows *= Selectivity(q().filters[f]);
          placed_[f] = true;
        }
      }
    }
    return node;
  }

  bool Connected(const JoinTree& a, const JoinTree& b) const {
    for (const JoinEdge& e : q().joins) {
      if ((e.mask & a.mask) != 0 && (e.mask & b.mask) != 0 &&
          (e.mask & ~(a.mask | b.mask)) == 0)
        return true;
    }
    return false;
  }

  double JoinEstimate(const JoinTree& a, const JoinTree& b) const {
    double est = a.est_rows * b.est_rows;
    for (const JoinEdge& e : q().joins) {
      if ((e.mask & a.mask) == 0 || (e.mask & b.mask) == 0) continue;
      if ((e.mask & ~(a.mask | b.mask)) != 0) continue;
      for (const auto& key : e.keys)
        est /= std::max(Ndv(key[0]), Ndv(key[1]));
    }
    return std::max(est, 1.0);
  }

  void Greedy(std::vector<std::unique_ptr<JoinTree>>* items) {
    while (items->size() > 1) {
      size_t best_i = 0;
      size_t best_j = 0;
      double best = -1;
      for (size_t i = 0; i < items->size(); ++i) {
        for (size_t j = i + 1; j < items->size(); ++j) {
          if (!Connected(*(*items)[i], *(*items)[j])) continue;
          const double est = JoinEstimate(*(*items)[i], *(*items)[j]);
          if (best < 0 || est < best) {
            best = est;
            best_i = i;
            best_j = j;
          }
        }
      }
      VCQ_CHECK_MSG(best >= 0, "join graph disconnected");
      auto merged = Merge(std::move((*items)[best_i]),
                          std::move((*items)[best_j]),
                          /*keep_sides=*/false);
      (*items)[best_i] = std::move(merged);
      items->erase(items->begin() + static_cast<ptrdiff_t>(best_j));
    }
  }

  void FromOrder(std::vector<std::unique_ptr<JoinTree>>* items) {
    std::unique_ptr<JoinTree> acc = std::move((*items)[0]);
    items->erase(items->begin());
    while (!items->empty()) {
      size_t next = SIZE_MAX;
      for (size_t i = 0; i < items->size(); ++i) {
        if (Connected(*acc, *(*items)[i])) {
          next = i;
          break;
        }
      }
      VCQ_CHECK_MSG(next != SIZE_MAX, "join graph disconnected");
      acc = Merge(std::move(acc), std::move((*items)[next]),
                  /*keep_sides=*/true);
      items->erase(items->begin() + static_cast<ptrdiff_t>(next));
    }
    items->push_back(std::move(acc));
  }

  PhysicalPlan plan_;
  std::vector<bool> placed_;
};

void Dump(const PhysicalPlan& p, const JoinTree& t, int indent,
          std::string* out) {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  auto filters = [&](const JoinTree& n) {
    std::string s;
    for (uint32_t f : n.filters)
      s += " [" + ToString(p.query, p.query.filters[f].lhs) + " " +
           CmpOpName(p.query.filters[f].cmp) + " ...]";
    return s;
  };
  char est[32];
  std::snprintf(est, sizeof est, "%.0f", t.est_rows);
  if (t.IsLeaf()) {
    *out += pad + "scan " + p.query.Table(static_cast<uint32_t>(t.table)).name +
            " est=" + est + filters(t) + "\n";
    return;
  }
  std::string keys;
  for (const auto& k : t.keys) {
    keys += keys.empty() ? " on " : ", ";
    keys +=
        ToString(p.query, Scalar{.op = ScalarOp::kColumn, .col = k[0]}) +
        " = " +
        ToString(p.query, Scalar{.op = ScalarOp::kColumn, .col = k[1]});
  }
  *out += pad + "hashjoin est=" + est + keys + filters(t) + "\n";
  Dump(p, *t.build, indent + 1, out);
  Dump(p, *t.probe, indent + 1, out);
}

}  // namespace

PhysicalPlan Optimize(BoundQuery query, const OptimizerOptions& options) {
  Optimizer opt(std::move(query), options);
  return opt.Run();
}

std::string ToString(const PhysicalPlan& plan) {
  std::string out;
  char cost[32];
  std::snprintf(cost, sizeof cost, "%.0f", plan.cost);
  out += "cost=" + std::string(cost) + " (estimated join output rows)\n";
  Dump(plan, *plan.root, 0, &out);
  if (plan.query.grouped || !plan.query.aggs.empty())
    out += plan.query.grouped ? "group + aggregate\n" : "aggregate\n";
  return out;
}

}  // namespace vcq::sql
