#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "runtime/types.h"
#include "sql/lower.h"
#include "sql/result.h"
#include "tectorwise/plan.h"

// Tectorwise lowering: one walk of the optimizer's join tree emits a
// PlanBuilder DAG. Each tree node becomes scan → [map] → [select] or
// hash-join → [map] → [select]; the aggregation stage (hash group-by,
// fixed aggregation, or a plain projection map) sits on top. Columns are
// threaded explicitly: every node carries exactly the columns its
// ancestors still need (computed top-down), re-declared across joins with
// Build/Probe since Tectorwise rematerializes join output.
//
// The collector reads the root's result columns with Batch::Value (the
// selection-vector-aware accessor — a HAVING clause leaves a Select as
// root) into untyped SqlRows and hands them to the shared result writer.

namespace vcq::sql {
namespace {

using runtime::Char;
using runtime::QueryOptions;
using runtime::QueryParams;
using runtime::QueryResult;
using runtime::TypeTag;
using runtime::Varchar;
using tectorwise::ColumnRef;
using tectorwise::MapNode;
using tectorwise::Plan;
using tectorwise::PlanBuilder;
using tectorwise::PlanNode;
using tectorwise::SelectNode;

uint64_t CKey(ColumnId id) {
  return (static_cast<uint64_t>(id.table) << 32) | id.col;
}

tectorwise::CmpOp TwCmp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return tectorwise::CmpOp::kLess;
    case CmpOp::kLe:
      return tectorwise::CmpOp::kLessEq;
    case CmpOp::kGt:
      return tectorwise::CmpOp::kGreater;
    case CmpOp::kGe:
      return tectorwise::CmpOp::kGreaterEq;
    case CmpOp::kEq:
      return tectorwise::CmpOp::kEq;
  }
  return tectorwise::CmpOp::kEq;
}

/// Calls `f` with a typed null pointer matching the column's physical
/// type; `f` must return the same type for every instantiation.
template <typename F>
decltype(auto) WithPhys(const ColumnDef& col, F&& f) {
  switch (col.tag) {
    case TypeTag::kInt32:
      return f(static_cast<int32_t*>(nullptr));
    case TypeTag::kInt64:
      return f(static_cast<int64_t*>(nullptr));
    case TypeTag::kVarchar:
      VCQ_CHECK(col.elem_size == sizeof(Varchar<55>));
      return f(static_cast<Varchar<55>*>(nullptr));
    case TypeTag::kChar:
      switch (col.elem_size) {
        case 1:
          return f(static_cast<Char<1>*>(nullptr));
        case 6:
          return f(static_cast<Char<6>*>(nullptr));
        case 7:
          return f(static_cast<Char<7>*>(nullptr));
        case 9:
          return f(static_cast<Char<9>*>(nullptr));
        case 10:
          return f(static_cast<Char<10>*>(nullptr));
        case 12:
          return f(static_cast<Char<12>*>(nullptr));
        case 15:
          return f(static_cast<Char<15>*>(nullptr));
        case 25:
          return f(static_cast<Char<25>*>(nullptr));
        default:
          break;
      }
      break;
  }
  VCQ_CHECK_MSG(false, "unsupported physical column type");
  std::abort();
}

template <typename T>
T ConstOf(const Operand& o) {
  if constexpr (std::is_arithmetic_v<T>)
    return static_cast<T>(o.num);
  else
    return T::From(o.str);
}

/// Evaluates a residual constant subtree (present when constant folding is
/// disabled; same arithmetic as the folder, so plan dumps are the only
/// observable difference).
int64_t EvalConst(const Scalar& s) {
  switch (s.op) {
    case ScalarOp::kConst:
      return s.value;
    case ScalarOp::kAdd:
      return EvalConst(s.args[0]) + EvalConst(s.args[1]);
    case ScalarOp::kSub:
      return EvalConst(s.args[0]) - EvalConst(s.args[1]);
    case ScalarOp::kMul:
      return EvalConst(s.args[0]) * EvalConst(s.args[1]);
    default:
      break;
  }
  VCQ_CHECK_MSG(false, "non-constant scalar in constant context");
  std::abort();
}

using SlotGetter = std::function<SqlValue(const Plan::Batch&, size_t)>;

/// Columns available at one point of the DAG, keyed by (table, column).
struct Env {
  PlanNode* node = nullptr;
  std::unordered_map<uint64_t, ColumnRef> cols;

  ColumnRef Ref(ColumnId id) const {
    const auto it = cols.find(CKey(id));
    VCQ_CHECK_MSG(it != cols.end(), "internal: column not carried");
    return it->second;
  }
};

class Lowerer {
 public:
  explicit Lowerer(const PhysicalPlan& plan)
      : p_(plan), q_(plan.query), pb_("sql") {}

  tectorwise::Prepared Run() {
    std::set<uint64_t> needed;
    for (const Scalar& v : q_.values) Collect(v, &needed);
    for (const Aggregate& a : q_.aggs)
      if (a.has_arg) Collect(a.arg, &needed);
    Env env = Lower(*p_.root, needed);
    return q_.aggs.empty() ? Projection(env) : Aggregate_(env);
  }

 private:
  std::string Name(const char* prefix) {
    return std::string(prefix) + std::to_string(next_name_++);
  }

  void Collect(const Scalar& s, std::set<uint64_t>* out) {
    if (s.IsColumn()) out->insert(CKey(s.col));
    for (const Scalar& a : s.args) Collect(a, out);
  }

  /// True when a native int32 comparison would truncate the constant.
  bool NeedsWiden(const Predicate& p) const {
    if (p.is_string || !p.lhs.IsColumn()) return false;
    if (q_.Column(p.lhs.col).tag != TypeTag::kInt32) return false;
    for (const Operand& o : p.rhs)
      if (!o.is_param && (o.num < INT32_MIN || o.num > INT32_MAX))
        return true;
    return false;
  }

  /// Materializes a numeric scalar as an int64 column of `map`.
  ColumnRef LowerNumeric(MapNode& map, const Env& env, const Scalar& s) {
    switch (s.op) {
      case ScalarOp::kColumn: {
        const ColumnDef& col = q_.Column(s.col);
        if (col.tag == TypeTag::kInt64) return env.Ref(s.col);
        VCQ_CHECK(col.tag == TypeTag::kInt32);
        return map.Widen<int32_t, int64_t>(env.Ref(s.col), Name("w"));
      }
      case ScalarOp::kYear:
        return map.Widen<int32_t, int64_t>(LowerYear(map, env, s), Name("w"));
      case ScalarOp::kAdd:
      case ScalarOp::kSub:
      case ScalarOp::kMul: {
        const Scalar& a = s.args[0];
        const Scalar& b = s.args[1];
        const bool ac = a.TableMask() == 0;
        const bool bc = b.TableMask() == 0;
        VCQ_CHECK_MSG(!(ac && bc), "constant scalar reached lowering");
        if (s.op == ScalarOp::kAdd) {
          if (ac)
            return map.AddConst<int64_t>(EvalConst(a),
                                         LowerNumeric(map, env, b), Name("e"));
          if (bc)
            return map.AddConst<int64_t>(EvalConst(b),
                                         LowerNumeric(map, env, a), Name("e"));
          return map.Add<int64_t>(LowerNumeric(map, env, a),
                                  LowerNumeric(map, env, b), Name("e"));
        }
        if (s.op == ScalarOp::kSub) {
          if (ac)
            return map.RSubConst<int64_t>(EvalConst(a),
                                          LowerNumeric(map, env, b),
                                          Name("e"));
          if (bc)
            return map.AddConst<int64_t>(-EvalConst(b),
                                         LowerNumeric(map, env, a), Name("e"));
          return map.Sub<int64_t>(LowerNumeric(map, env, a),
                                  LowerNumeric(map, env, b), Name("e"));
        }
        if (ac)
          return map.MulConst<int64_t>(LowerNumeric(map, env, b),
                                       EvalConst(a), Name("e"));
        if (bc)
          return map.MulConst<int64_t>(LowerNumeric(map, env, a),
                                       EvalConst(b), Name("e"));
        return map.Mul<int64_t>(LowerNumeric(map, env, a),
                                LowerNumeric(map, env, b), Name("e"));
      }
      case ScalarOp::kConst:
        break;
    }
    VCQ_CHECK_MSG(false, "constant scalar reached lowering");
    std::abort();
  }

  /// EXTRACT(YEAR ...) as an int32 column; the binder guarantees the
  /// argument is a plain date column.
  ColumnRef LowerYear(MapNode& map, const Env& env, const Scalar& s) {
    VCQ_CHECK(s.args[0].IsColumn());
    return map.Year(env.Ref(s.args[0].col), Name("y"));
  }

  template <typename T>
  void AddPredT(SelectNode& sel, ColumnRef ref, const Predicate& p) {
    switch (p.kind) {
      case PredKind::kContains:
        if constexpr (std::is_same_v<T, Varchar<55>>) {
          if (p.rhs[0].is_param)
            sel.ContainsParam<T>(ref, p.rhs[0].param);
          else
            sel.Contains<T>(ref, p.rhs[0].str);
        } else {
          VCQ_CHECK_MSG(false, "substring match on non-varchar column");
        }
        return;
      case PredKind::kEqOr2:
        // The binder rejects mixed constant/parameter lists.
        if (p.rhs[0].is_param)
          sel.EqOr2Param<T>(ref, p.rhs[0].param, p.rhs[1].param);
        else
          sel.EqOr2<T>(ref, ConstOf<T>(p.rhs[0]), ConstOf<T>(p.rhs[1]));
        return;
      case PredKind::kCmp:
        if (p.rhs[0].is_param)
          sel.CmpParam<T>(ref, TwCmp(p.cmp), p.rhs[0].param);
        else
          sel.Cmp<T>(ref, TwCmp(p.cmp), ConstOf<T>(p.rhs[0]));
        return;
    }
  }

  /// Applies a tree node's filters: one Map for the compound left-hand
  /// sides, then one Select with every conjunct.
  void ApplyFilters(const JoinTree& t, Env* env) {
    if (t.filters.empty()) return;
    MapNode* map = nullptr;
    std::vector<ColumnRef> lhs(t.filters.size());
    std::vector<bool> compound(t.filters.size(), false);
    for (size_t i = 0; i < t.filters.size(); ++i) {
      const Predicate& p = q_.filters[t.filters[i]];
      if (p.is_string) continue;
      if (p.lhs.IsColumn() && !NeedsWiden(p)) continue;
      if (map == nullptr) map = &pb_.Map(*env->node);
      lhs[i] = LowerNumeric(*map, *env, p.lhs);
      compound[i] = true;
    }
    SelectNode& sel =
        pb_.Select(map != nullptr ? static_cast<PlanNode&>(*map)
                                  : *env->node);
    for (size_t i = 0; i < t.filters.size(); ++i) {
      const Predicate& p = q_.filters[t.filters[i]];
      if (compound[i]) {
        AddPredT<int64_t>(sel, lhs[i], p);
        continue;
      }
      WithPhys(q_.Column(p.lhs.col), [&](auto* tp) {
        using T = std::remove_pointer_t<decltype(tp)>;
        AddPredT<T>(sel, env->Ref(p.lhs.col), p);
      });
    }
    env->node = &sel;
  }

  Env Lower(const JoinTree& t, const std::set<uint64_t>& needed_above) {
    std::set<uint64_t> needed = needed_above;
    for (uint32_t f : t.filters) Collect(q_.filters[f].lhs, &needed);

    if (t.IsLeaf()) {
      const TableDef& def = q_.Table(static_cast<uint32_t>(t.table));
      auto& scan = pb_.Scan(q_.catalog->db()[def.name], def.name);
      Env env;
      env.node = &scan;
      for (const uint64_t key : needed) {
        const ColumnId id{static_cast<uint32_t>(key >> 32),
                          static_cast<uint32_t>(key)};
        const ColumnDef& col = q_.Column(id);
        env.cols.emplace(key, WithPhys(col, [&](auto* tp) {
                           using T = std::remove_pointer_t<decltype(tp)>;
                           return scan.Col<T>(col.name);
                         }));
      }
      ApplyFilters(t, &env);
      return env;
    }

    std::set<uint64_t> bneed;
    std::set<uint64_t> pneed;
    for (const uint64_t key : needed) {
      const uint32_t table = static_cast<uint32_t>(key >> 32);
      ((t.build->mask >> table) & 1 ? bneed : pneed).insert(key);
    }
    // keys[i] = {build column, probe column} (optimizer orientation).
    for (const auto& k : t.keys) {
      bneed.insert(CKey(k[0]));
      pneed.insert(CKey(k[1]));
    }
    Env benv = Lower(*t.build, bneed);
    Env penv = Lower(*t.probe, pneed);

    auto& join = pb_.HashJoin(*benv.node, *penv.node);
    for (const auto& k : t.keys) {
      WithPhys(q_.Column(k[0]), [&](auto* tp) {
        using T = std::remove_pointer_t<decltype(tp)>;
        if constexpr (std::is_arithmetic_v<T>)
          join.Key<T>(penv.Ref(k[1]), benv.Ref(k[0]));
        else
          VCQ_CHECK_MSG(false, "string join keys rejected by the binder");
      });
    }
    Env env;
    env.node = &join;
    for (const uint64_t key : needed) {
      const ColumnId id{static_cast<uint32_t>(key >> 32),
                        static_cast<uint32_t>(key)};
      const ColumnDef& col = q_.Column(id);
      const bool from_build = (t.build->mask >> id.table) & 1;
      env.cols.emplace(key, WithPhys(col, [&](auto* tp) {
                         using T = std::remove_pointer_t<decltype(tp)>;
                         return from_build ? join.Build<T>(benv.Ref(id))
                                           : join.Probe<T>(penv.Ref(id));
                       }));
    }
    ApplyFilters(t, &env);
    return env;
  }

  /// Getter for a physical column output (string → SqlValue::Str).
  SlotGetter ColGetter(const ColumnDef& col, ColumnRef ref) {
    return WithPhys(col, [&](auto* tp) -> SlotGetter {
      using T = std::remove_pointer_t<decltype(tp)>;
      if constexpr (std::is_arithmetic_v<T>) {
        return [ref](const Plan::Batch& b, size_t k) {
          return SqlValue::Num(b.Value<T>(ref, k));
        };
      } else {
        return [ref](const Plan::Batch& b, size_t k) {
          return SqlValue::Str(std::string(b.Value<T>(ref, k).View()));
        };
      }
    });
  }

  template <typename T>
  static SlotGetter NumGetter(ColumnRef ref) {
    return [ref](const Plan::Batch& b, size_t k) {
      return SqlValue::Num(b.Value<T>(ref, k));
    };
  }

  /// Lowers one value scalar for the projection/group stage; returns the
  /// input ref plus its getter type. Creates `*map` on demand.
  std::pair<ColumnRef, SlotGetter> LowerValue(const Scalar& v, Env* env,
                                              MapNode** map) {
    auto ensure_map = [&]() -> MapNode& {
      if (*map == nullptr) *map = &pb_.Map(*env->node);
      return **map;
    };
    if (v.IsColumn()) {
      const ColumnDef& col = q_.Column(v.col);
      return {env->Ref(v.col), ColGetter(col, env->Ref(v.col))};
    }
    if (v.op == ScalarOp::kYear) {
      const ColumnRef ref = LowerYear(ensure_map(), *env, v);
      return {ref, NumGetter<int32_t>(ref)};
    }
    const ColumnRef ref = LowerNumeric(ensure_map(), *env, v);
    return {ref, NumGetter<int64_t>(ref)};
  }

  /// Shared tail: build the plan and wrap the row-gathering collector.
  tectorwise::Prepared Gather(PlanNode& root, std::vector<ColumnRef> refs,
                              std::vector<SlotGetter> getters) {
    // The SqlRow getters read via Batch::Value only, so streaming roots
    // (projections, HAVING Selects) are safe.
    Plan plan = pb_.Build(root, std::move(refs),
                          /*selection_aware_collector=*/true);
    auto shared =
        std::make_shared<std::vector<SlotGetter>>(std::move(getters));
    const ResultSpec spec = SpecFor(q_);
    return tectorwise::Prepared(
        std::move(plan),
        [shared, spec](const Plan& plan, const QueryOptions& opt,
                       const QueryParams& params) {
          std::vector<SqlRow> rows;
          plan.Run(opt, params, [&](const Plan::Batch& b) {
            for (size_t k = 0; k < b.size(); ++k) {
              SqlRow row;
              row.reserve(shared->size());
              for (const SlotGetter& g : *shared) row.push_back(g(b, k));
              rows.push_back(std::move(row));
            }
          });
          return Render(spec, std::move(rows));
        });
  }

  tectorwise::Prepared Projection(Env env) {
    MapNode* map = nullptr;
    std::vector<ColumnRef> refs;
    std::vector<SlotGetter> getters;
    for (const Scalar& v : q_.values) {
      auto [ref, get] = LowerValue(v, &env, &map);
      refs.push_back(ref);
      getters.push_back(std::move(get));
    }
    PlanNode& root = map != nullptr ? static_cast<PlanNode&>(*map) : *env.node;
    return Gather(root, std::move(refs), std::move(getters));
  }

  tectorwise::Prepared Aggregate_(Env env) {
    // Stage the group keys and aggregate arguments. Aggregation inputs are
    // int64 (Widen int32 arguments, dates included for min/max).
    MapNode* map = nullptr;
    auto ensure_map = [&]() -> MapNode& {
      if (map == nullptr) map = &pb_.Map(*env.node);
      return *map;
    };
    std::vector<ColumnRef> arg_refs(q_.aggs.size());
    for (size_t i = 0; i < q_.aggs.size(); ++i) {
      const sql::Aggregate& a = q_.aggs[i];
      if (!a.has_arg) continue;
      arg_refs[i] = LowerNumeric(ensure_map(), env, a.arg);
    }

    if (!q_.grouped) {
      // Ungrouped: FixedAgg emits one worker-local partial row per worker;
      // the collector folds them with each function's identity.
      PlanNode& input =
          map != nullptr ? static_cast<PlanNode&>(*map) : *env.node;
      auto& agg = pb_.FixedAgg(input);
      std::vector<ColumnRef> refs;
      std::vector<ast::AggFn> fns;
      for (size_t i = 0; i < q_.aggs.size(); ++i) {
        const sql::Aggregate& a = q_.aggs[i];
        switch (a.fn) {
          case ast::AggFn::kSum:
            refs.push_back(agg.Sum(arg_refs[i], Name("a")));
            break;
          case ast::AggFn::kCount:
            refs.push_back(agg.Count(Name("a")));
            break;
          case ast::AggFn::kMin:
            refs.push_back(agg.Min(arg_refs[i], Name("a")));
            break;
          case ast::AggFn::kMax:
            refs.push_back(agg.Max(arg_refs[i], Name("a")));
            break;
          case ast::AggFn::kAvg:
            VCQ_CHECK_MSG(false, "AVG is lowered to SUM/COUNT by the binder");
        }
        fns.push_back(a.fn);
      }
      Plan plan = pb_.Build(agg, refs);
      const ResultSpec spec = SpecFor(q_);
      return tectorwise::Prepared(
          std::move(plan),
          [refs, fns, spec](const Plan& plan, const QueryOptions& opt,
                            const QueryParams& params) {
            std::vector<int64_t> acc(fns.size());
            for (size_t i = 0; i < fns.size(); ++i)
              acc[i] = fns[i] == ast::AggFn::kMin   ? INT64_MAX
                       : fns[i] == ast::AggFn::kMax ? INT64_MIN
                                                    : 0;
            plan.Run(opt, params, [&](const Plan::Batch& b) {
              for (size_t k = 0; k < b.size(); ++k) {
                for (size_t i = 0; i < fns.size(); ++i) {
                  const int64_t v = b.Value<int64_t>(refs[i], k);
                  switch (fns[i]) {
                    case ast::AggFn::kMin:
                      acc[i] = std::min(acc[i], v);
                      break;
                    case ast::AggFn::kMax:
                      acc[i] = std::max(acc[i], v);
                      break;
                    default:
                      acc[i] += v;
                      break;
                  }
                }
              }
            });
            SqlRow row;
            row.reserve(acc.size());
            for (const int64_t v : acc) row.push_back(SqlValue::Num(v));
            std::vector<SqlRow> rows;
            rows.push_back(std::move(row));
            return Render(spec, std::move(rows));
          });
    }

    // Grouped: stage non-column keys in the same map, then HashGroup.
    std::vector<ColumnRef> key_ins(q_.values.size());
    for (size_t i = 0; i < q_.values.size(); ++i) {
      const Scalar& v = q_.values[i];
      if (v.IsColumn())
        key_ins[i] = env.Ref(v.col);
      else if (v.op == ScalarOp::kYear)
        key_ins[i] = LowerYear(ensure_map(), env, v);
      else
        key_ins[i] = LowerNumeric(ensure_map(), env, v);
    }
    PlanNode& input =
        map != nullptr ? static_cast<PlanNode&>(*map) : *env.node;
    auto& group = pb_.HashGroup(input);

    std::vector<ColumnRef> refs;
    std::vector<SlotGetter> getters;
    for (size_t i = 0; i < q_.values.size(); ++i) {
      const Scalar& v = q_.values[i];
      if (v.IsColumn()) {
        const ColumnDef& col = q_.Column(v.col);
        const ColumnRef out = WithPhys(col, [&](auto* tp) {
          using T = std::remove_pointer_t<decltype(tp)>;
          return group.Key<T>(key_ins[i]);
        });
        refs.push_back(out);
        getters.push_back(ColGetter(col, out));
      } else if (v.op == ScalarOp::kYear) {
        const ColumnRef out = group.Key<int32_t>(key_ins[i]);
        refs.push_back(out);
        getters.push_back(NumGetter<int32_t>(out));
      } else {
        const ColumnRef out = group.Key<int64_t>(key_ins[i]);
        refs.push_back(out);
        getters.push_back(NumGetter<int64_t>(out));
      }
    }
    std::vector<ColumnRef> agg_outs(q_.aggs.size());
    for (size_t i = 0; i < q_.aggs.size(); ++i) {
      const sql::Aggregate& a = q_.aggs[i];
      switch (a.fn) {
        case ast::AggFn::kSum:
          agg_outs[i] = group.Sum(arg_refs[i]);
          break;
        case ast::AggFn::kCount:
          agg_outs[i] = group.Count();
          break;
        case ast::AggFn::kMin:
          agg_outs[i] = group.Min(arg_refs[i]);
          break;
        case ast::AggFn::kMax:
          agg_outs[i] = group.Max(arg_refs[i]);
          break;
        case ast::AggFn::kAvg:
          VCQ_CHECK_MSG(false, "AVG is lowered to SUM/COUNT by the binder");
      }
      refs.push_back(agg_outs[i]);
      getters.push_back(NumGetter<int64_t>(agg_outs[i]));
    }

    PlanNode* root = &group;
    if (!q_.having.empty()) {
      auto& hsel = pb_.Select(group);
      for (const HavingPred& h : q_.having) {
        if (h.rhs.is_param)
          hsel.CmpParam<int64_t>(agg_outs[h.agg], TwCmp(h.cmp), h.rhs.param);
        else
          hsel.Cmp<int64_t>(agg_outs[h.agg], TwCmp(h.cmp), h.rhs.num);
      }
      root = &hsel;
    }
    return Gather(*root, std::move(refs), std::move(getters));
  }

  const PhysicalPlan& p_;
  const BoundQuery& q_;
  PlanBuilder pb_;
  int next_name_ = 0;
};

}  // namespace

tectorwise::Prepared LowerTectorwise(const PhysicalPlan& plan) {
  return Lowerer(plan).Run();
}

}  // namespace vcq::sql
