#include "sql/error.h"

namespace vcq::sql {

std::string SqlError::Format() const {
  return "SQL error at " + std::to_string(line) + ":" + std::to_string(col) +
         ": " + message;
}

namespace internal {

void Fail(size_t line, size_t col, std::string message) {
  throw SqlException{SqlError{line, col, std::move(message)}};
}

}  // namespace internal
}  // namespace vcq::sql
