#ifndef VCQ_SQL_SQL_H_
#define VCQ_SQL_SQL_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/options.h"
#include "runtime/params.h"
#include "runtime/query_result.h"
#include "runtime/relation.h"
#include "sql/catalog.h"
#include "sql/error.h"
#include "sql/lower.h"
#include "sql/optimizer.h"
#include "tectorwise/queries.h"

// The SQL front door, end to end:
//
//   text ── lexer/parser ──► ast::Select ── binder ──► BoundQuery
//        ── optimizer ──► PhysicalPlan ── lowerings ──► Tectorwise plan
//                                                       / Volcano pipeline
//
// Compile() runs everything up to the physical plan and is the only
// boundary where malformed SQL surfaces (as a positioned SqlError); a
// CompiledQuery is immutable, engine-independent, and shareable. The
// Session layer (api/session.h) wraps this as PrepareSql, turning a
// compiled query into an ordinary PreparedQuery with named $parameters.

namespace vcq::sql {

/// A parsed, bound, and optimized query. Thread-safe after construction;
/// keeps its catalog (and through it nothing but schema + stats) alive.
class CompiledQuery {
 public:
  CompiledQuery(std::shared_ptr<const Catalog> catalog, std::string text,
                PhysicalPlan plan, std::string ast_dump,
                std::string logical_dump)
      : catalog_(std::move(catalog)),
        text_(std::move(text)),
        plan_(std::move(plan)),
        ast_(std::move(ast_dump)),
        logical_(std::move(logical_dump)) {}

  const std::string& text() const { return text_; }
  const PhysicalPlan& plan() const { return plan_; }
  const std::vector<ParamDecl>& params() const { return plan_.query.params; }
  /// Optimizer plan cost: Σ estimated join-output rows.
  double cost() const { return plan_.cost; }

  /// Σ leaf tuple counts — rows every execution scans.
  uint64_t ScannedTuples() const;

  /// Builds the Tectorwise plan (callable repeatedly; each Prepared is
  /// independent).
  tectorwise::Prepared LowerTectorwise() const {
    return sql::LowerTectorwise(plan_);
  }

  /// One Volcano execution (single-threaded differential oracle).
  runtime::QueryResult RunVolcano(const runtime::QueryOptions& opt,
                                  const runtime::QueryParams& params,
                                  VolcanoStats* stats = nullptr) const {
    return sql::RunVolcano(plan_, opt, params, stats);
  }

  // EXPLAIN stages.
  const std::string& ExplainAst() const { return ast_; }
  const std::string& ExplainLogical() const { return logical_; }
  std::string ExplainOptimized() const { return ToString(plan_); }
  /// Lowers to Tectorwise and dumps the operator DAG.
  std::string ExplainPhysical() const;

 private:
  std::shared_ptr<const Catalog> catalog_;
  std::string text_;
  PhysicalPlan plan_;
  std::string ast_;
  std::string logical_;
};

struct CompileResult {
  std::shared_ptr<const CompiledQuery> query;  // null on error
  std::optional<SqlError> error;

  bool ok() const { return query != nullptr; }
};

/// Compiles `text` against the catalog. Never throws; malformed SQL comes
/// back as CompileResult::error with a 1-based source position. A non-null
/// `trace` records one "sql.parse"/"sql.bind"/"sql.optimize" span per
/// stage (runtime/trace.h) — Session::PrepareSql hands its prepare-time
/// trace in so EXPLAIN ANALYZE and Chrome exports show compile cost next
/// to execution cost.
CompileResult Compile(std::shared_ptr<const Catalog> catalog,
                      std::string_view text,
                      const OptimizerOptions& options = {},
                      runtime::QueryTrace* trace = nullptr);

/// Convenience: builds a throwaway catalog (rescans statistics — prefer
/// the shared-catalog overload for repeated compilation).
CompileResult Compile(const runtime::Database& db, std::string_view text,
                      const OptimizerOptions& options = {});

/// All four EXPLAIN stages (ast / logical / optimized / physical) with
/// headers — what Session::ExplainSql and the shell print.
std::string Explain(const CompiledQuery& query);

}  // namespace vcq::sql

#endif  // VCQ_SQL_SQL_H_
