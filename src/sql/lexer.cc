#include "sql/lexer.h"

#include <cctype>
#include <limits>

#include "sql/error.h"

namespace vcq::sql {
namespace {

[[noreturn]] void FailAt(ast::Pos pos, std::string message) {
  internal::Fail(pos.line, pos.col, std::move(message));
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return IsIdentStart(c) || std::isdigit(static_cast<unsigned char>(c));
}

}  // namespace

char Lexer::Peek(size_t ahead) const {
  return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
}

void Lexer::Advance() {
  if (pos_ >= text_.size()) return;
  if (text_[pos_] == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  ++pos_;
}

Token Lexer::Next() {
  // Skip whitespace and -- line comments.
  while (true) {
    const char c = Peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      Advance();
    } else if (c == '-' && Peek(1) == '-') {
      while (Peek() != '\n' && Peek() != '\0') Advance();
    } else {
      break;
    }
  }

  Token tok;
  tok.pos = Here();
  const char c = Peek();
  if (c == '\0') {
    tok.kind = Tok::kEnd;
    return tok;
  }

  if (IsIdentStart(c)) {
    std::string s;
    while (IsIdentChar(Peek())) {
      s.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(Peek()))));
      Advance();
    }
    tok.kind = Tok::kIdent;
    tok.text = std::move(s);
    return tok;
  }

  if (std::isdigit(static_cast<unsigned char>(c))) {
    int64_t value = 0;
    auto digit = [&](char d) {
      if (value > (std::numeric_limits<int64_t>::max() - (d - '0')) / 10)
        FailAt(tok.pos, "numeric literal overflows int64");
      value = value * 10 + (d - '0');
    };
    while (std::isdigit(static_cast<unsigned char>(Peek()))) {
      digit(Peek());
      Advance();
    }
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      Advance();  // '.'
      int scale = 0;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        digit(Peek());
        ++scale;
        Advance();
      }
      tok.kind = Tok::kDecimal;
      tok.value = value;
      tok.scale = scale;
      return tok;
    }
    tok.kind = Tok::kInt;
    tok.value = value;
    return tok;
  }

  if (c == '\'') {
    Advance();
    std::string s;
    while (true) {
      const char q = Peek();
      if (q == '\0') FailAt(tok.pos, "unterminated string literal");
      if (q == '\'') {
        Advance();
        if (Peek() == '\'') {  // '' escape
          s.push_back('\'');
          Advance();
          continue;
        }
        break;
      }
      s.push_back(q);
      Advance();
    }
    tok.kind = Tok::kString;
    tok.text = std::move(s);
    return tok;
  }

  if (c == '$') {
    Advance();
    if (!IsIdentStart(Peek()))
      FailAt(tok.pos, "expected parameter name after '$'");
    std::string s;
    while (IsIdentChar(Peek())) {
      s.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(Peek()))));
      Advance();
    }
    tok.kind = Tok::kParam;
    tok.text = std::move(s);
    return tok;
  }

  Advance();
  switch (c) {
    case '(':
      tok.kind = Tok::kLParen;
      return tok;
    case ')':
      tok.kind = Tok::kRParen;
      return tok;
    case ',':
      tok.kind = Tok::kComma;
      return tok;
    case '.':
      tok.kind = Tok::kDot;
      return tok;
    case '+':
      tok.kind = Tok::kPlus;
      return tok;
    case '-':
      tok.kind = Tok::kMinus;
      return tok;
    case '*':
      tok.kind = Tok::kStar;
      return tok;
    case '/':
      tok.kind = Tok::kSlash;
      return tok;
    case '=':
      tok.kind = Tok::kEq;
      return tok;
    case '<':
      if (Peek() == '=') {
        Advance();
        tok.kind = Tok::kLe;
      } else if (Peek() == '>') {
        Advance();
        tok.kind = Tok::kNe;
      } else {
        tok.kind = Tok::kLt;
      }
      return tok;
    case '>':
      if (Peek() == '=') {
        Advance();
        tok.kind = Tok::kGe;
      } else {
        tok.kind = Tok::kGt;
      }
      return tok;
    case '!':
      if (Peek() == '=') {
        Advance();
        tok.kind = Tok::kNe;
        return tok;
      }
      break;
    default:
      break;
  }
  FailAt(tok.pos, std::string("unexpected character '") + c + "'");
}

}  // namespace vcq::sql
