#ifndef VCQ_SQL_PARSER_H_
#define VCQ_SQL_PARSER_H_

#include <string_view>

#include "sql/ast.h"

// Recursive-descent parser for the SQL subset. Grammar (keywords are
// case-insensitive; [] optional, {} repeated):
//
//   query     := SELECT item {, item}
//                FROM tref { , tref | [INNER] JOIN tref ON condition }
//                [WHERE condition]
//                [GROUP BY expr {, expr}]
//                [HAVING condition]
//                [ORDER BY expr [ASC|DESC] {, ...}]
//                [LIMIT int]
//   item      := expr [[AS] ident]
//   tref      := ident
//   condition := or-expr
//   or        := and { OR and }
//   and       := cmp { AND cmp }
//   cmp       := add [ (< | <= | > | >= | = | <> | !=) add
//                    | BETWEEN add AND add
//                    | IN ( expr {, expr} )
//                    | LIKE 'pattern' ]
//   add       := mul { (+ | -) mul }
//   mul       := unary { (* | /) unary }
//   unary     := - unary | primary
//   primary   := int | decimal | 'string' | DATE 'YYYY-MM-DD' | $param
//              | ident [. ident] | ( or )
//              | (SUM|MIN|MAX|AVG) ( expr ) | COUNT ( * | expr )
//              | EXTRACT ( YEAR FROM expr )
//
// JOIN ... ON conditions are folded into the WHERE conjunction — the
// binder treats comma-joins and explicit JOINs identically. Errors throw
// internal::SqlException with the source position.

namespace vcq::sql {

ast::Select Parse(std::string_view text);

}  // namespace vcq::sql

#endif  // VCQ_SQL_PARSER_H_
