#include "sql/binder.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "sql/error.h"

namespace vcq::sql {
namespace {

using ast::Expr;

[[noreturn]] void FailAt(ast::Pos pos, std::string message) {
  internal::Fail(pos.line, pos.col, std::move(message));
}

int64_t Pow10(int n, ast::Pos pos) {
  int64_t v = 1;
  for (int i = 0; i < n; ++i) {
    if (v > INT64_MAX / 10) FailAt(pos, "numeric scale out of range");
    v *= 10;
  }
  return v;
}

CmpOp FlipCmp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return CmpOp::kGt;
    case CmpOp::kLe:
      return CmpOp::kGe;
    case CmpOp::kGt:
      return CmpOp::kLt;
    case CmpOp::kGe:
      return CmpOp::kLe;
    case CmpOp::kEq:
      return CmpOp::kEq;
  }
  return op;
}

bool ContainsAgg(const Expr& e) {
  if (e.kind == Expr::Kind::kAgg) return true;
  for (const ast::ExprPtr& a : e.args)
    if (ContainsAgg(*a)) return true;
  return false;
}

class Binder {
 public:
  Binder(const Catalog& catalog, const ast::Select& sel)
      : catalog_(catalog), sel_(sel) {
    q_.catalog = &catalog;
  }

  BoundQuery Run() {
    BindFrom();
    if (sel_.where) Condition(*sel_.where);
    MergeJoinEdges();
    CheckConnected();
    ValidateFilters();
    BindGroupBy();
    BindSelectList();
    BindHaving();
    BindOrderBy();
    if (sel_.limit >= 0) q_.limit = static_cast<uint64_t>(sel_.limit);
    return std::move(q_);
  }

 private:
  // ---- FROM ----

  void BindFrom() {
    for (const ast::TableRef& t : sel_.from) {
      const TableDef* def = catalog_.Find(t.name);
      if (def == nullptr) FailAt(t.pos, "unknown table '" + t.name + "'");
      for (uint32_t i : q_.tables)
        if (&catalog_.tables()[i] == def)
          FailAt(t.pos, "duplicate table '" + t.name +
                            "' (self joins are not supported)");
      const size_t index = def - catalog_.tables().data();
      q_.tables.push_back(static_cast<uint32_t>(index));
    }
    if (q_.tables.size() > 16)
      FailAt(sel_.from[16].pos, "too many tables (at most 16)");
  }

  // ---- scalar binding ----

  Scalar BindScalar(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kColumn:
        return ResolveColumn(e);
      case Expr::Kind::kIntLit: {
        Scalar s;
        s.op = ScalarOp::kConst;
        s.type = SqlType{TypeKind::kNumeric, e.scale};
        s.value = e.int_val;
        s.pos = e.pos;
        return s;
      }
      case Expr::Kind::kDateLit: {
        Scalar s;
        s.op = ScalarOp::kConst;
        s.type = SqlType{TypeKind::kDate, 0};
        s.value = e.int_val;
        s.pos = e.pos;
        return s;
      }
      case Expr::Kind::kStrLit:
        FailAt(e.pos, "string literals are only supported in predicates");
      case Expr::Kind::kParam:
        FailAt(e.pos,
               "parameters are only supported as predicate bounds ($" +
                   e.str + ")");
      case Expr::Kind::kNeg: {
        Scalar arg = BindScalar(*e.args[0]);
        RequireNumeric(arg, e.pos, "unary minus");
        Scalar zero;
        zero.op = ScalarOp::kConst;
        zero.type = arg.type;
        zero.value = 0;
        zero.pos = e.pos;
        Scalar s;
        s.op = ScalarOp::kSub;
        s.type = arg.type;
        s.pos = e.pos;
        s.args.push_back(std::move(zero));
        s.args.push_back(std::move(arg));
        return s;
      }
      case Expr::Kind::kBinary:
        return BindArithmetic(e);
      case Expr::Kind::kYear: {
        Scalar arg = BindScalar(*e.args[0]);
        if (arg.type.kind != TypeKind::kDate)
          FailAt(e.pos, "EXTRACT(YEAR ...) requires a date argument, got " +
                            TypeName(arg.type));
        Scalar s;
        s.op = ScalarOp::kYear;
        s.type = SqlType{TypeKind::kNumeric, 0};
        s.pos = e.pos;
        s.args.push_back(std::move(arg));
        return s;
      }
      case Expr::Kind::kAgg:
        FailAt(e.pos, "aggregates are not allowed in this context");
      default:
        FailAt(e.pos, "expected a scalar expression");
    }
  }

  Scalar ResolveColumn(const Expr& e) {
    Scalar s;
    s.op = ScalarOp::kColumn;
    s.pos = e.pos;
    if (!e.table.empty()) {
      for (uint32_t t = 0; t < q_.tables.size(); ++t) {
        const TableDef& def = q_.Table(t);
        if (def.name != e.table) continue;
        const size_t c = def.IndexOf(e.str);
        if (c == SIZE_MAX)
          FailAt(e.pos, "unknown column '" + e.table + "." + e.str + "'");
        s.col = ColumnId{t, static_cast<uint32_t>(c)};
        s.type = def.columns[c].type;
        return s;
      }
      FailAt(e.pos, "table '" + e.table + "' is not in the FROM clause");
    }
    bool found = false;
    for (uint32_t t = 0; t < q_.tables.size(); ++t) {
      const size_t c = q_.Table(t).IndexOf(e.str);
      if (c == SIZE_MAX) continue;
      if (found)
        FailAt(e.pos, "ambiguous column '" + e.str + "'");
      found = true;
      s.col = ColumnId{t, static_cast<uint32_t>(c)};
      s.type = q_.Table(t).columns[c].type;
    }
    if (!found) FailAt(e.pos, "unknown column '" + e.str + "'");
    return s;
  }

  void RequireNumeric(const Scalar& s, ast::Pos pos, const char* what) {
    if (s.type.kind != TypeKind::kNumeric)
      FailAt(pos, std::string(what) + " requires numeric operands, got " +
                      TypeName(s.type));
  }

  /// Multiplies `s` by 10^diff so its scale becomes `scale`.
  Scalar Rescale(Scalar s, int scale) {
    if (s.type.scale == scale) return s;
    VCQ_CHECK(s.type.scale < scale);
    const ast::Pos pos = s.pos;
    Scalar factor;
    factor.op = ScalarOp::kConst;
    factor.type = SqlType{TypeKind::kNumeric, 0};
    factor.value = Pow10(scale - s.type.scale, pos);
    factor.pos = pos;
    Scalar out;
    out.op = ScalarOp::kMul;
    out.type = SqlType{TypeKind::kNumeric, scale};
    out.pos = pos;
    out.args.push_back(std::move(s));
    out.args.push_back(std::move(factor));
    return out;
  }

  Scalar BindArithmetic(const Expr& e) {
    if (e.op == ast::BinOp::kDiv)
      FailAt(e.pos, "division is not supported");
    if (e.op != ast::BinOp::kAdd && e.op != ast::BinOp::kSub &&
        e.op != ast::BinOp::kMul)
      FailAt(e.pos, "comparison is not a scalar value here");
    Scalar a = BindScalar(*e.args[0]);
    Scalar b = BindScalar(*e.args[1]);
    // date - date is the number of days between them; no other date math.
    if (e.op == ast::BinOp::kSub && a.type.kind == TypeKind::kDate &&
        b.type.kind == TypeKind::kDate) {
      Scalar s;
      s.op = ScalarOp::kSub;
      s.type = SqlType{TypeKind::kNumeric, 0};
      s.pos = e.pos;
      s.args.push_back(std::move(a));
      s.args.push_back(std::move(b));
      return s;
    }
    RequireNumeric(a, e.pos, "arithmetic");
    RequireNumeric(b, e.pos, "arithmetic");
    Scalar s;
    s.pos = e.pos;
    if (e.op == ast::BinOp::kMul) {
      s.op = ScalarOp::kMul;
      s.type = SqlType{TypeKind::kNumeric, a.type.scale + b.type.scale};
    } else {
      const int scale = std::max(a.type.scale, b.type.scale);
      a = Rescale(std::move(a), scale);
      b = Rescale(std::move(b), scale);
      s.op = e.op == ast::BinOp::kAdd ? ScalarOp::kAdd : ScalarOp::kSub;
      s.type = SqlType{TypeKind::kNumeric, scale};
    }
    s.args.push_back(std::move(a));
    s.args.push_back(std::move(b));
    return s;
  }

  /// Evaluates a table-free scalar to its constant value.
  int64_t EvalConst(const Scalar& s) {
    switch (s.op) {
      case ScalarOp::kConst:
        return s.value;
      case ScalarOp::kAdd:
        return EvalConst(s.args[0]) + EvalConst(s.args[1]);
      case ScalarOp::kSub:
        return EvalConst(s.args[0]) - EvalConst(s.args[1]);
      case ScalarOp::kMul:
        return EvalConst(s.args[0]) * EvalConst(s.args[1]);
      default:
        VCQ_CHECK_MSG(false, "not a constant expression");
    }
    return 0;
  }

  // ---- parameters ----

  void DeclareParam(const std::string& name, runtime::ParamType type,
                    ast::Pos pos) {
    for (const ParamDecl& d : q_.params) {
      if (d.name != name) continue;
      if (d.type != type)
        FailAt(pos, "parameter '$" + name + "' used with conflicting types");
      return;
    }
    q_.params.push_back(ParamDecl{name, type});
  }

  // ---- predicates ----

  void Condition(const Expr& e) {
    if (e.kind == Expr::Kind::kBinary && e.op == ast::BinOp::kAnd) {
      Condition(*e.args[0]);
      Condition(*e.args[1]);
      return;
    }
    if (e.kind == Expr::Kind::kBinary && e.op == ast::BinOp::kOr) {
      OrPattern(e);
      return;
    }
    if (e.kind == Expr::Kind::kBetween) {
      Scalar lhs = BindScalar(*e.args[0]);
      AddCmp(lhs, CmpOp::kGe, *e.args[1], e.pos);
      AddCmp(std::move(lhs), CmpOp::kLe, *e.args[2], e.pos);
      return;
    }
    if (e.kind == Expr::Kind::kIn) {
      InPattern(e);
      return;
    }
    if (e.kind == Expr::Kind::kLike) {
      LikePattern(e);
      return;
    }
    if (e.kind == Expr::Kind::kBinary) {
      if (e.op == ast::BinOp::kNe)
        FailAt(e.pos, "'<>' predicates are not supported");
      Comparison(e);
      return;
    }
    FailAt(e.pos, "expected a predicate");
  }

  static bool IsOperandExpr(const Expr& e) {
    return e.kind == Expr::Kind::kParam || e.kind == Expr::Kind::kStrLit;
  }

  CmpOp AstCmp(ast::BinOp op, ast::Pos pos) {
    switch (op) {
      case ast::BinOp::kLt:
        return CmpOp::kLt;
      case ast::BinOp::kLe:
        return CmpOp::kLe;
      case ast::BinOp::kGt:
        return CmpOp::kGt;
      case ast::BinOp::kGe:
        return CmpOp::kGe;
      case ast::BinOp::kEq:
        return CmpOp::kEq;
      default:
        FailAt(pos, "expected a comparison");
    }
  }

  void Comparison(const Expr& e) {
    CmpOp op = AstCmp(e.op, e.pos);
    const Expr* lhs = e.args[0].get();
    const Expr* rhs = e.args[1].get();
    // Put the parameter/string-literal operand on the right.
    if (IsOperandExpr(*lhs) && !IsOperandExpr(*rhs)) {
      std::swap(lhs, rhs);
      op = FlipCmp(op);
    }
    if (IsOperandExpr(*rhs)) {
      AddCmp(BindScalar(*lhs), op, *rhs, e.pos);
      return;
    }
    // Both sides are scalar expressions.
    Scalar a = BindScalar(*lhs);
    Scalar b = BindScalar(*rhs);
    const bool a_const = a.TableMask() == 0;
    const bool b_const = b.TableMask() == 0;
    if (a_const && b_const)
      FailAt(e.pos, "predicate references no table column");
    if (a_const) {
      std::swap(a, b);
      op = FlipCmp(op);
    }
    if (b.TableMask() == 0) {
      AddCmpScalarConst(std::move(a), op, std::move(b), e.pos);
      return;
    }
    // column-to-column. Cross-table plain-column equality is a join edge.
    if (op == CmpOp::kEq && a.IsColumn() && b.IsColumn() &&
        a.col.table != b.col.table) {
      AddJoinKey(a, b, e.pos);
      return;
    }
    if (a.type.kind == TypeKind::kString || b.type.kind == TypeKind::kString)
      FailAt(e.pos, "string column comparisons are only supported against "
                    "literals and parameters");
    // Normalize to (a - b) CMP 0.
    Scalar diff;
    diff.pos = e.pos;
    diff.op = ScalarOp::kSub;
    if (a.type.kind == TypeKind::kDate && b.type.kind == TypeKind::kDate) {
      diff.type = SqlType{TypeKind::kNumeric, 0};
    } else {
      RequireNumeric(a, e.pos, "comparison");
      RequireNumeric(b, e.pos, "comparison");
      const int scale = std::max(a.type.scale, b.type.scale);
      a = Rescale(std::move(a), scale);
      b = Rescale(std::move(b), scale);
      diff.type = SqlType{TypeKind::kNumeric, scale};
    }
    diff.args.push_back(std::move(a));
    diff.args.push_back(std::move(b));
    Scalar zero;
    zero.op = ScalarOp::kConst;
    zero.type = diff.type;
    zero.value = 0;
    zero.pos = e.pos;
    AddCmpScalarConst(std::move(diff), op, std::move(zero), e.pos);
  }

  /// lhs CMP operand-expression (param / string literal / constant scalar).
  void AddCmp(Scalar lhs, CmpOp op, const Expr& rhs, ast::Pos pos) {
    if (lhs.TableMask() == 0)
      FailAt(pos, "predicate references no table column");
    if (rhs.kind == Expr::Kind::kParam) {
      Operand o;
      o.is_param = true;
      o.param = rhs.str;
      DeclareParam(rhs.str, ParamTypeFor(lhs.type, rhs.pos), rhs.pos);
      PushCmp(std::move(lhs), op, std::move(o), pos);
      return;
    }
    if (rhs.kind == Expr::Kind::kStrLit) {
      if (lhs.type.kind != TypeKind::kString)
        FailAt(rhs.pos, "cannot compare " + TypeName(lhs.type) +
                            " with a string literal");
      Operand o;
      o.str = rhs.str;
      PushCmp(std::move(lhs), op, std::move(o), pos);
      return;
    }
    Scalar bound = BindScalar(rhs);
    if (bound.TableMask() != 0)
      FailAt(rhs.pos, "predicate bound must be a constant or parameter");
    AddCmpScalarConst(std::move(lhs), op, std::move(bound), pos);
  }

  /// lhs CMP const-scalar, with scale/type unification.
  void AddCmpScalarConst(Scalar lhs, CmpOp op, Scalar konst, ast::Pos pos) {
    if (lhs.type.kind == TypeKind::kString)
      FailAt(pos, "cannot compare a string column with " +
                      TypeName(konst.type));
    Operand o;
    if (lhs.type.kind == TypeKind::kDate) {
      if (konst.type.kind != TypeKind::kDate)
        FailAt(pos, "cannot compare a date with " + TypeName(konst.type));
      o.num = EvalConst(konst);
      PushCmp(std::move(lhs), op, std::move(o), pos);
      return;
    }
    if (konst.type.kind != TypeKind::kNumeric)
      FailAt(pos, "cannot compare " + TypeName(lhs.type) + " with " +
                      TypeName(konst.type));
    // Unify scales: scale the constant up, or — when the literal carries
    // more fractional digits than the column — the column expression.
    if (konst.type.scale < lhs.type.scale)
      konst = Rescale(std::move(konst), lhs.type.scale);
    else if (konst.type.scale > lhs.type.scale)
      lhs = Rescale(std::move(lhs), konst.type.scale);
    o.num = EvalConst(konst);
    PushCmp(std::move(lhs), op, std::move(o), pos);
  }

  void PushCmp(Scalar lhs, CmpOp op, Operand o, ast::Pos pos) {
    Predicate p;
    p.kind = PredKind::kCmp;
    p.cmp = op;
    p.is_string = lhs.type.kind == TypeKind::kString;
    if (p.is_string && !lhs.IsColumn())
      FailAt(pos, "string predicates support only plain columns");
    p.lhs = std::move(lhs);
    p.rhs.push_back(std::move(o));
    p.pos = pos;
    q_.filters.push_back(std::move(p));
  }

  runtime::ParamType ParamTypeFor(const SqlType& t, ast::Pos pos) {
    switch (t.kind) {
      case TypeKind::kNumeric:
        return runtime::ParamType::kInt;
      case TypeKind::kDate:
        return runtime::ParamType::kDate;
      case TypeKind::kString:
        return runtime::ParamType::kString;
    }
    FailAt(pos, "untyped parameter");
  }

  Operand BindOperand(const Expr& e, const SqlType& lhs_type) {
    Operand o;
    if (e.kind == Expr::Kind::kParam) {
      o.is_param = true;
      o.param = e.str;
      DeclareParam(e.str, ParamTypeFor(lhs_type, e.pos), e.pos);
      return o;
    }
    if (e.kind == Expr::Kind::kStrLit) {
      if (lhs_type.kind != TypeKind::kString)
        FailAt(e.pos, "cannot compare " + TypeName(lhs_type) +
                          " with a string literal");
      o.str = e.str;
      return o;
    }
    Scalar bound = BindScalar(e);
    if (bound.TableMask() != 0)
      FailAt(e.pos, "operand must be a constant or parameter");
    if (lhs_type.kind == TypeKind::kString)
      FailAt(e.pos, "cannot compare a string column with " +
                        TypeName(bound.type));
    if (lhs_type.kind == TypeKind::kDate) {
      if (bound.type.kind != TypeKind::kDate)
        FailAt(e.pos, "cannot compare a date with " + TypeName(bound.type));
    } else if (bound.type.kind != TypeKind::kNumeric ||
               bound.type.scale > lhs_type.scale) {
      FailAt(e.pos, "operand type mismatch (" + TypeName(bound.type) +
                        " vs " + TypeName(lhs_type) + ")");
    } else {
      bound = Rescale(std::move(bound), lhs_type.scale);
    }
    o.num = EvalConst(bound);
    return o;
  }

  void InPattern(const Expr& e) {
    Scalar lhs = BindScalar(*e.args[0]);
    if (lhs.TableMask() == 0)
      FailAt(e.pos, "predicate references no table column");
    const size_t n = e.args.size() - 1;
    if (n > 2)
      FailAt(e.pos, "IN lists with more than two values are not supported");
    if (lhs.type.kind == TypeKind::kString && !lhs.IsColumn())
      FailAt(e.pos, "string predicates support only plain columns");
    std::vector<Operand> ops;
    for (size_t i = 1; i < e.args.size(); ++i)
      ops.push_back(BindOperand(*e.args[i], lhs.type));
    Predicate p;
    p.is_string = lhs.type.kind == TypeKind::kString;
    p.pos = e.pos;
    if (n == 1) {
      p.kind = PredKind::kCmp;
      p.cmp = CmpOp::kEq;
    } else {
      p.kind = PredKind::kEqOr2;
    }
    p.lhs = std::move(lhs);
    p.rhs = std::move(ops);
    q_.filters.push_back(std::move(p));
  }

  void OrPattern(const Expr& e) {
    // Only `col = a OR col = b` (same column) is supported — it lowers to
    // the engines' EqOr2 primitive.
    const Expr* sides[2] = {e.args[0].get(), e.args[1].get()};
    Scalar col[2];
    Operand ops[2];
    for (int i = 0; i < 2; ++i) {
      const Expr& s = *sides[i];
      if (s.kind != Expr::Kind::kBinary || s.op != ast::BinOp::kEq)
        FailAt(e.pos, "OR is only supported as 'col = x OR col = y'");
      const Expr* l = s.args[0].get();
      const Expr* r = s.args[1].get();
      if (l->kind != Expr::Kind::kColumn) std::swap(l, r);
      if (l->kind != Expr::Kind::kColumn)
        FailAt(e.pos, "OR is only supported as 'col = x OR col = y'");
      col[i] = BindScalar(*l);
      ops[i] = BindOperand(*r, col[i].type);
    }
    if (!ScalarEqual(col[0], col[1]))
      FailAt(e.pos, "OR branches must test the same column");
    Predicate p;
    p.kind = PredKind::kEqOr2;
    p.is_string = col[0].type.kind == TypeKind::kString;
    p.lhs = std::move(col[0]);
    p.rhs.push_back(std::move(ops[0]));
    p.rhs.push_back(std::move(ops[1]));
    p.pos = e.pos;
    q_.filters.push_back(std::move(p));
  }

  void LikePattern(const Expr& e) {
    Scalar lhs = BindScalar(*e.args[0]);
    if (lhs.type.kind != TypeKind::kString || !lhs.IsColumn())
      FailAt(e.pos, "LIKE requires a string column");
    if (e.args.size() == 2) {
      // LIKE $param: the binding is a raw substring needle evaluated with
      // the engines' Contains primitive (variable-length columns only —
      // same restriction as literal '%substring%').
      const ColumnDef& col = q_.Column(lhs.col);
      if (col.tag != runtime::TypeTag::kVarchar)
        FailAt(e.pos,
               "parameterized LIKE is only supported on varchar columns");
      const Expr& pat = *e.args[1];
      Operand o;
      o.is_param = true;
      o.param = pat.str;
      DeclareParam(pat.str, runtime::ParamType::kString, pat.pos);
      Predicate p;
      p.kind = PredKind::kContains;
      p.is_string = true;
      p.lhs = std::move(lhs);
      p.rhs.push_back(std::move(o));
      p.pos = e.pos;
      q_.filters.push_back(std::move(p));
      return;
    }
    const std::string& pat = e.str;
    if (pat.find('_') != std::string::npos)
      FailAt(e.pos, "unsupported LIKE pattern (no '_' wildcards)");
    const size_t first = pat.find('%');
    if (first == std::string::npos) {
      // Exact match.
      Operand o;
      o.str = pat;
      PushCmp(std::move(lhs), CmpOp::kEq, std::move(o), e.pos);
      return;
    }
    if (first == pat.size() - 1 && first > 0) {
      // 'prefix%': two range comparisons over the column's sort order.
      const std::string prefix = pat.substr(0, first);
      std::string upper = prefix;
      size_t i = upper.size();
      while (i > 0 && static_cast<unsigned char>(upper[i - 1]) == 0xFF) --i;
      if (i == 0)
        FailAt(e.pos, "unsupported LIKE prefix");
      upper.resize(i);
      upper.back() = static_cast<char>(upper.back() + 1);
      Operand lo;
      lo.str = prefix;
      Operand hi;
      hi.str = upper;
      Scalar lhs2 = lhs;
      PushCmp(std::move(lhs), CmpOp::kGe, std::move(lo), e.pos);
      PushCmp(std::move(lhs2), CmpOp::kLt, std::move(hi), e.pos);
      return;
    }
    if (first == 0 && pat.size() > 2 && pat.back() == '%' &&
        pat.find('%', 1) == pat.size() - 1) {
      // '%substring%': engine Contains primitive, variable-length only.
      const ColumnDef& col = q_.Column(lhs.col);
      if (col.tag != runtime::TypeTag::kVarchar)
        FailAt(e.pos,
               "substring LIKE is only supported on varchar columns");
      Predicate p;
      p.kind = PredKind::kContains;
      p.is_string = true;
      p.lhs = std::move(lhs);
      Operand o;
      o.str = pat.substr(1, pat.size() - 2);
      p.rhs.push_back(std::move(o));
      p.pos = e.pos;
      q_.filters.push_back(std::move(p));
      return;
    }
    FailAt(e.pos,
           "unsupported LIKE pattern (only 'prefix%' and '%substring%')");
  }

  // ---- joins ----

  void AddJoinKey(const Scalar& a, const Scalar& b, ast::Pos pos) {
    const ColumnDef& ca = q_.Column(a.col);
    const ColumnDef& cb = q_.Column(b.col);
    if (ca.type.kind == TypeKind::kString ||
        cb.type.kind == TypeKind::kString)
      FailAt(pos, "string join keys are not supported");
    if (ca.tag != cb.tag)
      FailAt(pos, "join key physical types must match");
    JoinEdge edge;
    edge.keys.push_back({a.col, b.col});
    edge.mask = (1u << a.col.table) | (1u << b.col.table);
    raw_edges_.push_back(std::move(edge));
    raw_edge_pos_.push_back(pos);
  }

  void MergeJoinEdges() {
    for (size_t i = 0; i < raw_edges_.size(); ++i) {
      JoinEdge& e = raw_edges_[i];
      JoinEdge* merged = nullptr;
      for (JoinEdge& m : q_.joins)
        if (m.mask == e.mask) merged = &m;
      if (merged == nullptr) {
        q_.joins.push_back(std::move(e));
        continue;
      }
      // Orient the new pair the same way as the existing keys.
      auto pair = e.keys[0];
      if (pair[0].table != merged->keys[0][0].table) std::swap(pair[0], pair[1]);
      merged->keys.push_back(pair);
      if (merged->keys.size() > 2)
        FailAt(raw_edge_pos_[i], "joins support at most two key columns");
      // Composite keys are packed into one 64-bit value by the Volcano
      // lowering, so both pairs must be 32-bit.
      for (const auto& k : merged->keys)
        for (const ColumnId& c : k)
          if (q_.Column(c).tag != runtime::TypeTag::kInt32)
            FailAt(raw_edge_pos_[i],
                   "composite join keys must be 32-bit columns");
    }
  }

  /// Lowering-time physical limits the predicate builders cannot see
  /// locally: string literals must fit the column's storage (Char<N>::From
  /// aborts on overflow), and two-value IN/OR lists must be uniformly
  /// constants or parameters — the engines' EqOr2 primitives have no
  /// mixed form.
  void ValidateFilters() {
    for (const Predicate& p : q_.filters) {
      if (p.kind == PredKind::kEqOr2 &&
          p.rhs[0].is_param != p.rhs[1].is_param)
        FailAt(p.pos, "IN/OR lists must be all constants or all parameters");
      if (!p.is_string || p.kind == PredKind::kContains) continue;
      const ColumnDef& col = q_.Column(p.lhs.col);
      const size_t cap = col.tag == runtime::TypeTag::kVarchar
                             ? col.elem_size - 1
                             : col.elem_size;
      for (const Operand& o : p.rhs)
        if (!o.is_param && o.str.size() > cap)
          FailAt(p.pos, "string literal is wider than column '" + col.name +
                            "' (" + std::to_string(cap) + " chars)");
    }
  }

  void CheckConnected() {
    if (q_.tables.size() <= 1) return;
    uint32_t reached = 1u;  // table 0
    bool grew = true;
    while (grew) {
      grew = false;
      for (const JoinEdge& e : q_.joins) {
        if ((e.mask & reached) != 0 && (e.mask & ~reached) != 0) {
          reached |= e.mask;
          grew = true;
        }
      }
    }
    for (uint32_t t = 0; t < q_.tables.size(); ++t) {
      if ((reached & (1u << t)) == 0)
        FailAt(sel_.from[t].pos,
               "table '" + q_.Table(t).name +
                   "' is not connected by a join predicate (cross products "
                   "are not supported)");
    }
  }

  // ---- GROUP BY / select list / aggregates ----

  void BindGroupBy() {
    if (sel_.group_by.empty()) return;
    q_.grouped = true;
    for (const ast::ExprPtr& g : sel_.group_by) {
      Scalar s = BindScalar(*g);
      if (s.type.kind == TypeKind::kString && !s.IsColumn())
        FailAt(g->pos, "string group keys must be plain columns");
      if (s.TableMask() == 0)
        FailAt(g->pos, "group key references no table column");
      for (const Scalar& prev : q_.values)
        if (ScalarEqual(prev, s)) FailAt(g->pos, "duplicate group key");
      q_.values.push_back(std::move(s));
    }
  }

  uint32_t FindOrAddAgg(ast::AggFn fn, bool has_arg, Scalar arg,
                        ast::Pos pos) {
    SqlType type = has_arg ? arg.type : SqlType{TypeKind::kNumeric, 0};
    if (fn == ast::AggFn::kCount) {
      has_arg = false;  // COUNT(x) == COUNT(*): no NULLs in this library
      type = SqlType{TypeKind::kNumeric, 0};
    }
    for (uint32_t i = 0; i < q_.aggs.size(); ++i) {
      const Aggregate& a = q_.aggs[i];
      if (a.fn != fn || a.has_arg != has_arg) continue;
      if (!has_arg || ScalarEqual(a.arg, arg)) return i;
    }
    Aggregate a;
    a.fn = fn;
    a.has_arg = has_arg;
    if (has_arg) a.arg = std::move(arg);
    a.type = type;
    q_.aggs.push_back(std::move(a));
    if (q_.aggs.size() > 32) FailAt(pos, "too many aggregates");
    return static_cast<uint32_t>(q_.aggs.size() - 1);
  }

  /// Binds one aggregate call; returns the Output (unnamed).
  Output BindAggItem(const Expr& e) {
    Output out;
    const ast::AggFn fn = e.agg;
    Scalar arg;
    bool has_arg = !e.args.empty();
    if (has_arg) {
      arg = BindScalar(*e.args[0]);
      if (ContainsAgg(*e.args[0]))
        FailAt(e.pos, "aggregates cannot be nested");
    }
    switch (fn) {
      case ast::AggFn::kSum:
      case ast::AggFn::kAvg:
        if (!has_arg || arg.type.kind != TypeKind::kNumeric)
          FailAt(e.pos, std::string(ast::AggFnName(fn)) +
                            " requires a numeric argument");
        if (arg.TableMask() == 0)
          FailAt(e.pos, "aggregate arguments must reference a table column");
        break;
      case ast::AggFn::kMin:
      case ast::AggFn::kMax:
        if (!has_arg || (arg.type.kind != TypeKind::kNumeric &&
                         arg.type.kind != TypeKind::kDate))
          FailAt(e.pos, std::string(ast::AggFnName(fn)) +
                            " requires a numeric or date argument");
        if (arg.TableMask() == 0)
          FailAt(e.pos, "aggregate arguments must reference a table column");
        break;
      case ast::AggFn::kCount:
        break;
    }
    if (fn == ast::AggFn::kAvg) {
      const SqlType arg_type = arg.type;
      out.src = Output::Src::kAvg;
      out.index = FindOrAddAgg(ast::AggFn::kSum, true, std::move(arg), e.pos);
      out.count_index =
          FindOrAddAgg(ast::AggFn::kCount, false, Scalar{}, e.pos);
      // Rendered via ResultBuilder::Avg(sum, count, in_scale, 2); the
      // input scale travels as the SUM aggregate's type.
      (void)arg_type;
      out.type = SqlType{TypeKind::kNumeric, 2};
      return out;
    }
    out.src = Output::Src::kAgg;
    out.index = FindOrAddAgg(fn, has_arg, std::move(arg), e.pos);
    out.type = q_.aggs[out.index].type;
    return out;
  }

  std::string DefaultName(const Expr& e) const {
    switch (e.kind) {
      case Expr::Kind::kColumn:
        return e.str;
      case Expr::Kind::kAgg:
        return ast::AggFnName(e.agg);
      case Expr::Kind::kYear:
        return "year";
      default:
        return "expr";
    }
  }

  void BindSelectList() {
    bool any_agg = false;
    bool any_plain = false;
    for (const ast::SelectItem& item : sel_.items)
      (ContainsAgg(*item.expr) ? any_agg : any_plain) = true;
    if (any_agg && any_plain && !q_.grouped)
      FailAt(sel_.items[0].expr->pos,
             "mixing aggregates and plain columns requires GROUP BY");
    if (q_.grouped && !any_agg && !any_plain)
      FailAt(sel_.items[0].expr->pos, "empty select list");

    for (const ast::SelectItem& item : sel_.items) {
      const Expr& e = *item.expr;
      Output out;
      if (ContainsAgg(e)) {
        if (e.kind != Expr::Kind::kAgg)
          FailAt(e.pos,
                 "aggregates cannot be nested in expressions");
        out = BindAggItem(e);
      } else {
        Scalar s = BindScalar(e);
        if (q_.grouped || any_agg) {
          // Must match a group key.
          bool found = false;
          for (uint32_t v = 0; v < q_.values.size(); ++v) {
            if (ScalarEqual(q_.values[v], s)) {
              out.index = v;
              found = true;
              break;
            }
          }
          if (!found)
            FailAt(e.pos,
                   "select expression must be an aggregate or appear in "
                   "GROUP BY");
        } else {
          if (s.TableMask() == 0)
            FailAt(e.pos, "constant select expressions are not supported");
          out.index = static_cast<uint32_t>(q_.values.size());
          q_.values.push_back(std::move(s));
        }
        out.src = Output::Src::kValue;
        out.type = q_.values[out.index].type;
      }
      out.name = item.alias.empty() ? DefaultName(e) : item.alias;
      q_.outputs.push_back(std::move(out));
    }
  }

  // ---- HAVING ----

  void BindHaving() {
    if (!sel_.having) return;
    if (!q_.grouped)
      FailAt(sel_.having->pos, "HAVING requires GROUP BY");
    HavingCondition(*sel_.having);
  }

  void HavingCondition(const Expr& e) {
    if (e.kind == Expr::Kind::kBinary && e.op == ast::BinOp::kAnd) {
      HavingCondition(*e.args[0]);
      HavingCondition(*e.args[1]);
      return;
    }
    if (e.kind != Expr::Kind::kBinary)
      FailAt(e.pos, "HAVING supports only 'aggregate CMP constant'");
    if (e.op == ast::BinOp::kNe)
      FailAt(e.pos, "'<>' predicates are not supported");
    CmpOp op = AstCmp(e.op, e.pos);
    const Expr* lhs = e.args[0].get();
    const Expr* rhs = e.args[1].get();
    if (lhs->kind != Expr::Kind::kAgg) {
      std::swap(lhs, rhs);
      op = FlipCmp(op);
    }
    if (lhs->kind != Expr::Kind::kAgg)
      FailAt(e.pos, "HAVING supports only 'aggregate CMP constant'");
    const Output agg_out = BindAggItem(*lhs);
    if (agg_out.src == Output::Src::kAvg)
      FailAt(lhs->pos, "AVG is not supported in HAVING");
    HavingPred h;
    h.agg = agg_out.index;
    h.cmp = op;
    h.rhs = BindOperand(*rhs, q_.aggs[h.agg].type);
    h.pos = e.pos;
    q_.having.push_back(std::move(h));
  }

  // ---- ORDER BY ----

  void BindOrderBy() {
    for (const ast::OrderItem& item : sel_.order_by) {
      const Expr& e = *item.expr;
      size_t index = SIZE_MAX;
      if (e.kind == Expr::Kind::kIntLit && e.scale == 0) {
        if (e.int_val < 1 ||
            e.int_val > static_cast<int64_t>(q_.outputs.size()))
          FailAt(e.pos, "ORDER BY ordinal out of range");
        index = static_cast<size_t>(e.int_val - 1);
      } else if (e.kind == Expr::Kind::kColumn && e.table.empty()) {
        for (size_t i = 0; i < q_.outputs.size(); ++i)
          if (q_.outputs[i].name == e.str) {
            index = i;
            break;
          }
      }
      if (index == SIZE_MAX && e.kind == Expr::Kind::kAgg) {
        const Output probe = BindAggItem(e);
        for (size_t i = 0; i < q_.outputs.size(); ++i) {
          const Output& o = q_.outputs[i];
          if (o.src == probe.src && o.index == probe.index) {
            index = i;
            break;
          }
        }
      }
      if (index == SIZE_MAX && e.kind != Expr::Kind::kIntLit) {
        // Fall back to matching the bound scalar against value outputs.
        if (e.kind != Expr::Kind::kAgg) {
          const Scalar s = BindScalar(e);
          for (size_t i = 0; i < q_.outputs.size(); ++i) {
            const Output& o = q_.outputs[i];
            if (o.src == Output::Src::kValue &&
                ScalarEqual(q_.values[o.index], s)) {
              index = i;
              break;
            }
          }
        }
      }
      if (index == SIZE_MAX)
        FailAt(e.pos, "ORDER BY expression is not in the select list");
      q_.order_by.emplace_back(static_cast<uint32_t>(index), item.desc);
    }
  }

 private:
  const Catalog& catalog_;
  const ast::Select& sel_;
  BoundQuery q_;
  std::vector<JoinEdge> raw_edges_;
  std::vector<ast::Pos> raw_edge_pos_;
};

}  // namespace

BoundQuery Bind(const Catalog& catalog, const ast::Select& select) {
  Binder binder(catalog, select);
  return binder.Run();
}

}  // namespace vcq::sql
