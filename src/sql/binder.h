#ifndef VCQ_SQL_BINDER_H_
#define VCQ_SQL_BINDER_H_

#include "sql/ast.h"
#include "sql/catalog.h"
#include "sql/logical.h"

// Semantic analysis: resolves tables and columns against the catalog,
// types every expression under the fixed-point model (unifying numeric
// scales with power-of-ten rescales so lowering never converts), splits
// the WHERE conjunction into single-/multi-table predicates and equi-join
// edges, lowers AVG onto SUM plus a shared hidden COUNT, and validates
// every feature gate (see the error-path tests in tests/sql_test.cc for
// the full list). Everything a query can get wrong is diagnosed here, at
// prepare time, with a source position — execution never fails on query
// shape. Errors throw internal::SqlException.

namespace vcq::sql {

BoundQuery Bind(const Catalog& catalog, const ast::Select& select);

}  // namespace vcq::sql

#endif  // VCQ_SQL_BINDER_H_
