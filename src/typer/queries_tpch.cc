#include <algorithm>
#include <cstring>
#include <mutex>
#include <span>
#include <tuple>

#include "runtime/cancel.h"
#include "runtime/hash.h"
#include "runtime/types.h"
#include "runtime/worker_pool.h"
#include "typer/group_table.h"
#include "typer/join_table.h"
#include "typer/queries.h"
#include "typer/rof.h"

// TPC-H pipelines for the Typer engine. Every pipeline is one fused loop
// (scan + select + arithmetic + probe + aggregate), the code shape that
// data-centric produce/consume generation emits (paper Fig. 2a). Typer uses
// the low-latency CRC hash (paper §4.1: "the CRC hash function improves
// [Typer's] performance up to 40%"). Predicate constants are parameters
// (vcq::QueryCatalog declares names and spec defaults), read once at the
// top of each run so one pipeline serves every binding; column accessors
// are resolved once per prepared query (ColumnCache, queries.h). Every
// morsel loop polls opt.cancel so a cancelled or deadline-expired run
// stops claiming work at the next morsel boundary — the poll comes before
// the claim, which (with sticky interruption and sequential regions)
// guarantees a partially built hash table is never probed.

namespace vcq::typer {

using runtime::Char;
using runtime::Database;
using runtime::HashCrc32;
using runtime::Hashmap;
using runtime::MorselQueue;
using runtime::PoolFor;
using runtime::QueryOptions;
using runtime::QueryParams;
using runtime::QueryResult;
using runtime::Relation;
using runtime::ResultBuilder;
using runtime::Varchar;
using runtime::YearOf;

// ---------------------------------------------------------------------------
// Q1
// ---------------------------------------------------------------------------
namespace {

struct Q1Group {
  Hashmap::EntryHeader header;
  uint16_t key;  // returnflag | linestatus << 8
  int64_t sum_qty, sum_base, sum_disc_price, sum_charge, sum_disc, count;

  bool KeyEquals(const Q1Group& o) const { return key == o.key; }
  void Combine(const Q1Group& o) {
    sum_qty += o.sum_qty;
    sum_base += o.sum_base;
    sum_disc_price += o.sum_disc_price;
    sum_charge += o.sum_charge;
    sum_disc += o.sum_disc;
    count += o.count;
  }
};

struct Q1Cols {
  std::span<const int32_t> shipdate;
  std::span<const Char<1>> rf, ls;
  std::span<const int64_t> qty, extprice, discount, tax;

  static Q1Cols Resolve(const Database& db) {
    const Relation& l = db["lineitem"];
    return {l.Col<int32_t>("l_shipdate"),    l.Col<Char<1>>("l_returnflag"),
            l.Col<Char<1>>("l_linestatus"),  l.Col<int64_t>("l_quantity"),
            l.Col<int64_t>("l_extendedprice"), l.Col<int64_t>("l_discount"),
            l.Col<int64_t>("l_tax")};
  }
};

}  // namespace

QueryResult RunQ1(const Database& db, const QueryOptions& opt,
                  const QueryParams& params, const ColumnCache& cache) {
  const Q1Cols& c = cache.Get<Q1Cols>([&] { return Q1Cols::Resolve(db); });
  const auto& [shipdate, rf, ls, qty, extprice, discount, tax] = c;
  const int32_t cutoff = params.Date("shipdate");

  std::vector<std::unique_ptr<LocalGroupTable<Q1Group>>> locals(opt.threads);
  MorselQueue morsels(shipdate.size(), opt.morsel_grain);
  PoolFor(opt).Run(opt, morsels.total(), [&](size_t wid) {
    locals[wid] = std::make_unique<LocalGroupTable<Q1Group>>(opt);
    LocalGroupTable<Q1Group>& local = *locals[wid];
    size_t begin, end;
    while (!Stop(opt) && morsels.Next(begin, end)) {
      for (size_t i = begin; i < end; ++i) {
        if (shipdate[i] > cutoff) continue;
        const uint16_t key = static_cast<uint16_t>(
            static_cast<uint8_t>(rf[i].data[0]) |
            (static_cast<uint8_t>(ls[i].data[0]) << 8));
        Q1Group* g = local.FindOrCreate(
            HashCrc32(key), [&](const Q1Group& e) { return e.key == key; },
            [&](Q1Group* e) {
              e->key = key;
              e->sum_qty = e->sum_base = e->sum_disc_price = 0;
              e->sum_charge = e->sum_disc = e->count = 0;
            });
        const int64_t disc_price = extprice[i] * (100 - discount[i]);
        g->sum_qty += qty[i];
        g->sum_base += extprice[i];
        g->sum_disc_price += disc_price;
        g->sum_charge += disc_price * (100 + tax[i]);
        g->sum_disc += discount[i];
        g->count += 1;
      }
    }
  });

  auto merged = MergeLocalGroups(locals, opt);
  std::vector<Q1Group*>& groups = merged.groups;
  // Serial tail: surface a trip (deadline, budget, injected fault) that
  // landed during or after the parallel phase instead of sorting and
  // building a result nobody will see.
  if (Stop(opt)) return QueryResult::Failed(opt.cancel->status());
  std::sort(groups.begin(), groups.end(), [](Q1Group* a, Q1Group* b) {
    return std::make_pair(a->key & 0xff, a->key >> 8) <
           std::make_pair(b->key & 0xff, b->key >> 8);
  });
  ResultBuilder rb({"l_returnflag", "l_linestatus", "sum_qty",
                    "sum_base_price", "sum_disc_price", "sum_charge",
                    "avg_qty", "avg_price", "avg_disc", "count_order"});
  for (const Q1Group* g : groups) {
    const char r = static_cast<char>(g->key & 0xff);
    const char l = static_cast<char>(g->key >> 8);
    rb.BeginRow()
        .Str(std::string_view(&r, 1))
        .Str(std::string_view(&l, 1))
        .Numeric(g->sum_qty, 2)
        .Numeric(g->sum_base, 2)
        .Numeric(g->sum_disc_price, 4)
        .Numeric(g->sum_charge, 6)
        .Avg(g->sum_qty, g->count, 2, 2)
        .Avg(g->sum_base, g->count, 2, 2)
        .Avg(g->sum_disc, g->count, 2, 2)
        .Int(g->count);
  }
  return rb.Finish();
}

// ---------------------------------------------------------------------------
// Q6
// ---------------------------------------------------------------------------
namespace {

struct Q6Cols {
  std::span<const int32_t> shipdate;
  std::span<const int64_t> discount, quantity, extprice;

  static Q6Cols Resolve(const Database& db) {
    const Relation& l = db["lineitem"];
    return {l.Col<int32_t>("l_shipdate"), l.Col<int64_t>("l_discount"),
            l.Col<int64_t>("l_quantity"),
            l.Col<int64_t>("l_extendedprice")};
  }
};

}  // namespace

QueryResult RunQ6(const Database& db, const QueryOptions& opt,
                  const QueryParams& params, const ColumnCache& cache) {
  const Q6Cols& c = cache.Get<Q6Cols>([&] { return Q6Cols::Resolve(db); });
  const auto& [shipdate, discount, quantity, extprice] = c;
  const int32_t lo = params.Date("shipdate_lo");
  const int32_t hi = params.Date("shipdate_hi");
  const int64_t disc_lo = params.Int("discount_lo");
  const int64_t disc_hi = params.Int("discount_hi");
  const int64_t qty_max = params.Int("quantity_max");

  int64_t total = 0;
  std::mutex mu;
  MorselQueue morsels(shipdate.size(), opt.morsel_grain);
  PoolFor(opt).Run(opt, morsels.total(), [&](size_t) {
    // Branch-free predicated evaluation (paper footnote 8: Typer's Q6 is
    // branch-free), with two accumulators so the conditional add is not one
    // long loop-carried dependency chain.
    int64_t acc0 = 0, acc1 = 0;
    size_t begin, end;
    while (!Stop(opt) && morsels.Next(begin, end)) {
      size_t i = begin;
      for (; i + 2 <= end; i += 2) {
        const bool p0 = (shipdate[i] >= lo) & (shipdate[i] <= hi) &
                        (discount[i] >= disc_lo) & (discount[i] <= disc_hi) &
                        (quantity[i] < qty_max);
        const bool p1 = (shipdate[i + 1] >= lo) & (shipdate[i + 1] <= hi) &
                        (discount[i + 1] >= disc_lo) &
                        (discount[i + 1] <= disc_hi) &
                        (quantity[i + 1] < qty_max);
        acc0 += p0 ? extprice[i] * discount[i] : 0;
        acc1 += p1 ? extprice[i + 1] * discount[i + 1] : 0;
      }
      for (; i < end; ++i) {
        const bool pass = (shipdate[i] >= lo) & (shipdate[i] <= hi) &
                          (discount[i] >= disc_lo) &
                          (discount[i] <= disc_hi) & (quantity[i] < qty_max);
        acc0 += pass ? extprice[i] * discount[i] : 0;
      }
    }
    std::lock_guard<std::mutex> lock(mu);
    total += acc0 + acc1;
  });

  // Serial tail: surface a trip (deadline, budget, injected fault) that
  // landed during or after the parallel phase instead of sorting and
  // building a result nobody will see.
  if (Stop(opt)) return QueryResult::Failed(opt.cancel->status());
  ResultBuilder rb({"revenue"});
  rb.BeginRow().Numeric(total, 4);
  return rb.Finish();
}

// ---------------------------------------------------------------------------
// Q3
// ---------------------------------------------------------------------------
namespace {

struct Q3Cust {
  Hashmap::EntryHeader header;
  int32_t custkey;
};
struct Q3Order {
  Hashmap::EntryHeader header;
  int32_t orderkey, orderdate, shippriority;
};
struct Q3Group {
  Hashmap::EntryHeader header;
  int32_t orderkey, orderdate, shippriority;
  int64_t revenue;

  bool KeyEquals(const Q3Group& o) const { return orderkey == o.orderkey; }
  void Combine(const Q3Group& o) { revenue += o.revenue; }
};

struct Q3Cols {
  std::span<const int32_t> c_custkey;
  std::span<const Char<10>> c_mkt;
  std::span<const int32_t> o_orderkey, o_custkey, o_orderdate, o_shipprio;
  std::span<const int32_t> l_orderkey, l_shipdate;
  std::span<const int64_t> l_extprice, l_discount;

  static Q3Cols Resolve(const Database& db) {
    const Relation& c = db["customer"];
    const Relation& o = db["orders"];
    const Relation& l = db["lineitem"];
    return {c.Col<int32_t>("c_custkey"),   c.Col<Char<10>>("c_mktsegment"),
            o.Col<int32_t>("o_orderkey"),  o.Col<int32_t>("o_custkey"),
            o.Col<int32_t>("o_orderdate"), o.Col<int32_t>("o_shippriority"),
            l.Col<int32_t>("l_orderkey"),  l.Col<int32_t>("l_shipdate"),
            l.Col<int64_t>("l_extendedprice"),
            l.Col<int64_t>("l_discount")};
  }
};

}  // namespace

QueryResult RunQ3(const Database& db, const QueryOptions& opt,
                  const QueryParams& params, const ColumnCache& cache) {
  const Q3Cols& cols =
      cache.Get<Q3Cols>([&] { return Q3Cols::Resolve(db); });
  const int32_t date = params.Date("date");
  const Char<10> segment = Char<10>::From(params.Str("segment"));

  // Pipeline 1: build customer hash table (the bound market segment).
  const auto& c_custkey = cols.c_custkey;
  const auto& c_mkt = cols.c_mkt;
  JoinTable<Q3Cust> ht_cust(opt);
  {
    MorselQueue morsels(c_custkey.size(), opt.morsel_grain);
    ht_cust.Build([&](size_t, auto emit) {
      size_t begin, end;
      while (!Stop(opt) && morsels.Next(begin, end)) {
        for (size_t i = begin; i < end; ++i) {
          if (!(c_mkt[i] == segment)) continue;
          Q3Cust e;
          e.header.hash = HashCrc32(static_cast<uint32_t>(c_custkey[i]));
          e.custkey = c_custkey[i];
          emit(e);
        }
      }
    }, c_custkey.size());
  }

  // Pipeline 2: orders semi-joined with those customers.
  const auto& o_orderkey = cols.o_orderkey;
  const auto& o_custkey = cols.o_custkey;
  const auto& o_orderdate = cols.o_orderdate;
  const auto& o_shipprio = cols.o_shipprio;
  JoinTable<Q3Order> ht_ord(opt);
  {
    MorselQueue morsels(o_orderkey.size(), opt.morsel_grain);
    ht_ord.Build([&](size_t, auto emit) {
      size_t begin, end;
      while (!Stop(opt) && morsels.Next(begin, end)) {
        for (size_t i = begin; i < end; ++i) {
          if (o_orderdate[i] >= date) continue;
          const int32_t ck = o_custkey[i];
          const uint64_t h = HashCrc32(static_cast<uint32_t>(ck));
          if (ht_cust.Lookup(h, [&](const Q3Cust& c) {
                return c.custkey == ck;
              }) == nullptr) {
            continue;
          }
          Q3Order e;
          e.header.hash = HashCrc32(static_cast<uint32_t>(o_orderkey[i]));
          e.orderkey = o_orderkey[i];
          e.orderdate = o_orderdate[i];
          e.shippriority = o_shipprio[i];
          emit(e);
        }
      }
    }, o_orderkey.size());
  }

  // Pipeline 3: probe with lineitem, aggregate revenue per order. Under
  // opt.rof the loop runs block-staged (paper §9.1): qualifying tuples are
  // gathered per block, the orders-table hashes staged with prefetches,
  // and the probes resolved a block behind with the latency hidden.
  const auto& l_orderkey = cols.l_orderkey;
  const auto& l_shipdate = cols.l_shipdate;
  const auto& l_extprice = cols.l_extprice;
  const auto& l_discount = cols.l_discount;
  std::vector<std::unique_ptr<LocalGroupTable<Q3Group>>> locals(opt.threads);
  {
    MorselQueue morsels(l_orderkey.size(), opt.morsel_grain);
    PoolFor(opt).Run(opt, morsels.total(), [&](size_t wid) {
      locals[wid] = std::make_unique<LocalGroupTable<Q3Group>>(opt);
      LocalGroupTable<Q3Group>& local = *locals[wid];
      auto resolve = [&](size_t i, uint64_t h) {
        const int32_t ok = l_orderkey[i];
        const Q3Order* o = ht_ord.Lookup(
            h, [&](const Q3Order& e) { return e.orderkey == ok; });
        if (o == nullptr) return;
        Q3Group* g = local.FindOrCreate(
            h, [&](const Q3Group& e) { return e.orderkey == ok; },
            [&](Q3Group* e) {
              e->orderkey = o->orderkey;
              e->orderdate = o->orderdate;
              e->shippriority = o->shippriority;
              e->revenue = 0;
            });
        g->revenue += l_extprice[i] * (100 - l_discount[i]);
      };
      size_t begin, end;
      while (!Stop(opt) && morsels.Next(begin, end)) {
        if (opt.rof) {
          StagedProbe ord(ht_ord, [&](size_t i) {
            return HashCrc32(static_cast<uint32_t>(l_orderkey[i]));
          });
          StagedProbeLoop(
              begin, end, opt.rof_block,
              [&](size_t i) { return l_shipdate[i] > date; }, resolve, ord);
        } else {
          for (size_t i = begin; i < end; ++i) {
            if (l_shipdate[i] <= date) continue;
            resolve(i, HashCrc32(static_cast<uint32_t>(l_orderkey[i])));
          }
        }
      }
    });
  }

  auto merged = MergeLocalGroups(locals, opt);
  std::vector<Q3Group*>& groups = merged.groups;
  // Serial tail: surface a trip (deadline, budget, injected fault) that
  // landed during or after the parallel phase instead of sorting and
  // building a result nobody will see.
  if (Stop(opt)) return QueryResult::Failed(opt.cancel->status());
  std::sort(groups.begin(), groups.end(), [](Q3Group* a, Q3Group* b) {
    return std::tie(b->revenue, a->orderdate, a->orderkey) <
           std::tie(a->revenue, b->orderdate, b->orderkey);
  });
  if (groups.size() > 10) groups.resize(10);
  ResultBuilder rb(
      {"l_orderkey", "revenue", "o_orderdate", "o_shippriority"});
  for (const Q3Group* g : groups) {
    rb.BeginRow()
        .Int(g->orderkey)
        .Numeric(g->revenue, 4)
        .Date(g->orderdate)
        .Int(g->shippriority);
  }
  return rb.Finish();
}

// ---------------------------------------------------------------------------
// Q9
// ---------------------------------------------------------------------------
namespace {

struct Q9Part {
  Hashmap::EntryHeader header;
  int32_t partkey;
};
struct Q9PartSupp {
  Hashmap::EntryHeader header;
  int32_t partkey, suppkey;
  int64_t supplycost;
};
struct Q9Supp {
  Hashmap::EntryHeader header;
  int32_t suppkey, nationkey;
};
struct Q9Order {
  Hashmap::EntryHeader header;
  int32_t orderkey, year;
};
struct Q9Group {
  Hashmap::EntryHeader header;
  uint64_t key;  // nationkey << 32 | year
  int64_t profit;

  bool KeyEquals(const Q9Group& o) const { return key == o.key; }
  void Combine(const Q9Group& o) { profit += o.profit; }
};

uint64_t PackPartSupp(int32_t partkey, int32_t suppkey) {
  return static_cast<uint64_t>(static_cast<uint32_t>(partkey)) |
         (static_cast<uint64_t>(static_cast<uint32_t>(suppkey)) << 32);
}

struct Q9Cols {
  std::span<const int32_t> p_partkey;
  std::span<const Varchar<55>> p_name;
  std::span<const int32_t> ps_partkey, ps_suppkey;
  std::span<const int64_t> ps_cost;
  std::span<const int32_t> s_suppkey, s_nationkey;
  std::span<const int32_t> o_orderkey, o_orderdate;
  std::span<const int32_t> l_orderkey, l_partkey, l_suppkey;
  std::span<const int64_t> l_extprice, l_discount, l_quantity;
  std::span<const Char<25>> n_name;

  static Q9Cols Resolve(const Database& db) {
    const Relation& p = db["part"];
    const Relation& ps = db["partsupp"];
    const Relation& s = db["supplier"];
    const Relation& o = db["orders"];
    const Relation& l = db["lineitem"];
    const Relation& n = db["nation"];
    return {p.Col<int32_t>("p_partkey"),   p.Col<Varchar<55>>("p_name"),
            ps.Col<int32_t>("ps_partkey"), ps.Col<int32_t>("ps_suppkey"),
            ps.Col<int64_t>("ps_supplycost"),
            s.Col<int32_t>("s_suppkey"),   s.Col<int32_t>("s_nationkey"),
            o.Col<int32_t>("o_orderkey"),  o.Col<int32_t>("o_orderdate"),
            l.Col<int32_t>("l_orderkey"),  l.Col<int32_t>("l_partkey"),
            l.Col<int32_t>("l_suppkey"),   l.Col<int64_t>("l_extendedprice"),
            l.Col<int64_t>("l_discount"),  l.Col<int64_t>("l_quantity"),
            n.Col<Char<25>>("n_name")};
  }
};

}  // namespace

QueryResult RunQ9(const Database& db, const QueryOptions& opt,
                  const QueryParams& params, const ColumnCache& cache) {
  const Q9Cols& cols =
      cache.Get<Q9Cols>([&] { return Q9Cols::Resolve(db); });

  // Parts of the requested color.
  const std::string& color = params.Str("color");
  const auto& p_partkey = cols.p_partkey;
  const auto& p_name = cols.p_name;
  JoinTable<Q9Part> ht_part(opt);
  {
    MorselQueue morsels(p_partkey.size(), opt.morsel_grain);
    ht_part.Build([&](size_t, auto emit) {
      size_t begin, end;
      while (!Stop(opt) && morsels.Next(begin, end)) {
        for (size_t i = begin; i < end; ++i) {
          if (!p_name[i].Contains(color)) continue;
          Q9Part e;
          e.header.hash = HashCrc32(static_cast<uint32_t>(p_partkey[i]));
          e.partkey = p_partkey[i];
          emit(e);
        }
      }
    }, p_partkey.size());
  }

  // partsupp filtered by green parts, keyed by the composite key.
  const auto& ps_partkey = cols.ps_partkey;
  const auto& ps_suppkey = cols.ps_suppkey;
  const auto& ps_cost = cols.ps_cost;
  JoinTable<Q9PartSupp> ht_ps(opt);
  {
    MorselQueue morsels(ps_partkey.size(), opt.morsel_grain);
    ht_ps.Build([&](size_t, auto emit) {
      size_t begin, end;
      while (!Stop(opt) && morsels.Next(begin, end)) {
        for (size_t i = begin; i < end; ++i) {
          const int32_t pk = ps_partkey[i];
          const uint64_t h = HashCrc32(static_cast<uint32_t>(pk));
          if (ht_part.Lookup(h, [&](const Q9Part& e) {
                return e.partkey == pk;
              }) == nullptr) {
            continue;
          }
          Q9PartSupp e;
          e.header.hash = HashCrc32(PackPartSupp(pk, ps_suppkey[i]));
          e.partkey = pk;
          e.suppkey = ps_suppkey[i];
          e.supplycost = ps_cost[i];
          emit(e);
        }
      }
    }, ps_partkey.size());
  }

  // Suppliers.
  const auto& s_suppkey = cols.s_suppkey;
  const auto& s_nationkey = cols.s_nationkey;
  JoinTable<Q9Supp> ht_supp(opt);
  {
    MorselQueue morsels(s_suppkey.size(), opt.morsel_grain);
    ht_supp.Build([&](size_t, auto emit) {
      size_t begin, end;
      while (!Stop(opt) && morsels.Next(begin, end)) {
        for (size_t i = begin; i < end; ++i) {
          Q9Supp e;
          e.header.hash = HashCrc32(static_cast<uint32_t>(s_suppkey[i]));
          e.suppkey = s_suppkey[i];
          e.nationkey = s_nationkey[i];
          emit(e);
        }
      }
    }, s_suppkey.size());
  }

  // Orders (year extracted at build time).
  const auto& o_orderkey = cols.o_orderkey;
  const auto& o_orderdate = cols.o_orderdate;
  JoinTable<Q9Order> ht_ord(opt);
  {
    MorselQueue morsels(o_orderkey.size(), opt.morsel_grain);
    ht_ord.Build([&](size_t, auto emit) {
      size_t begin, end;
      while (!Stop(opt) && morsels.Next(begin, end)) {
        for (size_t i = begin; i < end; ++i) {
          Q9Order e;
          e.header.hash = HashCrc32(static_cast<uint32_t>(o_orderkey[i]));
          e.orderkey = o_orderkey[i];
          e.year = YearOf(o_orderdate[i]);
          emit(e);
        }
      }
    }, o_orderkey.size());
  }

  // Probe pipeline over lineitem.
  const auto& l_orderkey = cols.l_orderkey;
  const auto& l_partkey = cols.l_partkey;
  const auto& l_suppkey = cols.l_suppkey;
  const auto& l_extprice = cols.l_extprice;
  const auto& l_discount = cols.l_discount;
  const auto& l_quantity = cols.l_quantity;
  std::vector<std::unique_ptr<LocalGroupTable<Q9Group>>> locals(opt.threads);
  {
    MorselQueue morsels(l_orderkey.size(), opt.morsel_grain);
    PoolFor(opt).Run(opt, morsels.total(), [&](size_t wid) {
      locals[wid] = std::make_unique<LocalGroupTable<Q9Group>>(opt);
      LocalGroupTable<Q9Group>& local = *locals[wid];
      // One resolve body for both paths; the hash providers keep the fused
      // path lazy (hashes after the partsupp hit) while the ROF path reads
      // the staged buffers.
      auto resolve = [&](size_t i, auto&& ps_h, auto&& supp_h,
                         auto&& ord_h) {
        const uint64_t pskey = PackPartSupp(l_partkey[i], l_suppkey[i]);
        const Q9PartSupp* ps =
            ht_ps.Lookup(ps_h(), [&](const Q9PartSupp& e) {
              return PackPartSupp(e.partkey, e.suppkey) == pskey;
            });
        if (ps == nullptr) return;
        const int32_t sk = l_suppkey[i];
        const Q9Supp* s = ht_supp.Lookup(
            supp_h(), [&](const Q9Supp& e) { return e.suppkey == sk; });
        const int32_t ok = l_orderkey[i];
        const Q9Order* o = ht_ord.Lookup(
            ord_h(), [&](const Q9Order& e) { return e.orderkey == ok; });
        const int64_t amount = l_extprice[i] * (100 - l_discount[i]) -
                               ps->supplycost * l_quantity[i];
        const uint64_t key =
            (static_cast<uint64_t>(static_cast<uint32_t>(s->nationkey))
             << 32) |
            static_cast<uint32_t>(o->year);
        Q9Group* g = local.FindOrCreate(
            HashCrc32(key), [&](const Q9Group& e) { return e.key == key; },
            [&](Q9Group* e) {
              e->key = key;
              e->profit = 0;
            });
        g->profit += amount;
      };
      size_t begin, end;
      while (!Stop(opt) && morsels.Next(begin, end)) {
        if (opt.rof) {
          // Relaxed operator fusion (paper §9.1): the fused loop is split
          // at block boundaries; all three probe tables are staged (the
          // orders directory — 1.5M entries per SF — is the memory-bound
          // one, and the partsupp/supplier stages ride along for free).
          StagedProbe ps(ht_ps, [&](size_t i) {
            return HashCrc32(PackPartSupp(l_partkey[i], l_suppkey[i]));
          });
          StagedProbe supp(ht_supp, [&](size_t i) {
            return HashCrc32(static_cast<uint32_t>(l_suppkey[i]));
          });
          StagedProbe ord(ht_ord, [&](size_t i) {
            return HashCrc32(static_cast<uint32_t>(l_orderkey[i]));
          });
          StagedProbeLoop(
              begin, end, opt.rof_block, kRofAll,
              [&](size_t i, uint64_t ps_h, uint64_t supp_h, uint64_t ord_h) {
                resolve(
                    i, [&] { return ps_h; }, [&] { return supp_h; },
                    [&] { return ord_h; });
              },
              ps, supp, ord);
        } else {
          for (size_t i = begin; i < end; ++i) {
            resolve(
                i,
                [&] {
                  return HashCrc32(PackPartSupp(l_partkey[i], l_suppkey[i]));
                },
                [&] { return HashCrc32(static_cast<uint32_t>(l_suppkey[i])); },
                [&] {
                  return HashCrc32(static_cast<uint32_t>(l_orderkey[i]));
                });
          }
        }
      }
    });
  }

  auto merged = MergeLocalGroups(locals, opt);
  std::vector<Q9Group*>& groups = merged.groups;
  // Serial tail: surface a trip (deadline, budget, injected fault) that
  // landed during or after the parallel phase instead of sorting and
  // building a result nobody will see.
  if (Stop(opt)) return QueryResult::Failed(opt.cancel->status());
  const auto& n_name = cols.n_name;
  auto nation_of = [](const Q9Group* g) {
    return static_cast<int32_t>(g->key >> 32);
  };
  auto year_of = [](const Q9Group* g) {
    return static_cast<int32_t>(g->key & 0xffffffff);
  };
  std::sort(groups.begin(), groups.end(), [&](Q9Group* a, Q9Group* b) {
    const auto an = n_name[nation_of(a)].View();
    const auto bn = n_name[nation_of(b)].View();
    if (an != bn) return an < bn;
    return year_of(a) > year_of(b);
  });
  ResultBuilder rb({"nation", "o_year", "sum_profit"});
  for (const Q9Group* g : groups) {
    rb.BeginRow()
        .Str(n_name[nation_of(g)].View())
        .Int(year_of(g))
        .Numeric(g->profit, 4);
  }
  return rb.Finish();
}

// ---------------------------------------------------------------------------
// Q18
// ---------------------------------------------------------------------------
namespace {

struct Q18Group {
  Hashmap::EntryHeader header;
  int32_t orderkey;
  int64_t sum_qty;

  bool KeyEquals(const Q18Group& o) const { return orderkey == o.orderkey; }
  void Combine(const Q18Group& o) { sum_qty += o.sum_qty; }
};
struct Q18Order {
  Hashmap::EntryHeader header;
  int32_t orderkey;
  int64_t sum_qty;
};
struct Q18Cust {
  Hashmap::EntryHeader header;
  int32_t custkey;
  Char<25> name;
};

struct Q18Cols {
  std::span<const int32_t> l_orderkey;
  std::span<const int64_t> l_quantity;
  std::span<const int32_t> c_custkey;
  std::span<const Char<25>> c_name;
  std::span<const int32_t> o_orderkey, o_custkey, o_orderdate;
  std::span<const int64_t> o_totalprice;

  static Q18Cols Resolve(const Database& db) {
    const Relation& l = db["lineitem"];
    const Relation& c = db["customer"];
    const Relation& o = db["orders"];
    return {l.Col<int32_t>("l_orderkey"),  l.Col<int64_t>("l_quantity"),
            c.Col<int32_t>("c_custkey"),  c.Col<Char<25>>("c_name"),
            o.Col<int32_t>("o_orderkey"), o.Col<int32_t>("o_custkey"),
            o.Col<int32_t>("o_orderdate"),
            o.Col<int64_t>("o_totalprice")};
  }
};

}  // namespace

QueryResult RunQ18(const Database& db, const QueryOptions& opt,
                   const QueryParams& params, const ColumnCache& cache) {
  const Q18Cols& cols =
      cache.Get<Q18Cols>([&] { return Q18Cols::Resolve(db); });

  // Pipeline 1: high-cardinality aggregation of lineitem by orderkey.
  const auto& l_orderkey = cols.l_orderkey;
  const auto& l_quantity = cols.l_quantity;
  std::vector<std::unique_ptr<LocalGroupTable<Q18Group>>> locals(opt.threads);
  {
    MorselQueue morsels(l_orderkey.size(), opt.morsel_grain);
    PoolFor(opt).Run(opt, morsels.total(), [&](size_t wid) {
      locals[wid] = std::make_unique<LocalGroupTable<Q18Group>>(opt);
      LocalGroupTable<Q18Group>& local = *locals[wid];
      size_t begin, end;
      while (!Stop(opt) && morsels.Next(begin, end)) {
        for (size_t i = begin; i < end; ++i) {
          const int32_t ok = l_orderkey[i];
          Q18Group* g = local.FindOrCreate(
              HashCrc32(static_cast<uint32_t>(ok)),
              [&](const Q18Group& e) { return e.orderkey == ok; },
              [&](Q18Group* e) {
                e->orderkey = ok;
                e->sum_qty = 0;
              });
          g->sum_qty += l_quantity[i];
        }
      }
    });
  }
  auto merged = MergeLocalGroups(locals, opt);
  std::vector<Q18Group*>& groups = merged.groups;
  // Serial tail: surface a trip (deadline, budget, injected fault) that
  // landed during or after the parallel phase instead of sorting and
  // building a result nobody will see.
  if (Stop(opt)) return QueryResult::Failed(opt.cancel->status());

  // Having-filter + hash table over qualifying orderkeys.
  const int64_t qty_min = params.Int("quantity_min");
  JoinTable<Q18Order> ht_big(opt);
  {
    MorselQueue morsels(groups.size(), opt.morsel_grain);
    ht_big.Build([&](size_t, auto emit) {
      size_t begin, end;
      while (!Stop(opt) && morsels.Next(begin, end)) {
        for (size_t i = begin; i < end; ++i) {
          const Q18Group* g = groups[i];
          if (g->sum_qty <= qty_min) continue;
          Q18Order e;
          e.header.hash = g->header.hash;
          e.orderkey = g->orderkey;
          e.sum_qty = g->sum_qty;
          emit(e);
        }
      }
    }, groups.size());
  }

  // Customer hash table (name lookup).
  const auto& c_custkey = cols.c_custkey;
  const auto& c_name = cols.c_name;
  JoinTable<Q18Cust> ht_cust(opt);
  {
    MorselQueue morsels(c_custkey.size(), opt.morsel_grain);
    ht_cust.Build([&](size_t, auto emit) {
      size_t begin, end;
      while (!Stop(opt) && morsels.Next(begin, end)) {
        for (size_t i = begin; i < end; ++i) {
          Q18Cust e;
          e.header.hash = HashCrc32(static_cast<uint32_t>(c_custkey[i]));
          e.custkey = c_custkey[i];
          e.name = c_name[i];
          emit(e);
        }
      }
    }, c_custkey.size());
  }

  // Final pipeline: probe orders against the qualifying set, join customer.
  const auto& o_orderkey = cols.o_orderkey;
  const auto& o_custkey = cols.o_custkey;
  const auto& o_orderdate = cols.o_orderdate;
  const auto& o_totalprice = cols.o_totalprice;
  struct Row {
    Char<25> name;
    int32_t custkey, orderkey, orderdate;
    int64_t totalprice, sum_qty;
  };
  std::vector<Row> rows;
  std::mutex mu;
  {
    MorselQueue morsels(o_orderkey.size(), opt.morsel_grain);
    PoolFor(opt).Run(opt, morsels.total(), [&](size_t) {
      std::vector<Row> local;
      auto resolve = [&](size_t i, auto&& big_h, auto&& cust_h) {
        const int32_t ok = o_orderkey[i];
        const Q18Order* b = ht_big.Lookup(
            big_h(), [&](const Q18Order& e) { return e.orderkey == ok; });
        if (b == nullptr) return;
        const int32_t ck = o_custkey[i];
        const Q18Cust* c = ht_cust.Lookup(
            cust_h(), [&](const Q18Cust& e) { return e.custkey == ck; });
        local.push_back(Row{c->name, ck, ok, o_orderdate[i],
                            o_totalprice[i], b->sum_qty});
      };
      size_t begin, end;
      while (!Stop(opt) && morsels.Next(begin, end)) {
        if (opt.rof) {
          StagedProbe big(ht_big, [&](size_t i) {
            return HashCrc32(static_cast<uint32_t>(o_orderkey[i]));
          });
          StagedProbe cust(ht_cust, [&](size_t i) {
            return HashCrc32(static_cast<uint32_t>(o_custkey[i]));
          });
          StagedProbeLoop(
              begin, end, opt.rof_block, kRofAll,
              [&](size_t i, uint64_t big_h, uint64_t cust_h) {
                resolve(
                    i, [&] { return big_h; }, [&] { return cust_h; });
              },
              big, cust);
        } else {
          for (size_t i = begin; i < end; ++i) {
            resolve(
                i,
                [&] { return HashCrc32(static_cast<uint32_t>(o_orderkey[i])); },
                [&] { return HashCrc32(static_cast<uint32_t>(o_custkey[i])); });
          }
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      rows.insert(rows.end(), local.begin(), local.end());
    });
  }

  // Serial tail: surface a trip (deadline, budget, injected fault) that
  // landed during or after the probe phase instead of sorting and building
  // a result nobody will see.
  if (Stop(opt)) return QueryResult::Failed(opt.cancel->status());

  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return std::tie(b.totalprice, a.orderdate, a.orderkey) <
           std::tie(a.totalprice, b.orderdate, b.orderkey);
  });
  if (rows.size() > 100) rows.resize(100);
  ResultBuilder rb({"c_name", "c_custkey", "o_orderkey", "o_orderdate",
                    "o_totalprice", "sum_qty"});
  for (const Row& r : rows) {
    rb.BeginRow()
        .Str(r.name.View())
        .Int(r.custkey)
        .Int(r.orderkey)
        .Date(r.orderdate)
        .Numeric(r.totalprice, 2)
        .Numeric(r.sum_qty, 2);
  }
  return rb.Finish();
}

}  // namespace vcq::typer
