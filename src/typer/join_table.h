#ifndef VCQ_TYPER_JOIN_TABLE_H_
#define VCQ_TYPER_JOIN_TABLE_H_

#include <memory>
#include <vector>

#include "runtime/hashmap.h"
#include "runtime/mem_pool.h"
#include "runtime/worker_pool.h"

namespace vcq::typer {

/// Shared join hash table for Typer pipelines: a morsel-parallel producer
/// materializes entries into worker-local arenas, then the table is sized
/// once and filled with lock-free CAS inserts — the same build protocol the
/// Tectorwise HashJoin uses over the same runtime::Hashmap (paper §3.2:
/// "the same data structures").
///
/// Entry must begin with a runtime::Hashmap::EntryHeader member `header`;
/// the producer sets `header.hash` before emitting.
template <typename Entry>
class JoinTable {
 public:
  explicit JoinTable(size_t threads) : pools_(threads), rows_(threads) {}

  /// produce(worker_id, emit) appends build tuples via emit(const Entry&).
  template <typename ProduceFn>
  void Build(size_t threads, ProduceFn&& produce) {
    runtime::WorkerPool::Global().Run(threads, [&](size_t wid) {
      auto emit = [&](const Entry& e) {
        Entry* p = pools_[wid].template Create<Entry>(e);
        rows_[wid].push_back(p);
      };
      produce(wid, emit);
    });
    size_t total = 0;
    for (const auto& r : rows_) total += r.size();
    ht.SetSize(total);
    runtime::WorkerPool::Global().Run(threads, [&](size_t wid) {
      for (Entry* e : rows_[wid]) ht.Insert(&e->header);
    });
  }

  /// Primary-key lookup: first entry with matching hash passing `eq`.
  template <typename EqFn>
  const Entry* Lookup(uint64_t hash, EqFn&& eq) const {
    for (auto* e = ht.FindChainTagged(hash); e != nullptr; e = e->next) {
      if (e->hash == hash && eq(*reinterpret_cast<const Entry*>(e)))
        return reinterpret_cast<const Entry*>(e);
    }
    return nullptr;
  }

  size_t size() const {
    size_t total = 0;
    for (const auto& r : rows_) total += r.size();
    return total;
  }

  runtime::Hashmap ht;

 private:
  std::vector<runtime::MemPool> pools_;
  std::vector<std::vector<Entry*>> rows_;
};

}  // namespace vcq::typer

#endif  // VCQ_TYPER_JOIN_TABLE_H_
