#ifndef VCQ_TYPER_JOIN_TABLE_H_
#define VCQ_TYPER_JOIN_TABLE_H_

#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/hashmap.h"
#include "runtime/mem_pool.h"
#include "runtime/options.h"
#include "runtime/resource_governor.h"
#include "runtime/spill.h"
#include "runtime/worker_pool.h"

namespace vcq::typer {

/// Default block size for relaxed-operator-fusion staged probes (paper
/// §9.1): large enough that the block's independent prefetches cover DRAM
/// latency, small enough that the staged hash buffers stay L1-resident.
/// The actual block size is per-run (QueryOptions::rof_block, swept by the
/// tuner over {128, 256, 512, 1024}).
inline constexpr size_t kRofBlock = 512;
/// Upper bound on QueryOptions::rof_block; sizes the staged hash buffers.
inline constexpr size_t kRofMaxBlock = 1024;

/// Shared join hash table for Typer pipelines: a morsel-parallel producer
/// materializes entries into worker-local chunk arenas, then hands them to
/// the shared runtime::JoinBuild — the same build protocol the Tectorwise
/// HashJoin uses over the same runtime::Hashmap (paper §3.2: "the same data
/// structures"). Under the default BuildMode::kPartitioned each worker owns
/// a disjoint bucket range and relinks its range's entries into a
/// contiguous bucket-ordered arena with plain stores; BuildMode::kCas is
/// the seed's global lock-free CAS pass.
///
/// Entry must begin with a runtime::Hashmap::EntryHeader member `header`;
/// the producer sets `header.hash` before emitting.
template <typename Entry>
class JoinTable {
  static_assert(std::is_trivially_copyable_v<Entry>,
                "the partitioned build relocates entries bytewise");

 public:
  /// `site` is this build's NodeTelemetry slot (a per-query build ordinal);
  /// only meaningful on tuned runs where opt.telemetry is set.
  explicit JoinTable(const runtime::QueryOptions& opt, uint32_t site = 0)
      : threads_(opt.threads),
        mode_(opt.build_mode),
        ledger_(opt.ledger),
        spill_mgr_(opt.spill_manager),
        pool_(&runtime::PoolFor(opt)),
        region_{opt.sched_stream, 0, opt.cancel},
        build_(&ht, opt.threads,
               runtime::JoinBuildEnv{opt.cancel, opt.fault, opt.ledger,
                                     opt.telemetry, site}),
        pools_(opt.threads) {
    // Governed runs charge materialize-phase chunks to the query ledger
    // and expose the allocation as a named fault point; ungoverned runs
    // bind nothing and behave exactly as the seed.
    for (runtime::MemPool& pool : pools_)
      pool.Bind(opt.ledger, opt.fault, "typer.join.materialize");
  }

  /// produce(worker_id, emit) appends build tuples via emit(const Entry&);
  /// runs one parallel region covering materialize + insert. `work` is the
  /// region's input size in tuples — the scheduler's
  /// shortest-remaining-region hint (0 = unknown).
  template <typename ProduceFn>
  void Build(ProduceFn&& produce, size_t work = 0) {
    runtime::RegionInfo region = region_;
    region.work = work;
    pool_->Run(threads_, [&](size_t wid) {
      runtime::EntryChunkList list;
      Entry* block = nullptr;
      size_t used = kChunkRows;
      runtime::SpillFile* spill_file = nullptr;
      auto emit = [&](const Entry& e) {
        if (used == kChunkRows) {
          // Chunk boundary — every materialized chunk is complete, the one
          // safe point to relieve memory pressure: spill the finished
          // chunks and release the pool before growing it again.
          if (spill_mgr_ != nullptr && !list.chunks.empty() &&
              ledger_ != nullptr && ledger_->UnderPressure()) {
            if (spill_file == nullptr)
              spill_file = spill_mgr_->Create("typer.join");
            list.SpillTo(spill_file, sizeof(Entry));
            pools_[wid].Release();
          }
          block = static_cast<Entry*>(
              pools_[wid].Allocate(kChunkRows * sizeof(Entry)));
          list.Add(reinterpret_cast<std::byte*>(block), 0);
          used = 0;
        }
        new (block + used++) Entry(e);
        ++list.chunks.back().second;
        ++list.total;
      };
      produce(wid, emit);
      build_.Run(mode_, std::move(list), sizeof(Entry));
      // The partitioned protocol copied every entry into the contiguous
      // arena (no one reads the chunks after Run's final barrier), so the
      // materialize-phase memory is pure overhead from here on. Ask the
      // build, not the requested mode: spilling upgrades kCas builds.
      if (build_.releases_chunks()) pools_[wid].Release();
    }, region);
  }

  /// Primary-key lookup: first entry with matching hash passing `eq`.
  template <typename EqFn>
  const Entry* Lookup(uint64_t hash, EqFn&& eq) const {
    for (auto* e = ht.FindChainTagged(hash); e != nullptr; e = e->next) {
      if (e->hash == hash && eq(*reinterpret_cast<const Entry*>(e)))
        return reinterpret_cast<const Entry*>(e);
    }
    return nullptr;
  }

  /// Staged (ROF) probe state for this table (paper §9.1): the fused probe
  /// loop is split at a kRofBlock boundary. Stage 1 (Hash) computes the
  /// block's hashes and prefetches their directory words; stage 2
  /// (PrefetchEntries) resolves the chain heads from the now-cached
  /// directory and prefetches the entry nodes — the second dependent miss
  /// of a chaining table; stage 3 (Lookup) resolves a block behind, with
  /// the latency already hidden. One StagedLookup per join table in the
  /// pipeline; this is what generalizes the former Typer-Q9-only ROF
  /// special case to every join query.
  class StagedLookup {
   public:
    explicit StagedLookup(const JoinTable& table) : table_(table) {}

    /// Stage 1: hashes_[k] = hash_of(k) for k in [0, n); n <= kRofBlock.
    template <typename HashFn>
    void Hash(size_t n, HashFn&& hash_of) {
      const runtime::Hashmap& ht = table_.ht;
      for (size_t k = 0; k < n; ++k) {
        hashes_[k] = hash_of(k);
        __builtin_prefetch(ht.buckets() + ht.BucketOf(hashes_[k]), 0, 1);
      }
    }

    /// Stage 2: prefetches the surviving chain heads.
    void PrefetchEntries(size_t n) const {
      for (size_t k = 0; k < n; ++k) {
        if (auto* e = table_.ht.FindChainTagged(hashes_[k]))
          __builtin_prefetch(e, 0, 1);
      }
    }

    uint64_t hash(size_t k) const { return hashes_[k]; }

    /// Stage 3: the standard Lookup with the staged hash.
    template <typename EqFn>
    const Entry* Lookup(size_t k, EqFn&& eq) const {
      return table_.Lookup(hashes_[k], std::forward<EqFn>(eq));
    }

   private:
    const JoinTable& table_;
    uint64_t hashes_[kRofMaxBlock];
  };

  size_t size() const { return build_.entry_count(); }

  runtime::Hashmap ht;

 private:
  static constexpr size_t kChunkRows = 1024;

  size_t threads_;
  runtime::BuildMode mode_;
  runtime::QueryLedger* ledger_;
  runtime::SpillManager* spill_mgr_;
  runtime::WorkerPool* pool_;
  runtime::RegionInfo region_;  // the owning session's scheduling stream
  runtime::JoinBuild build_;
  std::vector<runtime::MemPool> pools_;
};

}  // namespace vcq::typer

#endif  // VCQ_TYPER_JOIN_TABLE_H_
