#include <algorithm>
#include <mutex>
#include <span>
#include <tuple>

#include "runtime/cancel.h"
#include "runtime/hash.h"
#include "runtime/types.h"
#include "runtime/worker_pool.h"
#include "typer/group_table.h"
#include "typer/join_table.h"
#include "typer/queries.h"
#include "typer/rof.h"

// Star Schema Benchmark pipelines for Typer (paper §4.4): one fused probe
// loop over lineorder against filtered dimension hash tables. Column
// accessors resolve once per prepared query (ColumnCache, queries.h) and
// every morsel loop polls opt.cancel — see queries_tpch.cc for the
// cancellation ordering argument.

namespace vcq::typer {

using runtime::Char;
using runtime::Database;
using runtime::HashCrc32;
using runtime::Hashmap;
using runtime::MorselQueue;
using runtime::PoolFor;
using runtime::QueryOptions;
using runtime::QueryParams;
using runtime::QueryResult;
using runtime::Relation;
using runtime::ResultBuilder;

namespace {

struct DateEntry {
  Hashmap::EntryHeader header;
  int32_t datekey, year;
};
struct KeyOnly {
  Hashmap::EntryHeader header;
  int32_t key;
};
struct KeyNation {
  Hashmap::EntryHeader header;
  int32_t key;
  Char<15> nation;
};
struct BrandEntry {
  Hashmap::EntryHeader header;
  int32_t partkey;
  Char<9> brand;
};

/// Builds a dimension hash table from rows passing `pred`, with the entry
/// payload produced by `fill`.
template <typename Entry, typename PredFn, typename FillFn>
void BuildDimension(JoinTable<Entry>& table, size_t tuple_count,
                    const QueryOptions& opt, PredFn&& pred, FillFn&& fill) {
  MorselQueue morsels(tuple_count, opt.morsel_grain);
  table.Build([&](size_t, auto emit) {
    size_t begin, end;
    while (!Stop(opt) && morsels.Next(begin, end)) {
      for (size_t i = begin; i < end; ++i) {
        if (!pred(i)) continue;
        Entry e;
        fill(i, &e);
        emit(e);
      }
    }
  }, tuple_count);
}

}  // namespace

// ---------------------------------------------------------------------------
// Q1.1
// ---------------------------------------------------------------------------
namespace {

struct Q11Cols {
  std::span<const int32_t> d_datekey, d_year;
  std::span<const int32_t> lo_orderdate;
  std::span<const int64_t> lo_discount, lo_quantity, lo_extprice;

  static Q11Cols Resolve(const Database& db) {
    const Relation& d = db["date"];
    const Relation& lo = db["lineorder"];
    return {d.Col<int32_t>("d_datekey"),    d.Col<int32_t>("d_year"),
            lo.Col<int32_t>("lo_orderdate"), lo.Col<int64_t>("lo_discount"),
            lo.Col<int64_t>("lo_quantity"),
            lo.Col<int64_t>("lo_extendedprice")};
  }
};

}  // namespace

QueryResult RunSsbQ11(const Database& db, const QueryOptions& opt,
                     const QueryParams& params, const ColumnCache& cache) {
  const Q11Cols& cols =
      cache.Get<Q11Cols>([&] { return Q11Cols::Resolve(db); });
  const auto& [d_datekey, d_year, lo_orderdate, lo_discount, lo_quantity,
               lo_extprice] = cols;

  const int32_t year = static_cast<int32_t>(params.Int("year"));
  const int64_t disc_lo = params.Int("discount_lo");
  const int64_t disc_hi = params.Int("discount_hi");
  const int64_t qty_max = params.Int("quantity_max");
  JoinTable<KeyOnly> ht_date(opt);
  BuildDimension(
      ht_date, d_datekey.size(), opt,
      [&](size_t i) { return d_year[i] == year; },
      [&](size_t i, KeyOnly* e) {
        e->header.hash = HashCrc32(static_cast<uint32_t>(d_datekey[i]));
        e->key = d_datekey[i];
      });

  int64_t total = 0;
  std::mutex mu;
  MorselQueue morsels(lo_orderdate.size(), opt.morsel_grain);
  PoolFor(opt).Run(opt, morsels.total(), [&](size_t) {
    int64_t local = 0;
    auto resolve = [&](size_t i, uint64_t dh) {
      const int32_t dk = lo_orderdate[i];
      if (ht_date.Lookup(dh, [&](const KeyOnly& e) { return e.key == dk; }) ==
          nullptr) {
        return;
      }
      local += lo_extprice[i] * lo_discount[i];
    };
    auto pass = [&](size_t i) {
      return lo_discount[i] >= disc_lo && lo_discount[i] <= disc_hi &&
             lo_quantity[i] < qty_max;
    };
    size_t begin, end;
    while (!Stop(opt) && morsels.Next(begin, end)) {
      if (opt.rof) {
        StagedProbe date_probe(ht_date, [&](size_t i) {
          return HashCrc32(static_cast<uint32_t>(lo_orderdate[i]));
        });
        StagedProbeLoop(begin, end, opt.rof_block, pass, resolve, date_probe);
      } else {
        for (size_t i = begin; i < end; ++i) {
          if (!pass(i)) continue;
          resolve(i, HashCrc32(static_cast<uint32_t>(lo_orderdate[i])));
        }
      }
    }
    std::lock_guard<std::mutex> lock(mu);
    total += local;
  });

  // Serial tail: surface a trip (deadline, budget, injected fault) that
  // landed during or after the parallel phase instead of sorting and
  // building a result nobody will see.
  if (Stop(opt)) return QueryResult::Failed(opt.cancel->status());
  ResultBuilder rb({"revenue"});
  rb.BeginRow().Numeric(total, 4);
  return rb.Finish();
}

// ---------------------------------------------------------------------------
// Q2.1
// ---------------------------------------------------------------------------
namespace {

struct Q21Group {
  Hashmap::EntryHeader header;
  int32_t year;
  Char<9> brand;
  int64_t revenue;

  bool KeyEquals(const Q21Group& o) const {
    return year == o.year && brand == o.brand;
  }
  void Combine(const Q21Group& o) { revenue += o.revenue; }
};

struct Q21Cols {
  std::span<const int32_t> p_partkey;
  std::span<const Char<7>> p_category;
  std::span<const Char<9>> p_brand1;
  std::span<const int32_t> s_suppkey;
  std::span<const Char<12>> s_region;
  std::span<const int32_t> d_datekey, d_year;
  std::span<const int32_t> lo_partkey, lo_suppkey, lo_orderdate;
  std::span<const int64_t> lo_revenue;

  static Q21Cols Resolve(const Database& db) {
    const Relation& p = db["part"];
    const Relation& s = db["supplier"];
    const Relation& d = db["date"];
    const Relation& lo = db["lineorder"];
    return {p.Col<int32_t>("p_partkey"),    p.Col<Char<7>>("p_category"),
            p.Col<Char<9>>("p_brand1"),     s.Col<int32_t>("s_suppkey"),
            s.Col<Char<12>>("s_region"),    d.Col<int32_t>("d_datekey"),
            d.Col<int32_t>("d_year"),       lo.Col<int32_t>("lo_partkey"),
            lo.Col<int32_t>("lo_suppkey"),  lo.Col<int32_t>("lo_orderdate"),
            lo.Col<int64_t>("lo_revenue")};
  }
};

}  // namespace

QueryResult RunSsbQ21(const Database& db, const QueryOptions& opt,
                     const QueryParams& params, const ColumnCache& cache) {
  const Q21Cols& cols =
      cache.Get<Q21Cols>([&] { return Q21Cols::Resolve(db); });
  const auto& [p_partkey, p_category, p_brand1, s_suppkey, s_region,
               d_datekey, d_year, lo_partkey, lo_suppkey, lo_orderdate,
               lo_revenue] = cols;

  JoinTable<BrandEntry> ht_part(opt);
  const Char<7> category = Char<7>::From(params.Str("category"));
  BuildDimension(
      ht_part, p_partkey.size(), opt,
      [&](size_t i) { return p_category[i] == category; },
      [&](size_t i, BrandEntry* e) {
        e->header.hash = HashCrc32(static_cast<uint32_t>(p_partkey[i]));
        e->partkey = p_partkey[i];
        e->brand = p_brand1[i];
      });

  JoinTable<KeyOnly> ht_supp(opt);
  const Char<12> region = Char<12>::From(params.Str("region"));
  BuildDimension(
      ht_supp, s_suppkey.size(), opt,
      [&](size_t i) { return s_region[i] == region; },
      [&](size_t i, KeyOnly* e) {
        e->header.hash = HashCrc32(static_cast<uint32_t>(s_suppkey[i]));
        e->key = s_suppkey[i];
      });

  JoinTable<DateEntry> ht_date(opt);
  BuildDimension(
      ht_date, d_datekey.size(), opt,
      [&](size_t) { return true; },
      [&](size_t i, DateEntry* e) {
        e->header.hash = HashCrc32(static_cast<uint32_t>(d_datekey[i]));
        e->datekey = d_datekey[i];
        e->year = d_year[i];
      });

  std::vector<std::unique_ptr<LocalGroupTable<Q21Group>>> locals(opt.threads);
  MorselQueue morsels(lo_partkey.size(), opt.morsel_grain);
  PoolFor(opt).Run(opt, morsels.total(), [&](size_t wid) {
    locals[wid] = std::make_unique<LocalGroupTable<Q21Group>>(opt);
    LocalGroupTable<Q21Group>& local = *locals[wid];
    auto resolve = [&](size_t i, auto&& ph, auto&& sh, auto&& dh) {
      const int32_t pk = lo_partkey[i];
      const BrandEntry* p = ht_part.Lookup(
          ph(), [&](const BrandEntry& e) { return e.partkey == pk; });
      if (p == nullptr) return;
      const int32_t sk = lo_suppkey[i];
      if (ht_supp.Lookup(sh(), [&](const KeyOnly& e) {
            return e.key == sk;
          }) == nullptr) {
        return;
      }
      const int32_t dk = lo_orderdate[i];
      const DateEntry* d = ht_date.Lookup(
          dh(), [&](const DateEntry& e) { return e.datekey == dk; });
      const int32_t year = d->year;
      const Char<9> brand = p->brand;
      const uint64_t gh = HashCrc32(
          static_cast<uint64_t>(static_cast<uint32_t>(year)) ^
          (runtime::HashBytes(brand.data, 9) << 1));
      Q21Group* g = local.FindOrCreate(
          gh,
          [&](const Q21Group& e) {
            return e.year == year && e.brand == brand;
          },
          [&](Q21Group* e) {
            e->year = year;
            e->brand = brand;
            e->revenue = 0;
          });
      g->revenue += lo_revenue[i];
    };
    size_t begin, end;
    while (!Stop(opt) && morsels.Next(begin, end)) {
      if (opt.rof) {
        StagedProbe part_probe(ht_part, [&](size_t i) {
          return HashCrc32(static_cast<uint32_t>(lo_partkey[i]));
        });
        StagedProbe supp_probe(ht_supp, [&](size_t i) {
          return HashCrc32(static_cast<uint32_t>(lo_suppkey[i]));
        });
        StagedProbe date_probe(ht_date, [&](size_t i) {
          return HashCrc32(static_cast<uint32_t>(lo_orderdate[i]));
        });
        StagedProbeLoop(
            begin, end, opt.rof_block, kRofAll,
            [&](size_t i, uint64_t ph, uint64_t sh, uint64_t dh) {
              resolve(
                  i, [&] { return ph; }, [&] { return sh; },
                  [&] { return dh; });
            },
            part_probe, supp_probe, date_probe);
      } else {
        for (size_t i = begin; i < end; ++i) {
          resolve(
              i,
              [&] { return HashCrc32(static_cast<uint32_t>(lo_partkey[i])); },
              [&] { return HashCrc32(static_cast<uint32_t>(lo_suppkey[i])); },
              [&] {
                return HashCrc32(static_cast<uint32_t>(lo_orderdate[i]));
              });
        }
      }
    }
  });

  auto merged = MergeLocalGroups(locals, opt);
  std::vector<Q21Group*>& groups = merged.groups;
  // Serial tail: surface a trip (deadline, budget, injected fault) that
  // landed during or after the parallel phase instead of sorting and
  // building a result nobody will see.
  if (Stop(opt)) return QueryResult::Failed(opt.cancel->status());
  std::sort(groups.begin(), groups.end(), [](Q21Group* a, Q21Group* b) {
    if (a->year != b->year) return a->year < b->year;
    return a->brand < b->brand;
  });
  ResultBuilder rb({"d_year", "p_brand1", "revenue"});
  for (const Q21Group* g : groups)
    rb.BeginRow().Int(g->year).Str(g->brand.View()).Numeric(g->revenue, 2);
  return rb.Finish();
}

// ---------------------------------------------------------------------------
// Q3.1
// ---------------------------------------------------------------------------
namespace {

struct Q31Group {
  Hashmap::EntryHeader header;
  Char<15> c_nation, s_nation;
  int32_t year;
  int64_t revenue;

  bool KeyEquals(const Q31Group& o) const {
    return year == o.year && c_nation == o.c_nation && s_nation == o.s_nation;
  }
  void Combine(const Q31Group& o) { revenue += o.revenue; }
};

struct Q31Cols {
  std::span<const int32_t> c_custkey;
  std::span<const Char<15>> c_nation;
  std::span<const Char<12>> c_region;
  std::span<const int32_t> s_suppkey;
  std::span<const Char<15>> s_nation;
  std::span<const Char<12>> s_region;
  std::span<const int32_t> d_datekey, d_year;
  std::span<const int32_t> lo_custkey, lo_suppkey, lo_orderdate;
  std::span<const int64_t> lo_revenue;

  static Q31Cols Resolve(const Database& db) {
    const Relation& c = db["customer"];
    const Relation& s = db["supplier"];
    const Relation& d = db["date"];
    const Relation& lo = db["lineorder"];
    return {c.Col<int32_t>("c_custkey"),   c.Col<Char<15>>("c_nation"),
            c.Col<Char<12>>("c_region"),   s.Col<int32_t>("s_suppkey"),
            s.Col<Char<15>>("s_nation"),   s.Col<Char<12>>("s_region"),
            d.Col<int32_t>("d_datekey"),   d.Col<int32_t>("d_year"),
            lo.Col<int32_t>("lo_custkey"), lo.Col<int32_t>("lo_suppkey"),
            lo.Col<int32_t>("lo_orderdate"),
            lo.Col<int64_t>("lo_revenue")};
  }
};

}  // namespace

QueryResult RunSsbQ31(const Database& db, const QueryOptions& opt,
                     const QueryParams& params, const ColumnCache& cache) {
  const Q31Cols& cols =
      cache.Get<Q31Cols>([&] { return Q31Cols::Resolve(db); });
  const auto& [c_custkey, c_nation, c_region, s_suppkey, s_nation, s_region,
               d_datekey, d_year, lo_custkey, lo_suppkey, lo_orderdate,
               lo_revenue] = cols;
  const Char<12> region = Char<12>::From(params.Str("region"));
  const int32_t year_lo = static_cast<int32_t>(params.Int("year_lo"));
  const int32_t year_hi = static_cast<int32_t>(params.Int("year_hi"));

  JoinTable<KeyNation> ht_cust(opt);
  BuildDimension(
      ht_cust, c_custkey.size(), opt,
      [&](size_t i) { return c_region[i] == region; },
      [&](size_t i, KeyNation* e) {
        e->header.hash = HashCrc32(static_cast<uint32_t>(c_custkey[i]));
        e->key = c_custkey[i];
        e->nation = c_nation[i];
      });

  JoinTable<KeyNation> ht_supp(opt);
  BuildDimension(
      ht_supp, s_suppkey.size(), opt,
      [&](size_t i) { return s_region[i] == region; },
      [&](size_t i, KeyNation* e) {
        e->header.hash = HashCrc32(static_cast<uint32_t>(s_suppkey[i]));
        e->key = s_suppkey[i];
        e->nation = s_nation[i];
      });

  JoinTable<DateEntry> ht_date(opt);
  BuildDimension(
      ht_date, d_datekey.size(), opt,
      [&](size_t i) { return d_year[i] >= year_lo && d_year[i] <= year_hi; },
      [&](size_t i, DateEntry* e) {
        e->header.hash = HashCrc32(static_cast<uint32_t>(d_datekey[i]));
        e->datekey = d_datekey[i];
        e->year = d_year[i];
      });

  std::vector<std::unique_ptr<LocalGroupTable<Q31Group>>> locals(opt.threads);
  MorselQueue morsels(lo_custkey.size(), opt.morsel_grain);
  PoolFor(opt).Run(opt, morsels.total(), [&](size_t wid) {
    locals[wid] = std::make_unique<LocalGroupTable<Q31Group>>(opt);
    LocalGroupTable<Q31Group>& local = *locals[wid];
    auto resolve = [&](size_t i, auto&& ch, auto&& sh, auto&& dh) {
      const int32_t ck = lo_custkey[i];
      const KeyNation* c = ht_cust.Lookup(
          ch(), [&](const KeyNation& e) { return e.key == ck; });
      if (c == nullptr) return;
      const int32_t sk = lo_suppkey[i];
      const KeyNation* s = ht_supp.Lookup(
          sh(), [&](const KeyNation& e) { return e.key == sk; });
      if (s == nullptr) return;
      const int32_t dk = lo_orderdate[i];
      const DateEntry* d = ht_date.Lookup(
          dh(), [&](const DateEntry& e) { return e.datekey == dk; });
      if (d == nullptr) return;
      const uint64_t gh = HashCrc32(
          runtime::HashBytes(c->nation.data, 15) ^
          (runtime::HashBytes(s->nation.data, 15) << 1) ^
          static_cast<uint32_t>(d->year));
      Q31Group* g = local.FindOrCreate(
          gh,
          [&](const Q31Group& e) {
            return e.year == d->year && e.c_nation == c->nation &&
                   e.s_nation == s->nation;
          },
          [&](Q31Group* e) {
            e->c_nation = c->nation;
            e->s_nation = s->nation;
            e->year = d->year;
            e->revenue = 0;
          });
      g->revenue += lo_revenue[i];
    };
    size_t begin, end;
    while (!Stop(opt) && morsels.Next(begin, end)) {
      if (opt.rof) {
        StagedProbe cust_probe(ht_cust, [&](size_t i) {
          return HashCrc32(static_cast<uint32_t>(lo_custkey[i]));
        });
        StagedProbe supp_probe(ht_supp, [&](size_t i) {
          return HashCrc32(static_cast<uint32_t>(lo_suppkey[i]));
        });
        StagedProbe date_probe(ht_date, [&](size_t i) {
          return HashCrc32(static_cast<uint32_t>(lo_orderdate[i]));
        });
        StagedProbeLoop(
            begin, end, opt.rof_block, kRofAll,
            [&](size_t i, uint64_t ch, uint64_t sh, uint64_t dh) {
              resolve(
                  i, [&] { return ch; }, [&] { return sh; },
                  [&] { return dh; });
            },
            cust_probe, supp_probe, date_probe);
      } else {
        for (size_t i = begin; i < end; ++i) {
          resolve(
              i,
              [&] { return HashCrc32(static_cast<uint32_t>(lo_custkey[i])); },
              [&] { return HashCrc32(static_cast<uint32_t>(lo_suppkey[i])); },
              [&] {
                return HashCrc32(static_cast<uint32_t>(lo_orderdate[i]));
              });
        }
      }
    }
  });

  auto merged = MergeLocalGroups(locals, opt);
  std::vector<Q31Group*>& groups = merged.groups;
  // Serial tail: surface a trip (deadline, budget, injected fault) that
  // landed during or after the parallel phase instead of sorting and
  // building a result nobody will see.
  if (Stop(opt)) return QueryResult::Failed(opt.cancel->status());
  std::sort(groups.begin(), groups.end(), [](Q31Group* a, Q31Group* b) {
    if (a->year != b->year) return a->year < b->year;
    if (a->revenue != b->revenue) return a->revenue > b->revenue;
    return std::tie(a->c_nation, a->s_nation) <
           std::tie(b->c_nation, b->s_nation);
  });
  ResultBuilder rb({"c_nation", "s_nation", "d_year", "revenue"});
  for (const Q31Group* g : groups) {
    rb.BeginRow()
        .Str(g->c_nation.View())
        .Str(g->s_nation.View())
        .Int(g->year)
        .Numeric(g->revenue, 2);
  }
  return rb.Finish();
}

// ---------------------------------------------------------------------------
// Q4.1
// ---------------------------------------------------------------------------
namespace {

struct Q41Group {
  Hashmap::EntryHeader header;
  int32_t year;
  Char<15> c_nation;
  int64_t profit;

  bool KeyEquals(const Q41Group& o) const {
    return year == o.year && c_nation == o.c_nation;
  }
  void Combine(const Q41Group& o) { profit += o.profit; }
};

struct Q41Cols {
  std::span<const int32_t> c_custkey;
  std::span<const Char<15>> c_nation;
  std::span<const Char<12>> c_region;
  std::span<const int32_t> s_suppkey;
  std::span<const Char<12>> s_region;
  std::span<const int32_t> p_partkey;
  std::span<const Char<6>> p_mfgr;
  std::span<const int32_t> d_datekey, d_year;
  std::span<const int32_t> lo_custkey, lo_suppkey, lo_partkey, lo_orderdate;
  std::span<const int64_t> lo_revenue, lo_supplycost;

  static Q41Cols Resolve(const Database& db) {
    const Relation& c = db["customer"];
    const Relation& s = db["supplier"];
    const Relation& p = db["part"];
    const Relation& d = db["date"];
    const Relation& lo = db["lineorder"];
    return {c.Col<int32_t>("c_custkey"),   c.Col<Char<15>>("c_nation"),
            c.Col<Char<12>>("c_region"),   s.Col<int32_t>("s_suppkey"),
            s.Col<Char<12>>("s_region"),   p.Col<int32_t>("p_partkey"),
            p.Col<Char<6>>("p_mfgr"),      d.Col<int32_t>("d_datekey"),
            d.Col<int32_t>("d_year"),      lo.Col<int32_t>("lo_custkey"),
            lo.Col<int32_t>("lo_suppkey"), lo.Col<int32_t>("lo_partkey"),
            lo.Col<int32_t>("lo_orderdate"),
            lo.Col<int64_t>("lo_revenue"),
            lo.Col<int64_t>("lo_supplycost")};
  }
};

}  // namespace

QueryResult RunSsbQ41(const Database& db, const QueryOptions& opt,
                     const QueryParams& params, const ColumnCache& cache) {
  const Q41Cols& cols =
      cache.Get<Q41Cols>([&] { return Q41Cols::Resolve(db); });
  const auto& [c_custkey, c_nation, c_region, s_suppkey, s_region, p_partkey,
               p_mfgr, d_datekey, d_year, lo_custkey, lo_suppkey, lo_partkey,
               lo_orderdate, lo_revenue, lo_supplycost] = cols;
  const Char<12> region = Char<12>::From(params.Str("region"));

  JoinTable<KeyNation> ht_cust(opt);
  BuildDimension(
      ht_cust, c_custkey.size(), opt,
      [&](size_t i) { return c_region[i] == region; },
      [&](size_t i, KeyNation* e) {
        e->header.hash = HashCrc32(static_cast<uint32_t>(c_custkey[i]));
        e->key = c_custkey[i];
        e->nation = c_nation[i];
      });

  JoinTable<KeyOnly> ht_supp(opt);
  BuildDimension(
      ht_supp, s_suppkey.size(), opt,
      [&](size_t i) { return s_region[i] == region; },
      [&](size_t i, KeyOnly* e) {
        e->header.hash = HashCrc32(static_cast<uint32_t>(s_suppkey[i]));
        e->key = s_suppkey[i];
      });

  JoinTable<KeyOnly> ht_part(opt);
  const Char<6> mfgr_a = Char<6>::From(params.Str("mfgr_a"));
  const Char<6> mfgr_b = Char<6>::From(params.Str("mfgr_b"));
  BuildDimension(
      ht_part, p_partkey.size(), opt,
      [&](size_t i) { return p_mfgr[i] == mfgr_a || p_mfgr[i] == mfgr_b; },
      [&](size_t i, KeyOnly* e) {
        e->header.hash = HashCrc32(static_cast<uint32_t>(p_partkey[i]));
        e->key = p_partkey[i];
      });

  JoinTable<DateEntry> ht_date(opt);
  BuildDimension(
      ht_date, d_datekey.size(), opt,
      [&](size_t) { return true; },
      [&](size_t i, DateEntry* e) {
        e->header.hash = HashCrc32(static_cast<uint32_t>(d_datekey[i]));
        e->datekey = d_datekey[i];
        e->year = d_year[i];
      });

  std::vector<std::unique_ptr<LocalGroupTable<Q41Group>>> locals(opt.threads);
  MorselQueue morsels(lo_custkey.size(), opt.morsel_grain);
  PoolFor(opt).Run(opt, morsels.total(), [&](size_t wid) {
    locals[wid] = std::make_unique<LocalGroupTable<Q41Group>>(opt);
    LocalGroupTable<Q41Group>& local = *locals[wid];
    auto resolve = [&](size_t i, auto&& ch, auto&& sh, auto&& ph,
                       auto&& dh) {
      const int32_t ck = lo_custkey[i];
      const KeyNation* c = ht_cust.Lookup(
          ch(), [&](const KeyNation& e) { return e.key == ck; });
      if (c == nullptr) return;
      const int32_t sk = lo_suppkey[i];
      if (ht_supp.Lookup(sh(), [&](const KeyOnly& e) {
            return e.key == sk;
          }) == nullptr) {
        return;
      }
      const int32_t pk = lo_partkey[i];
      if (ht_part.Lookup(ph(), [&](const KeyOnly& e) {
            return e.key == pk;
          }) == nullptr) {
        return;
      }
      const int32_t dk = lo_orderdate[i];
      const DateEntry* d = ht_date.Lookup(
          dh(), [&](const DateEntry& e) { return e.datekey == dk; });
      const int64_t profit = lo_revenue[i] - lo_supplycost[i];
      const uint64_t gh = HashCrc32(
          runtime::HashBytes(c->nation.data, 15) ^
          static_cast<uint32_t>(d->year));
      Q41Group* g = local.FindOrCreate(
          gh,
          [&](const Q41Group& e) {
            return e.year == d->year && e.c_nation == c->nation;
          },
          [&](Q41Group* e) {
            e->year = d->year;
            e->c_nation = c->nation;
            e->profit = 0;
          });
      g->profit += profit;
    };
    size_t begin, end;
    while (!Stop(opt) && morsels.Next(begin, end)) {
      if (opt.rof) {
        StagedProbe cust_probe(ht_cust, [&](size_t i) {
          return HashCrc32(static_cast<uint32_t>(lo_custkey[i]));
        });
        StagedProbe supp_probe(ht_supp, [&](size_t i) {
          return HashCrc32(static_cast<uint32_t>(lo_suppkey[i]));
        });
        StagedProbe part_probe(ht_part, [&](size_t i) {
          return HashCrc32(static_cast<uint32_t>(lo_partkey[i]));
        });
        StagedProbe date_probe(ht_date, [&](size_t i) {
          return HashCrc32(static_cast<uint32_t>(lo_orderdate[i]));
        });
        StagedProbeLoop(
            begin, end, opt.rof_block, kRofAll,
            [&](size_t i, uint64_t ch, uint64_t sh, uint64_t ph,
                uint64_t dh) {
              resolve(
                  i, [&] { return ch; }, [&] { return sh; },
                  [&] { return ph; }, [&] { return dh; });
            },
            cust_probe, supp_probe, part_probe, date_probe);
      } else {
        for (size_t i = begin; i < end; ++i) {
          resolve(
              i,
              [&] { return HashCrc32(static_cast<uint32_t>(lo_custkey[i])); },
              [&] { return HashCrc32(static_cast<uint32_t>(lo_suppkey[i])); },
              [&] { return HashCrc32(static_cast<uint32_t>(lo_partkey[i])); },
              [&] {
                return HashCrc32(static_cast<uint32_t>(lo_orderdate[i]));
              });
        }
      }
    }
  });

  auto merged = MergeLocalGroups(locals, opt);
  std::vector<Q41Group*>& groups = merged.groups;
  // Serial tail: surface a trip (deadline, budget, injected fault) that
  // landed during or after the parallel phase instead of sorting and
  // building a result nobody will see.
  if (Stop(opt)) return QueryResult::Failed(opt.cancel->status());
  std::sort(groups.begin(), groups.end(), [](Q41Group* a, Q41Group* b) {
    if (a->year != b->year) return a->year < b->year;
    return a->c_nation < b->c_nation;
  });
  ResultBuilder rb({"d_year", "c_nation", "profit"});
  for (const Q41Group* g : groups)
    rb.BeginRow().Int(g->year).Str(g->c_nation.View()).Numeric(g->profit, 2);
  return rb.Finish();
}

}  // namespace vcq::typer
