#ifndef VCQ_TYPER_ROF_H_
#define VCQ_TYPER_ROF_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>

#include "typer/join_table.h"

// Shared scaffolding for Typer's relaxed-operator-fusion probe pipelines
// (paper §9.1). Every ROF site used to hand-roll the same shape: chunk the
// morsel into blocks, gather the indices passing the scan filter, run each
// join table's three probe stages over the block, then resolve a block
// behind with the prefetch latency hidden. StagedProbeLoop is that shape
// once, variadic over any number of join tables (Q3 probes one, Q4.1
// probes four), with the block size a runtime parameter so the tuner can
// sweep it (QueryOptions::rof_block) instead of a compile-time constant.

namespace vcq::typer {

/// Filter tag for sites where every row probes (no scan predicate ahead of
/// the joins): skips the index-gather entirely and stages rows in place.
struct RofAllTag {
  bool operator()(size_t) const { return true; }  // never called
};
inline constexpr RofAllTag kRofAll{};

/// One join table's staged probe state plus the row -> hash function for
/// this site, so the loop can stage any mix of tables uniformly.
/// `hash_of(i)` computes the probe hash of row i (typically
/// HashKey(column[i])).
template <typename Table, typename HashFn>
class StagedProbe {
 public:
  StagedProbe(const Table& table, HashFn hash_of)
      : staged_(table), hash_of_(std::move(hash_of)) {}

  /// Stage 1 over the block's n rows; at(k) maps block position -> row.
  template <typename IdxFn>
  void Stage(size_t n, IdxFn&& at) {
    staged_.Hash(n, [&](size_t k) { return hash_of_(at(k)); });
  }

  /// Stage 2: prefetch the surviving chain heads.
  void Prefetch(size_t n) const { staged_.PrefetchEntries(n); }

  /// The staged hash of block position k (stage 3 input).
  uint64_t hash(size_t k) const { return staged_.hash(k); }

  /// Stage 3 shortcut: lookup with the staged hash.
  template <typename EqFn>
  auto Lookup(size_t k, EqFn&& eq) const {
    return staged_.Lookup(k, std::forward<EqFn>(eq));
  }

 private:
  typename Table::StagedLookup staged_;
  HashFn hash_of_;
};

template <typename Entry, typename HashFn>
StagedProbe(const JoinTable<Entry>&, HashFn)
    -> StagedProbe<JoinTable<Entry>, HashFn>;

/// The staged probe loop over rows [begin, end): blocks of `block_size`
/// rows (clamped to [1, kRofMaxBlock]) are filtered, staged through every
/// probe's three stages, and resolved by
/// `body(row, probes.hash(k)...)` — one hash argument per probe, in the
/// order the probes are passed. Pass kRofAll as `filter` when every row
/// probes; otherwise `filter(row)` selects the rows to stage.
template <typename Filter, typename Body, typename... Probes>
void StagedProbeLoop(size_t begin, size_t end, size_t block_size,
                     Filter&& filter, Body&& body, Probes&... probes) {
  block_size = std::clamp<size_t>(block_size, 1, kRofMaxBlock);
  constexpr bool kAllRows =
      std::is_same_v<std::remove_cv_t<std::remove_reference_t<Filter>>,
                     RofAllTag>;
  size_t idx[kRofMaxBlock];
  for (size_t block = begin; block < end; block += block_size) {
    const size_t limit = std::min(end, block + block_size);
    size_t n;
    if constexpr (kAllRows) {
      n = limit - block;
      (probes.Stage(n, [&](size_t k) { return block + k; }), ...);
    } else {
      n = 0;
      for (size_t i = block; i < limit; ++i) {
        if (filter(i)) idx[n++] = i;
      }
      (probes.Stage(n, [&](size_t k) { return idx[k]; }), ...);
    }
    (probes.Prefetch(n), ...);
    for (size_t k = 0; k < n; ++k) {
      const size_t i = kAllRows ? block + k : idx[k];
      body(i, probes.hash(k)...);
    }
  }
}

}  // namespace vcq::typer

#endif  // VCQ_TYPER_ROF_H_
