#ifndef VCQ_TYPER_GROUP_TABLE_H_
#define VCQ_TYPER_GROUP_TABLE_H_

#include <array>
#include <memory>
#include <vector>

#include "runtime/hashmap.h"
#include "runtime/mem_pool.h"
#include "runtime/worker_pool.h"

// Group-by support for the Typer engine. The aggregation algorithm is the
// same two-phase scheme both engines share (paper §3.2): worker-local
// pre-aggregation that spills group pointers into hash partitions, then a
// parallel per-partition merge. Unlike Tectorwise, everything here is
// template-inlined into the query's fused loop — no per-vector indirection,
// keys live in registers until the group update (paper §2).

namespace vcq::typer {

inline constexpr size_t kGroupPartitions = 64;

inline size_t GroupPartitionOf(uint64_t hash) { return (hash >> 52) & 63; }

/// Worker-local aggregation table. Entry must begin with a
/// runtime::Hashmap::EntryHeader member named `header`.
template <typename Entry>
class LocalGroupTable {
 public:
  LocalGroupTable() { ht_.SetSize(2048); }

  /// Governed construction: group-entry allocations are charged to the
  /// run's memory ledger and exposed as the "typer.group.alloc" fault
  /// point. The pipelines construct their local tables with this overload;
  /// the default ctor stays for ungoverned/standalone use.
  explicit LocalGroupTable(const runtime::QueryOptions& opt) {
    pool_.Bind(opt.ledger, opt.fault, "typer.group.alloc");
    ht_.SetSize(2048);
  }

  /// Returns the group for `hash`, creating it with `init(Entry*)` when
  /// absent. `eq(const Entry&)` decides key equality against the probe key
  /// held in the caller's registers.
  template <typename EqFn, typename InitFn>
  Entry* FindOrCreate(uint64_t hash, EqFn&& eq, InitFn&& init) {
    for (auto* e = ht_.FindChainTagged(hash); e != nullptr; e = e->next) {
      if (e->hash == hash && eq(*reinterpret_cast<Entry*>(e)))
        return reinterpret_cast<Entry*>(e);
    }
    if ((count_ + 1) * 2 > ht_.capacity()) Grow();
    Entry* entry = pool_.template Create<Entry>();
    entry->header.next = nullptr;
    entry->header.hash = hash;
    init(entry);
    ht_.InsertUnlocked(&entry->header);
    parts[GroupPartitionOf(hash)].push_back(entry);
    ++count_;
    return entry;
  }

  size_t size() const { return count_; }

  std::array<std::vector<Entry*>, kGroupPartitions> parts;

 private:
  void Grow() {
    ht_.SetSize(count_ * 4);
    for (auto& part : parts)
      for (Entry* e : part) ht_.InsertUnlocked(&e->header);
  }

  runtime::Hashmap ht_;
  runtime::MemPool pool_;
  size_t count_ = 0;
};

/// Parallel partition-wise merge of all workers' local tables. Entry must
/// provide `bool KeyEquals(const Entry&) const` and `void Combine(const
/// Entry&)`. Returns the distinct merged groups (order unspecified).
template <typename Entry>
std::vector<Entry*> MergeLocalGroups(
    std::vector<std::unique_ptr<LocalGroupTable<Entry>>>& locals,
    const runtime::QueryOptions& opt) {
  const size_t threads = opt.threads;
  std::array<std::vector<Entry*>, kGroupPartitions> merged;
  // Work hint in tuples, like every other region: the groups this merge
  // reads across all local tables.
  size_t total_groups = 0;
  for (const auto& local : locals) {
    if (local != nullptr) total_groups += local->size();
  }
  runtime::PoolFor(opt).Run(opt, total_groups, [&](size_t wid) {
    for (size_t p = wid; p < kGroupPartitions; p += threads) {
      // The merge is the query's serial-phase tail: poll the token per
      // partition so a deadline/budget trip after the scan phase still
      // drains promptly instead of merging groups nobody will see.
      if (runtime::Interrupted(opt.cancel)) return;
      runtime::FaultHit(opt.fault, "typer.group.merge", opt.cancel);
      size_t total = 0;
      // A worker that died mid-scan (exception backstop) never created its
      // local table; merge what the survivors produced — the result is
      // discarded anyway once the tripped token surfaces.
      for (const auto& local : locals) {
        if (local != nullptr) total += local->parts[p].size();
      }
      if (total == 0) continue;
      if (locals.size() == 1 && locals[0] != nullptr) {
        merged[p] = std::move(locals[0]->parts[p]);
        continue;
      }
      runtime::Hashmap ht;
      ht.SetSize(total);
      std::vector<Entry*>& out = merged[p];
      out.reserve(total);
      for (const auto& local : locals) {
        if (local == nullptr) continue;
        for (Entry* e : local->parts[p]) {
          Entry* existing = nullptr;
          for (auto* c = ht.FindChain(e->header.hash); c != nullptr;
               c = c->next) {
            auto* ce = reinterpret_cast<Entry*>(c);
            if (c->hash == e->header.hash && ce->KeyEquals(*e)) {
              existing = ce;
              break;
            }
          }
          if (existing == nullptr) {
            e->header.next = nullptr;
            ht.InsertUnlocked(&e->header);
            out.push_back(e);
          } else {
            existing->Combine(*e);
          }
        }
      }
    }
  });
  std::vector<Entry*> result;
  for (auto& part : merged)
    result.insert(result.end(), part.begin(), part.end());
  return result;
}

}  // namespace vcq::typer

#endif  // VCQ_TYPER_GROUP_TABLE_H_
