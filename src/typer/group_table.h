#ifndef VCQ_TYPER_GROUP_TABLE_H_
#define VCQ_TYPER_GROUP_TABLE_H_

#include <array>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "runtime/hashmap.h"
#include "runtime/mem_pool.h"
#include "runtime/resource_governor.h"
#include "runtime/spill.h"
#include "runtime/worker_pool.h"

// Group-by support for the Typer engine. The aggregation algorithm is the
// same two-phase scheme both engines share (paper §3.2): worker-local
// pre-aggregation that spills group pointers into hash partitions, then a
// parallel per-partition merge. Unlike Tectorwise, everything here is
// template-inlined into the query's fused loop — no per-vector indirection,
// keys live in registers until the group update (paper §2).

namespace vcq::typer {

inline constexpr size_t kGroupPartitions = 64;

inline size_t GroupPartitionOf(uint64_t hash) { return (hash >> 52) & 63; }

/// Worker-local aggregation table. Entry must begin with a
/// runtime::Hashmap::EntryHeader member named `header`.
///
/// Spill-capable (runtime/spill.h): on governed spill-enabled runs,
/// FindOrCreate polls the ledger's pressure signal at its entry — the one
/// point where no caller holds a group pointer across the call — and under
/// pressure evicts the whole local table to a hash-partitioned spill file
/// and starts empty. A spilled key that reappears simply pre-aggregates
/// into a fresh local entry; MergeLocalGroups re-reads the spilled
/// segments and combines duplicates, so final aggregates (and the merge's
/// first-seen output order) are byte-identical to in-memory runs.
template <typename Entry>
class LocalGroupTable {
  static_assert(std::is_trivially_copyable_v<Entry>,
                "group spill relocates entries bytewise");

 public:
  LocalGroupTable() { ht_.SetSize(2048); }

  /// Governed construction: group-entry allocations are charged to the
  /// run's memory ledger and exposed as the "typer.group.alloc" fault
  /// point. The pipelines construct their local tables with this overload;
  /// the default ctor stays for ungoverned/standalone use.
  explicit LocalGroupTable(const runtime::QueryOptions& opt)
      : ledger_(opt.ledger), spill_mgr_(opt.spill_manager) {
    pool_.Bind(opt.ledger, opt.fault, "typer.group.alloc");
    ht_.SetSize(2048);
  }

  /// Returns the group for `hash`, creating it with `init(Entry*)` when
  /// absent. `eq(const Entry&)` decides key equality against the probe key
  /// held in the caller's registers. The returned pointer is valid until
  /// the next FindOrCreate (which may spill the table).
  template <typename EqFn, typename InitFn>
  Entry* FindOrCreate(uint64_t hash, EqFn&& eq, InitFn&& init) {
    if (spill_mgr_ != nullptr) MaybeSpill();
    for (auto* e = ht_.FindChainTagged(hash); e != nullptr; e = e->next) {
      if (e->hash == hash && eq(*reinterpret_cast<Entry*>(e)))
        return reinterpret_cast<Entry*>(e);
    }
    if ((count_ + 1) * 2 > ht_.capacity()) Grow();
    Entry* entry = pool_.template Create<Entry>();
    entry->header.next = nullptr;
    entry->header.hash = hash;
    init(entry);
    ht_.InsertUnlocked(&entry->header);
    parts[GroupPartitionOf(hash)].push_back(entry);
    ++count_;
    return entry;
  }

  size_t size() const { return count_; }
  /// Spilled pre-aggregated entries of this worker (nullptr = none);
  /// consumed by MergeLocalGroups.
  const runtime::SpillFile* spill_file() const { return spill_; }

  std::array<std::vector<Entry*>, kGroupPartitions> parts;

 private:
  /// Don't bother spilling fewer groups than this: eviction must actually
  /// relieve memory, and a near-empty table under pressure from elsewhere
  /// (e.g. a resident join arena) would otherwise spill every new group
  /// one at a time.
  static constexpr size_t kSpillMinGroups = 256;

  void MaybeSpill() {
    if (count_ < kSpillMinGroups || ledger_ == nullptr ||
        !ledger_->UnderPressure())
      return;
    if (spill_ == nullptr) spill_ = spill_mgr_->Create("typer.group");
    std::vector<std::byte> buf;
    for (size_t p = 0; p < kGroupPartitions; ++p) {
      std::vector<Entry*>& part = parts[p];
      if (part.empty()) continue;
      buf.resize(part.size() * sizeof(Entry));
      for (size_t i = 0; i < part.size(); ++i)
        std::memcpy(buf.data() + i * sizeof(Entry), part[i], sizeof(Entry));
      spill_->Append(static_cast<uint32_t>(p), buf.data(), buf.size(),
                     part.size());
      part.clear();
    }
    pool_.Release();
    ht_.Clear();
    count_ = 0;
  }

  void Grow() {
    ht_.SetSize(count_ * 4);
    for (auto& part : parts)
      for (Entry* e : part) ht_.InsertUnlocked(&e->header);
  }

  runtime::Hashmap ht_;
  runtime::MemPool pool_;
  size_t count_ = 0;
  runtime::QueryLedger* ledger_ = nullptr;
  runtime::SpillManager* spill_mgr_ = nullptr;
  runtime::SpillFile* spill_ = nullptr;
};

/// MergeLocalGroups result: the distinct merged groups plus the merge-side
/// pools that own any entries rehydrated from spill files. Keep the struct
/// alive as long as the group pointers are read (the pipelines hold it
/// until the result rows are built).
template <typename Entry>
struct MergedGroups {
  std::vector<Entry*> groups;
  std::vector<runtime::MemPool> pools;  // one per merge worker
};

/// Parallel partition-wise merge of all workers' local tables — live
/// entries plus any spilled segments (re-read partition-at-a-time, each
/// worker's spilled rows before its live rows, i.e. creation order, so the
/// first-seen output order is byte-identical to an in-memory run). Entry
/// must provide `bool KeyEquals(const Entry&) const` and `void
/// Combine(const Entry&)`. Group order across partitions is unspecified
/// (the pipelines sort).
template <typename Entry>
MergedGroups<Entry> MergeLocalGroups(
    std::vector<std::unique_ptr<LocalGroupTable<Entry>>>& locals,
    const runtime::QueryOptions& opt) {
  const size_t threads = opt.threads;
  std::array<std::vector<Entry*>, kGroupPartitions> merged;
  MergedGroups<Entry> result;
  result.pools.resize(threads);
  for (runtime::MemPool& pool : result.pools)
    pool.Bind(opt.ledger, opt.fault, "typer.group.merge");
  // Work hint in tuples, like every other region: the groups this merge
  // reads across all local tables.
  size_t total_groups = 0;
  bool any_spilled = false;
  for (const auto& local : locals) {
    if (local == nullptr) continue;
    total_groups += local->size();
    if (const runtime::SpillFile* f = local->spill_file()) {
      any_spilled = true;
      for (const auto& seg : f->segments()) total_groups += seg.rows;
    }
  }
  runtime::PoolFor(opt).Run(opt, total_groups, [&](size_t wid) {
    std::vector<std::byte> buf;
    for (size_t p = wid; p < kGroupPartitions; p += threads) {
      // The merge is the query's serial-phase tail: poll the token per
      // partition so a deadline/budget trip after the scan phase still
      // drains promptly instead of merging groups nobody will see.
      if (runtime::Interrupted(opt.cancel)) return;
      runtime::FaultHit(opt.fault, "typer.group.merge", opt.cancel);
      size_t total = 0;
      // A worker that died mid-scan (exception backstop) never created its
      // local table; merge what the survivors produced — the result is
      // discarded anyway once the tripped token surfaces.
      for (const auto& local : locals) {
        if (local == nullptr) continue;
        total += local->parts[p].size();
        if (const runtime::SpillFile* f = local->spill_file())
          total += f->rows_in_partition(static_cast<uint32_t>(p));
      }
      if (total == 0) continue;
      if (locals.size() == 1 && locals[0] != nullptr && !any_spilled) {
        merged[p] = std::move(locals[0]->parts[p]);
        continue;
      }
      runtime::Hashmap ht;
      ht.SetSize(total);
      std::vector<Entry*>& out = merged[p];
      out.reserve(total);
      auto combine_or_insert = [&](const Entry& e, auto&& materialize) {
        Entry* existing = nullptr;
        for (auto* c = ht.FindChain(e.header.hash); c != nullptr;
             c = c->next) {
          auto* ce = reinterpret_cast<Entry*>(c);
          if (c->hash == e.header.hash && ce->KeyEquals(e)) {
            existing = ce;
            break;
          }
        }
        if (existing == nullptr) {
          Entry* owned = materialize();
          owned->header.next = nullptr;
          ht.InsertUnlocked(&owned->header);
          out.push_back(owned);
        } else {
          existing->Combine(e);
        }
      };
      for (const auto& local : locals) {
        if (local == nullptr) continue;
        // Spilled rows first: they were created before anything still live
        // in this worker's table, and first-seen order is the output order.
        if (const runtime::SpillFile* f = local->spill_file()) {
          for (const auto& seg : f->segments()) {
            if (seg.partition != p) continue;
            buf.resize(seg.bytes);
            f->Read(seg, buf.data());
            for (size_t k = 0; k < seg.rows; ++k) {
              Entry tmp;
              std::memcpy(&tmp, buf.data() + k * sizeof(Entry),
                          sizeof(Entry));
              combine_or_insert(tmp, [&]() {
                Entry* owned = result.pools[wid].template Create<Entry>();
                *owned = tmp;
                return owned;
              });
            }
          }
        }
        for (Entry* e : local->parts[p])
          combine_or_insert(*e, [&]() { return e; });
      }
    }
  });
  for (auto& part : merged)
    result.groups.insert(result.groups.end(), part.begin(), part.end());
  return result;
}

}  // namespace vcq::typer

#endif  // VCQ_TYPER_GROUP_TABLE_H_
