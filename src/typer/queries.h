#ifndef VCQ_TYPER_QUERIES_H_
#define VCQ_TYPER_QUERIES_H_

#include "runtime/options.h"
#include "runtime/params.h"
#include "runtime/query_result.h"
#include "runtime/relation.h"

// Typer: the data-centric "compiled" engine. Each query is the fused
// tight-loop pipeline that HyPer-style produce/consume code generation
// emits (paper §2, Fig. 2a) — compiled ahead of time, which the paper's own
// methodology treats as equivalent since compile time is excluded from all
// measurements (§3, footnote 1). Predicates, arithmetic, hash-table probes
// and aggregate updates of one pipeline all live in a single loop whose
// intermediate values stay in registers.
//
// Every pipeline is parameterized (paper §8.1: compilation's edge is
// repeated execution of prepared statements): predicate constants are read
// from `params` at the top of the run, so one compiled pipeline serves any
// binding. Each query requires every parameter the vcq::QueryCatalog
// declares for it to be bound — go through vcq::Session (which merges the
// catalog defaults) or bind them all explicitly.

namespace vcq::typer {

runtime::QueryResult RunQ1(const runtime::Database& db,
                           const runtime::QueryOptions& opt,
                           const runtime::QueryParams& params);
runtime::QueryResult RunQ6(const runtime::Database& db,
                           const runtime::QueryOptions& opt,
                           const runtime::QueryParams& params);
runtime::QueryResult RunQ3(const runtime::Database& db,
                           const runtime::QueryOptions& opt,
                           const runtime::QueryParams& params);
runtime::QueryResult RunQ9(const runtime::Database& db,
                           const runtime::QueryOptions& opt,
                           const runtime::QueryParams& params);
runtime::QueryResult RunQ18(const runtime::Database& db,
                            const runtime::QueryOptions& opt,
                            const runtime::QueryParams& params);

runtime::QueryResult RunSsbQ11(const runtime::Database& db,
                               const runtime::QueryOptions& opt,
                               const runtime::QueryParams& params);
runtime::QueryResult RunSsbQ21(const runtime::Database& db,
                               const runtime::QueryOptions& opt,
                               const runtime::QueryParams& params);
runtime::QueryResult RunSsbQ31(const runtime::Database& db,
                               const runtime::QueryOptions& opt,
                               const runtime::QueryParams& params);
runtime::QueryResult RunSsbQ41(const runtime::Database& db,
                               const runtime::QueryOptions& opt,
                               const runtime::QueryParams& params);

}  // namespace vcq::typer

#endif  // VCQ_TYPER_QUERIES_H_
