#ifndef VCQ_TYPER_QUERIES_H_
#define VCQ_TYPER_QUERIES_H_

#include <memory>
#include <mutex>

#include "runtime/cancel.h"
#include "runtime/fault_injector.h"
#include "runtime/options.h"
#include "runtime/params.h"
#include "runtime/query_result.h"
#include "runtime/relation.h"

// Typer: the data-centric "compiled" engine. Each query is the fused
// tight-loop pipeline that HyPer-style produce/consume code generation
// emits (paper §2, Fig. 2a) — compiled ahead of time, which the paper's own
// methodology treats as equivalent since compile time is excluded from all
// measurements (§3, footnote 1). Predicates, arithmetic, hash-table probes
// and aggregate updates of one pipeline all live in a single loop whose
// intermediate values stay in registers.
//
// Every pipeline is parameterized (paper §8.1: compilation's edge is
// repeated execution of prepared statements): predicate constants are read
// from `params` at the top of the run, so one compiled pipeline serves any
// binding. Each query requires every parameter the vcq::QueryCatalog
// declares for it to be bound — go through vcq::Session (which merges the
// catalog defaults) or bind them all explicitly.
//
// Column resolution is cached per prepared query: Relation::Col<T> does a
// name lookup plus a type check per call, which one-shot runs pay once but
// a warm PreparedQuery used to re-pay on every Execute. Each pipeline
// resolves its columns into a query-specific struct through the
// ColumnCache below — the first Execute populates it, later ones reuse the
// spans (one atomic call_once fast path; visible on Q6 at threads=1).

namespace vcq::typer {

/// Per-PreparedQuery cache of resolved column accessors. One cache serves
/// exactly one query, so it holds a single type-erased slot: the query's
/// resolved-columns struct, created on first use. Get() is safe to call
/// from concurrent Execute()s; the cached spans point into the Database,
/// which outlives the session (Session API contract).
class ColumnCache {
 public:
  template <typename Cols, typename MakeFn>
  const Cols& Get(MakeFn&& make) const {
    std::call_once(once_, [&] { cols_ = std::make_shared<Cols>(make()); });
    return *static_cast<const Cols*>(cols_.get());
  }

 private:
  mutable std::once_flag once_;
  mutable std::shared_ptr<void> cols_;
};

/// The per-morsel cancellation poll every Typer pipeline loop uses:
/// checked before each morsel claim, so a cancelled or deadline-expired
/// run stops at the next morsel boundary (see runtime/cancel.h for why
/// the before-claim ordering keeps partially built hash tables unprobed).
/// Doubles as the engine's densest fault point ("scan.morsel"): an
/// injected failure here exercises the exception backstop at every morsel
/// boundary of every pipeline.
inline bool Stop(const runtime::QueryOptions& opt) {
  runtime::FaultHit(opt.fault, "scan.morsel", opt.cancel);
  return runtime::Interrupted(opt.cancel);
}

runtime::QueryResult RunQ1(const runtime::Database& db,
                           const runtime::QueryOptions& opt,
                           const runtime::QueryParams& params,
                           const ColumnCache& cache);
runtime::QueryResult RunQ6(const runtime::Database& db,
                           const runtime::QueryOptions& opt,
                           const runtime::QueryParams& params,
                           const ColumnCache& cache);
runtime::QueryResult RunQ3(const runtime::Database& db,
                           const runtime::QueryOptions& opt,
                           const runtime::QueryParams& params,
                           const ColumnCache& cache);
runtime::QueryResult RunQ9(const runtime::Database& db,
                           const runtime::QueryOptions& opt,
                           const runtime::QueryParams& params,
                           const ColumnCache& cache);
runtime::QueryResult RunQ18(const runtime::Database& db,
                            const runtime::QueryOptions& opt,
                            const runtime::QueryParams& params,
                            const ColumnCache& cache);

runtime::QueryResult RunSsbQ11(const runtime::Database& db,
                               const runtime::QueryOptions& opt,
                               const runtime::QueryParams& params,
                               const ColumnCache& cache);
runtime::QueryResult RunSsbQ21(const runtime::Database& db,
                               const runtime::QueryOptions& opt,
                               const runtime::QueryParams& params,
                               const ColumnCache& cache);
runtime::QueryResult RunSsbQ31(const runtime::Database& db,
                               const runtime::QueryOptions& opt,
                               const runtime::QueryParams& params,
                               const ColumnCache& cache);
runtime::QueryResult RunSsbQ41(const runtime::Database& db,
                               const runtime::QueryOptions& opt,
                               const runtime::QueryParams& params,
                               const ColumnCache& cache);

}  // namespace vcq::typer

#endif  // VCQ_TYPER_QUERIES_H_
