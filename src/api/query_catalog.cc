#include "api/query_catalog.h"

#include "common/check.h"
#include "runtime/relation.h"

namespace vcq {

using runtime::ParamType;

namespace {

ParamSpec IntParam(std::string name, int64_t dflt, std::string description) {
  return ParamSpec{std::move(name), ParamType::kInt, "", dflt,
                   std::move(description)};
}

ParamSpec DateParam(std::string name, std::string iso,
                    std::string description) {
  return ParamSpec{std::move(name), ParamType::kDate, std::move(iso), 0,
                   std::move(description)};
}

ParamSpec StrParam(std::string name, std::string dflt,
                   std::string description) {
  return ParamSpec{std::move(name), ParamType::kString, std::move(dflt), 0,
                   std::move(description)};
}

std::vector<QueryInfo> BuildCatalog() {
  std::vector<QueryInfo> catalog;

  catalog.push_back(QueryInfo{
      Query::kQ1,
      "Q1",
      Workload::kTpch,
      /*volcano=*/true,
      {DateParam("shipdate", "1998-09-02", "l_shipdate <= :shipdate")},
      "pricing summary: in-cache aggregation, fixed-point arithmetic"});

  catalog.push_back(QueryInfo{
      Query::kQ6,
      "Q6",
      Workload::kTpch,
      /*volcano=*/true,
      {DateParam("shipdate_lo", "1994-01-01", "l_shipdate >= :shipdate_lo"),
       DateParam("shipdate_hi", "1994-12-31", "l_shipdate <= :shipdate_hi"),
       IntParam("discount_lo", 5, "l_discount >= :discount_lo (scale 2)"),
       IntParam("discount_hi", 7, "l_discount <= :discount_hi (scale 2)"),
       IntParam("quantity_max", 2400, "l_quantity < :quantity_max (scale 2)")},
      "forecasting revenue change: selective scan, single aggregate"});

  catalog.push_back(QueryInfo{
      Query::kQ3,
      "Q3",
      Workload::kTpch,
      /*volcano=*/true,
      {StrParam("segment", "BUILDING", "c_mktsegment == :segment"),
       DateParam("date", "1995-03-15",
                 "o_orderdate < :date and l_shipdate > :date")},
      "shipping priority: two joins into a group-by, top-10"});

  catalog.push_back(QueryInfo{
      Query::kQ9,
      "Q9",
      Workload::kTpch,
      /*volcano=*/true,
      {StrParam("color", "green", "p_name contains :color")},
      "product-type profit: four joins (one composite-key), group-by"});

  catalog.push_back(QueryInfo{
      Query::kQ18,
      "Q18",
      Workload::kTpch,
      /*volcano=*/true,
      {IntParam("quantity_min", 30000,
                "having sum(l_quantity) > :quantity_min (scale 2)")},
      "large-volume customers: high-cardinality aggregation, having"});

  catalog.push_back(QueryInfo{
      Query::kSsbQ11,
      "SSB-Q1.1",
      Workload::kSsb,
      /*volcano=*/false,
      {IntParam("year", 1993, "d_year == :year"),
       IntParam("discount_lo", 1, "lo_discount >= :discount_lo"),
       IntParam("discount_hi", 3, "lo_discount <= :discount_hi"),
       IntParam("quantity_max", 25, "lo_quantity < :quantity_max")},
      "date join + tight selections, single aggregate"});

  catalog.push_back(QueryInfo{
      Query::kSsbQ21,
      "SSB-Q2.1",
      Workload::kSsb,
      /*volcano=*/false,
      {StrParam("category", "MFGR#12", "p_category == :category"),
       StrParam("region", "AMERICA", "s_region == :region")},
      "part + supplier + date joins, group by (year, brand)"});

  catalog.push_back(QueryInfo{
      Query::kSsbQ31,
      "SSB-Q3.1",
      Workload::kSsb,
      /*volcano=*/false,
      {StrParam("region", "ASIA", "c_region == :region == s_region"),
       IntParam("year_lo", 1992, "d_year >= :year_lo"),
       IntParam("year_hi", 1997, "d_year <= :year_hi")},
      "customer + supplier + date joins, nation-pair group-by"});

  catalog.push_back(QueryInfo{
      Query::kSsbQ41,
      "SSB-Q4.1",
      Workload::kSsb,
      /*volcano=*/false,
      {StrParam("region", "AMERICA", "c_region == :region == s_region"),
       StrParam("mfgr_a", "MFGR#1", "p_mfgr == :mfgr_a || :mfgr_b"),
       StrParam("mfgr_b", "MFGR#2", "p_mfgr == :mfgr_a || :mfgr_b")},
      "four-dimension join, profit group-by"});

  return catalog;
}

}  // namespace

const std::vector<QueryInfo>& QueryCatalog() {
  static const std::vector<QueryInfo>* catalog =
      new std::vector<QueryInfo>(BuildCatalog());
  return *catalog;
}

const QueryInfo& CatalogEntry(Query query) {
  for (const QueryInfo& info : QueryCatalog()) {
    if (info.query == query) return info;
  }
  VCQ_CHECK_MSG(false, "query missing from the catalog");
  std::abort();  // unreachable: the check above never returns
}

const QueryInfo* FindQuery(std::string_view name) {
  for (const QueryInfo& info : QueryCatalog()) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

runtime::QueryParams DefaultParams(Query query) {
  runtime::QueryParams params;
  for (const ParamSpec& spec : CatalogEntry(query).params) {
    switch (spec.type) {
      case ParamType::kInt: params.SetInt(spec.name, spec.default_int); break;
      case ParamType::kDate:
        params.SetDate(spec.name, spec.default_string);
        break;
      case ParamType::kString:
        params.SetString(spec.name, spec.default_string);
        break;
    }
  }
  return params;
}

std::vector<Query> QueriesFor(Workload workload) {
  std::vector<Query> out;
  for (const QueryInfo& info : QueryCatalog()) {
    if (info.workload == workload) out.push_back(info.query);
  }
  return out;
}

size_t EstimatedBuildBytes(const runtime::Database& db, Query query) {
  // Per-entry cost covering the materialized entry (header + key +
  // payload), its directory word, and the partitioned protocol's relink
  // arena (which briefly doubles the entries). Deliberately generous:
  // admission that queues a query which would have fit is a latency cost;
  // admission that lets a query overcommit defeats the budget.
  constexpr size_t kBytesPerBuildTuple = 64;
  // Build-side relations per query, selectivity ignored. Q1/Q6 build no
  // join tables; their group tables are a few hundred groups — noise.
  const auto tuples = [&](std::initializer_list<const char*> names) {
    size_t total = 0;
    for (const char* name : names) total += db[name].tuple_count();
    return total * kBytesPerBuildTuple;
  };
  switch (query) {
    case Query::kQ1:
    case Query::kQ6: return 0;
    case Query::kQ3: return tuples({"customer", "orders"});
    case Query::kQ9: return tuples({"part", "partsupp", "supplier", "orders"});
    // Q18 pre-aggregates lineitem into per-order groups that feed a join
    // build, so the whole scan side counts as build footprint.
    case Query::kQ18: return tuples({"lineitem", "orders", "customer"});
    case Query::kSsbQ11: return tuples({"date"});
    case Query::kSsbQ21: return tuples({"part", "supplier", "date"});
    case Query::kSsbQ31: return tuples({"customer", "supplier", "date"});
    case Query::kSsbQ41:
      return tuples({"customer", "supplier", "part", "date"});
  }
  VCQ_CHECK_MSG(false, "query missing from the catalog");
  std::abort();  // unreachable
}

size_t ScannedTuples(const runtime::Database& db, Query query) {
  const auto count = [&](const char* name) { return db[name].tuple_count(); };
  switch (query) {
    case Query::kQ1:
    case Query::kQ6: return count("lineitem");
    case Query::kQ3:
      return count("customer") + count("orders") + count("lineitem");
    case Query::kQ9:
      return count("part") + count("supplier") + count("partsupp") +
             count("orders") + count("lineitem");
    case Query::kQ18:
      return count("lineitem") + count("orders") + count("customer");
    case Query::kSsbQ11: return count("lineorder") + count("date");
    case Query::kSsbQ21:
      return count("lineorder") + count("date") + count("part") +
             count("supplier");
    case Query::kSsbQ31:
      return count("lineorder") + count("date") + count("customer") +
             count("supplier");
    case Query::kSsbQ41:
      return count("lineorder") + count("date") + count("customer") +
             count("supplier") + count("part");
  }
  VCQ_CHECK_MSG(false, "query missing from the catalog");
  std::abort();  // unreachable
}

}  // namespace vcq
