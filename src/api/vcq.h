#ifndef VCQ_API_VCQ_H_
#define VCQ_API_VCQ_H_

#include <string>
#include <vector>

#include "runtime/options.h"
#include "runtime/query_result.h"
#include "runtime/relation.h"

// Public entry points of the VCQ library.
//
// The serving API is vcq::Session (api/session.h): a long-lived object
// owning the database reference, a worker pool, and a scheduling stream
// on that pool's query scheduler (runtime/scheduler.h). Prepare a query
// once — validation, plan building, compaction-registration derivation,
// the catalog parameter cross-check, and the Typer column-accessor cache
// all happen at prepare time — then execute it as often as you like, with
// parameter bindings, concurrently with other in-flight queries:
//
//   vcq::runtime::Database db = vcq::datagen::GenerateTpch(1.0);
//   vcq::Session session(db);
//   session.SetWeight(2.0);        // weighted fairness vs other sessions
//   vcq::PreparedQuery q6 = session.Prepare(
//       vcq::Engine::kTyper, vcq::Query::kQ6, {.threads = 8});
//   std::cout << q6.Execute().ToString();          // spec-default bindings
//   q6.Set("discount_lo", 4).Set("shipdate_lo", "1995-01-01");
//   std::cout << q6.Execute().ToString();          // rebound, same plan
//   vcq::ExecutionHandle h = q6.ExecuteAsync();    // overlap a query mix
//   h.Cancel();                                    // cooperative cancel
//   auto r = q6.Execute(std::chrono::milliseconds(50));  // with deadline
//   if (!r.ok()) { /* kCancelled / kDeadlineExceeded / kRejected */ }
//
// Scheduling model: parallel regions of all in-flight queries are
// gang-scheduled onto the pool's FIXED worker set (thread count is a
// configuration, not a function of load), ordered by per-session weighted
// fair queueing; executions beyond the scheduler's admission limit get
// ExecStatus::kRejected backpressure instead of queueing unboundedly.
// Cancellation and deadlines are cooperative: both engines poll at morsel
// boundaries, and a stopped execution frees its slots and memory and
// returns an empty result carrying the status.
//
// Error-handling model: every execution resolves to exactly one
// runtime::ExecStatus, and a non-kOk result is always EMPTY — partial rows
// are never surfaced. The taxonomy:
//   kOk                 complete result.
//   kCancelled          ExecutionHandle::Cancel() or a pre-tripped token.
//   kDeadlineExceeded   the execution's deadline passed (while queued for
//                       admission or mid-query at a poll point).
//   kRejected           admission backpressure: the scheduler's in-flight
//                       or queue limit was hit. Transient — retry later.
//   kResourceExhausted  a memory-budget trip (per-query
//                       QueryOptions::memory_budget or the process-wide
//                       runtime::ResourceGovernor), a memory-aware
//                       admission rejection (the catalog's build-size
//                       estimate cannot ever fit the scheduler's byte
//                       budget), or a real std::bad_alloc from a worker.
//   kInternalError      any other exception escaping a worker; the query
//                       drains and the process survives.
// Budget trips are SOFT: crossing a budget never throws — it trips the
// run's CancelToken (first cause wins, sticky) and every worker drains at
// its next poll point, so overshoot is bounded by one pool chunk per
// worker. Hard allocation failure (std::bad_alloc) unwinds instead; the
// scheduler's run-slot backstop converts it to the same sticky trip, so
// barriers never deadlock on a dead worker and partially built hash
// tables are never probed. After ANY failed execution the run's pools are
// fully released (runtime::MemPool::live_bytes() returns to its pre-query
// baseline) and an immediate re-execution of the same prepared query is
// byte-identical to a never-failed run. Transient statuses (kRejected,
// kResourceExhausted) can be retried automatically with
// PreparedQuery::ExecuteWithRetry (api/session.h: capped exponential
// backoff, deterministic jitter, and an optional RetryPolicy::total_timeout
// wall-clock budget across all attempts). The failure paths themselves are
// testable deterministically via runtime::FaultInjector
// (runtime/fault_injector.h; env: VCQ_FAULT / VCQ_FAULT_SEED).
//
// Degrade-don't-die model (PR 8): a budget trip no longer has to kill the
// query — three nested mechanisms trade speed for survival, and every one
// of them preserves byte-identical results:
//   1. Spill (QueryOptions::spill): under ledger pressure the memory-
//      intensive operators — hash-join builds and aggregation tables, both
//      engines — partition their state Grace-style to temp files
//      (runtime/spill.h) instead of tripping, then stream it back for the
//      merge/probe. Spill files live under VCQ_SPILL_DIR (else TMPDIR, else
//      /tmp) in a per-execution subdirectory that is always removed, even
//      on failure; total spill disk is capped by QueryOptions::spill_limit
//      (else the VCQ_SPILL_LIMIT env; 0 = unlimited) — exceeding the cap is
//      a normal kResourceExhausted trip. Bytes written are reported in
//      QueryResult::spilled_bytes, and every spill I/O site is a registered
//      fault point (spill.open/write/read/unlink).
//   2. Degraded retry ladder (PreparedQuery::ExecuteWithDegradation): on
//      kResourceExhausted — and only then — the prepared query is re-run
//      down a fixed ladder of cheaper configurations: as prepared -> spill
//      -> spill + half the threads -> spill + 1 thread + minimal vectors.
//      The first surviving rung's result is returned with its rung id in
//      QueryResult::degraded_rung; rungs are individually gated by
//      DegradationPolicy and per-rung outcomes are visible via
//      ExplainDegradation(). Non-transient failures stop the descent.
//   3. Tenant-fair brown-out (the scheduler): each Session can be bounded
//      by Session::SetQuota (max in-flight executions and bytes) — a
//      session at its quota WAITS for its own releases instead of starving
//      neighbors. When the admission queue itself fills past a configured
//      pressure threshold (Scheduler::SetBrownout), NEW arrivals from the
//      heaviest session (most admitted bytes in flight) are shed with
//      kRejected while lighter tenants keep queueing — overload degrades
//      the tenant causing it, not the whole process.
//
// Self-tuning model (paper §9.1: the optimizer, not the engineer, should
// pick execution strategies): every data- and machine-dependent execution
// knob — compaction policy/threshold at each registered Tectorwise
// Select/group point, join-build protocol per build, Typer's ROF staged
// probes and their block size, the vector size — can be learned per
// prepared query instead of set statically, by a per-PreparedQuery
// multi-armed bandit (runtime/tuner.h). Opt in per query:
//
//   vcq::runtime::QueryOptions opt;
//   opt.tuning = vcq::runtime::TuningMode::kLearn;   // default: kOff
//   opt.tuner_seed = 42;            // 0 = VCQ_TUNER_SEED env, else fixed
//   vcq::PreparedQuery q = session.Prepare(engine, query, opt);
//   while (!q.TuningConverged()) q.Execute();        // bounded exploration
//   std::cout << q.ExplainTuning();  // arms, visit counts, measured costs
//   q.FreezeTuning();                // pin the learned configuration
//
// Knob lifecycle: knobs are registered at Prepare (one per tunable
// decision the query's plan actually contains), each with a discrete arm
// set whose default arm is exactly the static QueryOptions configuration.
// Every kLearn execution draws one arm per knob (bounded exploration in a
// seed-shuffled order, then UCB1 on measured ns/tuple — per-node spans
// where telemetry exists, the query span otherwise) and feeds the
// measured cost back; failed executions are never charged. kFrozen (or
// FreezeTuning()) resolves every knob to its best learned arm without
// further exploration or state updates; kOff bypasses the tuner entirely
// and behaves exactly like the pre-tuner statics — as does an untrained
// frozen tuner, whose best arm is the default arm.
//
// Determinism: arms change performance, never results — every arm of
// every knob produces byte-identical output (tests/tuner_test.cc sweeps
// them). The exploration arm sequence is a pure function of the resolved
// seed and the number of kLearn executions; measured costs only influence
// post-exploration choices. Set VCQ_TUNER_SEED (or tuner_seed) to replay
// a sequence exactly. bench/ablation_self_tuning.cc measures the learned
// configuration against every static arm across selectivities and scale
// factors.
//
// SQL model (src/sql/): the catalog queries above are hand-built plans,
// but a Session can also compile ad-hoc SQL text —
//
//   vcq::PreparedQuery q = session.PrepareSql(
//       "SELECT o_orderkey, SUM(l_extendedprice) AS v"
//       " FROM lineitem, orders"
//       " WHERE l_orderkey = o_orderkey AND o_orderdate < $cutoff"
//       " GROUP BY o_orderkey ORDER BY v DESC LIMIT 10");
//   q.Set("cutoff", "1995-03-15");
//   std::cout << q.Execute().ToString();
//   std::cout << session.ExplainSql("SELECT ...");  // every stage
//
// The pipeline is lexer → recursive-descent parser → AST → binder (typed
// logical plan against a sql::Catalog derived from the database schema,
// with per-column min/max statistics) → optimizer (constant folding,
// predicate pushdown, greedy smallest-intermediate join ordering) →
// lowering onto the same tectorwise::PlanBuilder DAG the catalog queries
// use — so SQL-prepared queries inherit the whole runtime stack above
// (scheduler, governor, spill, degradation, tuning) unchanged. `$name`
// placeholders become named parameters with NO defaults; every one must
// be bound before Execute. Malformed SQL check-fails at PrepareSql with a
// 1-based line:column diagnostic and never reaches Execute (sql::Compile
// is the recoverable-error variant). Engines: kTectorwise, and kVolcano
// as the single-threaded differential oracle — tests/sql_differential_
// test.cc and the seeded fuzz harness (sql/fuzz.h, examples/sql_fuzz.cpp)
// hold the two to byte-identical results; kTyper cannot run ad-hoc SQL
// (its pipelines are ahead-of-time compiled per catalog query). Try
// examples/sql_shell.cpp for an interactive front end.
//
// Observability model (runtime/trace.h + runtime/metrics.h): two halves,
// one recording path.
//
//   Per-execution TRACES. QueryOptions::trace == TraceLevel::kSpans makes
//   the session allocate a QueryTrace and stamp it into
//   QueryResult::trace on success AND failure. The trace holds spans for
//   every stage of the query's life — SQL parse/bind/optimize/lower (from
//   PrepareSql, prepended to each execution), admission wait, gang
//   dispatch, per-pipeline and per-operator execution, spill I/O,
//   governor trips, retry backoffs and degradation-rung attempts — all on
//   one monotonic clock. kOff (the default) allocates nothing and costs a
//   null check per instrumentation point (tests/trace_test.cc asserts
//   ≤2% on a Q6 microbench, and byte-identical results either way).
//   Render as chrome://tracing JSON (QueryTrace::ToChromeJson, also
//   engine_explorer --trace-json) or as the measured plan tree
//   (PreparedQuery::ExplainAnalyze — per node: rows, batches, self time,
//   ns/tuple, batch density, build/probe split, spill bytes). Traced runs
//   point the tuner's NodeTelemetry at the trace, so the bandit's reward
//   signal, EXPLAIN ANALYZE, and the benches all read the same numbers.
//
//   Process-wide METRICS. A global registry of counters, gauges, and
//   log2-bucketed histograms named vcq.<subsystem>.<what>[_total] —
//   scheduler admission/shed/queue depth, governor live and peak bytes,
//   spill bytes, degradation-ladder rung outcomes, tuner draws, and
//   per-session query latency percentiles (vcq.query.latency_us
//   p50/p95/p99). Snapshot as JSON via Session::MetricsSnapshot() (also
//   sql_shell \metrics) or Prometheus text via metrics::
//   RenderPrometheus() (engine_explorer --metrics prints both). Setting
//   VCQ_SLOW_QUERY_MS=<n> additionally logs one stderr line per query
//   slower than n ms: name, bindings, status, rung, and its top-3 spans.
//
// The query list, engine support, and per-query parameter specifications
// (names, types, spec defaults) live in the vcq::QueryCatalog
// (api/query_catalog.h) — the single registry behind TpchQueries(),
// SsbQueries(), EngineSupports(), and every bench/example query list.
//
// RunQuery below survives as a one-shot convenience wrapper over a
// temporary Session with default bindings. See examples/quickstart.cpp
// for a complete program and examples/pricing_report.cpp for parameter
// binding on a warm session.

namespace vcq {

/// The three execution paradigms (paper Table 6 cells):
/// Typer = push + compilation, Tectorwise = pull + vectorization,
/// Volcano = pull + interpretation (single-threaded; TPC-H only in the
/// catalog, both workloads through PrepareSql — its role is the SQL
/// differential oracle).
enum class Engine { kTyper, kTectorwise, kVolcano };

/// The studied workload (paper §3.3 and §4.4).
enum class Query {
  kQ1,
  kQ6,
  kQ3,
  kQ9,
  kQ18,
  kSsbQ11,
  kSsbQ21,
  kSsbQ31,
  kSsbQ41,
};

/// One-shot compatibility wrapper: prepares `query` on a temporary Session
/// (sharing the process-global worker pool) and executes it once with the
/// catalog's spec-default parameter bindings. The database must come from
/// the matching generator (GenerateTpch for kQ*, GenerateSsb for kSsb*).
runtime::QueryResult RunQuery(const runtime::Database& db, Engine engine,
                              Query query,
                              const runtime::QueryOptions& options = {});

/// EXPLAIN-style dump of the Tectorwise declarative plan for `query`:
/// nodes, steps, consumed columns, parameterized predicates (":name"), and
/// the compaction registrations the plan builder derived from slot usage
/// (see tectorwise/plan.h).
std::string ExplainQuery(const runtime::Database& db, Query query);

const char* EngineName(Engine engine);
const char* QueryName(Query query);
bool IsSsbQuery(Query query);
std::vector<Query> TpchQueries();
std::vector<Query> SsbQueries();

/// True if `engine` implements `query` (Volcano covers TPC-H only).
bool EngineSupports(Engine engine, Query query);

}  // namespace vcq

#endif  // VCQ_API_VCQ_H_
