#ifndef VCQ_API_VCQ_H_
#define VCQ_API_VCQ_H_

#include <string>
#include <vector>

#include "runtime/options.h"
#include "runtime/query_result.h"
#include "runtime/relation.h"

// Public entry point of the VCQ library: one call runs any studied query on
// any engine. Typical use:
//
//   vcq::runtime::Database db = vcq::datagen::GenerateTpch(1.0);
//   vcq::runtime::QueryOptions opt{.threads = 8};
//   auto result = vcq::RunQuery(db, vcq::Engine::kTyper, vcq::Query::kQ1,
//                               opt);
//   std::cout << result.ToString();
//
// See examples/quickstart.cpp for a complete program.

namespace vcq {

/// The three execution paradigms (paper Table 6 cells):
/// Typer = push + compilation, Tectorwise = pull + vectorization,
/// Volcano = pull + interpretation (TPC-H only, single-threaded).
enum class Engine { kTyper, kTectorwise, kVolcano };

/// The studied workload (paper §3.3 and §4.4).
enum class Query {
  kQ1,
  kQ6,
  kQ3,
  kQ9,
  kQ18,
  kSsbQ11,
  kSsbQ21,
  kSsbQ31,
  kSsbQ41,
};

/// Runs `query` on `engine`; the database must come from the matching
/// generator (GenerateTpch for kQ*, GenerateSsb for kSsb*).
runtime::QueryResult RunQuery(const runtime::Database& db, Engine engine,
                              Query query,
                              const runtime::QueryOptions& options = {});

/// EXPLAIN-style dump of the Tectorwise declarative plan for `query`:
/// nodes, steps, consumed columns, and the compaction registrations the
/// plan builder derived from slot usage (see tectorwise/plan.h).
std::string ExplainQuery(const runtime::Database& db, Query query);

const char* EngineName(Engine engine);
const char* QueryName(Query query);
bool IsSsbQuery(Query query);
std::vector<Query> TpchQueries();
std::vector<Query> SsbQueries();

/// True if `engine` implements `query` (Volcano covers TPC-H only).
bool EngineSupports(Engine engine, Query query);

}  // namespace vcq

#endif  // VCQ_API_VCQ_H_
