#ifndef VCQ_API_QUERY_CATALOG_H_
#define VCQ_API_QUERY_CATALOG_H_

#include <string>
#include <string_view>
#include <vector>

#include "api/vcq.h"
#include "runtime/params.h"

// The single registry of the studied workload: one QueryInfo per query
// holding its display name, workload, engine support, and parameter
// specification (names, types, and the paper/spec default bindings).
// TpchQueries()/SsbQueries()/EngineSupports()/QueryName() and every bench,
// example, and test query list derive from this table — hand-rolled
// duplicates of it are exactly what caused the engine_explorer crash PR 3
// fixed, so don't reintroduce them.

namespace vcq {

namespace runtime {
class Database;
}  // namespace runtime

enum class Workload { kTpch, kSsb };

/// One declared parameter of a query: the name the engines resolve at
/// execution time, its type, and the spec-constant default that reproduces
/// the paper's workload byte-identically.
struct ParamSpec {
  std::string name;
  runtime::ParamType type;
  /// Default for kString (the value) and kDate (ISO "YYYY-MM-DD").
  std::string default_string;
  /// Default for kInt — fixed-point columns keep their schema scale (a
  /// discount of 0.05 is 5 at scale 2), matching the engines' arithmetic.
  int64_t default_int = 0;
  std::string description;
};

struct QueryInfo {
  Query query;
  std::string name;
  Workload workload;
  /// Engines implementing the query; Volcano covers TPC-H only in the
  /// catalog (SQL-prepared queries lower onto it for both workloads) and
  /// resolves the same named parameters as the other engines.
  bool volcano = false;
  std::vector<ParamSpec> params;
  std::string description;
};

/// All studied queries in workload order (TPC-H subset, then SSB).
const std::vector<QueryInfo>& QueryCatalog();

/// Catalog row for `query`.
const QueryInfo& CatalogEntry(Query query);

/// Lookup by display name ("Q1", "SSB-Q4.1"); nullptr when unknown.
const QueryInfo* FindQuery(std::string_view name);

/// The spec-default bindings for every declared parameter of `query` —
/// executing with these reproduces the unparameterized workload
/// byte-identically.
runtime::QueryParams DefaultParams(Query query);

/// Queries of one workload, in catalog order.
std::vector<Query> QueriesFor(Workload workload);

/// Conservative estimate of the query's hash-table build footprint against
/// `db`, in bytes: every build-side relation's tuple count (selectivity
/// ignored — overestimating is the safe direction for admission) times a
/// nominal per-entry cost covering the materialized entry, the directory
/// word, and the partitioned build's relink arena. Session executions pass
/// this to Scheduler::Admit so memory-aware admission queues or rejects a
/// query whose build would overcommit the scheduler's memory budget
/// instead of letting the ledger trip it mid-build.
size_t EstimatedBuildBytes(const runtime::Database& db, Query query);

/// Total input tuples the query scans against `db` (every referenced
/// relation's tuple count) — the normalization constant for per-query
/// cost reporting (the tuner's ns/tuple, the benches' throughput rows).
size_t ScannedTuples(const runtime::Database& db, Query query);

}  // namespace vcq

#endif  // VCQ_API_QUERY_CATALOG_H_
