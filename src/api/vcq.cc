#include "api/vcq.h"

#include "common/check.h"
#include "tectorwise/plan.h"
#include "tectorwise/queries.h"
#include "typer/queries.h"
#include "volcano/queries.h"

namespace vcq {

using runtime::Database;
using runtime::QueryOptions;
using runtime::QueryResult;

QueryResult RunQuery(const Database& db, Engine engine, Query query,
                     const QueryOptions& options) {
  VCQ_CHECK_MSG(EngineSupports(engine, query),
                "engine does not implement this query");
  switch (engine) {
    case Engine::kTyper:
      switch (query) {
        case Query::kQ1: return typer::RunQ1(db, options);
        case Query::kQ6: return typer::RunQ6(db, options);
        case Query::kQ3: return typer::RunQ3(db, options);
        case Query::kQ9: return typer::RunQ9(db, options);
        case Query::kQ18: return typer::RunQ18(db, options);
        case Query::kSsbQ11: return typer::RunSsbQ11(db, options);
        case Query::kSsbQ21: return typer::RunSsbQ21(db, options);
        case Query::kSsbQ31: return typer::RunSsbQ31(db, options);
        case Query::kSsbQ41: return typer::RunSsbQ41(db, options);
      }
      break;
    case Engine::kTectorwise:
      switch (query) {
        case Query::kQ1: return tectorwise::RunQ1(db, options);
        case Query::kQ6: return tectorwise::RunQ6(db, options);
        case Query::kQ3: return tectorwise::RunQ3(db, options);
        case Query::kQ9: return tectorwise::RunQ9(db, options);
        case Query::kQ18: return tectorwise::RunQ18(db, options);
        case Query::kSsbQ11: return tectorwise::RunSsbQ11(db, options);
        case Query::kSsbQ21: return tectorwise::RunSsbQ21(db, options);
        case Query::kSsbQ31: return tectorwise::RunSsbQ31(db, options);
        case Query::kSsbQ41: return tectorwise::RunSsbQ41(db, options);
      }
      break;
    case Engine::kVolcano:
      switch (query) {
        case Query::kQ1: return volcano::RunQ1(db, options);
        case Query::kQ6: return volcano::RunQ6(db, options);
        case Query::kQ3: return volcano::RunQ3(db, options);
        case Query::kQ9: return volcano::RunQ9(db, options);
        case Query::kQ18: return volcano::RunQ18(db, options);
        default: break;
      }
      break;
  }
  VCQ_CHECK_MSG(false, "unreachable");
  return {};
}

std::string ExplainQuery(const Database& db, Query query) {
  return tectorwise::PlanFor(db, QueryName(query)).ToString();
}

const char* EngineName(Engine engine) {
  switch (engine) {
    case Engine::kTyper: return "Typer";
    case Engine::kTectorwise: return "Tectorwise";
    case Engine::kVolcano: return "Volcano";
  }
  return "?";
}

const char* QueryName(Query query) {
  switch (query) {
    case Query::kQ1: return "Q1";
    case Query::kQ6: return "Q6";
    case Query::kQ3: return "Q3";
    case Query::kQ9: return "Q9";
    case Query::kQ18: return "Q18";
    case Query::kSsbQ11: return "SSB-Q1.1";
    case Query::kSsbQ21: return "SSB-Q2.1";
    case Query::kSsbQ31: return "SSB-Q3.1";
    case Query::kSsbQ41: return "SSB-Q4.1";
  }
  return "?";
}

bool IsSsbQuery(Query query) {
  switch (query) {
    case Query::kSsbQ11:
    case Query::kSsbQ21:
    case Query::kSsbQ31:
    case Query::kSsbQ41: return true;
    default: return false;
  }
}

std::vector<Query> TpchQueries() {
  return {Query::kQ1, Query::kQ6, Query::kQ3, Query::kQ9, Query::kQ18};
}

std::vector<Query> SsbQueries() {
  return {Query::kSsbQ11, Query::kSsbQ21, Query::kSsbQ31, Query::kSsbQ41};
}

bool EngineSupports(Engine engine, Query query) {
  if (engine == Engine::kVolcano) return !IsSsbQuery(query);
  return true;
}

}  // namespace vcq
