#include "api/vcq.h"

#include "api/query_catalog.h"
#include "api/session.h"
#include "common/check.h"
#include "tectorwise/plan.h"
#include "tectorwise/queries.h"

namespace vcq {

using runtime::Database;
using runtime::QueryOptions;
using runtime::QueryResult;

QueryResult RunQuery(const Database& db, Engine engine, Query query,
                     const QueryOptions& options) {
  // A Session over the process-global pool is cheap to stand up: prepare
  // does exactly the plan building the old per-call entry points did.
  return Session(db).Prepare(engine, query, options).Execute();
}

std::string ExplainQuery(const Database& db, Query query) {
  return tectorwise::PlanFor(db, QueryName(query)).ToString();
}

const char* EngineName(Engine engine) {
  switch (engine) {
    case Engine::kTyper: return "Typer";
    case Engine::kTectorwise: return "Tectorwise";
    case Engine::kVolcano: return "Volcano";
  }
  return "?";
}

const char* QueryName(Query query) { return CatalogEntry(query).name.c_str(); }

bool IsSsbQuery(Query query) {
  return CatalogEntry(query).workload == Workload::kSsb;
}

std::vector<Query> TpchQueries() { return QueriesFor(Workload::kTpch); }

std::vector<Query> SsbQueries() { return QueriesFor(Workload::kSsb); }

bool EngineSupports(Engine engine, Query query) {
  if (engine == Engine::kVolcano) return CatalogEntry(query).volcano;
  return true;
}

}  // namespace vcq
