#include "api/session.h"

#include <condition_variable>
#include <mutex>
#include <optional>
#include <utility>

#include "common/check.h"
#include "runtime/worker_pool.h"
#include "tectorwise/queries.h"
#include "typer/queries.h"
#include "volcano/queries.h"

namespace vcq {

using runtime::Database;
using runtime::QueryOptions;
using runtime::QueryParams;
using runtime::QueryResult;

namespace {

using TyperFn = QueryResult (*)(const Database&, const QueryOptions&,
                                const QueryParams&);
using VolcanoFn = QueryResult (*)(const Database&, const QueryOptions&);

TyperFn TyperRunner(Query query) {
  switch (query) {
    case Query::kQ1: return &typer::RunQ1;
    case Query::kQ6: return &typer::RunQ6;
    case Query::kQ3: return &typer::RunQ3;
    case Query::kQ9: return &typer::RunQ9;
    case Query::kQ18: return &typer::RunQ18;
    case Query::kSsbQ11: return &typer::RunSsbQ11;
    case Query::kSsbQ21: return &typer::RunSsbQ21;
    case Query::kSsbQ31: return &typer::RunSsbQ31;
    case Query::kSsbQ41: return &typer::RunSsbQ41;
  }
  VCQ_CHECK_MSG(false, "unreachable");
  return nullptr;
}

VolcanoFn VolcanoRunner(Query query) {
  switch (query) {
    case Query::kQ1: return &volcano::RunQ1;
    case Query::kQ6: return &volcano::RunQ6;
    case Query::kQ3: return &volcano::RunQ3;
    case Query::kQ9: return &volcano::RunQ9;
    case Query::kQ18: return &volcano::RunQ18;
    default: break;
  }
  VCQ_CHECK_MSG(false, "Volcano does not implement this query");
  return nullptr;
}

const ParamSpec* FindSpec(const QueryInfo& info, std::string_view name) {
  for (const ParamSpec& spec : info.params) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

}  // namespace

// ---------------------------------------------------------------------------
// PreparedQuery
// ---------------------------------------------------------------------------

struct PreparedQuery::Impl {
  const Database* db;
  Engine engine;
  Query query;
  QueryOptions opt;
  const QueryInfo* info;
  /// Tectorwise only: the plan built at prepare time; per-execution state
  /// is created by each Run, so one plan serves concurrent executions.
  std::optional<tectorwise::Prepared> tw;
  /// Typer only: the (ahead-of-time compiled) parameterized pipeline.
  TyperFn typer = nullptr;
  /// Volcano only.
  VolcanoFn volcano = nullptr;

  mutable std::mutex params_mu;
  QueryParams bound;  // guarded by params_mu

  QueryResult ExecuteWith(const QueryParams& params) const {
    switch (engine) {
      case Engine::kTyper: return typer(*db, opt, params);
      case Engine::kTectorwise: return tw->Run(opt, params);
      case Engine::kVolcano:
        // The interpreter predates parameterization and always evaluates
        // the spec constants; reject bindings it would silently ignore.
        VCQ_CHECK_MSG(params == DefaultParams(query),
                      "Volcano supports only the default parameter bindings");
        return volcano(*db, opt);
    }
    VCQ_CHECK_MSG(false, "unreachable");
    return {};
  }
};

PreparedQuery& PreparedQuery::Set(std::string_view name, int64_t value) {
  const ParamSpec* spec = FindSpec(*impl_->info, name);
  VCQ_CHECK_MSG(spec != nullptr,
                "unknown parameter for this query (see the QueryCatalog "
                "entry's ParamSpecs)");
  VCQ_CHECK_MSG(spec->type == runtime::ParamType::kInt,
                "parameter is not an integer; bind strings and ISO dates "
                "with the string overload");
  std::lock_guard<std::mutex> lock(impl_->params_mu);
  impl_->bound.SetInt(name, value);
  return *this;
}

PreparedQuery& PreparedQuery::Set(std::string_view name,
                                  std::string_view value) {
  const ParamSpec* spec = FindSpec(*impl_->info, name);
  VCQ_CHECK_MSG(spec != nullptr,
                "unknown parameter for this query (see the QueryCatalog "
                "entry's ParamSpecs)");
  VCQ_CHECK_MSG(spec->type != runtime::ParamType::kInt,
                "parameter is an integer; bind it with the int64 overload");
  std::lock_guard<std::mutex> lock(impl_->params_mu);
  if (spec->type == runtime::ParamType::kDate) {
    impl_->bound.SetDate(name, value);
  } else {
    impl_->bound.SetString(name, value);
  }
  return *this;
}

PreparedQuery& PreparedQuery::ResetParams() {
  QueryParams defaults = DefaultParams(impl_->query);
  std::lock_guard<std::mutex> lock(impl_->params_mu);
  impl_->bound = std::move(defaults);
  return *this;
}

QueryParams PreparedQuery::params() const {
  std::lock_guard<std::mutex> lock(impl_->params_mu);
  return impl_->bound;
}

QueryResult PreparedQuery::Execute() const {
  return impl_->ExecuteWith(params());
}

QueryResult PreparedQuery::Execute(const QueryParams& params) const {
  // Same contract as Set(): a binding this query never declared is a bug
  // at the caller, not something to silently run without.
  for (const std::string& name : params.Names()) {
    VCQ_CHECK_MSG(FindSpec(*impl_->info, name) != nullptr,
                  "unknown parameter for this query (see the QueryCatalog "
                  "entry's ParamSpecs)");
  }
  // Layer the explicit bindings over the defaults so partial binding works
  // and every parameter the engines read resolves.
  runtime::QueryParams merged = DefaultParams(impl_->query);
  for (const ParamSpec& spec : impl_->info->params) {
    if (!params.Has(spec.name)) continue;
    switch (spec.type) {
      case runtime::ParamType::kInt:
        merged.SetInt(spec.name, params.Int(spec.name));
        break;
      case runtime::ParamType::kDate:
        merged.SetDateDays(spec.name, params.Date(spec.name));
        break;
      case runtime::ParamType::kString:
        merged.SetString(spec.name, params.Str(spec.name));
        break;
    }
  }
  return impl_->ExecuteWith(merged);
}

Engine PreparedQuery::engine() const { return impl_->engine; }
Query PreparedQuery::query() const { return impl_->query; }
const QueryInfo& PreparedQuery::info() const { return *impl_->info; }
const QueryOptions& PreparedQuery::options() const { return impl_->opt; }

// ---------------------------------------------------------------------------
// ExecutionHandle
// ---------------------------------------------------------------------------

struct ExecutionHandle::State {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  bool taken = false;  // the result was surrendered to some handle copy
  QueryResult result;
};

QueryResult ExecutionHandle::Wait() {
  VCQ_CHECK_MSG(state_ != nullptr, "ExecutionHandle already waited on");
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->done; });
  // The taken flag lives in the shared State so a second Wait through a
  // *copy* of the handle fails loudly instead of returning the moved-from
  // (empty) result.
  VCQ_CHECK_MSG(!state_->taken, "ExecutionHandle already waited on");
  state_->taken = true;
  QueryResult result = std::move(state_->result);
  lock.unlock();
  state_.reset();
  return result;
}

bool ExecutionHandle::Done() const {
  VCQ_CHECK_MSG(state_ != nullptr, "ExecutionHandle already waited on");
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

ExecutionHandle PreparedQuery::ExecuteAsync() const {
  ExecutionHandle handle;
  handle.state_ = std::make_shared<ExecutionHandle::State>();
  // Snapshot the bindings now: the async execution reflects the handle's
  // state at submit time, not at whatever point the pool schedules it.
  QueryParams snapshot = params();
  runtime::PoolFor(impl_->opt)
      .Submit([impl = impl_, state = handle.state_,
               snapshot = std::move(snapshot)] {
        QueryResult result = impl->ExecuteWith(snapshot);
        {
          std::lock_guard<std::mutex> lock(state->mu);
          state->result = std::move(result);
          state->done = true;
        }
        state->cv.notify_all();
      });
  return handle;
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Session::Session(const Database& db)
    : db_(&db), pool_(&runtime::WorkerPool::Global()) {}

Session::Session(const Database& db, runtime::WorkerPool& pool)
    : db_(&db), pool_(&pool) {}

PreparedQuery Session::Prepare(Engine engine, Query query,
                               const QueryOptions& options) const {
  VCQ_CHECK_MSG(EngineSupports(engine, query),
                "engine does not implement this query");
  auto impl = std::make_shared<PreparedQuery::Impl>();
  impl->db = db_;
  impl->engine = engine;
  impl->query = query;
  impl->opt = options;
  if (impl->opt.pool == nullptr) impl->opt.pool = pool_;
  impl->info = &CatalogEntry(query);
  impl->bound = DefaultParams(query);
  switch (engine) {
    case Engine::kTyper: impl->typer = TyperRunner(query); break;
    case Engine::kTectorwise:
      impl->tw.emplace(tectorwise::Prepare(*db_, impl->info->name, impl->opt));
      break;
    case Engine::kVolcano: impl->volcano = VolcanoRunner(query); break;
  }
  PreparedQuery prepared;
  prepared.impl_ = std::move(impl);
  return prepared;
}

}  // namespace vcq
