#include "api/session.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "common/check.h"
#include "runtime/fault_injector.h"
#include "runtime/hashmap.h"
#include "runtime/metrics.h"
#include "runtime/resource_governor.h"
#include "runtime/scheduler.h"
#include "runtime/spill.h"
#include "runtime/trace.h"
#include "runtime/tuner.h"
#include "runtime/worker_pool.h"
#include "sql/catalog.h"
#include "sql/logical.h"
#include "sql/optimizer.h"
#include "sql/sql.h"
#include "tectorwise/plan.h"
#include "tectorwise/queries.h"
#include "typer/queries.h"
#include "volcano/queries.h"

namespace vcq {

using runtime::CancelToken;
using runtime::Database;
using runtime::ExecStatus;
using runtime::QueryOptions;
using runtime::QueryParams;
using runtime::QueryResult;
using runtime::Scheduler;

namespace {

using TyperFn = QueryResult (*)(const Database&, const QueryOptions&,
                                const QueryParams&,
                                const typer::ColumnCache&);
/// A std::function, not a raw pointer: catalog queries bind the interpreter
/// entry points below, SQL queries bind a closure over their compiled plan.
using VolcanoFn = std::function<QueryResult(
    const Database&, const QueryOptions&, const QueryParams&)>;

TyperFn TyperRunner(Query query) {
  switch (query) {
    case Query::kQ1: return &typer::RunQ1;
    case Query::kQ6: return &typer::RunQ6;
    case Query::kQ3: return &typer::RunQ3;
    case Query::kQ9: return &typer::RunQ9;
    case Query::kQ18: return &typer::RunQ18;
    case Query::kSsbQ11: return &typer::RunSsbQ11;
    case Query::kSsbQ21: return &typer::RunSsbQ21;
    case Query::kSsbQ31: return &typer::RunSsbQ31;
    case Query::kSsbQ41: return &typer::RunSsbQ41;
  }
  VCQ_CHECK_MSG(false, "unreachable");
  return nullptr;
}

VolcanoFn VolcanoRunner(Query query) {
  switch (query) {
    case Query::kQ1: return &volcano::RunQ1;
    case Query::kQ6: return &volcano::RunQ6;
    case Query::kQ3: return &volcano::RunQ3;
    case Query::kQ9: return &volcano::RunQ9;
    case Query::kQ18: return &volcano::RunQ18;
    default: break;
  }
  VCQ_CHECK_MSG(false, "Volcano does not implement this query");
  return nullptr;
}

const ParamSpec* FindSpec(const QueryInfo& info, std::string_view name) {
  for (const ParamSpec& spec : info.params) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

using runtime::KnobChoices;
using runtime::KnobKind;
using runtime::kQueryKnob;
using runtime::TuningMode;

/// Encodes the static QueryOptions compaction config as a tuner arm value
/// (see runtime/tuner.h: 0 = never, 1 = always, k >= 2 = adaptive 1/k).
int64_t CompactionArmOf(const QueryOptions& opt) {
  switch (opt.compaction) {
    case runtime::CompactionMode::kNever: return runtime::kCompactionNever;
    case runtime::CompactionMode::kAlways: return runtime::kCompactionAlways;
    case runtime::CompactionMode::kAdaptive: {
      if (opt.compaction_threshold >= 1.0) return runtime::kCompactionAlways;
      if (opt.compaction_threshold <= 0.0) return runtime::kCompactionNever;
      const int64_t k = std::llround(1.0 / opt.compaction_threshold);
      return std::max<int64_t>(2, k);
    }
  }
  return runtime::kCompactionNever;
}

/// Registers `value` as a member of `arms` and returns its index, appending
/// it when the sweep grid does not already contain it — the default arm
/// must always be selectable (kOff/kFrozen-without-history semantics).
size_t ArmIndexOf(std::vector<int64_t>& arms, int64_t value) {
  for (size_t i = 0; i < arms.size(); ++i) {
    if (arms[i] == value) return i;
  }
  arms.push_back(value);
  return arms.size() - 1;
}

/// Overlays the execution's query-level knob choices onto the options the
/// engines read (Typer's build mode / ROF settings, Tectorwise's vector
/// size). Per-plan-node choices flow separately through
/// QueryOptions::knobs -> ExecContext.
void ApplyQueryKnobs(const KnobChoices& choices, QueryOptions& opt) {
  if (const int64_t v = choices.Get(kQueryKnob, KnobKind::kBuildMode);
      v != KnobChoices::kUnset) {
    opt.build_mode = v == 0 ? runtime::BuildMode::kCas
                            : runtime::BuildMode::kPartitioned;
  }
  if (const int64_t v = choices.Get(kQueryKnob, KnobKind::kRof);
      v != KnobChoices::kUnset) {
    opt.rof = v != 0;
  }
  if (const int64_t v = choices.Get(kQueryKnob, KnobKind::kRofBlock);
      v != KnobChoices::kUnset) {
    opt.rof_block = static_cast<size_t>(v);
  }
  if (const int64_t v = choices.Get(kQueryKnob, KnobKind::kVectorSize);
      v != KnobChoices::kUnset) {
    opt.vector_size = static_cast<size_t>(v);
  }
}

/// Registers the Tectorwise knob set — the global vector size plus one
/// compaction/build-mode/ROF knob per eligible plan node — with the
/// prepared options as the default arms. Shared by Prepare and PrepareSql:
/// a SQL-compiled plan exposes exactly the same tunable decisions as a
/// catalog one.
void RegisterTectorwiseKnobs(runtime::Tuner& tuner,
                             const tectorwise::Plan& plan,
                             const QueryOptions& opt) {
  std::vector<int64_t> sizes{256, 512, 1024, 2048};
  const size_t size_def =
      ArmIndexOf(sizes, static_cast<int64_t>(opt.vector_size));
  tuner.RegisterKnob("tw.vector_size", kQueryKnob, KnobKind::kVectorSize,
                     std::move(sizes), size_def);
  const auto infos = plan.Describe();
  for (uint32_t i = 0; i < infos.size(); ++i) {
    using tectorwise::NodeKind;
    switch (infos[i].kind) {
      case NodeKind::kSelect:
      case NodeKind::kHashGroup: {
        // Compaction arm encoding: never / always / adaptive(1/k).
        std::vector<int64_t> arms{0, 1, 16, 64, 256};
        const size_t def = ArmIndexOf(arms, CompactionArmOf(opt));
        const char* at = infos[i].kind == NodeKind::kSelect ? "tw.select#"
                                                            : "tw.group#";
        tuner.RegisterKnob(at + std::to_string(i) + ".compaction", i,
                           KnobKind::kCompaction, std::move(arms), def);
        break;
      }
      case NodeKind::kHashJoin:
        tuner.RegisterKnob("tw.join#" + std::to_string(i) + ".build_mode", i,
                           KnobKind::kBuildMode, {0, 1},
                           opt.build_mode == runtime::BuildMode::kCas ? 0
                                                                      : 1);
        tuner.RegisterKnob("tw.join#" + std::to_string(i) + ".rof", i,
                           KnobKind::kRof, {0, 1}, opt.rof ? 1 : 0);
        break;
      default:
        break;
    }
  }
}

/// Synthesizes the QueryInfo row of a SQL-compiled query: name "SQL", the
/// workload inferred from the schema, one ParamSpec per $param declared in
/// the text. There are no spec defaults — SQL parameters must be bound.
QueryInfo SqlQueryInfo(const sql::CompiledQuery& q,
                       const sql::Catalog& catalog) {
  QueryInfo info;
  info.query = Query::kQ1;  // sentinel; PreparedQuery::query() rejects SQL
  info.name = "SQL";
  info.workload = catalog.Find("lineorder") != nullptr ? Workload::kSsb
                                                       : Workload::kTpch;
  info.volcano = true;
  info.description = q.text();
  for (const sql::ParamDecl& p : q.params()) {
    ParamSpec spec;
    spec.name = p.name;
    spec.type = p.type;
    spec.description = "declared as $" + p.name + " in the SQL text";
    info.params.push_back(std::move(spec));
  }
  return info;
}

/// Per-execution outcome metrics, recorded on every ExecuteWith exit path
/// (success and failure alike — the latency histogram is only honest if
/// rejections and budget trips land in it too).
void RecordQueryMetrics(const QueryResult& result) {
  static metrics::Counter& queries =
      metrics::Registry::Global().GetCounter("vcq.session.queries_total");
  static metrics::Counter& failures =
      metrics::Registry::Global().GetCounter("vcq.session.failures_total");
  static metrics::Histogram& latency =
      metrics::Registry::Global().GetHistogram("vcq.query.latency_us");
  queries.Add();
  if (!result.ok()) failures.Add();
  latency.Observe(result.wall_ns / 1000);
}

/// Degradation-ladder outcome counters, one runs/ok pair per rung id —
/// the fleet-wide complement of the per-handle ExplainDegradation table.
void CountRung(uint8_t rung, bool ok) {
  const std::string base = "vcq.ladder.rung" + std::to_string(rung);
  metrics::Registry::Global().GetCounter(base + "_runs_total").Add();
  if (ok) metrics::Registry::Global().GetCounter(base + "_ok_total").Add();
}

/// VCQ_SLOW_QUERY_MS: executions at or above this wall-clock threshold log
/// one structured line to stderr. Unset/empty disables (-1); 0 logs every
/// execution (handy when smoke-testing the hook).
int64_t SlowQueryThresholdMs() {
  static const int64_t ms = [] {
    const char* env = std::getenv("VCQ_SLOW_QUERY_MS");
    if (env == nullptr || *env == '\0') return int64_t{-1};
    return static_cast<int64_t>(std::strtoll(env, nullptr, 10));
  }();
  return ms;
}

void MaybeLogSlowQuery(const QueryResult& result, const QueryInfo& info,
                       const QueryParams& params, uint8_t rung,
                       const runtime::QueryTrace* trace) {
  const int64_t threshold = SlowQueryThresholdMs();
  if (threshold < 0) return;
  const uint64_t wall_ms = result.wall_ns / 1'000'000;
  if (wall_ms < static_cast<uint64_t>(threshold)) return;
  std::string line = "[vcq] slow query name=" + info.name;
  line += " wall_ms=" + std::to_string(wall_ms);
  line += " status=";
  line += runtime::StatusName(result.status);
  line += " rung=" + std::to_string(rung);
  for (const ParamSpec& spec : info.params) {
    if (!params.Has(spec.name)) continue;
    line += " $" + spec.name + "=";
    switch (spec.type) {
      case runtime::ParamType::kInt:
        line += std::to_string(params.Int(spec.name));
        break;
      case runtime::ParamType::kDate:
        line += std::to_string(params.Date(spec.name));
        break;
      case runtime::ParamType::kString:
        line += "\"" + std::string(params.Str(spec.name)) + "\"";
        break;
    }
  }
  if (trace != nullptr) {
    // The three widest spans point at where the time went without a full
    // trace export.
    std::vector<runtime::TraceSpan> spans = trace->Spans();
    std::stable_sort(spans.begin(), spans.end(),
                     [](const runtime::TraceSpan& a,
                        const runtime::TraceSpan& b) {
                       return a.duration_ns() > b.duration_ns();
                     });
    const size_t top = std::min<size_t>(3, spans.size());
    for (size_t i = 0; i < top; ++i) {
      line += " span=" + spans[i].name + ":" +
              std::to_string(spans[i].duration_ns() / 1'000'000) + "ms";
    }
  }
  std::fprintf(stderr, "%s\n", line.c_str());
}

/// SQL analogue of EstimatedBuildBytes (api/query_catalog.h): every join's
/// build-side input tuples at the same nominal 64 B/tuple — selectivity
/// ignored, overestimating being the safe direction for admission.
size_t SqlEstimatedBuildBytes(const sql::PhysicalPlan& plan) {
  constexpr size_t kBytesPerBuildTuple = 64;
  const std::function<size_t(const sql::JoinTree&)> leaf_tuples =
      [&](const sql::JoinTree& t) -> size_t {
    if (t.IsLeaf()) {
      return plan.query.Table(static_cast<uint32_t>(t.table)).tuple_count;
    }
    return leaf_tuples(*t.build) + leaf_tuples(*t.probe);
  };
  size_t bytes = 0;
  const std::function<void(const sql::JoinTree&)> walk =
      [&](const sql::JoinTree& t) {
        if (t.IsLeaf()) return;
        bytes += leaf_tuples(*t.build) * kBytesPerBuildTuple;
        walk(*t.build);
        walk(*t.probe);
      };
  walk(*plan.root);
  return bytes;
}

}  // namespace

// ---------------------------------------------------------------------------
// Plan parameter cross-check
// ---------------------------------------------------------------------------

void ValidatePlanParams(const tectorwise::Plan& plan, const QueryInfo& info) {
  for (const tectorwise::ParamUse& use : plan.param_uses()) {
    const ParamSpec* spec = FindSpec(info, use.name);
    VCQ_CHECK_MSG(spec != nullptr,
                  "plan reads a parameter the catalog does not declare for "
                  "this query — the plan and its QueryCatalog entry drifted");
    const bool spec_is_string = spec->type == runtime::ParamType::kString;
    VCQ_CHECK_MSG(use.string_access == spec_is_string,
                  "plan parameter access disagrees with the catalog's "
                  "declared ParamType (numeric reads cover kInt/kDate, "
                  "string reads cover kString) — fix the plan step's type "
                  "or the catalog entry");
  }
}

// ---------------------------------------------------------------------------
// PreparedQuery
// ---------------------------------------------------------------------------

struct PreparedQuery::Impl {
  const Database* db;
  Engine engine;
  Query query;
  QueryOptions opt;
  const QueryInfo* info;
  /// SQL-prepared handles only: the compiled query (kept alive for the
  /// Volcano closure and introspection) and the synthesized catalog row
  /// `info` points at.
  bool is_sql = false;
  std::shared_ptr<const sql::CompiledQuery> sql;
  QueryInfo owned_info;
  /// What ResetParams restores and Execute(params) layers under: the
  /// catalog's spec defaults, or empty for SQL (no declared defaults).
  QueryParams defaults;
  /// Tectorwise only: the plan built at prepare time; per-execution state
  /// is created by each Run, so one plan serves concurrent executions.
  std::optional<tectorwise::Prepared> tw;
  /// Typer only: the (ahead-of-time compiled) parameterized pipeline plus
  /// the per-PreparedQuery resolved-column cache (populated on the first
  /// Execute; later ones skip the per-run accessor derivation).
  TyperFn typer = nullptr;
  typer::ColumnCache typer_cache;
  /// Volcano only.
  VolcanoFn volcano = nullptr;

  mutable std::mutex params_mu;
  QueryParams bound;  // guarded by params_mu

  /// Catalog-derived build-side footprint (EstimatedBuildBytes, stamped at
  /// Prepare): what memory-aware admission charges against the scheduler's
  /// in-flight memory budget until the first successful execution replaces
  /// it with the measured peak below.
  size_t est_bytes = 0;
  /// Peak ledger bytes across this handle's successful executions (the
  /// QueryLedger tracks it per run; max-merged here). Once nonzero, it is
  /// what admission charges — the measured footprint replaces the static
  /// 64 B/build-tuple guess on prepared-query re-execution.
  mutable std::atomic<size_t> measured_peak{0};
  /// Scan-input tuple count (ScannedTuples, stamped at Prepare): the
  /// tuner's cost normalization constant.
  size_t work_tuples = 1;
  /// The per-PreparedQuery bandit over execution knobs; non-null iff the
  /// query was prepared with tuning != kOff on a tunable engine. Shared by
  /// concurrent executions (internally synchronized).
  std::unique_ptr<runtime::Tuner> tuner;

  /// Degradation-ladder telemetry (ExplainDegradation): per rung, how many
  /// ExecuteWithDegradation attempts ran there and how many succeeded.
  static constexpr size_t kRungs = 4;
  mutable std::array<std::atomic<uint64_t>, kRungs> rung_runs{};
  mutable std::array<std::atomic<uint64_t>, kRungs> rung_ok{};

  /// SQL-prepared handles only: the prepare-time compile-stage spans
  /// (sql.parse/bind/optimize/lower), prepended to every traced execution
  /// of this handle so EXPLAIN ANALYZE and Chrome exports show compile
  /// cost in context.
  std::shared_ptr<const runtime::QueryTrace> prepare_trace;

  /// Per-execution overrides of the prepared options, used by the
  /// degradation ladder (0 = keep the prepared value). They win over the
  /// tuner's arms: a degraded retry exists to shrink the footprint, not to
  /// explore. `trace` (when set) forces tracing onto this execution and
  /// shares one span buffer across a retry/degradation ladder; `rung` is
  /// the ladder rung id the run executes at (slow-query log context).
  struct RunTweaks {
    bool spill = false;
    size_t threads = 0;
    size_t vector_size = 0;
    std::shared_ptr<runtime::QueryTrace> trace;
    uint8_t rung = 0;
  };

  /// A fresh execution trace, seeded with the handle's prepare-time SQL
  /// stage spans when there are any.
  std::shared_ptr<runtime::QueryTrace> NewTrace() const {
    auto trace = std::make_shared<runtime::QueryTrace>();
    if (prepare_trace != nullptr) trace->Append(*prepare_trace);
    return trace;
  }

  /// The one exit path of ExecuteWith: stamps wall time and the trace
  /// handle (success AND failure), records the outcome metrics, and logs
  /// the slow-query line when the VCQ_SLOW_QUERY_MS hook is armed.
  QueryResult Finish(QueryResult result,
                     std::shared_ptr<runtime::QueryTrace> trace,
                     uint64_t wall_start, const QueryParams& params,
                     uint8_t rung) const {
    result.wall_ns = runtime::QueryTrace::NowNs() - wall_start;
    RecordQueryMetrics(result);
    MaybeLogSlowQuery(result, *info, params, rung, trace.get());
    result.trace = std::move(trace);
    return result;
  }

  /// No-tweaks overload (a default argument would need RunTweaks' member
  /// initializers before Impl is complete, which the compiler rejects).
  QueryResult ExecuteWith(const QueryParams& params,
                          const CancelToken* token) const {
    return ExecuteWith(params, token, RunTweaks());
  }

  QueryResult ExecuteWith(const QueryParams& params, const CancelToken* token,
                          const RunTweaks& tweaks) const {
    // Wall clock starts before admission: the latency a caller observes
    // includes the wait for a slot, so wall_ns must too.
    const uint64_t wall_start = runtime::QueryTrace::NowNs();
    // Every execution runs with a token even when the caller asked for no
    // deadline/cancel handle: budget trips and the exception backstop need
    // somewhere to record the failure.
    const CancelToken local;
    if (token == nullptr) token = &local;

    // The execution's span buffer: a ladder wrapper's shared trace wins;
    // otherwise one is allocated iff the handle was prepared with tracing.
    // kOff with no wrapper trace allocates NOTHING — every downstream
    // instrumentation point keys off this pointer staying null.
    std::shared_ptr<runtime::QueryTrace> trace = tweaks.trace;
    if (trace == nullptr && opt.trace != runtime::TraceLevel::kOff)
      trace = NewTrace();

    // Admission control bounds in-flight executions per scheduler — by
    // count and, when a memory budget is set, by estimated build bytes: a
    // query that would overcommit waits its turn (honoring the token's
    // deadline/cancel), one that could never fit is rejected with
    // kResourceExhausted. An overloaded server answers with backpressure
    // instead of queueing unboundedly.
    const size_t peak_seen = measured_peak.load(std::memory_order_relaxed);
    Scheduler::Admission admission = [&] {
      runtime::TraceScope wait(trace.get(), "sched", "admission.wait");
      return runtime::PoolFor(opt).scheduler().Admit(
          token, peak_seen != 0 ? peak_seen : est_bytes, opt.sched_stream);
    }();
    if (!admission.ok()) {
      return Finish(QueryResult::Failed(admission.status()), std::move(trace),
                    wall_start, params, tweaks.rung);
    }

    QueryOptions run_opt = opt;
    run_opt.cancel = token;
    run_opt.trace_sink = trace.get();
    if (tweaks.threads != 0)
      run_opt.threads = std::min(run_opt.threads, tweaks.threads);
    if (tweaks.vector_size != 0) run_opt.vector_size = tweaks.vector_size;
    // The per-execution memory ledger: every pool the engines bind charges
    // it, the governor aggregates across concurrent queries, and a breach
    // soft-trips the token with kResourceExhausted (see
    // runtime/resource_governor.h). Destroyed on every exit path, so the
    // process-wide accounting returns to baseline even after a failure.
    runtime::QueryLedger ledger(run_opt.memory_budget, token);
    ledger.SetTrace(trace.get());
    run_opt.ledger = &ledger;
    // Explicit per-query injector wins; otherwise the process-wide one
    // (VCQ_FAULT env) applies, so the stress harness reaches sessions it
    // never constructed.
    if (run_opt.fault == nullptr)
      run_opt.fault = runtime::FaultInjector::ProcessWide();
    // Spill-enabled runs (prepared with spill, or degraded onto rung 1+)
    // get a per-execution SpillManager and put the ledger in spill mode:
    // a budget overage then reads as live pressure the operators relieve
    // by staging state to disk, instead of a sticky kResourceExhausted
    // trip. Destroyed with this frame, which unlinks every spill file —
    // success or failure, the disk returns to baseline.
    std::optional<runtime::SpillManager> spill_mgr;
    if (tweaks.spill || run_opt.spill) {
      spill_mgr.emplace(run_opt.spill_limit, run_opt.fault, token);
      spill_mgr->SetTrace(trace.get());
      run_opt.spill_manager = &*spill_mgr;
      ledger.EnableSpillMode();
    }
    // Tuned executions draw one arm per knob from the bandit, overlay the
    // query-level arms onto the run options (Typer build mode / ROF,
    // Tectorwise vector size), and hand the per-node arms + telemetry sink
    // to the engines. The draw is inside the try: the tuner's bookkeeping
    // allocates, so it is a named fault point of the managed run.
    KnobChoices choices;
    runtime::NodeTelemetry local_telemetry;
    // The recording-path unification (runtime/trace.h): a traced run
    // points the engines' per-site telemetry at the trace's embedded
    // NodeTelemetry, so the join-build protocol records its build span
    // once and BOTH consumers — the tuner's reward and ExplainAnalyze's
    // build/probe split — read the same numbers. Untraced tuned runs keep
    // a private sink; untraced untuned runs record nowhere, as before.
    runtime::NodeTelemetry* telemetry =
        trace != nullptr ? &trace->node_telemetry() : &local_telemetry;
    if (trace != nullptr) run_opt.telemetry = telemetry;
    const bool tuned =
        tuner != nullptr && run_opt.tuning != TuningMode::kOff;
    uint64_t start_ns = 0;
    QueryResult result;
    try {
      if (tuned) {
        runtime::FaultHit(run_opt.fault, "session.tuner", token);
        tuner->Resolve(run_opt.tuning, &choices);
        ApplyQueryKnobs(choices, run_opt);
        // Degradation overrides beat the tuner's arms (see RunTweaks).
        if (tweaks.vector_size != 0) run_opt.vector_size = tweaks.vector_size;
        run_opt.knobs = &choices;
        run_opt.telemetry = telemetry;
        start_ns = runtime::JoinBuildTelemetry::NowNs();
      }
      switch (engine) {
        case Engine::kTyper:
          result = typer(*db, run_opt, params, typer_cache);
          break;
        case Engine::kTectorwise:
          result = tw->Run(run_opt, params);
          break;
        case Engine::kVolcano:
          result = volcano(*db, run_opt, params);
          break;
      }
    } catch (...) {
      // Serial-phase backstop: parallel-region exceptions are already
      // contained by the scheduler (RunSlot), but an allocation failure in
      // a serial tail — result building, Volcano's materializing operators
      // — unwinds to here. Same translation, same contract: sticky trip,
      // empty result, no process abort.
      runtime::FailCurrentException(token);
    }
    // An interrupted run drained early: its rows are partial garbage, so
    // surface the status on an empty result instead. The spill volume is
    // stamped even on failures — introspection of how far a degraded run
    // got before the plug was pulled.
    const uint64_t spilled =
        spill_mgr.has_value() ? spill_mgr->spilled_bytes() : 0;
    if (token->Interrupted()) {
      QueryResult failed = QueryResult::Failed(token->status());
      failed.spilled_bytes = spilled;
      return Finish(std::move(failed), std::move(trace), wall_start, params,
                    tweaks.rung);
    }
    result.spilled_bytes = spilled;
    // Feedback from a clean run only — an interrupted run's spans and peak
    // are partial and would poison both loops.
    if (tuned && run_opt.tuning == TuningMode::kLearn) {
      tuner->Observe(choices, *telemetry,
                     runtime::JoinBuildTelemetry::NowNs() - start_ns,
                     work_tuples);
    }
    size_t prev = measured_peak.load(std::memory_order_relaxed);
    const size_t peak = ledger.peak();
    while (peak > prev && !measured_peak.compare_exchange_weak(
                              prev, peak, std::memory_order_relaxed)) {
    }
    return Finish(std::move(result), std::move(trace), wall_start, params,
                  tweaks.rung);
  }
};

PreparedQuery& PreparedQuery::Set(std::string_view name, int64_t value) {
  const ParamSpec* spec = FindSpec(*impl_->info, name);
  VCQ_CHECK_MSG(spec != nullptr,
                "unknown parameter for this query (see the QueryCatalog "
                "entry's ParamSpecs)");
  VCQ_CHECK_MSG(spec->type == runtime::ParamType::kInt,
                "parameter is not an integer; bind strings and ISO dates "
                "with the string overload");
  std::lock_guard<std::mutex> lock(impl_->params_mu);
  impl_->bound.SetInt(name, value);
  return *this;
}

PreparedQuery& PreparedQuery::Set(std::string_view name,
                                  std::string_view value) {
  const ParamSpec* spec = FindSpec(*impl_->info, name);
  VCQ_CHECK_MSG(spec != nullptr,
                "unknown parameter for this query (see the QueryCatalog "
                "entry's ParamSpecs)");
  VCQ_CHECK_MSG(spec->type != runtime::ParamType::kInt,
                "parameter is an integer; bind it with the int64 overload");
  std::lock_guard<std::mutex> lock(impl_->params_mu);
  if (spec->type == runtime::ParamType::kDate) {
    impl_->bound.SetDate(name, value);
  } else {
    impl_->bound.SetString(name, value);
  }
  return *this;
}

PreparedQuery& PreparedQuery::ResetParams() {
  std::lock_guard<std::mutex> lock(impl_->params_mu);
  impl_->bound = impl_->defaults;
  return *this;
}

QueryParams PreparedQuery::params() const {
  std::lock_guard<std::mutex> lock(impl_->params_mu);
  return impl_->bound;
}

QueryResult PreparedQuery::Execute() const {
  return impl_->ExecuteWith(params(), nullptr);
}

QueryResult PreparedQuery::Execute(const QueryParams& params) const {
  // Same contract as Set(): a binding this query never declared is a bug
  // at the caller, not something to silently run without.
  for (const std::string& name : params.Names()) {
    VCQ_CHECK_MSG(FindSpec(*impl_->info, name) != nullptr,
                  "unknown parameter for this query (see the QueryCatalog "
                  "entry's ParamSpecs)");
  }
  // Layer the explicit bindings over the defaults so partial binding works
  // and every parameter the engines read resolves (SQL queries have no
  // defaults: the explicit bindings must be complete).
  runtime::QueryParams merged = impl_->defaults;
  for (const ParamSpec& spec : impl_->info->params) {
    if (!params.Has(spec.name)) continue;
    switch (spec.type) {
      case runtime::ParamType::kInt:
        merged.SetInt(spec.name, params.Int(spec.name));
        break;
      case runtime::ParamType::kDate:
        merged.SetDateDays(spec.name, params.Date(spec.name));
        break;
      case runtime::ParamType::kString:
        merged.SetString(spec.name, params.Str(spec.name));
        break;
    }
  }
  return impl_->ExecuteWith(merged, nullptr);
}

QueryResult PreparedQuery::Execute(Deadline deadline) const {
  const CancelToken token(deadline);
  return impl_->ExecuteWith(params(), &token);
}

QueryResult PreparedQuery::Execute(std::chrono::milliseconds timeout) const {
  return Execute(CancelToken::Clock::now() + timeout);
}

QueryResult PreparedQuery::ExecuteWithRetry(const RetryPolicy& policy) const {
  VCQ_CHECK_MSG(policy.max_attempts >= 1, "RetryPolicy needs >= 1 attempt");
  // The overall budget covers attempts AND the sleeps between them: every
  // attempt runs against the same deadline and no sleep may outlive it, so
  // a bounded policy returns within total_timeout (plus one attempt's
  // morsel-poll granularity) no matter how the attempts fail.
  const bool bounded = policy.total_timeout.count() > 0;
  const PreparedQuery::Deadline deadline =
      runtime::CancelToken::Clock::now() + policy.total_timeout;
  std::chrono::milliseconds backoff = policy.initial_backoff;
  uint64_t rng = policy.jitter_seed;
  // One trace across the whole ladder (when the handle traces at all):
  // the attempts' spans and the backoff sleeps between them land in one
  // timeline, so the final result's trace shows the full retry story.
  Impl::RunTweaks tweaks;
  if (impl_->opt.trace != runtime::TraceLevel::kOff)
    tweaks.trace = impl_->NewTrace();
  QueryResult result;
  for (size_t attempt = 1;; ++attempt) {
    // Fresh CancelToken per attempt (local here or inside ExecuteWith), so
    // a previous attempt's sticky kResourceExhausted/kRejected never
    // carries over.
    if (bounded) {
      const CancelToken token(deadline);
      result = impl_->ExecuteWith(params(), &token, tweaks);
    } else {
      result = impl_->ExecuteWith(params(), nullptr, tweaks);
    }
    const bool transient = result.status == ExecStatus::kRejected ||
                           result.status == ExecStatus::kResourceExhausted;
    if (!transient || attempt >= policy.max_attempts) return result;
    // Deterministic jitter (SplitMix64 finalizer over the seeded counter):
    // scale the nominal backoff into [0.5, 1.0) so synchronized retries
    // de-correlate while a fixed seed replays the identical schedule.
    rng += 0x9e3779b97f4a7c15ull;
    uint64_t z = rng;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    const double frac = 0.5 + 0.5 * static_cast<double>(z >> 40) /
                                  static_cast<double>(uint64_t{1} << 24);
    auto delay = std::chrono::milliseconds(
        static_cast<int64_t>(static_cast<double>(backoff.count()) * frac));
    if (bounded) {
      // Clamp the sleep to the remaining budget; an exhausted budget means
      // this transient failure IS the final answer.
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(deadline -
                                     runtime::CancelToken::Clock::now());
      if (remaining.count() <= 0) return result;
      delay = std::min(delay, remaining);
    }
    if (delay.count() > 0) {
      runtime::TraceScope sleep_span(
          tweaks.trace.get(), "session",
          "retry.backoff#" + std::to_string(attempt));
      std::this_thread::sleep_for(delay);
    }
    backoff = std::min(policy.max_backoff, backoff * 2);
  }
}

QueryResult PreparedQuery::ExecuteWithDegradation(
    const DegradationPolicy& policy, Deadline deadline) const {
  // One rung of the ladder: its fixed id (stamped into
  // QueryResult::degraded_rung) and the run overrides it applies.
  struct Rung {
    uint8_t id;
    Impl::RunTweaks tweaks;
  };
  // Build the enabled rung sequence. Rung ids are fixed (0..3) regardless
  // of which rungs the policy enables, so degraded_rung always names the
  // same resource profile. Rung 2 is skipped for single-threaded prepares
  // (halving 1 thread changes nothing — it would burn an attempt).
  const size_t prepared_threads = impl_->opt.threads;
  const bool spill = policy.allow_spill;  // rungs below 1 keep spilling
  std::vector<Rung> ladder;
  ladder.push_back(Rung{0, {}});
  if (policy.allow_spill) ladder.push_back(Rung{1, {.spill = true}});
  if (policy.allow_reduced_threads && prepared_threads > 1) {
    ladder.push_back(
        Rung{2, {.spill = spill, .threads = prepared_threads / 2}});
  }
  if (policy.allow_small_vectors) {
    ladder.push_back(
        Rung{3, {.spill = spill, .threads = 1, .vector_size = 256}});
  }
  const QueryParams bound = params();
  // One trace across the descent (see ExecuteWithRetry): rung attempts
  // show up as "ladder.rung#<id>" brackets around their execution spans.
  std::shared_ptr<runtime::QueryTrace> ladder_trace;
  if (impl_->opt.trace != runtime::TraceLevel::kOff)
    ladder_trace = impl_->NewTrace();
  QueryResult result;
  for (size_t i = 0; i < ladder.size(); ++i) {
    Rung rung = ladder[i];
    rung.tweaks.trace = ladder_trace;
    rung.tweaks.rung = rung.id;
    // Fresh token per attempt (sticky trips must not carry over), same
    // deadline across the whole descent.
    const CancelToken token(deadline);
    {
      runtime::TraceScope attempt(ladder_trace.get(), "session",
                                  "ladder.rung#" + std::to_string(rung.id));
      result = impl_->ExecuteWith(bound, &token, rung.tweaks);
    }
    result.degraded_rung = rung.id;
    impl_->rung_runs[rung.id].fetch_add(1, std::memory_order_relaxed);
    CountRung(rung.id, result.ok());
    if (result.ok()) {
      impl_->rung_ok[rung.id].fetch_add(1, std::memory_order_relaxed);
      return result;
    }
    // Only memory exhaustion descends the ladder; every other failure
    // (cancel, deadline, rejection, internal error) would fail the same
    // way one rung down — or already consumed the caller's budget.
    if (result.status != ExecStatus::kResourceExhausted) return result;
  }
  return result;  // out of rungs: the last (most degraded) failure
}

QueryResult PreparedQuery::ExecuteWithDegradation(
    const DegradationPolicy& policy) const {
  return ExecuteWithDegradation(policy, Deadline::max());
}

std::string PreparedQuery::ExplainDegradation() const {
  static constexpr const char* kRungNames[PreparedQuery::Impl::kRungs] = {
      "as prepared",
      "spill",
      "spill + half threads",
      "spill + 1 thread + small vectors",
  };
  std::string out = "degradation ladder:\n";
  for (size_t r = 0; r < PreparedQuery::Impl::kRungs; ++r) {
    const uint64_t runs =
        impl_->rung_runs[r].load(std::memory_order_relaxed);
    const uint64_t ok = impl_->rung_ok[r].load(std::memory_order_relaxed);
    out += "  rung " + std::to_string(r) + " (" + kRungNames[r] +
           "): runs=" + std::to_string(runs) + " ok=" + std::to_string(ok) +
           "\n";
  }
  return out;
}

namespace {

std::string FmtMs(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns) / 1e6);
  return buf;
}

/// The Typer/Volcano half of EXPLAIN ANALYZE: fused pipelines have no
/// operator DAG, so the measured units are the parallel regions the
/// worker-pool facade spanned ("pipeline#k", tuples = the region's morsel
/// work hint) plus the per-site join-build times the engines recorded into
/// the trace's NodeTelemetry.
std::string FormatPipelineSummary(const runtime::QueryTrace& trace) {
  struct Agg {
    uint64_t busy_ns = 0;
    uint64_t tuples = 0;
    uint32_t workers = 0;
  };
  std::map<uint32_t, Agg> pipes;  // keyed by region ordinal
  for (const runtime::TraceSpan& span : trace.Spans()) {
    if (std::string_view(span.cat) != "pipeline") continue;
    Agg& agg = pipes[span.site];
    agg.busy_ns += span.duration_ns();
    agg.tuples = std::max(agg.tuples, span.tuples);
    ++agg.workers;
  }
  std::string out;
  for (const auto& [region, agg] : pipes) {
    const double per_tuple =
        agg.tuples != 0
            ? static_cast<double>(agg.busy_ns) / static_cast<double>(agg.tuples)
            : 0.0;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "  pipeline#%u  workers=%u rows=%llu busy=%s (%.1f "
                  "ns/tuple)\n",
                  region, agg.workers,
                  static_cast<unsigned long long>(agg.tuples),
                  FmtMs(agg.busy_ns).c_str(), per_tuple);
    out += buf;
  }
  const runtime::NodeTelemetry& telemetry = trace.node_telemetry();
  for (uint32_t site = 0; site < runtime::NodeTelemetry::kMaxSites; ++site) {
    const uint64_t ns = telemetry.SpanNs(site);
    if (ns == 0) continue;
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "  build site#%u  tuples=%llu time=%s\n", site,
                  static_cast<unsigned long long>(telemetry.SpanTuples(site)),
                  FmtMs(ns).c_str());
    out += buf;
  }
  if (out.empty()) out = "  (no pipeline spans recorded)\n";
  return out;
}

}  // namespace

std::string PreparedQuery::ExplainAnalyze() const {
  // One real execution with tracing forced on via the tweaks trace — a
  // handle prepared with TraceLevel::kOff can still be analyzed, and the
  // prepared level still governs ordinary Execute() calls.
  Impl::RunTweaks tweaks;
  tweaks.trace = impl_->NewTrace();
  const CancelToken token;
  const QueryResult result = impl_->ExecuteWith(params(), &token, tweaks);
  const runtime::QueryTrace& trace = *tweaks.trace;

  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "EXPLAIN ANALYZE %s (%s): status=%s wall=%s rows=%zu\n",
                impl_->info->name.c_str(), EngineName(impl_->engine),
                runtime::StatusName(result.status), FmtMs(result.wall_ns).c_str(),
                result.rows.size());
  std::string out = buf;
  if (result.spilled_bytes != 0) {
    out += "  spilled=" + std::to_string(result.spilled_bytes / 1024) + "kB\n";
  }
  switch (impl_->engine) {
    case Engine::kTectorwise:
      out += tectorwise::ExplainAnalyzeTree(impl_->tw->plan(), trace,
                                            impl_->opt.vector_size);
      break;
    case Engine::kTyper:
    case Engine::kVolcano:
      out += FormatPipelineSummary(trace);
      break;
  }
  return out;
}

Engine PreparedQuery::engine() const { return impl_->engine; }
Query PreparedQuery::query() const {
  VCQ_CHECK_MSG(!impl_->is_sql,
                "SQL-prepared queries have no catalog Query id — use "
                "info() / is_sql() to introspect them");
  return impl_->query;
}
bool PreparedQuery::is_sql() const { return impl_->is_sql; }
const QueryInfo& PreparedQuery::info() const { return *impl_->info; }
const QueryOptions& PreparedQuery::options() const { return impl_->opt; }

std::string PreparedQuery::ExplainTuning() const {
  if (impl_->tuner == nullptr) return "tuning: off\n";
  return impl_->tuner->Describe();
}

PreparedQuery& PreparedQuery::FreezeTuning() {
  if (impl_->tuner != nullptr) impl_->tuner->Freeze();
  return *this;
}

bool PreparedQuery::TuningConverged() const {
  return impl_->tuner == nullptr || impl_->tuner->Converged();
}

size_t PreparedQuery::measured_peak_bytes() const {
  return impl_->measured_peak.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// ExecutionHandle
// ---------------------------------------------------------------------------

struct ExecutionHandle::State {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  bool taken = false;  // the result was surrendered to some handle copy
  QueryResult result;
  /// The execution's cancellation token; kept in the shared State so any
  /// handle copy can Cancel() while the coordinator runs.
  std::shared_ptr<CancelToken> token;
};

QueryResult ExecutionHandle::Wait() {
  VCQ_CHECK_MSG(state_ != nullptr, "ExecutionHandle is empty");
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->done; });
  // The taken flag lives in the shared State so a second Wait — through
  // this handle or a copy — fails loudly instead of returning the
  // moved-from (empty) result. state_ itself is deliberately NOT reset:
  // Cancel()/Done() are documented safe from any thread, and clearing the
  // member here would race their concurrent reads of it.
  VCQ_CHECK_MSG(!state_->taken, "ExecutionHandle already waited on");
  state_->taken = true;
  return std::move(state_->result);
}

bool ExecutionHandle::Done() const {
  VCQ_CHECK_MSG(state_ != nullptr, "ExecutionHandle is empty");
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

void ExecutionHandle::Cancel() {
  VCQ_CHECK_MSG(state_ != nullptr, "ExecutionHandle is empty");
  state_->token->Cancel();
}

ExecutionHandle PreparedQuery::StartAsync(
    std::shared_ptr<CancelToken> token) const {
  ExecutionHandle handle;
  handle.state_ = std::make_shared<ExecutionHandle::State>();
  handle.state_->token = std::move(token);
  // Snapshot the bindings now: the async execution reflects the handle's
  // state at submit time, not at whatever point the pool schedules it.
  QueryParams snapshot = params();
  runtime::PoolFor(impl_->opt)
      .Submit([impl = impl_, state = handle.state_,
               snapshot = std::move(snapshot)] {
        QueryResult result = impl->ExecuteWith(snapshot, state->token.get());
        {
          std::lock_guard<std::mutex> lock(state->mu);
          state->result = std::move(result);
          state->done = true;
        }
        state->cv.notify_all();
      });
  return handle;
}

ExecutionHandle PreparedQuery::ExecuteAsync() const {
  return StartAsync(std::make_shared<CancelToken>());
}

ExecutionHandle PreparedQuery::ExecuteAsync(Deadline deadline) const {
  return StartAsync(std::make_shared<CancelToken>(deadline));
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Session::Session(const Database& db)
    : Session(db, runtime::WorkerPool::Global()) {}

Session::Session(const Database& db, runtime::WorkerPool& pool)
    : db_(&db), pool_(&pool) {
  stream_ = pool_->scheduler().CreateStream();
}

Session::~Session() {
  // Prepared queries may outlive the session: their stale stream id then
  // falls back to the scheduler's default stream (see Scheduler). Clear
  // the admission quota too — its entry is keyed by this id and would
  // otherwise outlive the session it throttled.
  pool_->scheduler().SetStreamQuota(stream_, 0, 0);
  pool_->scheduler().DestroyStream(stream_);
}

Session& Session::SetWeight(double weight) {
  pool_->scheduler().SetStreamWeight(stream_, weight);
  return *this;
}

Session& Session::SetQuota(size_t max_inflight, size_t max_bytes) {
  pool_->scheduler().SetStreamQuota(stream_, max_inflight, max_bytes);
  return *this;
}

double Session::weight() const {
  return pool_->scheduler().StreamWeight(stream_);
}

PreparedQuery Session::Prepare(Engine engine, Query query,
                               const QueryOptions& options) const {
  VCQ_CHECK_MSG(EngineSupports(engine, query),
                "engine does not implement this query");
  auto impl = std::make_shared<PreparedQuery::Impl>();
  impl->db = db_;
  impl->engine = engine;
  impl->query = query;
  impl->opt = options;
  if (impl->opt.pool == nullptr) impl->opt.pool = pool_;
  // The session's stream id only names a stream on the session pool's own
  // scheduler; on a caller-supplied foreign pool it could collide with
  // some other session's stream there, so such runs use that scheduler's
  // default stream (a stale caller-supplied id must not leak through
  // either).
  impl->opt.sched_stream = impl->opt.pool == pool_ ? stream_ : 0;
  // Clamp the region width to what the gang set can admit: the scheduler
  // hands out a region's slots all-or-nothing, and the executing thread
  // itself acts as worker 0, so a query is at most capacity + 1 wide
  // (scheduler_threads is an explicit per-query cap below that).
  size_t cap = impl->opt.pool->scheduler().thread_count() + 1;
  if (impl->opt.scheduler_threads > 0)
    cap = std::min(cap, impl->opt.scheduler_threads);
  impl->opt.threads = std::max<size_t>(1, std::min(impl->opt.threads, cap));
  impl->info = &CatalogEntry(query);
  impl->defaults = DefaultParams(query);
  impl->bound = impl->defaults;
  // Stamped once: the footprint depends only on the database and query, and
  // Prepare is the only place with both in hand before the hot path.
  impl->est_bytes = EstimatedBuildBytes(*db_, query);
  switch (engine) {
    case Engine::kTyper: impl->typer = TyperRunner(query); break;
    case Engine::kTectorwise:
      impl->tw.emplace(tectorwise::Prepare(*db_, impl->info->name, impl->opt));
      // Fail query/catalog drift here, not at the first Execute.
      ValidatePlanParams(impl->tw->plan(), *impl->info);
      break;
    case Engine::kVolcano: impl->volcano = VolcanoRunner(query); break;
  }
  // Self-tuning (runtime/tuner.h): every tunable decision of this query
  // becomes a bandit knob, with the prepared options as the default arms —
  // an untrained/frozen tuner reproduces today's static behavior exactly.
  // Volcano has no knobs (it exists as the differential-test reference).
  if (options.tuning != TuningMode::kOff && engine != Engine::kVolcano) {
    impl->work_tuples = std::max<size_t>(1, ScannedTuples(*db_, query));
    auto tuner = std::make_unique<runtime::Tuner>(
        runtime::Tuner::ResolveSeed(options.tuner_seed));
    const QueryOptions& opt = impl->opt;
    if (engine == Engine::kTyper) {
      tuner->RegisterKnob(
          "typer.build_mode", kQueryKnob, KnobKind::kBuildMode, {0, 1},
          opt.build_mode == runtime::BuildMode::kCas ? 0 : 1);
      tuner->RegisterKnob("typer.rof", kQueryKnob, KnobKind::kRof, {0, 1},
                          opt.rof ? 1 : 0);
      std::vector<int64_t> blocks{128, 256, 512, 1024};
      const size_t def =
          ArmIndexOf(blocks, static_cast<int64_t>(opt.rof_block));
      tuner->RegisterKnob("typer.rof_block", kQueryKnob, KnobKind::kRofBlock,
                          std::move(blocks), def);
    } else {
      RegisterTectorwiseKnobs(*tuner, impl->tw->plan(), opt);
    }
    impl->tuner = std::move(tuner);
  }
  PreparedQuery prepared;
  prepared.impl_ = std::move(impl);
  return prepared;
}

std::shared_ptr<const sql::Catalog> Session::SqlCatalog() const {
  std::lock_guard<std::mutex> lock(sql_mu_);
  if (sql_catalog_ == nullptr) sql_catalog_ = sql::MakeCatalog(*db_);
  return sql_catalog_;
}

PreparedQuery Session::PrepareSql(std::string_view sql_text, Engine engine,
                                  const QueryOptions& options) const {
  VCQ_CHECK_MSG(engine != Engine::kTyper,
                "SQL lowering targets Tectorwise and Volcano; Typer "
                "pipelines are ahead-of-time compiled per catalog query");
  std::shared_ptr<const sql::Catalog> catalog = SqlCatalog();
  // Compile-stage spans are recorded once here and prepended to every
  // traced execution of the handle (Impl::prepare_trace) — prepare cost is
  // part of the query's observable story even though it is paid once.
  auto prepare_trace = std::make_shared<runtime::QueryTrace>();
  sql::CompileResult compiled =
      sql::Compile(catalog, sql_text, {}, prepare_trace.get());
  // Malformed SQL is a caller bug at this API level and fails at prepare —
  // never at Execute. Callers wanting a recoverable, positioned error
  // (shells, fuzzers) call sql::Compile themselves.
  VCQ_CHECK_MSG(compiled.ok(), compiled.error->Format().c_str());
  auto impl = std::make_shared<PreparedQuery::Impl>();
  impl->prepare_trace = prepare_trace;
  impl->db = db_;
  impl->engine = engine;
  impl->is_sql = true;
  impl->sql = compiled.query;
  impl->opt = options;
  if (impl->opt.pool == nullptr) impl->opt.pool = pool_;
  // Same pool/stream/thread-clamp rules as Prepare (see there).
  impl->opt.sched_stream = impl->opt.pool == pool_ ? stream_ : 0;
  size_t cap = impl->opt.pool->scheduler().thread_count() + 1;
  if (impl->opt.scheduler_threads > 0)
    cap = std::min(cap, impl->opt.scheduler_threads);
  impl->opt.threads = std::max<size_t>(1, std::min(impl->opt.threads, cap));
  impl->owned_info = SqlQueryInfo(*compiled.query, *catalog);
  impl->info = &impl->owned_info;
  // No spec defaults: impl->defaults / impl->bound stay empty until Set.
  impl->est_bytes = SqlEstimatedBuildBytes(compiled.query->plan());
  switch (engine) {
    case Engine::kTyper:
      break;  // rejected above
    case Engine::kTectorwise: {
      runtime::TraceScope lower(prepare_trace.get(), "sql", "sql.lower");
      impl->tw.emplace(compiled.query->LowerTectorwise());
      // The binder declared every $param the plan reads, but run the same
      // drift cross-check Prepare does — it guards the lowering too.
      ValidatePlanParams(impl->tw->plan(), impl->owned_info);
      break;
    }
    case Engine::kVolcano:
      impl->volcano = [q = compiled.query](const Database&,
                                           const QueryOptions& opt,
                                           const QueryParams& params) {
        return q->RunVolcano(opt, params);
      };
      break;
  }
  if (options.tuning != TuningMode::kOff && engine == Engine::kTectorwise) {
    impl->work_tuples =
        std::max<size_t>(1, compiled.query->ScannedTuples());
    auto tuner = std::make_unique<runtime::Tuner>(
        runtime::Tuner::ResolveSeed(options.tuner_seed));
    RegisterTectorwiseKnobs(*tuner, impl->tw->plan(), impl->opt);
    impl->tuner = std::move(tuner);
  }
  PreparedQuery prepared;
  prepared.impl_ = std::move(impl);
  return prepared;
}

std::string Session::MetricsSnapshot() { return metrics::RenderJson(); }

std::string Session::ExplainSql(std::string_view sql_text) const {
  sql::CompileResult compiled = sql::Compile(SqlCatalog(), sql_text);
  VCQ_CHECK_MSG(compiled.ok(), compiled.error->Format().c_str());
  return sql::Explain(*compiled.query);
}

}  // namespace vcq
