#ifndef VCQ_API_SESSION_H_
#define VCQ_API_SESSION_H_

#include <memory>
#include <string_view>

#include "api/query_catalog.h"
#include "api/vcq.h"
#include "runtime/options.h"
#include "runtime/params.h"
#include "runtime/query_result.h"
#include "runtime/relation.h"

// The serving API (paper §8.1: compilation's edge is repeated execution of
// prepared statements; HyPer and Vectorwise both separate a prepare phase
// from many cheap executes over a resident server process).
//
//   vcq::Session session(db);                       // long-lived
//   vcq::PreparedQuery q6 = session.Prepare(
//       vcq::Engine::kTectorwise, vcq::Query::kQ6, {.threads = 8});
//   q6.Set("discount_lo", 4).Set("shipdate_lo", "1995-01-01");
//   vcq::runtime::QueryResult r = q6.Execute();     // re-execute at will
//
// Prepare validates the query/engine pair and builds the Tectorwise plan
// DAG (with its derived compaction registrations) exactly once; Execute
// only does per-run work and is safe to call concurrently — in-flight
// executions of one session interleave at morsel granularity on its shared
// runtime::WorkerPool. ExecuteAsync returns a waitable handle for driving
// a query mix. Parameters default to the QueryCatalog's spec constants;
// bindings are validated against the query's ParamSpecs at Set time.

namespace vcq {

class PreparedQuery;

/// A waitable in-flight execution started by PreparedQuery::ExecuteAsync.
/// Handles are cheap shared references; Wait() may be called once to take
/// the result.
class ExecutionHandle {
 public:
  /// Blocks until the execution finishes and surrenders its result.
  runtime::QueryResult Wait();
  /// Non-blocking completion probe.
  bool Done() const;

 private:
  friend class PreparedQuery;
  struct State;
  std::shared_ptr<State> state_;
};

/// A validated, plan-built query handle. Copies share the underlying plan
/// and bindings. Execute() and ExecuteAsync() may be called concurrently
/// from any thread (each execution snapshots the bindings and creates its
/// own run state); Set() interleaved with concurrent executions is defined
/// — each execution sees a consistent snapshot — but which snapshot an
/// in-flight execution sees is unspecified.
class PreparedQuery {
 public:
  /// Binds an integer parameter (fixed-point values keep their schema
  /// scale). Check-fails on unknown names or non-int parameters.
  PreparedQuery& Set(std::string_view name, int64_t value);
  /// Binds a string or date parameter (dates as ISO "YYYY-MM-DD").
  PreparedQuery& Set(std::string_view name, std::string_view value);
  /// Restores the catalog's spec-default bindings.
  PreparedQuery& ResetParams();
  /// Current bindings snapshot.
  runtime::QueryParams params() const;

  /// Runs the prepared plan with the current bindings and blocks for the
  /// result. Callable concurrently with itself and other queries of the
  /// same session.
  runtime::QueryResult Execute() const;
  /// Runs with explicit bindings layered over the catalog defaults (the
  /// handle's own bindings are ignored).
  runtime::QueryResult Execute(const runtime::QueryParams& params) const;
  /// Starts the execution on the session's worker pool and returns
  /// immediately; the handle's Wait() yields the result.
  ExecutionHandle ExecuteAsync() const;

  Engine engine() const;
  Query query() const;
  /// Catalog row: name, workload, declared parameters.
  const QueryInfo& info() const;
  const runtime::QueryOptions& options() const;

 private:
  friend class Session;
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Long-lived serving handle: owns the database reference and the worker
/// pool its queries execute on. By default sessions share the process-wide
/// pool (one set of threads no matter how many sessions exist); pass an
/// explicit pool for isolation. The database — and an explicit pool — must
/// outlive the session and every PreparedQuery it produced.
class Session {
 public:
  explicit Session(const runtime::Database& db);
  Session(const runtime::Database& db, runtime::WorkerPool& pool);

  /// Validates that `engine` implements `query`, builds the plan once
  /// (Tectorwise; Typer pipelines are ahead-of-time compiled, so prepare
  /// is validation + parameter setup), and returns the reusable handle
  /// with the catalog's default bindings. `options.threads` etc. are fixed
  /// at prepare time; the session's pool is stamped into them unless the
  /// caller already set one.
  PreparedQuery Prepare(Engine engine, Query query,
                        const runtime::QueryOptions& options = {}) const;

  const runtime::Database& db() const { return *db_; }
  runtime::WorkerPool& pool() const { return *pool_; }

 private:
  const runtime::Database* db_;
  runtime::WorkerPool* pool_;
};

}  // namespace vcq

#endif  // VCQ_API_SESSION_H_
