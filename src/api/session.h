#ifndef VCQ_API_SESSION_H_
#define VCQ_API_SESSION_H_

#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "api/query_catalog.h"
#include "api/vcq.h"
#include "runtime/cancel.h"
#include "runtime/options.h"
#include "runtime/params.h"
#include "runtime/query_result.h"
#include "runtime/relation.h"

// The serving API (paper §8.1: compilation's edge is repeated execution of
// prepared statements; HyPer and Vectorwise both separate a prepare phase
// from many cheap executes over a resident server process).
//
//   vcq::Session session(db);                       // long-lived
//   session.SetWeight(2.0);                         // fair-queueing weight
//   vcq::PreparedQuery q6 = session.Prepare(
//       vcq::Engine::kTectorwise, vcq::Query::kQ6, {.threads = 8});
//   q6.Set("discount_lo", 4).Set("shipdate_lo", "1995-01-01");
//   vcq::runtime::QueryResult r = q6.Execute();     // re-execute at will
//   r = q6.Execute(vcq::runtime::CancelToken::Clock::now() + 50ms);
//   vcq::ExecutionHandle h = q6.ExecuteAsync();
//   h.Cancel();                                     // cooperative cancel
//
// Prepare validates the query/engine pair, builds the Tectorwise plan DAG
// exactly once, cross-checks the plan's parameter reads against the
// catalog's declared types (ValidatePlanParams), and clamps threads to the
// session scheduler's gang capacity. Execute only does per-run work and is
// safe to call concurrently; in-flight executions are gang-scheduled on
// the session pool's fixed worker set with per-session weighted fairness
// (runtime/scheduler.h). Every execution passes admission control first —
// an overloaded scheduler answers ExecStatus::kRejected instead of
// queueing unboundedly — and carries a CancelToken both engines poll at
// morsel boundaries, so deadlines and Cancel() take effect mid-query.
// Non-kOk executions return an empty result carrying the status; partial
// rows are never surfaced.

namespace vcq {

namespace tectorwise {
class Plan;
}  // namespace tectorwise

namespace sql {
class Catalog;
}  // namespace sql

class PreparedQuery;

/// Retry schedule for PreparedQuery::ExecuteWithRetry: transient failures —
/// admission backpressure (kRejected) and memory-budget trips
/// (kResourceExhausted) — are retried with capped exponential backoff plus
/// deterministic jitter; every other status (including kOk) returns
/// immediately. Each attempt is a fresh execution with a fresh token, so a
/// previous attempt's sticky trip never bleeds into the next.
struct RetryPolicy {
  /// Total attempts including the first (>= 1).
  size_t max_attempts = 3;
  /// Backoff before the second attempt; doubled per retry up to the cap.
  std::chrono::milliseconds initial_backoff{10};
  std::chrono::milliseconds max_backoff{1000};
  /// Jitter is derived from this seed (attempt-indexed), so a given policy
  /// replays the identical schedule — tests and the fault harness stay
  /// deterministic. Each backoff is scaled into [0.5, 1.0) of its nominal
  /// value.
  uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
  /// Overall wall-clock budget across ALL attempts and the sleeps between
  /// them (0 = unbounded). Every attempt runs with a deadline at the
  /// budget's end, backoff sleeps are clamped to the remaining budget, and
  /// no new attempt starts once it is exhausted — a caller asking for "3
  /// tries within 200 ms" gets exactly that, not 3 tries plus unbounded
  /// sleeps. The final attempt's result is returned either way.
  std::chrono::milliseconds total_timeout{0};
};

/// Which rungs PreparedQuery::ExecuteWithDegradation may descend to when an
/// execution fails with kResourceExhausted. The ladder trades speed for
/// survival, one rung at a time:
///
///   rung 0  as prepared (in-memory, full parallelism)
///   rung 1  + spill: operators stage build/group state to temp files
///           under memory pressure instead of failing (runtime/spill.h)
///   rung 2  + half the prepared thread count (fewer concurrent
///           worker-local tables and materialize pools)
///   rung 3  + single-threaded, minimal vectors (Tectorwise vector_size
///           256) — the smallest footprint this engine can run at
///
/// Results are byte-identical across rungs (the spill and merge paths
/// preserve the in-memory visit order); only the resource profile changes.
/// Disabling a rung skips it — the ladder tries the remaining ones in
/// order.
struct DegradationPolicy {
  bool allow_spill = true;
  bool allow_reduced_threads = true;
  bool allow_small_vectors = true;
};

/// A waitable in-flight execution started by PreparedQuery::ExecuteAsync.
/// Handles are cheap shared references; Wait() may be called once to take
/// the result. Cancel() requests cooperative cancellation: the engines
/// stop claiming morsels, every pool slot is freed, run-local memory is
/// released, and Wait() returns an empty result with status kCancelled
/// (or kOk if the execution won the race and finished first).
class ExecutionHandle {
 public:
  /// Blocks until the execution finishes and surrenders its result.
  runtime::QueryResult Wait();
  /// Non-blocking completion probe.
  bool Done() const;
  /// Requests cancellation; idempotent, safe from any thread, does not
  /// consume the handle.
  void Cancel();

 private:
  friend class PreparedQuery;
  struct State;
  std::shared_ptr<State> state_;
};

/// A validated, plan-built query handle. Copies share the underlying plan
/// and bindings. Execute() and ExecuteAsync() may be called concurrently
/// from any thread (each execution snapshots the bindings and creates its
/// own run state); Set() interleaved with concurrent executions is defined
/// — each execution sees a consistent snapshot — but which snapshot an
/// in-flight execution sees is unspecified.
class PreparedQuery {
 public:
  using Deadline = runtime::CancelToken::Clock::time_point;

  /// Binds an integer parameter (fixed-point values keep their schema
  /// scale). Check-fails on unknown names or non-int parameters.
  PreparedQuery& Set(std::string_view name, int64_t value);
  /// Binds a string or date parameter (dates as ISO "YYYY-MM-DD").
  PreparedQuery& Set(std::string_view name, std::string_view value);
  /// Restores the catalog's spec-default bindings (SQL-prepared handles
  /// declare no defaults — their bindings are cleared).
  PreparedQuery& ResetParams();
  /// Current bindings snapshot.
  runtime::QueryParams params() const;

  /// Runs the prepared plan with the current bindings and blocks for the
  /// result. Callable concurrently with itself and other queries of the
  /// same session. Check result.status: admission control may reject
  /// (kRejected) under load.
  runtime::QueryResult Execute() const;
  /// Runs with explicit bindings layered over the catalog defaults (the
  /// handle's own bindings are ignored).
  runtime::QueryResult Execute(const runtime::QueryParams& params) const;
  /// Runs with a deadline: once it passes — while waiting for admission or
  /// mid-query at a morsel boundary — the execution stops and returns an
  /// empty result with status kDeadlineExceeded.
  runtime::QueryResult Execute(Deadline deadline) const;
  /// Convenience: deadline = now + timeout.
  runtime::QueryResult Execute(std::chrono::milliseconds timeout) const;
  /// Execute() with automatic retry of transient failures (admission
  /// kRejected, budget kResourceExhausted) per `policy`: capped exponential
  /// backoff with deterministic jitter between attempts, fresh CancelToken
  /// per attempt. Returns the first non-transient result, or the last
  /// transient failure once attempts are exhausted.
  runtime::QueryResult ExecuteWithRetry(const RetryPolicy& policy = {}) const;
  /// Execute() with graceful degradation instead of failure: on
  /// kResourceExhausted the query is re-run one rung down the ladder
  /// (spill -> fewer threads -> minimal vectors; see DegradationPolicy)
  /// until it succeeds, fails for a non-memory reason, or runs out of
  /// enabled rungs. The returned result's `degraded_rung` records where it
  /// ran and `spilled_bytes` how much hit disk; rows are byte-identical to
  /// an in-memory run at any rung. An optional deadline bounds the whole
  /// descent.
  runtime::QueryResult ExecuteWithDegradation(
      const DegradationPolicy& policy = {}) const;
  runtime::QueryResult ExecuteWithDegradation(const DegradationPolicy& policy,
                                              Deadline deadline) const;
  /// Starts the execution on the session scheduler's coordinator threads
  /// and returns immediately; the handle's Wait() yields the result and
  /// its Cancel() stops the query cooperatively.
  ExecutionHandle ExecuteAsync() const;
  /// Async with a deadline (see Execute(Deadline)).
  ExecutionHandle ExecuteAsync(Deadline deadline) const;

  Engine engine() const;
  /// Catalog query id; check-fails for SQL-prepared handles (they have no
  /// catalog row — introspect via info() and is_sql() instead).
  Query query() const;
  /// True when this handle came from Session::PrepareSql.
  bool is_sql() const;
  /// Catalog row: name, workload, declared parameters. SQL-prepared
  /// handles get a synthesized row (name "SQL", one ParamSpec per $param
  /// declared in the text, no defaults).
  const QueryInfo& info() const;
  const runtime::QueryOptions& options() const;

  /// EXPLAIN surface of the self-tuning state (runtime/tuner.h): per knob,
  /// the arm set with visit counts and mean measured cost, and the arm a
  /// frozen execution would choose. Returns "tuning: off\n" when the query
  /// was prepared with TuningMode::kOff.
  std::string ExplainTuning() const;
  /// Pins every knob to its current best learned arm: subsequent
  /// executions behave as TuningMode::kFrozen regardless of the prepared
  /// mode. No-op under kOff.
  PreparedQuery& FreezeTuning();
  /// True once the tuner's bounded exploration phase has completed (every
  /// arm of every knob visited); always true under kOff.
  bool TuningConverged() const;
  /// Peak ledger bytes measured across this handle's successful
  /// executions; 0 until the first one completes. Once nonzero it replaces
  /// the catalog's static build estimate in memory-aware admission.
  size_t measured_peak_bytes() const;
  /// EXPLAIN surface of the degradation ladder (mirrors ExplainTuning):
  /// per rung, how many ExecuteWithDegradation attempts ran there and how
  /// many succeeded — the operational record of how often this query needs
  /// to shed which resource to survive.
  std::string ExplainDegradation() const;
  /// Runs the query ONCE with tracing forced on (current bindings) and
  /// renders the measured plan: per node, output rows, batches, self time,
  /// ns/tuple, batch density, the join build/probe split, and spill bytes
  /// (Tectorwise — tectorwise::ExplainAnalyzeTree); per parallel region,
  /// worker busy time and ns/tuple (Typer/Volcano pipelines). The header
  /// carries status, wall time, and result cardinality; a failed run still
  /// renders whatever spans it produced. Unlike EXPLAIN this executes the
  /// query — expect full query cost.
  std::string ExplainAnalyze() const;

 private:
  friend class Session;
  struct Impl;
  ExecutionHandle StartAsync(std::shared_ptr<runtime::CancelToken> token)
      const;
  std::shared_ptr<Impl> impl_;
};

/// Long-lived serving handle: owns the database reference, the worker pool
/// its queries execute on, and a scheduling stream on that pool's
/// scheduler (the weighted-fair-queueing unit — SetWeight() biases how
/// this session's pending regions compete with other sessions'). By
/// default sessions share the process-wide pool (one fixed set of gang
/// workers no matter how many sessions exist); pass an explicit pool for
/// isolation or a different thread bound. The database — and an explicit
/// pool — must outlive the session and every PreparedQuery it produced;
/// prepared queries may outlive the session itself (their executions then
/// fall back to the scheduler's default stream).
class Session {
 public:
  explicit Session(const runtime::Database& db);
  Session(const runtime::Database& db, runtime::WorkerPool& pool);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Validates that `engine` implements `query`, builds the plan once
  /// (Tectorwise; Typer pipelines are ahead-of-time compiled, so prepare
  /// is validation + parameter setup + column-accessor cache creation),
  /// cross-checks plan parameter reads against the catalog
  /// (ValidatePlanParams), and returns the reusable handle with the
  /// catalog's default bindings. `options.threads` is clamped to the
  /// session pool's gang capacity + 1 — the executing thread acts as
  /// worker 0 — and to options.scheduler_threads when set, so regions
  /// always fit the fixed worker set; the session's pool and scheduling
  /// stream are stamped into the options.
  PreparedQuery Prepare(Engine engine, Query query,
                        const runtime::QueryOptions& options = {}) const;

  /// The SQL front door (sql/sql.h): compiles `sql` — lexer, parser,
  /// binder, optimizer — against a catalog derived from this session's
  /// database schema, lowers it onto the requested engine, and returns an
  /// ordinary PreparedQuery. `$name` placeholders in the text become named
  /// parameters (Set/Execute exactly as for catalog queries) with NO
  /// default bindings — every declared parameter must be bound before
  /// Execute. Malformed SQL check-fails here with a 1-based line:column
  /// position — never at Execute; callers wanting a recoverable error use
  /// sql::Compile directly. Engines: kTectorwise (plan built once, fully
  /// parallel) and kVolcano (tuple-at-a-time differential oracle); kTyper
  /// pipelines are ahead-of-time compiled per catalog query and cannot run
  /// arbitrary SQL — asking for it check-fails. Thread clamping, admission,
  /// tuning knobs, retry/degradation ladders all behave as for Prepare.
  PreparedQuery PrepareSql(std::string_view sql,
                           Engine engine = Engine::kTectorwise,
                           const runtime::QueryOptions& options = {}) const;

  /// All EXPLAIN stages of `sql` (ast / logical / optimized / physical
  /// Tectorwise DAG). Check-fails on malformed SQL, like PrepareSql.
  std::string ExplainSql(std::string_view sql) const;

  /// Weighted-fair-queueing weight of this session's stream (default 1.0):
  /// with every session backlogged, region dispatches are proportional to
  /// the weights. Takes effect on the next dispatch, including for
  /// already-prepared queries.
  Session& SetWeight(double weight);
  double weight() const;

  /// Per-session admission quota (tenant isolation, runtime/scheduler.h):
  /// at most `max_inflight` of this session's executions admitted at once
  /// (0 = unlimited) and at most `max_bytes` of their estimated/measured
  /// memory in flight (0 = unlimited). Excess executions wait their turn —
  /// honoring deadlines — instead of starving other sessions; a query that
  /// could never fit the byte quota fails fast with kResourceExhausted.
  Session& SetQuota(size_t max_inflight, size_t max_bytes);

  const runtime::Database& db() const { return *db_; }
  runtime::WorkerPool& pool() const { return *pool_; }
  /// The session's scheduling stream id (introspection).
  uint64_t stream() const { return stream_; }

  /// JSON snapshot of the process-wide metrics registry
  /// (runtime/metrics.h): counters, gauges (probes refreshed first), and
  /// histograms with p50/p95/p99. Process-scoped — every session sees the
  /// same registry; exposed here because the session is the serving
  /// surface an operator holds.
  static std::string MetricsSnapshot();

 private:
  /// Lazily builds (and then shares) the SQL catalog — schema + column
  /// statistics snapshot of db_ — across every PrepareSql/ExplainSql of
  /// this session.
  std::shared_ptr<const sql::Catalog> SqlCatalog() const;

  const runtime::Database* db_;
  runtime::WorkerPool* pool_;
  uint64_t stream_ = 0;
  mutable std::mutex sql_mu_;
  mutable std::shared_ptr<const sql::Catalog> sql_catalog_;  // guarded
};

/// Prepare-time cross-check of a built Tectorwise plan's parameter reads
/// (CmpParam/BetweenParam/EqOr2Param/ContainsParam) against the catalog's
/// declared ParamSpecs: every read must name a declared parameter and
/// access it the way its ParamType is stored (kInt/kDate numerically,
/// kString as a string) — so query/catalog drift fails at Prepare with a
/// clear message instead of producing garbage at the first Execute.
/// Called by Session::Prepare for every Tectorwise plan; exposed for
/// custom PlanBuilder plans and tests.
void ValidatePlanParams(const tectorwise::Plan& plan, const QueryInfo& info);

}  // namespace vcq

#endif  // VCQ_API_SESSION_H_
