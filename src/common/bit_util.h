#ifndef VCQ_COMMON_BIT_UTIL_H_
#define VCQ_COMMON_BIT_UTIL_H_

#include <cstddef>
#include <cstdint>

namespace vcq {

/// Smallest power of two >= v (v == 0 yields 1).
inline uint64_t NextPow2(uint64_t v) {
  if (v <= 1) return 1;
  return uint64_t{1} << (64 - __builtin_clzll(v - 1));
}

inline bool IsPow2(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Integer ceil(a / b) for b > 0.
inline uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

/// Rounds n up to the next multiple of align (align must be a power of two).
inline uint64_t AlignUp(uint64_t n, uint64_t align) {
  return (n + align - 1) & ~(align - 1);
}

}  // namespace vcq

#endif  // VCQ_COMMON_BIT_UTIL_H_
