#ifndef VCQ_COMMON_ENV_UTIL_H_
#define VCQ_COMMON_ENV_UTIL_H_

#include <cstdint>
#include <string>

namespace vcq {

/// Configuration of bench binaries via environment variables (DESIGN.md §3):
/// VCQ_SF, VCQ_REPS, VCQ_THREADS, VCQ_QUICK. Each getter returns the given
/// default when the variable is unset or unparsable.
double EnvDouble(const char* name, double default_value);
int64_t EnvInt(const char* name, int64_t default_value);
bool EnvFlag(const char* name);  // set and != "0"
std::string EnvString(const char* name, const std::string& default_value);

}  // namespace vcq

#endif  // VCQ_COMMON_ENV_UTIL_H_
