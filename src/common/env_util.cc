#include "common/env_util.h"

#include <cstdlib>
#include <cstring>

namespace vcq {

double EnvDouble(const char* name, double default_value) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return default_value;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != nullptr && *end == '\0') ? parsed : default_value;
}

int64_t EnvInt(const char* name, int64_t default_value) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return default_value;
  char* end = nullptr;
  const int64_t parsed = std::strtoll(v, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : default_value;
}

bool EnvFlag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && std::strcmp(v, "0") != 0 && *v != '\0';
}

std::string EnvString(const char* name, const std::string& default_value) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? default_value : std::string(v);
}

}  // namespace vcq
