#include "common/cpu_info.h"

#include <cpuid.h>

#include <cstdio>
#include <cstring>

namespace vcq {
namespace {

struct Features {
  bool avx2 = false;
  bool avx512 = false;
  char model[128] = "unknown";

  Features() {
    unsigned eax, ebx, ecx, edx;
    if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
      avx2 = (ebx >> 5) & 1;
      const bool f = (ebx >> 16) & 1;
      const bool dq = (ebx >> 17) & 1;
      const bool cd = (ebx >> 28) & 1;
      const bool bw = (ebx >> 30) & 1;
      const bool vl = (ebx >> 31) & 1;
      avx512 = f && dq && cd && bw && vl;
    }
    // Brand string via extended CPUID leaves 0x80000002..4.
    unsigned brand[12];
    bool ok = true;
    for (unsigned i = 0; i < 3; ++i) {
      unsigned a, b, c, d;
      if (!__get_cpuid(0x80000002 + i, &a, &b, &c, &d)) {
        ok = false;
        break;
      }
      brand[i * 4 + 0] = a;
      brand[i * 4 + 1] = b;
      brand[i * 4 + 2] = c;
      brand[i * 4 + 3] = d;
    }
    if (ok) {
      std::memcpy(model, brand, sizeof(brand));
      model[sizeof(brand)] = '\0';
    }
  }
};

const Features& GetFeatures() {
  static const Features features;
  return features;
}

}  // namespace

bool CpuInfo::HasAvx512() { return GetFeatures().avx512; }
bool CpuInfo::HasAvx2() { return GetFeatures().avx2; }
const char* CpuInfo::ModelName() { return GetFeatures().model; }

}  // namespace vcq
