#ifndef VCQ_COMMON_CPU_INFO_H_
#define VCQ_COMMON_CPU_INFO_H_

namespace vcq {

/// Runtime CPU feature detection used to dispatch between scalar and SIMD
/// primitive implementations (paper §5). All SIMD code paths in this library
/// are compiled with per-function target attributes, so the binary itself
/// runs on any x86-64 CPU; AVX-512 paths are selected here at runtime.
class CpuInfo {
 public:
  /// AVX-512 F + BW + DQ + VL + CD: everything the paper's selection and
  /// probing kernels need (compress-store, 64-bit gather, masked compares).
  static bool HasAvx512();

  /// AVX2 (used by the auto-vectorized build of the Fig. 10 study).
  static bool HasAvx2();

  /// Human-readable model name from /proc/cpuinfo (best effort).
  static const char* ModelName();
};

}  // namespace vcq

#endif  // VCQ_COMMON_CPU_INFO_H_
