#ifndef VCQ_COMMON_CHECK_H_
#define VCQ_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Invariant-checking macros. The library follows the paper's prototype
// philosophy (and the Google style guide's no-exceptions rule): a violated
// invariant is a programming error and aborts with a source location.
//
// VCQ_CHECK(cond)        - always evaluated.
// VCQ_CHECK_MSG(cond, m) - always evaluated, custom message.
// VCQ_DCHECK(cond)       - debug builds only; compiled out under NDEBUG.

#define VCQ_CHECK_MSG(condition, message)                                  \
  do {                                                                     \
    if (!(condition)) {                                                    \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,   \
                   __LINE__, #condition, message);                         \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define VCQ_CHECK(condition) VCQ_CHECK_MSG(condition, "invariant violated")

#ifdef NDEBUG
#define VCQ_DCHECK(condition) \
  do {                        \
  } while (0)
#else
#define VCQ_DCHECK(condition) VCQ_CHECK(condition)
#endif

#endif  // VCQ_COMMON_CHECK_H_
