#ifndef VCQ_DATAGEN_TPCH_H_
#define VCQ_DATAGEN_TPCH_H_

#include <cstdint>

#include "runtime/relation.h"

// From-scratch TPC-H data generator (paper §3.3 workload). Spec-faithful for
// every column the studied queries (Q1, Q6, Q3, Q9, Q18) read — cardinality
// formulas, date windows, value distributions, the partsupp supplier-key
// formula, p_name color words, return-flag/line-status rules — and
// deliberately omits the free-text columns (addresses, comments, phones)
// that no studied query touches; see DESIGN.md §6.
//
// Decimals are 64-bit fixed-point (scale 2 unless noted), dates are day
// numbers; see runtime/types.h.

namespace vcq::datagen {

/// TPC-H schema constants shared with query implementations.
struct TpchDates {
  static int32_t Start();       // 1992-01-01
  static int32_t Current();     // 1995-06-17 (returnflag rule)
  static int32_t OrdersEnd();   // 1998-08-02 (ENDDATE - 151 days)
};

/// Number of orders/customers/parts/suppliers at a given scale factor.
/// Fractional scale factors scale all cardinalities proportionally
/// (minimum 1), which keeps test databases tiny but structurally faithful.
struct TpchCardinalities {
  int64_t customers;
  int64_t orders;
  int64_t parts;
  int64_t suppliers;

  static TpchCardinalities For(double scale_factor);
};

/// partsupp/lineitem supplier assignment, TPC-H spec clause 4.2.3:
/// supplier i (0..3) for part `partkey` among `supplier_count` suppliers.
int32_t PartSuppSupplier(int64_t partkey, int64_t i, int64_t supplier_count);

/// p_retailprice(partkey), scale 2 (spec formula).
int64_t PartRetailPrice(int64_t partkey);

/// Generates lineitem, orders, customer, part, partsupp, supplier, nation,
/// region at `scale_factor`, using `threads` workers. Deterministic:
/// identical output for identical (scale_factor) regardless of threads.
runtime::Database GenerateTpch(double scale_factor, int threads = 0);

}  // namespace vcq::datagen

#endif  // VCQ_DATAGEN_TPCH_H_
