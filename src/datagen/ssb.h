#ifndef VCQ_DATAGEN_SSB_H_
#define VCQ_DATAGEN_SSB_H_

#include "runtime/relation.h"

// Star Schema Benchmark generator (paper §4.4). SSB is TPC-H refactored
// into a star: one denormalized fact table (lineorder) plus four dimensions
// (date, customer, supplier, part). The studied query flights Q1.1, Q2.1,
// Q3.1, Q4.1 are dominated by hash-table probes into the dimensions, which
// is exactly why the paper uses it as a cross-check of the TPC-H findings.

namespace vcq::datagen {

struct SsbCardinalities {
  int64_t orders;     // lineorder has 1..7 lines per order
  int64_t customers;  // 30,000 * SF
  int64_t suppliers;  // 2,000 * SF
  int64_t parts;      // 200,000 * (1 + floor(log2(SF))) for SF >= 1
  int64_t dates;      // 7 years of days (fixed)

  static SsbCardinalities For(double scale_factor);
};

/// Generates lineorder, date, customer, supplier, part at `scale_factor`.
/// Deterministic and morsel-parallel like GenerateTpch.
runtime::Database GenerateSsb(double scale_factor, int threads = 0);

}  // namespace vcq::datagen

#endif  // VCQ_DATAGEN_SSB_H_
