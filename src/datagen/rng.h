#ifndef VCQ_DATAGEN_RNG_H_
#define VCQ_DATAGEN_RNG_H_

#include <cstdint>

namespace vcq::datagen {

/// SplitMix64: used to derive independent per-row seeds, so generation is
/// deterministic yet embarrassingly parallel (any row's randomness depends
/// only on (seed, row index), never on generation order).
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Small, fast PRNG (xorshift128+) seeded from SplitMix64. One instance per
/// row/order keeps the generators morsel-parallel and order-independent.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    s0_ = SplitMix64(seed);
    s1_ = SplitMix64(s0_);
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform integer in [lo, hi] (inclusive), like dbgen's random(lo, hi).
  int64_t Uniform(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Next() % static_cast<uint64_t>(
                                                  hi - lo + 1));
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace vcq::datagen

#endif  // VCQ_DATAGEN_RNG_H_
