#include "datagen/tpch.h"

#include <algorithm>
#include <cstdio>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "common/check.h"
#include "datagen/rng.h"
#include "runtime/types.h"
#include "runtime/worker_pool.h"

namespace vcq::datagen {

using runtime::Char;
using runtime::Database;
using runtime::DaysFromCivil;
using runtime::Relation;
using runtime::Varchar;

namespace {

constexpr uint64_t kSeed = 0x7c9u;  // fixed: the whole benchmark is seeded

// TPC-H P_NAME words (spec 4.2.3: 92 color words; "green" drives Q9's
// ~1-in-17 part selectivity).
constexpr const char* kColors[] = {
    "almond",    "antique",   "aquamarine", "azure",      "beige",
    "bisque",    "black",     "blanched",   "blue",       "blush",
    "brown",     "burlywood", "burnished",  "chartreuse", "chiffon",
    "chocolate", "coral",     "cornflower", "cornsilk",   "cream",
    "cyan",      "dark",      "deep",       "dim",        "dodger",
    "drab",      "firebrick", "floral",     "forest",     "frosted",
    "gainsboro", "ghost",     "goldenrod",  "green",      "grey",
    "honeydew",  "hot",       "hotpink",    "indian",     "ivory",
    "khaki",     "lace",      "lavender",   "lawn",       "lemon",
    "light",     "lime",      "linen",      "magenta",    "maroon",
    "medium",    "metallic",  "midnight",   "mint",       "misty",
    "moccasin",  "navajo",    "navy",       "olive",      "orange",
    "orchid",    "pale",      "papaya",     "peach",      "peru",
    "pink",      "plum",      "powder",     "puff",       "purple",
    "red",       "rose",      "rosy",       "royal",      "saddle",
    "salmon",    "sandy",     "seashell",   "sienna",     "sky",
    "slate",     "smoke",     "snow",       "spring",     "steel",
    "tan",       "thistle",   "tomato",     "turquoise",  "violet",
    "wheat",     "white"};
constexpr int kColorCount = sizeof(kColors) / sizeof(kColors[0]);

constexpr const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                     "MACHINERY", "HOUSEHOLD"};

// 25 TPC-H nations with their region assignment (spec Appendix).
struct NationDef {
  const char* name;
  int32_t region;
};
constexpr NationDef kNations[] = {
    {"ALGERIA", 0},      {"ARGENTINA", 1},  {"BRAZIL", 1},
    {"CANADA", 1},       {"EGYPT", 4},      {"ETHIOPIA", 0},
    {"FRANCE", 3},       {"GERMANY", 3},    {"INDIA", 2},
    {"INDONESIA", 2},    {"IRAN", 4},       {"IRAQ", 4},
    {"JAPAN", 2},        {"JORDAN", 4},     {"KENYA", 0},
    {"MOROCCO", 0},      {"MOZAMBIQUE", 0}, {"PERU", 1},
    {"CHINA", 2},        {"ROMANIA", 3},    {"RUSSIA", 3},
    {"SAUDI ARABIA", 4}, {"VIETNAM", 2},    {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}};
constexpr const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                    "MIDDLE EAST"};

int64_t ScaledCount(double sf, int64_t base) {
  return std::max<int64_t>(1, static_cast<int64_t>(std::llround(sf * base)));
}

}  // namespace

int32_t TpchDates::Start() {
  static const int32_t d = DaysFromCivil(1992, 1, 1);
  return d;
}
int32_t TpchDates::Current() {
  static const int32_t d = DaysFromCivil(1995, 6, 17);
  return d;
}
int32_t TpchDates::OrdersEnd() {
  static const int32_t d = DaysFromCivil(1998, 8, 2);
  return d;
}

TpchCardinalities TpchCardinalities::For(double sf) {
  VCQ_CHECK_MSG(sf > 0, "scale factor must be positive");
  return TpchCardinalities{ScaledCount(sf, 150000), ScaledCount(sf, 1500000),
                           ScaledCount(sf, 200000), ScaledCount(sf, 10000)};
}

int32_t PartSuppSupplier(int64_t partkey, int64_t i, int64_t supplier_count) {
  const int64_t s = supplier_count;
  return static_cast<int32_t>(
      (partkey + (i * (s / 4 + (partkey - 1) / s))) % s + 1);
}

int64_t PartRetailPrice(int64_t partkey) {
  return 90000 + ((partkey / 10) % 20001) + 100 * (partkey % 1000);
}

Database GenerateTpch(double scale_factor, int threads) {
  const TpchCardinalities card = TpchCardinalities::For(scale_factor);
  runtime::WorkerPool& pool = runtime::WorkerPool::Global();
  const size_t nthreads =
      threads > 0 ? static_cast<size_t>(threads) : pool.max_threads();

  Database db;

  // --- nation & region (fixed content) -----------------------------------
  {
    Relation& nation = db.Add("nation");
    auto n_nationkey = nation.AddColumn<int32_t>("n_nationkey", 25);
    auto n_name = nation.AddColumn<Char<25>>("n_name", 25);
    auto n_regionkey = nation.AddColumn<int32_t>("n_regionkey", 25);
    for (int i = 0; i < 25; ++i) {
      n_nationkey[i] = i;
      n_name[i] = Char<25>::From(kNations[i].name);
      n_regionkey[i] = kNations[i].region;
    }
    Relation& region = db.Add("region");
    auto r_regionkey = region.AddColumn<int32_t>("r_regionkey", 5);
    auto r_name = region.AddColumn<Char<25>>("r_name", 5);
    for (int i = 0; i < 5; ++i) {
      r_regionkey[i] = i;
      r_name[i] = Char<25>::From(kRegions[i]);
    }
  }

  // --- supplier ------------------------------------------------------------
  {
    Relation& supplier = db.Add("supplier");
    const size_t n = card.suppliers;
    auto s_suppkey = supplier.AddColumn<int32_t>("s_suppkey", n);
    auto s_name = supplier.AddColumn<Char<25>>("s_name", n);
    auto s_nationkey = supplier.AddColumn<int32_t>("s_nationkey", n);
    runtime::MorselQueue morsels(n);
    pool.Run(nthreads, [&](size_t) {
      size_t begin, end;
      char buf[32];
      while (morsels.Next(begin, end)) {
        for (size_t i = begin; i < end; ++i) {
          const int64_t key = static_cast<int64_t>(i) + 1;
          Rng rng(SplitMix64(kSeed ^ 0x5001) ^ key);
          s_suppkey[i] = static_cast<int32_t>(key);
          std::snprintf(buf, sizeof(buf), "Supplier#%09lld",
                        static_cast<long long>(key));
          s_name[i] = Char<25>::From(buf);
          s_nationkey[i] = static_cast<int32_t>(rng.Uniform(0, 24));
        }
      }
    });
  }

  // --- customer ------------------------------------------------------------
  {
    Relation& customer = db.Add("customer");
    const size_t n = card.customers;
    auto c_custkey = customer.AddColumn<int32_t>("c_custkey", n);
    auto c_name = customer.AddColumn<Char<25>>("c_name", n);
    auto c_nationkey = customer.AddColumn<int32_t>("c_nationkey", n);
    auto c_mktsegment = customer.AddColumn<Char<10>>("c_mktsegment", n);
    auto c_acctbal = customer.AddColumn<int64_t>("c_acctbal", n);
    runtime::MorselQueue morsels(n);
    pool.Run(nthreads, [&](size_t) {
      size_t begin, end;
      char buf[32];
      while (morsels.Next(begin, end)) {
        for (size_t i = begin; i < end; ++i) {
          const int64_t key = static_cast<int64_t>(i) + 1;
          Rng rng(SplitMix64(kSeed ^ 0xC001) ^ key);
          c_custkey[i] = static_cast<int32_t>(key);
          std::snprintf(buf, sizeof(buf), "Customer#%09lld",
                        static_cast<long long>(key));
          c_name[i] = Char<25>::From(buf);
          c_nationkey[i] = static_cast<int32_t>(rng.Uniform(0, 24));
          c_mktsegment[i] = Char<10>::From(kSegments[rng.Uniform(0, 4)]);
          c_acctbal[i] = rng.Uniform(-99999, 999999);
        }
      }
    });
  }

  // --- part ------------------------------------------------------------
  {
    Relation& part = db.Add("part");
    const size_t n = card.parts;
    auto p_partkey = part.AddColumn<int32_t>("p_partkey", n);
    auto p_name = part.AddColumn<Varchar<55>>("p_name", n);
    auto p_brand = part.AddColumn<Char<10>>("p_brand", n);
    auto p_size = part.AddColumn<int32_t>("p_size", n);
    auto p_retailprice = part.AddColumn<int64_t>("p_retailprice", n);
    runtime::MorselQueue morsels(n);
    pool.Run(nthreads, [&](size_t) {
      size_t begin, end;
      char buf[64];
      while (morsels.Next(begin, end)) {
        for (size_t i = begin; i < end; ++i) {
          const int64_t key = static_cast<int64_t>(i) + 1;
          Rng rng(SplitMix64(kSeed ^ 0xBA27) ^ key);
          p_partkey[i] = static_cast<int32_t>(key);
          // P_NAME: five distinct-ish color words joined by spaces.
          std::string name;
          for (int w = 0; w < 5; ++w) {
            if (w > 0) name += ' ';
            name += kColors[rng.Uniform(0, kColorCount - 1)];
          }
          p_name[i] = Varchar<55>::From(name);
          const int64_t m = rng.Uniform(1, 5);
          const int64_t nb = rng.Uniform(1, 5);
          std::snprintf(buf, sizeof(buf), "Brand#%lld%lld",
                        static_cast<long long>(m),
                        static_cast<long long>(nb));
          p_brand[i] = Char<10>::From(buf);
          p_size[i] = static_cast<int32_t>(rng.Uniform(1, 50));
          p_retailprice[i] = PartRetailPrice(key);
        }
      }
    });
  }

  // --- partsupp ------------------------------------------------------------
  {
    Relation& partsupp = db.Add("partsupp");
    const size_t n = card.parts * 4;
    auto ps_partkey = partsupp.AddColumn<int32_t>("ps_partkey", n);
    auto ps_suppkey = partsupp.AddColumn<int32_t>("ps_suppkey", n);
    auto ps_availqty = partsupp.AddColumn<int32_t>("ps_availqty", n);
    auto ps_supplycost = partsupp.AddColumn<int64_t>("ps_supplycost", n);
    runtime::MorselQueue morsels(card.parts);
    pool.Run(nthreads, [&](size_t) {
      size_t begin, end;
      while (morsels.Next(begin, end)) {
        for (size_t p = begin; p < end; ++p) {
          const int64_t partkey = static_cast<int64_t>(p) + 1;
          Rng rng(SplitMix64(kSeed ^ 0x9501) ^ partkey);
          for (int64_t s = 0; s < 4; ++s) {
            const size_t i = p * 4 + static_cast<size_t>(s);
            ps_partkey[i] = static_cast<int32_t>(partkey);
            ps_suppkey[i] = PartSuppSupplier(partkey, s, card.suppliers);
            ps_availqty[i] = static_cast<int32_t>(rng.Uniform(1, 9999));
            ps_supplycost[i] = rng.Uniform(100, 100000);  // 1.00 .. 1000.00
          }
        }
      }
    });
  }

  // --- orders + lineitem -----------------------------------------------
  // Two passes: first derive each order's lineitem count (pure function of
  // the order's seed), prefix-sum to place lineitems, then fill both tables
  // morsel-parallel.
  {
    const size_t orders_n = card.orders;
    std::vector<int8_t> lines_per_order(orders_n);
    std::vector<int64_t> first_line(orders_n + 1);
    {
      runtime::MorselQueue morsels(orders_n);
      runtime::WorkerPool::Global().Run(nthreads, [&](size_t) {
        size_t begin, end;
        while (morsels.Next(begin, end)) {
          for (size_t o = begin; o < end; ++o) {
            Rng rng(SplitMix64(kSeed ^ 0x08de4) ^
                    (static_cast<int64_t>(o) + 1));
            lines_per_order[o] = static_cast<int8_t>(rng.Uniform(1, 7));
          }
        }
      });
    }
    first_line[0] = 0;
    for (size_t o = 0; o < orders_n; ++o)
      first_line[o + 1] = first_line[o] + lines_per_order[o];
    const size_t lineitem_n = static_cast<size_t>(first_line[orders_n]);

    Relation& orders = db.Add("orders");
    auto o_orderkey = orders.AddColumn<int32_t>("o_orderkey", orders_n);
    auto o_custkey = orders.AddColumn<int32_t>("o_custkey", orders_n);
    auto o_orderdate = orders.AddColumn<int32_t>("o_orderdate", orders_n);
    auto o_totalprice = orders.AddColumn<int64_t>("o_totalprice", orders_n);
    auto o_shippriority =
        orders.AddColumn<int32_t>("o_shippriority", orders_n);

    Relation& lineitem = db.Add("lineitem");
    auto l_orderkey = lineitem.AddColumn<int32_t>("l_orderkey", lineitem_n);
    auto l_partkey = lineitem.AddColumn<int32_t>("l_partkey", lineitem_n);
    auto l_suppkey = lineitem.AddColumn<int32_t>("l_suppkey", lineitem_n);
    auto l_linenumber =
        lineitem.AddColumn<int32_t>("l_linenumber", lineitem_n);
    auto l_quantity = lineitem.AddColumn<int64_t>("l_quantity", lineitem_n);
    auto l_extendedprice =
        lineitem.AddColumn<int64_t>("l_extendedprice", lineitem_n);
    auto l_discount = lineitem.AddColumn<int64_t>("l_discount", lineitem_n);
    auto l_tax = lineitem.AddColumn<int64_t>("l_tax", lineitem_n);
    auto l_returnflag =
        lineitem.AddColumn<Char<1>>("l_returnflag", lineitem_n);
    auto l_linestatus =
        lineitem.AddColumn<Char<1>>("l_linestatus", lineitem_n);
    auto l_shipdate = lineitem.AddColumn<int32_t>("l_shipdate", lineitem_n);
    auto l_commitdate =
        lineitem.AddColumn<int32_t>("l_commitdate", lineitem_n);
    auto l_receiptdate =
        lineitem.AddColumn<int32_t>("l_receiptdate", lineitem_n);

    const int32_t start_date = TpchDates::Start();
    const int32_t current_date = TpchDates::Current();
    const int32_t orders_end = TpchDates::OrdersEnd();

    runtime::MorselQueue morsels(orders_n, 4096);
    pool.Run(nthreads, [&](size_t) {
      size_t begin, end;
      while (morsels.Next(begin, end)) {
        for (size_t o = begin; o < end; ++o) {
          const int64_t orderkey = static_cast<int64_t>(o) + 1;
          Rng rng(SplitMix64(kSeed ^ 0x0D0E5) ^ orderkey);
          o_orderkey[o] = static_cast<int32_t>(orderkey);
          // Spec: only two thirds of customers place orders.
          int64_t ck = rng.Uniform(1, card.customers);
          if (card.customers >= 3 && ck % 3 == 0) ++ck;
          o_custkey[o] = static_cast<int32_t>(ck);
          const int32_t odate = static_cast<int32_t>(
              rng.Uniform(start_date, orders_end));
          o_orderdate[o] = odate;
          o_shippriority[o] = 0;

          int64_t total = 0;  // scale 6 until final rounding
          const int64_t nlines = lines_per_order[o];
          for (int64_t l = 0; l < nlines; ++l) {
            const size_t i = static_cast<size_t>(first_line[o] + l);
            l_orderkey[i] = static_cast<int32_t>(orderkey);
            l_linenumber[i] = static_cast<int32_t>(l + 1);
            const int64_t partkey = rng.Uniform(1, card.parts);
            l_partkey[i] = static_cast<int32_t>(partkey);
            l_suppkey[i] =
                PartSuppSupplier(partkey, rng.Uniform(0, 3), card.suppliers);
            const int64_t qty = rng.Uniform(1, 50);
            l_quantity[i] = qty * 100;  // scale 2
            const int64_t extprice = qty * PartRetailPrice(partkey);
            l_extendedprice[i] = extprice;
            const int64_t disc = rng.Uniform(0, 10);
            l_discount[i] = disc;
            const int64_t tax = rng.Uniform(0, 8);
            l_tax[i] = tax;
            const int32_t ship =
                odate + static_cast<int32_t>(rng.Uniform(1, 121));
            l_shipdate[i] = ship;
            l_commitdate[i] =
                odate + static_cast<int32_t>(rng.Uniform(30, 90));
            const int32_t receipt =
                ship + static_cast<int32_t>(rng.Uniform(1, 30));
            l_receiptdate[i] = receipt;
            l_returnflag[i] = Char<1>::From(
                receipt <= current_date ? (rng.Uniform(0, 1) ? "R" : "A")
                                        : "N");
            l_linestatus[i] = Char<1>::From(ship > current_date ? "O" : "F");
            total += extprice * (100 + tax) * (100 - disc);
          }
          o_totalprice[o] = (total + 5000) / 10000;  // back to scale 2
        }
      }
    });
  }

  return db;
}

}  // namespace vcq::datagen
