#include "datagen/ssb.h"

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/check.h"
#include "datagen/rng.h"
#include "runtime/types.h"
#include "runtime/worker_pool.h"

namespace vcq::datagen {

using runtime::Char;
using runtime::Database;
using runtime::DaysFromCivil;
using runtime::Relation;

namespace {

constexpr uint64_t kSeed = 0x55Bu;

// SSB nations: 25, five per region (simplified fixed mapping).
constexpr const char* kRegionNames[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                        "MIDDLE EAST"};
constexpr const char* kNationNames[] = {
    "ALGERIA",   "ETHIOPIA", "KENYA",   "MOROCCO", "MOZAMBIQUE",  // AFRICA
    "ARGENTINA", "BRAZIL",   "CANADA",  "PERU",    "UNITED STATES",
    "INDIA",     "CHINA",    "JAPAN",   "VIETNAM", "INDONESIA",  // ASIA
    "FRANCE",    "GERMANY",  "ROMANIA", "RUSSIA",  "UNITED KINGDOM",
    "EGYPT",     "IRAN",     "IRAQ",    "JORDAN",  "SAUDI ARABIA"};

int64_t ScaledCount(double sf, int64_t base) {
  return std::max<int64_t>(1, static_cast<int64_t>(std::llround(sf * base)));
}

int32_t NationOf(Rng& rng) { return static_cast<int32_t>(rng.Uniform(0, 24)); }
int32_t RegionOfNation(int32_t nation) { return nation / 5; }

}  // namespace

SsbCardinalities SsbCardinalities::For(double sf) {
  VCQ_CHECK_MSG(sf > 0, "scale factor must be positive");
  SsbCardinalities c;
  c.orders = ScaledCount(sf, 1500000);
  c.customers = ScaledCount(sf, 30000);
  c.suppliers = ScaledCount(sf, 2000);
  c.parts = sf >= 1.0 ? 200000 * (1 + static_cast<int64_t>(std::log2(sf)))
                      : ScaledCount(sf, 200000);
  c.dates = DaysFromCivil(1999, 1, 1) - DaysFromCivil(1992, 1, 1);
  return c;
}

Database GenerateSsb(double scale_factor, int threads) {
  const SsbCardinalities card = SsbCardinalities::For(scale_factor);
  runtime::WorkerPool& pool = runtime::WorkerPool::Global();
  const size_t nthreads =
      threads > 0 ? static_cast<size_t>(threads) : pool.max_threads();

  Database db;
  const int32_t date_start = DaysFromCivil(1992, 1, 1);

  // --- date dimension -----------------------------------------------------
  {
    Relation& date = db.Add("date");
    const size_t n = card.dates;
    auto d_datekey = date.AddColumn<int32_t>("d_datekey", n);
    auto d_year = date.AddColumn<int32_t>("d_year", n);
    auto d_yearmonthnum = date.AddColumn<int32_t>("d_yearmonthnum", n);
    for (size_t i = 0; i < n; ++i) {
      const int32_t day = date_start + static_cast<int32_t>(i);
      const runtime::Civil c = runtime::CivilFromDays(day);
      d_datekey[i] = day;
      d_year[i] = c.year;
      d_yearmonthnum[i] = c.year * 100 + static_cast<int32_t>(c.month);
    }
  }

  // --- customer ------------------------------------------------------------
  {
    Relation& customer = db.Add("customer");
    const size_t n = card.customers;
    auto c_custkey = customer.AddColumn<int32_t>("c_custkey", n);
    auto c_city = customer.AddColumn<Char<10>>("c_city", n);
    auto c_nation = customer.AddColumn<Char<15>>("c_nation", n);
    auto c_region = customer.AddColumn<Char<12>>("c_region", n);
    runtime::MorselQueue morsels(n);
    pool.Run(nthreads, [&](size_t) {
      size_t begin, end;
      char buf[16];
      while (morsels.Next(begin, end)) {
        for (size_t i = begin; i < end; ++i) {
          Rng rng(SplitMix64(kSeed ^ 0xC) ^ (i + 1));
          c_custkey[i] = static_cast<int32_t>(i) + 1;
          const int32_t nation = NationOf(rng);
          c_nation[i] = Char<15>::From(kNationNames[nation]);
          c_region[i] = Char<12>::From(kRegionNames[RegionOfNation(nation)]);
          std::snprintf(buf, sizeof(buf), "CITY%02d%lld", nation,
                        static_cast<long long>(rng.Uniform(0, 9)));
          c_city[i] = Char<10>::From(buf);
        }
      }
    });
  }

  // --- supplier ------------------------------------------------------------
  {
    Relation& supplier = db.Add("supplier");
    const size_t n = card.suppliers;
    auto s_suppkey = supplier.AddColumn<int32_t>("s_suppkey", n);
    auto s_city = supplier.AddColumn<Char<10>>("s_city", n);
    auto s_nation = supplier.AddColumn<Char<15>>("s_nation", n);
    auto s_region = supplier.AddColumn<Char<12>>("s_region", n);
    runtime::MorselQueue morsels(n);
    pool.Run(nthreads, [&](size_t) {
      size_t begin, end;
      char buf[16];
      while (morsels.Next(begin, end)) {
        for (size_t i = begin; i < end; ++i) {
          Rng rng(SplitMix64(kSeed ^ 0x5) ^ (i + 1));
          s_suppkey[i] = static_cast<int32_t>(i) + 1;
          const int32_t nation = NationOf(rng);
          s_nation[i] = Char<15>::From(kNationNames[nation]);
          s_region[i] = Char<12>::From(kRegionNames[RegionOfNation(nation)]);
          std::snprintf(buf, sizeof(buf), "CITY%02d%lld", nation,
                        static_cast<long long>(rng.Uniform(0, 9)));
          s_city[i] = Char<10>::From(buf);
        }
      }
    });
  }

  // --- part ------------------------------------------------------------
  {
    Relation& part = db.Add("part");
    const size_t n = card.parts;
    auto p_partkey = part.AddColumn<int32_t>("p_partkey", n);
    auto p_mfgr = part.AddColumn<Char<6>>("p_mfgr", n);
    auto p_category = part.AddColumn<Char<7>>("p_category", n);
    auto p_brand1 = part.AddColumn<Char<9>>("p_brand1", n);
    runtime::MorselQueue morsels(n);
    pool.Run(nthreads, [&](size_t) {
      size_t begin, end;
      char buf[16];
      while (morsels.Next(begin, end)) {
        for (size_t i = begin; i < end; ++i) {
          Rng rng(SplitMix64(kSeed ^ 0xBA27) ^ (i + 1));
          p_partkey[i] = static_cast<int32_t>(i) + 1;
          const int64_t mfgr = rng.Uniform(1, 5);
          const int64_t cat = rng.Uniform(1, 5);
          const int64_t brand = rng.Uniform(1, 40);
          std::snprintf(buf, sizeof(buf), "MFGR#%lld",
                        static_cast<long long>(mfgr));
          p_mfgr[i] = Char<6>::From(buf);
          std::snprintf(buf, sizeof(buf), "MFGR#%lld%lld",
                        static_cast<long long>(mfgr),
                        static_cast<long long>(cat));
          p_category[i] = Char<7>::From(buf);
          std::snprintf(buf, sizeof(buf), "MFGR#%lld%lld%02lld",
                        static_cast<long long>(mfgr),
                        static_cast<long long>(cat),
                        static_cast<long long>(brand));
          p_brand1[i] = Char<9>::From(buf);
        }
      }
    });
  }

  // --- lineorder ------------------------------------------------------------
  {
    const size_t orders_n = card.orders;
    std::vector<int8_t> lines_per_order(orders_n);
    std::vector<int64_t> first_line(orders_n + 1);
    {
      runtime::MorselQueue morsels(orders_n);
      pool.Run(nthreads, [&](size_t) {
        size_t begin, end;
        while (morsels.Next(begin, end)) {
          for (size_t o = begin; o < end; ++o) {
            Rng rng(SplitMix64(kSeed ^ 0x10) ^ (o + 1));
            lines_per_order[o] = static_cast<int8_t>(rng.Uniform(1, 7));
          }
        }
      });
    }
    first_line[0] = 0;
    for (size_t o = 0; o < orders_n; ++o)
      first_line[o + 1] = first_line[o] + lines_per_order[o];
    const size_t n = static_cast<size_t>(first_line[orders_n]);

    Relation& lo = db.Add("lineorder");
    auto lo_orderkey = lo.AddColumn<int32_t>("lo_orderkey", n);
    auto lo_custkey = lo.AddColumn<int32_t>("lo_custkey", n);
    auto lo_partkey = lo.AddColumn<int32_t>("lo_partkey", n);
    auto lo_suppkey = lo.AddColumn<int32_t>("lo_suppkey", n);
    auto lo_orderdate = lo.AddColumn<int32_t>("lo_orderdate", n);
    auto lo_quantity = lo.AddColumn<int64_t>("lo_quantity", n);
    auto lo_extendedprice = lo.AddColumn<int64_t>("lo_extendedprice", n);
    auto lo_discount = lo.AddColumn<int64_t>("lo_discount", n);
    auto lo_revenue = lo.AddColumn<int64_t>("lo_revenue", n);
    auto lo_supplycost = lo.AddColumn<int64_t>("lo_supplycost", n);

    runtime::MorselQueue morsels(orders_n, 4096);
    pool.Run(nthreads, [&](size_t) {
      size_t begin, end;
      while (morsels.Next(begin, end)) {
        for (size_t o = begin; o < end; ++o) {
          Rng rng(SplitMix64(kSeed ^ 0x70) ^ (o + 1));
          const int32_t orderkey = static_cast<int32_t>(o) + 1;
          const int32_t custkey =
              static_cast<int32_t>(rng.Uniform(1, card.customers));
          const int32_t odate = date_start + static_cast<int32_t>(rng.Uniform(
                                                 0, card.dates - 1));
          const int64_t nlines = lines_per_order[o];
          for (int64_t l = 0; l < nlines; ++l) {
            const size_t i = static_cast<size_t>(first_line[o] + l);
            lo_orderkey[i] = orderkey;
            lo_custkey[i] = custkey;
            lo_partkey[i] =
                static_cast<int32_t>(rng.Uniform(1, card.parts));
            lo_suppkey[i] =
                static_cast<int32_t>(rng.Uniform(1, card.suppliers));
            lo_orderdate[i] = odate;
            const int64_t qty = rng.Uniform(1, 50);
            lo_quantity[i] = qty;  // SSB quantity is integral (scale 0)
            const int64_t extprice = qty * rng.Uniform(9000, 200000);
            lo_extendedprice[i] = extprice;
            const int64_t disc = rng.Uniform(0, 10);
            lo_discount[i] = disc;
            lo_revenue[i] = extprice * (100 - disc) / 100;
            lo_supplycost[i] = extprice * 6 / 10;
          }
        }
      }
    });
  }

  return db;
}

}  // namespace vcq::datagen
