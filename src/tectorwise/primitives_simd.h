#ifndef VCQ_TECTORWISE_PRIMITIVES_SIMD_H_
#define VCQ_TECTORWISE_PRIMITIVES_SIMD_H_

#include <cstddef>
#include <cstdint>

#include "runtime/hashmap.h"
#include "tectorwise/core.h"

// AVX-512 variants of the hot Tectorwise primitives (paper §5). Selection
// uses masked compare + COMPRESSSTORE (§5.1: "quite easy" with AVX-512,
// unlike AVX2); probing uses 64-bit gathers into the hash-table directory
// (§5.2); hashing is a data-parallel Murmur2 (§5.2).
//
// All functions here are compiled with per-function target attributes; call
// them only when CpuInfo::HasAvx512() is true. Scalar semantics are
// bit-identical (tests assert this property over random inputs).

namespace vcq::tectorwise::simd {

/// True when this build/OS/CPU combination can run the kernels below.
bool Available();

// Dense selections: col OP konst over positions [0, n).
size_t SelLessI32Dense(size_t n, const int32_t* col, int32_t k, pos_t* out);
size_t SelLessEqI32Dense(size_t n, const int32_t* col, int32_t k, pos_t* out);
size_t SelGreaterI32Dense(size_t n, const int32_t* col, int32_t k,
                          pos_t* out);
size_t SelGreaterEqI32Dense(size_t n, const int32_t* col, int32_t k,
                            pos_t* out);
size_t SelEqI32Dense(size_t n, const int32_t* col, int32_t k, pos_t* out);
size_t SelBetweenI32Dense(size_t n, const int32_t* col, int32_t lo,
                          int32_t hi, pos_t* out);

size_t SelLessI64Dense(size_t n, const int64_t* col, int64_t k, pos_t* out);
size_t SelLessEqI64Dense(size_t n, const int64_t* col, int64_t k, pos_t* out);
size_t SelGreaterI64Dense(size_t n, const int64_t* col, int64_t k,
                          pos_t* out);
size_t SelGreaterEqI64Dense(size_t n, const int64_t* col, int64_t k,
                            pos_t* out);
size_t SelEqI64Dense(size_t n, const int64_t* col, int64_t k, pos_t* out);
size_t SelBetweenI64Dense(size_t n, const int64_t* col, int64_t lo,
                          int64_t hi, pos_t* out);

// Sparse selections (input selection vector -> gathers; §5.1's
// "sparse data loading").
size_t SelLessI32Sparse(size_t n, const pos_t* sel, const int32_t* col,
                        int32_t k, pos_t* out);
size_t SelLessEqI32Sparse(size_t n, const pos_t* sel, const int32_t* col,
                          int32_t k, pos_t* out);
size_t SelGreaterI32Sparse(size_t n, const pos_t* sel, const int32_t* col,
                           int32_t k, pos_t* out);
size_t SelGreaterEqI32Sparse(size_t n, const pos_t* sel, const int32_t* col,
                             int32_t k, pos_t* out);
size_t SelBetweenI32Sparse(size_t n, const pos_t* sel, const int32_t* col,
                           int32_t lo, int32_t hi, pos_t* out);
size_t SelLessI64Sparse(size_t n, const pos_t* sel, const int64_t* col,
                        int64_t k, pos_t* out);
size_t SelBetweenI64Sparse(size_t n, const pos_t* sel, const int64_t* col,
                           int64_t lo, int64_t hi, pos_t* out);

// Batch compaction: out[k] = col[sel[k]] via per-16/8-lane masked loads +
// COMPRESSSTORE — only cache lines containing survivors are touched, so the
// cost scales with the number of live tuples, not the vector size. Selection
// vectors are position-sorted (all producers emit them ascending), which is
// what lets the kernels build one lane mask per block. Unlike the other
// kernels in this header these fall back to the scalar CompactCopy
// internally when AVX-512 is unavailable, so they are safe to call on any
// host (the runtime-dispatch contract of the Compactor).
void CompactI32(size_t n, const pos_t* sel, const int32_t* col, int32_t* out);
void CompactI64(size_t n, const pos_t* sel, const int64_t* col, int64_t* out);

// Murmur2 hashing, compacted output (see HashCompact in primitives.h).
void HashI32Compact(size_t n, const pos_t* sel, const int32_t* col,
                    uint64_t* hashes, pos_t* pos);
void HashI64Compact(size_t n, const pos_t* sel, const int64_t* col,
                    uint64_t* hashes, pos_t* pos);
void RehashI32Compact(size_t n, const pos_t* pos, const int32_t* col,
                      uint64_t* hashes);

/// findCandidates with SIMD gathers of the directory words + tag test.
size_t JoinCandidates(size_t n, const uint64_t* hashes, const pos_t* pos,
                      const runtime::Hashmap& ht,
                      runtime::Hashmap::EntryHeader** cand, pos_t* cand_pos);

/// Prefetch-staged findCandidates (relaxed operator fusion, paper §9.1):
/// prefetches the directory words, runs the SIMD gather loop against the
/// now-cached directory, then prefetches the candidate entries for the
/// key-compare primitives that follow. Output identical to JoinCandidates.
size_t JoinCandidatesStaged(size_t n, const uint64_t* hashes,
                            const pos_t* pos, const runtime::Hashmap& ht,
                            runtime::Hashmap::EntryHeader** cand,
                            pos_t* cand_pos);

}  // namespace vcq::tectorwise::simd

#endif  // VCQ_TECTORWISE_PRIMITIVES_SIMD_H_
