#include "tectorwise/plan.h"

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <set>

#include "runtime/trace.h"
#include "runtime/tuner.h"
#include "runtime/worker_pool.h"

namespace vcq::tectorwise {

ExecContext MakeContext(const runtime::QueryOptions& opt) {
  ExecContext ctx;
  ctx.vector_size = opt.vector_size;
  ctx.use_simd = opt.simd;
  ctx.compaction = ToPolicy(opt.compaction);
  ctx.compaction_threshold = opt.compaction_threshold;
  ctx.build_mode = opt.build_mode;
  ctx.rof = opt.rof;
  ctx.cancel = opt.cancel;
  ctx.ledger = opt.ledger;
  ctx.fault = opt.fault;
  ctx.spill = opt.spill_manager;
  ctx.knobs = opt.knobs;
  ctx.telemetry = opt.telemetry;
  ctx.trace = opt.trace_sink;
  return ctx;
}

namespace {

/// The plan context with node `index`'s tuner choices overlaid (see
/// runtime/tuner.h). Every operator that reads these fields copies the
/// context at construction, so a per-node local is safe — and required:
/// all workers derive the same overlay from the shared KnobChoices, which
/// keeps per-Shared agreement (e.g. HashJoin build mode) intact.
ExecContext NodeContext(const ExecContext& base, uint32_t index) {
  if (base.knobs == nullptr && base.trace == nullptr) return base;
  using runtime::KnobChoices;
  using runtime::KnobKind;
  ExecContext ctx = base;
  // Node scope for deep instrumentation points (per-node spill-byte
  // attribution in hash_join/hash_group).
  ctx.site = index;
  if (base.knobs == nullptr) return ctx;
  if (const int64_t v = base.knobs->Get(index, KnobKind::kCompaction);
      v != KnobChoices::kUnset) {
    if (v == runtime::kCompactionNever) {
      ctx.compaction = CompactionPolicy::kNever;
    } else if (v == runtime::kCompactionAlways) {
      ctx.compaction = CompactionPolicy::kAlways;
    } else {
      ctx.compaction = CompactionPolicy::kAdaptive;
      ctx.compaction_threshold = 1.0 / static_cast<double>(v);
    }
  }
  if (const int64_t v = base.knobs->Get(index, KnobKind::kBuildMode);
      v != KnobChoices::kUnset) {
    ctx.build_mode = v == 0 ? runtime::BuildMode::kCas
                            : runtime::BuildMode::kPartitioned;
  }
  if (const int64_t v = base.knobs->Get(index, KnobKind::kRof);
      v != KnobChoices::kUnset) {
    ctx.rof = v != 0;
  }
  return ctx;
}

/// Transparent per-node timing shim (trace runs only): forwards Next()
/// and the selection vector unchanged, accumulating busy ns / rows /
/// batches, and records one span per node per worker when the stream
/// ends (or at destruction, for drains that never reach end-of-stream).
/// Results are untouched by construction — the shim owns no data path.
class TracedOperator : public Operator {
 public:
  TracedOperator(std::unique_ptr<Operator> inner,
                 runtime::QueryTrace* trace, uint32_t lane, uint32_t site,
                 std::string label)
      : inner_(std::move(inner)),
        trace_(trace),
        lane_(lane),
        site_(site),
        label_(std::move(label)) {}

  ~TracedOperator() override { Finish(runtime::QueryTrace::NowNs()); }

  size_t Next() override {
    const uint64_t t0 = runtime::QueryTrace::NowNs();
    if (first_ns_ == 0) first_ns_ = t0;
    const size_t n = inner_->Next();
    sel_ = inner_->sel();
    const uint64_t t1 = runtime::QueryTrace::NowNs();
    busy_ns_ += t1 - t0;
    if (n == kEndOfStream) {
      Finish(t1);
    } else if (n != 0) {
      rows_ += n;
      ++batches_;
    }
    return n;
  }

 private:
  void Finish(uint64_t end_ns) {
    if (finished_ || first_ns_ == 0) return;
    finished_ = true;
    runtime::TraceSpan span;
    span.cat = "operator";
    span.name = label_;
    span.start_ns = first_ns_;
    span.end_ns = end_ns;
    span.site = site_;
    span.tuples = rows_;
    span.calls = batches_;
    trace_->AddLaneSpan(lane_, std::move(span));
    trace_->RecordOperator(site_, busy_ns_, rows_, batches_);
  }

  std::unique_ptr<Operator> inner_;
  runtime::QueryTrace* trace_;
  uint32_t lane_;
  uint32_t site_;
  std::string label_;
  uint64_t first_ns_ = 0;
  uint64_t busy_ns_ = 0;
  uint64_t rows_ = 0;
  uint64_t batches_ = 0;
  bool finished_ = false;
};

}  // namespace

std::unique_ptr<Operator> PlanNode::InstantiateNode(
    const PlanNode& node, plan_internal::Workspace& ws) {
  std::unique_ptr<Operator> op = node.Instantiate(ws);
  if (ws.ctx.trace == nullptr) return op;
  return std::make_unique<TracedOperator>(
      std::move(op), ws.ctx.trace, static_cast<uint32_t>(ws.worker_id),
      node.index_, node.label_);
}

// ---------------------------------------------------------------------------
// PlanNode declaration helpers
// ---------------------------------------------------------------------------

ColumnRef PlanNode::Define(std::string name, size_t elem_size,
                           plan_internal::CompactRegistrar registrar) {
  VCQ_CHECK_MSG(builder_ != nullptr,
                "plan node declared after Build() consumed its builder");
  return builder_->AddColumn(plan_internal::ColumnInfo{
      std::move(name), index_, elem_size, std::move(registrar)});
}

void PlanNode::Consume(ColumnRef ref) {
  VCQ_CHECK_MSG(builder_ != nullptr,
                "plan node declared after Build() consumed its builder");
  VCQ_CHECK_MSG(ref.valid(), "consumed column ref is not initialized");
  consumed_.push_back(ref.id);
}

void PlanNode::UseParam(std::string name, bool string_access) {
  VCQ_CHECK_MSG(builder_ != nullptr,
                "plan node declared after Build() consumed its builder");
  builder_->param_uses_.push_back(ParamUse{std::move(name), string_access});
}

std::string PlanNode::ColName(ColumnRef ref) const {
  VCQ_CHECK_MSG(builder_ != nullptr,
                "plan node declared after Build() consumed its builder");
  VCQ_CHECK_MSG(ref.valid(), "column ref is not initialized");
  return builder_->columns_[ref.id].name;
}

// ---------------------------------------------------------------------------
// Node instantiation
// ---------------------------------------------------------------------------

std::shared_ptr<void> ScanNode::MakeShared(
    const runtime::QueryOptions& opt) const {
  return std::make_shared<Scan::Shared>(relation_->tuple_count(),
                                        opt.morsel_grain);
}

std::unique_ptr<Operator> ScanNode::Instantiate(
    plan_internal::Workspace& ws) const {
  auto* shared = static_cast<Scan::Shared*>((*ws.shared)[index_].get());
  auto scan = std::make_unique<Scan>(shared, relation_, ws.ctx.vector_size,
                                     ws.ctx.cancel, ws.ctx.fault);
  for (const auto& add : cols_) add(*scan, ws);
  return scan;
}

std::unique_ptr<Operator> SelectNode::Instantiate(
    plan_internal::Workspace& ws) const {
  const ExecContext ctx = NodeContext(ws.ctx, index_);
  auto select =
      std::make_unique<Select>(InstantiateNode(*children_[0], ws), ctx);
  for (const auto& make : steps_) select->AddStep(make(ctx, ws));
  // The derived compaction registrations: every column produced at or
  // below this Select and consumed above it.
  for (const uint32_t id : compact_) {
    (*ws.columns)[id].compact(ctx, select->compactor(), ws.slots[id]);
  }
  return select;
}

std::unique_ptr<Operator> MapNode::Instantiate(
    plan_internal::Workspace& ws) const {
  auto map = std::make_unique<::vcq::tectorwise::Map>(
      InstantiateNode(*children_[0], ws), ws.ctx.vector_size);
  for (const auto& add : steps_) add(*map, ws);
  return map;
}

std::shared_ptr<void> JoinNode::MakeShared(
    const runtime::QueryOptions& opt) const {
  // The build's wall span is recorded under this node's index — the
  // per-node reward for the join's build-mode knob.
  return std::make_shared<HashJoin::Shared>(
      opt.threads, runtime::JoinBuildEnv{opt.cancel, opt.fault, opt.ledger,
                                         opt.telemetry, index_});
}

std::unique_ptr<Operator> JoinNode::Instantiate(
    plan_internal::Workspace& ws) const {
  const ExecContext ctx = NodeContext(ws.ctx, index_);
  auto build = InstantiateNode(*children_[0], ws);
  auto probe = InstantiateNode(*children_[1], ws);
  auto* shared = static_cast<HashJoin::Shared*>((*ws.shared)[index_].get());
  auto join = std::make_unique<HashJoin>(shared, std::move(build),
                                         std::move(probe), ctx);
  FieldMap fields;
  for (const auto& configure : config_)
    configure(ctx, *join, ws, fields);
  return join;
}

std::shared_ptr<void> GroupNode::MakeShared(
    const runtime::QueryOptions& opt) const {
  return std::make_shared<HashGroup::Shared>(opt.threads);
}

std::unique_ptr<Operator> GroupNode::Instantiate(
    plan_internal::Workspace& ws) const {
  const ExecContext ctx = NodeContext(ws.ctx, index_);
  auto* shared = static_cast<HashGroup::Shared*>((*ws.shared)[index_].get());
  auto group = std::make_unique<HashGroup>(shared, ws.worker_id,
                                           ws.worker_count,
                                           InstantiateNode(*children_[0], ws),
                                           ctx);
  for (const auto& configure : config_) configure(*group, ws);
  group->SetDenseOutput(dense_output_.value_or(
      ctx.compaction != CompactionPolicy::kNever));
  return group;
}

ColumnRef GroupNode::Sum(ColumnRef col) {
  Consume(col);
  const ColumnRef out = Define("sum(" + ColName(col) + ")", sizeof(int64_t),
                               plan_internal::MakeRegistrar<int64_t>());
  Detail("agg: sum(" + ColName(col) + ")");
  config_.push_back([col, id = out.id](HashGroup& group,
                                       plan_internal::Workspace& ws) {
    const size_t offset = group.AddSumAgg(ws.slots[col.id]);
    ws.slots[id] = group.AddOutput<int64_t>(offset);
  });
  return out;
}

ColumnRef GroupNode::Count() {
  const ColumnRef out = Define("count(*)", sizeof(int64_t),
                               plan_internal::MakeRegistrar<int64_t>());
  Detail("agg: count(*)");
  config_.push_back(
      [id = out.id](HashGroup& group, plan_internal::Workspace& ws) {
        const size_t offset = group.AddCountAgg();
        ws.slots[id] = group.AddOutput<int64_t>(offset);
      });
  return out;
}

ColumnRef GroupNode::Min(ColumnRef col) {
  Consume(col);
  const ColumnRef out = Define("min(" + ColName(col) + ")", sizeof(int64_t),
                               plan_internal::MakeRegistrar<int64_t>());
  Detail("agg: min(" + ColName(col) + ")");
  config_.push_back([col, id = out.id](HashGroup& group,
                                       plan_internal::Workspace& ws) {
    const size_t offset = group.AddMinAgg(ws.slots[col.id]);
    ws.slots[id] = group.AddOutput<int64_t>(offset);
  });
  return out;
}

ColumnRef GroupNode::Max(ColumnRef col) {
  Consume(col);
  const ColumnRef out = Define("max(" + ColName(col) + ")", sizeof(int64_t),
                               plan_internal::MakeRegistrar<int64_t>());
  Detail("agg: max(" + ColName(col) + ")");
  config_.push_back([col, id = out.id](HashGroup& group,
                                       plan_internal::Workspace& ws) {
    const size_t offset = group.AddMaxAgg(ws.slots[col.id]);
    ws.slots[id] = group.AddOutput<int64_t>(offset);
  });
  return out;
}

GroupNode& GroupNode::DensePartitionOutput(bool on) {
  dense_output_ = on;
  Detail(std::string("dense partition output: ") + (on ? "on" : "off"));
  return *this;
}

ColumnRef FixedAggNode::Sum(ColumnRef col, std::string name) {
  Consume(col);
  const ColumnRef out = Define(std::move(name), sizeof(int64_t),
                               plan_internal::MakeRegistrar<int64_t>());
  Detail("agg: sum(" + ColName(col) + ")");
  sums_.push_back(
      AggDecl{col.id, out.id, FixedAggregation::AggKind::kSum, true});
  return out;
}

ColumnRef FixedAggNode::Count(std::string name) {
  const ColumnRef out = Define(std::move(name), sizeof(int64_t),
                               plan_internal::MakeRegistrar<int64_t>());
  Detail("agg: count(*)");
  sums_.push_back(AggDecl{0, out.id, FixedAggregation::AggKind::kCount, false});
  return out;
}

ColumnRef FixedAggNode::Min(ColumnRef col, std::string name) {
  Consume(col);
  const ColumnRef out = Define(std::move(name), sizeof(int64_t),
                               plan_internal::MakeRegistrar<int64_t>());
  Detail("agg: min(" + ColName(col) + ")");
  sums_.push_back(
      AggDecl{col.id, out.id, FixedAggregation::AggKind::kMin, true});
  return out;
}

ColumnRef FixedAggNode::Max(ColumnRef col, std::string name) {
  Consume(col);
  const ColumnRef out = Define(std::move(name), sizeof(int64_t),
                               plan_internal::MakeRegistrar<int64_t>());
  Detail("agg: max(" + ColName(col) + ")");
  sums_.push_back(
      AggDecl{col.id, out.id, FixedAggregation::AggKind::kMax, true});
  return out;
}

std::unique_ptr<Operator> FixedAggNode::Instantiate(
    plan_internal::Workspace& ws) const {
  auto agg =
      std::make_unique<FixedAggregation>(InstantiateNode(*children_[0], ws));
  for (const AggDecl& decl : sums_) {
    switch (decl.kind) {
      case FixedAggregation::AggKind::kSum:
        ws.slots[decl.out] = agg->AddSumI64(ws.slots[decl.in]);
        break;
      case FixedAggregation::AggKind::kCount:
        ws.slots[decl.out] = agg->AddCount();
        break;
      case FixedAggregation::AggKind::kMin:
        ws.slots[decl.out] = agg->AddMinI64(ws.slots[decl.in]);
        break;
      case FixedAggregation::AggKind::kMax:
        ws.slots[decl.out] = agg->AddMaxI64(ws.slots[decl.in]);
        break;
    }
  }
  return agg;
}

ColumnRef OrderedAggNode::Key(ColumnRef col) {
  Consume(col);
  const ColumnRef out = Define(ColName(col), 1,
                               plan_internal::MakeRegistrar<runtime::Char<1>>());
  Detail("key: " + ColName(col));
  keys_.push_back(KeyDecl{col.id, out.id});
  return out;
}

ColumnRef OrderedAggNode::Sum(ColumnRef col) {
  Consume(col);
  const ColumnRef out = Define("sum(" + ColName(col) + ")", sizeof(int64_t),
                               plan_internal::MakeRegistrar<int64_t>());
  Detail("agg: sum(" + ColName(col) + ")");
  aggs_.push_back(AggDecl{col, out.id});
  return out;
}

ColumnRef OrderedAggNode::Count() {
  const ColumnRef out = Define("count(*)", sizeof(int64_t),
                               plan_internal::MakeRegistrar<int64_t>());
  Detail("agg: count(*)");
  aggs_.push_back(AggDecl{ColumnRef{}, out.id});
  return out;
}

std::unique_ptr<Operator> OrderedAggNode::Instantiate(
    plan_internal::Workspace& ws) const {
  auto agg = std::make_unique<OrderedAggregation>(
      InstantiateNode(*children_[0], ws), ws.ctx, max_groups_);
  for (const KeyDecl& key : keys_)
    ws.slots[key.out] = agg->AddKeyChar1(ws.slots[key.in]);
  for (const AggDecl& decl : aggs_) {
    ws.slots[decl.out] = decl.in.valid()
                             ? agg->AddSumI64(ws.slots[decl.in.id])
                             : agg->AddCount();
  }
  return agg;
}

// ---------------------------------------------------------------------------
// PlanBuilder
// ---------------------------------------------------------------------------

ColumnRef PlanBuilder::AddColumn(plan_internal::ColumnInfo info) {
  columns_.push_back(std::move(info));
  return ColumnRef{static_cast<uint32_t>(columns_.size() - 1)};
}

PlanNode& PlanBuilder::Register(std::unique_ptr<PlanNode> node,
                                std::initializer_list<PlanNode*> children) {
  node->index_ = static_cast<uint32_t>(nodes_.size());
  for (PlanNode* child : children) {
    VCQ_CHECK_MSG(child->builder_ == this,
                  "child node belongs to another builder");
    VCQ_CHECK_MSG(child->parent_ == -1,
                  "plan node already consumed by another parent");
    child->parent_ = static_cast<int>(node->index_);
    node->children_.push_back(child);
  }
  nodes_.push_back(std::move(node));
  return *nodes_.back();
}

ScanNode& PlanBuilder::Scan(const runtime::Relation& relation,
                            std::string table) {
  auto node = std::unique_ptr<ScanNode>(
      new ScanNode(this, &relation, std::move(table)));
  return static_cast<ScanNode&>(Register(std::move(node), {}));
}

SelectNode& PlanBuilder::Select(PlanNode& child) {
  auto node = std::unique_ptr<SelectNode>(new SelectNode(this));
  return static_cast<SelectNode&>(Register(std::move(node), {&child}));
}

MapNode& PlanBuilder::Map(PlanNode& child) {
  auto node = std::unique_ptr<MapNode>(new MapNode(this));
  return static_cast<MapNode&>(Register(std::move(node), {&child}));
}

JoinNode& PlanBuilder::HashJoin(PlanNode& build, PlanNode& probe) {
  auto node = std::unique_ptr<JoinNode>(new JoinNode(this));
  return static_cast<JoinNode&>(Register(std::move(node), {&build, &probe}));
}

GroupNode& PlanBuilder::HashGroup(PlanNode& child) {
  auto node = std::unique_ptr<GroupNode>(new GroupNode(this));
  return static_cast<GroupNode&>(Register(std::move(node), {&child}));
}

FixedAggNode& PlanBuilder::FixedAgg(PlanNode& child) {
  auto node = std::unique_ptr<FixedAggNode>(new FixedAggNode(this));
  return static_cast<FixedAggNode&>(Register(std::move(node), {&child}));
}

OrderedAggNode& PlanBuilder::OrderedAgg(PlanNode& child, size_t max_groups) {
  auto node =
      std::unique_ptr<OrderedAggNode>(new OrderedAggNode(this, max_groups));
  return static_cast<OrderedAggNode&>(Register(std::move(node), {&child}));
}

namespace {

/// True when batches flow through `node` with positions intact (same
/// underlying column buffers, possibly narrowed by a selection vector).
bool IsPassThrough(NodeKind kind) {
  return kind == NodeKind::kSelect || kind == NodeKind::kMap;
}

}  // namespace

Plan PlanBuilder::Build(PlanNode& root, std::vector<ColumnRef> result,
                        bool selection_aware_collector) {
  VCQ_CHECK_MSG(root.builder_ == this, "root belongs to another builder");
  VCQ_CHECK_MSG(root.parent_ == -1, "root is consumed by another node");

  // Every declared node must be reachable from the root.
  std::vector<bool> reachable(nodes_.size(), false);
  std::vector<const PlanNode*> stack = {&root};
  while (!stack.empty()) {
    const PlanNode* node = stack.back();
    stack.pop_back();
    reachable[node->index_] = true;
    for (const PlanNode* child : node->children_) stack.push_back(child);
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    VCQ_CHECK_MSG(reachable[i], "plan node is not reachable from the root");
  }
  for (const auto& node : nodes_) {
    if (node->kind_ == NodeKind::kHashJoin) {
      VCQ_CHECK_MSG(static_cast<JoinNode*>(node.get())->has_key_,
                    "hash-join node declares no Key()");
    }
  }
  // Collectors reading root batches densely (Batch::Column()[k]) would
  // silently misread a Select/Map root that emits selection vectors;
  // rematerializing roots always publish dense batches. Collectors that go
  // through Batch::Value exclusively opt out (Run hands them the root's
  // selection vector).
  if (!selection_aware_collector) {
    VCQ_CHECK_MSG(!IsPassThrough(root.kind_) && root.kind_ != NodeKind::kScan,
                  "plan root must be a join/group/aggregation node (dense "
                  "batches); wrap streaming roots in an aggregation or pass "
                  "selection_aware_collector");
  }

  // Column visibility: a consumed column must come from the consumer's own
  // subtree, and every operator strictly between producer and consumer must
  // preserve batch positions (Select/Map). Reading e.g. a scan column above
  // a join would silently misalign positions — the builder rejects it.
  const auto parent = [&](const PlanNode* node) -> const PlanNode* {
    return node->parent_ >= 0 ? nodes_[node->parent_].get() : nullptr;
  };
  const auto check_flow = [&](uint32_t col, const PlanNode* consumer) {
    // consumer == nullptr denotes the result sink above the root.
    const PlanNode* producer = nodes_[columns_[col].producer].get();
    if (producer == consumer) return;
    for (const PlanNode* node = parent(producer); node != consumer;
         node = parent(node)) {
      VCQ_CHECK_MSG(node != nullptr,
                    "column is not visible to its consumer (crosses the "
                    "plan root)");
      VCQ_CHECK_MSG(IsPassThrough(node->kind_),
                    "column consumed across a rematerializing operator; "
                    "re-emit it as a join/group output");
    }
  };
  for (const auto& node : nodes_) {
    for (const uint32_t col : node->consumed_) check_flow(col, node.get());
  }
  for (const ColumnRef ref : result) {
    VCQ_CHECK_MSG(ref.valid(), "result column ref is not initialized");
    check_flow(ref.id, nullptr);
  }

  // Derive each Select's compaction registrations from slot usage.
  for (const auto& node : nodes_) {
    if (node->kind_ != NodeKind::kSelect) continue;
    auto* select = static_cast<SelectNode*>(node.get());
    std::set<uint32_t> needed;
    for (const PlanNode* a = parent(select); a != nullptr; a = parent(a)) {
      needed.insert(a->consumed_.begin(), a->consumed_.end());
    }
    for (const ColumnRef ref : result) needed.insert(ref.id);

    std::vector<bool> below(nodes_.size(), false);
    stack = {select};
    while (!stack.empty()) {
      const PlanNode* n = stack.back();
      stack.pop_back();
      below[n->index_] = true;
      for (const PlanNode* child : n->children_) stack.push_back(child);
    }
    select->compact_.clear();
    for (const uint32_t id : needed) {
      if (below[columns_[id].producer]) select->compact_.push_back(id);
    }
  }

  Plan plan;
  plan.name_ = std::move(name_);
  plan.nodes_ = std::move(nodes_);
  plan.columns_ = std::move(columns_);
  plan.root_ = root.index_;
  plan.result_.reserve(result.size());
  for (const ColumnRef ref : result) plan.result_.push_back(ref.id);
  plan.param_uses_ = std::move(param_uses_);
  // The scheduler's shortest-remaining-region hint: total scan input.
  for (const auto& node : plan.nodes_) {
    if (node->kind_ == NodeKind::kScan) {
      plan.work_hint_ +=
          static_cast<const ScanNode*>(node.get())->relation_->tuple_count();
    }
  }
  // The builder is consumed; declaration calls on retained node references
  // must fail cleanly instead of dereferencing a dead builder.
  for (const auto& node : plan.nodes_) node->builder_ = nullptr;
  return plan;
}

// ---------------------------------------------------------------------------
// Plan execution
// ---------------------------------------------------------------------------

void Plan::Run(const runtime::QueryOptions& opt,
               const runtime::QueryParams& params,
               const Collector& collect) const {
  const ExecContext ctx = MakeContext(opt);
  std::vector<std::shared_ptr<void>> shared(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    shared[i] = nodes_[i]->MakeShared(opt);
  }

  std::vector<bool> is_result(columns_.size(), false);
  for (const uint32_t id : result_) is_result[id] = true;

  std::mutex mu;
  // Trees stay alive until every worker has finished: probe pipelines read
  // hash-table entries owned by other workers' operators.
  std::vector<std::unique_ptr<Operator>> roots(opt.threads);
  runtime::PoolFor(opt).Run(opt, work_hint_, [&](size_t wid) {
    plan_internal::Workspace ws{ctx,     wid,     opt.threads, &columns_,
                                &shared, &params, {}};
    ws.slots.resize(columns_.size(), nullptr);
    // Through the dispatcher so the root is traced like every other node.
    auto root = PlanNode::InstantiateNode(*nodes_[root_], ws);
    size_t n;
    while ((n = root->Next()) != kEndOfStream) {
      if (n == 0) continue;
      const Batch batch(&ws.slots, &is_result, n, root->sel());
      std::lock_guard<std::mutex> lock(mu);
      collect(batch);
    }
    roots[wid] = std::move(root);
  });
  roots.clear();
}

// ---------------------------------------------------------------------------
// EXPLAIN
// ---------------------------------------------------------------------------

std::vector<Plan::NodeInfo> Plan::Describe() const {
  std::vector<NodeInfo> out;
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    NodeInfo info;
    info.kind = node->kind_;
    info.label = node->label_;
    for (const PlanNode* child : node->children_)
      info.children.push_back(child->index_);
    info.details = node->details_;
    std::set<uint32_t> seen;
    for (const uint32_t id : node->consumed_) {
      if (seen.insert(id).second) info.consumes.push_back(columns_[id].name);
    }
    if (node->kind_ == NodeKind::kSelect) {
      const auto* select = static_cast<const SelectNode*>(node.get());
      for (const uint32_t id : select->compaction_columns())
        info.compacts.push_back(columns_[id].name);
    }
    out.push_back(std::move(info));
  }
  return out;
}

std::string Plan::ToString() const {
  const auto join_names = [](const std::vector<std::string>& names) {
    std::string out;
    for (const std::string& name : names) {
      if (!out.empty()) out += ", ";
      out += name;
    }
    return out;
  };

  std::string out = "plan " + name_ + " (tectorwise)\n";
  const std::vector<NodeInfo> infos = Describe();
  for (size_t i = 0; i < infos.size(); ++i) {
    const NodeInfo& info = infos[i];
    out += "  #" + std::to_string(i) + " " + info.label;
    if (info.kind == NodeKind::kHashJoin) {
      out += " build=#" + std::to_string(info.children[0]) + " probe=#" +
             std::to_string(info.children[1]);
    } else if (!info.children.empty()) {
      out += " <- #" + std::to_string(info.children[0]);
    }
    out += "\n";
    for (const std::string& detail : info.details) {
      out += "       " + detail + "\n";
    }
    if (!info.consumes.empty()) {
      out += "       consumes: " + join_names(info.consumes) + "\n";
    }
    if (info.kind == NodeKind::kSelect) {
      out += "       compacts: " +
             (info.compacts.empty() ? std::string("(none)")
                                    : join_names(info.compacts)) +
             "\n";
    }
  }
  std::vector<std::string> result_names;
  for (const uint32_t id : result_) result_names.push_back(columns_[id].name);
  out += "  result: " + join_names(result_names) + "\n";
  return out;
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE
// ---------------------------------------------------------------------------

namespace {

std::string FmtMs(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns) / 1e6);
  return buf;
}

}  // namespace

std::string ExplainAnalyzeTree(const Plan& plan,
                               const runtime::QueryTrace& trace,
                               size_t vector_size) {
  const std::vector<Plan::NodeInfo> infos = plan.Describe();
  if (vector_size == 0) vector_size = kDefaultVectorSize;

  std::string out;
  // Depth-first from the root; self time = inclusive busy ns minus the
  // children's inclusive busy ns (a pull pipeline nests child work inside
  // the parent's Next).
  const std::function<void(uint32_t, size_t, const char*)> render =
      [&](uint32_t index, size_t depth, const char* role) {
        const Plan::NodeInfo& info = infos[index];
        const runtime::QueryTrace::OperatorStats stats =
            trace.OperatorAt(index);
        uint64_t children_ns = 0;
        for (const uint32_t child : info.children)
          children_ns += trace.OperatorAt(child).ns;
        const uint64_t self_ns =
            stats.ns > children_ns ? stats.ns - children_ns : 0;

        out += "  ";
        out.append(depth * 2, ' ');
        out += "#" + std::to_string(index) + " " + info.label;
        if (role[0] != '\0') out += std::string(" [") + role + "]";
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "  rows=%llu batches=%llu self=%s (%.1f ns/tuple)",
                      static_cast<unsigned long long>(stats.rows),
                      static_cast<unsigned long long>(stats.batches),
                      FmtMs(self_ns).c_str(),
                      static_cast<double>(self_ns) /
                          static_cast<double>(std::max<uint64_t>(1,
                                                                 stats.rows)));
        out += buf;
        if (stats.batches > 0) {
          std::snprintf(buf, sizeof(buf), " density=%.2f",
                        static_cast<double>(stats.rows) /
                            static_cast<double>(stats.batches * vector_size));
          out += buf;
        }
        // The join build's wall span arrives through the trace's embedded
        // NodeTelemetry — the exact numbers the tuner's build-mode knob
        // learns from (runtime/hashmap.h records them once).
        const runtime::NodeTelemetry& telemetry = trace.node_telemetry();
        if (info.kind == NodeKind::kHashJoin && telemetry.HasSpan(index)) {
          const uint64_t build_ns = telemetry.SpanNs(index);
          const uint64_t probe_ns =
              self_ns > build_ns ? self_ns - build_ns : 0;
          out += " build=" + FmtMs(build_ns) + " probe=" + FmtMs(probe_ns);
        }
        if (const uint64_t spilled = trace.SpillBytesAt(index);
            spilled != 0) {
          std::snprintf(buf, sizeof(buf), " spill=%llukB",
                        static_cast<unsigned long long>(spilled / 1024));
          out += buf;
        }
        out += "\n";

        if (info.kind == NodeKind::kHashJoin && info.children.size() == 2) {
          render(info.children[0], depth + 1, "build");
          render(info.children[1], depth + 1, "probe");
        } else {
          for (const uint32_t child : info.children)
            render(child, depth + 1, "");
        }
      };
  render(plan.root(), 0, "");
  return out;
}

}  // namespace vcq::tectorwise
