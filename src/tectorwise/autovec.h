#ifndef VCQ_TECTORWISE_AUTOVEC_H_
#define VCQ_TECTORWISE_AUTOVEC_H_

#include <cstddef>
#include <cstdint>

#include "tectorwise/core.h"

// Two builds of the same scalar primitive kernels for the compiler
// auto-vectorization study (paper Fig. 10; GCC stands in for ICC 18, see
// DESIGN.md §4). autovec_on is compiled with -O3 and AVX-512 enabled for
// the vectorizer; autovec_off with -O3 -fno-tree-vectorize. The bench
// fig10_autovec compares instructions/element and time/element between the
// two and against the hand-written AVX-512 primitives.
//
// Callers must check CpuInfo::HasAvx512() before using autovec_on (that TU
// is compiled with AVX-512 code generation enabled).

#define VCQ_AUTOVEC_DECLARE(ns)                                            \
  namespace ns {                                                           \
  size_t SelBetweenI32Dense(size_t n, const int32_t* col, int32_t lo,      \
                            int32_t hi, pos_t* out);                       \
  size_t SelLessI64Sparse(size_t n, const pos_t* sel, const int64_t* col,  \
                          int64_t k, pos_t* out);                          \
  void HashI64Dense(size_t n, const int64_t* col, uint64_t* hashes);       \
  void MapMulI64(size_t n, const int64_t* a, const int64_t* b,             \
                 int64_t* out);                                            \
  int64_t SumI64(size_t n, const int64_t* col);                            \
  }

namespace vcq::tectorwise {
VCQ_AUTOVEC_DECLARE(autovec_off)
VCQ_AUTOVEC_DECLARE(autovec_on)
}  // namespace vcq::tectorwise

#undef VCQ_AUTOVEC_DECLARE

#endif  // VCQ_TECTORWISE_AUTOVEC_H_
