#ifndef VCQ_TECTORWISE_STEPS_H_
#define VCQ_TECTORWISE_STEPS_H_

#include <cstdint>
#include <string>

#include "tectorwise/core.h"
#include "tectorwise/operators.h"
#include "tectorwise/primitives.h"
#include "tectorwise/primitives_simd.h"

// Factories that bind primitives to column slots and constants, producing
// the type-erased steps the operators execute. This is the plan-construction
// layer: the "interpretation logic" of the vectorized engine is set up once
// per query here, then amortized over every vector (paper §2.1).
//
// When ExecContext.use_simd is set (and the CPU supports AVX-512), the
// factories select the data-parallel primitive variants of §5.

namespace vcq::tectorwise {

enum class CmpOp { kLess, kLessEq, kGreater, kGreaterEq, kEq };

namespace internal {

template <typename T, typename Cmp>
SelStep SelCmpScalar(const Slot* col, T konst) {
  return [col, konst](size_t n, const pos_t* sel, pos_t* out) {
    if (sel == nullptr) return SelDense<T, Cmp>(n, Get<T>(col), konst, out);
    return SelSparse<T, Cmp>(n, sel, Get<T>(col), konst, out);
  };
}

}  // namespace internal

/// Selection against a constant: col OP konst.
template <typename T>
SelStep MakeSelCmp(const ExecContext& ctx, const Slot* col, CmpOp op,
                   T konst) {
  const bool use_simd = ctx.use_simd && simd::Available();
  if constexpr (std::is_same_v<T, int32_t>) {
    if (use_simd) {
      return [col, op, konst](size_t n, const pos_t* sel, pos_t* out) {
        const int32_t* c = Get<int32_t>(col);
        if (sel == nullptr) {
          switch (op) {
            case CmpOp::kLess: return simd::SelLessI32Dense(n, c, konst, out);
            case CmpOp::kLessEq:
              return simd::SelLessEqI32Dense(n, c, konst, out);
            case CmpOp::kGreater:
              return simd::SelGreaterI32Dense(n, c, konst, out);
            case CmpOp::kGreaterEq:
              return simd::SelGreaterEqI32Dense(n, c, konst, out);
            case CmpOp::kEq: return simd::SelEqI32Dense(n, c, konst, out);
          }
        } else {
          switch (op) {
            case CmpOp::kLess:
              return simd::SelLessI32Sparse(n, sel, c, konst, out);
            case CmpOp::kLessEq:
              return simd::SelLessEqI32Sparse(n, sel, c, konst, out);
            case CmpOp::kGreater:
              return simd::SelGreaterI32Sparse(n, sel, c, konst, out);
            case CmpOp::kGreaterEq:
              return simd::SelGreaterEqI32Sparse(n, sel, c, konst, out);
            case CmpOp::kEq:
              return SelSparse<int32_t, CmpEq>(n, sel, c, konst, out);
          }
        }
        return size_t{0};
      };
    }
  } else if constexpr (std::is_same_v<T, int64_t>) {
    if (use_simd) {
      return [col, op, konst](size_t n, const pos_t* sel, pos_t* out) {
        const int64_t* c = Get<int64_t>(col);
        if (sel == nullptr) {
          switch (op) {
            case CmpOp::kLess: return simd::SelLessI64Dense(n, c, konst, out);
            case CmpOp::kLessEq:
              return simd::SelLessEqI64Dense(n, c, konst, out);
            case CmpOp::kGreater:
              return simd::SelGreaterI64Dense(n, c, konst, out);
            case CmpOp::kGreaterEq:
              return simd::SelGreaterEqI64Dense(n, c, konst, out);
            case CmpOp::kEq: return simd::SelEqI64Dense(n, c, konst, out);
          }
        } else {
          switch (op) {
            case CmpOp::kLess:
              return simd::SelLessI64Sparse(n, sel, c, konst, out);
            case CmpOp::kLessEq:
              return SelSparse<int64_t, CmpLessEq>(n, sel, c, konst, out);
            case CmpOp::kGreater:
              return SelSparse<int64_t, CmpGreater>(n, sel, c, konst, out);
            case CmpOp::kGreaterEq:
              return SelSparse<int64_t, CmpGreaterEq>(n, sel, c, konst, out);
            case CmpOp::kEq:
              return SelSparse<int64_t, CmpEq>(n, sel, c, konst, out);
          }
        }
        return size_t{0};
      };
    }
  }
  switch (op) {
    case CmpOp::kLess: return internal::SelCmpScalar<T, CmpLess>(col, konst);
    case CmpOp::kLessEq:
      return internal::SelCmpScalar<T, CmpLessEq>(col, konst);
    case CmpOp::kGreater:
      return internal::SelCmpScalar<T, CmpGreater>(col, konst);
    case CmpOp::kGreaterEq:
      return internal::SelCmpScalar<T, CmpGreaterEq>(col, konst);
    case CmpOp::kEq: return internal::SelCmpScalar<T, CmpEq>(col, konst);
  }
  return {};
}

/// Inclusive range selection: lo <= col <= hi.
template <typename T>
SelStep MakeSelBetween(const ExecContext& ctx, const Slot* col, T lo, T hi) {
  const bool use_simd = ctx.use_simd && simd::Available();
  if constexpr (std::is_same_v<T, int32_t>) {
    if (use_simd) {
      return [col, lo, hi](size_t n, const pos_t* sel, pos_t* out) {
        const int32_t* c = Get<int32_t>(col);
        if (sel == nullptr) return simd::SelBetweenI32Dense(n, c, lo, hi, out);
        return simd::SelBetweenI32Sparse(n, sel, c, lo, hi, out);
      };
    }
  } else if constexpr (std::is_same_v<T, int64_t>) {
    if (use_simd) {
      return [col, lo, hi](size_t n, const pos_t* sel, pos_t* out) {
        const int64_t* c = Get<int64_t>(col);
        if (sel == nullptr) return simd::SelBetweenI64Dense(n, c, lo, hi, out);
        return simd::SelBetweenI64Sparse(n, sel, c, lo, hi, out);
      };
    }
  }
  return [col, lo, hi](size_t n, const pos_t* sel, pos_t* out) {
    if (sel == nullptr) return SelBetweenDense<T>(n, Get<T>(col), lo, hi, out);
    return SelBetweenSparse<T>(n, sel, Get<T>(col), lo, hi, out);
  };
}

/// col == a || col == b (Char<N> IN-lists).
template <typename T>
SelStep MakeSelEqOr2(const Slot* col, T a, T b) {
  return [col, a, b](size_t n, const pos_t* sel, pos_t* out) {
    const T* c = Get<T>(col);
    if (sel == nullptr) return SelEqOr2Dense<T>(n, c, a, b, out);
    pos_t* res = out;
    for (size_t k = 0; k < n; ++k) {
      const pos_t p = sel[k];
      *res = p;
      res += (c[p] == a || c[p] == b) ? 1 : 0;
    }
    return static_cast<size_t>(res - out);
  };
}

/// Substring containment on a Varchar column.
template <typename V>
SelStep MakeSelContains(const Slot* col, std::string needle) {
  return [col, needle](size_t n, const pos_t* sel, pos_t* out) {
    const V* c = Get<V>(col);
    if (sel == nullptr) return SelContainsDense<V>(n, c, needle, out);
    pos_t* res = out;
    for (size_t k = 0; k < n; ++k) {
      const pos_t p = sel[k];
      *res = p;
      res += c[p].Contains(needle) ? 1 : 0;
    }
    return static_cast<size_t>(res - out);
  };
}

// --- compaction step factories -----------------------------------------------

/// Per-column append kernel for the Compactor: copies the live values of
/// the bound column into a dense compaction buffer. i32/i64 use the
/// AVX-512 compress-store primitives (which themselves fall back to scalar
/// at runtime on non-AVX-512 hosts); other widths take the generic
/// sparse->dense gather.
template <typename T>
CompactStep MakeCompact(const ExecContext& ctx, const Slot* col) {
  const bool use_simd = ctx.use_simd && simd::Available();
  if constexpr (std::is_same_v<T, int32_t>) {
    if (use_simd) {
      return [col](size_t n, const pos_t* sel, void* dst) {
        simd::CompactI32(n, sel, Get<int32_t>(col),
                         static_cast<int32_t*>(dst));
      };
    }
  } else if constexpr (std::is_same_v<T, int64_t>) {
    if (use_simd) {
      return [col](size_t n, const pos_t* sel, void* dst) {
        simd::CompactI64(n, sel, Get<int64_t>(col),
                         static_cast<int64_t*>(dst));
      };
    }
  }
  return [col](size_t n, const pos_t* sel, void* dst) {
    CompactCopy<T>(n, sel, Get<T>(col), static_cast<T*>(dst));
  };
}

/// Registers `col` for densification by Compactor `c` — the one-liner the
/// plan builders use to declare which columns are consumed above a
/// compaction point.
template <typename T>
void CompactColumn(const ExecContext& ctx, Compactor& c, Slot* col) {
  c.AddColumn(col, sizeof(T), MakeCompact<T>(ctx, col));
}

// --- map step factories ------------------------------------------------------

template <typename T>
MapStep MakeMapMul(const Slot* a, const Slot* b, T* out) {
  return [a, b, out](size_t n, const pos_t* sel) {
    MapMul<T>(n, sel, Get<T>(a), Get<T>(b), out);
  };
}

template <typename T>
MapStep MakeMapRSubConst(T konst, const Slot* a, T* out) {
  return [konst, a, out](size_t n, const pos_t* sel) {
    MapRSubConst<T>(n, sel, konst, Get<T>(a), out);
  };
}

template <typename T>
MapStep MakeMapAddConst(T konst, const Slot* a, T* out) {
  return [konst, a, out](size_t n, const pos_t* sel) {
    MapAddConst<T>(n, sel, konst, Get<T>(a), out);
  };
}

template <typename T>
MapStep MakeMapMulRSubConst(const Slot* a, T konst, const Slot* b, T* out) {
  return [a, konst, b, out](size_t n, const pos_t* sel) {
    MapMulRSubConst<T>(n, sel, Get<T>(a), konst, Get<T>(b), out);
  };
}

template <typename T>
MapStep MakeMapMulAddConst(const Slot* a, T konst, const Slot* b, T* out) {
  return [a, konst, b, out](size_t n, const pos_t* sel) {
    MapMulAddConst<T>(n, sel, Get<T>(a), konst, Get<T>(b), out);
  };
}

template <typename T>
MapStep MakeMapDivConst(const Slot* a, T konst, T* out) {
  return [a, konst, out](size_t n, const pos_t* sel) {
    MapDivConst<T>(n, sel, Get<T>(a), konst, out);
  };
}

inline MapStep MakeMapYear(const Slot* a, int32_t* out) {
  return [a, out](size_t n, const pos_t* sel) {
    MapYear(n, sel, Get<int32_t>(a), out);
  };
}

template <typename T>
MapStep MakeMapSub(const Slot* a, const Slot* b, T* out) {
  return [a, b, out](size_t n, const pos_t* sel) {
    MapSub<T>(n, sel, Get<T>(a), Get<T>(b), out);
  };
}

template <typename T>
MapStep MakeMapAdd(const Slot* a, const Slot* b, T* out) {
  return [a, b, out](size_t n, const pos_t* sel) {
    MapAdd<T>(n, sel, Get<T>(a), Get<T>(b), out);
  };
}

template <typename T>
MapStep MakeMapMulConst(const Slot* a, T konst, T* out) {
  return [a, konst, out](size_t n, const pos_t* sel) {
    MapMulConst<T>(n, sel, Get<T>(a), konst, out);
  };
}

template <typename From, typename To>
MapStep MakeMapWiden(const Slot* a, To* out) {
  return [a, out](size_t n, const pos_t* sel) {
    MapWiden<From, To>(n, sel, Get<From>(a), out);
  };
}

// --- hash / key expression steps (joins, group-by) ---------------------------

/// Computes (hashes, positions) compacted for the active tuples.
using HashStep = std::function<void(size_t n, const pos_t* sel,
                                    uint64_t* hashes, pos_t* pos)>;
/// Combines another key column into existing hashes (composite keys).
using RehashStep =
    std::function<void(size_t n, const pos_t* pos, uint64_t* hashes)>;

template <typename T>
HashStep MakeHash(const ExecContext& ctx, const Slot* col) {
  const bool use_simd = ctx.use_simd && simd::Available();
  if constexpr (std::is_same_v<T, int32_t>) {
    if (use_simd) {
      return [col](size_t n, const pos_t* sel, uint64_t* hashes, pos_t* pos) {
        simd::HashI32Compact(n, sel, Get<int32_t>(col), hashes, pos);
      };
    }
  } else if constexpr (std::is_same_v<T, int64_t>) {
    if (use_simd) {
      return [col](size_t n, const pos_t* sel, uint64_t* hashes, pos_t* pos) {
        simd::HashI64Compact(n, sel, Get<int64_t>(col), hashes, pos);
      };
    }
  }
  return [col](size_t n, const pos_t* sel, uint64_t* hashes, pos_t* pos) {
    HashCompact<T>(n, sel, Get<T>(col), hashes, pos);
  };
}

template <typename T>
RehashStep MakeRehash(const ExecContext& ctx, const Slot* col) {
  const bool use_simd = ctx.use_simd && simd::Available();
  if constexpr (std::is_same_v<T, int32_t>) {
    if (use_simd) {
      return [col](size_t n, const pos_t* pos, uint64_t* hashes) {
        simd::RehashI32Compact(n, pos, Get<int32_t>(col), hashes);
      };
    }
  }
  return [col](size_t n, const pos_t* pos, uint64_t* hashes) {
    RehashCompact<T>(n, pos, Get<T>(col), hashes);
  };
}

}  // namespace vcq::tectorwise

#endif  // VCQ_TECTORWISE_STEPS_H_
