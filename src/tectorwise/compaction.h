#ifndef VCQ_TECTORWISE_COMPACTION_H_
#define VCQ_TECTORWISE_COMPACTION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <vector>

#include "runtime/options.h"
#include "tectorwise/core.h"

// Adaptive batch compaction (cf. "Data Chunk Compaction in Vectorized
// Execution", SIGMOD'25, and paper §5.1 on sparse selection vectors).
//
// A Compactor sits at a compaction point of the vectorized pipeline (Select
// output, group-by input). When the point produces sparse batches — a few
// live positions scattered over a full vector — the Compactor copies the
// live values of every registered column into its own dense buffers,
// merging consecutive sparse batches until a full vector_size batch is
// accumulated, then republishes the column Slots to point at the dense
// buffers and emits the batch without a selection vector. Every downstream
// primitive then runs its dense path (contiguous loads, full SIMD lanes)
// and per-vector interpretation overhead amortizes over full vectors again.
//
// Under CompactionPolicy::kAdaptive a batch is only absorbed when its
// density (count / vector_size) falls below ExecContext's threshold; dense
// batches pass through untouched, so the fast path stays zero-copy.

namespace vcq::tectorwise {

/// Maps the engine-agnostic QueryOptions spelling onto the engine policy
/// (shared by every plan builder's MakeContext).
inline CompactionPolicy ToPolicy(runtime::CompactionMode mode) {
  switch (mode) {
    case runtime::CompactionMode::kNever: return CompactionPolicy::kNever;
    case runtime::CompactionMode::kAlways: return CompactionPolicy::kAlways;
    case runtime::CompactionMode::kAdaptive:
      return CompactionPolicy::kAdaptive;
  }
  return CompactionPolicy::kNever;
}

/// Per-column append kernel bound to a column Slot by the steps.h factory
/// MakeCompact<T>: copies the `n` live values (per `sel`; null = dense) of
/// the bound column to `dst`.
using CompactStep =
    std::function<void(size_t n, const pos_t* sel, void* dst)>;

/// Process-wide compaction/density counters (relaxed; one update per batch,
/// negligible next to per-tuple work). benchutil snapshots these around the
/// instrumented run so benches can report average batch density and
/// compaction counts alongside runtime.
class CompactionTelemetry {
 public:
  struct Snapshot {
    uint64_t batches = 0;     ///< batches observed at compaction points
    uint64_t tuples = 0;      ///< live tuples in those batches
    uint64_t capacity = 0;    ///< sum of vector_size over those batches
    uint64_t compactions = 0;       ///< dense batches emitted by compactors
    uint64_t compacted_tuples = 0;  ///< tuples in those dense batches

    /// Average batch density across all compaction points (NaN when no
    /// batches were observed).
    double AvgDensity() const;
  };

  static CompactionTelemetry& Global();

  /// Bulk fold-in of operator-local counters (see LocalBatchStats).
  void RecordBatches(uint64_t batches, uint64_t tuples, uint64_t capacity) {
    batches_.fetch_add(batches, std::memory_order_relaxed);
    tuples_.fetch_add(tuples, std::memory_order_relaxed);
    capacity_.fetch_add(capacity, std::memory_order_relaxed);
  }
  void RecordCompaction(size_t emitted) {
    compactions_.fetch_add(1, std::memory_order_relaxed);
    compacted_tuples_.fetch_add(emitted, std::memory_order_relaxed);
  }

  void Reset();
  Snapshot Take() const;

 private:
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> tuples_{0};
  std::atomic<uint64_t> capacity_{0};
  std::atomic<uint64_t> compactions_{0};
  std::atomic<uint64_t> compacted_tuples_{0};
};

/// Operator-local batch statistics: plain counters bumped in the hot loop,
/// folded into the global telemetry once at end-of-stream so the per-batch
/// path costs two additions instead of three shared atomic RMWs (which
/// would ping-pong a cache line between workers in exactly the
/// small-vector regimes the benches study).
struct LocalBatchStats {
  uint64_t batches = 0;
  uint64_t tuples = 0;
  uint64_t capacity = 0;

  void Record(size_t live, size_t vector_size) {
    ++batches;
    tuples += live;
    capacity += vector_size;
  }
  /// Adds the counters to the global telemetry and zeroes them (safe to
  /// call repeatedly — operators may see end-of-stream more than once).
  void FlushToGlobal();
};

/// Accumulates the live rows of sparse batches into dense, operator-owned
/// column buffers and republishes the column Slots when a dense batch is
/// emitted. Owned by the operator at the compaction point; driven by its
/// Next() loop:
///
///   BeginBatch();                       // restore slots, shift carry-over
///   ...pull child, run steps -> count, sel...
///   if (!ShouldCompact(count)) emit batch unchanged;  // even with rows
///       // pending: those already live in the compactor's buffers and
///       // can wait for the backlog to fill (batch order is free)
///   else { Append(count, sel); if (Full()) emit Flush() rows dense; }
///   ...at child EOS: emit Flush() until pending() is 0...
///
/// Buffers hold 2 * vector_size rows: Append() is only called while fewer
/// than vector_size rows are pending and a batch holds at most vector_size
/// rows, so capacity is never exceeded; Flush() publishes at most
/// vector_size rows and BeginBatch() moves the remainder to the front.
class Compactor {
 public:
  Compactor() = default;
  explicit Compactor(const ExecContext& ctx) { Configure(ctx); }

  void Configure(const ExecContext& ctx);

  /// Registers a column for densification. `slot` must be republishable:
  /// its producer either resets `ptr` every batch (Scan) or writes into a
  /// fixed buffer the saved `ptr` keeps addressing (Map/join/group
  /// outputs). No-op under kNever so the seed path stays allocation-free.
  void AddColumn(Slot* slot, size_t elem_size, CompactStep step);

  bool enabled() const {
    return policy_ != CompactionPolicy::kNever && !columns_.empty();
  }

  /// Density test for a fresh batch with `count` live tuples.
  bool ShouldCompact(size_t count) const {
    if (policy_ == CompactionPolicy::kAlways) return true;
    if (policy_ != CompactionPolicy::kAdaptive) return false;
    return static_cast<double>(count) <
           threshold_ * static_cast<double>(vector_size_);
  }

  size_t pending() const { return pending_; }
  bool Full() const { return pending_ >= vector_size_; }

  /// Restores republished slots to their producers' buffers and shifts any
  /// carry-over rows (beyond the last emitted vector) to the buffer front.
  /// Call once at the top of the operator's Next() before pulling anything.
  void BeginBatch();

  /// Appends the live rows of the current batch to the dense buffers.
  void Append(size_t n, const pos_t* sel);

  /// Publishes up to vector_size accumulated rows: repoints every
  /// registered slot at its dense buffer and returns the emitted count.
  size_t Flush();

 private:
  struct Column {
    Slot* slot;
    size_t elem_size;
    CompactStep step;
    VecBuffer buffer;          // 2 * vector_size rows
    const void* saved = nullptr;  // producer ptr to restore after a Flush
  };

  CompactionPolicy policy_ = CompactionPolicy::kNever;
  double threshold_ = 1.0 / 64;
  size_t vector_size_ = kDefaultVectorSize;
  std::vector<Column> columns_;
  size_t pending_ = 0;   // accumulated, not yet emitted rows
  size_t emitted_ = 0;   // rows published by the last Flush
};

}  // namespace vcq::tectorwise

#endif  // VCQ_TECTORWISE_COMPACTION_H_
