#include <algorithm>
#include <map>
#include <mutex>
#include <tuple>

#include "runtime/types.h"
#include "runtime/worker_pool.h"
#include "tectorwise/hash_group.h"
#include "tectorwise/hash_join.h"
#include "tectorwise/queries.h"
#include "tectorwise/steps.h"

// TPC-H query plans for the Tectorwise engine. Each worker wires its own
// operator tree over shared state (morsel queues, hash tables, barriers) and
// drains the root; collectors merge the per-worker output under a mutex
// (root cardinalities are tiny for all studied queries).

namespace vcq::tectorwise {

using runtime::Char;
using runtime::Database;
using runtime::DateFromString;
using runtime::QueryOptions;
using runtime::QueryResult;
using runtime::Relation;
using runtime::ResultBuilder;
using runtime::Varchar;

namespace {

ExecContext MakeContext(const QueryOptions& opt) {
  ExecContext ctx;
  ctx.vector_size = opt.vector_size;
  ctx.use_simd = opt.simd;
  ctx.compaction = ToPolicy(opt.compaction);
  ctx.compaction_threshold = opt.compaction_threshold;
  return ctx;
}

}  // namespace

namespace {

// Q1 with micro-adaptive ordered aggregation (paper §8.4): per vector,
// tuples are partitioned into one selection vector per (returnflag,
// linestatus) code; each partition is aggregated with partial sums held in
// registers and a single group update per vector — the VectorWise
// optimization that beats plain Tectorwise on Q1 (Table 2). If a vector
// exceeds kMaxAdaptiveGroups distinct codes the engine would exponentially
// back off to hash aggregation; Q1's four groups never trigger it.
QueryResult RunQ1Adaptive(const Database& db, const QueryOptions& opt) {
  constexpr size_t kMaxAdaptiveGroups = 16;
  const Relation& lineitem = db["lineitem"];
  ExecContext ctx;
  ctx.vector_size = opt.vector_size;
  ctx.use_simd = opt.simd;
  const int32_t cutoff = DateFromString("1998-09-02");

  struct Agg {
    int64_t qty = 0, base = 0, disc_price = 0, charge = 0, disc = 0,
            count = 0;
  };
  Scan::Shared scan_shared(lineitem.tuple_count(), opt.morsel_grain);
  std::map<uint16_t, Agg> merged;
  std::mutex mu;

  runtime::WorkerPool::Global().Run(opt.threads, [&](size_t) {
    auto scan =
        std::make_unique<Scan>(&scan_shared, &lineitem, ctx.vector_size);
    Slot* shipdate = scan->AddColumn<int32_t>("l_shipdate");
    Slot* rf = scan->AddColumn<Char<1>>("l_returnflag");
    Slot* ls = scan->AddColumn<Char<1>>("l_linestatus");
    Slot* qty = scan->AddColumn<int64_t>("l_quantity");
    Slot* extprice = scan->AddColumn<int64_t>("l_extendedprice");
    Slot* discount = scan->AddColumn<int64_t>("l_discount");
    Slot* tax = scan->AddColumn<int64_t>("l_tax");

    auto select = std::make_unique<Select>(std::move(scan), ctx.vector_size);
    select->AddStep(
        MakeSelCmp<int32_t>(ctx, shipdate, CmpOp::kLessEq, cutoff));

    std::map<uint16_t, Agg> local;
    // Per-vector partitions: code list + one selection vector per code.
    std::vector<uint16_t> codes;
    std::vector<std::vector<pos_t>> parts(kMaxAdaptiveGroups);

    size_t n;
    while ((n = select->Next()) != kEndOfStream) {
      const pos_t* sel = select->sel();
      const Char<1>* rfc = Get<Char<1>>(rf);
      const Char<1>* lsc = Get<Char<1>>(ls);
      // Partition phase (the "multiple selection vectors" trick).
      codes.clear();
      for (size_t k = 0; k < n; ++k) {
        const pos_t p = sel ? sel[k] : static_cast<pos_t>(k);
        const uint16_t code = static_cast<uint16_t>(
            static_cast<uint8_t>(rfc[p].data[0]) |
            (static_cast<uint8_t>(lsc[p].data[0]) << 8));
        size_t slot = codes.size();
        for (size_t c = 0; c < codes.size(); ++c) {
          if (codes[c] == code) {
            slot = c;
            break;
          }
        }
        if (slot == codes.size()) {
          VCQ_CHECK_MSG(slot < kMaxAdaptiveGroups,
                        "adaptive backoff not reachable on Q1");
          codes.push_back(code);
          parts[slot].clear();
        }
        parts[slot].push_back(p);
      }
      // Ordered aggregation phase: per-partition register accumulation.
      const int64_t* q = Get<int64_t>(qty);
      const int64_t* e = Get<int64_t>(extprice);
      const int64_t* d = Get<int64_t>(discount);
      const int64_t* t = Get<int64_t>(tax);
      for (size_t c = 0; c < codes.size(); ++c) {
        int64_t s_qty = 0, s_base = 0, s_dp = 0, s_ch = 0, s_d = 0;
        for (const pos_t p : parts[c]) {
          const int64_t dp = e[p] * (100 - d[p]);
          s_qty += q[p];
          s_base += e[p];
          s_dp += dp;
          s_ch += dp * (100 + t[p]);
          s_d += d[p];
        }
        Agg& agg = local[codes[c]];
        agg.qty += s_qty;
        agg.base += s_base;
        agg.disc_price += s_dp;
        agg.charge += s_ch;
        agg.disc += s_d;
        agg.count += static_cast<int64_t>(parts[c].size());
      }
    }
    std::lock_guard<std::mutex> lock(mu);
    for (const auto& [code, agg] : local) {
      Agg& m = merged[code];
      m.qty += agg.qty;
      m.base += agg.base;
      m.disc_price += agg.disc_price;
      m.charge += agg.charge;
      m.disc += agg.disc;
      m.count += agg.count;
    }
  });

  // std::map keyed by (rf | ls<<8) does not sort by (rf, ls); order rows.
  std::vector<std::pair<std::pair<char, char>, Agg>> rows;
  for (const auto& [code, agg] : merged) {
    rows.push_back({{static_cast<char>(code & 0xff),
                     static_cast<char>(code >> 8)},
                    agg});
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  ResultBuilder rb({"l_returnflag", "l_linestatus", "sum_qty",
                    "sum_base_price", "sum_disc_price", "sum_charge",
                    "avg_qty", "avg_price", "avg_disc", "count_order"});
  for (const auto& [key, a] : rows) {
    rb.BeginRow()
        .Str(std::string_view(&key.first, 1))
        .Str(std::string_view(&key.second, 1))
        .Numeric(a.qty, 2)
        .Numeric(a.base, 2)
        .Numeric(a.disc_price, 4)
        .Numeric(a.charge, 6)
        .Avg(a.qty, a.count, 2, 2)
        .Avg(a.base, a.count, 2, 2)
        .Avg(a.disc, a.count, 2, 2)
        .Int(a.count);
  }
  return rb.Finish();
}

}  // namespace

// ---------------------------------------------------------------------------
// Q1: in-cache aggregation over fixed-point arithmetic (4 groups)
// ---------------------------------------------------------------------------
QueryResult RunQ1(const Database& db, const QueryOptions& opt) {
  if (opt.adaptive) return RunQ1Adaptive(db, opt);
  const Relation& lineitem = db["lineitem"];
  const ExecContext ctx = MakeContext(opt);
  const int32_t cutoff = DateFromString("1998-09-02");

  Scan::Shared scan_shared(lineitem.tuple_count(), opt.morsel_grain);
  HashGroup::Shared group_shared(opt.threads);

  struct Row {
    char rf, ls;
    int64_t sum_qty, sum_base, sum_disc_price, sum_charge, sum_disc, count;
  };
  std::vector<Row> rows;
  std::mutex mu;
  std::vector<std::unique_ptr<Operator>> roots(opt.threads);

  runtime::WorkerPool::Global().Run(opt.threads, [&](size_t wid) {
    auto scan =
        std::make_unique<Scan>(&scan_shared, &lineitem, ctx.vector_size);
    Slot* shipdate = scan->AddColumn<int32_t>("l_shipdate");
    Slot* rf = scan->AddColumn<Char<1>>("l_returnflag");
    Slot* ls = scan->AddColumn<Char<1>>("l_linestatus");
    Slot* qty = scan->AddColumn<int64_t>("l_quantity");
    Slot* extprice = scan->AddColumn<int64_t>("l_extendedprice");
    Slot* discount = scan->AddColumn<int64_t>("l_discount");
    Slot* tax = scan->AddColumn<int64_t>("l_tax");

    auto select = std::make_unique<Select>(std::move(scan), ctx);
    select->AddStep(
        MakeSelCmp<int32_t>(ctx, shipdate, CmpOp::kLessEq, cutoff));
    CompactColumn<Char<1>>(ctx, select->compactor(), rf);
    CompactColumn<Char<1>>(ctx, select->compactor(), ls);
    CompactColumn<int64_t>(ctx, select->compactor(), qty);
    CompactColumn<int64_t>(ctx, select->compactor(), extprice);
    CompactColumn<int64_t>(ctx, select->compactor(), discount);
    CompactColumn<int64_t>(ctx, select->compactor(), tax);

    auto map = std::make_unique<Map>(std::move(select), ctx.vector_size);
    Slot* one_minus_disc = map->AddOutput<int64_t>();
    Slot* disc_price = map->AddOutput<int64_t>();  // scale 4
    Slot* one_plus_tax = map->AddOutput<int64_t>();
    Slot* charge = map->AddOutput<int64_t>();  // scale 6
    map->AddStep(MakeMapRSubConst<int64_t>(
        100, discount, map->OutputData<int64_t>(one_minus_disc)));
    map->AddStep(MakeMapMul<int64_t>(extprice, one_minus_disc,
                                     map->OutputData<int64_t>(disc_price)));
    map->AddStep(MakeMapAddConst<int64_t>(
        100, tax, map->OutputData<int64_t>(one_plus_tax)));
    map->AddStep(MakeMapMul<int64_t>(disc_price, one_plus_tax,
                                     map->OutputData<int64_t>(charge)));

    auto group = std::make_unique<HashGroup>(&group_shared, wid, opt.threads,
                                             std::move(map), ctx);
    const size_t k_rf = group->AddKey<Char<1>>(rf);
    const size_t k_ls = group->AddKey<Char<1>>(ls);
    const size_t a_qty = group->AddSumAgg(qty);
    const size_t a_base = group->AddSumAgg(extprice);
    const size_t a_disc_price = group->AddSumAgg(disc_price);
    const size_t a_charge = group->AddSumAgg(charge);
    const size_t a_disc = group->AddSumAgg(discount);
    const size_t a_count = group->AddCountAgg();

    Slot* o_rf = group->AddOutput<Char<1>>(k_rf);
    Slot* o_ls = group->AddOutput<Char<1>>(k_ls);
    Slot* o_qty = group->AddOutput<int64_t>(a_qty);
    Slot* o_base = group->AddOutput<int64_t>(a_base);
    Slot* o_dp = group->AddOutput<int64_t>(a_disc_price);
    Slot* o_ch = group->AddOutput<int64_t>(a_charge);
    Slot* o_disc = group->AddOutput<int64_t>(a_disc);
    Slot* o_cnt = group->AddOutput<int64_t>(a_count);

    size_t n;
    while ((n = group->Next()) != kEndOfStream) {
      std::lock_guard<std::mutex> lock(mu);
      for (size_t k = 0; k < n; ++k) {
        rows.push_back(Row{Get<Char<1>>(o_rf)[k].data[0],
                           Get<Char<1>>(o_ls)[k].data[0],
                           Get<int64_t>(o_qty)[k], Get<int64_t>(o_base)[k],
                           Get<int64_t>(o_dp)[k], Get<int64_t>(o_ch)[k],
                           Get<int64_t>(o_disc)[k], Get<int64_t>(o_cnt)[k]});
      }
    }
    roots[wid] = std::move(group);
  });
  roots.clear();

  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return std::tie(a.rf, a.ls) < std::tie(b.rf, b.ls);
  });
  ResultBuilder rb({"l_returnflag", "l_linestatus", "sum_qty",
                    "sum_base_price", "sum_disc_price", "sum_charge",
                    "avg_qty", "avg_price", "avg_disc", "count_order"});
  for (const Row& r : rows) {
    rb.BeginRow()
        .Str(std::string_view(&r.rf, 1))
        .Str(std::string_view(&r.ls, 1))
        .Numeric(r.sum_qty, 2)
        .Numeric(r.sum_base, 2)
        .Numeric(r.sum_disc_price, 4)
        .Numeric(r.sum_charge, 6)
        .Avg(r.sum_qty, r.count, 2, 2)
        .Avg(r.sum_base, r.count, 2, 2)
        .Avg(r.sum_disc, r.count, 2, 2)
        .Int(r.count);
  }
  return rb.Finish();
}

// ---------------------------------------------------------------------------
// Q6: selective scan
// ---------------------------------------------------------------------------
QueryResult RunQ6(const Database& db, const QueryOptions& opt) {
  const Relation& lineitem = db["lineitem"];
  const ExecContext ctx = MakeContext(opt);
  const int32_t lo = DateFromString("1994-01-01");
  const int32_t hi = DateFromString("1995-01-01") - 1;

  Scan::Shared scan_shared(lineitem.tuple_count(), opt.morsel_grain);
  int64_t total = 0;
  std::mutex mu;
  std::vector<std::unique_ptr<Operator>> roots(opt.threads);

  runtime::WorkerPool::Global().Run(opt.threads, [&](size_t wid) {
    auto scan =
        std::make_unique<Scan>(&scan_shared, &lineitem, ctx.vector_size);
    Slot* shipdate = scan->AddColumn<int32_t>("l_shipdate");
    Slot* discount = scan->AddColumn<int64_t>("l_discount");
    Slot* quantity = scan->AddColumn<int64_t>("l_quantity");
    Slot* extprice = scan->AddColumn<int64_t>("l_extendedprice");

    auto select = std::make_unique<Select>(std::move(scan), ctx);
    select->AddStep(MakeSelBetween<int32_t>(ctx, shipdate, lo, hi));
    select->AddStep(MakeSelBetween<int64_t>(ctx, discount, 5, 7));
    select->AddStep(MakeSelCmp<int64_t>(ctx, quantity, CmpOp::kLess, 2400));
    CompactColumn<int64_t>(ctx, select->compactor(), extprice);
    CompactColumn<int64_t>(ctx, select->compactor(), discount);

    auto map = std::make_unique<Map>(std::move(select), ctx.vector_size);
    Slot* revenue = map->AddOutput<int64_t>();  // scale 4
    map->AddStep(MakeMapMul<int64_t>(extprice, discount,
                                     map->OutputData<int64_t>(revenue)));

    auto agg = std::make_unique<FixedAggregation>(std::move(map));
    Slot* sum = agg->AddSumI64(revenue);

    size_t n;
    while ((n = agg->Next()) != kEndOfStream) {
      std::lock_guard<std::mutex> lock(mu);
      total += *Get<int64_t>(sum);
    }
    roots[wid] = std::move(agg);
  });
  roots.clear();

  ResultBuilder rb({"revenue"});
  rb.BeginRow().Numeric(total, 4);
  return rb.Finish();
}

// ---------------------------------------------------------------------------
// Q3: two joins feeding a group-by, top-10
// ---------------------------------------------------------------------------
QueryResult RunQ3(const Database& db, const QueryOptions& opt) {
  const Relation& customer = db["customer"];
  const Relation& orders = db["orders"];
  const Relation& lineitem = db["lineitem"];
  const ExecContext ctx = MakeContext(opt);
  const int32_t date = DateFromString("1995-03-15");
  const Char<10> building = Char<10>::From("BUILDING");

  Scan::Shared scan_cust(customer.tuple_count(), opt.morsel_grain);
  Scan::Shared scan_ord(orders.tuple_count(), opt.morsel_grain);
  Scan::Shared scan_li(lineitem.tuple_count(), opt.morsel_grain);
  HashJoin::Shared join_cust(opt.threads);
  HashJoin::Shared join_ord(opt.threads);
  HashGroup::Shared group_shared(opt.threads);

  struct Row {
    int32_t orderkey, orderdate, shippriority;
    int64_t revenue;
  };
  std::vector<Row> rows;
  std::mutex mu;
  std::vector<std::unique_ptr<Operator>> roots(opt.threads);

  runtime::WorkerPool::Global().Run(opt.threads, [&](size_t wid) {
    // Build side 1: customers in the BUILDING segment.
    auto cscan =
        std::make_unique<Scan>(&scan_cust, &customer, ctx.vector_size);
    Slot* c_custkey = cscan->AddColumn<int32_t>("c_custkey");
    Slot* c_mkt = cscan->AddColumn<Char<10>>("c_mktsegment");
    auto csel = std::make_unique<Select>(std::move(cscan), ctx);
    csel->AddStep(MakeSelCmp<Char<10>>(ctx, c_mkt, CmpOp::kEq, building));
    CompactColumn<int32_t>(ctx, csel->compactor(), c_custkey);

    // Probe side 1: orders before the date.
    auto oscan = std::make_unique<Scan>(&scan_ord, &orders, ctx.vector_size);
    Slot* o_orderkey = oscan->AddColumn<int32_t>("o_orderkey");
    Slot* o_custkey = oscan->AddColumn<int32_t>("o_custkey");
    Slot* o_orderdate = oscan->AddColumn<int32_t>("o_orderdate");
    Slot* o_shipprio = oscan->AddColumn<int32_t>("o_shippriority");
    auto osel = std::make_unique<Select>(std::move(oscan), ctx);
    osel->AddStep(MakeSelCmp<int32_t>(ctx, o_orderdate, CmpOp::kLess, date));
    CompactColumn<int32_t>(ctx, osel->compactor(), o_orderkey);
    CompactColumn<int32_t>(ctx, osel->compactor(), o_custkey);
    CompactColumn<int32_t>(ctx, osel->compactor(), o_orderdate);
    CompactColumn<int32_t>(ctx, osel->compactor(), o_shipprio);

    auto hj1 = std::make_unique<HashJoin>(&join_cust, std::move(csel),
                                          std::move(osel), ctx);
    const size_t f_custkey = hj1->AddBuildField<int32_t>(c_custkey);
    hj1->SetBuildHash(MakeHash<int32_t>(ctx, c_custkey));
    hj1->SetProbeHash(MakeHash<int32_t>(ctx, o_custkey));
    hj1->AddKeyCompare<int32_t>(o_custkey, f_custkey);
    Slot* j1_orderkey = hj1->AddProbeOutput<int32_t>(o_orderkey);
    Slot* j1_orderdate = hj1->AddProbeOutput<int32_t>(o_orderdate);
    Slot* j1_shipprio = hj1->AddProbeOutput<int32_t>(o_shipprio);

    // Probe side 2: lineitems shipped after the date.
    auto lscan =
        std::make_unique<Scan>(&scan_li, &lineitem, ctx.vector_size);
    Slot* l_orderkey = lscan->AddColumn<int32_t>("l_orderkey");
    Slot* l_shipdate = lscan->AddColumn<int32_t>("l_shipdate");
    Slot* l_extprice = lscan->AddColumn<int64_t>("l_extendedprice");
    Slot* l_discount = lscan->AddColumn<int64_t>("l_discount");
    auto lsel = std::make_unique<Select>(std::move(lscan), ctx);
    lsel->AddStep(
        MakeSelCmp<int32_t>(ctx, l_shipdate, CmpOp::kGreater, date));
    CompactColumn<int32_t>(ctx, lsel->compactor(), l_orderkey);
    CompactColumn<int64_t>(ctx, lsel->compactor(), l_extprice);
    CompactColumn<int64_t>(ctx, lsel->compactor(), l_discount);

    auto hj2 = std::make_unique<HashJoin>(&join_ord, std::move(hj1),
                                          std::move(lsel), ctx);
    const size_t f_orderkey = hj2->AddBuildField<int32_t>(j1_orderkey);
    const size_t f_orderdate = hj2->AddBuildField<int32_t>(j1_orderdate);
    const size_t f_shipprio = hj2->AddBuildField<int32_t>(j1_shipprio);
    hj2->SetBuildHash(MakeHash<int32_t>(ctx, j1_orderkey));
    hj2->SetProbeHash(MakeHash<int32_t>(ctx, l_orderkey));
    hj2->AddKeyCompare<int32_t>(l_orderkey, f_orderkey);
    Slot* j2_orderkey = hj2->AddBuildOutput<int32_t>(f_orderkey);
    Slot* j2_orderdate = hj2->AddBuildOutput<int32_t>(f_orderdate);
    Slot* j2_shipprio = hj2->AddBuildOutput<int32_t>(f_shipprio);
    Slot* j2_extprice = hj2->AddProbeOutput<int64_t>(l_extprice);
    Slot* j2_discount = hj2->AddProbeOutput<int64_t>(l_discount);

    auto map = std::make_unique<Map>(std::move(hj2), ctx.vector_size);
    Slot* one_minus_disc = map->AddOutput<int64_t>();
    Slot* revenue = map->AddOutput<int64_t>();  // scale 4
    map->AddStep(MakeMapRSubConst<int64_t>(
        100, j2_discount, map->OutputData<int64_t>(one_minus_disc)));
    map->AddStep(MakeMapMul<int64_t>(j2_extprice, one_minus_disc,
                                     map->OutputData<int64_t>(revenue)));

    auto group = std::make_unique<HashGroup>(&group_shared, wid, opt.threads,
                                             std::move(map), ctx);
    const size_t k_okey = group->AddKey<int32_t>(j2_orderkey);
    const size_t k_odate = group->AddKey<int32_t>(j2_orderdate);
    const size_t k_prio = group->AddKey<int32_t>(j2_shipprio);
    const size_t a_rev = group->AddSumAgg(revenue);
    Slot* g_okey = group->AddOutput<int32_t>(k_okey);
    Slot* g_odate = group->AddOutput<int32_t>(k_odate);
    Slot* g_prio = group->AddOutput<int32_t>(k_prio);
    Slot* g_rev = group->AddOutput<int64_t>(a_rev);

    size_t n;
    while ((n = group->Next()) != kEndOfStream) {
      std::lock_guard<std::mutex> lock(mu);
      for (size_t k = 0; k < n; ++k) {
        rows.push_back(Row{Get<int32_t>(g_okey)[k], Get<int32_t>(g_odate)[k],
                           Get<int32_t>(g_prio)[k], Get<int64_t>(g_rev)[k]});
      }
    }
    roots[wid] = std::move(group);
  });
  roots.clear();

  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return std::tie(b.revenue, a.orderdate, a.orderkey) <
           std::tie(a.revenue, b.orderdate, b.orderkey);
  });
  if (rows.size() > 10) rows.resize(10);
  ResultBuilder rb(
      {"l_orderkey", "revenue", "o_orderdate", "o_shippriority"});
  for (const Row& r : rows) {
    rb.BeginRow()
        .Int(r.orderkey)
        .Numeric(r.revenue, 4)
        .Date(r.orderdate)
        .Int(r.shippriority);
  }
  return rb.Finish();
}

// ---------------------------------------------------------------------------
// Q9: four joins (one composite-key) into a group-by
// ---------------------------------------------------------------------------
QueryResult RunQ9(const Database& db, const QueryOptions& opt) {
  const Relation& part = db["part"];
  const Relation& supplier = db["supplier"];
  const Relation& partsupp = db["partsupp"];
  const Relation& orders = db["orders"];
  const Relation& lineitem = db["lineitem"];
  const Relation& nation = db["nation"];
  const ExecContext ctx = MakeContext(opt);

  Scan::Shared scan_part(part.tuple_count(), opt.morsel_grain);
  Scan::Shared scan_ps(partsupp.tuple_count(), opt.morsel_grain);
  Scan::Shared scan_supp(supplier.tuple_count(), opt.morsel_grain);
  Scan::Shared scan_ord(orders.tuple_count(), opt.morsel_grain);
  Scan::Shared scan_li(lineitem.tuple_count(), opt.morsel_grain);
  HashJoin::Shared join_part(opt.threads);
  HashJoin::Shared join_ps(opt.threads);
  HashJoin::Shared join_supp(opt.threads);
  HashJoin::Shared join_ord(opt.threads);
  HashGroup::Shared group_shared(opt.threads);

  struct Row {
    int32_t nationkey, year;
    int64_t profit;
  };
  std::vector<Row> rows;
  std::mutex mu;
  std::vector<std::unique_ptr<Operator>> roots(opt.threads);

  runtime::WorkerPool::Global().Run(opt.threads, [&](size_t wid) {
    // Green parts.
    auto pscan = std::make_unique<Scan>(&scan_part, &part, ctx.vector_size);
    Slot* p_partkey = pscan->AddColumn<int32_t>("p_partkey");
    Slot* p_name = pscan->AddColumn<Varchar<55>>("p_name");
    auto psel = std::make_unique<Select>(std::move(pscan), ctx);
    psel->AddStep(MakeSelContains<Varchar<55>>(p_name, "green"));
    CompactColumn<int32_t>(ctx, psel->compactor(), p_partkey);

    // partsupp semi-joined with green parts, then built as a composite HT.
    auto psscan =
        std::make_unique<Scan>(&scan_ps, &partsupp, ctx.vector_size);
    Slot* ps_partkey = psscan->AddColumn<int32_t>("ps_partkey");
    Slot* ps_suppkey = psscan->AddColumn<int32_t>("ps_suppkey");
    Slot* ps_cost = psscan->AddColumn<int64_t>("ps_supplycost");

    auto hj_part = std::make_unique<HashJoin>(&join_part, std::move(psel),
                                              std::move(psscan), ctx);
    const size_t f_partkey = hj_part->AddBuildField<int32_t>(p_partkey);
    hj_part->SetBuildHash(MakeHash<int32_t>(ctx, p_partkey));
    hj_part->SetProbeHash(MakeHash<int32_t>(ctx, ps_partkey));
    hj_part->AddKeyCompare<int32_t>(ps_partkey, f_partkey);
    Slot* jp_partkey = hj_part->AddProbeOutput<int32_t>(ps_partkey);
    Slot* jp_suppkey = hj_part->AddProbeOutput<int32_t>(ps_suppkey);
    Slot* jp_cost = hj_part->AddProbeOutput<int64_t>(ps_cost);

    // Probe chain start: lineitem.
    auto lscan =
        std::make_unique<Scan>(&scan_li, &lineitem, ctx.vector_size);
    Slot* l_orderkey = lscan->AddColumn<int32_t>("l_orderkey");
    Slot* l_partkey = lscan->AddColumn<int32_t>("l_partkey");
    Slot* l_suppkey = lscan->AddColumn<int32_t>("l_suppkey");
    Slot* l_extprice = lscan->AddColumn<int64_t>("l_extendedprice");
    Slot* l_discount = lscan->AddColumn<int64_t>("l_discount");
    Slot* l_quantity = lscan->AddColumn<int64_t>("l_quantity");

    // Composite-key join against (ps_partkey, ps_suppkey).
    auto hj_ps = std::make_unique<HashJoin>(&join_ps, std::move(hj_part),
                                            std::move(lscan), ctx);
    const size_t f_ps_partkey = hj_ps->AddBuildField<int32_t>(jp_partkey);
    const size_t f_ps_suppkey = hj_ps->AddBuildField<int32_t>(jp_suppkey);
    const size_t f_ps_cost = hj_ps->AddBuildField<int64_t>(jp_cost);
    hj_ps->SetBuildHash(MakeHash<int32_t>(ctx, jp_partkey));
    hj_ps->AddBuildRehash(MakeRehash<int32_t>(ctx, jp_suppkey));
    hj_ps->SetProbeHash(MakeHash<int32_t>(ctx, l_partkey));
    hj_ps->AddProbeRehash(MakeRehash<int32_t>(ctx, l_suppkey));
    hj_ps->AddKeyCompare<int32_t>(l_partkey, f_ps_partkey);
    hj_ps->AddKeyCompare<int32_t>(l_suppkey, f_ps_suppkey);
    Slot* jps_cost = hj_ps->AddBuildOutput<int64_t>(f_ps_cost);
    Slot* jps_orderkey = hj_ps->AddProbeOutput<int32_t>(l_orderkey);
    Slot* jps_suppkey = hj_ps->AddProbeOutput<int32_t>(l_suppkey);
    Slot* jps_extprice = hj_ps->AddProbeOutput<int64_t>(l_extprice);
    Slot* jps_discount = hj_ps->AddProbeOutput<int64_t>(l_discount);
    Slot* jps_quantity = hj_ps->AddProbeOutput<int64_t>(l_quantity);

    // Supplier join (adds s_nationkey).
    auto sscan =
        std::make_unique<Scan>(&scan_supp, &supplier, ctx.vector_size);
    Slot* s_suppkey = sscan->AddColumn<int32_t>("s_suppkey");
    Slot* s_nationkey = sscan->AddColumn<int32_t>("s_nationkey");
    auto hj_supp = std::make_unique<HashJoin>(&join_supp, std::move(sscan),
                                              std::move(hj_ps), ctx);
    const size_t f_suppkey = hj_supp->AddBuildField<int32_t>(s_suppkey);
    const size_t f_nationkey = hj_supp->AddBuildField<int32_t>(s_nationkey);
    hj_supp->SetBuildHash(MakeHash<int32_t>(ctx, s_suppkey));
    hj_supp->SetProbeHash(MakeHash<int32_t>(ctx, jps_suppkey));
    hj_supp->AddKeyCompare<int32_t>(jps_suppkey, f_suppkey);
    Slot* js_nationkey = hj_supp->AddBuildOutput<int32_t>(f_nationkey);
    Slot* js_orderkey = hj_supp->AddProbeOutput<int32_t>(jps_orderkey);
    Slot* js_cost = hj_supp->AddProbeOutput<int64_t>(jps_cost);
    Slot* js_extprice = hj_supp->AddProbeOutput<int64_t>(jps_extprice);
    Slot* js_discount = hj_supp->AddProbeOutput<int64_t>(jps_discount);
    Slot* js_quantity = hj_supp->AddProbeOutput<int64_t>(jps_quantity);

    // Orders join (adds the order year).
    auto oscan = std::make_unique<Scan>(&scan_ord, &orders, ctx.vector_size);
    Slot* o_orderkey = oscan->AddColumn<int32_t>("o_orderkey");
    Slot* o_orderdate = oscan->AddColumn<int32_t>("o_orderdate");
    auto omap = std::make_unique<Map>(std::move(oscan), ctx.vector_size);
    Slot* o_year = omap->AddOutput<int32_t>();
    omap->AddStep(MakeMapYear(o_orderdate, omap->OutputData<int32_t>(o_year)));

    auto hj_ord = std::make_unique<HashJoin>(&join_ord, std::move(omap),
                                             std::move(hj_supp), ctx);
    const size_t f_orderkey = hj_ord->AddBuildField<int32_t>(o_orderkey);
    const size_t f_year = hj_ord->AddBuildField<int32_t>(o_year);
    hj_ord->SetBuildHash(MakeHash<int32_t>(ctx, o_orderkey));
    hj_ord->SetProbeHash(MakeHash<int32_t>(ctx, js_orderkey));
    hj_ord->AddKeyCompare<int32_t>(js_orderkey, f_orderkey);
    Slot* jo_year = hj_ord->AddBuildOutput<int32_t>(f_year);
    Slot* jo_nationkey = hj_ord->AddProbeOutput<int32_t>(js_nationkey);
    Slot* jo_cost = hj_ord->AddProbeOutput<int64_t>(js_cost);
    Slot* jo_extprice = hj_ord->AddProbeOutput<int64_t>(js_extprice);
    Slot* jo_discount = hj_ord->AddProbeOutput<int64_t>(js_discount);
    Slot* jo_quantity = hj_ord->AddProbeOutput<int64_t>(js_quantity);

    // amount = extprice * (1 - discount) - supplycost * quantity (scale 4)
    auto map = std::make_unique<Map>(std::move(hj_ord), ctx.vector_size);
    Slot* one_minus_disc = map->AddOutput<int64_t>();
    Slot* gross = map->AddOutput<int64_t>();
    Slot* cost_term = map->AddOutput<int64_t>();
    Slot* amount = map->AddOutput<int64_t>();
    map->AddStep(MakeMapRSubConst<int64_t>(
        100, jo_discount, map->OutputData<int64_t>(one_minus_disc)));
    map->AddStep(MakeMapMul<int64_t>(jo_extprice, one_minus_disc,
                                     map->OutputData<int64_t>(gross)));
    map->AddStep(MakeMapMul<int64_t>(jo_cost, jo_quantity,
                                     map->OutputData<int64_t>(cost_term)));
    map->AddStep(MakeMapSub<int64_t>(gross, cost_term,
                                     map->OutputData<int64_t>(amount)));

    auto group = std::make_unique<HashGroup>(&group_shared, wid, opt.threads,
                                             std::move(map), ctx);
    const size_t k_nation = group->AddKey<int32_t>(jo_nationkey);
    const size_t k_year = group->AddKey<int32_t>(jo_year);
    const size_t a_profit = group->AddSumAgg(amount);
    Slot* g_nation = group->AddOutput<int32_t>(k_nation);
    Slot* g_year = group->AddOutput<int32_t>(k_year);
    Slot* g_profit = group->AddOutput<int64_t>(a_profit);

    size_t n;
    while ((n = group->Next()) != kEndOfStream) {
      std::lock_guard<std::mutex> lock(mu);
      for (size_t k = 0; k < n; ++k) {
        rows.push_back(Row{Get<int32_t>(g_nation)[k], Get<int32_t>(g_year)[k],
                           Get<int64_t>(g_profit)[k]});
      }
    }
    roots[wid] = std::move(group);
  });
  roots.clear();

  const auto n_name = nation.Col<Char<25>>("n_name");
  std::sort(rows.begin(), rows.end(), [&](const Row& a, const Row& b) {
    const auto an = n_name[a.nationkey].View();
    const auto bn = n_name[b.nationkey].View();
    if (an != bn) return an < bn;
    return a.year > b.year;
  });
  ResultBuilder rb({"nation", "o_year", "sum_profit"});
  for (const Row& r : rows) {
    rb.BeginRow()
        .Str(n_name[r.nationkey].View())
        .Int(r.year)
        .Numeric(r.profit, 4);
  }
  return rb.Finish();
}

// ---------------------------------------------------------------------------
// Q18: high-cardinality aggregation, having-filter, two joins, top-100
// ---------------------------------------------------------------------------
QueryResult RunQ18(const Database& db, const QueryOptions& opt) {
  const Relation& lineitem = db["lineitem"];
  const Relation& orders = db["orders"];
  const Relation& customer = db["customer"];
  const ExecContext ctx = MakeContext(opt);

  Scan::Shared scan_li(lineitem.tuple_count(), opt.morsel_grain);
  Scan::Shared scan_ord(orders.tuple_count(), opt.morsel_grain);
  Scan::Shared scan_cust(customer.tuple_count(), opt.morsel_grain);
  HashGroup::Shared group_shared(opt.threads);
  HashJoin::Shared join_ord(opt.threads);
  HashJoin::Shared join_cust(opt.threads);

  struct Row {
    Char<25> name;
    int32_t custkey, orderkey, orderdate;
    int64_t totalprice, sum_qty;
  };
  std::vector<Row> rows;
  std::mutex mu;
  std::vector<std::unique_ptr<Operator>> roots(opt.threads);

  runtime::WorkerPool::Global().Run(opt.threads, [&](size_t wid) {
    // 1.5M-group aggregation of lineitem by orderkey.
    auto lscan =
        std::make_unique<Scan>(&scan_li, &lineitem, ctx.vector_size);
    Slot* l_orderkey = lscan->AddColumn<int32_t>("l_orderkey");
    Slot* l_quantity = lscan->AddColumn<int64_t>("l_quantity");
    auto group = std::make_unique<HashGroup>(&group_shared, wid, opt.threads,
                                             std::move(lscan), ctx);
    const size_t k_okey = group->AddKey<int32_t>(l_orderkey);
    const size_t a_qty = group->AddSumAgg(l_quantity);
    Slot* g_okey = group->AddOutput<int32_t>(k_okey);
    Slot* g_qty = group->AddOutput<int64_t>(a_qty);

    // having sum(l_quantity) > 300 (scale 2).
    auto having = std::make_unique<Select>(std::move(group), ctx);
    having->AddStep(MakeSelCmp<int64_t>(ctx, g_qty, CmpOp::kGreater, 30000));
    CompactColumn<int32_t>(ctx, having->compactor(), g_okey);
    CompactColumn<int64_t>(ctx, having->compactor(), g_qty);

    // Join the qualifying orderkeys with orders.
    auto oscan = std::make_unique<Scan>(&scan_ord, &orders, ctx.vector_size);
    Slot* o_orderkey = oscan->AddColumn<int32_t>("o_orderkey");
    Slot* o_custkey = oscan->AddColumn<int32_t>("o_custkey");
    Slot* o_orderdate = oscan->AddColumn<int32_t>("o_orderdate");
    Slot* o_totalprice = oscan->AddColumn<int64_t>("o_totalprice");

    auto hj_o = std::make_unique<HashJoin>(&join_ord, std::move(having),
                                           std::move(oscan), ctx);
    const size_t f_okey = hj_o->AddBuildField<int32_t>(g_okey);
    const size_t f_qty = hj_o->AddBuildField<int64_t>(g_qty);
    hj_o->SetBuildHash(MakeHash<int32_t>(ctx, g_okey));
    hj_o->SetProbeHash(MakeHash<int32_t>(ctx, o_orderkey));
    hj_o->AddKeyCompare<int32_t>(o_orderkey, f_okey);
    Slot* jo_qty = hj_o->AddBuildOutput<int64_t>(f_qty);
    Slot* jo_orderkey = hj_o->AddProbeOutput<int32_t>(o_orderkey);
    Slot* jo_custkey = hj_o->AddProbeOutput<int32_t>(o_custkey);
    Slot* jo_orderdate = hj_o->AddProbeOutput<int32_t>(o_orderdate);
    Slot* jo_totalprice = hj_o->AddProbeOutput<int64_t>(o_totalprice);

    // Customer join for the name. Customer is the build side: its key is
    // unique, whereas several qualifying orders may share a customer.
    auto cscan =
        std::make_unique<Scan>(&scan_cust, &customer, ctx.vector_size);
    Slot* c_custkey = cscan->AddColumn<int32_t>("c_custkey");
    Slot* c_name = cscan->AddColumn<Char<25>>("c_name");
    auto hj_c = std::make_unique<HashJoin>(&join_cust, std::move(cscan),
                                           std::move(hj_o), ctx);
    const size_t f_custkey = hj_c->AddBuildField<int32_t>(c_custkey);
    const size_t f_name = hj_c->AddBuildField<Char<25>>(c_name);
    hj_c->SetBuildHash(MakeHash<int32_t>(ctx, c_custkey));
    hj_c->SetProbeHash(MakeHash<int32_t>(ctx, jo_custkey));
    hj_c->AddKeyCompare<int32_t>(jo_custkey, f_custkey);
    Slot* out_name = hj_c->AddBuildOutput<Char<25>>(f_name);
    Slot* out_custkey = hj_c->AddProbeOutput<int32_t>(jo_custkey);
    Slot* out_orderkey = hj_c->AddProbeOutput<int32_t>(jo_orderkey);
    Slot* out_orderdate = hj_c->AddProbeOutput<int32_t>(jo_orderdate);
    Slot* out_total = hj_c->AddProbeOutput<int64_t>(jo_totalprice);
    Slot* out_qty = hj_c->AddProbeOutput<int64_t>(jo_qty);

    size_t n;
    while ((n = hj_c->Next()) != kEndOfStream) {
      std::lock_guard<std::mutex> lock(mu);
      for (size_t k = 0; k < n; ++k) {
        rows.push_back(Row{Get<Char<25>>(out_name)[k],
                           Get<int32_t>(out_custkey)[k],
                           Get<int32_t>(out_orderkey)[k],
                           Get<int32_t>(out_orderdate)[k],
                           Get<int64_t>(out_total)[k],
                           Get<int64_t>(out_qty)[k]});
      }
    }
    roots[wid] = std::move(hj_c);
  });
  roots.clear();

  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return std::tie(b.totalprice, a.orderdate, a.orderkey) <
           std::tie(a.totalprice, b.orderdate, b.orderkey);
  });
  if (rows.size() > 100) rows.resize(100);
  ResultBuilder rb({"c_name", "c_custkey", "o_orderkey", "o_orderdate",
                    "o_totalprice", "sum_qty"});
  for (const Row& r : rows) {
    rb.BeginRow()
        .Str(r.name.View())
        .Int(r.custkey)
        .Int(r.orderkey)
        .Date(r.orderdate)
        .Numeric(r.totalprice, 2)
        .Numeric(r.sum_qty, 2);
  }
  return rb.Finish();
}

}  // namespace vcq::tectorwise
