#include <algorithm>
#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "runtime/types.h"
#include "tectorwise/plan.h"
#include "tectorwise/queries.h"

// TPC-H query plans for the Tectorwise engine, described declaratively with
// the PlanBuilder (plan.h): each query is a DAG of nodes plus a small
// collector; the builder wires the per-worker operator trees, the shared
// state, and the derived compaction registrations. Collectors merge the
// tiny root cardinalities under the plan's mutex.
//
// Every query is split prepare/run (queries.h): MakeQ* builds the plan DAG
// once with predicate constants declared as named parameters (CmpParam et
// al.), PrepareQ* pairs it with a collector closure, and the Run entry
// points are one-shot conveniences over a throwaway Prepared.

namespace vcq::tectorwise {

using runtime::Char;
using runtime::Database;
using runtime::QueryOptions;
using runtime::QueryParams;
using runtime::QueryResult;
using runtime::ResultBuilder;
using runtime::Varchar;

namespace {

// ---------------------------------------------------------------------------
// Q1: in-cache aggregation over fixed-point arithmetic (4 groups)
// ---------------------------------------------------------------------------

struct Q1Plan {
  Plan plan;
  ColumnRef rf, ls, qty, base, disc_price, charge, disc, count;
};

// Shared front of both Q1 variants: filtered lineitem scan plus the
// fixed-point derived columns.
struct Q1Front {
  MapNode* map;
  ColumnRef rf, ls, qty, extprice, discount, disc_price, charge;
};

Q1Front MakeQ1Front(PlanBuilder& pb, const Database& db) {
  auto& scan = pb.Scan(db["lineitem"], "lineitem");
  const ColumnRef shipdate = scan.Col<int32_t>("l_shipdate");
  const ColumnRef rf = scan.Col<Char<1>>("l_returnflag");
  const ColumnRef ls = scan.Col<Char<1>>("l_linestatus");
  const ColumnRef qty = scan.Col<int64_t>("l_quantity");
  const ColumnRef extprice = scan.Col<int64_t>("l_extendedprice");
  const ColumnRef discount = scan.Col<int64_t>("l_discount");
  const ColumnRef tax = scan.Col<int64_t>("l_tax");

  auto& sel = pb.Select(scan);
  sel.CmpParam<int32_t>(shipdate, CmpOp::kLessEq, "shipdate");

  auto& map = pb.Map(sel);
  // Fused steps: the (1 - discount) / (1 + tax) intermediates are never
  // materialized.
  const ColumnRef disc_price = map.MulRSubConst<int64_t>(
      extprice, 100, discount, "disc_price");  // scale 4
  const ColumnRef charge =
      map.MulAddConst<int64_t>(disc_price, 100, tax, "charge");  // scale 6

  return Q1Front{&map, rf, ls, qty, extprice, discount, disc_price, charge};
}

Q1Plan MakeQ1(const Database& db) {
  PlanBuilder pb("Q1");
  const Q1Front f = MakeQ1Front(pb, db);

  auto& group = pb.HashGroup(*f.map);
  const ColumnRef g_rf = group.Key<Char<1>>(f.rf);
  const ColumnRef g_ls = group.Key<Char<1>>(f.ls);
  const ColumnRef g_qty = group.Sum(f.qty);
  const ColumnRef g_base = group.Sum(f.extprice);
  const ColumnRef g_dp = group.Sum(f.disc_price);
  const ColumnRef g_ch = group.Sum(f.charge);
  const ColumnRef g_disc = group.Sum(f.discount);
  const ColumnRef g_cnt = group.Count();

  Plan plan = pb.Build(
      group, {g_rf, g_ls, g_qty, g_base, g_dp, g_ch, g_disc, g_cnt});
  return Q1Plan{std::move(plan), g_rf,   g_ls, g_qty,
                g_base,          g_dp,   g_ch, g_disc,
                g_cnt};
}

// Q1 with micro-adaptive ordered aggregation (paper §8.4): same front, but
// the hash group-by is replaced by the OrderedAgg node (per-vector
// partitioning into per-group selection vectors, register accumulation).
// Q1's four groups never exceed the node's group budget.
Q1Plan MakeQ1Adaptive(const Database& db) {
  PlanBuilder pb("Q1-adaptive");
  const Q1Front f = MakeQ1Front(pb, db);

  auto& agg = pb.OrderedAgg(*f.map, /*max_groups=*/16);
  const ColumnRef a_rf = agg.Key(f.rf);
  const ColumnRef a_ls = agg.Key(f.ls);
  const ColumnRef a_qty = agg.Sum(f.qty);
  const ColumnRef a_base = agg.Sum(f.extprice);
  const ColumnRef a_dp = agg.Sum(f.disc_price);
  const ColumnRef a_ch = agg.Sum(f.charge);
  const ColumnRef a_disc = agg.Sum(f.discount);
  const ColumnRef a_cnt = agg.Count();

  Plan plan = pb.Build(
      agg, {a_rf, a_ls, a_qty, a_base, a_dp, a_ch, a_disc, a_cnt});
  return Q1Plan{std::move(plan), a_rf,   a_ls, a_qty,
                a_base,          a_dp,   a_ch, a_disc,
                a_cnt};
}

struct Q1Agg {
  int64_t qty = 0, base = 0, disc_price = 0, charge = 0, disc = 0, count = 0;
};

QueryResult FormatQ1(
    const std::vector<std::pair<std::pair<char, char>, Q1Agg>>& rows) {
  ResultBuilder rb({"l_returnflag", "l_linestatus", "sum_qty",
                    "sum_base_price", "sum_disc_price", "sum_charge",
                    "avg_qty", "avg_price", "avg_disc", "count_order"});
  for (const auto& [key, a] : rows) {
    rb.BeginRow()
        .Str(std::string_view(&key.first, 1))
        .Str(std::string_view(&key.second, 1))
        .Numeric(a.qty, 2)
        .Numeric(a.base, 2)
        .Numeric(a.disc_price, 4)
        .Numeric(a.charge, 6)
        .Avg(a.qty, a.count, 2, 2)
        .Avg(a.base, a.count, 2, 2)
        .Avg(a.disc, a.count, 2, 2)
        .Int(a.count);
  }
  return rb.Finish();
}

// The hash variant's workers emit each group once; the adaptive variant
// emits per-worker partial groups, so both collectors merge by key.
Prepared MakePreparedQ1(Q1Plan q) {
  const ColumnRef rf = q.rf, ls = q.ls, qty = q.qty, base = q.base;
  const ColumnRef dp = q.disc_price, ch = q.charge, disc = q.disc;
  const ColumnRef cnt = q.count;
  return Prepared(
      std::move(q.plan),
      [=](const Plan& plan, const QueryOptions& opt,
          const QueryParams& params) {
        std::map<std::pair<char, char>, Q1Agg> merged;
        plan.Run(opt, params, [&](const Plan::Batch& b) {
          for (size_t k = 0; k < b.size(); ++k) {
            Q1Agg& agg = merged[{b.Column<Char<1>>(rf)[k].data[0],
                                 b.Column<Char<1>>(ls)[k].data[0]}];
            agg.qty += b.Column<int64_t>(qty)[k];
            agg.base += b.Column<int64_t>(base)[k];
            agg.disc_price += b.Column<int64_t>(dp)[k];
            agg.charge += b.Column<int64_t>(ch)[k];
            agg.disc += b.Column<int64_t>(disc)[k];
            agg.count += b.Column<int64_t>(cnt)[k];
          }
        });
        std::vector<std::pair<std::pair<char, char>, Q1Agg>> rows(
            merged.begin(), merged.end());
        return FormatQ1(rows);
      });
}

Prepared PrepareQ1(const Database& db, const QueryOptions& opt) {
  return MakePreparedQ1(opt.adaptive ? MakeQ1Adaptive(db) : MakeQ1(db));
}

// ---------------------------------------------------------------------------
// Q6: selective scan
// ---------------------------------------------------------------------------

Prepared PrepareQ6(const Database& db) {
  PlanBuilder pb("Q6");
  auto& scan = pb.Scan(db["lineitem"], "lineitem");
  const ColumnRef shipdate = scan.Col<int32_t>("l_shipdate");
  const ColumnRef discount = scan.Col<int64_t>("l_discount");
  const ColumnRef quantity = scan.Col<int64_t>("l_quantity");
  const ColumnRef extprice = scan.Col<int64_t>("l_extendedprice");

  auto& sel = pb.Select(scan);
  sel.BetweenParam<int32_t>(shipdate, "shipdate_lo", "shipdate_hi");
  sel.BetweenParam<int64_t>(discount, "discount_lo", "discount_hi");
  sel.CmpParam<int64_t>(quantity, CmpOp::kLess, "quantity_max");

  auto& map = pb.Map(sel);
  const ColumnRef revenue =
      map.Mul<int64_t>(extprice, discount, "revenue");  // scale 4

  auto& agg = pb.FixedAgg(map);
  const ColumnRef total = agg.Sum(revenue, "revenue");

  return Prepared(pb.Build(agg, {total}),
                  [total](const Plan& plan, const QueryOptions& opt,
                          const QueryParams& params) {
                    int64_t sum = 0;
                    plan.Run(opt, params, [&](const Plan::Batch& b) {
                      sum += b.Column<int64_t>(total)[0];
                    });
                    ResultBuilder rb({"revenue"});
                    rb.BeginRow().Numeric(sum, 4);
                    return rb.Finish();
                  });
}

// ---------------------------------------------------------------------------
// Q3: two joins feeding a group-by, top-10
// ---------------------------------------------------------------------------

Prepared PrepareQ3(const Database& db) {
  PlanBuilder pb("Q3");

  // Build side 1: customers in the requested segment.
  auto& cscan = pb.Scan(db["customer"], "customer");
  const ColumnRef c_custkey = cscan.Col<int32_t>("c_custkey");
  const ColumnRef c_mkt = cscan.Col<Char<10>>("c_mktsegment");
  auto& csel = pb.Select(cscan);
  csel.CmpParam<Char<10>>(c_mkt, CmpOp::kEq, "segment");

  // Probe side 1: orders before the date.
  auto& oscan = pb.Scan(db["orders"], "orders");
  const ColumnRef o_orderkey = oscan.Col<int32_t>("o_orderkey");
  const ColumnRef o_custkey = oscan.Col<int32_t>("o_custkey");
  const ColumnRef o_orderdate = oscan.Col<int32_t>("o_orderdate");
  const ColumnRef o_shipprio = oscan.Col<int32_t>("o_shippriority");
  auto& osel = pb.Select(oscan);
  osel.CmpParam<int32_t>(o_orderdate, CmpOp::kLess, "date");

  auto& hj1 = pb.HashJoin(csel, osel);
  hj1.Key<int32_t>(o_custkey, c_custkey);
  const ColumnRef j1_orderkey = hj1.Probe<int32_t>(o_orderkey);
  const ColumnRef j1_orderdate = hj1.Probe<int32_t>(o_orderdate);
  const ColumnRef j1_shipprio = hj1.Probe<int32_t>(o_shipprio);

  // Probe side 2: lineitems shipped after the date.
  auto& lscan = pb.Scan(db["lineitem"], "lineitem");
  const ColumnRef l_orderkey = lscan.Col<int32_t>("l_orderkey");
  const ColumnRef l_shipdate = lscan.Col<int32_t>("l_shipdate");
  const ColumnRef l_extprice = lscan.Col<int64_t>("l_extendedprice");
  const ColumnRef l_discount = lscan.Col<int64_t>("l_discount");
  auto& lsel = pb.Select(lscan);
  lsel.CmpParam<int32_t>(l_shipdate, CmpOp::kGreater, "date");

  auto& hj2 = pb.HashJoin(hj1, lsel);
  hj2.Key<int32_t>(l_orderkey, j1_orderkey);
  const ColumnRef j2_orderkey = hj2.Build<int32_t>(j1_orderkey);
  const ColumnRef j2_orderdate = hj2.Build<int32_t>(j1_orderdate);
  const ColumnRef j2_shipprio = hj2.Build<int32_t>(j1_shipprio);
  const ColumnRef j2_extprice = hj2.Probe<int64_t>(l_extprice);
  const ColumnRef j2_discount = hj2.Probe<int64_t>(l_discount);

  auto& map = pb.Map(hj2);
  const ColumnRef one_minus_disc =
      map.RSubConst<int64_t>(100, j2_discount, "one_minus_disc");
  const ColumnRef revenue =
      map.Mul<int64_t>(j2_extprice, one_minus_disc, "revenue");  // scale 4

  auto& group = pb.HashGroup(map);
  const ColumnRef g_okey = group.Key<int32_t>(j2_orderkey);
  const ColumnRef g_odate = group.Key<int32_t>(j2_orderdate);
  const ColumnRef g_prio = group.Key<int32_t>(j2_shipprio);
  const ColumnRef g_rev = group.Sum(revenue);

  Plan plan = pb.Build(group, {g_okey, g_odate, g_prio, g_rev});
  return Prepared(
      std::move(plan),
      [g_okey, g_odate, g_prio, g_rev](const Plan& plan,
                                       const QueryOptions& opt,
                                       const QueryParams& params) {
        struct Row {
          int32_t orderkey, orderdate, shippriority;
          int64_t revenue;
        };
        std::vector<Row> rows;
        plan.Run(opt, params, [&](const Plan::Batch& b) {
          for (size_t k = 0; k < b.size(); ++k) {
            rows.push_back(Row{b.Column<int32_t>(g_okey)[k],
                               b.Column<int32_t>(g_odate)[k],
                               b.Column<int32_t>(g_prio)[k],
                               b.Column<int64_t>(g_rev)[k]});
          }
        });

        std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
          return std::tie(b.revenue, a.orderdate, a.orderkey) <
                 std::tie(a.revenue, b.orderdate, b.orderkey);
        });
        if (rows.size() > 10) rows.resize(10);
        ResultBuilder rb(
            {"l_orderkey", "revenue", "o_orderdate", "o_shippriority"});
        for (const Row& r : rows) {
          rb.BeginRow()
              .Int(r.orderkey)
              .Numeric(r.revenue, 4)
              .Date(r.orderdate)
              .Int(r.shippriority);
        }
        return rb.Finish();
      });
}

// ---------------------------------------------------------------------------
// Q9: four joins (one composite-key) into a group-by
// ---------------------------------------------------------------------------

Prepared PrepareQ9(const Database& db) {
  PlanBuilder pb("Q9");

  // Parts of the requested color.
  auto& pscan = pb.Scan(db["part"], "part");
  const ColumnRef p_partkey = pscan.Col<int32_t>("p_partkey");
  const ColumnRef p_name = pscan.Col<Varchar<55>>("p_name");
  auto& psel = pb.Select(pscan);
  psel.ContainsParam<Varchar<55>>(p_name, "color");

  // partsupp semi-joined with those parts, then built as a composite HT.
  auto& psscan = pb.Scan(db["partsupp"], "partsupp");
  const ColumnRef ps_partkey = psscan.Col<int32_t>("ps_partkey");
  const ColumnRef ps_suppkey = psscan.Col<int32_t>("ps_suppkey");
  const ColumnRef ps_cost = psscan.Col<int64_t>("ps_supplycost");

  auto& hj_part = pb.HashJoin(psel, psscan);
  hj_part.Key<int32_t>(ps_partkey, p_partkey);
  const ColumnRef jp_partkey = hj_part.Probe<int32_t>(ps_partkey);
  const ColumnRef jp_suppkey = hj_part.Probe<int32_t>(ps_suppkey);
  const ColumnRef jp_cost = hj_part.Probe<int64_t>(ps_cost);

  // Probe chain start: lineitem.
  auto& lscan = pb.Scan(db["lineitem"], "lineitem");
  const ColumnRef l_orderkey = lscan.Col<int32_t>("l_orderkey");
  const ColumnRef l_partkey = lscan.Col<int32_t>("l_partkey");
  const ColumnRef l_suppkey = lscan.Col<int32_t>("l_suppkey");
  const ColumnRef l_extprice = lscan.Col<int64_t>("l_extendedprice");
  const ColumnRef l_discount = lscan.Col<int64_t>("l_discount");
  const ColumnRef l_quantity = lscan.Col<int64_t>("l_quantity");

  // Composite-key join against (ps_partkey, ps_suppkey).
  auto& hj_ps = pb.HashJoin(hj_part, lscan);
  hj_ps.Key<int32_t>(l_partkey, jp_partkey);
  hj_ps.Key<int32_t>(l_suppkey, jp_suppkey);
  const ColumnRef jps_cost = hj_ps.Build<int64_t>(jp_cost);
  const ColumnRef jps_orderkey = hj_ps.Probe<int32_t>(l_orderkey);
  const ColumnRef jps_suppkey = hj_ps.Probe<int32_t>(l_suppkey);
  const ColumnRef jps_extprice = hj_ps.Probe<int64_t>(l_extprice);
  const ColumnRef jps_discount = hj_ps.Probe<int64_t>(l_discount);
  const ColumnRef jps_quantity = hj_ps.Probe<int64_t>(l_quantity);

  // Supplier join (adds s_nationkey).
  auto& sscan = pb.Scan(db["supplier"], "supplier");
  const ColumnRef s_suppkey = sscan.Col<int32_t>("s_suppkey");
  const ColumnRef s_nationkey = sscan.Col<int32_t>("s_nationkey");
  auto& hj_supp = pb.HashJoin(sscan, hj_ps);
  hj_supp.Key<int32_t>(jps_suppkey, s_suppkey);
  const ColumnRef js_nationkey = hj_supp.Build<int32_t>(s_nationkey);
  const ColumnRef js_orderkey = hj_supp.Probe<int32_t>(jps_orderkey);
  const ColumnRef js_cost = hj_supp.Probe<int64_t>(jps_cost);
  const ColumnRef js_extprice = hj_supp.Probe<int64_t>(jps_extprice);
  const ColumnRef js_discount = hj_supp.Probe<int64_t>(jps_discount);
  const ColumnRef js_quantity = hj_supp.Probe<int64_t>(jps_quantity);

  // Orders join (adds the order year).
  auto& oscan = pb.Scan(db["orders"], "orders");
  const ColumnRef o_orderkey = oscan.Col<int32_t>("o_orderkey");
  const ColumnRef o_orderdate = oscan.Col<int32_t>("o_orderdate");
  auto& omap = pb.Map(oscan);
  const ColumnRef o_year = omap.Year(o_orderdate, "o_year");

  auto& hj_ord = pb.HashJoin(omap, hj_supp);
  hj_ord.Key<int32_t>(js_orderkey, o_orderkey);
  const ColumnRef jo_year = hj_ord.Build<int32_t>(o_year);
  const ColumnRef jo_nationkey = hj_ord.Probe<int32_t>(js_nationkey);
  const ColumnRef jo_cost = hj_ord.Probe<int64_t>(js_cost);
  const ColumnRef jo_extprice = hj_ord.Probe<int64_t>(js_extprice);
  const ColumnRef jo_discount = hj_ord.Probe<int64_t>(js_discount);
  const ColumnRef jo_quantity = hj_ord.Probe<int64_t>(js_quantity);

  // amount = extprice * (1 - discount) - supplycost * quantity (scale 4)
  auto& map = pb.Map(hj_ord);
  const ColumnRef one_minus_disc =
      map.RSubConst<int64_t>(100, jo_discount, "one_minus_disc");
  const ColumnRef gross =
      map.Mul<int64_t>(jo_extprice, one_minus_disc, "gross");
  const ColumnRef cost_term =
      map.Mul<int64_t>(jo_cost, jo_quantity, "cost_term");
  const ColumnRef amount = map.Sub<int64_t>(gross, cost_term, "amount");

  auto& group = pb.HashGroup(map);
  const ColumnRef g_nation = group.Key<int32_t>(jo_nationkey);
  const ColumnRef g_year = group.Key<int32_t>(jo_year);
  const ColumnRef g_profit = group.Sum(amount);

  Plan plan = pb.Build(group, {g_nation, g_year, g_profit});
  const runtime::Database* dbp = &db;
  return Prepared(
      std::move(plan),
      [g_nation, g_year, g_profit, dbp](const Plan& plan,
                                        const QueryOptions& opt,
                                        const QueryParams& params) {
        struct Row {
          int32_t nationkey, year;
          int64_t profit;
        };
        std::vector<Row> rows;
        plan.Run(opt, params, [&](const Plan::Batch& b) {
          for (size_t k = 0; k < b.size(); ++k) {
            rows.push_back(Row{b.Column<int32_t>(g_nation)[k],
                               b.Column<int32_t>(g_year)[k],
                               b.Column<int64_t>(g_profit)[k]});
          }
        });

        const auto n_name = (*dbp)["nation"].Col<Char<25>>("n_name");
        std::sort(rows.begin(), rows.end(), [&](const Row& a, const Row& b) {
          const auto an = n_name[a.nationkey].View();
          const auto bn = n_name[b.nationkey].View();
          if (an != bn) return an < bn;
          return a.year > b.year;
        });
        ResultBuilder rb({"nation", "o_year", "sum_profit"});
        for (const Row& r : rows) {
          rb.BeginRow()
              .Str(n_name[r.nationkey].View())
              .Int(r.year)
              .Numeric(r.profit, 4);
        }
        return rb.Finish();
      });
}

// ---------------------------------------------------------------------------
// Q18: high-cardinality aggregation, having-filter, two joins, top-100
// ---------------------------------------------------------------------------

Prepared PrepareQ18(const Database& db) {
  PlanBuilder pb("Q18");

  // 1.5M-group aggregation of lineitem by orderkey.
  auto& lscan = pb.Scan(db["lineitem"], "lineitem");
  const ColumnRef l_orderkey = lscan.Col<int32_t>("l_orderkey");
  const ColumnRef l_quantity = lscan.Col<int64_t>("l_quantity");
  auto& group = pb.HashGroup(lscan);
  const ColumnRef g_okey = group.Key<int32_t>(l_orderkey);
  const ColumnRef g_qty = group.Sum(l_quantity);

  // having sum(l_quantity) > :quantity_min (scale 2).
  auto& having = pb.Select(group);
  having.CmpParam<int64_t>(g_qty, CmpOp::kGreater, "quantity_min");

  // Join the qualifying orderkeys with orders.
  auto& oscan = pb.Scan(db["orders"], "orders");
  const ColumnRef o_orderkey = oscan.Col<int32_t>("o_orderkey");
  const ColumnRef o_custkey = oscan.Col<int32_t>("o_custkey");
  const ColumnRef o_orderdate = oscan.Col<int32_t>("o_orderdate");
  const ColumnRef o_totalprice = oscan.Col<int64_t>("o_totalprice");

  auto& hj_o = pb.HashJoin(having, oscan);
  hj_o.Key<int32_t>(o_orderkey, g_okey);
  const ColumnRef jo_qty = hj_o.Build<int64_t>(g_qty);
  const ColumnRef jo_orderkey = hj_o.Probe<int32_t>(o_orderkey);
  const ColumnRef jo_custkey = hj_o.Probe<int32_t>(o_custkey);
  const ColumnRef jo_orderdate = hj_o.Probe<int32_t>(o_orderdate);
  const ColumnRef jo_totalprice = hj_o.Probe<int64_t>(o_totalprice);

  // Customer join for the name. Customer is the build side: its key is
  // unique, whereas several qualifying orders may share a customer.
  auto& cscan = pb.Scan(db["customer"], "customer");
  const ColumnRef c_custkey = cscan.Col<int32_t>("c_custkey");
  const ColumnRef c_name = cscan.Col<Char<25>>("c_name");
  auto& hj_c = pb.HashJoin(cscan, hj_o);
  hj_c.Key<int32_t>(jo_custkey, c_custkey);
  const ColumnRef out_name = hj_c.Build<Char<25>>(c_name);
  const ColumnRef out_custkey = hj_c.Probe<int32_t>(jo_custkey);
  const ColumnRef out_orderkey = hj_c.Probe<int32_t>(jo_orderkey);
  const ColumnRef out_orderdate = hj_c.Probe<int32_t>(jo_orderdate);
  const ColumnRef out_total = hj_c.Probe<int64_t>(jo_totalprice);
  const ColumnRef out_qty = hj_c.Probe<int64_t>(jo_qty);

  Plan plan = pb.Build(hj_c, {out_name, out_custkey, out_orderkey,
                              out_orderdate, out_total, out_qty});
  return Prepared(
      std::move(plan),
      [out_name, out_custkey, out_orderkey, out_orderdate, out_total,
       out_qty](const Plan& plan, const QueryOptions& opt,
                const QueryParams& params) {
        struct Row {
          Char<25> name;
          int32_t custkey, orderkey, orderdate;
          int64_t totalprice, sum_qty;
        };
        std::vector<Row> rows;
        plan.Run(opt, params, [&](const Plan::Batch& b) {
          for (size_t k = 0; k < b.size(); ++k) {
            rows.push_back(Row{b.Column<Char<25>>(out_name)[k],
                               b.Column<int32_t>(out_custkey)[k],
                               b.Column<int32_t>(out_orderkey)[k],
                               b.Column<int32_t>(out_orderdate)[k],
                               b.Column<int64_t>(out_total)[k],
                               b.Column<int64_t>(out_qty)[k]});
          }
        });

        std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
          return std::tie(b.totalprice, a.orderdate, a.orderkey) <
                 std::tie(a.totalprice, b.orderdate, b.orderkey);
        });
        if (rows.size() > 100) rows.resize(100);
        ResultBuilder rb({"c_name", "c_custkey", "o_orderkey", "o_orderdate",
                          "o_totalprice", "sum_qty"});
        for (const Row& r : rows) {
          rb.BeginRow()
              .Str(r.name.View())
              .Int(r.custkey)
              .Int(r.orderkey)
              .Date(r.orderdate)
              .Numeric(r.totalprice, 2)
              .Numeric(r.sum_qty, 2);
        }
        return rb.Finish();
      });
}

}  // namespace

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

QueryResult RunQ1(const Database& db, const QueryOptions& opt,
                  const QueryParams& params) {
  return PrepareQ1(db, opt).Run(opt, params);
}

QueryResult RunQ6(const Database& db, const QueryOptions& opt,
                  const QueryParams& params) {
  return PrepareQ6(db).Run(opt, params);
}

QueryResult RunQ3(const Database& db, const QueryOptions& opt,
                  const QueryParams& params) {
  return PrepareQ3(db).Run(opt, params);
}

QueryResult RunQ9(const Database& db, const QueryOptions& opt,
                  const QueryParams& params) {
  return PrepareQ9(db).Run(opt, params);
}

QueryResult RunQ18(const Database& db, const QueryOptions& opt,
                   const QueryParams& params) {
  return PrepareQ18(db).Run(opt, params);
}

Prepared Prepare(const Database& db, std::string_view query_name,
                 const QueryOptions& opt) {
  if (query_name == "Q1") return PrepareQ1(db, opt);
  if (query_name == "Q6") return PrepareQ6(db);
  if (query_name == "Q3") return PrepareQ3(db);
  if (query_name == "Q9") return PrepareQ9(db);
  if (query_name == "Q18") return PrepareQ18(db);
  return detail::SsbPrepare(db, query_name);
}

Plan PlanFor(const Database& db, std::string_view query_name) {
  if (query_name == "Q1-adaptive") {
    QueryOptions opt;
    opt.adaptive = true;
    return Prepare(db, "Q1", opt).TakePlan();
  }
  return Prepare(db, query_name, QueryOptions{}).TakePlan();
}

}  // namespace vcq::tectorwise
