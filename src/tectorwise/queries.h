#ifndef VCQ_TECTORWISE_QUERIES_H_
#define VCQ_TECTORWISE_QUERIES_H_

#include <string_view>

#include "runtime/options.h"
#include "runtime/query_result.h"
#include "runtime/relation.h"

// Tectorwise implementations of the studied workload (paper §3.3): the
// representative TPC-H subset Q1/Q6/Q3/Q9/Q18 and SSB Q1.1/Q2.1/Q3.1/Q4.1.
// Each query is a declarative PlanBuilder description (see plan.h) plus a
// small collector; compaction-column registration is derived from slot
// usage by the builder.

namespace vcq::tectorwise {

class Plan;

runtime::QueryResult RunQ1(const runtime::Database& db,
                           const runtime::QueryOptions& opt);
runtime::QueryResult RunQ6(const runtime::Database& db,
                           const runtime::QueryOptions& opt);
runtime::QueryResult RunQ3(const runtime::Database& db,
                           const runtime::QueryOptions& opt);
runtime::QueryResult RunQ9(const runtime::Database& db,
                           const runtime::QueryOptions& opt);
runtime::QueryResult RunQ18(const runtime::Database& db,
                            const runtime::QueryOptions& opt);

runtime::QueryResult RunSsbQ11(const runtime::Database& db,
                               const runtime::QueryOptions& opt);
runtime::QueryResult RunSsbQ21(const runtime::Database& db,
                               const runtime::QueryOptions& opt);
runtime::QueryResult RunSsbQ31(const runtime::Database& db,
                               const runtime::QueryOptions& opt);
runtime::QueryResult RunSsbQ41(const runtime::Database& db,
                               const runtime::QueryOptions& opt);

/// Builds (without running) the declarative plan for the named query —
/// "Q1", "Q1-adaptive", "Q6", "Q3", "Q9", "Q18", "SSB-Q1.1", "SSB-Q2.1",
/// "SSB-Q3.1", "SSB-Q4.1" — for EXPLAIN dumps and compaction-registration
/// introspection. The database must hold the matching schema. Check-fails
/// on unknown names.
Plan PlanFor(const runtime::Database& db, std::string_view query_name);

namespace detail {
Plan SsbPlanFor(const runtime::Database& db, std::string_view query_name);
}

}  // namespace vcq::tectorwise

#endif  // VCQ_TECTORWISE_QUERIES_H_
