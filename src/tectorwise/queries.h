#ifndef VCQ_TECTORWISE_QUERIES_H_
#define VCQ_TECTORWISE_QUERIES_H_

#include "runtime/options.h"
#include "runtime/query_result.h"
#include "runtime/relation.h"

// Tectorwise implementations of the studied workload (paper §3.3): the
// representative TPC-H subset Q1/Q6/Q3/Q9/Q18 and SSB Q1.1/Q2.1/Q3.1/Q4.1.
// Plans are hand-wired from the generic operators, mirroring how the
// paper's test system configures its vectorized engine.

namespace vcq::tectorwise {

runtime::QueryResult RunQ1(const runtime::Database& db,
                           const runtime::QueryOptions& opt);
runtime::QueryResult RunQ6(const runtime::Database& db,
                           const runtime::QueryOptions& opt);
runtime::QueryResult RunQ3(const runtime::Database& db,
                           const runtime::QueryOptions& opt);
runtime::QueryResult RunQ9(const runtime::Database& db,
                           const runtime::QueryOptions& opt);
runtime::QueryResult RunQ18(const runtime::Database& db,
                            const runtime::QueryOptions& opt);

runtime::QueryResult RunSsbQ11(const runtime::Database& db,
                               const runtime::QueryOptions& opt);
runtime::QueryResult RunSsbQ21(const runtime::Database& db,
                               const runtime::QueryOptions& opt);
runtime::QueryResult RunSsbQ31(const runtime::Database& db,
                               const runtime::QueryOptions& opt);
runtime::QueryResult RunSsbQ41(const runtime::Database& db,
                               const runtime::QueryOptions& opt);

}  // namespace vcq::tectorwise

#endif  // VCQ_TECTORWISE_QUERIES_H_
