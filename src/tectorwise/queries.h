#ifndef VCQ_TECTORWISE_QUERIES_H_
#define VCQ_TECTORWISE_QUERIES_H_

#include <functional>
#include <string_view>
#include <utility>

#include "runtime/options.h"
#include "runtime/params.h"
#include "runtime/query_result.h"
#include "runtime/relation.h"
#include "tectorwise/plan.h"

// Tectorwise implementations of the studied workload (paper §3.3): the
// representative TPC-H subset Q1/Q6/Q3/Q9/Q18 and SSB Q1.1/Q2.1/Q3.1/Q4.1.
// Each query is a declarative PlanBuilder description (see plan.h) plus a
// small collector; compaction-column registration is derived from slot
// usage by the builder.
//
// The prepare/run split (paper §8.1): Prepare() validates and builds the
// plan DAG once — including the derived compaction registrations — and
// returns a Prepared whose Run() only does per-execution work (shared
// state, per-worker operator trees, collection). Predicate constants are
// named parameters resolved from the QueryParams of each Run, so one
// prepared plan serves any binding; every parameter the vcq::QueryCatalog
// declares for the query must be bound (vcq::Session merges the defaults).

namespace vcq::tectorwise {

/// A query plan built once plus the collector that turns its root batches
/// into a QueryResult. Run() is safe to call concurrently: the plan is
/// read-only after construction and every execution's mutable state
/// (shared operator state, accumulators) is created per call.
class Prepared {
 public:
  using Runner = std::function<runtime::QueryResult(
      const Plan&, const runtime::QueryOptions&,
      const runtime::QueryParams&)>;

  Prepared(Plan plan, Runner run)
      : plan_(std::move(plan)), run_(std::move(run)) {}

  runtime::QueryResult Run(const runtime::QueryOptions& opt,
                           const runtime::QueryParams& params) const {
    return run_(plan_, opt, params);
  }

  const Plan& plan() const { return plan_; }
  /// Surrenders the plan (EXPLAIN paths that only want the DAG).
  Plan TakePlan() && { return std::move(plan_); }

 private:
  Plan plan_;
  Runner run_;
};

/// Builds (without running) the prepared form of the named query — "Q1",
/// "Q6", "Q3", "Q9", "Q18", "SSB-Q1.1", "SSB-Q2.1", "SSB-Q3.1",
/// "SSB-Q4.1". For "Q1", opt.adaptive selects the §8.4 micro-adaptive
/// ordered-aggregation variant (a prepare-time plan choice). The database
/// must hold the matching schema. Check-fails on unknown names.
Prepared Prepare(const runtime::Database& db, std::string_view query_name,
                 const runtime::QueryOptions& opt);

runtime::QueryResult RunQ1(const runtime::Database& db,
                           const runtime::QueryOptions& opt,
                           const runtime::QueryParams& params);
runtime::QueryResult RunQ6(const runtime::Database& db,
                           const runtime::QueryOptions& opt,
                           const runtime::QueryParams& params);
runtime::QueryResult RunQ3(const runtime::Database& db,
                           const runtime::QueryOptions& opt,
                           const runtime::QueryParams& params);
runtime::QueryResult RunQ9(const runtime::Database& db,
                           const runtime::QueryOptions& opt,
                           const runtime::QueryParams& params);
runtime::QueryResult RunQ18(const runtime::Database& db,
                            const runtime::QueryOptions& opt,
                            const runtime::QueryParams& params);

runtime::QueryResult RunSsbQ11(const runtime::Database& db,
                               const runtime::QueryOptions& opt,
                               const runtime::QueryParams& params);
runtime::QueryResult RunSsbQ21(const runtime::Database& db,
                               const runtime::QueryOptions& opt,
                               const runtime::QueryParams& params);
runtime::QueryResult RunSsbQ31(const runtime::Database& db,
                               const runtime::QueryOptions& opt,
                               const runtime::QueryParams& params);
runtime::QueryResult RunSsbQ41(const runtime::Database& db,
                               const runtime::QueryOptions& opt,
                               const runtime::QueryParams& params);

/// Builds (without running) the declarative plan for the named query
/// (including "Q1-adaptive") — for EXPLAIN dumps and
/// compaction-registration introspection. Parameterized predicates print
/// as ":name". Check-fails on unknown names.
Plan PlanFor(const runtime::Database& db, std::string_view query_name);

namespace detail {
Prepared SsbPrepare(const runtime::Database& db, std::string_view query_name);
}

}  // namespace vcq::tectorwise

#endif  // VCQ_TECTORWISE_QUERIES_H_
