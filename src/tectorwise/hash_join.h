#ifndef VCQ_TECTORWISE_HASH_JOIN_H_
#define VCQ_TECTORWISE_HASH_JOIN_H_

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "common/bit_util.h"
#include "runtime/barrier.h"
#include "runtime/hashmap.h"
#include "runtime/mem_pool.h"
#include "tectorwise/core.h"
#include "tectorwise/operators.h"
#include "tectorwise/steps.h"

namespace vcq::tectorwise {

/// Vectorized hash join (paper Fig. 2b, §2.2). Duplicate build keys are
/// supported: every matching chain entry yields an output row (N:M join),
/// with the candidate set drained round by round so each round's hit batch
/// stays within vector_size.
///
/// Build: each worker drains its build child, materializes key+payload rows
/// into arena-allocated entries (probeHash-style expressions compute the
/// hashes; scatter primitives fill the rows), then hands its chunk list to
/// the shared runtime::JoinBuild, which sizes the table at a barrier and
/// inserts — either with the seed's global CAS pass or, by default, the
/// partition-parallel protocol that relinks entries into a contiguous
/// bucket-ordered arena (BuildMode, paper §6.1's shared-state + barrier
/// scheme).
///
/// Probe: hash primitives -> findCandidates (Bloom-tagged directory;
/// prefetch-staged variant under ctx.rof, paper §9.1) -> compareKeys
/// primitives (one per key column) -> extractHits/advance loop ->
/// buildGather + probe-side gathers into dense output vectors.
class HashJoin : public Operator {
 public:
  struct Shared {
    /// `env` carries the run's failure-containment token, fault injector
    /// and memory ledger into the shared build protocol (empty = the
    /// ungoverned seed behavior; standalone tests construct it that way).
    explicit Shared(size_t thread_count, runtime::JoinBuildEnv env = {})
        : build(&ht, thread_count, env) {}
    runtime::Hashmap ht;
    runtime::JoinBuild build;
  };

  HashJoin(Shared* shared, std::unique_ptr<Operator> build,
           std::unique_ptr<Operator> probe, const ExecContext& ctx);

  // --- build-side configuration (call before first Next) -------------------

  /// Appends a field to the entry layout, filled from `col` during build;
  /// returns its byte offset (for key compares and build outputs).
  template <typename T>
  size_t AddBuildField(const Slot* col) {
    const size_t offset = AlignUp(entry_bytes_, alignof(T));
    entry_bytes_ = offset + sizeof(T);
    scatter_steps_.push_back(
        [col, offset](size_t n, const pos_t* pos, std::byte* base,
                      size_t stride) {
          ScatterToEntries<T>(n, pos, Get<T>(col), base, stride, offset);
        });
    return offset;
  }

  void SetBuildHash(HashStep step) { build_hash_ = std::move(step); }
  void AddBuildRehash(RehashStep step) {
    build_rehash_.push_back(std::move(step));
  }
  /// Overrides the build protocol for this join (default: ctx.build_mode).
  /// All workers' HashJoin instances of one Shared must agree.
  void SetBuildMode(runtime::BuildMode mode) { build_mode_ = mode; }

  // --- probe-side configuration -----------------------------------------

  void SetProbeHash(HashStep step) { probe_hash_ = std::move(step); }
  void AddProbeRehash(RehashStep step) {
    probe_rehash_.push_back(std::move(step));
  }

  /// Key equality between probe column and entry field (one per key column;
  /// composite keys add several — the constraint of Fig. 2b).
  template <typename T>
  void AddKeyCompare(const Slot* probe_col, size_t build_field_offset) {
    const bool first = compare_steps_.empty();
    compare_steps_.push_back(
        [probe_col, build_field_offset, first](
            size_t m, runtime::Hashmap::EntryHeader* const* cand,
            const pos_t* cand_pos, uint8_t* match) {
          if (first) {
            CmpEntryKeyInit<T>(m, cand, cand_pos, Get<T>(probe_col),
                               build_field_offset, match);
          } else {
            CmpEntryKeyAnd<T>(m, cand, cand_pos, Get<T>(probe_col),
                              build_field_offset, match);
          }
        });
  }

  // --- outputs ------------------------------------------------------------
  // Output buffers hold 2 * vector_size rows: under batch compaction
  // (ctx.compaction != kNever) the join keeps probing until a full vector
  // of hits has accumulated, so a batch's hits can straddle the
  // vector_size emission boundary; the overhang is carried to the front on
  // the next Next() call. Gathers happen per probe batch either way (hit
  // positions refer to the current batch), so accumulation only changes
  // the emission cadence, not the gather work.

  /// Build-side column (entry field) gathered into a dense output vector.
  template <typename T>
  Slot* AddBuildOutput(size_t field_offset) {
    outputs_.push_back(Output{VecBuffer(2 * ctx_.vector_size * sizeof(T)),
                              std::make_unique<Slot>(), sizeof(T), {}});
    Output& o = outputs_.back();
    o.slot->ptr = o.buffer.data();
    T* out = o.buffer.As<T>();
    o.gather = [this, field_offset, out](size_t m, size_t at) {
      GatherEntry<T>(m, hits_.As<runtime::Hashmap::EntryHeader*>(),
                     field_offset, out + at);
    };
    return o.slot.get();
  }

  /// Probe-side column compacted through the hit positions.
  template <typename T>
  Slot* AddProbeOutput(const Slot* col) {
    outputs_.push_back(Output{VecBuffer(2 * ctx_.vector_size * sizeof(T)),
                              std::make_unique<Slot>(), sizeof(T), {}});
    Output& o = outputs_.back();
    o.slot->ptr = o.buffer.data();
    T* out = o.buffer.As<T>();
    o.gather = [this, col, out](size_t m, size_t at) {
      GatherPos<T>(m, hit_pos_.As<pos_t>(), Get<T>(col), out + at);
    };
    return o.slot.get();
  }

  size_t Next() override;

  /// Entry row size including the header (working-set sizing, Fig. 9).
  size_t entry_size() const;

 private:
  struct Output {
    VecBuffer buffer;
    std::unique_ptr<Slot> slot;
    size_t elem_size;
    std::function<void(size_t m, size_t at)> gather;
  };
  using ScatterStep = std::function<void(size_t n, const pos_t* pos,
                                         std::byte* base, size_t stride)>;
  using CmpStep =
      std::function<void(size_t m, runtime::Hashmap::EntryHeader* const* cand,
                         const pos_t* cand_pos, uint8_t* match)>;

  void BuildPhase();

  Shared* shared_;
  std::unique_ptr<Operator> build_;
  std::unique_ptr<Operator> probe_;
  ExecContext ctx_;

  HashStep build_hash_;
  std::vector<RehashStep> build_rehash_;
  std::vector<ScatterStep> scatter_steps_;
  HashStep probe_hash_;
  std::vector<RehashStep> probe_rehash_;
  std::vector<CmpStep> compare_steps_;
  std::vector<Output> outputs_;

  size_t entry_bytes_ = sizeof(runtime::Hashmap::EntryHeader);
  runtime::BuildMode build_mode_;
  runtime::MemPool pool_;  // worker-local entry storage (materialize phase)
  runtime::EntryChunkList chunks_;
  bool built_ = false;
  bool probe_eos_ = false;
  size_t cand_rem_ = 0;  // live candidates of the current probe batch

  // Probe-output accumulation state (batch compaction of the join result).
  size_t out_pending_ = 0;  // gathered rows not yet emitted
  size_t out_emitted_ = 0;  // rows published by the last emission
  LocalBatchStats stats_;

  // Probe scratch vectors.
  VecBuffer hashes_;
  VecBuffer pos_;
  VecBuffer cand_;
  VecBuffer cand_pos_;
  VecBuffer match_;
  VecBuffer hits_;
  VecBuffer hit_pos_;
};

}  // namespace vcq::tectorwise

#endif  // VCQ_TECTORWISE_HASH_JOIN_H_
