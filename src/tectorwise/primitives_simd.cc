#include "tectorwise/primitives_simd.h"

#include <immintrin.h>

#include <cstring>

#include "common/cpu_info.h"
#include "runtime/hash.h"
#include "tectorwise/primitives.h"

// Every kernel carries its own target attribute so the library builds and
// runs on any x86-64 machine; the AVX-512 code paths are only taken when
// simd::Available() says so.
#define VCQ_AVX512 \
  __attribute__((target("avx512f,avx512dq,avx512bw,avx512vl,avx512cd")))

namespace vcq::tectorwise::simd {

bool Available() { return CpuInfo::HasAvx512(); }

namespace {

// Comparison selector for the generic kernels below.
enum class Op { kLess, kLessEq, kGreater, kGreaterEq, kEq };

template <Op kOp>
VCQ_AVX512 inline __mmask16 Cmp16(__m512i v, __m512i k) {
  if constexpr (kOp == Op::kLess) return _mm512_cmplt_epi32_mask(v, k);
  if constexpr (kOp == Op::kLessEq) return _mm512_cmple_epi32_mask(v, k);
  if constexpr (kOp == Op::kGreater) return _mm512_cmpgt_epi32_mask(v, k);
  if constexpr (kOp == Op::kGreaterEq) return _mm512_cmpge_epi32_mask(v, k);
  return _mm512_cmpeq_epi32_mask(v, k);
}

template <Op kOp>
VCQ_AVX512 inline __mmask8 Cmp8(__m512i v, __m512i k) {
  if constexpr (kOp == Op::kLess) return _mm512_cmplt_epi64_mask(v, k);
  if constexpr (kOp == Op::kLessEq) return _mm512_cmple_epi64_mask(v, k);
  if constexpr (kOp == Op::kGreater) return _mm512_cmpgt_epi64_mask(v, k);
  if constexpr (kOp == Op::kGreaterEq) return _mm512_cmpge_epi64_mask(v, k);
  return _mm512_cmpeq_epi64_mask(v, k);
}

// --- dense i32: compare 16 lanes, compress-store matching positions -------
template <Op kOp>
VCQ_AVX512 size_t SelI32Dense(size_t n, const int32_t* col, int32_t konst,
                              pos_t* out) {
  const __m512i k = _mm512_set1_epi32(konst);
  const __m512i step = _mm512_set1_epi32(16);
  __m512i idx = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                                  13, 14, 15);
  pos_t* res = out;
  size_t p = 0;
  for (; p + 16 <= n; p += 16) {
    const __m512i v = _mm512_loadu_si512(col + p);
    const __mmask16 m = Cmp16<kOp>(v, k);
    _mm512_mask_compressstoreu_epi32(res, m, idx);
    res += __builtin_popcount(m);
    idx = _mm512_add_epi32(idx, step);
  }
  if (p < n) {  // masked tail
    const __mmask16 tail = static_cast<__mmask16>((1u << (n - p)) - 1);
    const __m512i v = _mm512_maskz_loadu_epi32(tail, col + p);
    const __mmask16 m = Cmp16<kOp>(v, k) & tail;
    _mm512_mask_compressstoreu_epi32(res, m, idx);
    res += __builtin_popcount(m);
  }
  return static_cast<size_t>(res - out);
}

// --- dense i64: 8 lanes; positions tracked as 32-bit ------------------------
template <Op kOp>
VCQ_AVX512 size_t SelI64Dense(size_t n, const int64_t* col, int64_t konst,
                              pos_t* out) {
  const __m512i k = _mm512_set1_epi64(konst);
  const __m256i step = _mm256_set1_epi32(8);
  __m256i idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  pos_t* res = out;
  size_t p = 0;
  for (; p + 8 <= n; p += 8) {
    const __m512i v = _mm512_loadu_si512(col + p);
    const __mmask8 m = Cmp8<kOp>(v, k);
    _mm256_mask_compressstoreu_epi32(res, m, idx);
    res += __builtin_popcount(m);
    idx = _mm256_add_epi32(idx, step);
  }
  if (p < n) {
    const __mmask8 tail = static_cast<__mmask8>((1u << (n - p)) - 1);
    const __m512i v = _mm512_maskz_loadu_epi64(tail, col + p);
    const __mmask8 m = Cmp8<kOp>(v, k) & tail;
    _mm256_mask_compressstoreu_epi32(res, m, idx);
    res += __builtin_popcount(m);
  }
  return static_cast<size_t>(res - out);
}

// --- sparse i32: load 16 positions, gather values, compare ------------------
template <Op kOp>
VCQ_AVX512 size_t SelI32Sparse(size_t n, const pos_t* sel, const int32_t* col,
                               int32_t konst, pos_t* out) {
  const __m512i k = _mm512_set1_epi32(konst);
  pos_t* res = out;
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i pos = _mm512_loadu_si512(sel + i);
    const __m512i v = _mm512_i32gather_epi32(pos, col, 4);
    const __mmask16 m = Cmp16<kOp>(v, k);
    _mm512_mask_compressstoreu_epi32(res, m, pos);
    res += __builtin_popcount(m);
  }
  if (i < n) {
    const __mmask16 tail = static_cast<__mmask16>((1u << (n - i)) - 1);
    const __m512i pos = _mm512_maskz_loadu_epi32(tail, sel + i);
    const __m512i v = _mm512_mask_i32gather_epi32(k, tail, pos, col, 4);
    const __mmask16 m = Cmp16<kOp>(v, k) & tail;
    _mm512_mask_compressstoreu_epi32(res, m, pos);
    res += __builtin_popcount(m);
  }
  return static_cast<size_t>(res - out);
}

// --- sparse i64: 8 positions, 64-bit gathers -------------------------------
template <Op kOp>
VCQ_AVX512 size_t SelI64Sparse(size_t n, const pos_t* sel, const int64_t* col,
                               int64_t konst, pos_t* out) {
  const __m512i k = _mm512_set1_epi64(konst);
  pos_t* res = out;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i pos = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(sel + i));
    const __m512i v = _mm512_i32gather_epi64(pos, col, 8);
    const __mmask8 m = Cmp8<kOp>(v, k);
    _mm256_mask_compressstoreu_epi32(res, m, pos);
    res += __builtin_popcount(m);
  }
  for (; i < n; ++i) {  // scalar tail
    const pos_t p = sel[i];
    bool keep = false;
    const int64_t v = col[p];
    if constexpr (kOp == Op::kLess) keep = v < konst;
    if constexpr (kOp == Op::kLessEq) keep = v <= konst;
    if constexpr (kOp == Op::kGreater) keep = v > konst;
    if constexpr (kOp == Op::kGreaterEq) keep = v >= konst;
    if constexpr (kOp == Op::kEq) keep = v == konst;
    *res = p;
    res += keep ? 1 : 0;
  }
  return static_cast<size_t>(res - out);
}

// --- Murmur2 on 8x64-bit lanes ---------------------------------------------

// 64x64->64 multiply from 32-bit partial products (vpmuludq + shifts).
// VPMULLQ exists with AVX-512DQ but is microcoded on several
// microarchitectures (and in this container's host); the decomposition is
// uniformly fast.
VCQ_AVX512 inline __m512i Mullo64(__m512i a, __m512i b) {
  const __m512i lo_lo = _mm512_mul_epu32(a, b);
  const __m512i a_hi = _mm512_srli_epi64(a, 32);
  const __m512i b_hi = _mm512_srli_epi64(b, 32);
  const __m512i cross = _mm512_add_epi64(_mm512_mul_epu32(a_hi, b),
                                         _mm512_mul_epu32(a, b_hi));
  return _mm512_add_epi64(lo_lo, _mm512_slli_epi64(cross, 32));
}

VCQ_AVX512 inline __m512i Murmur8(__m512i k) {
  const __m512i m = _mm512_set1_epi64(
      static_cast<long long>(runtime::kMurmurMul));
  const __m512i seed = _mm512_set1_epi64(
      static_cast<long long>(0x8445d61a4e774912ull ^
                             (8 * runtime::kMurmurMul)));
  k = Mullo64(k, m);
  k = _mm512_xor_si512(k, _mm512_srli_epi64(k, 47));
  k = Mullo64(k, m);
  __m512i h = _mm512_xor_si512(seed, k);
  h = Mullo64(h, m);
  h = _mm512_xor_si512(h, _mm512_srli_epi64(h, 47));
  h = Mullo64(h, m);
  h = _mm512_xor_si512(h, _mm512_srli_epi64(h, 47));
  return h;
}

}  // namespace

// --- public dense/sparse selections ----------------------------------------

size_t SelLessI32Dense(size_t n, const int32_t* col, int32_t k, pos_t* out) {
  return SelI32Dense<Op::kLess>(n, col, k, out);
}
size_t SelLessEqI32Dense(size_t n, const int32_t* col, int32_t k,
                         pos_t* out) {
  return SelI32Dense<Op::kLessEq>(n, col, k, out);
}
size_t SelGreaterI32Dense(size_t n, const int32_t* col, int32_t k,
                          pos_t* out) {
  return SelI32Dense<Op::kGreater>(n, col, k, out);
}
size_t SelGreaterEqI32Dense(size_t n, const int32_t* col, int32_t k,
                            pos_t* out) {
  return SelI32Dense<Op::kGreaterEq>(n, col, k, out);
}
size_t SelEqI32Dense(size_t n, const int32_t* col, int32_t k, pos_t* out) {
  return SelI32Dense<Op::kEq>(n, col, k, out);
}

size_t SelLessI64Dense(size_t n, const int64_t* col, int64_t k, pos_t* out) {
  return SelI64Dense<Op::kLess>(n, col, k, out);
}
size_t SelLessEqI64Dense(size_t n, const int64_t* col, int64_t k,
                         pos_t* out) {
  return SelI64Dense<Op::kLessEq>(n, col, k, out);
}
size_t SelGreaterI64Dense(size_t n, const int64_t* col, int64_t k,
                          pos_t* out) {
  return SelI64Dense<Op::kGreater>(n, col, k, out);
}
size_t SelGreaterEqI64Dense(size_t n, const int64_t* col, int64_t k,
                            pos_t* out) {
  return SelI64Dense<Op::kGreaterEq>(n, col, k, out);
}
size_t SelEqI64Dense(size_t n, const int64_t* col, int64_t k, pos_t* out) {
  return SelI64Dense<Op::kEq>(n, col, k, out);
}

size_t SelLessI32Sparse(size_t n, const pos_t* sel, const int32_t* col,
                        int32_t k, pos_t* out) {
  return SelI32Sparse<Op::kLess>(n, sel, col, k, out);
}
size_t SelLessEqI32Sparse(size_t n, const pos_t* sel, const int32_t* col,
                          int32_t k, pos_t* out) {
  return SelI32Sparse<Op::kLessEq>(n, sel, col, k, out);
}
size_t SelGreaterI32Sparse(size_t n, const pos_t* sel, const int32_t* col,
                           int32_t k, pos_t* out) {
  return SelI32Sparse<Op::kGreater>(n, sel, col, k, out);
}
size_t SelGreaterEqI32Sparse(size_t n, const pos_t* sel, const int32_t* col,
                             int32_t k, pos_t* out) {
  return SelI32Sparse<Op::kGreaterEq>(n, sel, col, k, out);
}
size_t SelLessI64Sparse(size_t n, const pos_t* sel, const int64_t* col,
                        int64_t k, pos_t* out) {
  return SelI64Sparse<Op::kLess>(n, sel, col, k, out);
}

VCQ_AVX512 size_t SelBetweenI32Dense(size_t n, const int32_t* col, int32_t lo,
                                     int32_t hi, pos_t* out) {
  const __m512i vlo = _mm512_set1_epi32(lo);
  const __m512i vhi = _mm512_set1_epi32(hi);
  const __m512i step = _mm512_set1_epi32(16);
  __m512i idx = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                                  13, 14, 15);
  pos_t* res = out;
  size_t p = 0;
  for (; p + 16 <= n; p += 16) {
    const __m512i v = _mm512_loadu_si512(col + p);
    const __mmask16 m = _mm512_cmpge_epi32_mask(v, vlo) &
                        _mm512_cmple_epi32_mask(v, vhi);
    _mm512_mask_compressstoreu_epi32(res, m, idx);
    res += __builtin_popcount(m);
    idx = _mm512_add_epi32(idx, step);
  }
  for (; p < n; ++p) {
    *res = static_cast<pos_t>(p);
    res += (col[p] >= lo && col[p] <= hi) ? 1 : 0;
  }
  return static_cast<size_t>(res - out);
}

VCQ_AVX512 size_t SelBetweenI64Dense(size_t n, const int64_t* col, int64_t lo,
                                     int64_t hi, pos_t* out) {
  const __m512i vlo = _mm512_set1_epi64(lo);
  const __m512i vhi = _mm512_set1_epi64(hi);
  const __m256i step = _mm256_set1_epi32(8);
  __m256i idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  pos_t* res = out;
  size_t p = 0;
  for (; p + 8 <= n; p += 8) {
    const __m512i v = _mm512_loadu_si512(col + p);
    const __mmask8 m = _mm512_cmpge_epi64_mask(v, vlo) &
                       _mm512_cmple_epi64_mask(v, vhi);
    _mm256_mask_compressstoreu_epi32(res, m, idx);
    res += __builtin_popcount(m);
    idx = _mm256_add_epi32(idx, step);
  }
  for (; p < n; ++p) {
    *res = static_cast<pos_t>(p);
    res += (col[p] >= lo && col[p] <= hi) ? 1 : 0;
  }
  return static_cast<size_t>(res - out);
}

VCQ_AVX512 size_t SelBetweenI32Sparse(size_t n, const pos_t* sel,
                                      const int32_t* col, int32_t lo,
                                      int32_t hi, pos_t* out) {
  const __m512i vlo = _mm512_set1_epi32(lo);
  const __m512i vhi = _mm512_set1_epi32(hi);
  pos_t* res = out;
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i pos = _mm512_loadu_si512(sel + i);
    const __m512i v = _mm512_i32gather_epi32(pos, col, 4);
    const __mmask16 m = _mm512_cmpge_epi32_mask(v, vlo) &
                        _mm512_cmple_epi32_mask(v, vhi);
    _mm512_mask_compressstoreu_epi32(res, m, pos);
    res += __builtin_popcount(m);
  }
  for (; i < n; ++i) {
    const pos_t p = sel[i];
    *res = p;
    res += (col[p] >= lo && col[p] <= hi) ? 1 : 0;
  }
  return static_cast<size_t>(res - out);
}

VCQ_AVX512 size_t SelBetweenI64Sparse(size_t n, const pos_t* sel,
                                      const int64_t* col, int64_t lo,
                                      int64_t hi, pos_t* out) {
  const __m512i vlo = _mm512_set1_epi64(lo);
  const __m512i vhi = _mm512_set1_epi64(hi);
  pos_t* res = out;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i pos = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(sel + i));
    const __m512i v = _mm512_i32gather_epi64(pos, col, 8);
    const __mmask8 m = _mm512_cmpge_epi64_mask(v, vlo) &
                       _mm512_cmple_epi64_mask(v, vhi);
    _mm256_mask_compressstoreu_epi32(res, m, pos);
    res += __builtin_popcount(m);
  }
  for (; i < n; ++i) {
    const pos_t p = sel[i];
    *res = p;
    res += (col[p] >= lo && col[p] <= hi) ? 1 : 0;
  }
  return static_cast<size_t>(res - out);
}

// --- batch compaction --------------------------------------------------------

namespace {

// 16 lanes per block: gather the per-block lane mask from the (ascending)
// selection vector, masked-load only the selected lanes, compress-store them
// densely. Blocks without survivors are never touched.
VCQ_AVX512 void CompactI32Kernel(size_t n, const pos_t* sel,
                                 const int32_t* col, int32_t* out) {
  size_t k = 0;
  while (k < n) {
    const pos_t base = sel[k] & ~pos_t{15};
    unsigned m = 0;
    do {
      m |= 1u << (sel[k] - base);
      ++k;
    } while (k < n && sel[k] < base + 16);
    const __mmask16 mask = static_cast<__mmask16>(m);
    const __m512i v = _mm512_maskz_loadu_epi32(mask, col + base);
    _mm512_mask_compressstoreu_epi32(out, mask, v);
    out += __builtin_popcount(m);
  }
}

VCQ_AVX512 void CompactI64Kernel(size_t n, const pos_t* sel,
                                 const int64_t* col, int64_t* out) {
  size_t k = 0;
  while (k < n) {
    const pos_t base = sel[k] & ~pos_t{7};
    unsigned m = 0;
    do {
      m |= 1u << (sel[k] - base);
      ++k;
    } while (k < n && sel[k] < base + 8);
    const __mmask8 mask = static_cast<__mmask8>(m);
    const __m512i v = _mm512_maskz_loadu_epi64(mask, col + base);
    _mm512_mask_compressstoreu_epi64(out, mask, v);
    out += __builtin_popcount(m);
  }
}

}  // namespace

void CompactI32(size_t n, const pos_t* sel, const int32_t* col,
                int32_t* out) {
  if (n == 0) return;
  if (sel == nullptr) {  // already dense: contiguous copy
    std::memcpy(out, col, n * sizeof(int32_t));
    return;
  }
  if (!Available()) {
    for (size_t k = 0; k < n; ++k) out[k] = col[sel[k]];
    return;
  }
  CompactI32Kernel(n, sel, col, out);
}

void CompactI64(size_t n, const pos_t* sel, const int64_t* col,
                int64_t* out) {
  if (n == 0) return;
  if (sel == nullptr) {
    std::memcpy(out, col, n * sizeof(int64_t));
    return;
  }
  if (!Available()) {
    for (size_t k = 0; k < n; ++k) out[k] = col[sel[k]];
    return;
  }
  CompactI64Kernel(n, sel, col, out);
}

// --- hashing -----------------------------------------------------------------

VCQ_AVX512 void HashI32Compact(size_t n, const pos_t* sel, const int32_t* col,
                               uint64_t* hashes, pos_t* pos) {
  size_t k = 0;
  if (sel == nullptr) {
    for (; k + 8 <= n; k += 8) {
      const __m256i v32 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(col + k));
      const __m512i v = _mm512_cvtepu32_epi64(v32);
      _mm512_storeu_si512(hashes + k, Murmur8(v));
      for (size_t j = 0; j < 8; ++j) pos[k + j] = static_cast<pos_t>(k + j);
    }
    for (; k < n; ++k) {
      hashes[k] = runtime::HashMurmur2(static_cast<uint32_t>(col[k]));
      pos[k] = static_cast<pos_t>(k);
    }
  } else {
    for (; k + 8 <= n; k += 8) {
      const __m256i p = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(sel + k));
      const __m256i v32 = _mm256_i32gather_epi32(col, p, 4);
      const __m512i v = _mm512_cvtepu32_epi64(v32);
      _mm512_storeu_si512(hashes + k, Murmur8(v));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(pos + k), p);
    }
    for (; k < n; ++k) {
      const pos_t p = sel[k];
      hashes[k] = runtime::HashMurmur2(static_cast<uint32_t>(col[p]));
      pos[k] = p;
    }
  }
}

VCQ_AVX512 void HashI64Compact(size_t n, const pos_t* sel, const int64_t* col,
                               uint64_t* hashes, pos_t* pos) {
  size_t k = 0;
  if (sel == nullptr) {
    for (; k + 8 <= n; k += 8) {
      const __m512i v = _mm512_loadu_si512(col + k);
      _mm512_storeu_si512(hashes + k, Murmur8(v));
      for (size_t j = 0; j < 8; ++j) pos[k + j] = static_cast<pos_t>(k + j);
    }
    for (; k < n; ++k) {
      hashes[k] = runtime::HashMurmur2(static_cast<uint64_t>(col[k]));
      pos[k] = static_cast<pos_t>(k);
    }
  } else {
    for (; k + 8 <= n; k += 8) {
      const __m256i p = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(sel + k));
      const __m512i v = _mm512_i32gather_epi64(p, col, 8);
      _mm512_storeu_si512(hashes + k, Murmur8(v));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(pos + k), p);
    }
    for (; k < n; ++k) {
      const pos_t p = sel[k];
      hashes[k] = runtime::HashMurmur2(static_cast<uint64_t>(col[p]));
      pos[k] = p;
    }
  }
}

VCQ_AVX512 void RehashI32Compact(size_t n, const pos_t* pos,
                                 const int32_t* col, uint64_t* hashes) {
  const __m512i mul = _mm512_set1_epi64(
      static_cast<long long>(runtime::kMurmurMul));
  size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m256i p = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(pos + k));
    const __m256i v32 = _mm256_i32gather_epi32(col, p, 4);
    const __m512i h2 = Murmur8(_mm512_cvtepu32_epi64(v32));
    __m512i h = _mm512_loadu_si512(hashes + k);
    h = _mm512_xor_si512(Mullo64(h, mul), h2);
    _mm512_storeu_si512(hashes + k, h);
  }
  for (; k < n; ++k)
    hashes[k] = runtime::HashCombine(
        hashes[k], runtime::HashMurmur2(static_cast<uint32_t>(col[pos[k]])));
}

// --- probing -----------------------------------------------------------------

VCQ_AVX512 size_t JoinCandidates(size_t n, const uint64_t* hashes,
                                 const pos_t* pos, const runtime::Hashmap& ht,
                                 runtime::Hashmap::EntryHeader** cand,
                                 pos_t* cand_pos) {
  using EntryHeader = runtime::Hashmap::EntryHeader;
  const uint64_t* dir = reinterpret_cast<const uint64_t*>(ht.buckets());
  const __m512i mask = _mm512_set1_epi64(static_cast<long long>(ht.mask()));
  const __m512i ptr_mask = _mm512_set1_epi64(
      static_cast<long long>(runtime::Hashmap::kPtrMask));
  const __m512i one = _mm512_set1_epi64(1);
  const __m512i c48 = _mm512_set1_epi64(48);
  size_t m = 0;
  size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m512i h = _mm512_loadu_si512(hashes + k);
    const __m512i idx = _mm512_and_si512(h, mask);
    const __m512i bucket = _mm512_i64gather_epi64(idx, dir, 8);
    // tag = 1 << (48 + (h >> 60)); miss if (bucket & tag) == 0
    const __m512i tag = _mm512_sllv_epi64(
        one, _mm512_add_epi64(c48, _mm512_srli_epi64(h, 60)));
    const __m512i ptr = _mm512_and_si512(bucket, ptr_mask);
    const __mmask8 hit = _mm512_test_epi64_mask(bucket, tag) &
                         _mm512_cmpneq_epi64_mask(ptr, _mm512_setzero_si512());
    _mm512_mask_compressstoreu_epi64(cand + m, hit, ptr);
    const __m256i p = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(pos + k));
    _mm256_mask_compressstoreu_epi32(cand_pos + m, hit, p);
    m += __builtin_popcount(hit);
  }
  for (; k < n; ++k) {
    EntryHeader* e = ht.FindChainTagged(hashes[k]);
    cand[m] = e;
    cand_pos[m] = pos[k];
    m += (e != nullptr) ? 1 : 0;
  }
  return m;
}

size_t JoinCandidatesStaged(size_t n, const uint64_t* hashes,
                            const pos_t* pos, const runtime::Hashmap& ht,
                            runtime::Hashmap::EntryHeader** cand,
                            pos_t* cand_pos) {
  return StagedCandidates(n, hashes, pos, ht, cand, cand_pos,
                          [](auto&&... args) {
                            return JoinCandidates(
                                std::forward<decltype(args)>(args)...);
                          });
}

}  // namespace vcq::tectorwise::simd
