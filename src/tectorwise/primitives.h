#ifndef VCQ_TECTORWISE_PRIMITIVES_H_
#define VCQ_TECTORWISE_PRIMITIVES_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <utility>

#include "runtime/hash.h"
#include "runtime/hashmap.h"
#include "tectorwise/core.h"

// Tectorwise primitives: the tight, type-specialized loops that do all the
// actual query processing work (paper §2.1). Each primitive (i) works on a
// single data type and (ii) processes a whole vector. Two shapes recur:
//
//  * "dense"  — input positions are 0..n-1,
//  * "sparse" — an input selection vector lists the active positions
//               (the sparse-data-loading effect studied in §5.1).
//
// Selection primitives are branch-free predicated loops
// (`*out = p; out += cond;`), as the paper prescribes for throughput.
// AVX-512 variants of the hot primitives live in primitives_simd.h.

namespace vcq::tectorwise {

using runtime::Hashmap;

// ---------------------------------------------------------------------------
// Comparison functors (selection predicates)
// ---------------------------------------------------------------------------

struct CmpLess {
  template <typename T>
  bool operator()(const T& a, const T& b) const {
    return a < b;
  }
};
struct CmpLessEq {
  template <typename T>
  bool operator()(const T& a, const T& b) const {
    return a <= b;
  }
};
struct CmpGreater {
  template <typename T>
  bool operator()(const T& a, const T& b) const {
    return a > b;
  }
};
struct CmpGreaterEq {
  template <typename T>
  bool operator()(const T& a, const T& b) const {
    return a >= b;
  }
};
struct CmpEq {
  template <typename T>
  bool operator()(const T& a, const T& b) const {
    return a == b;
  }
};

// ---------------------------------------------------------------------------
// Selection
// ---------------------------------------------------------------------------

/// Dense selection: emits every position p in [0,n) with cmp(col[p], konst).
template <typename T, typename Cmp>
size_t SelDense(size_t n, const T* col, T konst, pos_t* out) {
  Cmp cmp;
  pos_t* res = out;
  for (size_t p = 0; p < n; ++p) {
    *res = static_cast<pos_t>(p);
    res += cmp(col[p], konst) ? 1 : 0;
  }
  return static_cast<size_t>(res - out);
}

/// Sparse selection: like SelDense but over the positions in `sel`.
template <typename T, typename Cmp>
size_t SelSparse(size_t n, const pos_t* sel, const T* col, T konst,
                 pos_t* out) {
  Cmp cmp;
  pos_t* res = out;
  for (size_t k = 0; k < n; ++k) {
    const pos_t p = sel[k];
    *res = p;
    res += cmp(col[p], konst) ? 1 : 0;
  }
  return static_cast<size_t>(res - out);
}

/// Inclusive range selection (lo <= x <= hi), dense.
template <typename T>
size_t SelBetweenDense(size_t n, const T* col, T lo, T hi, pos_t* out) {
  pos_t* res = out;
  for (size_t p = 0; p < n; ++p) {
    *res = static_cast<pos_t>(p);
    res += (col[p] >= lo && col[p] <= hi) ? 1 : 0;
  }
  return static_cast<size_t>(res - out);
}

/// Inclusive range selection, sparse.
template <typename T>
size_t SelBetweenSparse(size_t n, const pos_t* sel, const T* col, T lo, T hi,
                        pos_t* out) {
  pos_t* res = out;
  for (size_t k = 0; k < n; ++k) {
    const pos_t p = sel[k];
    *res = p;
    res += (col[p] >= lo && col[p] <= hi) ? 1 : 0;
  }
  return static_cast<size_t>(res - out);
}

/// Disjunctive two-constant equality (x == a || x == b); SSB Q4.1's
/// "p_mfgr in ('MFGR#1','MFGR#2')".
template <typename T>
size_t SelEqOr2Dense(size_t n, const T* col, T a, T b, pos_t* out) {
  pos_t* res = out;
  for (size_t p = 0; p < n; ++p) {
    *res = static_cast<pos_t>(p);
    res += (col[p] == a || col[p] == b) ? 1 : 0;
  }
  return static_cast<size_t>(res - out);
}

/// Substring containment on inline Varchar (Q9's p_name like '%green%').
template <typename V>
size_t SelContainsDense(size_t n, const V* col, std::string_view needle,
                        pos_t* out) {
  pos_t* res = out;
  for (size_t p = 0; p < n; ++p) {
    *res = static_cast<pos_t>(p);
    res += col[p].Contains(needle) ? 1 : 0;
  }
  return static_cast<size_t>(res - out);
}

// ---------------------------------------------------------------------------
// Projection (map)
// ---------------------------------------------------------------------------
// Map primitives write "aligned": out[p] for each active position p, keeping
// computed columns position-compatible with base columns under the same
// selection vector.

/// out[p] = a[p] * b[p]
template <typename T>
void MapMul(size_t n, const pos_t* sel, const T* a, const T* b, T* out) {
  if (sel == nullptr) {
    for (size_t p = 0; p < n; ++p) out[p] = a[p] * b[p];
  } else {
    for (size_t k = 0; k < n; ++k) {
      const pos_t p = sel[k];
      out[p] = a[p] * b[p];
    }
  }
}

/// out[p] = konst - a[p]   (e.g. 1.00 - l_discount)
template <typename T>
void MapRSubConst(size_t n, const pos_t* sel, T konst, const T* a, T* out) {
  if (sel == nullptr) {
    for (size_t p = 0; p < n; ++p) out[p] = konst - a[p];
  } else {
    for (size_t k = 0; k < n; ++k) {
      const pos_t p = sel[k];
      out[p] = konst - a[p];
    }
  }
}

/// out[p] = konst + a[p]   (e.g. 1.00 + l_tax)
template <typename T>
void MapAddConst(size_t n, const pos_t* sel, T konst, const T* a, T* out) {
  if (sel == nullptr) {
    for (size_t p = 0; p < n; ++p) out[p] = konst + a[p];
  } else {
    for (size_t k = 0; k < n; ++k) {
      const pos_t p = sel[k];
      out[p] = konst + a[p];
    }
  }
}

/// out[p] = a[p] / konst (scale reduction after fixed-point multiplies)
template <typename T>
void MapDivConst(size_t n, const pos_t* sel, const T* a, T konst, T* out) {
  if (sel == nullptr) {
    for (size_t p = 0; p < n; ++p) out[p] = a[p] / konst;
  } else {
    for (size_t k = 0; k < n; ++k) {
      const pos_t p = sel[k];
      out[p] = a[p] / konst;
    }
  }
}

/// out[p] = a[p] * (konst - b[p])   (e.g. extendedprice * (1.00 - discount));
/// fuses the RSubConst+Mul pair so the intermediate is never materialized.
template <typename T>
void MapMulRSubConst(size_t n, const pos_t* sel, const T* a, T konst,
                     const T* b, T* out) {
  if (sel == nullptr) {
    for (size_t p = 0; p < n; ++p) out[p] = a[p] * (konst - b[p]);
  } else {
    for (size_t k = 0; k < n; ++k) {
      const pos_t p = sel[k];
      out[p] = a[p] * (konst - b[p]);
    }
  }
}

/// out[p] = a[p] * (konst + b[p])   (e.g. disc_price * (1.00 + tax)).
template <typename T>
void MapMulAddConst(size_t n, const pos_t* sel, const T* a, T konst,
                    const T* b, T* out) {
  if (sel == nullptr) {
    for (size_t p = 0; p < n; ++p) out[p] = a[p] * (konst + b[p]);
  } else {
    for (size_t k = 0; k < n; ++k) {
      const pos_t p = sel[k];
      out[p] = a[p] * (konst + b[p]);
    }
  }
}

/// out[p] = calendar year of day-number a[p] (extract(year from date)).
void MapYear(size_t n, const pos_t* sel, const int32_t* a, int32_t* out);

/// out[p] = a[p] - b[p]
template <typename T>
void MapSub(size_t n, const pos_t* sel, const T* a, const T* b, T* out) {
  if (sel == nullptr) {
    for (size_t p = 0; p < n; ++p) out[p] = a[p] - b[p];
  } else {
    for (size_t k = 0; k < n; ++k) {
      const pos_t p = sel[k];
      out[p] = a[p] - b[p];
    }
  }
}

/// out[p] = a[p] + b[p]
template <typename T>
void MapAdd(size_t n, const pos_t* sel, const T* a, const T* b, T* out) {
  if (sel == nullptr) {
    for (size_t p = 0; p < n; ++p) out[p] = a[p] + b[p];
  } else {
    for (size_t k = 0; k < n; ++k) {
      const pos_t p = sel[k];
      out[p] = a[p] + b[p];
    }
  }
}

/// out[p] = a[p] * konst (fixed-point rescale / literal multiply)
template <typename T>
void MapMulConst(size_t n, const pos_t* sel, const T* a, T konst, T* out) {
  if (sel == nullptr) {
    for (size_t p = 0; p < n; ++p) out[p] = a[p] * konst;
  } else {
    for (size_t k = 0; k < n; ++k) {
      const pos_t p = sel[k];
      out[p] = a[p] * konst;
    }
  }
}

/// out[p] = (To)a[p] — integer widening (int32 columns entering int64
/// arithmetic or aggregation).
template <typename From, typename To>
void MapWiden(size_t n, const pos_t* sel, const From* a, To* out) {
  if (sel == nullptr) {
    for (size_t p = 0; p < n; ++p) out[p] = static_cast<To>(a[p]);
  } else {
    for (size_t k = 0; k < n; ++k) {
      const pos_t p = sel[k];
      out[p] = static_cast<To>(a[p]);
    }
  }
}

// ---------------------------------------------------------------------------
// Hashing (join / group-by key expressions)
// ---------------------------------------------------------------------------
// Hash primitives produce *compacted* outputs: hashes[k] plus the batch
// position pos[k] of the k-th active tuple, so downstream join primitives
// run dense while gathers still reach base columns through pos.

template <typename T>
uint64_t HashValue(const T& v) {
  if constexpr (sizeof(T) <= 8) {
    // Any POD key up to 8 bytes (ints, dates, Char<1>..Char<8>) hashes as
    // one zero-extended word — a single Murmur2 round.
    uint64_t word = 0;
    std::memcpy(&word, &v, sizeof(T));
    return runtime::HashMurmur2(word);
  } else {
    return runtime::HashBytes(&v, sizeof(T));
  }
}

/// First key column: hash + compact position capture.
template <typename T>
void HashCompact(size_t n, const pos_t* sel, const T* col, uint64_t* hashes,
                 pos_t* pos) {
  if (sel == nullptr) {
    for (size_t p = 0; p < n; ++p) {
      hashes[p] = HashValue(col[p]);
      pos[p] = static_cast<pos_t>(p);
    }
  } else {
    for (size_t k = 0; k < n; ++k) {
      const pos_t p = sel[k];
      hashes[k] = HashValue(col[p]);
      pos[k] = p;
    }
  }
}

/// Subsequent key columns: combine into the existing hash (composite keys).
template <typename T>
void RehashCompact(size_t n, const pos_t* pos, const T* col,
                   uint64_t* hashes) {
  for (size_t k = 0; k < n; ++k)
    hashes[k] = runtime::HashCombine(hashes[k], HashValue(col[pos[k]]));
}

// ---------------------------------------------------------------------------
// Hash-table probing (paper Fig. 2b)
// ---------------------------------------------------------------------------

/// findCandidates: fetch tagged chain heads; emits (entry, probe position)
/// pairs for tuples whose bucket passes the Bloom tag.
inline size_t JoinCandidates(size_t n, const uint64_t* hashes,
                             const pos_t* pos, const Hashmap& ht,
                             Hashmap::EntryHeader** cand, pos_t* cand_pos) {
  size_t m = 0;
  for (size_t k = 0; k < n; ++k) {
    Hashmap::EntryHeader* e = ht.FindChainTagged(hashes[k]);
    cand[m] = e;
    cand_pos[m] = pos[k];
    m += (e != nullptr) ? 1 : 0;
  }
  return m;
}

/// Staging shell shared by the scalar and AVX-512 ROF findCandidates
/// variants (relaxed operator fusion, paper §9.1): pass 1 issues
/// independent prefetches for every directory word of the vector, pass 2
/// resolves chain heads via `find` against the now-cached directory, and
/// pass 3 prefetches each surviving candidate entry, so the key-compare
/// primitives that follow find the entry rows in cache instead of taking
/// the chaining table's two dependent misses per probe. Output is
/// bit-identical to the wrapped findCandidates.
template <typename FindFn>
size_t StagedCandidates(size_t n, const uint64_t* hashes, const pos_t* pos,
                        const Hashmap& ht, Hashmap::EntryHeader** cand,
                        pos_t* cand_pos, FindFn&& find) {
  const std::atomic<uintptr_t>* dir = ht.buckets();
  for (size_t k = 0; k < n; ++k)
    __builtin_prefetch(dir + ht.BucketOf(hashes[k]), 0, 1);
  const size_t m = find(n, hashes, pos, ht, cand, cand_pos);
  for (size_t j = 0; j < m; ++j) __builtin_prefetch(cand[j], 0, 1);
  return m;
}

/// Prefetch-staged findCandidates, scalar resolve.
inline size_t JoinCandidatesStaged(size_t n, const uint64_t* hashes,
                                   const pos_t* pos, const Hashmap& ht,
                                   Hashmap::EntryHeader** cand,
                                   pos_t* cand_pos) {
  return StagedCandidates(n, hashes, pos, ht, cand, cand_pos,
                          [](auto&&... args) {
                            return JoinCandidates(
                                std::forward<decltype(args)>(args)...);
                          });
}

/// compareKeys, first key column: match[k] = (entry key == probe key).
template <typename T>
void CmpEntryKeyInit(size_t n, Hashmap::EntryHeader* const* cand,
                     const pos_t* cand_pos, const T* col, size_t offset,
                     uint8_t* match) {
  for (size_t k = 0; k < n; ++k) {
    const T* key = reinterpret_cast<const T*>(
        reinterpret_cast<const std::byte*>(cand[k]) + offset);
    match[k] = (*key == col[cand_pos[k]]) ? 1 : 0;
  }
}

/// compareKeys, subsequent key columns: match[k] &= equality.
template <typename T>
void CmpEntryKeyAnd(size_t n, Hashmap::EntryHeader* const* cand,
                    const pos_t* cand_pos, const T* col, size_t offset,
                    uint8_t* match) {
  for (size_t k = 0; k < n; ++k) {
    const T* key = reinterpret_cast<const T*>(
        reinterpret_cast<const std::byte*>(cand[k]) + offset);
    match[k] &= (*key == col[cand_pos[k]]) ? 1 : 0;
  }
}

/// extractHits + chain advance: matched candidates are appended to the hit
/// buffers AND stay in the candidate set (following ->next), because a
/// build side with duplicate keys stores every duplicate on one chain and
/// each entry is its own result row. Mismatches follow ->next as well
/// (hash-bucket collisions); exhausted chains drop out. Returns the new
/// candidate count; `hit_count` grows by the number of hits (at most n per
/// call, so per-round hit buffers sized at vector_size never overflow).
inline size_t ExtractHitsAdvance(size_t n, Hashmap::EntryHeader** cand,
                                 pos_t* cand_pos, const uint8_t* match,
                                 Hashmap::EntryHeader** hits, pos_t* hit_pos,
                                 size_t& hit_count) {
  size_t survivors = 0;
  for (size_t k = 0; k < n; ++k) {
    if (match[k]) {
      hits[hit_count] = cand[k];
      hit_pos[hit_count] = cand_pos[k];
      ++hit_count;
    }
    Hashmap::EntryHeader* next = cand[k]->next;
    cand[survivors] = next;
    cand_pos[survivors] = cand_pos[k];
    survivors += (next != nullptr) ? 1 : 0;
  }
  return survivors;
}

// ---------------------------------------------------------------------------
// Gather / scatter (materialization between operators)
// ---------------------------------------------------------------------------

/// out[k] = col[pos[k]] — compact probe-side columns after a join.
template <typename T>
void GatherPos(size_t n, const pos_t* pos, const T* col, T* out) {
  for (size_t k = 0; k < n; ++k) out[k] = col[pos[k]];
}

// ---------------------------------------------------------------------------
// Batch compaction (sparse -> dense rewrite)
// ---------------------------------------------------------------------------
// Compaction primitives copy the live values of a sel-carrying batch into a
// dense buffer so downstream primitives run their dense paths. The AVX-512
// compress-store variants live in primitives_simd.h (CompactI32/I64).

/// out[k] = col[sel[k]]; a null sel means the batch is already dense and
/// the copy is contiguous. The generic sparse->dense gather fallback used
/// for any fixed-width type.
template <typename T>
void CompactCopy(size_t n, const pos_t* sel, const T* col, T* out) {
  if (n == 0) return;
  if (sel == nullptr) {
    std::memcpy(out, col, n * sizeof(T));
    return;
  }
  for (size_t k = 0; k < n; ++k) out[k] = col[sel[k]];
}

/// Type-erased row compaction for odd-width columns (Char<N>, Varchar):
/// copies `elem_size`-byte rows col[sel[k]] -> out[k].
inline void CompactBytes(size_t n, const pos_t* sel, const std::byte* col,
                         size_t elem_size, std::byte* out) {
  if (n == 0) return;
  if (sel == nullptr) {
    std::memcpy(out, col, n * elem_size);
    return;
  }
  for (size_t k = 0; k < n; ++k)
    std::memcpy(out + k * elem_size, col + sel[k] * elem_size, elem_size);
}

/// out[k] = *(T*)(entries[k] + offset) — the paper's buildGather.
template <typename T>
void GatherEntry(size_t n, Hashmap::EntryHeader* const* entries,
                 size_t offset, T* out) {
  for (size_t k = 0; k < n; ++k)
    out[k] = *reinterpret_cast<const T*>(
        reinterpret_cast<const std::byte*>(entries[k]) + offset);
}

/// Entry row construction during hash build: field scatter into a
/// contiguous run of entries (base + k*stride + offset) from col[pos[k]].
template <typename T>
void ScatterToEntries(size_t n, const pos_t* pos, const T* col,
                      std::byte* base, size_t stride, size_t offset) {
  for (size_t k = 0; k < n; ++k)
    *reinterpret_cast<T*>(base + k * stride + offset) = col[pos[k]];
}

/// Stores the precomputed hashes into the entry headers.
inline void ScatterHashes(size_t n, const uint64_t* hashes, std::byte* base,
                          size_t stride) {
  for (size_t k = 0; k < n; ++k) {
    auto* header = reinterpret_cast<Hashmap::EntryHeader*>(base + k * stride);
    header->next = nullptr;
    header->hash = hashes[k];
  }
}

// ---------------------------------------------------------------------------
// Aggregation updates (group pointers produced by the group lookup)
// ---------------------------------------------------------------------------

/// *(int64*)(groups[k]+offset) += col[pos[k]]
inline void AggSum(size_t n, std::byte* const* groups, size_t offset,
                   const pos_t* pos, const int64_t* col) {
  for (size_t k = 0; k < n; ++k)
    *reinterpret_cast<int64_t*>(groups[k] + offset) += col[pos[k]];
}

/// *(int64*)(groups[k]+offset) += 1
inline void AggCount(size_t n, std::byte* const* groups, size_t offset) {
  for (size_t k = 0; k < n; ++k)
    *reinterpret_cast<int64_t*>(groups[k] + offset) += 1;
}

/// *(int64*)(groups[k]+offset) = min(current, col[pos[k]])
inline void AggMin(size_t n, std::byte* const* groups, size_t offset,
                   const pos_t* pos, const int64_t* col) {
  for (size_t k = 0; k < n; ++k) {
    auto* acc = reinterpret_cast<int64_t*>(groups[k] + offset);
    const int64_t v = col[pos[k]];
    if (v < *acc) *acc = v;
  }
}

/// *(int64*)(groups[k]+offset) = max(current, col[pos[k]])
inline void AggMax(size_t n, std::byte* const* groups, size_t offset,
                   const pos_t* pos, const int64_t* col) {
  for (size_t k = 0; k < n; ++k) {
    auto* acc = reinterpret_cast<int64_t*>(groups[k] + offset);
    const int64_t v = col[pos[k]];
    if (v > *acc) *acc = v;
  }
}

}  // namespace vcq::tectorwise

#endif  // VCQ_TECTORWISE_PRIMITIVES_H_
