#ifndef VCQ_TECTORWISE_OPERATORS_H_
#define VCQ_TECTORWISE_OPERATORS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runtime/fault_injector.h"
#include "runtime/relation.h"
#include "runtime/worker_pool.h"
#include "tectorwise/compaction.h"
#include "tectorwise/core.h"

// Basic Tectorwise operators: Scan, Select, Map, FixedAggregation. The
// joins and group-by live in hash_join.h / hash_group.h. Each worker builds
// its own operator tree; shared-state structs (morsel queues, hash tables,
// barriers) coordinate the workers (paper §6.1).

namespace vcq::tectorwise {

/// Type-erased vector step signatures. Operators hold chains of these; the
/// per-batch std::function dispatch is exactly the interpretation overhead
/// the paper shows amortizes to <1.5% of runtime (§4.2).
using SelStep =
    std::function<size_t(size_t n, const pos_t* sel_in, pos_t* sel_out)>;
using MapStep = std::function<void(size_t n, const pos_t* sel)>;

// ---------------------------------------------------------------------------
// Scan
// ---------------------------------------------------------------------------

/// Morsel-driven table scan: claims tuple ranges from the shared queue and
/// serves them vector-at-a-time by bumping column base pointers (zero copy).
class Scan : public Operator {
 public:
  struct Shared {
    explicit Shared(size_t tuple_count,
                    size_t grain = runtime::MorselQueue::kDefaultGrain)
        : morsels(tuple_count, grain) {}
    runtime::MorselQueue morsels;
  };

  Scan(Shared* shared, const runtime::Relation* relation, size_t vector_size,
       const runtime::CancelToken* cancel = nullptr,
       runtime::FaultInjector* fault = nullptr)
      : shared_(shared),
        relation_(relation),
        vector_size_(vector_size),
        cancel_(cancel),
        fault_(fault) {}

  /// Registers a column; the returned Slot tracks the current batch.
  template <typename T>
  Slot* AddColumn(std::string_view name) {
    columns_.push_back(Column{
        reinterpret_cast<const std::byte*>(relation_->Col<T>(name).data()),
        sizeof(T), std::make_unique<Slot>()});
    return columns_.back().slot.get();
  }

  size_t Next() override;

 private:
  struct Column {
    const std::byte* base;
    size_t elem_size;
    std::unique_ptr<Slot> slot;
  };

  Shared* shared_;
  const runtime::Relation* relation_;
  size_t vector_size_;
  const runtime::CancelToken* cancel_;
  runtime::FaultInjector* fault_;
  std::vector<Column> columns_;
  size_t morsel_begin_ = 0;
  size_t morsel_end_ = 0;
};

// ---------------------------------------------------------------------------
// Select
// ---------------------------------------------------------------------------

/// Conjunctive filter: a cascade of selection primitives, each narrowing the
/// selection vector (Fig. 1b). Skips empty batches internally.
///
/// A Select is the pipeline's primary compaction point: when constructed
/// with an ExecContext whose policy is not kNever, sparse result batches
/// are merged into dense ones through the Compactor. Plans must register
/// every column consumed above the Select via CompactColumn<T>(ctx,
/// select->compactor(), slot) — unregistered columns keep their original
/// batch layout and would be misread through compacted positions.
class Select : public Operator {
 public:
  Select(std::unique_ptr<Operator> child, size_t vector_size);
  Select(std::unique_ptr<Operator> child, const ExecContext& ctx);

  void AddStep(SelStep step) { steps_.push_back(std::move(step)); }

  size_t Next() override;

  Operator* child() { return child_.get(); }
  Compactor& compactor() { return compactor_; }

 private:
  size_t NextCompacting();

  std::unique_ptr<Operator> child_;
  size_t vector_size_;
  std::vector<SelStep> steps_;
  VecBuffer buf_a_;
  VecBuffer buf_b_;
  Compactor compactor_;
  LocalBatchStats stats_;
  bool child_eos_ = false;
};

// ---------------------------------------------------------------------------
// Map (projection)
// ---------------------------------------------------------------------------

/// Computes derived columns into owned buffers, position-aligned with the
/// child's batch (intermediate-result materialization, §4.1).
class Map : public Operator {
 public:
  Map(std::unique_ptr<Operator> child, size_t vector_size)
      : child_(std::move(child)), vector_size_(vector_size) {}

  /// Allocates an output column buffer; wire the returned slot into a step.
  template <typename T>
  Slot* AddOutput() {
    outputs_.push_back(Output{VecBuffer(vector_size_ * sizeof(T)),
                              std::make_unique<Slot>()});
    outputs_.back().slot->ptr = outputs_.back().buffer.data();
    return outputs_.back().slot.get();
  }

  /// Raw pointer to the buffer behind an output slot (for step factories).
  template <typename T>
  T* OutputData(Slot* slot) {
    return const_cast<T*>(static_cast<const T*>(slot->ptr));
  }

  void AddStep(MapStep step) { steps_.push_back(std::move(step)); }

  size_t Next() override;

 private:
  struct Output {
    VecBuffer buffer;
    std::unique_ptr<Slot> slot;
  };

  std::unique_ptr<Operator> child_;
  size_t vector_size_;
  std::vector<Output> outputs_;
  std::vector<MapStep> steps_;
};

// ---------------------------------------------------------------------------
// FixedAggregation
// ---------------------------------------------------------------------------

/// Group-less aggregation (Q1.1 / Q6 style "select sum(...)"): drains the
/// child, accumulating into worker-local totals, then emits a single row.
/// Cross-worker combining (by the same aggregate kind) happens in the
/// collector. A worker that saw no rows emits the fold identity (0 for
/// sum/count, INT64_MAX/MIN for min/max) so collectors can fold partials
/// unconditionally.
class FixedAggregation : public Operator {
 public:
  enum class AggKind : uint8_t { kSum, kCount, kMin, kMax };

  explicit FixedAggregation(std::unique_ptr<Operator> child)
      : child_(std::move(child)) {}

  /// Adds a sum over an int64 column; the returned slot exposes the total.
  Slot* AddSumI64(const Slot* input);
  /// Adds count(*); the returned slot exposes the worker-local row count.
  Slot* AddCount();
  /// Adds min(col) over an int64 column.
  Slot* AddMinI64(const Slot* input);
  /// Adds max(col) over an int64 column.
  Slot* AddMaxI64(const Slot* input);

  size_t Next() override;

 private:
  struct Agg {
    const Slot* input;  // nullptr for count(*)
    AggKind kind = AggKind::kSum;
    int64_t total = 0;
    std::unique_ptr<Slot> slot;
  };

  Slot* AddAgg(const Slot* input, AggKind kind);

  std::unique_ptr<Operator> child_;
  std::vector<std::unique_ptr<Agg>> aggs_;
  bool done_ = false;
};

// ---------------------------------------------------------------------------
// OrderedAggregation
// ---------------------------------------------------------------------------

/// Micro-adaptive ordered aggregation (paper §8.4): per vector, tuples are
/// partitioned into one selection vector per distinct key code (keys are
/// one-byte columns packed into a small integer); each partition is then
/// aggregated with partial sums held in registers and a single group update
/// per vector — the VectorWise optimization that beats plain Tectorwise on
/// Q1 (Table 2). A vector with more than `max_groups` distinct codes would
/// need the exponential backoff to hash aggregation, which is not
/// implemented: it check-fails (Q1's four groups never trigger it).
///
/// Groups are worker-local; Next() emits them ordered by key code at
/// end-of-stream, and cross-worker merging happens in the collector.
class OrderedAggregation : public Operator {
 public:
  static constexpr size_t kMaxKeys = 4;

  OrderedAggregation(std::unique_ptr<Operator> child, const ExecContext& ctx,
                     size_t max_groups)
      : child_(std::move(child)), ctx_(ctx), max_groups_(max_groups) {}

  /// Adds a one-byte (Char<1>) grouping key; returns its output slot.
  Slot* AddKeyChar1(const Slot* input);
  /// Adds sum(input) over an int64 column; returns its output slot.
  Slot* AddSumI64(const Slot* input);
  /// Adds count(*); returns its output slot.
  Slot* AddCount();

  size_t Next() override;

 private:
  void Consume();
  Slot* AddAgg(const Slot* input);

  struct Output {
    VecBuffer buffer;
    std::unique_ptr<Slot> slot;
  };

  std::unique_ptr<Operator> child_;
  ExecContext ctx_;
  size_t max_groups_;
  std::vector<const Slot*> keys_;
  std::vector<const Slot*> aggs_;  // nullptr => count(*)
  std::vector<Output> key_out_;
  std::vector<Output> agg_out_;
  std::map<uint32_t, std::vector<int64_t>> groups_;  // code -> accumulators
  std::map<uint32_t, std::vector<int64_t>>::const_iterator emit_;
  bool consumed_ = false;
};

}  // namespace vcq::tectorwise

#endif  // VCQ_TECTORWISE_OPERATORS_H_
