#include "tectorwise/hash_join.h"

#include <cstring>

#include "tectorwise/primitives_simd.h"

namespace vcq::tectorwise {

using runtime::Hashmap;

HashJoin::HashJoin(Shared* shared, std::unique_ptr<Operator> build,
                   std::unique_ptr<Operator> probe, const ExecContext& ctx)
    : shared_(shared),
      build_(std::move(build)),
      probe_(std::move(probe)),
      ctx_(ctx),
      build_mode_(ctx.build_mode) {
  // Governed runs charge materialize-phase chunks to the query ledger and
  // expose the allocation as a named fault point.
  pool_.Bind(ctx_.ledger, ctx_.fault, "tw.join.materialize");
  const size_t v = ctx_.vector_size;
  hashes_.Reset(v * sizeof(uint64_t));
  pos_.Reset(v * sizeof(pos_t));
  cand_.Reset(v * sizeof(Hashmap::EntryHeader*));
  cand_pos_.Reset(v * sizeof(pos_t));
  match_.Reset(v * sizeof(uint8_t));
  hits_.Reset(v * sizeof(Hashmap::EntryHeader*));
  hit_pos_.Reset(v * sizeof(pos_t));
}

size_t HashJoin::entry_size() const { return AlignUp(entry_bytes_, 8); }

void HashJoin::BuildPhase() {
  VCQ_CHECK_MSG(static_cast<bool>(build_hash_), "build hash not configured");
  const size_t stride = entry_size();
  uint64_t* hashes = hashes_.As<uint64_t>();
  pos_t* pos = pos_.As<pos_t>();

  size_t n;
  runtime::SpillFile* spill_file = nullptr;
  while ((n = build_->Next()) != kEndOfStream) {
    if (n == 0) continue;
    build_hash_(n, build_->sel(), hashes, pos);
    for (const RehashStep& step : build_rehash_) step(n, pos, hashes);
    // Batch boundary — every materialized chunk is complete, the one safe
    // point to relieve spill pressure: evict the finished chunks to a temp
    // file and release the pool before materializing the next batch.
    if (ctx_.spill != nullptr && !chunks_.chunks.empty() &&
        ctx_.ledger != nullptr && ctx_.ledger->UnderPressure()) {
      if (spill_file == nullptr)
        spill_file = ctx_.spill->Create("tw.join", ctx_.site);
      chunks_.SpillTo(spill_file, stride);
      pool_.Release();
    }
    auto* base = static_cast<std::byte*>(pool_.Allocate(n * stride));
    ScatterHashes(n, hashes, base, stride);
    for (const ScatterStep& step : scatter_steps_)
      step(n, pos, base, stride);
    chunks_.Add(base, n);
  }
  shared_->build.Run(build_mode_, std::move(chunks_), stride);
  // Under the partitioned protocol every entry was relinked into the
  // shared contiguous arena, so this worker's materialize-phase chunks are
  // unreachable from any chain — free them instead of carrying ~2x the
  // build side through the probe phase. Ask the build, not the requested
  // mode: spilling upgrades kCas builds to the partitioned protocol.
  if (shared_->build.releases_chunks()) pool_.Release();
  built_ = true;
}

size_t HashJoin::Next() {
  if (!built_) BuildPhase();
  VCQ_CHECK_MSG(static_cast<bool>(probe_hash_), "probe hash not configured");
  VCQ_CHECK_MSG(!compare_steps_.empty(), "key compares not configured");

  uint64_t* hashes = hashes_.As<uint64_t>();
  pos_t* pos = pos_.As<pos_t>();
  auto** cand = cand_.As<Hashmap::EntryHeader*>();
  pos_t* cand_pos = cand_pos_.As<pos_t>();
  uint8_t* match = match_.As<uint8_t>();
  auto** hits = hits_.As<Hashmap::EntryHeader*>();
  pos_t* hit_pos = hit_pos_.As<pos_t>();
  const bool use_simd = ctx_.use_simd && simd::Available();
  const size_t vsize = ctx_.vector_size;
  const bool accumulate = ctx_.compaction != CompactionPolicy::kNever;

  // Shift the carry-over from the last emission to the buffer front.
  if (out_emitted_ > 0) {
    const size_t rest = out_pending_ - out_emitted_;
    if (rest > 0) {
      for (Output& o : outputs_) {
        auto* base = static_cast<std::byte*>(o.buffer.data());
        std::memmove(base, base + out_emitted_ * o.elem_size,
                     rest * o.elem_size);
      }
    }
    out_pending_ = rest;
    out_emitted_ = 0;
  }

  const auto emit = [this](size_t m) {
    out_emitted_ = m;
    sel_ = nullptr;
    return m;
  };

  while (true) {
    // Drain the candidate set of the current probe batch first. Each round
    // compares every candidate against its chain entry, gathers this
    // round's matches, and advances all candidates along ->next — a build
    // side with duplicate keys emits one output row per matching chain
    // entry, so a single probe batch can produce more than vector_size
    // rows. The candidate set survives emission (member buffers; the probe
    // child's batch stays valid until its next Next), which keeps every
    // per-round buffer bounded by vector_size.
    while (cand_rem_ > 0) {
      for (const CmpStep& step : compare_steps_)
        step(cand_rem_, cand, cand_pos, match);
      size_t hit_count = 0;
      cand_rem_ = ExtractHitsAdvance(cand_rem_, cand, cand_pos, match, hits,
                                     hit_pos, hit_count);
      stats_.Record(hit_count, vsize);
      if (hit_count == 0) continue;

      // Gather this round's hits behind whatever is already pending (hit
      // positions only stay valid while the probe batch is current).
      for (const Output& o : outputs_) o.gather(hit_count, out_pending_);
      out_pending_ += hit_count;
      if (!accumulate) return emit(out_pending_);
      if (ctx_.compaction == CompactionPolicy::kAdaptive &&
          out_pending_ == hit_count &&
          static_cast<double>(hit_count) >=
              ctx_.compaction_threshold * static_cast<double>(vsize)) {
        // Dense enough and nothing buffered: emit with no extra latency.
        return emit(out_pending_);
      }
      if (out_pending_ >= vsize) {
        CompactionTelemetry::Global().RecordCompaction(vsize);
        return emit(vsize);
      }
    }
    if (probe_eos_) {
      if (out_pending_ > 0) {
        CompactionTelemetry::Global().RecordCompaction(out_pending_);
        return emit(out_pending_);
      }
      stats_.FlushToGlobal();
      return kEndOfStream;
    }
    const size_t n = probe_->Next();
    if (n == kEndOfStream) {
      probe_eos_ = true;
      continue;
    }
    if (n == 0) continue;
    probe_hash_(n, probe_->sel(), hashes, pos);
    for (const RehashStep& step : probe_rehash_) step(n, pos, hashes);

    if (use_simd) {
      cand_rem_ = ctx_.rof
                      ? simd::JoinCandidatesStaged(n, hashes, pos,
                                                   shared_->ht, cand, cand_pos)
                      : simd::JoinCandidates(n, hashes, pos, shared_->ht, cand,
                                             cand_pos);
    } else {
      cand_rem_ = ctx_.rof ? JoinCandidatesStaged(n, hashes, pos, shared_->ht,
                                                  cand, cand_pos)
                           : JoinCandidates(n, hashes, pos, shared_->ht, cand,
                                            cand_pos);
    }
  }
}

}  // namespace vcq::tectorwise
