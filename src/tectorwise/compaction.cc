#include "tectorwise/compaction.h"

#include <cmath>
#include <limits>

namespace vcq::tectorwise {

double CompactionTelemetry::Snapshot::AvgDensity() const {
  if (capacity == 0) return std::numeric_limits<double>::quiet_NaN();
  return static_cast<double>(tuples) / static_cast<double>(capacity);
}

CompactionTelemetry& CompactionTelemetry::Global() {
  static CompactionTelemetry telemetry;
  return telemetry;
}

void CompactionTelemetry::Reset() {
  batches_.store(0, std::memory_order_relaxed);
  tuples_.store(0, std::memory_order_relaxed);
  capacity_.store(0, std::memory_order_relaxed);
  compactions_.store(0, std::memory_order_relaxed);
  compacted_tuples_.store(0, std::memory_order_relaxed);
}

CompactionTelemetry::Snapshot CompactionTelemetry::Take() const {
  Snapshot s;
  s.batches = batches_.load(std::memory_order_relaxed);
  s.tuples = tuples_.load(std::memory_order_relaxed);
  s.capacity = capacity_.load(std::memory_order_relaxed);
  s.compactions = compactions_.load(std::memory_order_relaxed);
  s.compacted_tuples = compacted_tuples_.load(std::memory_order_relaxed);
  return s;
}

void LocalBatchStats::FlushToGlobal() {
  if (batches == 0) return;
  CompactionTelemetry::Global().RecordBatches(batches, tuples, capacity);
  batches = tuples = capacity = 0;
}

void Compactor::Configure(const ExecContext& ctx) {
  policy_ = ctx.compaction;
  threshold_ = ctx.compaction_threshold;
  vector_size_ = ctx.vector_size;
}

void Compactor::AddColumn(Slot* slot, size_t elem_size, CompactStep step) {
  if (policy_ == CompactionPolicy::kNever) return;
  for (const Column& c : columns_) {
    if (c.slot == slot) return;  // already registered
  }
  columns_.push_back(
      Column{slot, elem_size, std::move(step),
             VecBuffer(2 * vector_size_ * elem_size), nullptr});
}

void Compactor::BeginBatch() {
  if (emitted_ == 0) return;
  const size_t rest = pending_ - emitted_;
  for (Column& c : columns_) {
    if (rest > 0) {
      auto* base = static_cast<std::byte*>(c.buffer.data());
      std::memmove(base, base + emitted_ * c.elem_size,
                   rest * c.elem_size);
    }
    c.slot->ptr = c.saved;
  }
  pending_ = rest;
  emitted_ = 0;
}

void Compactor::Append(size_t n, const pos_t* sel) {
  VCQ_CHECK_MSG(pending_ < vector_size_ && n <= vector_size_,
                "compaction buffer overflow");
  for (Column& c : columns_) {
    auto* base = static_cast<std::byte*>(c.buffer.data());
    c.step(n, sel, base + pending_ * c.elem_size);
  }
  pending_ += n;
}

size_t Compactor::Flush() {
  const size_t m = pending_ < vector_size_ ? pending_ : vector_size_;
  for (Column& c : columns_) {
    c.saved = c.slot->ptr;
    c.slot->ptr = c.buffer.data();
  }
  emitted_ = m;
  CompactionTelemetry::Global().RecordCompaction(m);
  return m;
}

}  // namespace vcq::tectorwise
