#include "tectorwise/primitives.h"

#include "runtime/types.h"

namespace vcq::tectorwise {

void MapYear(size_t n, const pos_t* sel, const int32_t* a, int32_t* out) {
  if (sel == nullptr) {
    for (size_t p = 0; p < n; ++p) out[p] = runtime::YearOf(a[p]);
  } else {
    for (size_t k = 0; k < n; ++k) {
      const pos_t p = sel[k];
      out[p] = runtime::YearOf(a[p]);
    }
  }
}

}  // namespace vcq::tectorwise
