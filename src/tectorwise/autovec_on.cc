#define VCQ_AUTOVEC_NS autovec_on
#include "tectorwise/autovec_kernels.inc"
