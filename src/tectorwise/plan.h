#ifndef VCQ_TECTORWISE_PLAN_H_
#define VCQ_TECTORWISE_PLAN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "runtime/options.h"
#include "runtime/params.h"
#include "runtime/relation.h"
#include "tectorwise/hash_group.h"
#include "tectorwise/hash_join.h"
#include "tectorwise/steps.h"

// Declarative plan-builder layer for the Tectorwise engine.
//
// A PlanBuilder describes a query as a DAG of nodes — Scan, Select, Map,
// HashJoin (build + probe children), HashGroup, FixedAgg, OrderedAgg —
// wired by named column references (ColumnRef). Build() validates the
// description, derives the batch-compaction registrations from slot usage,
// and returns an executable Plan. Plan::Run() then does per query what
// every RunQ* function used to hand-wire per worker: it creates the shared
// state (morsel queues, hash tables, barriers), instantiates one operator
// tree per worker, drains the root, and hands every root batch to a
// collector under an internal mutex.
//
// Slot-usage tracking. Every declaration records which columns its steps
// consume. A Select is a batch-compaction point (see compaction.h) and must
// register every column that is produced at or below it and read above it;
// PR 1 listed those columns by hand (CompactColumn<T>), which ROADMAP
// called the main correctness footgun — forgetting one column silently
// misreads values through compacted positions. Build() derives the set
// instead:
//
//   registered(S) = produced(subtree(S))
//                   ∩ (consumed(ancestors(S)) ∪ result columns)
//
// HashGroup registers its own keys/aggregates with its input compactor and
// the HashJoin probe accumulator gathers into operator-owned buffers, so
// Selects are the only points that need derived registration.
//
// Quickstart — SELECT sum(rev) FROM t WHERE a < 10:
//
//   PlanBuilder pb("example");
//   auto& scan = pb.Scan(relation, "t");
//   ColumnRef a = scan.Col<int32_t>("a");
//   ColumnRef rev = scan.Col<int64_t>("rev");
//   auto& sel = pb.Select(scan);
//   sel.Cmp<int32_t>(a, CmpOp::kLess, 10);  // `rev` registration is derived
//   auto& agg = pb.FixedAgg(sel);
//   ColumnRef total = agg.Sum(rev, "total");
//   Plan plan = pb.Build(agg, {total});
//   int64_t sum = 0;
//   plan.Run(options, [&](const Plan::Batch& b) {
//     sum += b.Column<int64_t>(total)[0];
//   });
//
// Plan::ToString() dumps the DAG EXPLAIN-style — nodes, consumed columns,
// derived compaction registrations (see examples/engine_explorer.cpp).

namespace vcq::tectorwise {

class Plan;
class PlanBuilder;
class PlanNode;

/// Shared translation of the engine-independent QueryOptions into the
/// Tectorwise ExecContext (previously copy-pasted into each query file).
ExecContext MakeContext(const runtime::QueryOptions& opt);

/// Handle to a named plan column: returned by the producing node's
/// declaration methods, passed to consuming declarations and to
/// Plan::Batch accessors.
struct ColumnRef {
  uint32_t id = UINT32_MAX;
  bool valid() const { return id != UINT32_MAX; }
};

enum class NodeKind {
  kScan,
  kSelect,
  kMap,
  kHashJoin,
  kHashGroup,
  kFixedAgg,
  kOrderedAgg,
};

/// One parameter read declared by a plan step (CmpParam, BetweenParam,
/// EqOr2Param, ContainsParam): the binding name and how the step accesses
/// it at instantiate time. Recorded by the builder so prepare can
/// cross-check every read against the catalog's declared ParamTypes
/// (vcq::ValidatePlanParams) — a query/catalog drift then fails at Prepare
/// instead of producing garbage at the first Execute.
struct ParamUse {
  std::string name;
  /// true: resolved through QueryParams::Str (strings); false: through
  /// QueryParams::Int (integers and dates, which share the numeric
  /// representation — see runtime/params.h).
  bool string_access = false;
};

namespace plan_internal {

/// Registers a column with a Compactor; bound to the column's static type
/// at declaration time (CompactColumn<T> keeps the SIMD kernel choice).
using CompactRegistrar =
    std::function<void(const ExecContext&, Compactor&, Slot*)>;

template <typename T>
CompactRegistrar MakeRegistrar() {
  return [](const ExecContext& ctx, Compactor& c, Slot* slot) {
    CompactColumn<T>(ctx, c, slot);
  };
}

struct ColumnInfo {
  std::string name;
  uint32_t producer;  // node index
  size_t elem_size;
  CompactRegistrar compact;
};

/// Per-worker instantiation state: slot wiring (indexed by column id), the
/// run-wide shared-state table (indexed by node index), and the run's
/// parameter bindings (resolved by parameterized steps at instantiate
/// time — this is what lets one built Plan serve many executions).
struct Workspace {
  const ExecContext& ctx;
  size_t worker_id;
  size_t worker_count;
  const std::vector<ColumnInfo>* columns;
  const std::vector<std::shared_ptr<void>>* shared;
  const runtime::QueryParams* params;
  std::vector<Slot*> slots;
};

/// The run's validated parameter bindings; the single check (and message)
/// every parameterized step goes through.
inline const runtime::QueryParams& Params(const Workspace& ws) {
  VCQ_CHECK_MSG(ws.params != nullptr,
                "parameterized plan executed without QueryParams (use the "
                "three-argument Plan::Run or go through vcq::Session)");
  return *ws.params;
}

/// Resolves the predicate constant for a parameterized step: numbers (and
/// dates, stored as day numbers) through Int, fixed-width strings through
/// the type's From.
template <typename T>
T ParamAs(const Workspace& ws, const std::string& name) {
  if constexpr (std::is_arithmetic_v<T>) {
    return static_cast<T>(Params(ws).Int(name));
  } else {
    return T::From(Params(ws).Str(name));
  }
}

inline std::string CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kLess: return "<";
    case CmpOp::kLessEq: return "<=";
    case CmpOp::kGreater: return ">";
    case CmpOp::kGreaterEq: return ">=";
    case CmpOp::kEq: return "==";
  }
  return "?";
}

template <typename T>
std::string Display(const T& v) {
  if constexpr (std::is_arithmetic_v<T>) {
    return std::to_string(v);
  } else {
    return "'" + std::string(v.View()) + "'";
  }
}

}  // namespace plan_internal

/// Base of all node declarations. Subclasses add typed declaration methods
/// (each records the slots it consumes) and implement the per-worker
/// operator instantiation.
class PlanNode {
 public:
  virtual ~PlanNode() = default;
  PlanNode(const PlanNode&) = delete;
  PlanNode& operator=(const PlanNode&) = delete;

  NodeKind kind() const { return kind_; }
  uint32_t index() const { return index_; }
  const std::string& label() const { return label_; }

 protected:
  PlanNode(PlanBuilder* builder, NodeKind kind, std::string label)
      : builder_(builder), kind_(kind), label_(std::move(label)) {}

  /// Adds a column produced by this node to the plan's column table.
  ColumnRef Define(std::string name, size_t elem_size,
                   plan_internal::CompactRegistrar registrar);
  /// Records that one of this node's steps reads `ref`.
  void Consume(ColumnRef ref);
  /// Records that one of this node's steps resolves parameter `name` at
  /// instantiate time (see ParamUse).
  void UseParam(std::string name, bool string_access);
  std::string ColName(ColumnRef ref) const;
  /// Adds an EXPLAIN detail line for this node.
  void Detail(std::string text) { details_.push_back(std::move(text)); }

  /// Creates this node's run-wide shared state (nullptr when none).
  virtual std::shared_ptr<void> MakeShared(
      const runtime::QueryOptions& opt) const {
    (void)opt;
    return nullptr;
  }
  /// Builds this worker's operator (recursively instantiating children)
  /// and publishes the produced slots into the workspace.
  virtual std::unique_ptr<Operator> Instantiate(
      plan_internal::Workspace& ws) const = 0;

  /// Protected-access dispatcher so sibling node types can instantiate
  /// their children. The single choke point of operator creation: when
  /// the workspace's ExecContext carries a trace sink (runtime/trace.h),
  /// the operator comes back wrapped in a transparent timing shim that
  /// records one span per node per worker — tracing needs no per-node
  /// code. Defined in plan.cc.
  static std::unique_ptr<Operator> InstantiateNode(
      const PlanNode& node, plan_internal::Workspace& ws);

  PlanBuilder* builder_;
  NodeKind kind_;
  uint32_t index_ = 0;
  std::string label_;
  std::vector<PlanNode*> children_;
  int parent_ = -1;
  std::vector<uint32_t> consumed_;
  std::vector<std::string> details_;

 private:
  friend class Plan;
  friend class PlanBuilder;
};

// ---------------------------------------------------------------------------
// Scan
// ---------------------------------------------------------------------------

class ScanNode : public PlanNode {
 public:
  /// Declares a relation column of static type T; returns its handle.
  template <typename T>
  ColumnRef Col(std::string name) {
    const ColumnRef ref =
        Define(name, sizeof(T), plan_internal::MakeRegistrar<T>());
    cols_.push_back(
        [name, id = ref.id](Scan& scan, plan_internal::Workspace& ws) {
          ws.slots[id] = scan.AddColumn<T>(name);
        });
    return ref;
  }

 private:
  friend class PlanBuilder;
  ScanNode(PlanBuilder* builder, const runtime::Relation* relation,
           std::string table)
      : PlanNode(builder, NodeKind::kScan, "scan(" + table + ")"),
        relation_(relation) {}

  std::shared_ptr<void> MakeShared(
      const runtime::QueryOptions& opt) const override;
  std::unique_ptr<Operator> Instantiate(
      plan_internal::Workspace& ws) const override;

  const runtime::Relation* relation_;
  std::vector<std::function<void(Scan&, plan_internal::Workspace&)>> cols_;
};

// ---------------------------------------------------------------------------
// Select
// ---------------------------------------------------------------------------

class SelectNode : public PlanNode {
 public:
  /// col OP konst.
  template <typename T>
  SelectNode& Cmp(ColumnRef col, CmpOp op, T konst) {
    Consume(col);
    Detail(ColName(col) + " " + plan_internal::CmpOpName(op) + " " +
           plan_internal::Display(konst));
    steps_.push_back([col, op, konst](const ExecContext& ctx,
                                      plan_internal::Workspace& ws) {
      return MakeSelCmp<T>(ctx, ws.slots[col.id], op, konst);
    });
    return *this;
  }

  /// lo <= col <= hi.
  template <typename T>
  SelectNode& Between(ColumnRef col, T lo, T hi) {
    Consume(col);
    Detail(ColName(col) + " in [" + plan_internal::Display(lo) + ", " +
           plan_internal::Display(hi) + "]");
    steps_.push_back([col, lo, hi](const ExecContext& ctx,
                                   plan_internal::Workspace& ws) {
      return MakeSelBetween<T>(ctx, ws.slots[col.id], lo, hi);
    });
    return *this;
  }

  /// col == a || col == b.
  template <typename T>
  SelectNode& EqOr2(ColumnRef col, T a, T b) {
    Consume(col);
    Detail(ColName(col) + " == " + plan_internal::Display(a) + " || " +
           plan_internal::Display(b));
    steps_.push_back(
        [col, a, b](const ExecContext&, plan_internal::Workspace& ws) {
          return MakeSelEqOr2<T>(ws.slots[col.id], a, b);
        });
    return *this;
  }

  /// Substring containment on a Varchar column.
  template <typename V>
  SelectNode& Contains(ColumnRef col, std::string needle) {
    Consume(col);
    Detail(ColName(col) + " contains '" + needle + "'");
    steps_.push_back(
        [col, needle](const ExecContext&, plan_internal::Workspace& ws) {
          return MakeSelContains<V>(ws.slots[col.id], needle);
        });
    return *this;
  }

  // --- parameterized predicates (paper §8.1: prepared statements) ---------
  // The constant is a named parameter resolved from the execution's
  // QueryParams when the per-worker operators are instantiated, so the plan
  // is built once and every Execute may bind different values.

  /// col OP :param.
  template <typename T>
  SelectNode& CmpParam(ColumnRef col, CmpOp op, std::string param) {
    Consume(col);
    UseParam(param, !std::is_arithmetic_v<T>);
    Detail(ColName(col) + " " + plan_internal::CmpOpName(op) + " :" + param);
    steps_.push_back([col, op, param](const ExecContext& ctx,
                                      plan_internal::Workspace& ws) {
      return MakeSelCmp<T>(ctx, ws.slots[col.id], op,
                           plan_internal::ParamAs<T>(ws, param));
    });
    return *this;
  }

  /// :lo_param <= col <= :hi_param.
  template <typename T>
  SelectNode& BetweenParam(ColumnRef col, std::string lo_param,
                           std::string hi_param) {
    Consume(col);
    UseParam(lo_param, !std::is_arithmetic_v<T>);
    UseParam(hi_param, !std::is_arithmetic_v<T>);
    Detail(ColName(col) + " in [:" + lo_param + ", :" + hi_param + "]");
    steps_.push_back([col, lo_param, hi_param](
                         const ExecContext& ctx,
                         plan_internal::Workspace& ws) {
      return MakeSelBetween<T>(ctx, ws.slots[col.id],
                               plan_internal::ParamAs<T>(ws, lo_param),
                               plan_internal::ParamAs<T>(ws, hi_param));
    });
    return *this;
  }

  /// col == :a_param || col == :b_param.
  template <typename T>
  SelectNode& EqOr2Param(ColumnRef col, std::string a_param,
                         std::string b_param) {
    Consume(col);
    UseParam(a_param, !std::is_arithmetic_v<T>);
    UseParam(b_param, !std::is_arithmetic_v<T>);
    Detail(ColName(col) + " == :" + a_param + " || :" + b_param);
    steps_.push_back([col, a_param, b_param](const ExecContext&,
                                             plan_internal::Workspace& ws) {
      return MakeSelEqOr2<T>(ws.slots[col.id],
                             plan_internal::ParamAs<T>(ws, a_param),
                             plan_internal::ParamAs<T>(ws, b_param));
    });
    return *this;
  }

  /// Substring containment with the needle bound as :param.
  template <typename V>
  SelectNode& ContainsParam(ColumnRef col, std::string param) {
    Consume(col);
    UseParam(param, /*string_access=*/true);
    Detail(ColName(col) + " contains :" + param);
    steps_.push_back(
        [col, param](const ExecContext&, plan_internal::Workspace& ws) {
          return MakeSelContains<V>(ws.slots[col.id],
                                    plan_internal::Params(ws).Str(param));
        });
    return *this;
  }

  /// Column ids Build() derived for compaction registration (produced at or
  /// below this Select, consumed above it).
  const std::vector<uint32_t>& compaction_columns() const { return compact_; }

 private:
  friend class PlanBuilder;
  explicit SelectNode(PlanBuilder* builder)
      : PlanNode(builder, NodeKind::kSelect, "select") {}

  std::unique_ptr<Operator> Instantiate(
      plan_internal::Workspace& ws) const override;

  std::vector<
      std::function<SelStep(const ExecContext&, plan_internal::Workspace&)>>
      steps_;
  std::vector<uint32_t> compact_;  // derived by PlanBuilder::Build
};

// ---------------------------------------------------------------------------
// Map (projection)
// ---------------------------------------------------------------------------

class MapNode : public PlanNode {
 public:
  /// out = a * b.
  template <typename T>
  ColumnRef Mul(ColumnRef a, ColumnRef b, std::string name) {
    Consume(a);
    Consume(b);
    const ColumnRef out = Output<T>(std::move(name));
    Detail(ColName(out) + " = " + ColName(a) + " * " + ColName(b));
    steps_.push_back([a, b, id = out.id](Map& map,
                                         plan_internal::Workspace& ws) {
      Slot* slot = map.AddOutput<T>();
      ws.slots[id] = slot;
      map.AddStep(MakeMapMul<T>(ws.slots[a.id], ws.slots[b.id],
                                map.OutputData<T>(slot)));
    });
    return out;
  }

  /// out = a - b.
  template <typename T>
  ColumnRef Sub(ColumnRef a, ColumnRef b, std::string name) {
    Consume(a);
    Consume(b);
    const ColumnRef out = Output<T>(std::move(name));
    Detail(ColName(out) + " = " + ColName(a) + " - " + ColName(b));
    steps_.push_back([a, b, id = out.id](Map& map,
                                         plan_internal::Workspace& ws) {
      Slot* slot = map.AddOutput<T>();
      ws.slots[id] = slot;
      map.AddStep(MakeMapSub<T>(ws.slots[a.id], ws.slots[b.id],
                                map.OutputData<T>(slot)));
    });
    return out;
  }

  /// out = a + b.
  template <typename T>
  ColumnRef Add(ColumnRef a, ColumnRef b, std::string name) {
    Consume(a);
    Consume(b);
    const ColumnRef out = Output<T>(std::move(name));
    Detail(ColName(out) + " = " + ColName(a) + " + " + ColName(b));
    steps_.push_back([a, b, id = out.id](Map& map,
                                         plan_internal::Workspace& ws) {
      Slot* slot = map.AddOutput<T>();
      ws.slots[id] = slot;
      map.AddStep(MakeMapAdd<T>(ws.slots[a.id], ws.slots[b.id],
                                map.OutputData<T>(slot)));
    });
    return out;
  }

  /// out = a * konst.
  template <typename T>
  ColumnRef MulConst(ColumnRef a, T konst, std::string name) {
    Consume(a);
    const ColumnRef out = Output<T>(std::move(name));
    Detail(ColName(out) + " = " + ColName(a) + " * " +
           plan_internal::Display(konst));
    steps_.push_back([a, konst, id = out.id](Map& map,
                                             plan_internal::Workspace& ws) {
      Slot* slot = map.AddOutput<T>();
      ws.slots[id] = slot;
      map.AddStep(
          MakeMapMulConst<T>(ws.slots[a.id], konst, map.OutputData<T>(slot)));
    });
    return out;
  }

  /// out = (To)a — integer widening (e.g. int32 keys entering int64
  /// arithmetic or aggregation).
  template <typename From, typename To>
  ColumnRef Widen(ColumnRef a, std::string name) {
    Consume(a);
    const ColumnRef out = Output<To>(std::move(name));
    Detail(ColName(out) + " = widen(" + ColName(a) + ")");
    steps_.push_back([a, id = out.id](Map& map,
                                      plan_internal::Workspace& ws) {
      Slot* slot = map.AddOutput<To>();
      ws.slots[id] = slot;
      map.AddStep(
          MakeMapWiden<From, To>(ws.slots[a.id], map.OutputData<To>(slot)));
    });
    return out;
  }

  /// out = konst - a.
  template <typename T>
  ColumnRef RSubConst(T konst, ColumnRef a, std::string name) {
    Consume(a);
    const ColumnRef out = Output<T>(std::move(name));
    Detail(ColName(out) + " = " + plan_internal::Display(konst) + " - " +
           ColName(a));
    steps_.push_back([konst, a, id = out.id](Map& map,
                                             plan_internal::Workspace& ws) {
      Slot* slot = map.AddOutput<T>();
      ws.slots[id] = slot;
      map.AddStep(
          MakeMapRSubConst<T>(konst, ws.slots[a.id], map.OutputData<T>(slot)));
    });
    return out;
  }

  /// out = a * (konst - b); fused, the intermediate is never materialized.
  template <typename T>
  ColumnRef MulRSubConst(ColumnRef a, T konst, ColumnRef b,
                         std::string name) {
    Consume(a);
    Consume(b);
    const ColumnRef out = Output<T>(std::move(name));
    Detail(ColName(out) + " = " + ColName(a) + " * (" +
           plan_internal::Display(konst) + " - " + ColName(b) + ")");
    steps_.push_back([a, konst, b, id = out.id](
                         Map& map, plan_internal::Workspace& ws) {
      Slot* slot = map.AddOutput<T>();
      ws.slots[id] = slot;
      map.AddStep(MakeMapMulRSubConst<T>(ws.slots[a.id], konst,
                                         ws.slots[b.id],
                                         map.OutputData<T>(slot)));
    });
    return out;
  }

  /// out = a * (konst + b); fused, the intermediate is never materialized.
  template <typename T>
  ColumnRef MulAddConst(ColumnRef a, T konst, ColumnRef b, std::string name) {
    Consume(a);
    Consume(b);
    const ColumnRef out = Output<T>(std::move(name));
    Detail(ColName(out) + " = " + ColName(a) + " * (" +
           plan_internal::Display(konst) + " + " + ColName(b) + ")");
    steps_.push_back([a, konst, b, id = out.id](
                         Map& map, plan_internal::Workspace& ws) {
      Slot* slot = map.AddOutput<T>();
      ws.slots[id] = slot;
      map.AddStep(MakeMapMulAddConst<T>(ws.slots[a.id], konst,
                                        ws.slots[b.id],
                                        map.OutputData<T>(slot)));
    });
    return out;
  }

  /// out = konst + a.
  template <typename T>
  ColumnRef AddConst(T konst, ColumnRef a, std::string name) {
    Consume(a);
    const ColumnRef out = Output<T>(std::move(name));
    Detail(ColName(out) + " = " + plan_internal::Display(konst) + " + " +
           ColName(a));
    steps_.push_back([konst, a, id = out.id](Map& map,
                                             plan_internal::Workspace& ws) {
      Slot* slot = map.AddOutput<T>();
      ws.slots[id] = slot;
      map.AddStep(
          MakeMapAddConst<T>(konst, ws.slots[a.id], map.OutputData<T>(slot)));
    });
    return out;
  }

  /// out = calendar year of date column a.
  ColumnRef Year(ColumnRef a, std::string name) {
    Consume(a);
    const ColumnRef out = Output<int32_t>(std::move(name));
    Detail(ColName(out) + " = year(" + ColName(a) + ")");
    steps_.push_back([a, id = out.id](Map& map,
                                      plan_internal::Workspace& ws) {
      Slot* slot = map.AddOutput<int32_t>();
      ws.slots[id] = slot;
      map.AddStep(MakeMapYear(ws.slots[a.id], map.OutputData<int32_t>(slot)));
    });
    return out;
  }

 private:
  friend class PlanBuilder;
  explicit MapNode(PlanBuilder* builder)
      : PlanNode(builder, NodeKind::kMap, "map") {}

  template <typename T>
  ColumnRef Output(std::string name) {
    return Define(std::move(name), sizeof(T),
                  plan_internal::MakeRegistrar<T>());
  }

  std::unique_ptr<Operator> Instantiate(
      plan_internal::Workspace& ws) const override;

  std::vector<std::function<void(Map&, plan_internal::Workspace&)>> steps_;
};

// ---------------------------------------------------------------------------
// HashJoin (children: build, probe)
// ---------------------------------------------------------------------------

class JoinNode : public PlanNode {
 public:
  /// Adds an equi-join key column pair. The first key sets the hash
  /// expressions of both sides; later keys extend them (composite keys,
  /// paper Fig. 2b).
  template <typename T>
  JoinNode& Key(ColumnRef probe_col, ColumnRef build_col) {
    Consume(probe_col);
    Consume(build_col);
    Detail("key: " + ColName(probe_col) + " == " + ColName(build_col));
    const bool first = !has_key_;
    has_key_ = true;
    config_.push_back([probe_col, build_col, first](
                          const ExecContext& ctx, HashJoin& join,
                          plan_internal::Workspace& ws, FieldMap& fields) {
      Slot* build = ws.slots[build_col.id];
      const Slot* probe = ws.slots[probe_col.id];
      const auto it = fields.find(build_col.id);
      const size_t offset =
          it != fields.end() ? it->second : join.AddBuildField<T>(build);
      fields.emplace(build_col.id, offset);
      if (first) {
        join.SetBuildHash(MakeHash<T>(ctx, build));
        join.SetProbeHash(MakeHash<T>(ctx, probe));
      } else {
        join.AddBuildRehash(MakeRehash<T>(ctx, build));
        join.AddProbeRehash(MakeRehash<T>(ctx, probe));
      }
      join.AddKeyCompare<T>(probe, offset);
    });
    return *this;
  }

  /// Carries a build-side column across the join (entry field + gather
  /// into a dense output vector); key fields are reused, not duplicated.
  template <typename T>
  ColumnRef Build(ColumnRef build_col) {
    Consume(build_col);
    const ColumnRef out = Define(ColName(build_col), sizeof(T),
                                 plan_internal::MakeRegistrar<T>());
    Detail("build: " + ColName(build_col));
    config_.push_back([build_col, id = out.id](
                          const ExecContext&, HashJoin& join,
                          plan_internal::Workspace& ws, FieldMap& fields) {
      const auto it = fields.find(build_col.id);
      const size_t offset =
          it != fields.end() ? it->second
                             : join.AddBuildField<T>(ws.slots[build_col.id]);
      fields.emplace(build_col.id, offset);
      ws.slots[id] = join.AddBuildOutput<T>(offset);
    });
    return out;
  }

  /// Overrides the join build protocol for this node; without it the join
  /// follows the run's QueryOptions.build_mode. EXPLAIN shows the override.
  JoinNode& SetBuildMode(runtime::BuildMode mode) {
    Detail(std::string("build mode: ") +
           (mode == runtime::BuildMode::kCas ? "cas" : "partitioned"));
    config_.push_back([mode](const ExecContext&, HashJoin& join,
                             plan_internal::Workspace&, FieldMap&) {
      join.SetBuildMode(mode);
    });
    return *this;
  }

  /// Carries a probe-side column across the join (hit-position gather).
  template <typename T>
  ColumnRef Probe(ColumnRef probe_col) {
    Consume(probe_col);
    const ColumnRef out = Define(ColName(probe_col), sizeof(T),
                                 plan_internal::MakeRegistrar<T>());
    Detail("probe: " + ColName(probe_col));
    config_.push_back([probe_col, id = out.id](
                          const ExecContext&, HashJoin& join,
                          plan_internal::Workspace& ws, FieldMap&) {
      ws.slots[id] = join.AddProbeOutput<T>(ws.slots[probe_col.id]);
    });
    return out;
  }

 private:
  friend class PlanBuilder;
  /// Per-worker build-field offsets, keyed by build column id.
  using FieldMap = std::unordered_map<uint32_t, size_t>;

  explicit JoinNode(PlanBuilder* builder)
      : PlanNode(builder, NodeKind::kHashJoin, "hash-join") {}

  std::shared_ptr<void> MakeShared(
      const runtime::QueryOptions& opt) const override;
  std::unique_ptr<Operator> Instantiate(
      plan_internal::Workspace& ws) const override;

  bool has_key_ = false;
  std::vector<std::function<void(const ExecContext&, HashJoin&,
                                 plan_internal::Workspace&, FieldMap&)>>
      config_;
};

// ---------------------------------------------------------------------------
// HashGroup
// ---------------------------------------------------------------------------

class GroupNode : public PlanNode {
 public:
  /// Adds a grouping key; returns the key's output column. Keys and
  /// aggregates auto-register with the group's input compactor, so this
  /// compaction point needs no derived registration.
  template <typename T>
  ColumnRef Key(ColumnRef col) {
    Consume(col);
    const ColumnRef out = Define(ColName(col), sizeof(T),
                                 plan_internal::MakeRegistrar<T>());
    Detail("key: " + ColName(col));
    config_.push_back([col, id = out.id](HashGroup& group,
                                         plan_internal::Workspace& ws) {
      const size_t offset = group.AddKey<T>(ws.slots[col.id]);
      ws.slots[id] = group.AddOutput<T>(offset);
    });
    return out;
  }

  /// Adds sum(col) over an int64 column; returns the sum's output column.
  ColumnRef Sum(ColumnRef col);
  /// Adds count(*); returns its output column.
  ColumnRef Count();
  /// Adds min(col) over an int64 column; returns its output column.
  ColumnRef Min(ColumnRef col);
  /// Adds max(col) over an int64 column; returns its output column.
  ColumnRef Max(ColumnRef col);

  /// Partition-emission compaction (ROADMAP follow-on): when enabled,
  /// Next() packs groups from consecutive merged partitions into full
  /// dense output vectors instead of emitting per-partition remnants, so
  /// downstream operators (e.g. Q18's having-Select) see dense input.
  /// Default: on whenever the compaction policy is not kNever.
  GroupNode& DensePartitionOutput(bool on);

 private:
  friend class PlanBuilder;
  explicit GroupNode(PlanBuilder* builder)
      : PlanNode(builder, NodeKind::kHashGroup, "hash-group") {}

  std::shared_ptr<void> MakeShared(
      const runtime::QueryOptions& opt) const override;
  std::unique_ptr<Operator> Instantiate(
      plan_internal::Workspace& ws) const override;

  std::vector<std::function<void(HashGroup&, plan_internal::Workspace&)>>
      config_;
  std::optional<bool> dense_output_;
};

// ---------------------------------------------------------------------------
// FixedAgg (group-less aggregation)
// ---------------------------------------------------------------------------

class FixedAggNode : public PlanNode {
 public:
  /// Adds sum(col) over an int64 column; the output column exposes the
  /// worker-local total in the single row this node emits.
  ColumnRef Sum(ColumnRef col, std::string name);
  /// Adds count(*); the output column exposes the worker-local row count.
  ColumnRef Count(std::string name);
  /// Adds min(col) over an int64 column (INT64_MAX identity on no rows).
  ColumnRef Min(ColumnRef col, std::string name);
  /// Adds max(col) over an int64 column (INT64_MIN identity on no rows).
  ColumnRef Max(ColumnRef col, std::string name);

 private:
  friend class PlanBuilder;
  explicit FixedAggNode(PlanBuilder* builder)
      : PlanNode(builder, NodeKind::kFixedAgg, "fixed-agg") {}

  std::unique_ptr<Operator> Instantiate(
      plan_internal::Workspace& ws) const override;

  struct AggDecl {
    uint32_t in;  // unused for count(*)
    uint32_t out;
    FixedAggregation::AggKind kind = FixedAggregation::AggKind::kSum;
    bool has_input = true;
  };
  std::vector<AggDecl> sums_;
};

// ---------------------------------------------------------------------------
// OrderedAgg (micro-adaptive ordered aggregation, paper §8.4)
// ---------------------------------------------------------------------------

class OrderedAggNode : public PlanNode {
 public:
  /// Adds a one-byte (Char<1>) grouping key; returns its output column.
  ColumnRef Key(ColumnRef col);
  /// Adds sum(col) over an int64 column; returns its output column.
  ColumnRef Sum(ColumnRef col);
  /// Adds count(*); returns its output column.
  ColumnRef Count();

 private:
  friend class PlanBuilder;
  OrderedAggNode(PlanBuilder* builder, size_t max_groups)
      : PlanNode(builder, NodeKind::kOrderedAgg, "ordered-agg"),
        max_groups_(max_groups) {}

  std::unique_ptr<Operator> Instantiate(
      plan_internal::Workspace& ws) const override;

  size_t max_groups_;
  struct KeyDecl {
    uint32_t in;
    uint32_t out;
  };
  struct AggDecl {
    ColumnRef in;  // invalid => count(*)
    uint32_t out;
  };
  std::vector<KeyDecl> keys_;
  std::vector<AggDecl> aggs_;
};

// ---------------------------------------------------------------------------
// Plan (the executable description)
// ---------------------------------------------------------------------------

class Plan {
 public:
  Plan(Plan&&) = default;
  Plan& operator=(Plan&&) = default;

  /// Read-only view of one root batch, passed to the Run collector. Only
  /// the plan's declared result columns are accessible: any other ref
  /// check-fails, because a slot produced below the root's rematerializing
  /// nodes holds pre-join/pre-compaction positions and would silently read
  /// the wrong rows.
  class Batch {
   public:
    Batch(const std::vector<Slot*>* slots, const std::vector<bool>* is_result,
          size_t count, const pos_t* sel)
        : slots_(slots), is_result_(is_result), count_(count), sel_(sel) {}

    size_t size() const { return count_; }
    const pos_t* sel() const { return sel_; }

    /// Base pointer of `ref`'s data for the current batch.
    template <typename T>
    const T* Column(ColumnRef ref) const {
      VCQ_CHECK_MSG(ref.valid() && (*is_result_)[ref.id],
                    "collector read a column that is not a declared result "
                    "column of the plan");
      return Get<T>((*slots_)[ref.id]);
    }
    /// Value of `ref` for the k-th active row (selection-vector aware).
    template <typename T>
    const T& Value(ColumnRef ref, size_t k) const {
      return Column<T>(ref)[sel_ ? sel_[k] : static_cast<pos_t>(k)];
    }

   private:
    const std::vector<Slot*>* slots_;
    const std::vector<bool>* is_result_;
    size_t count_;
    const pos_t* sel_;
  };
  using Collector = std::function<void(const Batch&)>;

  /// Executes the plan: creates per-run shared state, instantiates one
  /// operator tree per worker on the run's pool, drains the root on every
  /// worker and invokes `collect` for each non-empty root batch under an
  /// internal mutex. All mutable state is per-run, so concurrent Run calls
  /// on one Plan are safe — this is the prepare-once/execute-many split
  /// vcq::PreparedQuery builds on. `params` supplies the values of any
  /// parameterized predicates (CmpParam etc.); plans without parameters
  /// may use the two-argument overload.
  void Run(const runtime::QueryOptions& opt,
           const runtime::QueryParams& params, const Collector& collect) const;
  void Run(const runtime::QueryOptions& opt, const Collector& collect) const {
    Run(opt, runtime::QueryParams{}, collect);
  }

  /// EXPLAIN-style dump: nodes, steps, consumed columns, derived
  /// compaction registrations, result columns.
  std::string ToString() const;

  struct NodeInfo {
    NodeKind kind;
    std::string label;
    std::vector<uint32_t> children;
    std::vector<std::string> details;
    std::vector<std::string> consumes;
    /// Select nodes only: column names whose compaction registration was
    /// derived from slot usage.
    std::vector<std::string> compacts;
  };
  std::vector<NodeInfo> Describe() const;

  /// Index of the root node (the Describe() entry the collector drains).
  uint32_t root() const { return root_; }

  const std::string& name() const { return name_; }

  /// Every parameter read the plan's steps declared (in declaration
  /// order), for the prepare-time catalog cross-check
  /// (vcq::ValidatePlanParams).
  const std::vector<ParamUse>& param_uses() const { return param_uses_; }

  /// Total tuples across the plan's scans — the remaining-work hint the
  /// scheduler's shortest-remaining-region tie-break uses.
  size_t work_hint() const { return work_hint_; }

 private:
  friend class PlanBuilder;
  Plan() = default;

  std::string name_;
  std::vector<std::unique_ptr<PlanNode>> nodes_;
  std::vector<plan_internal::ColumnInfo> columns_;
  uint32_t root_ = 0;
  std::vector<uint32_t> result_;
  std::vector<ParamUse> param_uses_;
  size_t work_hint_ = 0;
};

/// EXPLAIN ANALYZE rendering: the plan's Describe() tree annotated with
/// the measured per-node stats a traced run recorded (runtime/trace.h) —
/// output rows, batches, inclusive and self ns/tuple, batch density,
/// join build/probe wall split (from the trace's embedded NodeTelemetry,
/// the same numbers the tuner learns from), and spill bytes per node.
/// `vector_size` is the run's vector size (density denominator).
std::string ExplainAnalyzeTree(const Plan& plan,
                               const runtime::QueryTrace& trace,
                               size_t vector_size);

// ---------------------------------------------------------------------------
// PlanBuilder
// ---------------------------------------------------------------------------

class PlanBuilder {
 public:
  explicit PlanBuilder(std::string name) : name_(std::move(name)) {}

  ScanNode& Scan(const runtime::Relation& relation, std::string table);
  SelectNode& Select(PlanNode& child);
  MapNode& Map(PlanNode& child);
  JoinNode& HashJoin(PlanNode& build, PlanNode& probe);
  GroupNode& HashGroup(PlanNode& child);
  FixedAggNode& FixedAgg(PlanNode& child);
  OrderedAggNode& OrderedAgg(PlanNode& child, size_t max_groups = 16);

  /// Validates the DAG (single consumer per node, column visibility across
  /// rematerializing operators), derives every Select's compaction
  /// registrations from slot usage, and returns the executable Plan. The
  /// builder is consumed.
  ///
  /// By default the root must be a rematerializing node (join/group/
  /// aggregation), because most collectors read root batches densely via
  /// Batch::Column()[k]. A collector that reads exclusively through the
  /// selection-vector-aware Batch::Value may pass
  /// `selection_aware_collector = true` to allow streaming roots
  /// (scan/select/map) — e.g. a projection or a HAVING filter as the top
  /// operator.
  Plan Build(PlanNode& root, std::vector<ColumnRef> result_columns,
             bool selection_aware_collector = false);

 private:
  friend class PlanNode;

  ColumnRef AddColumn(plan_internal::ColumnInfo info);
  PlanNode& Register(std::unique_ptr<PlanNode> node,
                     std::initializer_list<PlanNode*> children);

  std::string name_;
  std::vector<std::unique_ptr<PlanNode>> nodes_;
  std::vector<plan_internal::ColumnInfo> columns_;
  std::vector<ParamUse> param_uses_;
};

}  // namespace vcq::tectorwise

#endif  // VCQ_TECTORWISE_PLAN_H_
