#ifndef VCQ_TECTORWISE_CORE_H_
#define VCQ_TECTORWISE_CORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.h"
#include "runtime/cancel.h"
#include "runtime/options.h"

// Tectorwise execution core (paper §2): pull-based operators exchanging
// vectors of a configurable size, with selection vectors marking the active
// subset of the current batch. Work happens in type-specialized primitives;
// the operators only orchestrate ("interpretation" that amortizes over the
// whole vector, §4.2).

namespace vcq::tectorwise {

/// Position within the current batch (VectorWise-style selection vectors).
using pos_t = uint32_t;

/// Returned by Operator::Next when the input is exhausted.
inline constexpr size_t kEndOfStream = ~size_t{0};

/// Default vector size; the paper's default (and VectorWise's) is 1000
/// tuples — we use 1024 and sweep the whole range in Fig. 5.
inline constexpr size_t kDefaultVectorSize = 1024;

/// A stable location holding the current batch's base pointer for one
/// column. Producers update slots every batch; consumers capture `Slot*`
/// once at plan-build time. This is the vectorized engine's column wiring.
struct Slot {
  const void* ptr = nullptr;
};

template <typename T>
inline const T* Get(const Slot* slot) {
  return static_cast<const T*>(slot->ptr);
}

/// Batch-compaction policy (cf. "Data Chunk Compaction in Vectorized
/// Execution", SIGMOD'25). Sparse selection vectors make every downstream
/// primitive pay full per-vector overhead for a trickle of tuples and
/// degrade SIMD variants to gather speed (paper §5.1, Fig. 7). The
/// compaction points (Select output, hash-join probe output, group-by
/// input) can densify such batches: live values are copied into
/// operator-owned buffers, several sparse batches are merged into one
/// full batch, and the selection vector is dropped so downstream
/// primitives run their dense paths.
enum class CompactionPolicy {
  kNever,   ///< Emit batches as produced (seed behavior; zero copies).
  kAlways,  ///< Densify every sel-carrying batch regardless of density.
  kAdaptive,  ///< Densify only when batch density falls below the
              ///< ExecContext threshold; dense batches pass through
              ///< untouched (zero copies on the common path).
};

/// Per-plan execution settings (threads come from the runner; SIMD toggles
/// the AVX-512 primitive variants for the §5 experiments).
struct ExecContext {
  size_t vector_size = kDefaultVectorSize;
  bool use_simd = false;
  /// Batch-compaction policy applied at the compaction points.
  CompactionPolicy compaction = CompactionPolicy::kNever;
  /// kAdaptive densifies a batch only when `count / vector_size` falls
  /// below this density. The default (1/64, i.e. batches less than ~1.6%
  /// full) is where merged-batch savings clearly exceed the copy tax in
  /// the ablation sweep (bench/ablation_compaction) — this engine's
  /// per-vector overhead is lean and the tax grows with every registered
  /// column, so only truly sparse batches are worth copying. Values >= 1.0
  /// make kAdaptive behave like kAlways, <= 0.0 like kNever.
  double compaction_threshold = 1.0 / 64;
  /// Join hash-table build protocol (runtime::JoinBuild); plan nodes can
  /// override it per join (JoinNode::SetBuildMode).
  runtime::BuildMode build_mode = runtime::BuildMode::kPartitioned;
  /// Relaxed operator fusion (paper §9.1): HashJoin probes use the
  /// prefetch-staged findCandidates variant (JoinCandidatesStaged).
  bool rof = false;
  /// Cooperative cancellation/deadline token, polled at morsel boundaries
  /// by Scan (every pipeline bottoms out at one, so an interrupted run
  /// drains with barriers balanced; see runtime/cancel.h). nullptr = not
  /// cancellable.
  const runtime::CancelToken* cancel = nullptr;
  /// Per-query memory ledger: operator arenas (join materialize, group
  /// entries) Bind() their pools to it so allocation is charged against the
  /// run's budget; a breach soft-trips `cancel` with kResourceExhausted.
  /// nullptr = ungoverned.
  runtime::QueryLedger* ledger = nullptr;
  /// Deterministic fault injector; nullptr = fault points compiled to a
  /// single null check.
  runtime::FaultInjector* fault = nullptr;
  /// Per-execution spill state (runtime/spill.h): when set (and `ledger`
  /// reports pressure), HashJoin's build materialize and HashGroup's local
  /// tables evict completed state to temp files instead of letting the
  /// budget trip the run. nullptr = spill disabled.
  runtime::SpillManager* spill = nullptr;
  /// Per-execution knob choices from the session's runtime::Tuner,
  /// keyed by plan-node index (see runtime/tuner.h). The plan nodes
  /// overlay matching choices onto the static fields above when
  /// instantiating their operators; nullptr = statics only.
  const runtime::KnobChoices* knobs = nullptr;
  /// Per-node wall-span sink for this execution (the tuner's reward
  /// signal); nullptr = not sampled.
  runtime::NodeTelemetry* telemetry = nullptr;
  /// Per-execution span sink (runtime/trace.h). When set, every operator
  /// the plan instantiates is wrapped in a timing shim (one span per
  /// node per worker plus per-site row/ns aggregates) and spill files
  /// carry their node's index for per-node byte attribution. nullptr =
  /// tracing off — the instantiation path is unchanged.
  runtime::QueryTrace* trace = nullptr;
  /// Plan-node index of the node this context was overlaid for
  /// (plan.cc NodeContext); UINT32_MAX outside node scope. Lets deep
  /// operator code (spill sites) attribute I/O to its plan node without
  /// widening every constructor.
  uint32_t site = UINT32_MAX;
};

/// Pull-based operator: Next() produces the next batch and returns the
/// number of active tuples (kEndOfStream at end). If sel() is non-null it
/// lists the `count` active positions within the batch; otherwise positions
/// 0..count-1 are active. Column data is exposed through Slots owned by the
/// producing operator.
class Operator {
 public:
  virtual ~Operator() = default;
  virtual size_t Next() = 0;

  const pos_t* sel() const { return sel_; }

 protected:
  const pos_t* sel_ = nullptr;
};

/// Fixed-capacity, 64-byte-aligned scratch buffer for intermediate vectors —
/// the materialization cost that distinguishes vectorized from fused
/// execution (paper §4.1).
class VecBuffer {
 public:
  VecBuffer() = default;
  explicit VecBuffer(size_t bytes) { Reset(bytes); }

  void Reset(size_t bytes) {
    bytes_ = bytes;
    storage_.reset(new (std::align_val_t(64)) std::byte[bytes]);
  }

  template <typename T>
  T* As() {
    return reinterpret_cast<T*>(storage_.get());
  }
  template <typename T>
  const T* As() const {
    return reinterpret_cast<const T*>(storage_.get());
  }
  void* data() { return storage_.get(); }
  size_t bytes() const { return bytes_; }

 private:
  struct AlignedDelete {
    void operator()(std::byte* p) const {
      ::operator delete[](p, std::align_val_t(64));
    }
  };
  std::unique_ptr<std::byte[], AlignedDelete> storage_;
  size_t bytes_ = 0;
};

}  // namespace vcq::tectorwise

#endif  // VCQ_TECTORWISE_CORE_H_
