#include "tectorwise/hash_group.h"

#include <cstdint>

namespace vcq::tectorwise {

using runtime::Hashmap;

HashGroup::HashGroup(Shared* shared, size_t worker_id, size_t worker_count,
                     std::unique_ptr<Operator> child, const ExecContext& ctx)
    : shared_(shared),
      worker_id_(worker_id),
      worker_count_(worker_count),
      child_(std::move(child)),
      ctx_(ctx) {
  // Governed runs charge group-entry chunks to the query ledger and expose
  // the allocation as a named fault point.
  pool_.Bind(ctx_.ledger, ctx_.fault, "tw.group.alloc");
  merge_pool_.Bind(ctx_.ledger, ctx_.fault, "tw.group.merge");
  const size_t v = ctx_.vector_size;
  hashes_.Reset(v * sizeof(uint64_t));
  pos_.Reset(v * sizeof(pos_t));
  groups_.Reset(v * sizeof(std::byte*));
  cand_.Reset(v * sizeof(Hashmap::EntryHeader*));
  cand_k_.Reset(v * sizeof(pos_t));
  cand_pos_.Reset(v * sizeof(pos_t));
  match_.Reset(v * sizeof(uint8_t));
  emit_entries_.Reset(v * sizeof(std::byte*));
  local_ht_.SetSize(2048);
  compactor_.Configure(ctx_);
}

size_t HashGroup::AddAgg(Slot* col, AggKind kind) {
  if (agg_begin_ == 0) agg_begin_ = agg_end_ = AlignUp(key_end_, 8);
  const size_t offset = agg_end_;
  agg_end_ += sizeof(int64_t);
  aggs_.push_back(AggDecl{offset, col, kind});
  if (col != nullptr) CompactColumn<int64_t>(ctx_, compactor_, col);
  return offset;
}

size_t HashGroup::AddSumAgg(Slot* col) { return AddAgg(col, AggKind::kSum); }

size_t HashGroup::AddCountAgg() { return AddAgg(nullptr, AggKind::kCount); }

size_t HashGroup::AddMinAgg(Slot* col) { return AddAgg(col, AggKind::kMin); }

size_t HashGroup::AddMaxAgg(Slot* col) { return AddAgg(col, AggKind::kMax); }

void HashGroup::GrowLocalTable() {
  local_ht_.SetSize(local_count_ * 4);
  auto& spill = shared_->spills[worker_id_];
  for (auto& part : spill.parts) {
    for (std::byte* e : part)
      local_ht_.InsertUnlocked(reinterpret_cast<Hashmap::EntryHeader*>(e));
  }
}

std::byte* HashGroup::InsertGroup(uint64_t hash, pos_t p) {
  // Re-check the chain first: an earlier miss in this batch (or a tag false
  // negative against a just-grown table) may have created the group already.
  for (Hashmap::EntryHeader* e = local_ht_.FindChain(hash); e != nullptr;
       e = e->next) {
    if (e->hash != hash) continue;
    auto* bytes = reinterpret_cast<std::byte*>(e);
    bool equal = true;
    for (const KeySteps& key : key_steps_) {
      if (!key.equal(bytes, p)) {
        equal = false;
        break;
      }
    }
    if (equal) return bytes;
  }
  if ((local_count_ + 1) * 2 > local_ht_.capacity()) GrowLocalTable();

  auto* entry = static_cast<std::byte*>(pool_.Allocate(entry_size()));
  auto* header = reinterpret_cast<Hashmap::EntryHeader*>(entry);
  header->next = nullptr;
  header->hash = hash;
  // Zero the key region (memcmp-comparable padding) and the aggregates,
  // then overwrite min/max accumulators with their fold identities.
  std::memset(entry + sizeof(Hashmap::EntryHeader), 0,
              entry_size() - sizeof(Hashmap::EntryHeader));
  for (const AggDecl& agg : aggs_) {
    if (agg.kind == AggKind::kMin) {
      *reinterpret_cast<int64_t*>(entry + agg.offset) = INT64_MAX;
    } else if (agg.kind == AggKind::kMax) {
      *reinterpret_cast<int64_t*>(entry + agg.offset) = INT64_MIN;
    }
  }
  for (const KeySteps& key : key_steps_) key.init(entry, p);
  local_ht_.InsertUnlocked(header);
  shared_->spills[worker_id_].parts[PartitionOf(hash)].push_back(entry);
  ++local_count_;
  return entry;
}

void HashGroup::FindGroups(size_t n) {
  uint64_t* hashes = hashes_.As<uint64_t>();
  pos_t* pos = pos_.As<pos_t>();
  std::byte** groups = groups_.As<std::byte*>();
  auto** cand = cand_.As<Hashmap::EntryHeader*>();
  pos_t* cand_k = cand_k_.As<pos_t>();
  pos_t* cand_pos = cand_pos_.As<pos_t>();
  uint8_t* match = match_.As<uint8_t>();

  for (size_t k = 0; k < n; ++k) groups[k] = nullptr;

  // findCandidates against the local table (vectorized fast path).
  size_t m = 0;
  for (size_t k = 0; k < n; ++k) {
    Hashmap::EntryHeader* e = local_ht_.FindChainTagged(hashes[k]);
    cand[m] = e;
    cand_k[m] = static_cast<pos_t>(k);
    cand_pos[m] = pos[k];
    m += (e != nullptr) ? 1 : 0;
  }
  while (m > 0) {
    bool first = true;
    for (const KeySteps& key : key_steps_) {
      key.compare(m, cand, cand_pos, match, first);
      first = false;
    }
    size_t survivors = 0;
    for (size_t j = 0; j < m; ++j) {
      if (match[j]) {
        groups[cand_k[j]] = reinterpret_cast<std::byte*>(cand[j]);
      } else {
        Hashmap::EntryHeader* next = cand[j]->next;
        cand[survivors] = next;
        cand_k[survivors] = cand_k[j];
        cand_pos[survivors] = cand_pos[j];
        survivors += (next != nullptr) ? 1 : 0;
      }
    }
    m = survivors;
  }

  // Scalar insert path for group-less tuples.
  for (size_t k = 0; k < n; ++k) {
    if (groups[k] == nullptr) groups[k] = InsertGroup(hashes[k], pos[k]);
  }
}

void HashGroup::MaybeSpillLocal() {
  // Batch boundary is the one safe point to evict: FindGroups/aggregate
  // updates hold group pointers only within a batch. Evict the whole local
  // table — partition-segmented, creation order per partition — and start
  // empty; a spilled key that reappears pre-aggregates into a fresh entry
  // and MergePartitions combines the duplicates.
  if (ctx_.spill == nullptr || local_count_ < kSpillMinGroups ||
      ctx_.ledger == nullptr || !ctx_.ledger->UnderPressure())
    return;
  runtime::SpillFile*& file = shared_->spill_files[worker_id_];
  if (file == nullptr) file = ctx_.spill->Create("tw.group", ctx_.site);
  const size_t stride = entry_size();
  std::vector<std::byte> buf;
  auto& parts = shared_->spills[worker_id_].parts;
  for (size_t p = 0; p < kPartitions; ++p) {
    std::vector<std::byte*>& part = parts[p];
    if (part.empty()) continue;
    buf.resize(part.size() * stride);
    for (size_t i = 0; i < part.size(); ++i)
      std::memcpy(buf.data() + i * stride, part[i], stride);
    file->Append(static_cast<uint32_t>(p), buf.data(), buf.size(),
                 part.size());
    part.clear();
  }
  pool_.Release();
  local_ht_.Clear();
  local_count_ = 0;
}

void HashGroup::ProcessBatch(size_t n, const pos_t* sel) {
  MaybeSpillLocal();
  uint64_t* hashes = hashes_.As<uint64_t>();
  pos_t* pos = pos_.As<pos_t>();
  std::byte** groups = groups_.As<std::byte*>();

  bool first = true;
  for (const KeyHashKind& h : hash_steps_) {
    if (first) {
      h.hash(n, sel, hashes, pos);
      first = false;
    } else {
      h.rehash(n, pos, hashes);
    }
  }
  FindGroups(n);
  // Aggregate updates (vectorized primitives over the group pointers).
  for (const AggDecl& agg : aggs_) {
    switch (agg.kind) {
      case AggKind::kCount:
        AggCount(n, groups, agg.offset);
        break;
      case AggKind::kSum:
        AggSum(n, groups, agg.offset, pos, Get<int64_t>(agg.col));
        break;
      case AggKind::kMin:
        AggMin(n, groups, agg.offset, pos, Get<int64_t>(agg.col));
        break;
      case AggKind::kMax:
        AggMax(n, groups, agg.offset, pos, Get<int64_t>(agg.col));
        break;
    }
  }
}

void HashGroup::ConsumeChild() {
  VCQ_CHECK_MSG(!key_steps_.empty(), "group keys not configured");
  const bool compacting = compactor_.enabled();

  size_t n;
  while ((n = child_->Next()) != kEndOfStream) {
    if (n == 0) continue;
    const pos_t* sel = child_->sel();
    stats_.Record(n, ctx_.vector_size);
    // Dense batches are processed in place even while sparse rows are
    // pending — aggregation is order-insensitive, so the backlog can keep
    // accumulating.
    if (!compacting || !compactor_.ShouldCompact(n)) {
      ProcessBatch(n, sel);
      continue;
    }
    compactor_.Append(n, sel);
    if (compactor_.Full()) {
      ProcessBatch(compactor_.Flush(), nullptr);
      compactor_.BeginBatch();  // restore slots before the next child batch
    }
  }
  while (compacting && compactor_.pending() > 0) {
    ProcessBatch(compactor_.Flush(), nullptr);
    compactor_.BeginBatch();
  }
  stats_.FlushToGlobal();

  // Token-aware phase barriers: a worker that died mid-scan (exception
  // backstop) never arrives, so waiters poll the tripped token, withdraw
  // and skip the merge. An aborted worker emits nothing — the run's result
  // is discarded once the sticky trip surfaces.
  if (shared_->barrier.WaitOrAbort(ctx_.cancel) !=
      runtime::BarrierStatus::kAborted) {
    MergePartitions();
    shared_->barrier.WaitOrAbort(ctx_.cancel);
  }
  consumed_ = true;
  emit_partition_ =
      runtime::Interrupted(ctx_.cancel) ? kPartitions : worker_id_;
  emit_index_ = 0;
}

void HashGroup::MergePartitions() {
  const size_t key_offset = sizeof(Hashmap::EntryHeader);
  const size_t key_len = key_end_ - key_offset;
  const size_t stride = entry_size();
  bool any_spilled = false;
  for (runtime::SpillFile* f : shared_->spill_files)
    any_spilled |= (f != nullptr);
  std::vector<std::byte> buf;

  for (size_t p = worker_id_; p < kPartitions; p += worker_count_) {
    // Poll per partition: a deadline/budget trip mid-merge drains promptly
    // instead of merging groups nobody will read.
    if (runtime::Interrupted(ctx_.cancel)) return;
    runtime::FaultHit(ctx_.fault, "tw.group.merge", ctx_.cancel);
    std::vector<std::byte*>& out = shared_->merged[p];
    // The move fast path is only valid when nothing spilled: spilled
    // segments can duplicate live keys, which need the dedup below.
    if (worker_count_ == 1 && !any_spilled) {
      out = std::move(shared_->spills[0].parts[p]);
      continue;
    }
    size_t total = 0;
    for (size_t w = 0; w < shared_->spills.size(); ++w) {
      total += shared_->spills[w].parts[p].size();
      if (const runtime::SpillFile* f = shared_->spill_files[w])
        total += f->rows_in_partition(static_cast<uint32_t>(p));
    }
    if (total == 0) continue;
    Hashmap merge_ht;
    merge_ht.SetSize(total);
    out.reserve(total);
    // `owned` entries live in a worker pool and can be linked in place;
    // spilled rows live in the read buffer and are copied into merge_pool_
    // when they turn out to be a partition-first occurrence.
    auto merge_one = [&](std::byte* entry, bool owned) {
      auto* header = reinterpret_cast<Hashmap::EntryHeader*>(entry);
      Hashmap::EntryHeader* existing = nullptr;
      for (Hashmap::EntryHeader* e = merge_ht.FindChain(header->hash);
           e != nullptr; e = e->next) {
        if (e->hash == header->hash &&
            std::memcmp(reinterpret_cast<std::byte*>(e) + key_offset,
                        entry + key_offset, key_len) == 0) {
          existing = e;
          break;
        }
      }
      if (existing == nullptr) {
        std::byte* keep = entry;
        if (!owned) {
          keep = static_cast<std::byte*>(merge_pool_.Allocate(stride));
          std::memcpy(keep, entry, stride);
        }
        merge_ht.InsertUnlocked(reinterpret_cast<Hashmap::EntryHeader*>(keep));
        out.push_back(keep);
      } else {
        auto* dst = reinterpret_cast<std::byte*>(existing);
        for (const AggDecl& agg : aggs_) {
          auto* acc = reinterpret_cast<int64_t*>(dst + agg.offset);
          const int64_t v =
              *reinterpret_cast<const int64_t*>(entry + agg.offset);
          switch (agg.kind) {
            case AggKind::kSum:
            case AggKind::kCount:
              *acc += v;
              break;
            case AggKind::kMin:
              if (v < *acc) *acc = v;
              break;
            case AggKind::kMax:
              if (v > *acc) *acc = v;
              break;
          }
        }
      }
    };
    for (size_t w = 0; w < shared_->spills.size(); ++w) {
      // Spilled rows first: they were created before anything still live
      // in worker w's table, and first-seen order is the output order —
      // this keeps merge output byte-identical to an in-memory run.
      if (const runtime::SpillFile* f = shared_->spill_files[w]) {
        for (const auto& seg : f->segments()) {
          if (seg.partition != p) continue;
          buf.resize(seg.bytes);
          f->Read(seg, buf.data());
          for (size_t k = 0; k < seg.rows; ++k)
            merge_one(buf.data() + k * stride, /*owned=*/false);
        }
      }
      for (std::byte* entry : shared_->spills[w].parts[p])
        merge_one(entry, /*owned=*/true);
    }
  }
}

size_t HashGroup::Next() {
  if (!consumed_) ConsumeChild();
  if (!dense_output_) {
    // Emit merged groups from owned partitions, one vector at a time;
    // batches end at partition boundaries (seed behavior).
    while (emit_partition_ < kPartitions) {
      const std::vector<std::byte*>& part = shared_->merged[emit_partition_];
      if (emit_index_ >= part.size()) {
        emit_partition_ += worker_count_;
        emit_index_ = 0;
        continue;
      }
      const size_t n =
          std::min(ctx_.vector_size, part.size() - emit_index_);
      for (const Output& o : outputs_) o.gather(n, part.data() + emit_index_);
      emit_index_ += n;
      sel_ = nullptr;
      return n;
    }
    return kEndOfStream;
  }
  // Partition-emission compaction: pack groups from consecutive owned
  // partitions into one full output vector (group order is unchanged, only
  // the batch boundaries move).
  std::byte** entries = emit_entries_.As<std::byte*>();
  size_t n = 0;
  size_t chunks = 0;
  while (n < ctx_.vector_size && emit_partition_ < kPartitions) {
    const std::vector<std::byte*>& part = shared_->merged[emit_partition_];
    if (emit_index_ >= part.size()) {
      emit_partition_ += worker_count_;
      emit_index_ = 0;
      continue;
    }
    const size_t take =
        std::min(ctx_.vector_size - n, part.size() - emit_index_);
    std::memcpy(entries + n, part.data() + emit_index_,
                take * sizeof(std::byte*));
    n += take;
    emit_index_ += take;
    ++chunks;
  }
  if (n == 0) return kEndOfStream;
  for (const Output& o : outputs_) o.gather(n, entries);
  if (chunks > 1) CompactionTelemetry::Global().RecordCompaction(n);
  sel_ = nullptr;
  return n;
}

}  // namespace vcq::tectorwise
