#include "tectorwise/operators.h"

#include <algorithm>
#include <cstdint>

namespace vcq::tectorwise {

size_t Scan::Next() {
  if (morsel_begin_ >= morsel_end_) {
    // Cancellation polls at morsel boundaries: an interrupted scan stops
    // claiming work and reports end-of-stream, so the pipeline above
    // drains normally (barriers stay balanced, partial hash tables are
    // never probed — the trip is sticky and phases are ordered). The poll
    // doubles as this engine's densest fault point.
    runtime::FaultHit(fault_, "scan.morsel", cancel_);
    if (runtime::Interrupted(cancel_) ||
        !shared_->morsels.Next(morsel_begin_, morsel_end_)) {
      return kEndOfStream;
    }
  }
  const size_t n = std::min(vector_size_, morsel_end_ - morsel_begin_);
  for (Column& c : columns_)
    c.slot->ptr = c.base + morsel_begin_ * c.elem_size;
  morsel_begin_ += n;
  sel_ = nullptr;
  return n;
}

Select::Select(std::unique_ptr<Operator> child, size_t vector_size)
    : child_(std::move(child)),
      vector_size_(vector_size),
      buf_a_(vector_size * sizeof(pos_t)),
      buf_b_(vector_size * sizeof(pos_t)) {}

Select::Select(std::unique_ptr<Operator> child, const ExecContext& ctx)
    : Select(std::move(child), ctx.vector_size) {
  compactor_.Configure(ctx);
}

size_t Select::Next() {
  if (compactor_.enabled()) return NextCompacting();
  while (true) {
    const size_t n = child_->Next();
    if (n == kEndOfStream) {
      stats_.FlushToGlobal();
      return kEndOfStream;
    }
    const pos_t* sel = child_->sel();
    size_t count = n;
    pos_t* out = buf_a_.As<pos_t>();
    pos_t* spare = buf_b_.As<pos_t>();
    for (const SelStep& step : steps_) {
      count = step(count, sel, out);
      sel = out;
      std::swap(out, spare);
      if (count == 0) break;
    }
    stats_.Record(count, vector_size_);
    if (count > 0) {
      sel_ = sel;
      return count;
    }
    // All tuples filtered: pull the next batch instead of emitting empties.
  }
}

size_t Select::NextCompacting() {
  compactor_.BeginBatch();
  while (true) {
    if (child_eos_) {
      if (compactor_.pending() > 0) {
        sel_ = nullptr;
        return compactor_.Flush();
      }
      stats_.FlushToGlobal();
      return kEndOfStream;
    }
    const size_t n = child_->Next();
    if (n == kEndOfStream) {
      child_eos_ = true;
      continue;
    }
    const pos_t* sel = child_->sel();
    size_t count = n;
    pos_t* out = buf_a_.As<pos_t>();
    pos_t* spare = buf_b_.As<pos_t>();
    for (const SelStep& step : steps_) {
      count = step(count, sel, out);
      sel = out;
      std::swap(out, spare);
      if (count == 0) break;
    }
    stats_.Record(count, vector_size_);
    if (count == 0) continue;
    // Dense batches pass through untouched, even while sparse rows are
    // pending — those already live in the compactor's own buffers and can
    // wait for the backlog to fill up (batch order is not significant).
    if (!compactor_.ShouldCompact(count)) {
      sel_ = sel;
      return count;
    }
    compactor_.Append(count, sel);
    if (compactor_.Full()) {
      sel_ = nullptr;
      return compactor_.Flush();
    }
  }
}

size_t Map::Next() {
  const size_t n = child_->Next();
  if (n == kEndOfStream) return kEndOfStream;
  sel_ = child_->sel();
  for (const MapStep& step : steps_) step(n, sel_);
  return n;
}

Slot* FixedAggregation::AddAgg(const Slot* input, AggKind kind) {
  aggs_.push_back(std::make_unique<Agg>());
  Agg& a = *aggs_.back();
  a.input = input;
  a.kind = kind;
  switch (kind) {
    case AggKind::kSum:
    case AggKind::kCount:
      a.total = 0;
      break;
    case AggKind::kMin:
      a.total = INT64_MAX;
      break;
    case AggKind::kMax:
      a.total = INT64_MIN;
      break;
  }
  a.slot = std::make_unique<Slot>();
  a.slot->ptr = &a.total;
  return a.slot.get();
}

Slot* FixedAggregation::AddSumI64(const Slot* input) {
  return AddAgg(input, AggKind::kSum);
}

Slot* FixedAggregation::AddCount() { return AddAgg(nullptr, AggKind::kCount); }

Slot* FixedAggregation::AddMinI64(const Slot* input) {
  return AddAgg(input, AggKind::kMin);
}

Slot* FixedAggregation::AddMaxI64(const Slot* input) {
  return AddAgg(input, AggKind::kMax);
}

size_t FixedAggregation::Next() {
  if (done_) return kEndOfStream;
  size_t n;
  while ((n = child_->Next()) != kEndOfStream) {
    const pos_t* sel = child_->sel();
    for (auto& agg : aggs_) {
      if (agg->kind == AggKind::kCount) {
        agg->total += static_cast<int64_t>(n);
        continue;
      }
      const int64_t* col = Get<int64_t>(agg->input);
      switch (agg->kind) {
        case AggKind::kSum: {
          int64_t acc = 0;
          if (sel == nullptr) {
            for (size_t p = 0; p < n; ++p) acc += col[p];
          } else {
            for (size_t k = 0; k < n; ++k) acc += col[sel[k]];
          }
          agg->total += acc;
          break;
        }
        case AggKind::kMin: {
          int64_t acc = agg->total;
          if (sel == nullptr) {
            for (size_t p = 0; p < n; ++p) acc = std::min(acc, col[p]);
          } else {
            for (size_t k = 0; k < n; ++k) acc = std::min(acc, col[sel[k]]);
          }
          agg->total = acc;
          break;
        }
        case AggKind::kMax: {
          int64_t acc = agg->total;
          if (sel == nullptr) {
            for (size_t p = 0; p < n; ++p) acc = std::max(acc, col[p]);
          } else {
            for (size_t k = 0; k < n; ++k) acc = std::max(acc, col[sel[k]]);
          }
          agg->total = acc;
          break;
        }
        case AggKind::kCount:
          break;
      }
    }
  }
  done_ = true;
  return 1;  // one result row; slots point at the totals
}

Slot* OrderedAggregation::AddKeyChar1(const Slot* input) {
  VCQ_CHECK_MSG(keys_.size() < kMaxKeys, "too many ordered-agg key columns");
  keys_.push_back(input);
  key_out_.push_back(Output{VecBuffer(ctx_.vector_size),
                            std::make_unique<Slot>()});
  Output& o = key_out_.back();
  o.slot->ptr = o.buffer.data();
  return o.slot.get();
}

Slot* OrderedAggregation::AddAgg(const Slot* input) {
  aggs_.push_back(input);
  agg_out_.push_back(Output{VecBuffer(ctx_.vector_size * sizeof(int64_t)),
                            std::make_unique<Slot>()});
  Output& o = agg_out_.back();
  o.slot->ptr = o.buffer.data();
  return o.slot.get();
}

Slot* OrderedAggregation::AddSumI64(const Slot* input) {
  return AddAgg(input);
}

Slot* OrderedAggregation::AddCount() { return AddAgg(nullptr); }

namespace {

// Per-partition sum accumulation with a compile-time column count: the
// fixed-size accumulator array lives in registers and the inner loop fully
// unrolls — the property that makes ordered aggregation beat hash
// aggregation on Q1 (paper Table 2).
template <size_t N>
void AccumulateFixed(const std::vector<pos_t>& part,
                     const int64_t* const* cols, int64_t* acc) {
  int64_t local[N] = {};
  for (const pos_t p : part) {
    for (size_t j = 0; j < N; ++j) local[j] += cols[j][p];
  }
  for (size_t j = 0; j < N; ++j) acc[j] += local[j];
}

void AccumulatePartition(const std::vector<pos_t>& part,
                         const int64_t* const* cols, size_t n,
                         int64_t* acc) {
  switch (n) {
    case 0: return;
    case 1: return AccumulateFixed<1>(part, cols, acc);
    case 2: return AccumulateFixed<2>(part, cols, acc);
    case 3: return AccumulateFixed<3>(part, cols, acc);
    case 4: return AccumulateFixed<4>(part, cols, acc);
    case 5: return AccumulateFixed<5>(part, cols, acc);
    case 6: return AccumulateFixed<6>(part, cols, acc);
    default:
      for (const pos_t p : part) {
        for (size_t j = 0; j < n; ++j) acc[j] += cols[j][p];
      }
  }
}

}  // namespace

void OrderedAggregation::Consume() {
  VCQ_CHECK_MSG(!keys_.empty(), "ordered-agg keys not configured");
  const size_t na = aggs_.size();
  const size_t nk = keys_.size();
  std::vector<size_t> sum_at;  // aggs_ indexes that are column sums
  for (size_t a = 0; a < na; ++a) {
    if (aggs_[a] != nullptr) sum_at.push_back(a);
  }
  const size_t ns = sum_at.size();

  // Per-vector partitions: code list + one selection vector per code.
  std::vector<uint32_t> codes;
  std::vector<std::vector<pos_t>> parts(max_groups_);
  std::vector<const char*> key_base(nk);
  std::vector<const int64_t*> sum_base(ns);
  std::vector<int64_t> acc(ns);

  size_t n;
  while ((n = child_->Next()) != kEndOfStream) {
    const pos_t* sel = child_->sel();
    // Column bases are hoisted per batch (slots may be republished by an
    // upstream compaction point between batches, never within one).
    for (size_t i = 0; i < nk; ++i) key_base[i] = Get<char>(keys_[i]);
    for (size_t j = 0; j < ns; ++j) {
      sum_base[j] = Get<int64_t>(aggs_[sum_at[j]]);
    }
    // Partition phase (the "multiple selection vectors" trick).
    codes.clear();
    for (size_t k = 0; k < n; ++k) {
      const pos_t p = sel ? sel[k] : static_cast<pos_t>(k);
      uint32_t code = 0;
      for (size_t i = 0; i < nk; ++i) {
        code |= static_cast<uint32_t>(static_cast<uint8_t>(key_base[i][p]))
                << (8 * i);
      }
      size_t slot = codes.size();
      for (size_t c = 0; c < codes.size(); ++c) {
        if (codes[c] == code) {
          slot = c;
          break;
        }
      }
      if (slot == codes.size()) {
        VCQ_CHECK_MSG(slot < max_groups_,
                      "ordered-agg backoff to hash aggregation not "
                      "implemented");
        codes.push_back(code);
        parts[slot].clear();
      }
      parts[slot].push_back(p);
    }
    // Ordered aggregation phase: per-partition register accumulation, one
    // group update per (vector, code).
    for (size_t c = 0; c < codes.size(); ++c) {
      std::fill(acc.begin(), acc.end(), 0);
      AccumulatePartition(parts[c], sum_base.data(), ns, acc.data());
      std::vector<int64_t>& group = groups_[codes[c]];
      if (group.empty()) group.assign(na, 0);
      size_t j = 0;
      for (size_t a = 0; a < na; ++a) {
        group[a] += aggs_[a] != nullptr
                        ? acc[j++]
                        : static_cast<int64_t>(parts[c].size());
      }
    }
  }
}

size_t OrderedAggregation::Next() {
  if (!consumed_) {
    Consume();
    consumed_ = true;
    emit_ = groups_.begin();
  }
  if (emit_ == groups_.end()) return kEndOfStream;
  size_t n = 0;
  for (; emit_ != groups_.end() && n < ctx_.vector_size; ++emit_, ++n) {
    const uint32_t code = emit_->first;
    for (size_t i = 0; i < keys_.size(); ++i) {
      key_out_[i].buffer.As<char>()[n] =
          static_cast<char>((code >> (8 * i)) & 0xff);
    }
    for (size_t a = 0; a < aggs_.size(); ++a) {
      agg_out_[a].buffer.As<int64_t>()[n] = emit_->second[a];
    }
  }
  sel_ = nullptr;
  return n;
}

}  // namespace vcq::tectorwise
