#include "tectorwise/operators.h"

namespace vcq::tectorwise {

size_t Scan::Next() {
  if (morsel_begin_ >= morsel_end_ &&
      !shared_->morsels.Next(morsel_begin_, morsel_end_)) {
    return kEndOfStream;
  }
  const size_t n = std::min(vector_size_, morsel_end_ - morsel_begin_);
  for (Column& c : columns_)
    c.slot->ptr = c.base + morsel_begin_ * c.elem_size;
  morsel_begin_ += n;
  sel_ = nullptr;
  return n;
}

Select::Select(std::unique_ptr<Operator> child, size_t vector_size)
    : child_(std::move(child)),
      vector_size_(vector_size),
      buf_a_(vector_size * sizeof(pos_t)),
      buf_b_(vector_size * sizeof(pos_t)) {}

Select::Select(std::unique_ptr<Operator> child, const ExecContext& ctx)
    : Select(std::move(child), ctx.vector_size) {
  compactor_.Configure(ctx);
}

size_t Select::Next() {
  if (compactor_.enabled()) return NextCompacting();
  while (true) {
    const size_t n = child_->Next();
    if (n == kEndOfStream) {
      stats_.FlushToGlobal();
      return kEndOfStream;
    }
    const pos_t* sel = child_->sel();
    size_t count = n;
    pos_t* out = buf_a_.As<pos_t>();
    pos_t* spare = buf_b_.As<pos_t>();
    for (const SelStep& step : steps_) {
      count = step(count, sel, out);
      sel = out;
      std::swap(out, spare);
      if (count == 0) break;
    }
    stats_.Record(count, vector_size_);
    if (count > 0) {
      sel_ = sel;
      return count;
    }
    // All tuples filtered: pull the next batch instead of emitting empties.
  }
}

size_t Select::NextCompacting() {
  compactor_.BeginBatch();
  while (true) {
    if (child_eos_) {
      if (compactor_.pending() > 0) {
        sel_ = nullptr;
        return compactor_.Flush();
      }
      stats_.FlushToGlobal();
      return kEndOfStream;
    }
    const size_t n = child_->Next();
    if (n == kEndOfStream) {
      child_eos_ = true;
      continue;
    }
    const pos_t* sel = child_->sel();
    size_t count = n;
    pos_t* out = buf_a_.As<pos_t>();
    pos_t* spare = buf_b_.As<pos_t>();
    for (const SelStep& step : steps_) {
      count = step(count, sel, out);
      sel = out;
      std::swap(out, spare);
      if (count == 0) break;
    }
    stats_.Record(count, vector_size_);
    if (count == 0) continue;
    // Dense batches pass through untouched, even while sparse rows are
    // pending — those already live in the compactor's own buffers and can
    // wait for the backlog to fill up (batch order is not significant).
    if (!compactor_.ShouldCompact(count)) {
      sel_ = sel;
      return count;
    }
    compactor_.Append(count, sel);
    if (compactor_.Full()) {
      sel_ = nullptr;
      return compactor_.Flush();
    }
  }
}

size_t Map::Next() {
  const size_t n = child_->Next();
  if (n == kEndOfStream) return kEndOfStream;
  sel_ = child_->sel();
  for (const MapStep& step : steps_) step(n, sel_);
  return n;
}

Slot* FixedAggregation::AddSumI64(const Slot* input) {
  sums_.push_back(std::make_unique<Sum>());
  Sum& s = *sums_.back();
  s.input = input;
  s.slot = std::make_unique<Slot>();
  s.slot->ptr = &s.total;
  return s.slot.get();
}

size_t FixedAggregation::Next() {
  if (done_) return kEndOfStream;
  size_t n;
  while ((n = child_->Next()) != kEndOfStream) {
    const pos_t* sel = child_->sel();
    for (auto& sum : sums_) {
      const int64_t* col = Get<int64_t>(sum->input);
      int64_t acc = 0;
      if (sel == nullptr) {
        for (size_t p = 0; p < n; ++p) acc += col[p];
      } else {
        for (size_t k = 0; k < n; ++k) acc += col[sel[k]];
      }
      sum->total += acc;
    }
  }
  done_ = true;
  return 1;  // one result row; slots point at the totals
}

}  // namespace vcq::tectorwise
