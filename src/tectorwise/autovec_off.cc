#define VCQ_AUTOVEC_NS autovec_off
#include "tectorwise/autovec_kernels.inc"
