#include <algorithm>
#include <tuple>
#include <utility>
#include <vector>

#include "runtime/types.h"
#include "tectorwise/plan.h"
#include "tectorwise/queries.h"

// Star Schema Benchmark plans for the Tectorwise engine (paper §4.4):
// lineorder probes filtered dimension hash tables — the workload that made
// the SSB results "quite similar to TPC-H Q3 and Q9". Described with the
// PlanBuilder (plan.h); compaction registrations are derived from slot
// usage. Dimension predicates (year bands, regions, categories) are named
// parameters resolved per execution, so each query is built once by
// Prepare() and serves any binding (see queries.h).

namespace vcq::tectorwise {

using runtime::Char;
using runtime::Database;
using runtime::QueryOptions;
using runtime::QueryParams;
using runtime::QueryResult;
using runtime::ResultBuilder;

namespace {

// ---------------------------------------------------------------------------
// Q1.1: date join + tight selections, single aggregate
// ---------------------------------------------------------------------------

Prepared PrepareSsbQ11(const Database& db) {
  PlanBuilder pb("SSB-Q1.1");

  auto& dscan = pb.Scan(db["date"], "date");
  const ColumnRef d_datekey = dscan.Col<int32_t>("d_datekey");
  const ColumnRef d_year = dscan.Col<int32_t>("d_year");
  auto& dsel = pb.Select(dscan);
  dsel.CmpParam<int32_t>(d_year, CmpOp::kEq, "year");

  auto& loscan = pb.Scan(db["lineorder"], "lineorder");
  const ColumnRef lo_orderdate = loscan.Col<int32_t>("lo_orderdate");
  const ColumnRef lo_discount = loscan.Col<int64_t>("lo_discount");
  const ColumnRef lo_quantity = loscan.Col<int64_t>("lo_quantity");
  const ColumnRef lo_extprice = loscan.Col<int64_t>("lo_extendedprice");
  auto& losel = pb.Select(loscan);
  losel.BetweenParam<int64_t>(lo_discount, "discount_lo", "discount_hi");
  losel.CmpParam<int64_t>(lo_quantity, CmpOp::kLess, "quantity_max");

  auto& hj = pb.HashJoin(dsel, losel);
  hj.Key<int32_t>(lo_orderdate, d_datekey);
  const ColumnRef j_extprice = hj.Probe<int64_t>(lo_extprice);
  const ColumnRef j_discount = hj.Probe<int64_t>(lo_discount);

  auto& map = pb.Map(hj);
  const ColumnRef revenue =
      map.Mul<int64_t>(j_extprice, j_discount, "revenue");  // scale 4

  auto& agg = pb.FixedAgg(map);
  const ColumnRef total = agg.Sum(revenue, "revenue");
  return Prepared(pb.Build(agg, {total}),
                  [total](const Plan& plan, const QueryOptions& opt,
                          const QueryParams& params) {
                    int64_t sum = 0;
                    plan.Run(opt, params, [&](const Plan::Batch& b) {
                      sum += b.Column<int64_t>(total)[0];
                    });
                    ResultBuilder rb({"revenue"});
                    rb.BeginRow().Numeric(sum, 4);
                    return rb.Finish();
                  });
}

// ---------------------------------------------------------------------------
// Q2.1: part + supplier + date joins, group by (year, brand)
// ---------------------------------------------------------------------------

Prepared PrepareSsbQ21(const Database& db) {
  PlanBuilder pb("SSB-Q2.1");

  auto& pscan = pb.Scan(db["part"], "part");
  const ColumnRef p_partkey = pscan.Col<int32_t>("p_partkey");
  const ColumnRef p_category = pscan.Col<Char<7>>("p_category");
  const ColumnRef p_brand1 = pscan.Col<Char<9>>("p_brand1");
  auto& psel = pb.Select(pscan);
  psel.CmpParam<Char<7>>(p_category, CmpOp::kEq, "category");

  auto& sscan = pb.Scan(db["supplier"], "supplier");
  const ColumnRef s_suppkey = sscan.Col<int32_t>("s_suppkey");
  const ColumnRef s_region = sscan.Col<Char<12>>("s_region");
  auto& ssel = pb.Select(sscan);
  ssel.CmpParam<Char<12>>(s_region, CmpOp::kEq, "region");

  auto& dscan = pb.Scan(db["date"], "date");
  const ColumnRef d_datekey = dscan.Col<int32_t>("d_datekey");
  const ColumnRef d_year = dscan.Col<int32_t>("d_year");

  auto& loscan = pb.Scan(db["lineorder"], "lineorder");
  const ColumnRef lo_partkey = loscan.Col<int32_t>("lo_partkey");
  const ColumnRef lo_suppkey = loscan.Col<int32_t>("lo_suppkey");
  const ColumnRef lo_orderdate = loscan.Col<int32_t>("lo_orderdate");
  const ColumnRef lo_revenue = loscan.Col<int64_t>("lo_revenue");

  auto& hj_p = pb.HashJoin(psel, loscan);
  hj_p.Key<int32_t>(lo_partkey, p_partkey);
  const ColumnRef jp_brand = hj_p.Build<Char<9>>(p_brand1);
  const ColumnRef jp_suppkey = hj_p.Probe<int32_t>(lo_suppkey);
  const ColumnRef jp_orderdate = hj_p.Probe<int32_t>(lo_orderdate);
  const ColumnRef jp_revenue = hj_p.Probe<int64_t>(lo_revenue);

  auto& hj_s = pb.HashJoin(ssel, hj_p);
  hj_s.Key<int32_t>(jp_suppkey, s_suppkey);
  const ColumnRef js_brand = hj_s.Probe<Char<9>>(jp_brand);
  const ColumnRef js_orderdate = hj_s.Probe<int32_t>(jp_orderdate);
  const ColumnRef js_revenue = hj_s.Probe<int64_t>(jp_revenue);

  auto& hj_d = pb.HashJoin(dscan, hj_s);
  hj_d.Key<int32_t>(js_orderdate, d_datekey);
  const ColumnRef jd_year = hj_d.Build<int32_t>(d_year);
  const ColumnRef jd_brand = hj_d.Probe<Char<9>>(js_brand);
  const ColumnRef jd_revenue = hj_d.Probe<int64_t>(js_revenue);

  auto& group = pb.HashGroup(hj_d);
  const ColumnRef g_year = group.Key<int32_t>(jd_year);
  const ColumnRef g_brand = group.Key<Char<9>>(jd_brand);
  const ColumnRef g_rev = group.Sum(jd_revenue);

  Plan plan = pb.Build(group, {g_year, g_brand, g_rev});
  return Prepared(
      std::move(plan),
      [g_year, g_brand, g_rev](const Plan& plan, const QueryOptions& opt,
                               const QueryParams& params) {
        struct Row {
          int32_t year;
          Char<9> brand;
          int64_t revenue;
        };
        std::vector<Row> rows;
        plan.Run(opt, params, [&](const Plan::Batch& b) {
          for (size_t k = 0; k < b.size(); ++k) {
            rows.push_back(Row{b.Column<int32_t>(g_year)[k],
                               b.Column<Char<9>>(g_brand)[k],
                               b.Column<int64_t>(g_rev)[k]});
          }
        });

        std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
          if (a.year != b.year) return a.year < b.year;
          return a.brand < b.brand;
        });
        ResultBuilder rb({"d_year", "p_brand1", "revenue"});
        for (const Row& r : rows)
          rb.BeginRow().Int(r.year).Str(r.brand.View()).Numeric(r.revenue, 2);
        return rb.Finish();
      });
}

// ---------------------------------------------------------------------------
// Q3.1: customer + supplier + date joins, group by (c_nation, s_nation, year)
// ---------------------------------------------------------------------------

Prepared PrepareSsbQ31(const Database& db) {
  PlanBuilder pb("SSB-Q3.1");

  auto& cscan = pb.Scan(db["customer"], "customer");
  const ColumnRef c_custkey = cscan.Col<int32_t>("c_custkey");
  const ColumnRef c_nation = cscan.Col<Char<15>>("c_nation");
  const ColumnRef c_region = cscan.Col<Char<12>>("c_region");
  auto& csel = pb.Select(cscan);
  csel.CmpParam<Char<12>>(c_region, CmpOp::kEq, "region");

  auto& sscan = pb.Scan(db["supplier"], "supplier");
  const ColumnRef s_suppkey = sscan.Col<int32_t>("s_suppkey");
  const ColumnRef s_nation = sscan.Col<Char<15>>("s_nation");
  const ColumnRef s_region = sscan.Col<Char<12>>("s_region");
  auto& ssel = pb.Select(sscan);
  ssel.CmpParam<Char<12>>(s_region, CmpOp::kEq, "region");

  auto& dscan = pb.Scan(db["date"], "date");
  const ColumnRef d_datekey = dscan.Col<int32_t>("d_datekey");
  const ColumnRef d_year = dscan.Col<int32_t>("d_year");
  auto& dsel = pb.Select(dscan);
  dsel.BetweenParam<int32_t>(d_year, "year_lo", "year_hi");

  auto& loscan = pb.Scan(db["lineorder"], "lineorder");
  const ColumnRef lo_custkey = loscan.Col<int32_t>("lo_custkey");
  const ColumnRef lo_suppkey = loscan.Col<int32_t>("lo_suppkey");
  const ColumnRef lo_orderdate = loscan.Col<int32_t>("lo_orderdate");
  const ColumnRef lo_revenue = loscan.Col<int64_t>("lo_revenue");

  auto& hj_c = pb.HashJoin(csel, loscan);
  hj_c.Key<int32_t>(lo_custkey, c_custkey);
  const ColumnRef jc_cnation = hj_c.Build<Char<15>>(c_nation);
  const ColumnRef jc_suppkey = hj_c.Probe<int32_t>(lo_suppkey);
  const ColumnRef jc_orderdate = hj_c.Probe<int32_t>(lo_orderdate);
  const ColumnRef jc_revenue = hj_c.Probe<int64_t>(lo_revenue);

  auto& hj_s = pb.HashJoin(ssel, hj_c);
  hj_s.Key<int32_t>(jc_suppkey, s_suppkey);
  const ColumnRef js_snation = hj_s.Build<Char<15>>(s_nation);
  const ColumnRef js_cnation = hj_s.Probe<Char<15>>(jc_cnation);
  const ColumnRef js_orderdate = hj_s.Probe<int32_t>(jc_orderdate);
  const ColumnRef js_revenue = hj_s.Probe<int64_t>(jc_revenue);

  auto& hj_d = pb.HashJoin(dsel, hj_s);
  hj_d.Key<int32_t>(js_orderdate, d_datekey);
  const ColumnRef jd_year = hj_d.Build<int32_t>(d_year);
  const ColumnRef jd_cnation = hj_d.Probe<Char<15>>(js_cnation);
  const ColumnRef jd_snation = hj_d.Probe<Char<15>>(js_snation);
  const ColumnRef jd_revenue = hj_d.Probe<int64_t>(js_revenue);

  auto& group = pb.HashGroup(hj_d);
  const ColumnRef g_cnation = group.Key<Char<15>>(jd_cnation);
  const ColumnRef g_snation = group.Key<Char<15>>(jd_snation);
  const ColumnRef g_year = group.Key<int32_t>(jd_year);
  const ColumnRef g_rev = group.Sum(jd_revenue);

  Plan plan = pb.Build(group, {g_cnation, g_snation, g_year, g_rev});
  return Prepared(
      std::move(plan),
      [g_cnation, g_snation, g_year, g_rev](const Plan& plan,
                                            const QueryOptions& opt,
                                            const QueryParams& params) {
        struct Row {
          Char<15> c_nation, s_nation;
          int32_t year;
          int64_t revenue;
        };
        std::vector<Row> rows;
        plan.Run(opt, params, [&](const Plan::Batch& b) {
          for (size_t k = 0; k < b.size(); ++k) {
            rows.push_back(Row{b.Column<Char<15>>(g_cnation)[k],
                               b.Column<Char<15>>(g_snation)[k],
                               b.Column<int32_t>(g_year)[k],
                               b.Column<int64_t>(g_rev)[k]});
          }
        });

        std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
          if (a.year != b.year) return a.year < b.year;
          if (a.revenue != b.revenue) return a.revenue > b.revenue;
          return std::tie(a.c_nation, a.s_nation) <
                 std::tie(b.c_nation, b.s_nation);
        });
        ResultBuilder rb({"c_nation", "s_nation", "d_year", "revenue"});
        for (const Row& r : rows) {
          rb.BeginRow()
              .Str(r.c_nation.View())
              .Str(r.s_nation.View())
              .Int(r.year)
              .Numeric(r.revenue, 2);
        }
        return rb.Finish();
      });
}

// ---------------------------------------------------------------------------
// Q4.1: four-dimension join, group by (year, c_nation), profit
// ---------------------------------------------------------------------------

Prepared PrepareSsbQ41(const Database& db) {
  PlanBuilder pb("SSB-Q4.1");

  auto& cscan = pb.Scan(db["customer"], "customer");
  const ColumnRef c_custkey = cscan.Col<int32_t>("c_custkey");
  const ColumnRef c_nation = cscan.Col<Char<15>>("c_nation");
  const ColumnRef c_region = cscan.Col<Char<12>>("c_region");
  auto& csel = pb.Select(cscan);
  csel.CmpParam<Char<12>>(c_region, CmpOp::kEq, "region");

  auto& sscan = pb.Scan(db["supplier"], "supplier");
  const ColumnRef s_suppkey = sscan.Col<int32_t>("s_suppkey");
  const ColumnRef s_region = sscan.Col<Char<12>>("s_region");
  auto& ssel = pb.Select(sscan);
  ssel.CmpParam<Char<12>>(s_region, CmpOp::kEq, "region");

  auto& pscan = pb.Scan(db["part"], "part");
  const ColumnRef p_partkey = pscan.Col<int32_t>("p_partkey");
  const ColumnRef p_mfgr = pscan.Col<Char<6>>("p_mfgr");
  auto& psel = pb.Select(pscan);
  psel.EqOr2Param<Char<6>>(p_mfgr, "mfgr_a", "mfgr_b");

  auto& dscan = pb.Scan(db["date"], "date");
  const ColumnRef d_datekey = dscan.Col<int32_t>("d_datekey");
  const ColumnRef d_year = dscan.Col<int32_t>("d_year");

  auto& loscan = pb.Scan(db["lineorder"], "lineorder");
  const ColumnRef lo_custkey = loscan.Col<int32_t>("lo_custkey");
  const ColumnRef lo_suppkey = loscan.Col<int32_t>("lo_suppkey");
  const ColumnRef lo_partkey = loscan.Col<int32_t>("lo_partkey");
  const ColumnRef lo_orderdate = loscan.Col<int32_t>("lo_orderdate");
  const ColumnRef lo_revenue = loscan.Col<int64_t>("lo_revenue");
  const ColumnRef lo_supplycost = loscan.Col<int64_t>("lo_supplycost");

  auto& hj_c = pb.HashJoin(csel, loscan);
  hj_c.Key<int32_t>(lo_custkey, c_custkey);
  const ColumnRef jc_cnation = hj_c.Build<Char<15>>(c_nation);
  const ColumnRef jc_suppkey = hj_c.Probe<int32_t>(lo_suppkey);
  const ColumnRef jc_partkey = hj_c.Probe<int32_t>(lo_partkey);
  const ColumnRef jc_orderdate = hj_c.Probe<int32_t>(lo_orderdate);
  const ColumnRef jc_revenue = hj_c.Probe<int64_t>(lo_revenue);
  const ColumnRef jc_supplycost = hj_c.Probe<int64_t>(lo_supplycost);

  auto& hj_s = pb.HashJoin(ssel, hj_c);
  hj_s.Key<int32_t>(jc_suppkey, s_suppkey);
  const ColumnRef js_cnation = hj_s.Probe<Char<15>>(jc_cnation);
  const ColumnRef js_partkey = hj_s.Probe<int32_t>(jc_partkey);
  const ColumnRef js_orderdate = hj_s.Probe<int32_t>(jc_orderdate);
  const ColumnRef js_revenue = hj_s.Probe<int64_t>(jc_revenue);
  const ColumnRef js_supplycost = hj_s.Probe<int64_t>(jc_supplycost);

  auto& hj_p = pb.HashJoin(psel, hj_s);
  hj_p.Key<int32_t>(js_partkey, p_partkey);
  const ColumnRef jp_cnation = hj_p.Probe<Char<15>>(js_cnation);
  const ColumnRef jp_orderdate = hj_p.Probe<int32_t>(js_orderdate);
  const ColumnRef jp_revenue = hj_p.Probe<int64_t>(js_revenue);
  const ColumnRef jp_supplycost = hj_p.Probe<int64_t>(js_supplycost);

  auto& hj_d = pb.HashJoin(dscan, hj_p);
  hj_d.Key<int32_t>(jp_orderdate, d_datekey);
  const ColumnRef jd_year = hj_d.Build<int32_t>(d_year);
  const ColumnRef jd_cnation = hj_d.Probe<Char<15>>(jp_cnation);
  const ColumnRef jd_revenue = hj_d.Probe<int64_t>(jp_revenue);
  const ColumnRef jd_supplycost = hj_d.Probe<int64_t>(jp_supplycost);

  auto& map = pb.Map(hj_d);
  const ColumnRef profit =
      map.Sub<int64_t>(jd_revenue, jd_supplycost, "profit");  // scale 2

  auto& group = pb.HashGroup(map);
  const ColumnRef g_year = group.Key<int32_t>(jd_year);
  const ColumnRef g_cnation = group.Key<Char<15>>(jd_cnation);
  const ColumnRef g_profit = group.Sum(profit);

  Plan plan = pb.Build(group, {g_year, g_cnation, g_profit});
  return Prepared(
      std::move(plan),
      [g_year, g_cnation, g_profit](const Plan& plan, const QueryOptions& opt,
                                    const QueryParams& params) {
        struct Row {
          int32_t year;
          Char<15> c_nation;
          int64_t profit;
        };
        std::vector<Row> rows;
        plan.Run(opt, params, [&](const Plan::Batch& b) {
          for (size_t k = 0; k < b.size(); ++k) {
            rows.push_back(Row{b.Column<int32_t>(g_year)[k],
                               b.Column<Char<15>>(g_cnation)[k],
                               b.Column<int64_t>(g_profit)[k]});
          }
        });

        std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
          if (a.year != b.year) return a.year < b.year;
          return a.c_nation < b.c_nation;
        });
        ResultBuilder rb({"d_year", "c_nation", "profit"});
        for (const Row& r : rows) {
          rb.BeginRow()
              .Int(r.year)
              .Str(r.c_nation.View())
              .Numeric(r.profit, 2);
        }
        return rb.Finish();
      });
}

}  // namespace

// ---------------------------------------------------------------------------
// Entry points (SSB half; see queries_tpch.cc for the dispatchers)
// ---------------------------------------------------------------------------

QueryResult RunSsbQ11(const Database& db, const QueryOptions& opt,
                      const QueryParams& params) {
  return PrepareSsbQ11(db).Run(opt, params);
}

QueryResult RunSsbQ21(const Database& db, const QueryOptions& opt,
                      const QueryParams& params) {
  return PrepareSsbQ21(db).Run(opt, params);
}

QueryResult RunSsbQ31(const Database& db, const QueryOptions& opt,
                      const QueryParams& params) {
  return PrepareSsbQ31(db).Run(opt, params);
}

QueryResult RunSsbQ41(const Database& db, const QueryOptions& opt,
                      const QueryParams& params) {
  return PrepareSsbQ41(db).Run(opt, params);
}

namespace detail {

Prepared SsbPrepare(const Database& db, std::string_view query_name) {
  if (query_name == "SSB-Q1.1") return PrepareSsbQ11(db);
  if (query_name == "SSB-Q2.1") return PrepareSsbQ21(db);
  if (query_name == "SSB-Q3.1") return PrepareSsbQ31(db);
  if (query_name == "SSB-Q4.1") return PrepareSsbQ41(db);
  VCQ_CHECK_MSG(false, "unknown query name for Prepare");
  std::abort();  // unreachable: the check above never returns
}

}  // namespace detail

}  // namespace vcq::tectorwise
